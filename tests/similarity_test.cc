// Tests for similarity/: Jaccard variants (incl. the paper's worked
// examples), Lp metrics, and the expert similarity table.

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "similarity/jaccard.h"
#include "similarity/lp_metric.h"
#include "similarity/similarity_table.h"

namespace rock {
namespace {

// ---------------------------------------------------------------- Jaccard --

TEST(JaccardTest, PaperExample12Coefficients) {
  // §1.1 Example 1.2: {1,2,3} vs {3,4,5} → 0.2; {1,2,3} vs {1,2,4} → 0.5;
  // {1,2,3} vs {1,2,7} → 0.5.
  EXPECT_DOUBLE_EQ(
      JaccardSimilarity(Transaction({1, 2, 3}), Transaction({3, 4, 5})), 0.2);
  EXPECT_DOUBLE_EQ(
      JaccardSimilarity(Transaction({1, 2, 3}), Transaction({1, 2, 4})), 0.5);
  EXPECT_DOUBLE_EQ(
      JaccardSimilarity(Transaction({1, 2, 3}), Transaction({1, 2, 7})), 0.5);
}

TEST(JaccardTest, IdenticalIsOneDisjointIsZero) {
  Transaction a({1, 2, 3});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, Transaction({4, 5})), 0.0);
}

TEST(JaccardTest, EmptyTransactionsScoreZero) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Transaction{}, Transaction{}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Transaction{}, Transaction({1})), 0.0);
}

TEST(JaccardTest, SubsetScaling) {
  // §3.1.1: a tiny subset transaction is not very similar to a large one —
  // {milk} vs {milk, ...9 more} = 1/10.
  std::vector<ItemId> big(10);
  for (ItemId i = 0; i < 10; ++i) big[i] = i;
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Transaction({0}), Transaction(big)),
                   0.1);
}

TEST(JaccardTest, SymmetricAndBounded) {
  Transaction a({1, 5, 9});
  Transaction b({2, 5, 9, 11});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), JaccardSimilarity(b, a));
  const double s = JaccardSimilarity(a, b);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(TransactionJaccardTest, IndexedView) {
  TransactionDataset ds;
  ds.AddTransaction({"1", "2", "3"});
  ds.AddTransaction({"1", "2", "4"});
  TransactionJaccard sim(ds);
  EXPECT_EQ(sim.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 0), 1.0);
}

// ---------------------------------------------- Categorical Jaccard (A.v) --

TEST(CategoricalJaccardTest, MatchesTransactionView) {
  CategoricalDataset ds{Schema({"a", "b", "c"})};
  ASSERT_TRUE(ds.AddRecord({"x", "y", "z"}).ok());
  ASSERT_TRUE(ds.AddRecord({"x", "y", "w"}).ok());
  CategoricalJaccard sim(ds);
  // 2 shared items out of 4 distinct → 0.5.
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 0.5);
}

TEST(CategoricalJaccardTest, MissingValuesAreOmittedItems) {
  CategoricalDataset ds{Schema({"a", "b", "c"})};
  ASSERT_TRUE(ds.AddRecord({"x", "y", "?"}).ok());
  ASSERT_TRUE(ds.AddRecord({"x", "y", "z"}).ok());
  CategoricalJaccard sim(ds);
  // Record 0 has 2 items, record 1 has 3; intersection 2, union 3.
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 2.0 / 3.0);
}

TEST(CategoricalJaccardTest, AllMissingScoresZero) {
  CategoricalDataset ds{Schema({"a", "b"})};
  ASSERT_TRUE(ds.AddRecord({"?", "?"}).ok());
  ASSERT_TRUE(ds.AddRecord({"x", "y"}).ok());
  CategoricalJaccard sim(ds);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 0), 0.0);
}

// ----------------------------------------------- Pairwise-missing Jaccard --

TEST(PairwiseMissingJaccardTest, IgnoresMutuallyMissingAttributes) {
  // §3.1.2 time-series semantics: a young fund identical on its observed
  // window scores 1.0 despite missing history.
  CategoricalDataset ds{Schema({"d1", "d2", "d3", "d4"})};
  ASSERT_TRUE(ds.AddRecord({"Up", "Down", "Up", "No"}).ok());
  ASSERT_TRUE(ds.AddRecord({"?", "?", "Up", "No"}).ok());
  PairwiseMissingJaccard sim(ds);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 1.0);
}

TEST(PairwiseMissingJaccardTest, StaticViewDisagrees) {
  // Same records under the *static* A.v view score lower — documents the
  // difference between the two §3.1.2 treatments.
  CategoricalDataset ds{Schema({"d1", "d2", "d3", "d4"})};
  ASSERT_TRUE(ds.AddRecord({"Up", "Down", "Up", "No"}).ok());
  ASSERT_TRUE(ds.AddRecord({"?", "?", "Up", "No"}).ok());
  CategoricalJaccard static_sim(ds);
  EXPECT_DOUBLE_EQ(static_sim.Similarity(0, 1), 0.5);
}

TEST(PairwiseMissingJaccardTest, PartialAgreement) {
  CategoricalDataset ds{Schema({"d1", "d2", "d3"})};
  ASSERT_TRUE(ds.AddRecord({"Up", "Down", "Up"}).ok());
  ASSERT_TRUE(ds.AddRecord({"Up", "Up", "?"}).ok());
  PairwiseMissingJaccard sim(ds);
  // Both-present = {d1, d2}; equal = 1; union = 2·2 − 1 = 3.
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 1.0 / 3.0);
}

TEST(PairwiseMissingJaccardTest, NoCommonObservationsScoreZero) {
  CategoricalDataset ds{Schema({"d1", "d2"})};
  ASSERT_TRUE(ds.AddRecord({"Up", "?"}).ok());
  ASSERT_TRUE(ds.AddRecord({"?", "Up"}).ok());
  PairwiseMissingJaccard sim(ds);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 0.0);
}

// ------------------------------------------------------------- Lp metrics --

TEST(LpMetricTest, EuclideanMatchesPaperExample11) {
  // Example 1.1: points (1,1,1,0,1,0) and (0,1,1,1,1,0) are at distance √2;
  // (1,0,0,1,0,0) and (0,0,0,0,0,1) at √3.
  std::vector<double> a = {1, 1, 1, 0, 1, 0};
  std::vector<double> b = {0, 1, 1, 1, 1, 0};
  std::vector<double> c = {1, 0, 0, 1, 0, 0};
  std::vector<double> d = {0, 0, 0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(L2Distance(a, b), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(L2Distance(c, d), std::sqrt(3.0));
}

TEST(LpMetricTest, L1AndLinf) {
  std::vector<double> x = {0, 0};
  std::vector<double> y = {3, -4};
  EXPECT_DOUBLE_EQ(L1Distance(x, y), 7.0);
  EXPECT_DOUBLE_EQ(L2Distance(x, y), 5.0);
  EXPECT_DOUBLE_EQ(LInfDistance(x, y), 4.0);
  EXPECT_DOUBLE_EQ(SquaredL2Distance(x, y), 25.0);
}

TEST(LpMetricTest, GeneralPInterpolates) {
  std::vector<double> x = {0, 0};
  std::vector<double> y = {1, 1};
  // p=1 → 2, p=2 → √2, p→∞ → 1; p=3 in between.
  const double d3 = LpDistance(x, y, 3.0);
  EXPECT_LT(d3, L1Distance(x, y));
  EXPECT_GT(d3, LInfDistance(x, y));
  EXPECT_NEAR(d3, std::pow(2.0, 1.0 / 3.0), 1e-12);
}

TEST(NormalizedLpSimilarityTest, MapsToUnitInterval) {
  std::vector<std::vector<double>> pts = {{0, 0}, {1, 0}, {4, 0}};
  NormalizedLpSimilarity sim(pts, 2.0);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 2), 0.0);   // the farthest pair
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 0.75);  // 1 − 1/4
}

TEST(NormalizedLpSimilarityTest, DegenerateAllEqual) {
  std::vector<std::vector<double>> pts = {{1, 1}, {1, 1}};
  NormalizedLpSimilarity sim(pts, 2.0);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 1.0);
}

TEST(NormalizedLpSimilarityTest, InfinityMetric) {
  std::vector<std::vector<double>> pts = {{0, 0}, {2, 1}, {4, 0}};
  NormalizedLpSimilarity sim(pts, NormalizedLpSimilarity::kInfinity);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 0.5);
}

// ------------------------------------------------------- Similarity table --

TEST(SimilarityTableTest, IdentityByDefault) {
  SimilarityTable t(3);
  EXPECT_DOUBLE_EQ(t.Similarity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.Similarity(0, 1), 0.0);
}

TEST(SimilarityTableTest, SetIsSymmetric) {
  SimilarityTable t(3);
  ASSERT_TRUE(t.Set(0, 2, 0.7).ok());
  EXPECT_DOUBLE_EQ(t.Similarity(0, 2), 0.7);
  EXPECT_DOUBLE_EQ(t.Similarity(2, 0), 0.7);
}

TEST(SimilarityTableTest, RejectsBadInputs) {
  SimilarityTable t(2);
  EXPECT_TRUE(t.Set(0, 5, 0.5).IsOutOfRange());
  EXPECT_TRUE(t.Set(0, 1, 1.5).IsInvalidArgument());
  EXPECT_TRUE(t.Set(0, 1, -0.1).IsInvalidArgument());
}

TEST(SimilarityTableTest, FromMatrixValidates) {
  EXPECT_TRUE(SimilarityTable::FromMatrix({{1.0, 0.5}, {0.4, 1.0}})
                  .status()
                  .IsInvalidArgument());  // asymmetric
  EXPECT_TRUE(SimilarityTable::FromMatrix({{1.0, 2.0}, {2.0, 1.0}})
                  .status()
                  .IsInvalidArgument());  // out of range
  EXPECT_TRUE(SimilarityTable::FromMatrix({{1.0, 0.5, 0.0}, {0.5, 1.0}})
                  .status()
                  .IsInvalidArgument());  // ragged
  auto ok = SimilarityTable::FromMatrix({{1.0, 0.25}, {0.25, 1.0}});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->Similarity(1, 0), 0.25);
}

}  // namespace
}  // namespace rock
