// Tests for core/components.h — the link-component shortcut must coincide
// with the full merge engine whenever ROCK stops on zero cross links.

#include <gtest/gtest.h>

#include <map>

#include "core/components.h"
#include "core/rock.h"
#include "similarity/jaccard.h"
#include "similarity/similarity_table.h"
#include "synth/mushroom_generator.h"

namespace rock {
namespace {

TEST(LinkComponentsTest, TwoTriangles) {
  SimilarityTable t(7);
  for (auto [i, j] : {std::pair<size_t, size_t>{0, 1}, {0, 2}, {1, 2},
                      {3, 4}, {3, 5}, {4, 5}}) {
    ASSERT_TRUE(t.Set(i, j, 1.0).ok());
  }
  auto result = ComputeLinkComponents(t, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters(), 2u);
  EXPECT_EQ(result->num_pruned_points, 1u);  // point 6 is isolated
  EXPECT_EQ(result->clustering.assignment[6], kUnassigned);
  EXPECT_EQ(result->clustering.assignment[0],
            result->clustering.assignment[2]);
  EXPECT_NE(result->clustering.assignment[0],
            result->clustering.assignment[3]);
}

TEST(LinkComponentsTest, NeighborsWithoutLinksStaySeparate) {
  // Two mutually-neighboring points with no common neighbor have an edge
  // in the *neighbor* graph but not in the *link* graph.
  SimilarityTable t(2);
  ASSERT_TRUE(t.Set(0, 1, 1.0).ok());
  auto result = ComputeLinkComponents(t, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters(), 2u);  // two singletons
}

TEST(LinkComponentsTest, MatchesMergeEngineOnMushroom) {
  // The paper's mushroom setting stops on zero cross links at 21 clusters;
  // the shortcut must give the identical partition.
  MushroomGeneratorOptions gen;
  gen.size_scale = 0.05;
  auto ds = GenerateMushroomData(gen);
  ASSERT_TRUE(ds.ok());
  CategoricalJaccard sim(*ds);

  RockOptions opt;
  opt.theta = 0.8;
  opt.num_clusters = 1;  // force "merge until links run out"
  auto engine = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(engine.ok());

  auto shortcut = ComputeLinkComponents(sim, 0.8);
  ASSERT_TRUE(shortcut.ok());

  ASSERT_EQ(shortcut->clustering.num_clusters(),
            engine->clustering.num_clusters());
  // Same partition: map engine cluster → shortcut cluster bijectively.
  std::map<ClusterIndex, ClusterIndex> mapping;
  for (size_t p = 0; p < ds->size(); ++p) {
    const ClusterIndex a = engine->clustering.assignment[p];
    const ClusterIndex b = shortcut->clustering.assignment[p];
    EXPECT_EQ(a == kUnassigned, b == kUnassigned) << p;
    if (a == kUnassigned) continue;
    auto it = mapping.find(a);
    if (it == mapping.end()) {
      mapping[a] = b;
    } else {
      EXPECT_EQ(it->second, b) << "point " << p;
    }
  }
}

TEST(LinkComponentsTest, MinNeighborsPrunes) {
  SimilarityTable t(4);
  ASSERT_TRUE(t.Set(0, 1, 1.0).ok());
  ASSERT_TRUE(t.Set(0, 2, 1.0).ok());
  ASSERT_TRUE(t.Set(1, 2, 1.0).ok());
  ASSERT_TRUE(t.Set(3, 0, 1.0).ok());  // point 3: degree 1
  auto strict = ComputeLinkComponents(t, 0.5, /*min_neighbors=*/2);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->num_pruned_points, 1u);
  EXPECT_EQ(strict->clustering.assignment[3], kUnassigned);
  auto lax = ComputeLinkComponents(t, 0.5, /*min_neighbors=*/1);
  ASSERT_TRUE(lax.ok());
  EXPECT_EQ(lax->num_pruned_points, 0u);
  // Point 3 has links (via common neighbor… 3's neighbors = {0};
  // link(3, x) = |N(3) ∩ N(x)| = |{0} ∩ …| — 0 ∈ N(1), N(2) → links to 1, 2.
  EXPECT_NE(lax->clustering.assignment[3], kUnassigned);
}

TEST(LinkComponentsTest, InvalidThetaRejected) {
  SimilarityTable t(2);
  EXPECT_TRUE(ComputeLinkComponents(t, 7.0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace rock
