// tests/serve_test.cc — the build/serve split (clustering-as-a-service).
//
// Covers the model-bundle format (round-trip + every corruption shape must
// refuse to load), the ModelHandle query parser in id- and name-mode, the
// LabelServer's batching/admission/metrics behavior, the ServeLines line
// protocol, and the differential at the heart of the PR: a served answer
// must be bit-identical to what `rock pipeline` assigns the same row, for
// every worker count and batch size.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/model_bundle.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "data/disk_store.h"
#include "data/transaction.h"
#include "diag/metrics.h"
#include "serve/model_handle.h"
#include "serve/reload.h"
#include "serve/server.h"
#include "test_support.h"
#include "util/failpoint.h"

namespace rock {
namespace {

namespace fs = std::filesystem;

constexpr size_t kStoreRows = 120;

std::string TempPath(const std::string& stem) {
  return (fs::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + ".bin"))
      .string();
}

/// Three well-separated transaction groups, as in pipeline_resume_test: the
/// sample clusters cleanly so labeling is deterministic across the grid.
TransactionDataset MakeGroupedDataset(size_t rows, uint64_t seed) {
  Rng rng(seed);
  TransactionDataset data;
  for (size_t i = 0; i < rows; ++i) {
    const uint32_t group = static_cast<uint32_t>(i % 3);
    std::vector<ItemId> items;
    const size_t k = 4 + static_cast<size_t>(rng.UniformUint64(4));
    for (size_t j = 0; j < k; ++j) {
      items.push_back(group * 100 +
                      static_cast<ItemId>(rng.UniformUint64(20)));
    }
    data.AddTransaction(Transaction(std::move(items)));
    data.labels().Append("g" + std::to_string(group));
  }
  return data;
}

/// A tiny hand-built id-mode bundle: cluster 0 lives on items 1..4,
/// cluster 1 on items 100..102. theta = 0.5 keeps the arithmetic obvious.
ModelBundle TinyBundle() {
  ModelBundle bundle;
  bundle.theta = 0.5;
  bundle.f_exponent = MarketBasketF(0.5);
  bundle.labeling_sets = {
      {Transaction({1, 2, 3}), Transaction({2, 3, 4})},
      {Transaction({100, 101}), Transaction({101, 102})},
  };
  bundle.fingerprint.store_count = 42;
  bundle.fingerprint.theta = bundle.theta;
  return bundle;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::Clear();
    store_path_ = TempPath("rock_serve_store");
    model_path_ = TempPath("rock_serve_model");
    ASSERT_TRUE(
        WriteDatasetToStore(MakeGroupedDataset(kStoreRows, 0x5e47), store_path_)
            .ok());
  }

  void TearDown() override {
    fail::Clear();
    std::remove(store_path_.c_str());
    std::remove(model_path_.c_str());
    std::remove((model_path_ + ".tmp").c_str());
  }

  PipelineOptions BaseOptions(double theta) const {
    PipelineOptions opt;
    opt.rock.theta = theta;
    opt.rock.num_clusters = 3;
    opt.sample_size = 60;
    opt.seed = 2026;
    opt.labeling.seed = 11;
    return opt;
  }

  std::string store_path_;
  std::string model_path_;
};

// ---------------------------------------------------------------------------
// Model-bundle format.

TEST_F(ServeTest, BundleRoundTripsEveryField) {
  ModelBundle bundle = TinyBundle();
  bundle.dictionary = {"milk", "bread", "beer"};
  ASSERT_TRUE(SaveModelBundle(bundle, model_path_).ok());

  auto loaded = LoadModelBundle(model_path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->fingerprint == bundle.fingerprint);
  EXPECT_DOUBLE_EQ(loaded->theta, bundle.theta);
  EXPECT_DOUBLE_EQ(loaded->f_exponent, bundle.f_exponent);
  ASSERT_EQ(loaded->labeling_sets.size(), bundle.labeling_sets.size());
  for (size_t c = 0; c < bundle.labeling_sets.size(); ++c) {
    ASSERT_EQ(loaded->labeling_sets[c].size(), bundle.labeling_sets[c].size());
    for (size_t i = 0; i < bundle.labeling_sets[c].size(); ++i) {
      EXPECT_EQ(loaded->labeling_sets[c][i].items(),
                bundle.labeling_sets[c][i].items())
          << "cluster " << c << " point " << i;
    }
  }
  EXPECT_EQ(loaded->dictionary, bundle.dictionary);
}

TEST_F(ServeTest, LoadBundleRejectsEveryCorruptionShape) {
  ASSERT_TRUE(SaveModelBundle(TinyBundle(), model_path_).ok());

  std::FILE* f = std::fopen(model_path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  ASSERT_GT(bytes.size(), 24u);

  auto write_bytes = [&](const std::vector<unsigned char>& b) {
    std::FILE* out = std::fopen(model_path_.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (!b.empty()) {
      ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), out), b.size());
    }
    std::fclose(out);
  };

  ROCK_SEEDED_RNG(rng, 0x5e47ULL);
  // Random truncations and single-bit flips over the whole file.
  for (int trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    std::vector<unsigned char> mutated = bytes;
    if (trial % 2 == 0) {
      mutated.resize(static_cast<size_t>(rng.UniformUint64(bytes.size())));
    } else {
      const size_t i = static_cast<size_t>(rng.UniformUint64(bytes.size()));
      mutated[i] =
          static_cast<unsigned char>(mutated[i] ^ (1u << rng.UniformUint64(8)));
    }
    write_bytes(mutated);
    auto r = LoadModelBundle(model_path_);
    ASSERT_FALSE(r.ok()) << "corrupt bundle loaded silently";
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }

  // Trailing garbage (payload size mismatch — the torn-write shape).
  std::vector<unsigned char> longer = bytes;
  longer.push_back(0xab);
  write_bytes(longer);
  EXPECT_TRUE(LoadModelBundle(model_path_).status().IsCorruption());

  // Wrong magic: a checkpoint file is not a model.
  std::vector<unsigned char> wrong_magic = bytes;
  wrong_magic[0] = static_cast<unsigned char>(wrong_magic[0] ^ 0xff);
  write_bytes(wrong_magic);
  EXPECT_TRUE(LoadModelBundle(model_path_).status().IsCorruption());

  // Version bump.
  std::vector<unsigned char> bumped = bytes;
  bumped[8] = static_cast<unsigned char>(bumped[8] + 1);
  write_bytes(bumped);
  EXPECT_TRUE(LoadModelBundle(model_path_).status().IsCorruption());

  // Missing file.
  std::remove(model_path_.c_str());
  EXPECT_TRUE(LoadModelBundle(model_path_).status().IsIOError());
}

TEST_F(ServeTest, ImplausibleParametersRefuseToServe) {
  ModelBundle bundle = TinyBundle();
  bundle.theta = 1.5;  // parses fine, but no valid model has this
  EXPECT_TRUE(SaveModelBundle(bundle, model_path_).IsInvalidArgument());
  EXPECT_TRUE(ModelHandle::FromBundle(bundle).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// ModelHandle query parsing.

TEST_F(ServeTest, IdModeParsesNumericTokens) {
  auto handle = ModelHandle::FromBundle(TinyBundle());
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_FALSE(handle->has_dictionary());

  auto tx = handle->ParseQuery("3 1  2\t3");
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  EXPECT_EQ(tx->items(), (std::vector<ItemId>{1, 2, 3}));  // sorted, deduped

  EXPECT_TRUE(handle->ParseQuery("1 beer").status().IsInvalidArgument());
  EXPECT_TRUE(handle->ParseQuery("-3").status().IsInvalidArgument());
  EXPECT_TRUE(handle->ParseQuery("").status().IsInvalidArgument());
  EXPECT_TRUE(handle->ParseQuery("   \t ").status().IsInvalidArgument());
}

TEST_F(ServeTest, NameModeMapsTokensThroughDictionary) {
  ModelBundle bundle = TinyBundle();
  // Items 0..2 get names; the labeling sets above use other ids, but the
  // parser only needs the dictionary.
  bundle.dictionary = {"milk", "bread", "beer"};
  auto handle = ModelHandle::FromBundle(std::move(bundle));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE(handle->has_dictionary());

  auto tx = handle->ParseQuery("beer milk");
  ASSERT_TRUE(tx.ok());
  EXPECT_EQ(tx->items(), (std::vector<ItemId>{0, 2}));

  // Unknown names map past the dictionary (never colliding with known
  // items), and the same unknown token dedupes within one query.
  auto unknown = handle->ParseQuery("milk caviar caviar truffle");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->items(), (std::vector<ItemId>{0, 3, 4}));
}

TEST_F(ServeTest, AssignMatchesHandAssignment) {
  auto handle = ModelHandle::FromBundle(TinyBundle());
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->num_clusters(), 2u);
  EXPECT_EQ(handle->labeler().Assign(Transaction({1, 2, 3})), 0);
  EXPECT_EQ(handle->labeler().Assign(Transaction({100, 101})), 1);
  EXPECT_EQ(handle->labeler().Assign(Transaction({500, 501})), kUnassigned);
}

// ---------------------------------------------------------------------------
// LabelServer.

TEST_F(ServeTest, ServerAnswersQueriesAndExportsMetrics) {
  auto handle = ModelHandle::FromBundle(TinyBundle());
  ASSERT_TRUE(handle.ok());

  diag::MetricsRegistry registry;
  ServeOptions options;
  options.num_threads = 2;
  options.max_batch = 4;
  options.metrics = &registry;
  LabelServer server(&*handle, options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<ClusterIndex>> futures;
  for (int i = 0; i < 30; ++i) {
    auto f = server.Submit(Transaction({1, 2, 3}));
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(std::move(*f));
  }
  auto outlier = server.Submit(Transaction({500}));
  ASSERT_TRUE(outlier.ok());
  for (auto& f : futures) EXPECT_EQ(f.get(), 0);
  EXPECT_EQ(outlier->get(), kUnassigned);
  server.Stop();

  const LabelServer::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, 31u);
  EXPECT_EQ(stats.outliers, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GT(stats.batch_fill, 0.0);
  EXPECT_LE(stats.batch_fill, 4.0);

  const diag::RunMetrics metrics = registry.Snapshot();
  EXPECT_EQ(metrics.CounterOr("serve.requests"), 31u);
  EXPECT_EQ(metrics.CounterOr("serve.outliers"), 1u);
  EXPECT_EQ(metrics.CounterOr("serve.rejected"), 0u);
  EXPECT_GE(metrics.CounterOr("serve.batches"), 1u);
}

TEST_F(ServeTest, AdmissionBoundRejectsWhenQueueIsFull) {
  auto handle = ModelHandle::FromBundle(TinyBundle());
  ASSERT_TRUE(handle.ok());

  ServeOptions options;
  options.max_queue = 4;
  LabelServer server(&*handle, options);

  // Before Start nothing drains, so the queue fills deterministically.
  std::vector<std::future<ClusterIndex>> admitted;
  for (int i = 0; i < 4; ++i) {
    auto f = server.Submit(Transaction({1, 2, 3}));
    ASSERT_TRUE(f.ok()) << "submission " << i;
    admitted.push_back(std::move(*f));
  }
  auto rejected = server.Submit(Transaction({1, 2, 3}));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsFailedPrecondition());

  // The admitted four still get answers once the workers start.
  ASSERT_TRUE(server.Start().ok());
  for (auto& f : admitted) EXPECT_EQ(f.get(), 0);
  server.Stop();
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().requests, 4u);
  EXPECT_EQ(server.stats().peak_queue_depth, 4u);

  // After Stop every submission is refused.
  EXPECT_TRUE(server.Submit(Transaction({1}))
                  .status()
                  .IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// ServeLines protocol.

TEST_F(ServeTest, ServeLinesAnswersInOrderWithErrorsAndComments) {
  auto handle = ModelHandle::FromBundle(TinyBundle());
  ASSERT_TRUE(handle.ok());

  std::istringstream in(
      "# a comment line\n"
      "1 2 3\n"
      "\n"
      "   \n"
      "100 101\n"
      "not-an-id\n"
      "500 501\n"
      "2 3 4\n");
  std::ostringstream out;
  ServeOptions options;
  options.num_threads = 2;
  options.max_batch = 2;
  ASSERT_TRUE(ServeLines(*handle, options, in, out).ok());

  // One answer per non-blank, non-comment line, in submission order; the
  // malformed line yields an ERR slot in sequence.
  std::istringstream answers(out.str());
  std::string line;
  std::vector<std::string> got;
  while (std::getline(answers, line)) got.push_back(line);
  ASSERT_EQ(got.size(), 5u) << out.str();
  EXPECT_EQ(got[0], "0");
  EXPECT_EQ(got[1], "1");
  EXPECT_EQ(got[2].substr(0, 4), "ERR:");
  EXPECT_EQ(got[3], "-1");
  EXPECT_EQ(got[4], "0");
}

TEST_F(ServeTest, ServeLinesStaysBoundedOnLongStreams) {
  auto handle = ModelHandle::FromBundle(TinyBundle());
  ASSERT_TRUE(handle.ok());

  // Far more lines than max_queue: the window flush must keep the protocol
  // loop from deadlocking against its own admission bound.
  std::string input;
  for (int i = 0; i < 500; ++i) input += "1 2 3\n";
  std::istringstream in(input);
  std::ostringstream out;
  ServeOptions options;
  options.max_queue = 8;
  options.max_batch = 4;
  ASSERT_TRUE(ServeLines(*handle, options, in, out).ok());

  std::istringstream answers(out.str());
  std::string line;
  size_t count = 0;
  while (std::getline(answers, line)) {
    EXPECT_EQ(line, "0");
    ++count;
  }
  EXPECT_EQ(count, 500u);
}

// ---------------------------------------------------------------------------
// BuildModel and the serve ≡ pipeline differential.

TEST_F(ServeTest, BuildModelPersistsALoadableBundle) {
  ModelBuildOptions build;
  build.pipeline = BaseOptions(0.5);
  build.model_path = model_path_;
  auto built = BuildModel(store_path_, build);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->sample_rows.size(), 60u);
  EXPECT_GE(built->bundle.labeling_sets.size(), 3u);
  EXPECT_EQ(built->metrics.CounterOr("model.saved"), 1u);
  EXPECT_EQ(built->metrics.CounterOr("sample.rows"), 60u);

  auto handle = ModelHandle::Load(model_path_);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE(handle->fingerprint() == built->bundle.fingerprint);
  EXPECT_EQ(handle->num_clusters(), built->bundle.labeling_sets.size());
}

TEST_F(ServeTest, BuildModelRefusesAnEmptyStore) {
  const std::string empty = TempPath("rock_serve_empty");
  ASSERT_TRUE(WriteDatasetToStore(TransactionDataset{}, empty).ok());
  ModelBuildOptions build;
  build.pipeline = BaseOptions(0.5);
  auto r = BuildModel(empty, build);
  std::remove(empty.c_str());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

TEST_F(ServeTest, ServedAnswersMatchPipelineBitForBit) {
  for (double theta : {0.4, 0.5}) {
    SCOPED_TRACE(::testing::Message() << "theta=" << theta);
    auto pipeline = RunRockPipeline(store_path_, BaseOptions(theta));
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

    ModelBuildOptions build;
    build.pipeline = BaseOptions(theta);
    build.model_path = model_path_;
    auto built = BuildModel(store_path_, build);
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    // The build half must reproduce the pipeline's sample and clustering
    // exactly — same rows, same merges.
    EXPECT_EQ(built->sample_rows, pipeline->sample_rows);
    EXPECT_EQ(built->sample_result.clustering.assignment,
              pipeline->sample_result.clustering.assignment);

    auto handle = ModelHandle::Load(model_path_);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();

    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (size_t max_batch : {size_t{1}, size_t{7}, size_t{64}}) {
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " max_batch=" << max_batch);
        ServeOptions options;
        options.num_threads = threads;
        options.max_batch = max_batch;
        LabelServer server(&*handle, options);
        ASSERT_TRUE(server.Start().ok());

        auto reader = TransactionStoreReader::Open(store_path_);
        ASSERT_TRUE(reader.ok());
        std::vector<std::future<ClusterIndex>> futures;
        while (reader->Next()) {
          auto f = server.Submit(reader->transaction());
          ASSERT_TRUE(f.ok()) << f.status().ToString();
          futures.push_back(std::move(*f));
        }
        ASSERT_TRUE(reader->status().ok());
        ASSERT_EQ(futures.size(), pipeline->labeling.assignments.size());
        for (size_t row = 0; row < futures.size(); ++row) {
          EXPECT_EQ(futures[row].get(), pipeline->labeling.assignments[row])
              << "row " << row;
        }
        server.Stop();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hot reload: ModelReloadPoller + the SwappableModel ServeLines overload.

TEST_F(ServeTest, ReloadPollerSwapsOnlyWhenFingerprintChanges) {
  ASSERT_TRUE(SaveModelBundle(TinyBundle(), model_path_).ok());
  auto handle = ModelHandle::Load(model_path_);
  ASSERT_TRUE(handle.ok());
  SwappableModel model(std::make_shared<const ModelHandle>(std::move(*handle)));

  ModelReloadPoller poller(&model, ReloadOptions{model_path_, 0});

  // Same bundle on disk → no swap, however often we poll.
  for (int i = 0; i < 3; ++i) {
    auto polled = poller.PollOnce();
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    EXPECT_FALSE(*polled);
  }
  EXPECT_EQ(poller.swaps(), 0u);
  EXPECT_EQ(model.swaps(), 0u);

  // Publish a bundle with a different fingerprint (as a rebuild would,
  // atomically) and with the cluster order flipped so answers prove which
  // model served them.
  ModelBundle updated = TinyBundle();
  std::swap(updated.labeling_sets[0], updated.labeling_sets[1]);
  updated.fingerprint.store_count = 43;
  ASSERT_TRUE(SaveModelBundle(updated, model_path_).ok());

  auto polled = poller.PollOnce();
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  EXPECT_TRUE(*polled);
  EXPECT_EQ(poller.swaps(), 1u);
  EXPECT_EQ(model.swaps(), 1u);
  EXPECT_EQ(model.Acquire()->fingerprint().store_count, 43u);

  // Polling again settles: the new fingerprint is now the served one.
  polled = poller.PollOnce();
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(*polled);
  EXPECT_EQ(poller.polls(), 5u);
  EXPECT_EQ(poller.failures(), 0u);
}

TEST_F(ServeTest, ReloadPollerCountsFailedLoadsAndKeepsServing) {
  ASSERT_TRUE(SaveModelBundle(TinyBundle(), model_path_).ok());
  auto handle = ModelHandle::Load(model_path_);
  ASSERT_TRUE(handle.ok());
  SwappableModel model(std::make_shared<const ModelHandle>(std::move(*handle)));

  // Point the poller at a path with no bundle: every poll fails, nothing
  // swaps, and the in-memory model keeps serving.
  ModelReloadPoller poller(&model, ReloadOptions{model_path_ + ".gone", 0});
  auto polled = poller.PollOnce();
  EXPECT_FALSE(polled.ok());
  EXPECT_EQ(poller.failures(), 1u);
  EXPECT_EQ(poller.swaps(), 0u);
  EXPECT_EQ(model.Acquire()->fingerprint().store_count, 42u);

  diag::MetricsRegistry registry;
  poller.ExportMetrics(&registry);
  const diag::RunMetrics snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterOr("serve.reload.polls"), 1u);
  EXPECT_EQ(snap.CounterOr("serve.reload.failures"), 1u);
  EXPECT_EQ(snap.CounterOr("serve.reload.swaps"), 0u);
}

TEST_F(ServeTest, BackgroundPollerHotSwapsAPublishedBundle) {
  ASSERT_TRUE(SaveModelBundle(TinyBundle(), model_path_).ok());
  auto handle = ModelHandle::Load(model_path_);
  ASSERT_TRUE(handle.ok());
  SwappableModel model(std::make_shared<const ModelHandle>(std::move(*handle)));

  ModelReloadPoller poller(&model, ReloadOptions{model_path_, 2});
  poller.Start();

  ModelBundle updated = TinyBundle();
  updated.fingerprint.store_count = 99;
  ASSERT_TRUE(SaveModelBundle(updated, model_path_).ok());

  // The poll thread should notice within a couple of ticks; bound the wait
  // generously for slow CI machines.
  for (int i = 0; i < 2000 && model.swaps() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  poller.Stop();
  ASSERT_GE(model.swaps(), 1u);
  EXPECT_EQ(model.Acquire()->fingerprint().store_count, 99u);
  EXPECT_GE(poller.polls(), 1u);
}

TEST_F(ServeTest, SwappableServeLinesFollowsTheCurrentModel) {
  auto handle = ModelHandle::FromBundle(TinyBundle());
  ASSERT_TRUE(handle.ok());
  SwappableModel model(std::make_shared<const ModelHandle>(std::move(*handle)));

  ServeOptions options;
  options.num_threads = 2;
  options.max_batch = 2;

  // Model A: items 1..4 are cluster 0.
  {
    std::istringstream in("1 2 3\n100 101\n");
    std::ostringstream out;
    ASSERT_TRUE(ServeLines(model, options, in, out).ok());
    EXPECT_EQ(out.str(), "0\n1\n");
  }

  // Swap to a model with the clusters flipped: the same queries now get
  // the flipped answers — the overload serves whatever the SwappableModel
  // currently holds.
  ModelBundle flipped = TinyBundle();
  std::swap(flipped.labeling_sets[0], flipped.labeling_sets[1]);
  auto flipped_handle = ModelHandle::FromBundle(std::move(flipped));
  ASSERT_TRUE(flipped_handle.ok());
  model.Swap(
      std::make_shared<const ModelHandle>(std::move(*flipped_handle)));
  {
    std::istringstream in("1 2 3\n100 101\n");
    std::ostringstream out;
    ASSERT_TRUE(ServeLines(model, options, in, out).ok());
    EXPECT_EQ(out.str(), "1\n0\n");
  }
}

TEST_F(ServeTest, ModelSaveFaultsSurfaceAndRetry) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";

  // A transient torn write retries transparently…
  ModelBuildOptions build;
  build.pipeline = BaseOptions(0.5);
  build.pipeline.rock.failpoints = "model.save=fire_on_hit_1:torn_write";
  build.pipeline.retry_sleeper = [](double) {};
  build.model_path = model_path_;
  auto built = BuildModel(store_path_, build);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_GE(built->metrics.CounterOr("retry.retries"), 1u);
  EXPECT_EQ(built->metrics.CounterOr("fault.fired.model.save"), 1u);
  EXPECT_TRUE(ModelHandle::Load(model_path_).ok());

  // …while a persistent failure fails the build (a model that never hit
  // disk must not report success).
  fail::Clear();
  build.pipeline.rock.failpoints = "model.save=fire_every_1:torn_write";
  auto failed = BuildModel(store_path_, build);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError()) << failed.status().ToString();
}

}  // namespace
}  // namespace rock
