// Tests for similarity/minhash.h — MinHash estimation quality, LSH
// banding math, and the exact-precision / high-recall contract of
// ComputeNeighborsLsh against the brute-force neighbor graph.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "similarity/jaccard.h"
#include "similarity/minhash.h"
#include "synth/basket_generator.h"
#include "test_support.h"

namespace rock {
namespace {

TEST(MinHashTest, IdenticalSetsHaveIdenticalSignatures) {
  MinHasher hasher(64, 1);
  Transaction a({1, 5, 9, 12});
  EXPECT_EQ(hasher.Signature(a), hasher.Signature(Transaction({12, 9, 5, 1})));
  EXPECT_DOUBLE_EQ(
      MinHasher::EstimateJaccard(hasher.Signature(a), hasher.Signature(a)),
      1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  MinHasher hasher(128, 2);
  Transaction a({1, 2, 3, 4, 5});
  Transaction b({100, 101, 102, 103, 104});
  EXPECT_LT(MinHasher::EstimateJaccard(hasher.Signature(a),
                                       hasher.Signature(b)),
            0.1);
}

TEST(MinHashTest, EstimateTracksTrueJaccard) {
  // Random pairs of medium-size sets: the 256-hash estimate should sit
  // within ±0.12 of the exact Jaccard (binomial sd ≈ 0.03).
  MinHasher hasher(256, 3);
  ROCK_SEEDED_RNG(rng, 7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ItemId> universe(40);
    for (ItemId i = 0; i < 40; ++i) universe[i] = i;
    auto pick = [&](size_t k) {
      std::vector<ItemId> items;
      for (size_t idx : rng.SampleWithoutReplacement(universe.size(), k)) {
        items.push_back(universe[idx]);
      }
      return Transaction(std::move(items));
    };
    Transaction a = pick(15);
    Transaction b = pick(15);
    const double exact = JaccardSimilarity(a, b);
    const double estimate = MinHasher::EstimateJaccard(hasher.Signature(a),
                                                       hasher.Signature(b));
    EXPECT_NEAR(estimate, exact, 0.12) << "trial " << trial;
  }
}

TEST(MinHashTest, EmptyTransactionSignature) {
  MinHasher hasher(16, 4);
  auto sig = hasher.Signature(Transaction{});
  for (uint64_t v : sig) {
    EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());
  }
  // Degenerate equality of two empty signatures estimates 1; the exact
  // Jaccard of empty sets is 0 — callers verify exactly, so this cannot
  // produce a false edge.
}

TEST(LshTest, CollisionProbabilityMath) {
  LshOptions opt;
  opt.num_bands = 20;
  opt.rows_per_band = 5;
  // s = 1 always collides; s = 0 never.
  EXPECT_NEAR(LshCollisionProbability(1.0, opt), 1.0, 1e-12);
  EXPECT_NEAR(LshCollisionProbability(0.0, opt), 0.0, 1e-12);
  // Monotone in s.
  double prev = 0.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double p = LshCollisionProbability(s, opt);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
  // Default options give >= 99% collision probability at s = 0.5.
  EXPECT_GT(LshCollisionProbability(0.5, LshOptions{}), 0.99);
}

TEST(LshTest, ValidatesOptions) {
  TransactionDataset ds;
  ds.AddTransaction({"a"});
  LshOptions opt;
  opt.num_bands = 0;
  EXPECT_TRUE(ComputeNeighborsLsh(ds, 0.5, opt).status().IsInvalidArgument());
  EXPECT_TRUE(ComputeNeighborsLsh(ds, 1.5).status().IsInvalidArgument());
}

TEST(LshTest, ExactPrecisionHighRecallOnBaskets) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {300, 300};
  gen.items_per_cluster = {20, 20};
  gen.num_outliers = 30;
  gen.seed = 11;
  auto ds = GenerateBasketData(gen);
  ASSERT_TRUE(ds.ok());

  TransactionJaccard sim(*ds);
  auto exact = ComputeNeighbors(sim, 0.5);
  ASSERT_TRUE(exact.ok());
  auto lsh = ComputeNeighborsLsh(*ds, 0.5);
  ASSERT_TRUE(lsh.ok());

  // Precision: every LSH edge is a true edge.
  size_t lsh_edges = 0, true_edges = 0, recovered = 0;
  for (size_t i = 0; i < exact->size(); ++i) {
    for (PointIndex j : lsh->nbrlist[i]) {
      if (j > i) {
        ++lsh_edges;
        EXPECT_TRUE(exact->AreNeighbors(static_cast<PointIndex>(i), j));
      }
    }
    for (PointIndex j : exact->nbrlist[i]) {
      if (j > i) {
        ++true_edges;
        if (lsh->AreNeighbors(static_cast<PointIndex>(i), j)) ++recovered;
      }
    }
  }
  ASSERT_GT(true_edges, 0u);
  const double recall =
      static_cast<double>(recovered) / static_cast<double>(true_edges);
  EXPECT_GT(recall, 0.95) << "edges " << lsh_edges << "/" << true_edges;
}

TEST(LshTest, RecallDegradesGracefullyWithFewBands) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {200};
  gen.items_per_cluster = {20};
  gen.num_outliers = 0;
  gen.seed = 13;
  auto ds = GenerateBasketData(gen);
  ASSERT_TRUE(ds.ok());
  TransactionJaccard sim(*ds);
  auto exact = ComputeNeighbors(sim, 0.5);
  ASSERT_TRUE(exact.ok());

  LshOptions weak;
  weak.num_bands = 2;
  weak.rows_per_band = 8;
  auto lsh = ComputeNeighborsLsh(*ds, 0.5, weak);
  ASSERT_TRUE(lsh.ok());
  // Still a subgraph (precision 1), just sparser.
  size_t true_edges = 0, lsh_edges = 0;
  for (size_t i = 0; i < exact->size(); ++i) {
    true_edges += exact->nbrlist[i].size();
    lsh_edges += lsh->nbrlist[i].size();
  }
  EXPECT_LE(lsh_edges, true_edges);
}

TEST(LshTest, TuneLshOptionsHitsRecallTargetWithinSignatureBudget) {
  size_t prev_rows = 0;
  for (const double theta : {0.1, 0.3, 0.5, 0.73, 0.9}) {
    SCOPED_TRACE(::testing::Message() << "theta = " << theta);
    const LshOptions tuned = TuneLshOptions(theta, /*seed=*/99);
    EXPECT_EQ(tuned.seed, 99u);
    EXPECT_TRUE(tuned.Validate().ok());
    EXPECT_LE(tuned.num_bands * tuned.rows_per_band, 256u)
        << "signature length must stay within the budget";
    EXPECT_GE(LshCollisionProbability(theta, tuned), 0.9995)
        << "a pair at similarity exactly θ must still be recalled";
    // Higher thresholds afford sharper S-curves (more rows per band), so
    // below-θ pairs generate fewer junk candidates.
    EXPECT_GE(tuned.rows_per_band, prev_rows);
    prev_rows = tuned.rows_per_band;
  }
  // Out-of-range thresholds (complete graph at θ = 0, exact-match at
  // θ = 1) cannot be helped by banding: fall back to the defaults.
  const LshOptions defaults;
  for (const double theta : {0.0, 1.0}) {
    const LshOptions tuned = TuneLshOptions(theta, /*seed=*/7);
    EXPECT_EQ(tuned.num_bands, defaults.num_bands);
    EXPECT_EQ(tuned.rows_per_band, defaults.rows_per_band);
    EXPECT_EQ(tuned.seed, 7u);
  }
}

TEST(LshTest, EmptyTransactionsAreSkippedAtBandingTime) {
  // Empty transactions carry all-max signatures, so before the banding
  // skip they collided with each other in every band — a quadratic
  // candidate blow-up that exact verification silently absorbed. The skip
  // must isolate them without dropping any genuine edge.
  TransactionDataset ds;
  for (int r = 0; r < 50; ++r) ds.AddTransaction(Transaction{});
  for (int r = 0; r < 3; ++r) ds.AddTransaction(Transaction{1, 2, 3});
  ds.AddTransaction(Transaction{7, 8, 9, 10});
  ds.AddTransaction(Transaction{7, 8, 9, 11});

  const auto lsh = ComputeNeighborsLsh(ds, 0.5);
  ASSERT_TRUE(lsh.ok());
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_TRUE(lsh->nbrlist[r].empty()) << "empty row " << r;
  }
  // Identical rows always collide (identical signatures), so the triple
  // must come back fully connected; the 3/5-overlap pair likewise clears
  // θ = 0.5 and the default banding recalls it with certainty ≈ 1.
  EXPECT_EQ(lsh->nbrlist[50], (std::vector<PointIndex>{51, 52}));
  EXPECT_EQ(lsh->nbrlist[51], (std::vector<PointIndex>{50, 52}));
  EXPECT_EQ(lsh->nbrlist[52], (std::vector<PointIndex>{50, 51}));
  EXPECT_EQ(lsh->nbrlist[53], (std::vector<PointIndex>{54}));
  EXPECT_EQ(lsh->nbrlist[54], (std::vector<PointIndex>{53}));
}

TEST(LshTest, Deterministic) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {100};
  gen.items_per_cluster = {15};
  gen.num_outliers = 10;
  auto ds = GenerateBasketData(gen);
  ASSERT_TRUE(ds.ok());
  auto a = ComputeNeighborsLsh(*ds, 0.5);
  auto b = ComputeNeighborsLsh(*ds, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->nbrlist[i], b->nbrlist[i]);
  }
}

}  // namespace
}  // namespace rock
