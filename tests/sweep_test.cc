// Tests for core/sweep.h and the corresponding CLI surface (sweep command,
// --json summary).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cli/cli.h"
#include "core/sweep.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"

namespace rock {
namespace {

TEST(ThetaGridTest, EvenSpacing) {
  EXPECT_EQ(ThetaGrid(0.0, 1.0, 5),
            (std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0}));
  EXPECT_EQ(ThetaGrid(0.5, 0.9, 1), (std::vector<double>{0.5}));
  EXPECT_TRUE(ThetaGrid(0.1, 0.2, 0).empty());
}

TEST(SweepThetaTest, ReportsMonotonicDegreeAndShattering) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {80, 60};
  gen.items_per_cluster = {14, 12};
  gen.num_outliers = 10;
  gen.mean_tx_size = 7.0;
  gen.stddev_tx_size = 1.0;
  gen.seed = 21;
  auto ds = GenerateBasketData(gen);
  ASSERT_TRUE(ds.ok());
  TransactionJaccard sim(*ds);

  RockOptions opt;
  opt.num_clusters = 2;
  auto sweep = SweepTheta(sim, opt, {0.2, 0.4, 0.6, 0.8});
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 4u);

  // Degrees fall monotonically with theta (subgraph property).
  for (size_t i = 0; i + 1 < sweep->size(); ++i) {
    EXPECT_GE((*sweep)[i].average_degree, (*sweep)[i + 1].average_degree);
  }
  // Outliers never decrease with theta on this data.
  for (size_t i = 0; i + 1 < sweep->size(); ++i) {
    EXPECT_LE((*sweep)[i].num_outliers, (*sweep)[i + 1].num_outliers);
  }
  // Each point carries coherent bookkeeping.
  for (const SweepPoint& p : *sweep) {
    EXPECT_GE(p.largest_cluster, 1u);
    EXPECT_GE(p.num_clusters, 1u);
    EXPECT_GE(p.seconds, 0.0);
  }
}

TEST(SweepThetaTest, RejectsBadTheta) {
  TransactionDataset ds;
  ds.AddTransaction({"a"});
  ds.AddTransaction({"a"});
  TransactionJaccard sim(ds);
  EXPECT_TRUE(
      SweepTheta(sim, RockOptions{}, {0.5, 1.5}).status().IsInvalidArgument());
}

class SweepCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rock_sweep_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

TEST_F(SweepCliTest, SweepCommandTabulates) {
  std::string out;
  ASSERT_EQ(RunCli({"gen", "--dataset=votes", "--out=" + Path("v.csv")},
                   &out),
            0)
      << out;
  out.clear();
  const int code = RunCli({"sweep", "--input=" + Path("v.csv"), "--lo=0.6",
                           "--hi=0.8", "--steps=3", "--k=2"},
                          &out);
  ASSERT_EQ(code, 0) << out;
  EXPECT_NE(out.find("theta"), std::string::npos);
  EXPECT_NE(out.find("0.600"), std::string::npos);
  EXPECT_NE(out.find("0.800"), std::string::npos);
  // Help path.
  out.clear();
  EXPECT_EQ(RunCli({"sweep", "--help"}, &out), 0);
  EXPECT_NE(out.find("--steps"), std::string::npos);
  // Missing input.
  out.clear();
  EXPECT_EQ(RunCli({"sweep"}, &out), 2);
}

TEST_F(SweepCliTest, JsonSummaryIsWritten) {
  std::string out;
  ASSERT_EQ(RunCli({"gen", "--dataset=votes", "--out=" + Path("v.csv")},
                   &out),
            0);
  out.clear();
  const int code =
      RunCli({"cluster", "--input=" + Path("v.csv"), "--theta=0.73",
              "--k=2", "--json=" + Path("summary.json")},
             &out);
  ASSERT_EQ(code, 0) << out;
  std::ifstream in(Path("summary.json"));
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"num_clusters\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"purity\""), std::string::npos);
  EXPECT_NE(json.find("\"composition\""), std::string::npos);
}

TEST_F(SweepCliTest, LshAndThreadsFlagsWork) {
  std::string out;
  ASSERT_EQ(RunCli({"gen", "--dataset=basket", "--scale=0.005",
                    "--out=" + Path("b.store")},
                   &out),
            0)
      << out;
  out.clear();
  const int code =
      RunCli({"cluster", "--input=" + Path("b.store"), "--format=store",
              "--theta=0.5", "--k=10", "--neighbors=lsh", "--threads=2"},
             &out);
  ASSERT_EQ(code, 0) << out;
  EXPECT_NE(out.find("clusters:"), std::string::npos);
  // LSH on categorical input is rejected.
  ASSERT_EQ(RunCli({"gen", "--dataset=votes", "--out=" + Path("v.csv")},
                   &out),
            0);
  out.clear();
  EXPECT_EQ(RunCli({"cluster", "--input=" + Path("v.csv"),
                    "--neighbors=lsh"},
                   &out),
            1);
  EXPECT_NE(out.find("basket/store"), std::string::npos);
}

}  // namespace
}  // namespace rock
