// Tests for util/thread_pool.h and graph/parallel.h — the parallel
// neighbor/link computations must be bit-identical to the serial paths.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/random.h"
#include "graph/parallel.h"
#include "similarity/similarity_table.h"
#include "util/thread_pool.h"
#include "test_support.h"

namespace rock {
namespace {

// ------------------------------------------------------------ thread pool --

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ResolveThreads(4), 4u);
  EXPECT_GE(ResolveThreads(0), 1u);
}

TEST(ThreadPoolTest, ParallelInvokeRunsEveryWorker) {
  std::vector<std::atomic<int>> hits(8);
  ParallelInvoke(8, [&](size_t worker) { hits[worker].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelInvokeSingleThreadRunsInline) {
  std::atomic<int> count{0};
  ParallelInvoke(1, [&](size_t worker) {
    EXPECT_EQ(worker, 0u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelChunksCoversRangeExactlyOnce) {
  const size_t total = 1013;  // prime → ragged last chunk
  std::vector<std::atomic<int>> seen(total);
  ParallelChunks(4, total, 17, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) seen[i].fetch_add(1);
  });
  for (size_t i = 0; i < total; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelChunksEmptyAndTiny) {
  int calls = 0;
  ParallelChunks(4, 0, 8, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<size_t> covered{0};
  ParallelChunks(4, 5, 100, [&](size_t begin, size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 5u);
}

// -------------------------------------------------------- parallel graphs --

SimilarityTable RandomTable(size_t n, double density, uint64_t seed) {
  ROCK_SEEDED_RNG(rng, seed);
  SimilarityTable t(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(density)) {
        EXPECT_TRUE(t.Set(i, j, 0.9).ok());
      }
    }
  }
  return t;
}

class ParallelGraphTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(ParallelGraphTest, NeighborsMatchSerial) {
  const auto [threads, density] = GetParam();
  SimilarityTable t = RandomTable(150, density, 31 + threads);
  auto serial = ComputeNeighbors(t, 0.5);
  ASSERT_TRUE(serial.ok());
  ParallelOptions opt;
  opt.num_threads = threads;
  opt.row_chunk = 7;
  auto parallel = ComputeNeighborsParallel(t, 0.5, opt);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), serial->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ(parallel->nbrlist[i], serial->nbrlist[i]) << "row " << i;
  }
}

TEST_P(ParallelGraphTest, LinksMatchSerial) {
  const auto [threads, density] = GetParam();
  SimilarityTable t = RandomTable(150, density, 77 + threads);
  auto graph = ComputeNeighbors(t, 0.5);
  ASSERT_TRUE(graph.ok());
  LinkMatrix serial = ComputeLinks(*graph);
  ParallelOptions opt;
  opt.num_threads = threads;
  LinkMatrix parallel = ComputeLinksParallel(*graph, opt);
  const auto n = static_cast<PointIndex>(graph->size());
  for (PointIndex i = 0; i < n; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < n; ++j) {
      ASSERT_EQ(parallel.Count(i, j), serial.Count(i, j))
          << "pair (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndDensities, ParallelGraphTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{4},
                                         size_t{7}),
                       ::testing::Values(0.02, 0.2, 0.7)));

TEST(ParallelGraphTest, InvalidThetaRejected) {
  SimilarityTable t(3);
  EXPECT_TRUE(
      ComputeNeighborsParallel(t, 1.5).status().IsInvalidArgument());
}

TEST(ParallelGraphTest, EmptyAndSingletonGraphs) {
  NeighborGraph empty;
  EXPECT_EQ(ComputeLinksParallel(empty).size(), 0u);
  NeighborGraph one;
  one.nbrlist.resize(1);
  EXPECT_EQ(ComputeLinksParallel(one).size(), 1u);
}

TEST(ParallelGraphTest, MoreThreadsThanRows) {
  SimilarityTable t = RandomTable(5, 0.8, 3);
  auto graph = ComputeNeighbors(t, 0.5);
  ASSERT_TRUE(graph.ok());
  ParallelOptions opt;
  opt.num_threads = 32;
  LinkMatrix parallel = ComputeLinksParallel(*graph, opt);
  LinkMatrix serial = ComputeLinks(*graph);
  for (PointIndex i = 0; i < 5; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < 5; ++j) {
      EXPECT_EQ(parallel.Count(i, j), serial.Count(i, j));
    }
  }
}

}  // namespace
}  // namespace rock
