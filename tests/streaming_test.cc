// tests/streaming_test.cc — streaming append-mode clustering (DESIGN §11).
//
// Covers the store append path (generation stamps, crash-safe commit), the
// StreamingSession online-labeling loop, the drift detector, the
// SwappableModel swap atomicity under concurrent queries, and the soak
// harness at the heart of the PR: a seeded randomized append/query/reload/
// crash loop whose every incremental label is differentially checked
// against the §4.6 oracle — a recomputation (and a full LabelStore scan)
// with the exact model epoch that produced it, across θ × thread counts.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.h"
#include "common/status.h"
#include "core/labeling.h"
#include "core/model_bundle.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "data/disk_store.h"
#include "data/transaction.h"
#include "eval/drift.h"
#include "serve/model_handle.h"
#include "serve/server.h"
#include "serve/stream.h"
#include "test_support.h"
#include "util/failpoint.h"

namespace rock {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& stem) {
  return (fs::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + ".bin"))
      .string();
}

/// Three well-separated transaction groups (as in serve_test): group g draws
/// items from [g*100, g*100+20), so the sample clusters cleanly and every
/// in-distribution row labels unambiguously.
TransactionDataset MakeGroupedDataset(size_t rows, uint64_t seed) {
  Rng rng(seed);
  TransactionDataset data;
  for (size_t i = 0; i < rows; ++i) {
    const uint32_t group = static_cast<uint32_t>(i % 3);
    std::vector<ItemId> items;
    const size_t k = 4 + static_cast<size_t>(rng.UniformUint64(4));
    for (size_t j = 0; j < k; ++j) {
      items.push_back(group * 100 +
                      static_cast<ItemId>(rng.UniformUint64(20)));
    }
    data.AddTransaction(Transaction(std::move(items)));
    data.labels().Append("g" + std::to_string(group));
  }
  return data;
}

/// One in-distribution row from group `group`.
Transaction MakeGroupedRow(uint32_t group, Rng& rng) {
  std::vector<ItemId> items;
  const size_t k = 4 + static_cast<size_t>(rng.UniformUint64(4));
  for (size_t j = 0; j < k; ++j) {
    items.push_back(group * 100 + static_cast<ItemId>(rng.UniformUint64(20)));
  }
  return Transaction(std::move(items));
}

/// One drifted row: items from a range no labeling set has ever seen, so it
/// labels as an outlier and drags the drift statistics away from the
/// profile.
Transaction MakeDriftedRow(Rng& rng) {
  std::vector<ItemId> items;
  const size_t k = 4 + static_cast<size_t>(rng.UniformUint64(4));
  for (size_t j = 0; j < k; ++j) {
    items.push_back(5000 + static_cast<ItemId>(rng.UniformUint64(40)));
  }
  return Transaction(std::move(items));
}

bool SameOutcome(const TransactionLabeler::AssignOutcome& a,
                 const TransactionLabeler::AssignOutcome& b) {
  return a.cluster == b.cluster && a.neighbors == b.neighbors &&
         a.score == b.score;
}

class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::Clear();
    store_path_ = Track(TempPath("rock_stream_store"));
    model_path_ = Track(TempPath("rock_stream_model"));
    Track(model_path_ + ".tmp");
    Track(store_path_ + ".append.tmp");
    checkpoint_path_ = Track(TempPath("rock_stream_ckpt"));
    Track(checkpoint_path_ + ".tmp");
  }

  void TearDown() override {
    fail::Clear();
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }

  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }

  void WriteStore(size_t rows, uint64_t seed) {
    ASSERT_TRUE(
        WriteDatasetToStore(MakeGroupedDataset(rows, seed), store_path_).ok());
  }

  ModelBuildOptions BuildOptions(double theta) const {
    ModelBuildOptions opt;
    opt.pipeline.rock.theta = theta;
    opt.pipeline.rock.num_clusters = 3;
    opt.pipeline.sample_size = 60;
    opt.pipeline.seed = 2026;
    opt.pipeline.labeling.seed = 11;
    opt.model_path = model_path_;
    return opt;
  }

  /// Builds + persists the initial model for the current store.
  void BuildInitialModel(double theta) {
    auto built = BuildModel(store_path_, BuildOptions(theta));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }

  StreamOptions SessionOptions(double theta) const {
    StreamOptions opt;
    opt.build = BuildOptions(theta);
    opt.build.pipeline.checkpoint_path = checkpoint_path_;
    opt.background_rebuild = false;
    return opt;
  }

  Result<std::unique_ptr<StreamingSession>> OpenSession(double theta) {
    return StreamingSession::Open(store_path_, model_path_,
                                  SessionOptions(theta));
  }

  std::string store_path_;
  std::string model_path_;
  std::string checkpoint_path_;
  std::vector<std::string> cleanup_;
};

// ---------------------------------------------------------------------------
// Store append: generation stamps and commit discipline.

TEST_F(StreamingTest, AppendStampsGenerationAndBaseCount) {
  WriteStore(30, 0x57a1);
  {
    auto r = TransactionStoreReader::Open(store_path_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->generation(), 0u) << "fresh stores start at generation 0";
    EXPECT_EQ(r->base_count(), 30u);
  }

  Rng rng(0x91);
  const std::vector<Transaction> batch1 = {MakeGroupedRow(0, rng),
                                           MakeGroupedRow(1, rng)};
  auto a1 = AppendToStore(store_path_, batch1, nullptr);
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  EXPECT_EQ(a1->base_count, 30u);
  EXPECT_EQ(a1->new_count, 32u);
  EXPECT_EQ(a1->generation, 1u);

  const std::vector<Transaction> batch2 = {MakeGroupedRow(2, rng)};
  const std::vector<LabelId> labels2 = {7};
  auto a2 = AppendToStore(store_path_, batch2, &labels2);
  ASSERT_TRUE(a2.ok()) << a2.status().ToString();
  EXPECT_EQ(a2->base_count, 32u);
  EXPECT_EQ(a2->new_count, 33u);
  EXPECT_EQ(a2->generation, 2u);

  // The grown file reads back whole (CRC re-verified), appended rows last,
  // with the header stamps visible to readers.
  auto r = TransactionStoreReader::Open(store_path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count(), 33u);
  EXPECT_EQ(r->generation(), 2u);
  EXPECT_EQ(r->base_count(), 32u);
  std::vector<Transaction> rows;
  std::vector<LabelId> labels;
  while (r->Next()) {
    rows.push_back(r->transaction());
    labels.push_back(r->label());
  }
  ASSERT_TRUE(r->status().ok()) << r->status().ToString();
  ASSERT_EQ(rows.size(), 33u);
  EXPECT_EQ(rows[30].items(), batch1[0].items());
  EXPECT_EQ(rows[31].items(), batch1[1].items());
  EXPECT_EQ(rows[32].items(), batch2[0].items());
  EXPECT_EQ(labels[32], 7u);
}

TEST_F(StreamingTest, AppendRejectsEmptyAndMismatchedBatches) {
  WriteStore(10, 0xe0);
  Rng rng(0x92);
  EXPECT_TRUE(
      AppendToStore(store_path_, {}, nullptr).status().IsInvalidArgument());
  const std::vector<Transaction> rows = {MakeGroupedRow(0, rng)};
  const std::vector<LabelId> wrong = {1, 2};
  EXPECT_TRUE(
      AppendToStore(store_path_, rows, &wrong).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Incremental labels ≡ full §4.6 relabel, across θ × label threads.

TEST_F(StreamingTest, AppendLabelsMatchFullRelabelAcrossThetaAndThreads) {
  for (const double theta : {0.3, 0.6}) {
    SCOPED_TRACE(::testing::Message() << "theta = " << theta);
    WriteStore(150, 0xd1ff);
    BuildInitialModel(theta);

    auto session = OpenSession(theta);
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    Rng rng(0xbeef + static_cast<uint64_t>(theta * 100));
    std::vector<TransactionLabeler::AssignOutcome> incremental;
    const uint64_t base = (*session)->store_rows();
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<Transaction> rows;
      for (int i = 0; i < 8; ++i) {
        rows.push_back(
            MakeGroupedRow(static_cast<uint32_t>(rng.UniformUint64(3)), rng));
      }
      auto appended = (*session)->Append(rows, nullptr);
      ASSERT_TRUE(appended.ok()) << appended.status().ToString();
      incremental.insert(incremental.end(), appended->outcomes.begin(),
                         appended->outcomes.end());
    }

    // Oracle: the batch pipeline's whole-store labeling scan with the same
    // model, at several worker counts. The appended rows' incremental
    // labels must be the exact tail of every scan.
    auto handle = ModelHandle::Load(model_path_);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(::testing::Message() << "threads = " << threads);
      LabelStoreOptions scan;
      scan.num_threads = threads;
      auto full = LabelStore(store_path_, handle->labeler(), scan);
      ASSERT_TRUE(full.ok()) << full.status().ToString();
      ASSERT_EQ(full->assignments.size(), base + incremental.size());
      for (size_t i = 0; i < incremental.size(); ++i) {
        EXPECT_EQ(full->assignments[base + i], incremental[i].cluster)
            << "appended row " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Property: Assign is order- and batch-independent.

TEST_F(StreamingTest, AssignIsOrderAndBatchIndependent) {
  WriteStore(150, 0x0bde);
  BuildInitialModel(0.4);

  ROCK_SEEDED_RNG(rng, 0x0bde5);
  std::vector<Transaction> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back(rng.UniformUint64(5) == 0
                       ? MakeDriftedRow(rng)
                       : MakeGroupedRow(
                             static_cast<uint32_t>(rng.UniformUint64(3)), rng));
  }

  // (a) one bulk append.
  auto bulk_session = OpenSession(0.4);
  ASSERT_TRUE(bulk_session.ok()) << bulk_session.status().ToString();
  auto bulk = (*bulk_session)->Append(rows, nullptr);
  ASSERT_TRUE(bulk.ok()) << bulk.status().ToString();

  // (b) the same rows one at a time, in shuffled order, on a fresh copy of
  // the store (assignments depend only on the transaction and the model,
  // never on what else is in the store or the order of arrival).
  const std::string store2 = Track(TempPath("rock_stream_store_shuffled"));
  Track(store2 + ".append.tmp");
  ASSERT_TRUE(
      WriteDatasetToStore(MakeGroupedDataset(150, 0x0bde), store2).ok());
  auto one_session =
      StreamingSession::Open(store2, model_path_, SessionOptions(0.4));
  ASSERT_TRUE(one_session.ok()) << one_session.status().ToString();
  std::vector<size_t> order(rows.size());
  std::iota(order.begin(), order.end(), size_t{0});
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<size_t>(rng.UniformUint64(i))]);
  }
  std::vector<TransactionLabeler::AssignOutcome> shuffled(rows.size());
  for (const size_t idx : order) {
    auto one = (*one_session)->Append({rows[idx]}, nullptr);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    ASSERT_EQ(one->outcomes.size(), 1u);
    shuffled[idx] = one->outcomes[0];
  }

  // (c) direct AssignDetailed with a cold scratch per row.
  auto handle = ModelHandle::Load(model_path_);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  for (size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "row " << i);
    TransactionLabeler::Scratch cold;
    const auto direct =
        handle->labeler().AssignDetailed(rows[i], &cold, nullptr);
    EXPECT_TRUE(SameOutcome(bulk->outcomes[i], direct))
        << "bulk " << bulk->outcomes[i].cluster << " vs direct "
        << direct.cluster;
    EXPECT_TRUE(SameOutcome(shuffled[i], direct))
        << "shuffled " << shuffled[i].cluster << " vs direct "
        << direct.cluster;
  }
}

// ---------------------------------------------------------------------------
// Drift detection.

TEST_F(StreamingTest, DriftTripsOnShiftedDataAndIsSticky) {
  WriteStore(150, 0xdead);
  BuildInitialModel(0.4);

  StreamOptions opt = SessionOptions(0.4);
  // Verdicts only on a full window: the trip latch is sticky, so a
  // half-filled window's noisy shares must not be allowed to latch it
  // before the in-distribution phase is even complete.
  opt.drift.window = 32;
  opt.drift.min_observations = 32;
  opt.drift.share_tolerance = 0.45;
  // This test targets the share trip; the neighbor check is covered by
  // DriftDetectorTest.NeighborDecayTripsWithoutShareShift (0 disables it —
  // freshly drawn rows legitimately carry fewer neighbors than the
  // profiled sample rows, which can sit in the labeling sets themselves).
  opt.drift.neighbor_ratio = 0.0;
  auto session = StreamingSession::Open(store_path_, model_path_, opt);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  Rng rng(0x5711);
  // In-distribution rows keep the detector quiet.
  std::vector<Transaction> good;
  for (int i = 0; i < 32; ++i) {
    good.push_back(
        MakeGroupedRow(static_cast<uint32_t>(rng.UniformUint64(3)), rng));
  }
  auto quiet = (*session)->Append(good, nullptr);
  ASSERT_TRUE(quiet.ok()) << quiet.status().ToString();
  EXPECT_FALSE(quiet->drift_tripped)
      << "tv=" << quiet->drift.tv_distance
      << " neighbors=" << quiet->drift.window_mean_neighbors;

  // A window full of never-seen items turns everything into outliers: the
  // share distribution collapses into the outlier bucket and trips.
  std::vector<Transaction> drifted;
  for (int i = 0; i < 32; ++i) drifted.push_back(MakeDriftedRow(rng));
  auto shifted = (*session)->Append(drifted, nullptr);
  ASSERT_TRUE(shifted.ok()) << shifted.status().ToString();
  EXPECT_TRUE(shifted->drift_tripped);
  EXPECT_TRUE(shifted->drift.share_tripped);

  // Sticky: good data afterwards does not clear the latch — only a model
  // swap (Reset) does.
  auto after = (*session)->Append(good, nullptr);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->drift_tripped) << "the trip latch must be sticky";
}

TEST(DriftDetectorTest, NeighborDecayTripsWithoutShareShift) {
  ModelProfile profile;
  profile.rows = 100;
  profile.outlier_share = 0.0;
  profile.mean_score = 1.0;
  profile.cluster_share = {1.0};
  profile.mean_neighbors = {10.0};

  DriftOptions opt;
  opt.window = 16;
  opt.min_observations = 8;
  opt.share_tolerance = 0.5;  // shares will not move
  opt.neighbor_ratio = 0.5;   // trip below 5 mean neighbors
  DriftDetector detector(profile, opt);

  // Same cluster as the profile, but barely qualifying: goodness decay.
  for (int i = 0; i < 16; ++i) {
    detector.Observe({/*cluster=*/0, /*neighbors=*/2, /*score=*/0.1});
  }
  EXPECT_TRUE(detector.tripped());
  EXPECT_TRUE(detector.report().neighbor_tripped);
  EXPECT_FALSE(detector.report().share_tripped);

  // Reset installs a new baseline and clears the latch.
  detector.Reset(profile);
  EXPECT_FALSE(detector.tripped());
  EXPECT_EQ(detector.report().window_fill, 0u);
}

TEST(DriftDetectorTest, EmptyProfileObservesButNeverTrips) {
  DriftOptions opt;
  opt.window = 8;
  opt.min_observations = 1;
  DriftDetector detector(ModelProfile{}, opt);
  EXPECT_TRUE(detector.disabled());
  for (int i = 0; i < 32; ++i) {
    detector.Observe({kUnassigned, 0, 0.0});
  }
  EXPECT_FALSE(detector.tripped());
  EXPECT_EQ(detector.observed(), 32u);
}

TEST(DriftDetectorTest, VerdictIsBatchSizeIndependent) {
  ModelProfile profile;
  profile.rows = 90;
  profile.outlier_share = 0.1;
  profile.mean_score = 0.5;
  profile.cluster_share = {0.5, 0.4};
  profile.mean_neighbors = {6.0, 4.0};
  DriftOptions opt;
  opt.window = 24;
  opt.min_observations = 8;

  ROCK_SEEDED_RNG(rng, 0xba7c4);
  std::vector<TransactionLabeler::AssignOutcome> stream;
  for (int i = 0; i < 100; ++i) {
    const uint64_t pick = rng.UniformUint64(10);
    TransactionLabeler::AssignOutcome oc;
    if (pick < 4) {
      oc = {kUnassigned, 0, 0.0};
    } else {
      oc = {static_cast<ClusterIndex>(pick % 2),
            static_cast<uint32_t>(1 + rng.UniformUint64(8)), 0.3};
    }
    stream.push_back(oc);
  }

  // The same observation stream, delivered in any batching, must leave the
  // detector in an identical state after every prefix — Evaluate recomputes
  // from the window, so there is no incremental accumulation to diverge.
  DriftDetector one(profile, opt);
  DriftDetector chunked(profile, opt);
  size_t fed = 0;
  Rng chunk_rng(0x51ce);
  while (fed < stream.size()) {
    const size_t n =
        std::min(stream.size() - fed, 1 + chunk_rng.UniformUint64(7));
    for (size_t i = 0; i < n; ++i) one.Observe(stream[fed + i]);
    for (size_t i = 0; i < n; ++i) chunked.Observe(stream[fed + i]);
    fed += n;
    EXPECT_EQ(one.tripped(), chunked.tripped());
    EXPECT_EQ(one.report().tv_distance, chunked.report().tv_distance);
    EXPECT_EQ(one.report().window_mean_neighbors,
              chunked.report().window_mean_neighbors);
  }
}

// ---------------------------------------------------------------------------
// Drift-triggered rebuild + atomic swap.

TEST_F(StreamingTest, AutoRebuildSwapsModelAndResetsDrift) {
  WriteStore(150, 0xab1e);
  BuildInitialModel(0.4);

  StreamOptions opt = SessionOptions(0.4);
  opt.auto_rebuild = true;
  opt.background_rebuild = false;
  opt.drift.window = 32;
  opt.drift.min_observations = 16;
  opt.drift.share_tolerance = 0.4;
  auto session = StreamingSession::Open(store_path_, model_path_, opt);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const CheckpointFingerprint before = (*session)->Acquire()->fingerprint();

  Rng rng(0x4eb1);
  std::vector<Transaction> drifted;
  for (int i = 0; i < 32; ++i) drifted.push_back(MakeDriftedRow(rng));
  auto appended = (*session)->Append(drifted, nullptr);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_TRUE(appended->drift_tripped);
  EXPECT_TRUE(appended->rebuild_started);
  ASSERT_TRUE((*session)->WaitForRebuild().ok());
  EXPECT_EQ((*session)->rebuilds(), 1u);

  // The swapped-in model is the re-cluster of the grown store: its
  // fingerprint covers the new row count, in process and on disk alike.
  const CheckpointFingerprint after = (*session)->Acquire()->fingerprint();
  EXPECT_FALSE(after == before);
  EXPECT_EQ(after.store_count, (*session)->store_rows());
  auto on_disk = ModelHandle::Load(model_path_);
  ASSERT_TRUE(on_disk.ok()) << on_disk.status().ToString();
  EXPECT_TRUE(on_disk->fingerprint() == after)
      << "the in-process swap and the published bundle must agree";

  // The rebuild resets the drift baseline: the window is empty and the
  // latch is clear.
  const DriftReport report = (*session)->drift_report();
  EXPECT_FALSE(report.tripped);
  EXPECT_EQ(report.window_fill, 0u);

  // The rebuild leaves no checkpoint behind (it is removed after the bundle
  // is safely on disk).
  EXPECT_FALSE(fs::exists(checkpoint_path_));

  // Labels after the swap come from the new model, bit-identical to a
  // fresh load of the published bundle.
  const Transaction probe = MakeGroupedRow(1, rng);
  TransactionLabeler::Scratch cold;
  EXPECT_TRUE(SameOutcome(
      (*session)->Label(probe),
      on_disk->labeler().AssignDetailed(probe, &cold, nullptr)));
}

TEST_F(StreamingTest, MaybeReloadPicksUpExternallyPublishedModel) {
  WriteStore(150, 0x4e10);
  BuildInitialModel(0.4);
  auto session = OpenSession(0.4);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto unchanged = (*session)->MaybeReload();
  ASSERT_TRUE(unchanged.ok()) << unchanged.status().ToString();
  EXPECT_FALSE(*unchanged) << "same fingerprint must not reload";

  // Another process publishes a new bundle (different sampling seed →
  // different fingerprint) to the same path.
  ModelBuildOptions other = BuildOptions(0.4);
  other.pipeline.seed = 777;
  ASSERT_TRUE(BuildModel(store_path_, other).ok());

  auto reloaded = (*session)->MaybeReload();
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(*reloaded);
  EXPECT_EQ((*session)->Acquire()->fingerprint().sample_seed, 777u);
  auto again = (*session)->MaybeReload();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(*again);
}

// ---------------------------------------------------------------------------
// Swap atomicity under concurrent queries (the stale-handle regression).

TEST_F(StreamingTest, SwapMidStreamNeverMixesModels) {
  // Two hand-built models that answer the same probe differently: under A
  // the probe is cluster 0; under B (whose labeling sets exclude the
  // probe's items) it is an outlier. Any answer other than {0, -1} would
  // mean a query was answered by a mix of the two.
  ModelBundle a;
  a.theta = 0.5;
  a.f_exponent = MarketBasketF(0.5);
  a.labeling_sets = {{Transaction({1, 2, 3}), Transaction({2, 3, 4})},
                     {Transaction({100, 101}), Transaction({101, 102})}};
  a.fingerprint.store_count = 1;
  ModelBundle b;
  b.theta = 0.5;
  b.f_exponent = MarketBasketF(0.5);
  b.labeling_sets = {{Transaction({200, 201}), Transaction({201, 202})},
                     {Transaction({300, 301}), Transaction({301, 302})}};
  b.fingerprint.store_count = 2;

  auto handle_a = ModelHandle::FromBundle(std::move(a));
  auto handle_b = ModelHandle::FromBundle(std::move(b));
  ASSERT_TRUE(handle_a.ok() && handle_b.ok());
  auto shared_a = std::make_shared<const ModelHandle>(std::move(*handle_a));
  auto shared_b = std::make_shared<const ModelHandle>(std::move(*handle_b));

  const Transaction probe({1, 2, 3});
  TransactionLabeler::Scratch cold;
  const ClusterIndex answer_a = shared_a->labeler().Assign(probe);
  const ClusterIndex answer_b = shared_b->labeler().Assign(probe);
  ASSERT_EQ(answer_a, 0);
  ASSERT_EQ(answer_b, kUnassigned);

  SwappableModel model(shared_a);
  ServeOptions serve;
  serve.num_threads = 2;
  serve.max_batch = 4;
  LabelServer server(&model, serve);
  ASSERT_TRUE(server.Start().ok());

  // Hammer the probe while swapping back and forth. Every answer must be
  // exactly A's or exactly B's — snapshots pin whole batches to one model.
  std::vector<std::future<ClusterIndex>> answers;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      auto f = server.Submit(probe);
      if (f.ok()) answers.push_back(std::move(*f));
    }
    model.Swap((round % 2 == 0) ? shared_b : shared_a);
  }
  for (auto& f : answers) {
    const ClusterIndex c = f.get();
    EXPECT_TRUE(c == answer_a || c == answer_b) << "mixed-model answer " << c;
  }

  // After the dust settles, the current model answers.
  model.Swap(shared_b);
  auto last = server.Submit(probe);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->get(), answer_b);
  server.Stop();
  EXPECT_GE(model.swaps(), 51u);
}

// ---------------------------------------------------------------------------
// Background rebuild concurrent with appends and queries (TSan leg).

TEST_F(StreamingTest, BackgroundRebuildRunsConcurrentlyWithTraffic) {
  WriteStore(150, 0xbac6);
  BuildInitialModel(0.4);

  StreamOptions opt = SessionOptions(0.4);
  opt.auto_rebuild = true;
  opt.background_rebuild = true;
  opt.drift.window = 32;
  opt.drift.min_observations = 16;
  opt.drift.share_tolerance = 0.4;
  auto session = StreamingSession::Open(store_path_, model_path_, opt);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  Rng rng(0x7ead);
  const Transaction probe = MakeGroupedRow(0, rng);
  std::atomic<bool> stop{false};
  // A reader thread querying through snapshots while appends trip drift
  // and the rebuild thread swaps the model underneath it.
  std::thread querier([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snapshot = (*session).get()->Acquire();
      TransactionLabeler::Scratch scratch;
      (void)snapshot->labeler().AssignDetailed(probe, &scratch, nullptr);
    }
  });

  bool rebuild_started = false;
  for (int batch = 0; batch < 6 && !rebuild_started; ++batch) {
    std::vector<Transaction> drifted;
    for (int i = 0; i < 16; ++i) drifted.push_back(MakeDriftedRow(rng));
    auto appended = (*session)->Append(drifted, nullptr);
    ASSERT_TRUE(appended.ok()) << appended.status().ToString();
    rebuild_started = appended->rebuild_started;
  }
  EXPECT_TRUE(rebuild_started);
  ASSERT_TRUE((*session)->WaitForRebuild().ok());
  stop.store(true);
  querier.join();

  EXPECT_EQ((*session)->rebuilds(), 1u);
  EXPECT_EQ((*session)->Acquire()->fingerprint().store_count,
            (*session)->store_rows());
}

// ---------------------------------------------------------------------------
// The soak harness: seeded randomized append/query/reload/crash loop with a
// per-epoch differential oracle, across θ.

TEST_F(StreamingTest, RandomizedSoakDifferential) {
  for (const double theta : {0.3, 0.6}) {
    SCOPED_TRACE(::testing::Message() << "theta = " << theta);
    const uint64_t seed = 0x50a6 + static_cast<uint64_t>(theta * 1000);
    ROCK_SEEDED_RNG(rng, seed);

    WriteStore(150, seed);
    BuildInitialModel(theta);
    auto session = OpenSession(theta);
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    struct LabeledRow {
      uint64_t row;
      size_t epoch;
      Transaction tx;
      TransactionLabeler::AssignOutcome outcome;
    };
    std::vector<LabeledRow> labeled;
    std::vector<std::shared_ptr<const ModelHandle>> epochs = {
        (*session)->Acquire()};
    uint64_t expected_rows = (*session)->store_rows();
    uint64_t expected_generation = 0;

    const auto make_batch = [&](size_t n) {
      std::vector<Transaction> rows;
      for (size_t i = 0; i < n; ++i) {
        rows.push_back(
            rng.UniformUint64(6) == 0
                ? MakeDriftedRow(rng)
                : MakeGroupedRow(static_cast<uint32_t>(rng.UniformUint64(3)),
                                 rng));
      }
      return rows;
    };

    for (int op = 0; op < 60; ++op) {
      SCOPED_TRACE(::testing::Message() << "op " << op);
      const uint64_t pick = rng.UniformUint64(10);
      if (pick < 5) {
        // Append a random batch and record every outcome with its epoch.
        const auto rows = make_batch(1 + rng.UniformUint64(6));
        auto appended = (*session)->Append(rows, nullptr);
        ASSERT_TRUE(appended.ok()) << appended.status().ToString();
        ASSERT_EQ(appended->store.base_count, expected_rows);
        expected_rows += rows.size();
        ++expected_generation;
        ASSERT_EQ(appended->store.generation, expected_generation);
        for (size_t i = 0; i < rows.size(); ++i) {
          labeled.push_back({appended->store.base_count + i,
                             epochs.size() - 1, rows[i],
                             appended->outcomes[i]});
        }
      } else if (pick < 7) {
        // Query: a read-only label must agree with a cold recomputation.
        const Transaction probe =
            MakeGroupedRow(static_cast<uint32_t>(rng.UniformUint64(3)), rng);
        TransactionLabeler::Scratch cold;
        EXPECT_TRUE(SameOutcome((*session)->Label(probe),
                                epochs.back()->labeler().AssignDetailed(
                                    probe, &cold, nullptr)));
      } else if (pick < 8 && fail::BuildEnabled()) {
        // Crash: arm a commit crash, watch the append fail, verify the
        // store is untouched, then retry — no duplicated rows.
        ASSERT_TRUE(
            fail::Configure("store.commit=fire_on_hit_1:crash").ok());
        const auto rows = make_batch(2);
        auto crashed = (*session)->Append(rows, nullptr);
        ASSERT_FALSE(crashed.ok());
        EXPECT_TRUE(fail::IsInjectedCrash(crashed.status()))
            << crashed.status().ToString();
        fail::Clear();
        {
          auto r = TransactionStoreReader::Open(store_path_);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ASSERT_EQ(r->count(), expected_rows)
              << "a crashed append must leave the store untouched";
          ASSERT_EQ(r->generation(), expected_generation);
        }
        auto retried = (*session)->Append(rows, nullptr);
        ASSERT_TRUE(retried.ok()) << retried.status().ToString();
        ASSERT_EQ(retried->store.base_count, expected_rows);
        expected_rows += rows.size();
        ++expected_generation;
        for (size_t i = 0; i < rows.size(); ++i) {
          labeled.push_back({retried->store.base_count + i, epochs.size() - 1,
                             rows[i], retried->outcomes[i]});
        }
      } else if (pick < 9) {
        // Reload: tear the session down and reopen it. The store header
        // and the model fingerprint must survive the round-trip.
        const CheckpointFingerprint fp = epochs.back()->fingerprint();
        session = OpenSession(theta);
        ASSERT_TRUE(session.ok()) << session.status().ToString();
        EXPECT_EQ((*session)->store_rows(), expected_rows);
        EXPECT_EQ((*session)->generation(), expected_generation);
        EXPECT_TRUE((*session)->Acquire()->fingerprint() == fp);
        epochs.back() = (*session)->Acquire();
      } else {
        // Re-cluster the grown store and swap: a new epoch begins.
        Status s = (*session)->Rebuild();
        ASSERT_TRUE(s.ok()) << s.ToString();
        epochs.push_back((*session)->Acquire());
        ASSERT_EQ(epochs.back()->fingerprint().store_count, expected_rows);
      }
    }

    // Differential oracle, per epoch: every incremental label must be
    // bit-identical to a cold recomputation with the model epoch that
    // produced it.
    for (const LabeledRow& entry : labeled) {
      SCOPED_TRACE(::testing::Message()
                   << "store row " << entry.row << " epoch " << entry.epoch);
      TransactionLabeler::Scratch cold;
      const auto oracle = epochs[entry.epoch]->labeler().AssignDetailed(
          entry.tx, &cold, nullptr);
      ASSERT_TRUE(SameOutcome(entry.outcome, oracle))
          << "incremental " << entry.outcome.cluster << " vs oracle "
          << oracle.cluster;
    }

    // And the rows labeled under the final epoch must be the exact tail of
    // a full multi-threaded LabelStore scan with that model.
    const size_t final_epoch = epochs.size() - 1;
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(::testing::Message() << "threads = " << threads);
      LabelStoreOptions scan;
      scan.num_threads = threads;
      auto full =
          LabelStore(store_path_, epochs[final_epoch]->labeler(), scan);
      ASSERT_TRUE(full.ok()) << full.status().ToString();
      ASSERT_EQ(full->assignments.size(), expected_rows);
      for (const LabeledRow& entry : labeled) {
        if (entry.epoch != final_epoch) continue;
        EXPECT_EQ(full->assignments[entry.row], entry.outcome.cluster)
            << "store row " << entry.row;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CLI: `rock append` wires the whole stack together.

TEST_F(StreamingTest, CliAppendWritesTailIdenticalAssignments) {
  WriteStore(150, 0xc11);
  std::string out;
  ASSERT_EQ(RunCli({"build", "--store=" + store_path_,
                    "--model=" + model_path_, "--theta=0.4", "--k=3",
                    "--sample-size=60"},
                   &out),
            0)
      << out;

  const std::string extra = Track(TempPath("rock_stream_cli_extra"));
  ASSERT_TRUE(
      WriteDatasetToStore(MakeGroupedDataset(20, 0xc12), extra).ok());
  const std::string append_csv = Track(TempPath("rock_stream_cli_append"));
  out.clear();
  ASSERT_EQ(RunCli({"append", "--store=" + store_path_,
                    "--model=" + model_path_, "--from-store=" + extra,
                    "--assignments=" + append_csv},
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("append: +20 rows"), std::string::npos) << out;

  const std::string full_csv = Track(TempPath("rock_stream_cli_full"));
  out.clear();
  ASSERT_EQ(RunCli({"query", "--model=" + model_path_,
                    "--from-store=" + store_path_,
                    "--assignments=" + full_csv},
                   &out),
            0)
      << out;

  // The append CSV (absolute row indices) must be the exact tail of the
  // full relabel CSV.
  std::ifstream full_in(full_csv);
  std::vector<std::string> full_lines;
  std::string line;
  while (std::getline(full_in, line)) full_lines.push_back(line);
  std::ifstream append_in(append_csv);
  std::vector<std::string> append_lines;
  while (std::getline(append_in, line)) append_lines.push_back(line);
  ASSERT_EQ(append_lines.size(), 21u) << "header + 20 rows";
  ASSERT_EQ(full_lines.size(), 171u);
  for (size_t i = 1; i < append_lines.size(); ++i) {
    EXPECT_EQ(append_lines[i], full_lines[150 + i]) << "line " << i;
  }
}

}  // namespace
}  // namespace rock
