// Tests for core/dendrogram.h — cuts of the ROCK merge tree and Newick
// export.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dendrogram.h"
#include "data/dataset.h"
#include "similarity/jaccard.h"
#include "similarity/similarity_table.h"

namespace rock {
namespace {

/// Figure 1 data (two overlapping transaction clusters, 14 points).
TransactionDataset Figure1Data() {
  TransactionDataset ds;
  auto add_triples = [&](const std::vector<ItemId>& items) {
    for (size_t i = 0; i < items.size(); ++i)
      for (size_t j = i + 1; j < items.size(); ++j)
        for (size_t l = j + 1; l < items.size(); ++l)
          ds.AddTransaction(Transaction({items[i], items[j], items[l]}));
  };
  add_triples({1, 2, 3, 4, 5});
  add_triples({1, 2, 6, 7});
  return ds;
}

RockResult RunRock(const PointSimilarity& sim, size_t k,
                   std::function<double(double)> f = MarketBasketF) {
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = k;
  opt.f = std::move(f);
  auto result = RockClusterer(opt).Cluster(sim);
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

TEST(DendrogramTest, FullCutMatchesFinalClustering) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockResult result = RunRock(sim, 2, ConservativeMarketBasketF);
  auto dendro = Dendrogram::FromRockResult(result, ds.size());
  ASSERT_TRUE(dendro.ok());
  EXPECT_EQ(dendro->num_participants(), 14u);
  EXPECT_EQ(dendro->num_merges(), 12u);

  Clustering full = dendro->CutAfterMerges(dendro->num_merges());
  // Same partition as the run's final clustering (cluster ids may differ,
  // but SortBySizeDescending makes them comparable here).
  EXPECT_EQ(full.assignment, result.clustering.assignment);
}

TEST(DendrogramTest, CutAtKCountsClusters) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockResult result = RunRock(sim, 2, ConservativeMarketBasketF);
  auto dendro = Dendrogram::FromRockResult(result, ds.size());
  ASSERT_TRUE(dendro.ok());
  for (size_t k : {2u, 3u, 5u, 9u, 14u}) {
    Clustering cut = dendro->CutAtK(k);
    EXPECT_EQ(cut.num_clusters(), k) << "k=" << k;
  }
  // k beyond the participant count: everything singleton.
  EXPECT_EQ(dendro->CutAtK(100).num_clusters(), 14u);
  // k = 0 is clamped to 1-ish (the run stopped at 2, so 2 remain).
  EXPECT_EQ(dendro->CutAtK(0).num_clusters(), 2u);
}

TEST(DendrogramTest, CutsAreNestedRefinements) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockResult result = RunRock(sim, 2);
  auto dendro = Dendrogram::FromRockResult(result, ds.size());
  ASSERT_TRUE(dendro.ok());
  // Every later cut must be a coarsening: points together at m merges stay
  // together at m+1.
  for (size_t m = 0; m < dendro->num_merges(); ++m) {
    Clustering fine = dendro->CutAfterMerges(m);
    Clustering coarse = dendro->CutAfterMerges(m + 1);
    for (size_t p = 0; p < ds.size(); ++p) {
      for (size_t q = p + 1; q < ds.size(); ++q) {
        if (fine.assignment[p] == fine.assignment[q]) {
          EXPECT_EQ(coarse.assignment[p], coarse.assignment[q])
              << "m=" << m << " pair " << p << "," << q;
        }
      }
    }
  }
}

TEST(DendrogramTest, ZeroCutIsAllSingletons) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockResult result = RunRock(sim, 2);
  auto dendro = Dendrogram::FromRockResult(result, ds.size());
  ASSERT_TRUE(dendro.ok());
  Clustering cut = dendro->CutAfterMerges(0);
  EXPECT_EQ(cut.num_clusters(), 14u);
  for (const auto& members : cut.clusters) {
    EXPECT_EQ(members.size(), 1u);
  }
}

TEST(DendrogramTest, PrunedPointsStayUnassigned) {
  // A graph with two linked triangles and one isolated point.
  SimilarityTable t(7);
  for (auto [i, j] : {std::pair<size_t, size_t>{0, 1}, {0, 2}, {1, 2},
                      {3, 4}, {3, 5}, {4, 5}}) {
    ASSERT_TRUE(t.Set(i, j, 1.0).ok());
  }
  RockResult result = RunRock(t, 2);
  auto dendro = Dendrogram::FromRockResult(result, 7);
  ASSERT_TRUE(dendro.ok());
  EXPECT_EQ(dendro->num_participants(), 6u);
  Clustering cut = dendro->CutAtK(2);
  EXPECT_EQ(cut.assignment[6], kUnassigned);
  EXPECT_EQ(cut.num_clusters(), 2u);
}

TEST(DendrogramTest, MismatchedPointCountRejected) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockResult result = RunRock(sim, 2);
  EXPECT_TRUE(Dendrogram::FromRockResult(result, 99)
                  .status()
                  .IsInvalidArgument());
}

TEST(DendrogramTest, NewickShapeAndLeaves) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockResult result = RunRock(sim, 2, ConservativeMarketBasketF);
  auto dendro = Dendrogram::FromRockResult(result, ds.size());
  ASSERT_TRUE(dendro.ok());
  const std::string newick = dendro->ToNewick();

  EXPECT_EQ(newick.back(), ';');
  // Balanced parentheses.
  int depth = 0;
  for (char c : newick) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // Every participating point appears exactly once as a leaf token.
  for (size_t p = 0; p < ds.size(); ++p) {
    const std::string token = "p" + std::to_string(p);
    size_t count = 0;
    size_t pos = 0;
    while ((pos = newick.find(token, pos)) != std::string::npos) {
      // Avoid prefix matches (p1 inside p12).
      const size_t end = pos + token.size();
      if (end >= newick.size() ||
          !std::isdigit(static_cast<unsigned char>(newick[end]))) {
        ++count;
      }
      pos = end;
    }
    EXPECT_EQ(count, 1u) << token;
  }
  // Internal nodes carry goodness labels.
  EXPECT_NE(newick.find(")g="), std::string::npos);
}

TEST(DendrogramTest, NewickForestJoinsRoots) {
  // Two components → two roots under a virtual root.
  SimilarityTable t(6);
  for (auto [i, j] : {std::pair<size_t, size_t>{0, 1}, {0, 2}, {1, 2},
                      {3, 4}, {3, 5}, {4, 5}}) {
    ASSERT_TRUE(t.Set(i, j, 1.0).ok());
  }
  RockResult result = RunRock(t, 1);  // stops at 2 (no cross links)
  auto dendro = Dendrogram::FromRockResult(result, 6);
  ASSERT_TRUE(dendro.ok());
  const std::string newick = dendro->ToNewick();
  // Virtual root wraps exactly two subtrees → ends with ");" and the top
  // level has one comma.
  EXPECT_EQ(newick.substr(newick.size() - 2), ");");
  int depth = 0;
  int top_commas = 0;
  for (char c : newick) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 1) ++top_commas;
  }
  EXPECT_EQ(top_commas, 1);
}

}  // namespace
}  // namespace rock
