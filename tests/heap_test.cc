// Tests for util/updatable_heap.h — including a randomized property suite
// against a reference implementation, since the Fig. 3 merge loop leans
// entirely on erase/update-of-arbitrary-key correctness.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>

#include "common/random.h"
#include "util/updatable_heap.h"
#include "test_support.h"

namespace rock {
namespace {

TEST(UpdatableHeapTest, EmptyHeap) {
  UpdatableHeap<int, double> h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.Contains(1));
  EXPECT_FALSE(h.Erase(1));
}

TEST(UpdatableHeapTest, InsertAndTop) {
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(1, 0.5);
  h.InsertOrUpdate(2, 0.9);
  h.InsertOrUpdate(3, 0.1);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.Top().key, 2);
  EXPECT_DOUBLE_EQ(h.Top().priority, 0.9);
}

TEST(UpdatableHeapTest, ExtractDescendingOrder) {
  UpdatableHeap<int, double> h;
  for (int i = 0; i < 10; ++i) h.InsertOrUpdate(i, static_cast<double>(i));
  for (int expected = 9; expected >= 0; --expected) {
    EXPECT_EQ(h.ExtractTop().key, expected);
  }
  EXPECT_TRUE(h.empty());
}

TEST(UpdatableHeapTest, UpdateRaisesPriority) {
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(1, 0.1);
  h.InsertOrUpdate(2, 0.5);
  h.InsertOrUpdate(1, 0.9);  // raise
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.Top().key, 1);
}

TEST(UpdatableHeapTest, UpdateLowersPriority) {
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(1, 0.9);
  h.InsertOrUpdate(2, 0.5);
  h.InsertOrUpdate(1, 0.1);  // lower
  EXPECT_EQ(h.Top().key, 2);
  EXPECT_DOUBLE_EQ(h.PriorityOf(1), 0.1);
}

TEST(UpdatableHeapTest, EraseArbitraryKey) {
  UpdatableHeap<int, double> h;
  for (int i = 0; i < 8; ++i) h.InsertOrUpdate(i, static_cast<double>(i));
  EXPECT_TRUE(h.Erase(3));
  EXPECT_FALSE(h.Contains(3));
  EXPECT_FALSE(h.Erase(3));
  EXPECT_EQ(h.size(), 7u);
  // Remaining extraction order is still correct.
  std::vector<int> order;
  while (!h.empty()) order.push_back(h.ExtractTop().key);
  EXPECT_EQ(order, (std::vector<int>{7, 6, 5, 4, 2, 1, 0}));
}

TEST(UpdatableHeapTest, EraseTop) {
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(1, 1.0);
  h.InsertOrUpdate(2, 2.0);
  EXPECT_TRUE(h.Erase(2));
  EXPECT_EQ(h.Top().key, 1);
}

TEST(UpdatableHeapTest, TiesBreakTowardSmallerKey) {
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(7, 0.5);
  h.InsertOrUpdate(3, 0.5);
  h.InsertOrUpdate(5, 0.5);
  EXPECT_EQ(h.ExtractTop().key, 3);
  EXPECT_EQ(h.ExtractTop().key, 5);
  EXPECT_EQ(h.ExtractTop().key, 7);
}

TEST(UpdatableHeapTest, ClearEmptiesHeap) {
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(1, 1.0);
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Contains(1));
}

TEST(UpdatableHeapTest, NegativeInfinityPriorities) {
  // The global heap uses −inf for "no candidate" clusters.
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(1, -std::numeric_limits<double>::infinity());
  h.InsertOrUpdate(2, 0.0);
  EXPECT_EQ(h.Top().key, 2);
  h.Erase(2);
  EXPECT_EQ(h.Top().key, 1);
}

TEST(UpdatableHeapTest, ReplaceKeyRenamesEntry) {
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(1, 0.1);
  h.InsertOrUpdate(2, 0.5);
  h.InsertOrUpdate(3, 0.9);
  h.ReplaceKey(2, 7, 0.5);  // same priority, new name
  EXPECT_EQ(h.size(), 3u);
  EXPECT_FALSE(h.Contains(2));
  EXPECT_TRUE(h.Contains(7));
  EXPECT_DOUBLE_EQ(h.PriorityOf(7), 0.5);
  EXPECT_EQ(h.Top().key, 3);
}

TEST(UpdatableHeapTest, ReplaceKeyCanRaiseToTop) {
  UpdatableHeap<int, double> h;
  for (int i = 0; i < 8; ++i) h.InsertOrUpdate(i, static_cast<double>(i));
  h.ReplaceKey(0, 100, 50.0);  // bottom entry renamed and sifted to top
  EXPECT_EQ(h.Top().key, 100);
  EXPECT_DOUBLE_EQ(h.Top().priority, 50.0);
  std::vector<int> order;
  while (!h.empty()) order.push_back(h.ExtractTop().key);
  EXPECT_EQ(order, (std::vector<int>{100, 7, 6, 5, 4, 3, 2, 1}));
}

TEST(UpdatableHeapTest, ReplaceKeyCanLowerTop) {
  UpdatableHeap<int, double> h;
  for (int i = 0; i < 8; ++i) h.InsertOrUpdate(i, static_cast<double>(i));
  h.ReplaceKey(7, 100, -1.0);  // top entry renamed and sunk to the bottom
  EXPECT_EQ(h.Top().key, 6);
  EXPECT_TRUE(h.Contains(100));
  std::vector<int> order;
  while (!h.empty()) order.push_back(h.ExtractTop().key);
  EXPECT_EQ(order, (std::vector<int>{6, 5, 4, 3, 2, 1, 0, 100}));
}

TEST(UpdatableHeapTest, AssignBuildsHeapInBulk) {
  using Entry = UpdatableHeap<int, double>::Entry;
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(99, 99.0);  // previous content must be discarded
  std::vector<Entry> entries;
  for (int i = 0; i < 20; ++i) {
    entries.push_back(Entry{i, static_cast<double>((i * 7) % 20)});
  }
  h.Assign(std::move(entries));
  EXPECT_EQ(h.size(), 20u);
  EXPECT_FALSE(h.Contains(99));
  // Extraction order matches 20 individual inserts.
  UpdatableHeap<int, double> ref;
  for (int i = 0; i < 20; ++i) {
    ref.InsertOrUpdate(i, static_cast<double>((i * 7) % 20));
  }
  while (!ref.empty()) {
    ASSERT_FALSE(h.empty());
    const auto want = ref.ExtractTop();
    const auto got = h.ExtractTop();
    EXPECT_EQ(got.key, want.key);
    EXPECT_DOUBLE_EQ(got.priority, want.priority);
  }
  EXPECT_TRUE(h.empty());
}

TEST(UpdatableHeapTest, AssignEmptyClearsHeap) {
  UpdatableHeap<int, double> h;
  h.InsertOrUpdate(1, 1.0);
  h.Assign({});
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Contains(1));
}

// ------------------------------------------------ randomized property test --

/// Reference: a sorted set of (priority desc, key asc) plus a map for
/// lookups.
class ReferenceHeap {
 public:
  void InsertOrUpdate(int key, double priority) {
    Erase(key);
    by_key_[key] = priority;
    ordered_.insert({-priority, key});
  }
  bool Erase(int key) {
    auto it = by_key_.find(key);
    if (it == by_key_.end()) return false;
    ordered_.erase({-it->second, key});
    by_key_.erase(it);
    return true;
  }
  bool Contains(int key) const { return by_key_.count(key) > 0; }
  size_t size() const { return by_key_.size(); }
  std::pair<int, double> Top() const {
    auto [neg_priority, key] = *ordered_.begin();
    return {key, -neg_priority};
  }

 private:
  std::map<int, double> by_key_;
  std::set<std::pair<double, int>> ordered_;
};

class HeapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapPropertyTest, AgreesWithReferenceUnderRandomOps) {
  ROCK_SEEDED_RNG(rng, GetParam());
  UpdatableHeap<int, double> heap;
  ReferenceHeap ref;
  for (int op = 0; op < 5000; ++op) {
    const int key = static_cast<int>(rng.UniformUint64(50));
    const double action = rng.UniformDouble();
    if (action < 0.5) {
      // Priorities drawn from a small set to exercise tie-breaking.
      const double priority =
          static_cast<double>(rng.UniformUint64(10)) / 10.0;
      heap.InsertOrUpdate(key, priority);
      ref.InsertOrUpdate(key, priority);
    } else if (action < 0.6 && ref.Contains(key) &&
               !ref.Contains(key + 100)) {
      // ReplaceKey ≡ Erase(old) + Insert(new) in one sift; renamed keys
      // land in 100…149 and can themselves be renamed targets later.
      const double priority =
          static_cast<double>(rng.UniformUint64(10)) / 10.0;
      heap.ReplaceKey(key, key + 100, priority);
      ref.Erase(key);
      ref.InsertOrUpdate(key + 100, priority);
      EXPECT_FALSE(heap.Contains(key));
      EXPECT_TRUE(heap.Contains(key + 100));
    } else if (action < 0.75) {
      EXPECT_EQ(heap.Erase(key), ref.Erase(key));
    } else if (!ref.size()) {
      EXPECT_TRUE(heap.empty());
    } else {
      auto [rkey, rpriority] = ref.Top();
      ASSERT_FALSE(heap.empty());
      EXPECT_EQ(heap.Top().key, rkey);
      EXPECT_DOUBLE_EQ(heap.Top().priority, rpriority);
      if (action < 0.9) {
        heap.ExtractTop();
        ref.Erase(rkey);
      }
    }
    ASSERT_EQ(heap.size(), ref.size());
    EXPECT_EQ(heap.Contains(key), ref.Contains(key));
  }
  // Drain both; full extraction orders must agree (priority then key).
  while (ref.size() > 0) {
    auto [rkey, rpriority] = ref.Top();
    auto top = heap.ExtractTop();
    ASSERT_EQ(top.key, rkey);
    ASSERT_DOUBLE_EQ(top.priority, rpriority);
    ref.Erase(rkey);
  }
  EXPECT_TRUE(heap.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rock
