// tests/pipeline_resume_test.cc — crash-safe resumable pipeline.
//
// The differential harness this PR exists for: run the disk pipeline
// uninterrupted, run it again with a deterministic fault schedule that
// kills it mid-flight, resume from the checkpoint, and require the resumed
// output to be bit-identical to the uninterrupted run — across shard
// plans, label-thread counts and θ. Plus checkpoint format round-trip and
// corruption handling (a torn or bit-rotted checkpoint must cause a clean
// restart, never wrong labels), and the end-to-end golden-determinism
// check across merge engines and thread counts.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "data/disk_store.h"
#include "data/transaction.h"
#include "test_support.h"
#include "util/failpoint.h"

namespace rock {
namespace {

namespace fs = std::filesystem;

constexpr size_t kStoreRows = 120;

std::string TempPath(const std::string& stem) {
  return (fs::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + ".bin"))
      .string();
}

/// Three well-separated transaction groups (disjoint item ranges), so the
/// sample clusters cleanly and every θ in the grid labels deterministically.
TransactionDataset MakeGroupedDataset(size_t rows, uint64_t seed) {
  Rng rng(seed);
  TransactionDataset data;
  for (size_t i = 0; i < rows; ++i) {
    const uint32_t group = static_cast<uint32_t>(i % 3);
    std::vector<ItemId> items;
    const size_t k = 4 + static_cast<size_t>(rng.UniformUint64(4));
    for (size_t j = 0; j < k; ++j) {
      items.push_back(group * 100 +
                      static_cast<ItemId>(rng.UniformUint64(20)));
    }
    data.AddTransaction(Transaction(std::move(items)));
    data.labels().Append("g" + std::to_string(group));
  }
  return data;
}

void ExpectAssignStatsEq(const TransactionLabeler::AssignStats& a,
                         const TransactionLabeler::AssignStats& b) {
  EXPECT_EQ(a.clusters_pruned, b.clusters_pruned);
  EXPECT_EQ(a.clusters_scored, b.clusters_scored);
  EXPECT_EQ(a.points_skipped_length, b.points_skipped_length);
  EXPECT_EQ(a.similarities_computed, b.similarities_computed);
}

void ExpectMergesEq(const std::vector<MergeRecord>& a,
                    const std::vector<MergeRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].left, b[i].left) << "merge " << i;
    EXPECT_EQ(a[i].right, b[i].right) << "merge " << i;
    EXPECT_EQ(a[i].merged, b[i].merged) << "merge " << i;
    EXPECT_EQ(a[i].goodness, b[i].goodness) << "merge " << i;
    EXPECT_EQ(a[i].new_size, b[i].new_size) << "merge " << i;
  }
}

/// The differential oracle: everything a user can observe from a pipeline
/// run must be bit-identical between `got` and the uninterrupted `want`.
void ExpectSameOutputs(const PipelineResult& got, const PipelineResult& want) {
  EXPECT_EQ(got.sample_rows, want.sample_rows);
  EXPECT_EQ(got.sample_result.clustering.assignment,
            want.sample_result.clustering.assignment);
  EXPECT_EQ(got.sample_result.clustering.clusters,
            want.sample_result.clustering.clusters);
  ExpectMergesEq(got.sample_result.merges, want.sample_result.merges);
  EXPECT_EQ(got.labeling.assignments, want.labeling.assignments);
  EXPECT_EQ(got.labeling.ground_truth, want.labeling.ground_truth);
  EXPECT_EQ(got.labeling.num_outliers, want.labeling.num_outliers);
  ExpectAssignStatsEq(got.labeling.stats, want.labeling.stats);
}

class PipelineResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::Clear();
    store_path_ = TempPath("rock_resume_store");
    ckpt_path_ = TempPath("rock_resume_ckpt");
    ASSERT_TRUE(
        WriteDatasetToStore(MakeGroupedDataset(kStoreRows, 0x90c4), store_path_)
            .ok());
  }

  void TearDown() override {
    fail::Clear();
    std::remove(store_path_.c_str());
    std::remove(ckpt_path_.c_str());
    std::remove((ckpt_path_ + ".tmp").c_str());
  }

  PipelineOptions BaseOptions(double theta, size_t label_threads) const {
    PipelineOptions opt;
    opt.rock.theta = theta;
    opt.rock.num_clusters = 3;
    opt.rock.label_threads = label_threads;
    opt.sample_size = 60;
    opt.seed = 2026;
    opt.labeling.seed = 11;
    return opt;
  }

  std::string store_path_;
  std::string ckpt_path_;
};

// ---------------------------------------------------------------------------
// Checkpoint format.

TEST_F(PipelineResumeTest, CheckpointRoundTripsEveryField) {
  PipelineCheckpoint cp;
  cp.fingerprint.store_count = 5;
  cp.fingerprint.theta = 0.62;
  cp.fingerprint.num_clusters = 3;
  cp.fingerprint.min_neighbors = 1;
  cp.fingerprint.outlier_stop_multiple = 1.5;
  cp.fingerprint.min_cluster_support = 2;
  cp.fingerprint.sample_size = 4;
  cp.fingerprint.sample_seed = 99;
  cp.fingerprint.labeling_fraction = 0.25;
  cp.fingerprint.min_labeling_points = 8;
  cp.fingerprint.labeling_seed = 7;
  cp.sample_rows = {0, 1, 3, 4};
  cp.sample = {Transaction({1, 2, 3}), Transaction({2, 3}), Transaction({7}),
               Transaction(std::vector<ItemId>{})};
  cp.clustering = Clustering::FromAssignment({0, 0, 1, kUnassigned});
  cp.merges = {MergeRecord{1, 2, 4, 0.75, 3}};
  cp.stats.num_points = 4;
  cp.num_shards = 2;
  cp.shard_done = {1, 0};
  cp.shard_stats.resize(2);
  cp.shard_stats[0].clusters_scored = 6;
  cp.shard_stats[0].similarities_computed = 9;
  cp.shard_outliers = {1, 0};
  cp.assignments = {0, 0, 1, kUnassigned, kUnassigned};
  cp.ground_truth = {0, 0, 1, 1, kNoLabel};

  ASSERT_TRUE(SaveCheckpoint(cp, ckpt_path_).ok());
  auto loaded = LoadCheckpoint(ckpt_path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(loaded->fingerprint == cp.fingerprint);
  EXPECT_EQ(loaded->sample_rows, cp.sample_rows);
  ASSERT_EQ(loaded->sample.size(), cp.sample.size());
  for (size_t i = 0; i < cp.sample.size(); ++i) {
    EXPECT_EQ(loaded->sample[i].items(), cp.sample[i].items()) << i;
  }
  EXPECT_EQ(loaded->clustering.assignment, cp.clustering.assignment);
  EXPECT_EQ(loaded->clustering.clusters, cp.clustering.clusters);
  ExpectMergesEq(loaded->merges, cp.merges);
  EXPECT_EQ(loaded->stats.num_points, cp.stats.num_points);
  EXPECT_EQ(loaded->num_shards, cp.num_shards);
  EXPECT_EQ(loaded->shard_done, cp.shard_done);
  ExpectAssignStatsEq(loaded->shard_stats[0], cp.shard_stats[0]);
  ExpectAssignStatsEq(loaded->shard_stats[1], cp.shard_stats[1]);
  EXPECT_EQ(loaded->shard_outliers, cp.shard_outliers);
  EXPECT_EQ(loaded->assignments, cp.assignments);
  EXPECT_EQ(loaded->ground_truth, cp.ground_truth);
}

TEST_F(PipelineResumeTest, LoadCheckpointRejectsEveryCorruptionShape) {
  PipelineCheckpoint cp;
  cp.fingerprint.store_count = 3;
  cp.fingerprint.sample_size = 2;
  cp.sample_rows = {0, 2};
  cp.sample = {Transaction({1, 2}), Transaction({3, 4})};
  cp.clustering = Clustering::FromAssignment({0, 1});
  cp.num_shards = 1;
  cp.shard_done = {0};
  cp.shard_stats.resize(1);
  cp.shard_outliers = {0};
  cp.assignments = {kUnassigned, kUnassigned, kUnassigned};
  cp.ground_truth = {kNoLabel, kNoLabel, kNoLabel};
  ASSERT_TRUE(SaveCheckpoint(cp, ckpt_path_).ok());

  std::FILE* f = std::fopen(ckpt_path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  ASSERT_GT(bytes.size(), 24u);

  auto write_bytes = [&](const std::vector<unsigned char>& b) {
    std::FILE* out = std::fopen(ckpt_path_.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (!b.empty()) {
      ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), out), b.size());
    }
    std::fclose(out);
  };

  ROCK_SEEDED_RNG(rng, 0xc4c4ULL);
  // Random truncations and single-bit flips over the whole file.
  for (int trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    std::vector<unsigned char> mutated = bytes;
    if (trial % 2 == 0) {
      mutated.resize(static_cast<size_t>(rng.UniformUint64(bytes.size())));
    } else {
      const size_t i = static_cast<size_t>(rng.UniformUint64(bytes.size()));
      mutated[i] =
          static_cast<unsigned char>(mutated[i] ^ (1u << rng.UniformUint64(8)));
    }
    write_bytes(mutated);
    auto r = LoadCheckpoint(ckpt_path_);
    ASSERT_FALSE(r.ok()) << "corrupt checkpoint loaded silently";
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }

  // Trailing garbage (payload size mismatch — the torn-write shape).
  std::vector<unsigned char> longer = bytes;
  longer.push_back(0xab);
  write_bytes(longer);
  EXPECT_TRUE(LoadCheckpoint(ckpt_path_).status().IsCorruption());

  // Version bump.
  std::vector<unsigned char> bumped = bytes;
  bumped[8] = static_cast<unsigned char>(bumped[8] + 1);
  write_bytes(bumped);
  EXPECT_TRUE(LoadCheckpoint(ckpt_path_).status().IsCorruption());

  // Missing file.
  std::remove(ckpt_path_.c_str());
  EXPECT_TRUE(LoadCheckpoint(ckpt_path_).status().IsIOError());
}

// ---------------------------------------------------------------------------
// Golden determinism (satellite): same seed → identical labels and merge
// history across merge engines and label-thread counts.

TEST_F(PipelineResumeTest, GoldenDeterminismAcrossEnginesAndThreads) {
  auto golden_opt = BaseOptions(0.5, 1);
  golden_opt.rock.merge_engine = MergeEngineKind::kFlat;
  auto golden = RunRockPipeline(store_path_, golden_opt);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  for (MergeEngineKind engine :
       {MergeEngineKind::kFlat, MergeEngineKind::kHashed}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(::testing::Message()
                   << "engine=" << (engine == MergeEngineKind::kFlat ? "flat"
                                                                     : "hashed")
                   << " threads=" << threads);
      auto opt = BaseOptions(0.5, threads);
      opt.rock.merge_engine = engine;
      auto got = RunRockPipeline(store_path_, opt);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameOutputs(*got, *golden);
    }
  }
}

// ---------------------------------------------------------------------------
// The tentpole: deterministic crash → resume → bit-identical output, over a
// grid of fault schedules × shard plans × thread counts × θ.

struct CrashCase {
  double theta;
  size_t label_threads;    ///< shard plan: 1 thread → 1 shard, t → 4t shards
  uint64_t crash_hit;      ///< which "pipeline.checkpoint" hit crashes
  size_t min_skipped;      ///< shards the resumed run must at least skip
  bool expect_resumed;     ///< false when the crash precedes any checkpoint
};

class PipelineCrashGridTest : public PipelineResumeTest,
                              public ::testing::WithParamInterface<CrashCase> {
};

TEST_P(PipelineCrashGridTest, ResumeMatchesUninterruptedRunBitForBit) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  const CrashCase& c = GetParam();

  auto baseline = RunRockPipeline(store_path_, BaseOptions(c.theta, 1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Crash the run at the scheduled checkpoint write.
  auto crashed_opt = BaseOptions(c.theta, c.label_threads);
  crashed_opt.checkpoint_path = ckpt_path_;
  crashed_opt.rock.failpoints = "pipeline.checkpoint=fire_on_hit_" +
                                std::to_string(c.crash_hit) + ":crash";
  auto crashed = RunRockPipeline(store_path_, crashed_opt);
  ASSERT_FALSE(crashed.ok()) << "the injected crash must abort the run";
  EXPECT_TRUE(fail::IsInjectedCrash(crashed.status()))
      << crashed.status().ToString();

  // "Restart the process" and resume.
  fail::Clear();
  auto resumed_opt = BaseOptions(c.theta, c.label_threads);
  resumed_opt.checkpoint_path = ckpt_path_;
  resumed_opt.resume = true;
  auto resumed = RunRockPipeline(store_path_, resumed_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  EXPECT_EQ(resumed->resumed, c.expect_resumed);
  if (c.expect_resumed) {
    EXPECT_EQ(resumed->metrics.CounterOr("pipeline.resumed"), 1u);
    EXPECT_GE(resumed->shards_skipped, c.min_skipped);
  } else {
    EXPECT_EQ(resumed->metrics.CounterOr("checkpoint.missing"), 1u);
  }
  ExpectSameOutputs(*resumed, *baseline);
  EXPECT_FALSE(fs::exists(ckpt_path_))
      << "a completed run must delete its checkpoint";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineCrashGridTest,
    ::testing::Values(
        // Crash before the very first checkpoint lands: nothing on disk,
        // resume falls back to a clean fresh run.
        CrashCase{0.5, 1, 1, 0, false},
        // Serial plan (one shard): the only shard's checkpoint crashes, so
        // resume restores the clustering but rescans the shard.
        CrashCase{0.5, 1, 2, 0, true},
        // 8 threads / 32 shards, die on the 4th shard checkpoint: at least
        // the three checkpointed shards are skipped on resume.
        CrashCase{0.5, 8, 5, 3, true},
        // Same crash schedule at a different θ and a mid-size plan.
        CrashCase{0.7, 2, 4, 2, true},
        CrashCase{0.4, 8, 3, 1, true}));

TEST_F(PipelineResumeTest, ResumeWithDifferentThreadCountIsIdentical) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto baseline = RunRockPipeline(store_path_, BaseOptions(0.5, 1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto crashed_opt = BaseOptions(0.5, 8);
  crashed_opt.checkpoint_path = ckpt_path_;
  crashed_opt.rock.failpoints = "pipeline.checkpoint=fire_on_hit_6:crash";
  auto crashed = RunRockPipeline(store_path_, crashed_opt);
  ASSERT_FALSE(crashed.ok());
  ASSERT_TRUE(fail::IsInjectedCrash(crashed.status()));

  // The checkpoint pinned the 8-thread shard plan; resuming serial must
  // replan the same boundaries and produce the same bytes.
  fail::Clear();
  auto resumed_opt = BaseOptions(0.5, 1);
  resumed_opt.checkpoint_path = ckpt_path_;
  resumed_opt.resume = true;
  auto resumed = RunRockPipeline(store_path_, resumed_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_GE(resumed->shards_skipped, 4u);
  ExpectSameOutputs(*resumed, *baseline);
}

TEST_F(PipelineResumeTest, CrashDuringLabelScanResumesIdentically) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  for (size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    auto baseline = RunRockPipeline(store_path_, BaseOptions(0.5, 1));
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    // The sampling pass consumes kStoreRows "store.read" hits; hit 150
    // lands 30 rows into the labeling scan.
    auto crashed_opt = BaseOptions(0.5, threads);
    crashed_opt.checkpoint_path = ckpt_path_;
    crashed_opt.rock.failpoints = "store.read=fire_on_hit_150:crash";
    auto crashed = RunRockPipeline(store_path_, crashed_opt);
    ASSERT_FALSE(crashed.ok());
    EXPECT_TRUE(fail::IsInjectedCrash(crashed.status()))
        << crashed.status().ToString();

    fail::Clear();
    auto resumed_opt = BaseOptions(0.5, threads);
    resumed_opt.checkpoint_path = ckpt_path_;
    resumed_opt.resume = true;
    auto resumed = RunRockPipeline(store_path_, resumed_opt);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(resumed->resumed);
    ExpectSameOutputs(*resumed, *baseline);
    std::remove(ckpt_path_.c_str());
  }
}

// ---------------------------------------------------------------------------
// Corrupt / torn / mismatched checkpoints: always a clean restart with
// bit-identical output — never wrong labels.

TEST_F(PipelineResumeTest, CorruptCheckpointFallsBackToCleanRun) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto baseline = RunRockPipeline(store_path_, BaseOptions(0.5, 1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto crashed_opt = BaseOptions(0.5, 1);
  crashed_opt.checkpoint_path = ckpt_path_;
  crashed_opt.rock.failpoints = "pipeline.checkpoint=fire_on_hit_2:crash";
  ASSERT_FALSE(RunRockPipeline(store_path_, crashed_opt).ok());
  fail::Clear();
  ASSERT_TRUE(fs::exists(ckpt_path_));

  // Flip one byte in the middle of the checkpoint.
  {
    std::FILE* f = std::fopen(ckpt_path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    std::fputc(c ^ 0x10, f);
    std::fclose(f);
  }

  auto resumed_opt = BaseOptions(0.5, 1);
  resumed_opt.checkpoint_path = ckpt_path_;
  resumed_opt.resume = true;
  auto resumed = RunRockPipeline(store_path_, resumed_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->resumed);
  EXPECT_EQ(resumed->metrics.CounterOr("checkpoint.invalid"), 1u);
  ExpectSameOutputs(*resumed, *baseline);
}

TEST_F(PipelineResumeTest, MismatchedFingerprintFallsBackToCleanRun) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  // Leave a valid checkpoint from a θ = 0.5 run behind.
  auto crashed_opt = BaseOptions(0.5, 1);
  crashed_opt.checkpoint_path = ckpt_path_;
  crashed_opt.rock.failpoints = "pipeline.checkpoint=fire_on_hit_2:crash";
  ASSERT_FALSE(RunRockPipeline(store_path_, crashed_opt).ok());
  fail::Clear();
  ASSERT_TRUE(fs::exists(ckpt_path_));

  // Resuming a θ = 0.45 run must refuse to mix in the θ = 0.5 clustering.
  auto baseline = RunRockPipeline(store_path_, BaseOptions(0.45, 1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto resumed_opt = BaseOptions(0.45, 1);
  resumed_opt.checkpoint_path = ckpt_path_;
  resumed_opt.resume = true;
  auto resumed = RunRockPipeline(store_path_, resumed_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->resumed);
  EXPECT_EQ(resumed->metrics.CounterOr("checkpoint.mismatch"), 1u);
  ExpectSameOutputs(*resumed, *baseline);
}

TEST_F(PipelineResumeTest, TornCheckpointOnDiskIsDetectedOnResume) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto baseline = RunRockPipeline(store_path_, BaseOptions(0.5, 1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Every checkpoint write tears: the save retries, exhausts its budget,
  // and the run dies leaving a truncated file at the *final* path.
  auto torn_opt = BaseOptions(0.5, 1);
  torn_opt.checkpoint_path = ckpt_path_;
  torn_opt.rock.failpoints = "pipeline.checkpoint=fire_every_1:torn_write";
  torn_opt.retry_sleeper = [](double) {};
  auto torn = RunRockPipeline(store_path_, torn_opt);
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsIOError()) << torn.status().ToString();
  ASSERT_TRUE(fs::exists(ckpt_path_));

  fail::Clear();
  auto resumed_opt = BaseOptions(0.5, 1);
  resumed_opt.checkpoint_path = ckpt_path_;
  resumed_opt.resume = true;
  auto resumed = RunRockPipeline(store_path_, resumed_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->resumed) << "a torn checkpoint must not resume";
  EXPECT_EQ(resumed->metrics.CounterOr("checkpoint.invalid"), 1u);
  ExpectSameOutputs(*resumed, *baseline);
}

// ---------------------------------------------------------------------------
// Transient faults that retry instead of killing the run.

TEST_F(PipelineResumeTest, TransientCheckpointTearIsRetriedTransparently) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto baseline = RunRockPipeline(store_path_, BaseOptions(0.5, 1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::atomic<int> sleeps{0};
  auto opt = BaseOptions(0.5, 1);
  opt.checkpoint_path = ckpt_path_;
  opt.rock.failpoints = "pipeline.checkpoint=fire_on_hit_1:torn_write";
  opt.retry_sleeper = [&](double) { sleeps.fetch_add(1); };
  auto got = RunRockPipeline(store_path_, opt);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GE(sleeps.load(), 1);
  EXPECT_GE(got->metrics.CounterOr("retry.retries"), 1u);
  EXPECT_EQ(got->metrics.CounterOr("fault.fired.pipeline.checkpoint"), 1u);
  ExpectSameOutputs(*got, *baseline);
  EXPECT_FALSE(fs::exists(ckpt_path_));
}

TEST_F(PipelineResumeTest, TransientReadBlipDuringLabelingIsInvisible) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto baseline = RunRockPipeline(store_path_, BaseOptions(0.5, 1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::atomic<int> sleeps{0};
  auto opt = BaseOptions(0.5, 1);
  opt.rock.failpoints = "store.read=fire_on_hit_150:error";
  opt.retry_sleeper = [&](double) { sleeps.fetch_add(1); };
  auto got = RunRockPipeline(store_path_, opt);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GE(sleeps.load(), 1);
  EXPECT_GE(got->metrics.CounterOr("retry.retries"), 1u);
  EXPECT_EQ(got->metrics.CounterOr("fault.fired.store.read"), 1u);
  ExpectSameOutputs(*got, *baseline);
}

// ---------------------------------------------------------------------------
// Option plumbing.

TEST_F(PipelineResumeTest, ResumeRequiresACheckpointPath) {
  auto opt = BaseOptions(0.5, 1);
  opt.resume = true;
  auto r = RunRockPipeline(store_path_, opt);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

TEST_F(PipelineResumeTest, CompletedCheckpointedRunLeavesNoFileBehind) {
  auto opt = BaseOptions(0.5, 2);
  opt.checkpoint_path = ckpt_path_;
  auto r = RunRockPipeline(store_path_, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(fs::exists(ckpt_path_));
  EXPECT_FALSE(fs::exists(ckpt_path_ + ".tmp"));
  // Initial save + one save per shard (2 threads → 8 shards).
  EXPECT_EQ(r->metrics.CounterOr("checkpoint.writes"), 9u);
  EXPECT_EQ(r->metrics.CounterOr("checkpoint.removed"), 1u);
  EXPECT_EQ(r->metrics.CounterOr("checkpoint.remove_failed"), 0u);
}

// ---------------------------------------------------------------------------
// Checkpoint removal (bugfix): the completed-run cleanup used to be a bare
// unchecked std::remove. It now runs under the retry loop behind its own
// failpoint, and a cleanup that fails for good must not fail the run — the
// output is already complete and the stale checkpoint is resume-safe.

TEST_F(PipelineResumeTest, TransientRemoveBlipIsRetriedTransparently) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  std::atomic<int> sleeps{0};
  auto opt = BaseOptions(0.5, 1);
  opt.checkpoint_path = ckpt_path_;
  opt.rock.failpoints = "checkpoint.remove=fire_on_hit_1:error";
  opt.retry_sleeper = [&](double) { sleeps.fetch_add(1); };
  auto r = RunRockPipeline(store_path_, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(sleeps.load(), 1);
  EXPECT_EQ(r->metrics.CounterOr("fault.fired.checkpoint.remove"), 1u);
  EXPECT_EQ(r->metrics.CounterOr("checkpoint.removed"), 1u);
  EXPECT_FALSE(fs::exists(ckpt_path_));
}

TEST_F(PipelineResumeTest, FailedRemoveLeavesResumableCheckpointBehind) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto baseline = RunRockPipeline(store_path_, BaseOptions(0.5, 1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Every removal attempt fails: the retry budget exhausts, yet the run
  // must still succeed with identical output — only the cleanup failed.
  auto opt = BaseOptions(0.5, 1);
  opt.checkpoint_path = ckpt_path_;
  opt.rock.failpoints = "checkpoint.remove=fire_every_1:error";
  opt.retry_sleeper = [](double) {};
  auto r = RunRockPipeline(store_path_, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->metrics.CounterOr("checkpoint.remove_failed"), 1u);
  EXPECT_EQ(r->metrics.CounterOr("checkpoint.removed"), 0u);
  EXPECT_GE(r->metrics.CounterOr("retry.exhausted"), 1u);
  ExpectSameOutputs(*r, *baseline);
  ASSERT_TRUE(fs::exists(ckpt_path_)) << "removal failed, file must survive";

  // The stale checkpoint is a *finished* run with a matching fingerprint:
  // resuming from it must skip every shard and reproduce the same bytes.
  fail::Clear();
  auto resumed_opt = BaseOptions(0.5, 1);
  resumed_opt.checkpoint_path = ckpt_path_;
  resumed_opt.resume = true;
  auto resumed = RunRockPipeline(store_path_, resumed_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  ExpectSameOutputs(*resumed, *baseline);
  EXPECT_FALSE(fs::exists(ckpt_path_))
      << "the healthy re-run must clean up the stale checkpoint";
}

TEST_F(PipelineResumeTest, CrashDuringRemoveStillAborts) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto opt = BaseOptions(0.5, 1);
  opt.checkpoint_path = ckpt_path_;
  opt.rock.failpoints = "checkpoint.remove=fire_on_hit_1:crash";
  auto r = RunRockPipeline(store_path_, opt);
  ASSERT_FALSE(r.ok()) << "an injected crash must abort, not be retried";
  EXPECT_TRUE(fail::IsInjectedCrash(r.status())) << r.status().ToString();
}

}  // namespace
}  // namespace rock
