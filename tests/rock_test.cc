// Tests for core/: options, goodness measure, criterion function, and the
// RockClusterer itself — including the paper's qualitative claims (correct
// clusters on Figure 1 data, no merging of link-free clusters, outlier
// pruning and weeding).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/random.h"
#include "core/criterion.h"
#include "core/goodness.h"
#include "core/options.h"
#include "core/outliers.h"
#include "core/rock.h"
#include "data/dataset.h"
#include "similarity/jaccard.h"
#include "similarity/similarity_table.h"
#include "test_support.h"

namespace rock {
namespace {

// ---------------------------------------------------------------- Options --

TEST(RockOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(RockOptions{}.Validate().ok());
}

TEST(RockOptionsTest, RejectsBadParameters) {
  RockOptions opt;
  opt.theta = 1.5;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RockOptions{};
  opt.num_clusters = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RockOptions{};
  opt.f = nullptr;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RockOptions{};
  opt.outlier_stop_multiple = 0.5;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RockOptions{};
  opt.outlier_stop_multiple = -1.0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

// Regression: NaN fails every ordered comparison, so `x < 0.0`-style
// checks waved a NaN straight through Validate. Every double field must
// reject it.
TEST(RockOptionsTest, RejectsNaNParameters) {
  const double nan = std::nan("");
  RockOptions opt;
  opt.theta = nan;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RockOptions{};
  opt.outlier_stop_multiple = nan;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RockOptions{};
  opt.f = [](double) { return std::nan(""); };
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

TEST(MarketBasketFTest, PaperBoundaryValues) {
  // §3.3: f(1) = 0 (only identical neighbors, expected links n_i) and
  // f(0) = 1 (everyone neighbors, expected links n_i³).
  EXPECT_DOUBLE_EQ(MarketBasketF(1.0), 0.0);
  EXPECT_DOUBLE_EQ(MarketBasketF(0.0), 1.0);
  EXPECT_DOUBLE_EQ(MarketBasketF(0.5), 1.0 / 3.0);
  // Monotonically decreasing in θ.
  for (double theta = 0.0; theta < 1.0; theta += 0.1) {
    EXPECT_GT(MarketBasketF(theta), MarketBasketF(theta + 0.1));
  }
}

// --------------------------------------------------------------- Goodness --

TEST(GoodnessTest, ExpectedLinksExponent) {
  RockOptions opt;
  opt.theta = 0.5;  // f = 1/3 → exponent 1 + 2/3
  GoodnessMeasure g(opt);
  EXPECT_DOUBLE_EQ(g.exponent(), 1.0 + 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.ExpectedIntraLinks(1), 1.0);
  EXPECT_NEAR(g.ExpectedIntraLinks(8), std::pow(8.0, 5.0 / 3.0), 1e-9);
}

TEST(GoodnessTest, ThetaZeroGivesCubicExpectation) {
  GoodnessMeasure g(0.0, MarketBasketF(0.0));
  EXPECT_DOUBLE_EQ(g.ExpectedIntraLinks(4), 64.0);  // n³
}

TEST(GoodnessTest, NormalizationPenalizesLargeClusters) {
  // Same raw cross-link count: merging two large clusters must score lower
  // than merging two small ones (§4.2's "swallowing" remedy).
  RockOptions opt;
  opt.theta = 0.5;
  GoodnessMeasure g(opt);
  EXPECT_GT(g.Goodness(10, 2, 2), g.Goodness(10, 50, 50));
}

TEST(GoodnessTest, MoreLinksIsBetter) {
  RockOptions opt;
  GoodnessMeasure g(opt);
  EXPECT_GT(g.Goodness(20, 5, 5), g.Goodness(10, 5, 5));
}

TEST(GoodnessTest, ZeroLinksScoreZero) {
  GoodnessMeasure g(RockOptions{});
  EXPECT_DOUBLE_EQ(g.Goodness(0, 3, 4), 0.0);
}

TEST(GoodnessTest, SingletonPairFormula) {
  // For singletons the denominator is 2^e − 2.
  RockOptions opt;
  opt.theta = 0.5;
  GoodnessMeasure g(opt);
  const double e = 1.0 + 2.0 / 3.0;
  EXPECT_NEAR(g.Goodness(3, 1, 1), 3.0 / (std::pow(2.0, e) - 2.0), 1e-12);
}

// Regression for the memoized power table: every slot must be *bit*
// identical to the direct std::pow call the unmemoized code made, for any
// θ and any access order (lazy growth, Reserve-then-read, descending
// probes). The merge engines rely on this — a one-ULP drift in the
// denominator can flip a goodness tie and change the merge sequence.
TEST(GoodnessTest, MemoTableIsBitIdenticalToDirectPow) {
  for (const double theta : {0.0, 0.2, 0.5, 0.73, 0.8, 1.0}) {
    GoodnessMeasure lazy(theta, MarketBasketF(theta));
    GoodnessMeasure reserved(theta, MarketBasketF(theta));
    reserved.Reserve(4096);
    const double e = lazy.exponent();
    // Descending first touch exercises a single large growth; the reserved
    // instance reads pre-filled slots. Both must match std::pow bitwise.
    for (size_t n = 4096; n > 0; n /= 3) {
      const double direct = std::pow(static_cast<double>(n), e);
      EXPECT_EQ(lazy.ExpectedIntraLinks(n), direct) << "theta=" << theta
                                                    << " n=" << n;
      EXPECT_EQ(reserved.ExpectedIntraLinks(n), direct)
          << "theta=" << theta << " n=" << n;
    }
    for (size_t n = 0; n <= 64; ++n) {
      const double direct = std::pow(static_cast<double>(n), e);
      EXPECT_EQ(lazy.ExpectedIntraLinks(n), direct) << "theta=" << theta
                                                    << " n=" << n;
    }
    // And the composed kernel: the denominator must be assembled from the
    // same three table reads in the same order as the scalar formula.
    for (size_t ni : {size_t{1}, size_t{7}, size_t{120}}) {
      for (size_t nj : {size_t{1}, size_t{33}, size_t{999}}) {
        const double direct = std::pow(static_cast<double>(ni + nj), e) -
                              std::pow(static_cast<double>(ni), e) -
                              std::pow(static_cast<double>(nj), e);
        EXPECT_EQ(lazy.ExpectedCrossLinks(ni, nj), direct)
            << "theta=" << theta << " ni=" << ni << " nj=" << nj;
      }
    }
  }
}

// -------------------------------------------------------------- Criterion --

TEST(CriterionTest, IntraClusterLinkSum) {
  LinkMatrix links(4);
  links.Add(0, 1, 5);
  links.Add(2, 3, 7);
  links.Add(0, 2, 100);  // crosses the cluster boundary below
  EXPECT_EQ(IntraClusterLinks(links, {0, 1}), 5u);
  EXPECT_EQ(IntraClusterLinks(links, {2, 3}), 7u);
  EXPECT_EQ(IntraClusterLinks(links, {0, 1, 2, 3}), 112u);
}

TEST(CriterionTest, SplittingLinkFreePointsScoresHigher) {
  // Two pairs with internal links and no cross links: the 2-cluster split
  // must beat the single merged cluster under E_l.
  LinkMatrix links(4);
  links.Add(0, 1, 4);
  links.Add(2, 3, 4);
  GoodnessMeasure g(RockOptions{});

  Clustering split = Clustering::FromAssignment({0, 0, 1, 1});
  Clustering lumped = Clustering::FromAssignment({0, 0, 0, 0});
  EXPECT_GT(CriterionFunction(split, links, g),
            CriterionFunction(lumped, links, g));
}

TEST(CriterionTest, WellLinkedClusterBeatsItsSplit) {
  // A clique-ish 4-point cluster where every pair has links: keeping it
  // together beats splitting it.
  LinkMatrix links(4);
  for (PointIndex i = 0; i < 4; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < 4; ++j) {
      links.Add(i, j, 3);
    }
  }
  GoodnessMeasure g(RockOptions{});
  Clustering together = Clustering::FromAssignment({0, 0, 0, 0});
  Clustering split = Clustering::FromAssignment({0, 0, 1, 1});
  EXPECT_GT(CriterionFunction(together, links, g),
            CriterionFunction(split, links, g));
}

TEST(CriterionTest, OutliersContributeNothing) {
  LinkMatrix links(3);
  links.Add(0, 1, 2);
  GoodnessMeasure g(RockOptions{});
  Clustering with_outlier = Clustering::FromAssignment({0, 0, kUnassigned});
  Clustering without = Clustering::FromAssignment({0, 0});
  // Same clusters → same value despite the extra point.
  EXPECT_DOUBLE_EQ(CriterionFunction(with_outlier, links, g),
                   CriterionFunction(without, links, g));
}

// ------------------------------------------------------------- Clustering --

TEST(ClusteringTest, FromAssignmentCompactsGaps) {
  Clustering c = Clustering::FromAssignment({5, kUnassigned, 5, 2});
  EXPECT_EQ(c.num_clusters(), 2u);
  EXPECT_EQ(c.num_outliers(), 1u);
  EXPECT_EQ(c.num_assigned(), 3u);
  // Point 3 (old id 2) and points 0/2 (old id 5) are distinct clusters.
  EXPECT_NE(c.assignment[0], c.assignment[3]);
  EXPECT_EQ(c.assignment[0], c.assignment[2]);
}

TEST(ClusteringTest, SortBySizeDescending) {
  Clustering c = Clustering::FromAssignment({0, 1, 1, 1, 2, 2});
  c.SortBySizeDescending();
  EXPECT_EQ(c.clusters[0].size(), 3u);
  EXPECT_EQ(c.clusters[1].size(), 2u);
  EXPECT_EQ(c.clusters[2].size(), 1u);
  // Assignment stays consistent with the reordered clusters.
  for (size_t cl = 0; cl < c.num_clusters(); ++cl) {
    for (PointIndex p : c.clusters[cl]) {
      EXPECT_EQ(c.assignment[p], static_cast<ClusterIndex>(cl));
    }
  }
}

// --------------------------------------------------------- RockClusterer --

/// Figure 1 data (see graph_test.cc for the layout).
TransactionDataset Figure1Data() {
  TransactionDataset ds;
  auto add_triples = [&](const std::vector<ItemId>& items,
                         const std::string& label) {
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        for (size_t l = j + 1; l < items.size(); ++l) {
          ds.AddTransaction(Transaction({items[i], items[j], items[l]}));
          ds.labels().Append(label);
        }
      }
    }
  };
  add_triples({1, 2, 3, 4, 5}, "A");
  add_triples({1, 2, 6, 7}, "B");
  return ds;
}

TEST(RockClustererTest, Figure1MaxLinkPartnerIsInOwnCluster) {
  // §3.2's stated property: "for each transaction, the transaction that it
  // has the most links with is a transaction in its own cluster" (θ = 0.5).
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  auto graph = ComputeNeighbors(sim, 0.5);
  ASSERT_TRUE(graph.ok());
  LinkMatrix links = ComputeLinks(*graph);
  for (PointIndex p = 0; p < ds.size(); ++p) {
    LinkCount best = 0;
    for (const auto& [q, count] : links.Row(p)) best = std::max(best, count);
    ASSERT_GT(best, 0u);
    bool own_cluster_achieves_max = false;
    for (const auto& [q, count] : links.Row(p)) {
      if (count == best && ds.labels().label(q) == ds.labels().label(p)) {
        own_cluster_achieves_max = true;
      }
    }
    EXPECT_TRUE(own_cluster_achieves_max) << "point " << p;
  }
}

TEST(RockClustererTest, RecoversFigure1WithConservativeF) {
  // End-to-end recovery of the Figure 1 clusters. With the canonical
  // f(θ) = (1−θ)/(1+θ) the greedy merge sequence absorbs {1,2,6}, {1,2,7}
  // into the 10-transaction cluster (their 42 genuine cross-links out-score
  // the 4 links binding them to {1,6,7}/{2,6,7} at n = 14 — the asymptotic
  // normalization argument needs larger clusters). The conservative reading
  // f(θ) = 1/(1+θ) recovers the example exactly; see EXPERIMENTS.md.
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 2;
  opt.f = ConservativeMarketBasketF;
  RockClusterer clusterer(opt);
  auto result = clusterer.Cluster(sim);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const Clustering& c = result->clustering;
  ASSERT_EQ(c.num_clusters(), 2u);
  EXPECT_EQ(c.num_outliers(), 0u);
  // Perfect recovery: every cluster is label-pure.
  for (const auto& members : c.clusters) {
    std::set<LabelId> labels_seen;
    for (PointIndex p : members) labels_seen.insert(ds.labels().label(p));
    EXPECT_EQ(labels_seen.size(), 1u);
  }
  EXPECT_EQ(c.clusters[0].size(), 10u);  // C(5,3)
  EXPECT_EQ(c.clusters[1].size(), 4u);   // C(4,3)
}

TEST(RockClustererTest, Example11NoMergeWithoutCommonItems) {
  // §1.2: with neighbors = "at least one common item", {1,4} and {6} have
  // no links and must never end up together.
  TransactionDataset ds;
  ds.AddTransaction(Transaction({1, 2, 3, 5}));
  ds.AddTransaction(Transaction({2, 3, 4, 5}));
  ds.AddTransaction(Transaction({1, 4}));
  ds.AddTransaction(Transaction({6}));
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.001;
  opt.num_clusters = 2;
  opt.min_neighbors = 0;  // keep everything, incl. the isolated {6}
  RockClusterer clusterer(opt);
  auto result = clusterer.Cluster(sim);
  ASSERT_TRUE(result.ok());
  const auto& a = result->clustering.assignment;
  EXPECT_NE(a[2], a[3]);
}

TEST(RockClustererTest, StopsWhenCrossLinksExhausted) {
  // Two link-connected components and k = 1: ROCK must refuse the final
  // merge and stop at 2 clusters (paper: mushroom stopped at 21 > k = 20).
  SimilarityTable t(6);
  // Component 1: triangle 0-1-2; component 2: triangle 3-4-5.
  for (auto [i, j] : {std::pair<size_t, size_t>{0, 1}, {0, 2}, {1, 2},
                      {3, 4}, {3, 5}, {4, 5}}) {
    ASSERT_TRUE(t.Set(i, j, 1.0).ok());
  }
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 1;
  RockClusterer clusterer(opt);
  auto result = clusterer.Cluster(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters(), 2u);
}

TEST(RockClustererTest, PrunesIsolatedOutliers) {
  SimilarityTable t(5);
  for (auto [i, j] : {std::pair<size_t, size_t>{0, 1}, {0, 2}, {1, 2}}) {
    ASSERT_TRUE(t.Set(i, j, 1.0).ok());
  }
  // Points 3, 4 are fully isolated.
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 1;
  RockClusterer clusterer(opt);
  auto result = clusterer.Cluster(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_pruned_points, 2u);
  EXPECT_EQ(result->clustering.assignment[3], kUnassigned);
  EXPECT_EQ(result->clustering.assignment[4], kUnassigned);
  EXPECT_EQ(result->clustering.num_clusters(), 1u);
}

TEST(RockClustererTest, WeedingDropsLowSupportClusters) {
  // §4.6: "outliers may be present as small groups of points that are
  // loosely connected to the rest … these clusters will persist as small
  // clusters". Two 6-cliques plus a detached triangle; pausing at 1.5×k
  // = 3 clusters must weed the triangle (support 3 < 4).
  SimilarityTable t(15);
  auto clique = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i <= hi; ++i) {
      for (size_t j = i + 1; j <= hi; ++j) {
        ASSERT_TRUE(t.Set(i, j, 1.0).ok());
      }
    }
  };
  clique(0, 5);
  clique(6, 11);
  clique(12, 14);  // the small loose group

  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 2;
  opt.outlier_stop_multiple = 1.5;  // pause at 3 clusters
  opt.min_cluster_support = 4;
  RockClusterer clusterer(opt);
  auto result = clusterer.Cluster(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_weeded_clusters, 1u);
  EXPECT_EQ(result->stats.num_weeded_points, 3u);
  for (PointIndex p = 12; p <= 14; ++p) {
    EXPECT_EQ(result->clustering.assignment[p], kUnassigned);
  }
  EXPECT_EQ(result->clustering.num_clusters(), 2u);
  // Without weeding the triangle survives as a third cluster.
  opt.outlier_stop_multiple = 0.0;
  RockClusterer no_weed(opt);
  auto result2 = no_weed.Cluster(t);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->clustering.num_clusters(), 3u);
}

TEST(RockClustererTest, KAtLeastNReturnsSingletons) {
  SimilarityTable t(3);
  ASSERT_TRUE(t.Set(0, 1, 1.0).ok());
  ASSERT_TRUE(t.Set(1, 2, 1.0).ok());
  ASSERT_TRUE(t.Set(0, 2, 1.0).ok());
  RockOptions opt;
  opt.num_clusters = 5;
  RockClusterer clusterer(opt);
  auto result = clusterer.Cluster(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters(), 3u);
  EXPECT_EQ(result->stats.num_merges, 0u);
}

TEST(RockClustererTest, MergeHistoryIsConsistent) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 2;
  RockClusterer clusterer(opt);
  auto result = clusterer.Cluster(sim);
  ASSERT_TRUE(result.ok());
  // n − k merges when nothing is pruned: 14 points → 2 clusters.
  EXPECT_EQ(result->merges.size(), 12u);
  // Every merge strictly grows cluster ids and has positive goodness.
  uint32_t prev_id = 0;
  for (const auto& m : result->merges) {
    EXPECT_GT(m.merged, std::max(m.left, m.right));
    EXPECT_GE(m.merged, prev_id);
    EXPECT_GT(m.goodness, 0.0);
    EXPECT_GE(m.new_size, 2u);
    prev_id = m.merged;
  }
}

TEST(RockClustererTest, DeterministicAcrossRuns) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 2;
  RockClusterer clusterer(opt);
  auto r1 = clusterer.Cluster(sim);
  auto r2 = clusterer.Cluster(sim);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->clustering.assignment, r2->clustering.assignment);
}

TEST(RockClustererTest, StatsArePopulated) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 2;
  RockClusterer clusterer(opt);
  auto result = clusterer.Cluster(sim);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_points, 14u);
  EXPECT_GT(result->stats.average_degree, 0.0);
  EXPECT_GT(result->stats.max_degree, 0u);
  EXPECT_GT(result->stats.criterion_value, 0.0);
  EXPECT_GE(result->stats.total_seconds, 0.0);
}

TEST(RockClustererTest, InvalidOptionsRejected) {
  SimilarityTable t(2);
  RockOptions opt;
  opt.theta = 2.0;
  RockClusterer clusterer(opt);
  EXPECT_TRUE(clusterer.Cluster(t).status().IsInvalidArgument());
}

TEST(RockClustererTest, GreedyMergeMaximizesCriterionOnSmallCase) {
  // Exhaustively verify on Figure 1 data that the clustering ROCK returns
  // has the highest E_l among all 2-partitions reachable by the algorithm's
  // own merge tree — here we simply check it beats label-swapped variants.
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 2;
  RockClusterer clusterer(opt);
  auto result = clusterer.Cluster(sim);
  ASSERT_TRUE(result.ok());

  auto graph = ComputeNeighbors(sim, opt.theta);
  ASSERT_TRUE(graph.ok());
  LinkMatrix links = ComputeLinks(*graph);
  GoodnessMeasure g(opt);
  const double rock_score =
      CriterionFunction(result->clustering, links, g);

  ROCK_SEEDED_RNG(rng, 5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ClusterIndex> assignment(ds.size());
    for (auto& a : assignment) {
      a = static_cast<ClusterIndex>(rng.UniformUint64(2));
    }
    Clustering random_clustering =
        Clustering::FromAssignment(std::move(assignment));
    EXPECT_GE(rock_score,
              CriterionFunction(random_clustering, links, g) - 1e-9);
  }
}

// -------------------------------------------------------- outlier helpers --

TEST(OutlierHelpersTest, FindIsolatedPoints) {
  NeighborGraph g;
  g.nbrlist = {{1}, {0}, {}};
  EXPECT_EQ(FindIsolatedPoints(g, 1), (std::vector<PointIndex>{2}));
  EXPECT_EQ(FindIsolatedPoints(g, 0), (std::vector<PointIndex>{}));
  EXPECT_EQ(FindIsolatedPoints(g, 2).size(), 3u);
}

TEST(OutlierHelpersTest, FindLowSupportClusters) {
  Clustering c = Clustering::FromAssignment({0, 0, 0, 1, 2, 2});
  EXPECT_EQ(FindLowSupportClusters(c, 2), (std::vector<size_t>{1}));
  EXPECT_EQ(FindLowSupportClusters(c, 4).size(), 3u);
}

}  // namespace
}  // namespace rock
