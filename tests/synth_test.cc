// Tests for synth/: the four dataset generators must reproduce the shapes
// the paper reports (Table 1 / Table 5 / Table 4) and be deterministic.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/transforms.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"
#include "synth/fund_generator.h"
#include "synth/mushroom_generator.h"
#include "synth/votes_generator.h"

namespace rock {
namespace {

// ------------------------------------------------------------------ Basket --

TEST(BasketGeneratorTest, DefaultMatchesTable5Shape) {
  auto ds = GenerateBasketData(BasketGeneratorOptions{});
  ASSERT_TRUE(ds.ok());
  // Table 5: 114,586 transactions total, 5456 outliers.
  EXPECT_EQ(ds->size(), 114586u);
  std::map<std::string, size_t> per_label;
  for (size_t i = 0; i < ds->size(); ++i) {
    ++per_label[ds->labels().Name(ds->labels().label(i))];
  }
  EXPECT_EQ(per_label["outlier"], 5456u);
  EXPECT_EQ(per_label["cluster0"], 9736u);
  EXPECT_EQ(per_label["cluster9"], 5411u);
  EXPECT_EQ(per_label.size(), 11u);  // 10 clusters + outliers
}

TEST(BasketGeneratorTest, TransactionSizeDistribution) {
  BasketGeneratorOptions opt;
  opt.cluster_sizes = {5000};
  opt.items_per_cluster = {30};
  opt.num_outliers = 0;
  auto ds = GenerateBasketData(opt);
  ASSERT_TRUE(ds.ok());
  // "98% of transactions have sizes between 11 and 19"; mean 15.
  size_t in_window = 0;
  double total = 0;
  for (const auto& tx : ds->transactions()) {
    total += static_cast<double>(tx.size());
    if (tx.size() >= 11 && tx.size() <= 19) ++in_window;
  }
  EXPECT_NEAR(total / static_cast<double>(ds->size()), 15.0, 0.3);
  EXPECT_GT(static_cast<double>(in_window) / static_cast<double>(ds->size()),
            0.95);
}

TEST(BasketGeneratorTest, IntraClusterSimilarityExceedsInter) {
  BasketGeneratorOptions opt;
  opt.cluster_sizes = {200, 200};
  opt.items_per_cluster = {20, 20};
  opt.num_outliers = 0;
  opt.seed = 3;
  auto ds = GenerateBasketData(opt);
  ASSERT_TRUE(ds.ok());
  double intra = 0, inter = 0;
  size_t n_intra = 0, n_inter = 0;
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = i + 1; j < 100; ++j) {
      const double s =
          JaccardSimilarity(ds->transaction(i), ds->transaction(j));
      if (ds->labels().label(i) == ds->labels().label(j)) {
        intra += s;
        ++n_intra;
      } else {
        inter += s;
        ++n_inter;
      }
    }
  }
  ASSERT_GT(n_intra, 0u);
  ASSERT_GT(n_inter, 0u);
  EXPECT_GT(intra / static_cast<double>(n_intra),
            2.0 * inter / static_cast<double>(n_inter));
}

TEST(BasketGeneratorTest, DeterministicAndSeedSensitive) {
  BasketGeneratorOptions opt;
  opt.cluster_sizes = {50};
  opt.items_per_cluster = {20};
  opt.num_outliers = 5;
  auto a = GenerateBasketData(opt);
  auto b = GenerateBasketData(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->transaction(i), b->transaction(i));
  }
  opt.seed += 1;
  auto c = GenerateBasketData(opt);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (size_t i = 0; i < a->size(); ++i) {
    if (!(a->transaction(i) == c->transaction(i))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BasketGeneratorTest, ValidatesOptions) {
  BasketGeneratorOptions opt;
  opt.cluster_sizes = {10};
  opt.items_per_cluster = {};
  EXPECT_TRUE(GenerateBasketData(opt).status().IsInvalidArgument());
  opt = BasketGeneratorOptions{};
  opt.shared_item_fraction = 1.5;
  EXPECT_TRUE(GenerateBasketData(opt).status().IsInvalidArgument());
  opt = BasketGeneratorOptions{};
  opt.min_tx_size = 0;
  EXPECT_TRUE(GenerateBasketData(opt).status().IsInvalidArgument());
}

// ------------------------------------------------------------------- Votes --

TEST(VotesGeneratorTest, MatchesTable1Shape) {
  auto ds = GenerateVotesData(VotesGeneratorOptions{});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 435u);
  EXPECT_EQ(ds->schema().num_attributes(), 16u);
  size_t republicans = 0, democrats = 0;
  for (size_t i = 0; i < ds->size(); ++i) {
    const std::string& name = ds->labels().Name(ds->labels().label(i));
    if (name == "republican") ++republicans;
    if (name == "democrat") ++democrats;
  }
  EXPECT_EQ(republicans, 168u);
  EXPECT_EQ(democrats, 267u);
  // "very few" missing values.
  EXPECT_LT(ds->MissingRate(), 0.05);
  EXPECT_GT(ds->MissingRate(), 0.0);
}

TEST(VotesGeneratorTest, PartyVoteDistributionsFollowTable7) {
  VotesGeneratorOptions opt;
  opt.num_republicans = 4000;  // large sample to pin down frequencies
  opt.num_democrats = 4000;
  opt.missing_rate = 0.0;
  auto ds = GenerateVotesData(opt);
  ASSERT_TRUE(ds.ok());
  // physician-fee-freeze: republicans ~0.92 yes, democrats ~0.04 yes.
  size_t attr = SIZE_MAX;
  for (size_t a = 0; a < ds->schema().num_attributes(); ++a) {
    if (ds->schema().attribute_name(a) == "physician-fee-freeze") attr = a;
  }
  ASSERT_NE(attr, SIZE_MAX);
  const ValueId yes = ds->schema().LookupValue(attr, "y");
  size_t rep_yes = 0, dem_yes = 0, reps = 0, dems = 0;
  for (size_t i = 0; i < ds->size(); ++i) {
    const bool rep =
        ds->labels().Name(ds->labels().label(i)) == "republican";
    (rep ? reps : dems) += 1;
    if (ds->record(i).value(attr) == yes) (rep ? rep_yes : dem_yes) += 1;
  }
  EXPECT_NEAR(static_cast<double>(rep_yes) / static_cast<double>(reps), 0.92,
              0.02);
  EXPECT_NEAR(static_cast<double>(dem_yes) / static_cast<double>(dems), 0.04,
              0.02);
}

TEST(VotesGeneratorTest, Deterministic) {
  auto a = GenerateVotesData(VotesGeneratorOptions{});
  auto b = GenerateVotesData(VotesGeneratorOptions{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->record(i), b->record(i));
  }
}

// ---------------------------------------------------------------- Mushroom --

TEST(MushroomGeneratorTest, MatchesTable1Shape) {
  auto ds = GenerateMushroomData(MushroomGeneratorOptions{});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 8124u);
  EXPECT_EQ(ds->schema().num_attributes(), 22u);
  size_t edible = 0, poisonous = 0;
  for (size_t i = 0; i < ds->size(); ++i) {
    const std::string& name = ds->labels().Name(ds->labels().label(i));
    if (name == "edible") ++edible;
    if (name == "poisonous") ++poisonous;
  }
  EXPECT_EQ(edible, 4208u);
  EXPECT_EQ(poisonous, 3916u);
}

TEST(MushroomGeneratorTest, OdorSeparatesEdibility) {
  MushroomGeneratorOptions opt;
  opt.size_scale = 0.05;
  opt.missing_rate = 0.0;
  auto ds = GenerateMushroomData(opt);
  ASSERT_TRUE(ds.ok());
  size_t odor_attr = SIZE_MAX;
  for (size_t a = 0; a < ds->schema().num_attributes(); ++a) {
    if (ds->schema().attribute_name(a) == "odor") odor_attr = a;
  }
  ASSERT_NE(odor_attr, SIZE_MAX);
  const std::set<std::string> edible_odors = {"none", "anise", "almond"};
  for (size_t i = 0; i < ds->size(); ++i) {
    const std::string& odor =
        ds->schema().ValueName(odor_attr, ds->record(i).value(odor_attr));
    const bool edible =
        ds->labels().Name(ds->labels().label(i)) == "edible";
    EXPECT_EQ(edible_odors.count(odor) > 0, edible) << "row " << i;
  }
}

TEST(MushroomGeneratorTest, TruthVariantHas21Groups) {
  MushroomGeneratorOptions opt;
  opt.size_scale = 0.02;
  auto ds = GenerateMushroomDataWithTruth(opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->labels().num_classes(), MushroomNumGroups());
  EXPECT_EQ(MushroomNumGroups(), 21u);
}

TEST(MushroomGeneratorTest, GroupSizesAreSkewed) {
  // Table 3's structure: largest groups 1728, smallest 8 — verify the
  // surrogate preserves > 100x size variance.
  auto ds = GenerateMushroomDataWithTruth(MushroomGeneratorOptions{});
  ASSERT_TRUE(ds.ok());
  std::map<LabelId, size_t> sizes;
  for (size_t i = 0; i < ds->size(); ++i) ++sizes[ds->labels().label(i)];
  size_t smallest = SIZE_MAX, largest = 0;
  for (const auto& [_, s] : sizes) {
    smallest = std::min(smallest, s);
    largest = std::max(largest, s);
  }
  EXPECT_EQ(smallest, 8u);
  EXPECT_EQ(largest, 1728u);
}

TEST(MushroomGeneratorTest, ScaleShrinksDataset) {
  MushroomGeneratorOptions opt;
  opt.size_scale = 0.1;
  auto ds = GenerateMushroomData(opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_LT(ds->size(), 1000u);
  EXPECT_GT(ds->size(), 500u);
}

// ------------------------------------------------------------------- Funds --

TEST(FundGeneratorTest, MatchesTable1Shape) {
  auto set = GenerateFundData(FundGeneratorOptions{});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->series.size(), 795u);
  EXPECT_EQ(set->num_dates, 548u);
  // Some funds must have missing leading history.
  size_t young = 0;
  for (const auto& ts : set->series) {
    if (!ts.prices.front().has_value()) ++young;
  }
  EXPECT_GT(young, 50u);
  EXPECT_LT(young, 400u);
}

TEST(FundGeneratorTest, GroupLabelsCoverTable4Categories) {
  auto set = GenerateFundData(FundGeneratorOptions{});
  ASSERT_TRUE(set.ok());
  std::map<std::string, size_t> counts;
  for (const auto& ts : set->series) ++counts[ts.group];
  EXPECT_EQ(counts["Growth 2"], 107u);
  EXPECT_EQ(counts["Growth 3"], 70u);
  EXPECT_EQ(counts["Bonds 3"], 24u);
  EXPECT_EQ(counts["Precious Metals"], 10u);
  EXPECT_EQ(counts["pair0"], 2u);
  EXPECT_GT(counts["single"], 300u);
}

TEST(FundGeneratorTest, PairsTrackTighterThanGroups) {
  FundGeneratorOptions opt;
  opt.young_fund_fraction = 0.0;  // full history for a clean comparison
  auto set = GenerateFundData(opt);
  ASSERT_TRUE(set.ok());
  auto ds = TimeSeriesToCategorical(*set);
  ASSERT_TRUE(ds.ok());
  PairwiseMissingJaccard sim(*ds);

  // Find the two pair0 members and two Growth 2 members.
  std::vector<size_t> pair0, growth2;
  for (size_t i = 0; i < set->series.size(); ++i) {
    if (set->series[i].group == "pair0") pair0.push_back(i);
    if (set->series[i].group == "Growth 2" && growth2.size() < 2) {
      growth2.push_back(i);
    }
  }
  ASSERT_EQ(pair0.size(), 2u);
  ASSERT_EQ(growth2.size(), 2u);
  EXPECT_GT(sim.Similarity(pair0[0], pair0[1]),
            sim.Similarity(growth2[0], growth2[1]));
  // And the group pair still beats two unrelated singles.
  std::vector<size_t> singles;
  for (size_t i = 0; i < set->series.size() && singles.size() < 2; ++i) {
    if (set->series[i].group == "single") singles.push_back(i);
  }
  ASSERT_EQ(singles.size(), 2u);
  EXPECT_GT(sim.Similarity(growth2[0], growth2[1]),
            sim.Similarity(singles[0], singles[1]));
}

TEST(FundGeneratorTest, ValidatesOptions) {
  FundGeneratorOptions opt;
  opt.num_dates = 1;
  EXPECT_TRUE(GenerateFundData(opt).status().IsInvalidArgument());
  opt = FundGeneratorOptions{};
  opt.p_up = 0.7;
  opt.p_down = 0.7;
  EXPECT_TRUE(GenerateFundData(opt).status().IsInvalidArgument());
}

}  // namespace
}  // namespace rock
