// Tests for the production-extension modules: set-similarity measures,
// extra clustering metrics (Fowlkes–Mallows, V-measure), labeler
// serialization, and the ARFF reader.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <vector>

#include "core/labeling.h"
#include "data/arff_reader.h"
#include "eval/metrics.h"
#include "similarity/set_measures.h"

namespace rock {
namespace {

// ------------------------------------------------------------ set measures --

TEST(SetMeasuresTest, KnownValues) {
  Transaction a({1, 2, 3});
  Transaction b({2, 3, 4, 5});
  // |∩| = 2.
  EXPECT_DOUBLE_EQ(DiceSimilarity(a, b), 2.0 * 2.0 / 7.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 2.0 / std::sqrt(12.0));
  EXPECT_DOUBLE_EQ(OverlapSimilarity(a, b), 2.0 / 3.0);
}

TEST(SetMeasuresTest, EdgeCases) {
  Transaction empty;
  Transaction one({7});
  EXPECT_DOUBLE_EQ(DiceSimilarity(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, one), 0.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(empty, one), 0.0);
  // Identical sets: all measures hit 1.
  Transaction s({1, 2});
  EXPECT_DOUBLE_EQ(DiceSimilarity(s, s), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(s, s), 1.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(s, s), 1.0);
}

TEST(SetMeasuresTest, OverlapScoresSubsetsAsOne) {
  Transaction sub({1, 2});
  Transaction super({1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(OverlapSimilarity(sub, super), 1.0);
  EXPECT_LT(DiceSimilarity(sub, super), 1.0);
}

TEST(SetMeasuresTest, OrderingDiceGeJaccard) {
  // Dice ≥ Jaccard always; cosine between them for same-size sets.
  Transaction a({1, 2, 3, 4});
  Transaction b({3, 4, 5, 6});
  TransactionDataset ds;
  ds.AddTransaction(a);
  ds.AddTransaction(b);
  TransactionSetSimilarity jac(ds, SetMeasure::kJaccard);
  TransactionSetSimilarity dice(ds, SetMeasure::kDice);
  TransactionSetSimilarity cos(ds, SetMeasure::kCosine);
  TransactionSetSimilarity over(ds, SetMeasure::kOverlap);
  EXPECT_GT(dice.Similarity(0, 1), jac.Similarity(0, 1));
  EXPECT_GE(over.Similarity(0, 1), cos.Similarity(0, 1));
  EXPECT_DOUBLE_EQ(jac.Similarity(0, 1), 2.0 / 6.0);
}

TEST(SetMeasuresTest, SimpleMatching) {
  CategoricalDataset ds{Schema({"a", "b", "c", "d"})};
  ASSERT_TRUE(ds.AddRecord({"x", "y", "z", "w"}).ok());
  ASSERT_TRUE(ds.AddRecord({"x", "y", "q", "?"}).ok());
  SimpleMatchingSimilarity sim(ds);
  // 2 agreements over 4 attributes (missing counts as disagreement).
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 0), 1.0);
}

// ----------------------------------------------------------- extra metrics --

ContingencyTable PerfectTable() {
  auto t = ContingencyTable::Build({0, 0, 1, 1}, {0, 0, 1, 1}, 2, 2);
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(ExtraMetricsTest, FowlkesMallowsPerfect) {
  EXPECT_NEAR(FowlkesMallows(PerfectTable()), 1.0, 1e-12);
}

TEST(ExtraMetricsTest, FowlkesMallowsKnownValue) {
  // One cluster holding both classes evenly: TP = 2·C(2,2) = 2,
  // cluster_pairs = C(4,2) = 6, class_pairs = 2 → FM = 2/√12.
  auto t = ContingencyTable::Build({0, 0, 0, 0}, {0, 1, 0, 1}, 1, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(FowlkesMallows(*t), 2.0 / std::sqrt(12.0), 1e-12);
}

TEST(ExtraMetricsTest, VMeasurePerfect) {
  const VMeasure v = ComputeVMeasure(PerfectTable());
  EXPECT_NEAR(v.homogeneity, 1.0, 1e-12);
  EXPECT_NEAR(v.completeness, 1.0, 1e-12);
  EXPECT_NEAR(v.v, 1.0, 1e-12);
}

TEST(ExtraMetricsTest, VMeasureHomogeneousButIncomplete) {
  // Each class split into two pure clusters: homogeneity 1, completeness
  // < 1.
  auto t = ContingencyTable::Build({0, 1, 2, 3}, {0, 0, 1, 1}, 4, 2);
  ASSERT_TRUE(t.ok());
  const VMeasure v = ComputeVMeasure(*t);
  EXPECT_NEAR(v.homogeneity, 1.0, 1e-12);
  EXPECT_LT(v.completeness, 1.0);
  EXPECT_GT(v.v, 0.0);
  EXPECT_LT(v.v, 1.0);
}

TEST(ExtraMetricsTest, VMeasureCompleteButInhomogeneous) {
  // One cluster holding everything: completeness 1, homogeneity 0.
  auto t = ContingencyTable::Build({0, 0, 0, 0}, {0, 0, 1, 1}, 1, 2);
  ASSERT_TRUE(t.ok());
  const VMeasure v = ComputeVMeasure(*t);
  EXPECT_NEAR(v.completeness, 1.0, 1e-12);
  EXPECT_NEAR(v.homogeneity, 0.0, 1e-12);
  EXPECT_NEAR(v.v, 0.0, 1e-12);
}

// ----------------------------------------------------- labeler persistence --

class LabelerIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rock_labeler_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST_F(LabelerIoTest, SaveLoadRoundTripPreservesAssignments) {
  TransactionDataset sample;
  sample.AddTransaction({"a", "b"});
  sample.AddTransaction({"b", "c"});
  sample.AddTransaction({"a", "c"});
  sample.AddTransaction({"x", "y"});
  sample.AddTransaction({"y", "z"});
  Clustering clustering = Clustering::FromAssignment({0, 0, 0, 1, 1});
  RockOptions rock;
  rock.theta = 0.3;
  LabelingOptions opt;
  opt.fraction = 1.0;
  auto original =
      TransactionLabeler::Build(sample, clustering, rock, opt);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(original->Save(path()).ok());

  auto loaded = TransactionLabeler::Load(path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_clusters(), original->num_clusters());
  for (size_t c = 0; c < original->num_clusters(); ++c) {
    EXPECT_EQ(loaded->labeling_set_size(c),
              original->labeling_set_size(c));
  }
  // Identical assignments over a probe battery.
  const Dictionary& items = sample.items();
  std::vector<Transaction> probes = {
      Transaction({items.Lookup("a"), items.Lookup("b")}),
      Transaction({items.Lookup("x"), items.Lookup("y"),
                   items.Lookup("z")}),
      Transaction({items.Lookup("a"), items.Lookup("z")}),
      Transaction({999}),
      Transaction{},
  };
  for (const Transaction& probe : probes) {
    EXPECT_EQ(loaded->Assign(probe), original->Assign(probe));
  }
}

TEST_F(LabelerIoTest, LoadRejectsGarbage) {
  {
    std::FILE* f = std::fopen(path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a labeler";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_TRUE(TransactionLabeler::Load(path()).status().IsCorruption());
  EXPECT_TRUE(
      TransactionLabeler::Load("/no/such/file").status().IsIOError());
}

namespace {

/// Builds a small two-cluster labeler and Save()s it to `path`.
void WriteValidLabelerFile(const std::string& path) {
  TransactionDataset sample;
  sample.AddTransaction({"a", "b"});
  sample.AddTransaction({"b", "c"});
  sample.AddTransaction({"x", "y"});
  sample.AddTransaction({"y", "z"});
  Clustering clustering = Clustering::FromAssignment({0, 0, 1, 1});
  RockOptions rock;
  rock.theta = 0.3;
  LabelingOptions opt;
  opt.fraction = 1.0;
  auto labeler = TransactionLabeler::Build(sample, clustering, rock, opt);
  ASSERT_TRUE(labeler.ok()) << labeler.status().ToString();
  ASSERT_TRUE(labeler->Save(path).ok());
}

/// XORs one byte of the file at `offset` with `mask`.
void FlipByte(const std::string& path, long offset, unsigned char mask) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(static_cast<unsigned char>(c) ^ mask, f);
  std::fclose(f);
}

}  // namespace

TEST_F(LabelerIoTest, LoadRejectsTruncatedFile) {
  WriteValidLabelerFile(path());
  const auto full = std::filesystem::file_size(path());
  ASSERT_GT(full, 8u);
  // Cut mid-payload and mid-header: both must fail as corruption, at every
  // truncation point — a prefix of a labeler file is never a labeler file.
  for (uintmax_t keep : {full - 5, full / 2, uintmax_t{9}}) {
    std::filesystem::resize_file(path(), keep);
    EXPECT_TRUE(TransactionLabeler::Load(path()).status().IsCorruption())
        << "kept " << keep << " of " << full << " bytes";
  }
}

TEST_F(LabelerIoTest, LoadRejectsBitFlippedCounts) {
  // Flipping a high bit of a count field must be caught by the plausibility
  // bounds rather than driving a multi-gigabyte allocation.
  // Header layout: magic u64 | version u32 | theta f64 | exponent f64 |
  // num_clusters u64 | per cluster: set_size u64 | ...
  WriteValidLabelerFile(path());
  FlipByte(path(), 0, 0xff);  // magic
  EXPECT_TRUE(TransactionLabeler::Load(path()).status().IsCorruption());

  WriteValidLabelerFile(path());
  FlipByte(path(), 8 + 4 + 8 + 8 + 6, 0xff);  // num_clusters, high byte
  EXPECT_TRUE(TransactionLabeler::Load(path()).status().IsCorruption());

  WriteValidLabelerFile(path());
  FlipByte(path(), 8 + 4 + 8 + 8 + 8 + 6, 0xff);  // first set_size, high byte
  EXPECT_TRUE(TransactionLabeler::Load(path()).status().IsCorruption());
}

TEST_F(LabelerIoTest, LoadRejectsTrailingBytes) {
  WriteValidLabelerFile(path());
  {
    std::FILE* f = std::fopen(path().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc(0, f);
    std::fclose(f);
  }
  auto loaded = TransactionLabeler::Load(path());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().ToString().find("trailing"), std::string::npos);
}

TEST_F(LabelerIoTest, SaveRejectsOversizeTransaction) {
  // The file format stores transaction lengths as u32 with a 2^24-item cap;
  // Save must refuse (not silently truncate) anything larger.
  std::vector<ItemId> huge((1u << 24) + 1);
  std::iota(huge.begin(), huge.end(), ItemId{0});
  TransactionDataset sample;
  sample.AddTransaction(Transaction(std::move(huge)));
  sample.AddTransaction({"a", "b"});
  Clustering clustering = Clustering::FromAssignment({0, 0});
  RockOptions rock;
  LabelingOptions opt;
  opt.fraction = 1.0;
  auto labeler = TransactionLabeler::Build(sample, clustering, rock, opt);
  ASSERT_TRUE(labeler.ok());
  EXPECT_TRUE(labeler->Save(path()).IsInvalidArgument());
  std::filesystem::remove(path());
}

// ------------------------------------------------------------------- ARFF --

constexpr char kArff[] = R"(% UCI-style comment
@relation votes

@attribute 'handicapped-infants' {y, n}
@attribute crime {y, n}
@attribute class {republican, democrat}

@data
y,n,democrat
n,y,republican
?,y,republican
)";

TEST(ArffReaderTest, ParsesNominalFile) {
  auto ds = ReadArffString(kArff);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_EQ(ds->schema().num_attributes(), 2u);
  EXPECT_EQ(ds->schema().attribute_name(0), "handicapped-infants");
  EXPECT_TRUE(ds->record(2).IsMissing(0));
  EXPECT_EQ(ds->labels().Name(ds->labels().label(0)), "democrat");
  EXPECT_EQ(ds->labels().num_classes(), 2u);
}

TEST(ArffReaderTest, NoLabelAttribute) {
  ArffOptions opt;
  opt.label_attribute = "";
  auto ds = ReadArffString(kArff, opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->schema().num_attributes(), 3u);
  EXPECT_TRUE(ds->labels().empty());
}

TEST(ArffReaderTest, RejectsNumericAttributes) {
  const std::string text =
      "@relation r\n@attribute age numeric\n@data\n42\n";
  EXPECT_TRUE(ReadArffString(text).status().IsInvalidArgument());
}

TEST(ArffReaderTest, RejectsOutOfDomainValue) {
  const std::string text =
      "@relation r\n@attribute c {a,b}\n@data\nz\n";
  EXPECT_TRUE(ReadArffString(text).status().IsCorruption());
}

TEST(ArffReaderTest, RejectsRaggedRow) {
  const std::string text =
      "@relation r\n@attribute c {a,b}\n@attribute d {a,b}\n@data\na\n";
  EXPECT_TRUE(ReadArffString(text).status().IsCorruption());
}

TEST(ArffReaderTest, RejectsMissingDataSection) {
  EXPECT_TRUE(ReadArffString("@relation r\n@attribute c {a}\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ReadArffString("@relation r\n@data\n").status().IsCorruption());
}

TEST(ArffReaderTest, MissingLabelValueIsUnlabeled) {
  const std::string text =
      "@relation r\n@attribute c {a,b}\n@attribute class {x,y}\n"
      "@data\na,?\nb,x\n";
  auto ds = ReadArffString(text);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->labels().label(0), kNoLabel);
  EXPECT_EQ(ds->labels().Name(ds->labels().label(1)), "x");
}

TEST(ArffReaderTest, FileNotFound) {
  EXPECT_TRUE(ReadArffFile("/no/such.arff").status().IsIOError());
}

}  // namespace
}  // namespace rock
