// Tests for the sharded labeling engine: store shard planning / range
// readers (data/disk_store.h), the pruned Assign path vs its brute-force
// oracle, and the serial-vs-parallel LabelStore differential across thread
// counts × θ — the parallel path must be bit-identical to the serial one,
// including on an empty store and a store smaller than the shard count.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/labeling.h"
#include "data/disk_store.h"
#include "diag/metrics.h"
#include "synth/basket_generator.h"
#include "test_support.h"

namespace rock {
namespace {

class ShardedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rock_shard_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path() const { return path_.string(); }

  /// Writes `n` small transactions with varying sizes and a label per row.
  TransactionDataset WriteStore(size_t n, uint64_t seed) {
    ROCK_SEEDED_RNG(rng, seed);
    TransactionDataset ds;
    for (size_t i = 0; i < n; ++i) {
      const size_t len = 1 + static_cast<size_t>(rng.UniformUint64(6));
      std::vector<std::string> items;
      for (size_t k = 0; k < len; ++k) {
        items.push_back("item" + std::to_string(rng.UniformUint64(40)));
      }
      ds.AddTransaction(items);
      ds.labels().Append("class" + std::to_string(i % 3));
    }
    EXPECT_TRUE(WriteDatasetToStore(ds, path()).ok());
    return ds;
  }

 private:
  std::filesystem::path path_;
};

TEST_F(ShardedStoreTest, PlanShardsPartitionsEveryRowExactlyOnce) {
  WriteStore(97, 11);
  for (uint64_t max_shards : {1u, 2u, 3u, 7u, 16u, 97u, 200u}) {
    auto shards = TransactionStoreReader::PlanShards(path(), max_shards);
    ASSERT_TRUE(shards.ok()) << shards.status().ToString();
    ASSERT_FALSE(shards->empty());
    EXPECT_LE(shards->size(), std::min<uint64_t>(max_shards, 97));
    uint64_t row = 0;
    for (const StoreShardRange& range : *shards) {
      EXPECT_EQ(range.first_row, row) << "max_shards=" << max_shards;
      EXPECT_GT(range.num_rows, 0u);
      row += range.num_rows;
    }
    EXPECT_EQ(row, 97u) << "max_shards=" << max_shards;
  }
}

TEST_F(ShardedStoreTest, PlanShardsEmptyStoreYieldsNoShards) {
  WriteStore(0, 12);
  auto shards = TransactionStoreReader::PlanShards(path(), 8);
  ASSERT_TRUE(shards.ok());
  EXPECT_TRUE(shards->empty());
}

TEST_F(ShardedStoreTest, PlanShardsRejectsZeroAndMissingFile) {
  WriteStore(3, 13);
  EXPECT_TRUE(TransactionStoreReader::PlanShards(path(), 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(TransactionStoreReader::PlanShards("/no/such/store.bin", 4)
                  .status()
                  .IsIOError());
}

TEST_F(ShardedStoreTest, RangeReadersReproduceTheSerialScan) {
  TransactionDataset ds = WriteStore(41, 14);
  auto shards = TransactionStoreReader::PlanShards(path(), 5);
  ASSERT_TRUE(shards.ok());

  std::vector<Transaction> rows;
  std::vector<LabelId> labels;
  for (const StoreShardRange& range : *shards) {
    auto reader = TransactionStoreReader::OpenRange(path(), range);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->count(), range.num_rows);
    size_t got = 0;
    while (reader->Next()) {
      rows.push_back(reader->transaction());
      labels.push_back(reader->label());
      ++got;
    }
    ASSERT_TRUE(reader->status().ok()) << reader->status().ToString();
    EXPECT_EQ(got, range.num_rows);
  }
  ASSERT_EQ(rows.size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(rows[i], ds.transaction(i)) << "row " << i;
    EXPECT_EQ(labels[i], ds.labels().label(i)) << "row " << i;
  }
}

TEST_F(ShardedStoreTest, RangeReaderRewindReturnsToRangeStart) {
  WriteStore(20, 15);
  auto shards = TransactionStoreReader::PlanShards(path(), 4);
  ASSERT_TRUE(shards.ok());
  ASSERT_GT(shards->size(), 1u);
  const StoreShardRange& range = (*shards)[1];
  auto reader = TransactionStoreReader::OpenRange(path(), range);
  ASSERT_TRUE(reader.ok());
  std::vector<Transaction> first_pass;
  while (reader->Next()) first_pass.push_back(reader->transaction());
  ASSERT_TRUE(reader->Rewind().ok());
  std::vector<Transaction> second_pass;
  while (reader->Next()) second_pass.push_back(reader->transaction());
  EXPECT_EQ(first_pass, second_pass);
  EXPECT_EQ(first_pass.size(), range.num_rows);
}

TEST_F(ShardedStoreTest, OpenRangeRejectsIllFittingRanges) {
  WriteStore(10, 16);
  StoreShardRange bad;
  bad.byte_offset = 0;  // inside the header
  bad.first_row = 0;
  bad.num_rows = 1;
  EXPECT_TRUE(TransactionStoreReader::OpenRange(path(), bad)
                  .status()
                  .IsInvalidArgument());
  StoreShardRange beyond;
  beyond.byte_offset = 20;
  beyond.first_row = 8;
  beyond.num_rows = 5;  // 8 + 5 > 10 rows
  EXPECT_TRUE(TransactionStoreReader::OpenRange(path(), beyond)
                  .status()
                  .IsInvalidArgument());
}

// ------------------------------------------------ pruned Assign vs oracle --

/// Clustered sample + labeler over basket-style data.
Result<TransactionLabeler> MakeLabeler(double theta, uint64_t seed,
                                       TransactionDataset* sample_out) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {50, 35, 25};
  gen.items_per_cluster = {14, 12, 10};
  gen.num_outliers = 8;
  gen.seed = seed;
  TransactionDataset sample = std::move(GenerateBasketData(gen)).value();
  // Ground-truth-shaped clustering is fine here: the labeler only needs
  // *some* partition of the sample.
  std::vector<ClusterIndex> assignment(sample.size());
  for (size_t i = 0; i < sample.size(); ++i) {
    assignment[i] = static_cast<ClusterIndex>(i % 3);
  }
  RockOptions rock;
  rock.theta = theta;
  rock.num_clusters = 3;
  LabelingOptions opt;
  opt.fraction = 0.5;
  if (sample_out != nullptr) *sample_out = sample;
  return TransactionLabeler::Build(
      sample, Clustering::FromAssignment(std::move(assignment)), rock, opt);
}

TEST(PrunedAssignTest, MatchesBruteForceOracleAcrossThetas) {
  for (double theta : {0.0, 0.2, 0.5, 0.73, 0.95}) {
    ROCK_TRACE_SEED(21);
    TransactionDataset sample;
    auto labeler = MakeLabeler(theta, 21, &sample);
    ASSERT_TRUE(labeler.ok()) << labeler.status().ToString();

    TransactionLabeler::Scratch scratch;
    TransactionLabeler::AssignStats stats;
    ROCK_SEEDED_RNG(rng, 22);
    for (int trial = 0; trial < 300; ++trial) {
      // Probes drawn from the sample's own id space plus alien ids.
      const size_t len = static_cast<size_t>(rng.UniformUint64(9));
      std::vector<ItemId> items;
      for (size_t k = 0; k < len; ++k) {
        items.push_back(static_cast<ItemId>(rng.UniformUint64(80)));
      }
      const Transaction probe(std::move(items));
      EXPECT_EQ(labeler->Assign(probe, &scratch, &stats),
                labeler->AssignUnpruned(probe))
          << "theta=" << theta << " trial=" << trial;
    }
    // Edge probes: empty, all-alien, and a full sample transaction.
    EXPECT_EQ(labeler->Assign(Transaction{}, &scratch, nullptr),
              labeler->AssignUnpruned(Transaction{}));
    const Transaction alien({5000, 5001, 5002});
    EXPECT_EQ(labeler->Assign(alien, &scratch, nullptr),
              labeler->AssignUnpruned(alien));
    EXPECT_EQ(labeler->Assign(sample.transaction(0), &scratch, nullptr),
              labeler->AssignUnpruned(sample.transaction(0)));
  }
}

TEST(PrunedAssignTest, PruningActuallyFiresAtPositiveTheta) {
  TransactionDataset sample;
  auto labeler = MakeLabeler(0.5, 31, &sample);
  ASSERT_TRUE(labeler.ok());
  TransactionLabeler::AssignStats stats;
  TransactionLabeler::Scratch scratch;
  // An alien probe shares no items: every cluster must be pruned and no
  // similarity computed.
  labeler->Assign(Transaction({9000, 9001}), &scratch, &stats);
  EXPECT_EQ(stats.clusters_pruned, labeler->num_clusters());
  EXPECT_EQ(stats.clusters_scored, 0u);
  EXPECT_EQ(stats.similarities_computed, 0u);
  // A tiny probe against 15-ish-item labeling points at θ=0.5: everything
  // the item index lets through must then fail the length bound.
  TransactionLabeler::AssignStats small;
  labeler->Assign(sample.transaction(0).empty()
                      ? Transaction({0})
                      : Transaction({sample.transaction(0).items()[0]}),
                  &scratch, &small);
  EXPECT_EQ(small.similarities_computed, 0u);
  EXPECT_GT(small.points_skipped_length + small.clusters_pruned, 0u);
}

// --------------------------------------- serial vs parallel differential --

class ParallelLabelStoreTest : public ShardedStoreTest {};

TEST_F(ParallelLabelStoreTest, BitIdenticalAcrossThreadCountsAndThetas) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {120, 90, 60};
  gen.items_per_cluster = {14, 12, 10};
  gen.num_outliers = 20;
  gen.seed = 41;
  TransactionDataset store_data = std::move(GenerateBasketData(gen)).value();
  ASSERT_TRUE(WriteDatasetToStore(store_data, path()).ok());

  for (double theta : {0.3, 0.5, 0.73}) {
    ROCK_TRACE_SEED(42);
    auto labeler = MakeLabeler(theta, 42, nullptr);
    ASSERT_TRUE(labeler.ok()) << labeler.status().ToString();

    LabelStoreOptions serial;
    serial.num_threads = 1;
    auto reference = LabelStore(path(), *labeler, serial);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_EQ(reference->assignments.size(), store_data.size());

    for (size_t threads : {2u, 3u, 5u, 8u}) {
      LabelStoreOptions parallel;
      parallel.num_threads = threads;
      auto result = LabelStore(path(), *labeler, parallel);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->assignments, reference->assignments)
          << "theta=" << theta << " threads=" << threads;
      EXPECT_EQ(result->ground_truth, reference->ground_truth);
      EXPECT_EQ(result->num_outliers, reference->num_outliers);
      // Pruning counters are per-row sums, so they are thread-invariant.
      EXPECT_EQ(result->stats.clusters_pruned,
                reference->stats.clusters_pruned);
      EXPECT_EQ(result->stats.clusters_scored,
                reference->stats.clusters_scored);
      EXPECT_EQ(result->stats.points_skipped_length,
                reference->stats.points_skipped_length);
      EXPECT_EQ(result->stats.similarities_computed,
                reference->stats.similarities_computed);
      EXPECT_EQ(result->threads_used, threads);
      EXPECT_GT(result->shards, 1u);
    }

    // And the whole engine agrees with the brute-force oracle per row.
    auto reader = TransactionStoreReader::Open(path());
    ASSERT_TRUE(reader.ok());
    size_t row = 0;
    while (reader->Next()) {
      ASSERT_EQ(reference->assignments[row],
                labeler->AssignUnpruned(reader->transaction()))
          << "row " << row << " theta=" << theta;
      ++row;
    }
  }
}

TEST_F(ParallelLabelStoreTest, EmptyStoreWorksAtAnyThreadCount) {
  WriteStore(0, 51);
  auto labeler = MakeLabeler(0.5, 51, nullptr);
  ASSERT_TRUE(labeler.ok());
  for (size_t threads : {1u, 4u, 8u}) {
    LabelStoreOptions opt;
    opt.num_threads = threads;
    auto result = LabelStore(path(), *labeler, opt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->assignments.empty());
    EXPECT_TRUE(result->ground_truth.empty());
    EXPECT_EQ(result->num_outliers, 0u);
    EXPECT_EQ(result->shards, 0u);
  }
}

TEST_F(ParallelLabelStoreTest, StoreSmallerThanShardCount) {
  TransactionDataset tiny = WriteStore(3, 52);
  auto labeler = MakeLabeler(0.5, 52, nullptr);
  ASSERT_TRUE(labeler.ok());
  LabelStoreOptions serial;
  serial.num_threads = 1;
  auto reference = LabelStore(path(), *labeler, serial);
  ASSERT_TRUE(reference.ok());
  LabelStoreOptions wide;
  wide.num_threads = 16;  // 16 workers, 4×16 wanted shards, only 3 rows
  auto result = LabelStore(path(), *labeler, wide);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->assignments, reference->assignments);
  EXPECT_EQ(result->ground_truth, reference->ground_truth);
  EXPECT_LE(result->shards, 3u);
}

TEST_F(ParallelLabelStoreTest, RecordsLabelingMetrics) {
  WriteStore(30, 53);
  auto labeler = MakeLabeler(0.5, 53, nullptr);
  ASSERT_TRUE(labeler.ok());
  diag::MetricsRegistry registry;
  LabelStoreOptions opt;
  opt.num_threads = 2;
  opt.metrics = &registry;
  auto result = LabelStore(path(), *labeler, opt);
  ASSERT_TRUE(result.ok());
  const diag::RunMetrics m = registry.Snapshot();
  EXPECT_EQ(m.CounterOr("label.threads"), 2u);
  EXPECT_GT(m.CounterOr("label.shards"), 0u);
  EXPECT_EQ(m.CounterOr("label.clusters_scored") +
                m.CounterOr("label.clusters_pruned"),
            result->stats.clusters_scored + result->stats.clusters_pruned);
  EXPECT_NE(m.FindTimer("stage.label_scan"), nullptr);
  const double rate = m.GaugeOr("label.prune_hit_rate", -1.0);
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

TEST_F(ParallelLabelStoreTest, MissingStoreFailsCleanly) {
  auto labeler = MakeLabeler(0.5, 54, nullptr);
  ASSERT_TRUE(labeler.ok());
  LabelStoreOptions opt;
  opt.num_threads = 4;
  EXPECT_TRUE(
      LabelStore("/no/such/store.bin", *labeler, opt).status().IsIOError());
}

}  // namespace
}  // namespace rock
