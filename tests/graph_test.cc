// Tests for graph/: neighbor computation, sparse link counting (Fig. 4),
// and the dense matrix-squaring paths (naive + Strassen). Includes the
// paper's hand-computed link counts from §3.2 / Example 1.2 (Figure 1).

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/dataset.h"
#include "graph/dense_matrix.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "graph/strassen.h"
#include "similarity/jaccard.h"
#include "similarity/similarity_table.h"
#include "test_support.h"

namespace rock {
namespace {

/// The Figure 1 basket data: every size-3 subset of {1,2,3,4,5} (cluster A,
/// 10 transactions) plus every size-3 subset of {1,2,6,7} (cluster B, 4
/// transactions). Items 1 and 2 are shared between the clusters.
TransactionDataset Figure1Data() {
  TransactionDataset ds;
  const std::vector<ItemId> cluster_a = {1, 2, 3, 4, 5};
  const std::vector<ItemId> cluster_b = {1, 2, 6, 7};
  auto add_triples = [&](const std::vector<ItemId>& items,
                         const std::string& label) {
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        for (size_t l = j + 1; l < items.size(); ++l) {
          ds.AddTransaction(Transaction({items[i], items[j], items[l]}));
          ds.labels().Append(label);
        }
      }
    }
  };
  add_triples(cluster_a, "A");
  add_triples(cluster_b, "B");
  return ds;
}

/// Finds the dataset row holding exactly `tx`.
size_t RowOf(const TransactionDataset& ds, const Transaction& tx) {
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.transaction(i) == tx) return i;
  }
  ADD_FAILURE() << "transaction not found";
  return SIZE_MAX;
}

// -------------------------------------------------------------- Neighbors --

TEST(NeighborsTest, ThetaOneOnlyIdenticalPointsQualify) {
  TransactionDataset ds;
  ds.AddTransaction({"a", "b"});
  ds.AddTransaction({"a", "b"});
  ds.AddTransaction({"a", "c"});
  TransactionJaccard sim(ds);
  auto g = ComputeNeighbors(sim, 1.0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->Degree(0), 1u);
  EXPECT_TRUE(g->AreNeighbors(0, 1));
  EXPECT_FALSE(g->AreNeighbors(0, 2));
}

TEST(NeighborsTest, ThetaZeroEveryoneIsNeighbors) {
  TransactionDataset ds;
  ds.AddTransaction({"a"});
  ds.AddTransaction({"b"});
  ds.AddTransaction({"c"});
  TransactionJaccard sim(ds);
  auto g = ComputeNeighbors(sim, 0.0);
  ASSERT_TRUE(g.ok());
  // Even disjoint pairs have sim = 0 >= θ = 0.
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(g->Degree(i), 2u);
}

TEST(NeighborsTest, SelfIsNotANeighbor) {
  TransactionDataset ds;
  ds.AddTransaction({"a"});
  ds.AddTransaction({"a"});
  TransactionJaccard sim(ds);
  auto g = ComputeNeighbors(sim, 0.0);
  ASSERT_TRUE(g.ok());
  for (size_t i = 0; i < 2; ++i) {
    for (PointIndex j : g->nbrlist[i]) EXPECT_NE(j, i);
  }
}

TEST(NeighborsTest, InvalidThetaRejected) {
  TransactionDataset ds;
  ds.AddTransaction({"a"});
  TransactionJaccard sim(ds);
  EXPECT_TRUE(ComputeNeighbors(sim, -0.1).status().IsInvalidArgument());
  EXPECT_TRUE(ComputeNeighbors(sim, 1.1).status().IsInvalidArgument());
}

TEST(NeighborsTest, DegreeStatistics) {
  SimilarityTable t(4);
  ASSERT_TRUE(t.Set(0, 1, 0.9).ok());
  ASSERT_TRUE(t.Set(0, 2, 0.9).ok());
  ASSERT_TRUE(t.Set(0, 3, 0.9).ok());
  auto g = ComputeNeighbors(t, 0.5);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->MaxDegree(), 3u);
  EXPECT_DOUBLE_EQ(g->AverageDegree(), 6.0 / 4.0);
  EXPECT_EQ(g->NumEdges(), 3u);
}

TEST(NeighborsTest, SubsetGraphReindexes) {
  SimilarityTable t(4);
  ASSERT_TRUE(t.Set(1, 3, 0.9).ok());
  auto g = ComputeNeighborsForSubset(t, {1, 3}, 0.5);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->size(), 2u);
  EXPECT_TRUE(g->AreNeighbors(0, 1));
  EXPECT_TRUE(
      ComputeNeighborsForSubset(t, {1, 9}, 0.5).status().IsOutOfRange());
}

// ------------------------------------------------------------------ Links --

TEST(LinksTest, PaperExample12LinkCounts) {
  // §3.2 with θ = 0.5: pairs inside the big cluster containing {1,2} have
  // 5 common neighbors; the cross-cluster pair ({1,2,3}, {1,2,6}) has 3.
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  auto g = ComputeNeighbors(sim, 0.5);
  ASSERT_TRUE(g.ok());
  LinkMatrix links = ComputeLinks(*g);

  const auto t123 = static_cast<PointIndex>(RowOf(ds, Transaction({1, 2, 3})));
  const auto t124 = static_cast<PointIndex>(RowOf(ds, Transaction({1, 2, 4})));
  const auto t126 = static_cast<PointIndex>(RowOf(ds, Transaction({1, 2, 6})));
  const auto t127 = static_cast<PointIndex>(RowOf(ds, Transaction({1, 2, 7})));
  const auto t167 = static_cast<PointIndex>(RowOf(ds, Transaction({1, 6, 7})));

  // "{1,2,3} and {1,2,4} has 5 common neighbors (due to {1,2,5}, {1,2,6},
  //  {1,2,7}, {1,3,4} and {2,3,4})".
  EXPECT_EQ(links.Count(t123, t124), 5u);
  // "a pair of transactions containing 1 and 2, but in different clusters
  //  (e.g., {1,2,3} and {1,2,6}) has only 3 neighbors in common".
  EXPECT_EQ(links.Count(t123, t126), 3u);
  // §3.2: "Transaction {1,2,6} has 5 links with transaction {1,2,7}".
  EXPECT_EQ(links.Count(t126, t127), 5u);
  // "transaction {1,6,7} has 2 links with every transaction in the smaller
  //  cluster (e.g., {1,2,6})".
  EXPECT_EQ(links.Count(t167, t126), 2u);
  // "... and 0 links with every other transaction in the bigger cluster".
  // Strictly this holds for big-cluster transactions that do not contain
  // both shared items 1 and 2 — {1,2,3} itself has 2 common neighbors with
  // {1,6,7} (namely {1,2,6} and {1,2,7}), which the paper's prose glosses
  // over. We assert the computed truth for both kinds.
  const auto t134 = static_cast<PointIndex>(RowOf(ds, Transaction({1, 3, 4})));
  const auto t345 = static_cast<PointIndex>(RowOf(ds, Transaction({3, 4, 5})));
  EXPECT_EQ(links.Count(t167, t134), 0u);
  EXPECT_EQ(links.Count(t167, t345), 0u);
  EXPECT_EQ(links.Count(t167, t123), 2u);
}

TEST(LinksTest, Example11NeighborsAtLeastOneCommonItem) {
  // §1.2: "suppose we defined a pair of transactions to be neighbors if
  // they contained at least one item in common. … transactions {1,4} and
  // {6} would have no links between them". Any positive θ under Jaccard
  // encodes "at least one common item".
  TransactionDataset ds;
  ds.AddTransaction(Transaction({1, 2, 3, 5}));
  ds.AddTransaction(Transaction({2, 3, 4, 5}));
  ds.AddTransaction(Transaction({1, 4}));
  ds.AddTransaction(Transaction({6}));
  TransactionJaccard sim(ds);
  auto g = ComputeNeighbors(sim, 0.001);
  ASSERT_TRUE(g.ok());
  LinkMatrix links = ComputeLinks(*g);
  EXPECT_EQ(links.Count(2, 3), 0u);
  EXPECT_GT(links.Count(0, 1), 0u);
}

TEST(LinksTest, LinkIsCommonNeighborCount) {
  // Star graph: center 0 adjacent to 1..4; leaves share exactly one common
  // neighbor (the center); center-leaf pairs share none.
  SimilarityTable t(5);
  for (size_t leaf = 1; leaf < 5; ++leaf) {
    ASSERT_TRUE(t.Set(0, leaf, 1.0).ok());
  }
  auto g = ComputeNeighbors(t, 0.9);
  ASSERT_TRUE(g.ok());
  LinkMatrix links = ComputeLinks(*g);
  EXPECT_EQ(links.Count(1, 2), 1u);
  EXPECT_EQ(links.Count(3, 4), 1u);
  EXPECT_EQ(links.Count(0, 1), 0u);
  EXPECT_EQ(links.TotalLinks(), 6u);  // C(4,2) leaf pairs
}

TEST(LinksTest, SymmetricStorage) {
  SimilarityTable t(3);
  ASSERT_TRUE(t.Set(0, 1, 1.0).ok());
  ASSERT_TRUE(t.Set(0, 2, 1.0).ok());
  auto g = ComputeNeighbors(t, 0.5);
  ASSERT_TRUE(g.ok());
  LinkMatrix links = ComputeLinks(*g);
  EXPECT_EQ(links.Count(1, 2), links.Count(2, 1));
  EXPECT_EQ(links.Count(1, 1), 0u);
  EXPECT_EQ(links.NumNonZeroPairs(), 1u);
}

TEST(LinksTest, DiagonalAddIsIgnored) {
  // Regression: Add(i, i, d) used to perform both symmetric writes on the
  // same cell, storing 2d on the diagonal. It must be a no-op instead.
  LinkMatrix links(3);
  links.Add(1, 1, 5);
  EXPECT_EQ(links.Count(1, 1), 0u);
  EXPECT_TRUE(links.Row(1).empty());
  EXPECT_EQ(links.NumNonZeroPairs(), 0u);
  EXPECT_EQ(links.TotalLinks(), 0u);
  // Off-diagonal behaviour is unchanged.
  links.Add(0, 2, 3);
  links.Add(2, 2, 7);
  EXPECT_EQ(links.Count(0, 2), 3u);
  EXPECT_EQ(links.Count(2, 0), 3u);
  EXPECT_EQ(links.Count(2, 2), 0u);
  EXPECT_EQ(links.TotalLinks(), 3u);
}

TEST(LinksTest, DenseAccumulatorMatchesSparsePath) {
  ROCK_SEEDED_RNG(rng, 123);
  const size_t n = 60;
  SimilarityTable t(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.3)) {
        ASSERT_TRUE(t.Set(i, j, 1.0).ok());
      }
    }
  }
  auto g = ComputeNeighbors(t, 0.5);
  ASSERT_TRUE(g.ok());
  ComputeLinksOptions force_sparse;
  force_sparse.dense_budget_bytes = 0;
  LinkMatrix sparse = ComputeLinks(*g, force_sparse);
  LinkMatrix dense = ComputeLinks(*g);  // default budget → dense path
  for (PointIndex i = 0; i < n; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < n; ++j) {
      ASSERT_EQ(sparse.Count(i, j), dense.Count(i, j));
    }
  }
}

TEST(LinksTest, MatchesBruteForceOnRandomGraphs) {
  ROCK_SEEDED_RNG(rng, 99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 20 + static_cast<size_t>(rng.UniformUint64(30));
    SimilarityTable t(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.25)) {
          ASSERT_TRUE(t.Set(i, j, 1.0).ok());
        }
      }
    }
    auto g = ComputeNeighbors(t, 0.5);
    ASSERT_TRUE(g.ok());
    LinkMatrix fast = ComputeLinks(*g);
    LinkMatrix slow = ComputeLinksBruteForce(*g);
    for (PointIndex i = 0; i < n; ++i) {
      for (PointIndex j = static_cast<PointIndex>(i + 1); j < n; ++j) {
        ASSERT_EQ(fast.Count(i, j), slow.Count(i, j))
            << "trial " << trial << " pair (" << i << "," << j << ")";
      }
    }
  }
}

// ----------------------------------------------------------- Dense matmul --

TEST(DenseMatrixTest, MultiplyKnownProduct) {
  DenseMatrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  int64_t va = 1;
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) a.At(r, c) = va++;
  int64_t vb = 7;
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 2; ++c) b.At(r, c) = vb++;
  auto p = a.Multiply(b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->At(0, 0), 58);
  EXPECT_EQ(p->At(0, 1), 64);
  EXPECT_EQ(p->At(1, 0), 139);
  EXPECT_EQ(p->At(1, 1), 154);
}

TEST(DenseMatrixTest, DimensionMismatchFails) {
  DenseMatrix a(2, 3), b(2, 3);
  EXPECT_TRUE(a.Multiply(b).status().IsInvalidArgument());
}

TEST(DenseMatrixTest, DenseLinksMatchSparse) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  auto g = ComputeNeighbors(sim, 0.5);
  ASSERT_TRUE(g.ok());
  LinkMatrix sparse = ComputeLinks(*g);
  LinkMatrix dense = ComputeLinksDense(*g);
  const auto n = static_cast<PointIndex>(g->size());
  for (PointIndex i = 0; i < n; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < n; ++j) {
      ASSERT_EQ(sparse.Count(i, j), dense.Count(i, j));
    }
  }
}

// --------------------------------------------------------------- Strassen --

TEST(StrassenTest, MatchesNaiveOnRandomSquares) {
  ROCK_SEEDED_RNG(rng, 7);
  for (size_t n : {1u, 2u, 3u, 5u, 8u, 17u, 33u}) {
    DenseMatrix a(n, n), b(n, n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        a.At(r, c) = rng.UniformInt(-50, 50);
        b.At(r, c) = rng.UniformInt(-50, 50);
      }
    }
    StrassenOptions opt;
    opt.cutoff = 2;  // force deep recursion even for small n
    auto fast = StrassenMultiply(a, b, opt);
    auto slow = a.Multiply(b);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(*fast, *slow) << "n = " << n;
  }
}

TEST(StrassenTest, RejectsNonSquare) {
  DenseMatrix a(2, 3), b(3, 2);
  EXPECT_TRUE(StrassenMultiply(a, b).status().IsInvalidArgument());
  DenseMatrix c(2, 2), d(3, 3);
  EXPECT_TRUE(StrassenMultiply(c, d).status().IsInvalidArgument());
}

TEST(StrassenTest, EmptyMatrix) {
  DenseMatrix a(0, 0);
  auto p = StrassenMultiply(a, a);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rows(), 0u);
}

TEST(StrassenTest, StrassenLinksMatchSparse) {
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  auto g = ComputeNeighbors(sim, 0.5);
  ASSERT_TRUE(g.ok());
  LinkMatrix sparse = ComputeLinks(*g);
  StrassenOptions opt;
  opt.cutoff = 4;
  LinkMatrix strassen = ComputeLinksStrassen(*g, opt);
  const auto n = static_cast<PointIndex>(g->size());
  for (PointIndex i = 0; i < n; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < n; ++j) {
      ASSERT_EQ(sparse.Count(i, j), strassen.Count(i, j));
    }
  }
}

// Property sweep: all three link algorithms agree on random graphs of
// varying density.
class LinkAlgorithmsAgree : public ::testing::TestWithParam<double> {};

TEST_P(LinkAlgorithmsAgree, OnRandomGraph) {
  const double density = GetParam();
  ROCK_SEEDED_RNG(rng, static_cast<uint64_t>(density * 1000) + 1);
  const size_t n = 40;
  SimilarityTable t(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(density)) {
        ASSERT_TRUE(t.Set(i, j, 1.0).ok());
      }
    }
  }
  auto g = ComputeNeighbors(t, 0.5);
  ASSERT_TRUE(g.ok());
  LinkMatrix sparse = ComputeLinks(*g);
  LinkMatrix dense = ComputeLinksDense(*g);
  LinkMatrix strassen = ComputeLinksStrassen(*g);
  for (PointIndex i = 0; i < n; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < n; ++j) {
      ASSERT_EQ(sparse.Count(i, j), dense.Count(i, j));
      ASSERT_EQ(sparse.Count(i, j), strassen.Count(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, LinkAlgorithmsAgree,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace rock
