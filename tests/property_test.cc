// Property-based tests on the RockClusterer: structural invariants that
// must hold for every input, parameterized over θ, dataset seeds and
// thread counts (TEST_P sweeps).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/random.h"
#include "core/criterion.h"
#include "core/rock.h"
#include "graph/parallel.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"
#include "test_support.h"

namespace rock {
namespace {

TransactionDataset MakeData(uint64_t seed) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {60, 40, 25};
  gen.items_per_cluster = {14, 12, 16};
  gen.num_outliers = 12;
  gen.mean_tx_size = 8.0;
  gen.stddev_tx_size = 1.5;
  gen.seed = seed;
  return std::move(GenerateBasketData(gen)).value();
}

struct Case {
  uint64_t seed;
  double theta;
  size_t k;
};

class RockPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(RockPropertyTest, StructuralInvariants) {
  const Case c = GetParam();
  TransactionDataset ds = MakeData(c.seed);
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = c.theta;
  opt.num_clusters = c.k;
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());
  const Clustering& clustering = result->clustering;

  // (1) Assignment covers exactly the clusters' members.
  ASSERT_EQ(clustering.assignment.size(), ds.size());
  std::vector<size_t> seen(ds.size(), 0);
  for (size_t cl = 0; cl < clustering.num_clusters(); ++cl) {
    ASSERT_FALSE(clustering.clusters[cl].empty());
    ASSERT_TRUE(std::is_sorted(clustering.clusters[cl].begin(),
                               clustering.clusters[cl].end()));
    for (PointIndex p : clustering.clusters[cl]) {
      ++seen[p];
      EXPECT_EQ(clustering.assignment[p], static_cast<ClusterIndex>(cl));
    }
  }
  for (size_t p = 0; p < ds.size(); ++p) {
    if (clustering.assignment[p] == kUnassigned) {
      EXPECT_EQ(seen[p], 0u);
    } else {
      EXPECT_EQ(seen[p], 1u);
    }
  }

  // (2) Clusters are sorted by decreasing size.
  for (size_t cl = 0; cl + 1 < clustering.num_clusters(); ++cl) {
    EXPECT_GE(clustering.clusters[cl].size(),
              clustering.clusters[cl + 1].size());
  }

  // (3) Bookkeeping identities: every merge reduces the live-cluster count
  //     by one, weeding removes whole clusters and their points.
  const size_t participants =
      ds.size() - result->stats.num_pruned_points;
  EXPECT_EQ(participants - result->stats.num_weeded_points,
            clustering.num_assigned());
  EXPECT_EQ(participants - result->stats.num_merges -
                result->stats.num_weeded_clusters,
            clustering.num_clusters());

  // (4) If ROCK stopped above k, the remaining clusters share no links.
  auto graph = ComputeNeighbors(sim, c.theta);
  ASSERT_TRUE(graph.ok());
  LinkMatrix links = ComputeLinks(*graph);
  if (clustering.num_clusters() > c.k) {
    for (size_t a = 0; a < clustering.num_clusters(); ++a) {
      for (size_t b = a + 1; b < clustering.num_clusters(); ++b) {
        uint64_t cross = 0;
        for (PointIndex p : clustering.clusters[a]) {
          for (PointIndex q : clustering.clusters[b]) {
            cross += links.Count(p, q);
          }
        }
        EXPECT_EQ(cross, 0u)
            << "clusters " << a << " and " << b << " still share links";
      }
    }
  }

  // (5) Pruned points really are isolated.
  for (size_t p = 0; p < ds.size(); ++p) {
    if (clustering.assignment[p] == kUnassigned &&
        result->stats.num_weeded_points == 0) {
      EXPECT_LT(graph->Degree(p), opt.min_neighbors);
    }
  }

  // (6) The reported criterion value matches an independent evaluation.
  GoodnessMeasure g(opt);
  EXPECT_NEAR(result->stats.criterion_value,
              CriterionFunction(clustering, links, g),
              1e-9 * (1.0 + std::abs(result->stats.criterion_value)));

  // (7) ROCK's criterion beats random same-shape partitions.
  ROCK_SEEDED_RNG(rng, c.seed ^ 0xabcdef);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ClusterIndex> random_assignment(ds.size());
    for (auto& a : random_assignment) {
      a = static_cast<ClusterIndex>(
          rng.UniformUint64(std::max<size_t>(c.k, 1)));
    }
    Clustering random_clustering =
        Clustering::FromAssignment(std::move(random_assignment));
    EXPECT_GE(result->stats.criterion_value + 1e-9,
              CriterionFunction(random_clustering, links, g));
  }
}

TEST_P(RockPropertyTest, PointOrderInvariance) {
  // Clustering quality must not depend on row order: a permuted dataset
  // yields the same partition (as a set family), modulo outliers.
  const Case c = GetParam();
  TransactionDataset ds = MakeData(c.seed);

  ROCK_SEEDED_RNG(rng, c.seed + 1);
  std::vector<size_t> perm(ds.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  rng.Shuffle(perm);
  TransactionDataset shuffled;
  for (size_t i = 0; i < ds.size(); ++i) {
    shuffled.AddTransaction(ds.transaction(perm[i]));
  }

  RockOptions opt;
  opt.theta = c.theta;
  opt.num_clusters = c.k;
  TransactionJaccard sim1(ds), sim2(shuffled);
  auto r1 = RockClusterer(opt).Cluster(sim1);
  auto r2 = RockClusterer(opt).Cluster(sim2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());

  // Compare as partitions of the original indices. Greedy tie-breaking is
  // id-dependent, so require only that the *numbers* of clusters/outliers
  // agree and the partitions agree on >= 95% of co-membership decisions.
  EXPECT_EQ(r1->clustering.num_clusters(), r2->clustering.num_clusters());
  EXPECT_EQ(r1->clustering.num_outliers(), r2->clustering.num_outliers());

  size_t agree = 0, total = 0;
  ROCK_TRACE_SEED(c.seed + 2);
  Rng pair_rng(c.seed + 2);
  for (int t = 0; t < 4000; ++t) {
    const size_t p = static_cast<size_t>(pair_rng.UniformUint64(ds.size()));
    const size_t q = static_cast<size_t>(pair_rng.UniformUint64(ds.size()));
    if (p == q) continue;
    // Positions of original rows p, q inside the shuffled dataset.
    const size_t sp = static_cast<size_t>(
        std::find(perm.begin(), perm.end(), p) - perm.begin());
    const size_t sq = static_cast<size_t>(
        std::find(perm.begin(), perm.end(), q) - perm.begin());
    const bool together1 =
        r1->clustering.assignment[p] != kUnassigned &&
        r1->clustering.assignment[p] == r1->clustering.assignment[q];
    const bool together2 =
        r2->clustering.assignment[sp] != kUnassigned &&
        r2->clustering.assignment[sp] == r2->clustering.assignment[sq];
    ++total;
    if (together1 == together2) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95);
}

TEST_P(RockPropertyTest, ThreadCountDoesNotChangeResult) {
  const Case c = GetParam();
  TransactionDataset ds = MakeData(c.seed);
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = c.theta;
  opt.num_clusters = c.k;
  auto serial = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u}) {
    opt.num_threads = threads;
    auto parallel = RockClusterer(opt).Cluster(sim);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->clustering.assignment,
              serial->clustering.assignment)
        << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RockPropertyTest,
    ::testing::Values(Case{1, 0.4, 3}, Case{1, 0.5, 3}, Case{1, 0.6, 3},
                      Case{2, 0.5, 2}, Case{2, 0.5, 6}, Case{3, 0.3, 3},
                      Case{4, 0.7, 4}, Case{5, 0.5, 1}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_theta" +
             std::to_string(static_cast<int>(param_info.param.theta * 100)) +
             "_k" + std::to_string(param_info.param.k);
    });

// Neighbor-graph monotonicity in θ: raising the threshold only removes
// edges (the basis for the paper's Fig. 5 "larger θ is cheaper" claim).
TEST(NeighborMonotonicityTest, HigherThetaYieldsSubgraph) {
  TransactionDataset ds = MakeData(9);
  TransactionJaccard sim(ds);
  auto prev = ComputeNeighbors(sim, 0.2);
  ASSERT_TRUE(prev.ok());
  for (double theta : {0.3, 0.4, 0.5, 0.7, 0.9}) {
    auto next = ComputeNeighbors(sim, theta);
    ASSERT_TRUE(next.ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      for (PointIndex j : next->nbrlist[i]) {
        EXPECT_TRUE(prev->AreNeighbors(static_cast<PointIndex>(i), j))
            << "edge gained when raising theta to " << theta;
      }
    }
    prev = std::move(next);
  }
}

}  // namespace
}  // namespace rock
