// Property tests for the LinkMatrix dense/sparse duality. ComputeLinks
// silently switches between a flat triangular accumulator and per-row hash
// maps based on dense_budget_bytes; the two paths must be indistinguishable
// at EVERY budget boundary (0, exactly-fits, one byte short). A fuzz loop of
// random Add/Count sequences then cross-checks LinkMatrix bookkeeping
// against a naive map model.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "diag/invariants.h"
#include "graph/link_engine.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"
#include "test_support.h"

namespace rock {
namespace {

NeighborGraph RandomGraph(uint64_t seed, double theta) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {40, 30, 20};
  gen.items_per_cluster = {12, 10, 14};
  gen.num_outliers = 8;
  gen.seed = seed;
  TransactionDataset ds = std::move(GenerateBasketData(gen)).value();
  TransactionJaccard sim(ds);
  return std::move(ComputeNeighbors(sim, theta)).value();
}

void ExpectSameMatrix(const LinkMatrix& a, const LinkMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.NumNonZeroPairs(), b.NumNonZeroPairs());
  EXPECT_EQ(a.TotalLinks(), b.TotalLinks());
  for (size_t i = 0; i < a.size(); ++i) {
    const auto& row = a.Row(static_cast<PointIndex>(i));
    ASSERT_EQ(row.size(), b.Row(static_cast<PointIndex>(i)).size())
        << "row " << i;
    for (const auto& [j, count] : row) {
      EXPECT_EQ(b.Count(static_cast<PointIndex>(i), j), count)
          << "entry (" << i << ", " << j << ")";
    }
  }
}

/// Bytes the dense triangular accumulator needs for an n-point graph.
size_t DenseBytes(size_t n) {
  return n < 2 ? 0 : n * (n - 1) / 2 * sizeof(LinkCount);
}

// The budget boundaries: 0 (always sparse), exactly-fits (dense), and one
// byte short (sparse again). All three must equal the brute-force oracle.
TEST(LinksBudgetBoundaryTest, AllBoundariesMatchBruteForce) {
  const uint64_t seed = 71;
  ROCK_TRACE_SEED(seed);
  for (double theta : {0.2, 0.5, 0.8}) {
    SCOPED_TRACE(::testing::Message() << "theta = " << theta);
    const NeighborGraph g = RandomGraph(seed, theta);
    const LinkMatrix oracle = ComputeLinksBruteForce(g);
    const size_t exact = DenseBytes(g.size());
    ASSERT_GT(exact, 0u);

    const std::pair<const char*, size_t> budgets[] = {
        {"zero (forced sparse)", 0},
        {"exactly fits (dense)", exact},
        {"one byte short (sparse)", exact - 1},
        {"default", ComputeLinksOptions{}.dense_budget_bytes},
    };
    for (const auto& [label, budget] : budgets) {
      SCOPED_TRACE(label);
      ComputeLinksOptions opt;
      opt.dense_budget_bytes = budget;
      const LinkMatrix links = ComputeLinks(g, opt);
      ExpectSameMatrix(oracle, links);

      diag::InvariantReport report;
      diag::CheckLinkMatrixSymmetry(links, &report);
      diag::CheckLinksMatchGraph(g, links, &report);
      EXPECT_TRUE(report.ok()) << report.violations().front().detail;
    }
  }
}

// Degenerate sizes around the n < 2 early-out of the dense path.
TEST(LinksBudgetBoundaryTest, TinyGraphsEveryBudget) {
  for (size_t n : {0u, 1u, 2u}) {
    NeighborGraph g;
    g.nbrlist.resize(n);
    if (n == 2) {
      g.nbrlist[0] = {1};
      g.nbrlist[1] = {0};
    }
    for (size_t budget : {size_t{0}, size_t{1}, size_t{1} << 20}) {
      ComputeLinksOptions opt;
      opt.dense_budget_bytes = budget;
      const LinkMatrix links = ComputeLinks(g, opt);
      EXPECT_EQ(links.size(), n);
      // A single edge produces no length-2 paths: all links zero.
      EXPECT_EQ(links.TotalLinks(), 0u);
      EXPECT_EQ(links.NumNonZeroPairs(), 0u);
    }
  }
}

// -------------------------------------------------------- CSR flat layout --

// Freeze() must lay out exactly the hash rows' content, sorted: same
// partners, same counts, strictly ascending ids, against the brute-force
// oracle as ground truth.
TEST(LinkMatrixCsrTest, FrozenRowsMatchHashRowsAndBruteForce) {
  const uint64_t seed = 87;
  ROCK_TRACE_SEED(seed);
  for (double theta : {0.2, 0.5, 0.8}) {
    SCOPED_TRACE(::testing::Message() << "theta = " << theta);
    const NeighborGraph g = RandomGraph(seed, theta);
    const LinkMatrix oracle = ComputeLinksBruteForce(g);
    LinkMatrix links = ComputeLinks(g);
    EXPECT_FALSE(links.frozen());
    links.Freeze();
    ASSERT_TRUE(links.frozen());

    for (size_t i = 0; i < links.size(); ++i) {
      const auto p = static_cast<PointIndex>(i);
      const LinkRowSpan flat = links.FlatRow(p);
      ASSERT_EQ(flat.size, links.Row(p).size()) << "row " << i;
      for (size_t e = 0; e < flat.size; ++e) {
        if (e > 0) {
          EXPECT_LT(flat.partners[e - 1], flat.partners[e])
              << "row " << i << " not strictly ascending";
        }
        EXPECT_EQ(flat.counts[e], oracle.Count(p, flat.partners[e]))
            << "entry (" << i << ", " << flat.partners[e] << ")";
      }
    }
  }
}

TEST(LinkMatrixCsrTest, FreezeIsIdempotent) {
  LinkMatrix links(4);
  links.Add(0, 1, 3);
  links.Add(1, 2, 5);
  links.Freeze();
  links.Freeze();  // no-op
  ASSERT_TRUE(links.frozen());
  const LinkRowSpan row = links.FlatRow(1);
  ASSERT_EQ(row.size, 2u);
  EXPECT_EQ(row.partners[0], 0u);
  EXPECT_EQ(row.counts[0], 3u);
  EXPECT_EQ(row.partners[1], 2u);
  EXPECT_EQ(row.counts[1], 5u);
}

TEST(LinkMatrixCsrTest, AddThawsAndRefreezeSeesNewData) {
  LinkMatrix links(3);
  links.Add(0, 1, 1);
  links.Freeze();
  ASSERT_TRUE(links.frozen());
  links.Add(0, 2, 7);  // mutation drops the flat arrays
  EXPECT_FALSE(links.frozen());
  links.Freeze();
  const LinkRowSpan row = links.FlatRow(0);
  ASSERT_EQ(row.size, 2u);
  EXPECT_EQ(row.partners[1], 2u);
  EXPECT_EQ(row.counts[1], 7u);
}

TEST(LinkMatrixCsrTest, EmptyAndZeroRowGraphs) {
  LinkMatrix empty(0);
  empty.Freeze();
  EXPECT_TRUE(empty.frozen());

  LinkMatrix sparse(5);  // no entries at all
  sparse.Freeze();
  for (PointIndex p = 0; p < 5; ++p) {
    EXPECT_EQ(sparse.FlatRow(p).size, 0u);
  }
}

// Fuzz: random symmetric matrices, frozen, every flat row checked against
// the hash row it was built from.
TEST(LinkMatrixCsrTest, FuzzFlatRowsMatchHashRows) {
  const uint64_t base_seed = 9119;
  for (uint64_t round = 0; round < 8; ++round) {
    ROCK_SEEDED_RNG(rng, base_seed + round);
    const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 40));
    LinkMatrix links(n);
    const auto adds = static_cast<int>(rng.UniformInt(0, 300));
    for (int op = 0; op < adds; ++op) {
      const auto i = static_cast<PointIndex>(
          rng.UniformInt(0, static_cast<int>(n) - 1));
      auto j = static_cast<PointIndex>(
          rng.UniformInt(0, static_cast<int>(n) - 1));
      if (i == j) j = (j + 1) % static_cast<PointIndex>(n);
      links.Add(i, j, static_cast<LinkCount>(rng.UniformInt(1, 4)));
    }
    links.Freeze();
    for (size_t i = 0; i < n; ++i) {
      const auto p = static_cast<PointIndex>(i);
      const auto& hash_row = links.Row(p);
      const LinkRowSpan flat = links.FlatRow(p);
      ASSERT_EQ(flat.size, hash_row.size()) << "row " << i;
      for (size_t e = 0; e < flat.size; ++e) {
        if (e > 0) {
          ASSERT_LT(flat.partners[e - 1], flat.partners[e]);
        }
        const auto it = hash_row.find(flat.partners[e]);
        ASSERT_NE(it, hash_row.end());
        ASSERT_EQ(flat.counts[e], it->second);
      }
    }
  }
}

// -------------------------------------------- engine-agnostic invariants --

// Both link engines — hashed scatter + Freeze() and the bit-plane packed
// path — must satisfy the same structural laws. Parameterized so each law
// runs verbatim against each engine's frozen output.
struct EngineCase {
  const char* name;
  LinkMatrix (*build)(const NeighborGraph&);
};

LinkMatrix BuildHashed(const NeighborGraph& g) {
  LinkMatrix links = ComputeLinks(g);
  links.Freeze();
  return links;
}

LinkMatrix BuildPacked(const NeighborGraph& g) {
  PackedLinkOptions opt;
  opt.num_threads = 4;
  opt.row_chunk = 2;
  return ComputeLinksPacked(g, opt);
}

class LinkEngineInvariantTest : public ::testing::TestWithParam<EngineCase> {};

// Frozen rows are symmetric: entry (p, q, c) implies entry (q, p, c).
TEST_P(LinkEngineInvariantTest, FrozenRowsAreSymmetric) {
  const uint64_t seed = 311;
  ROCK_TRACE_SEED(seed);
  for (double theta : {0.3, 0.6}) {
    SCOPED_TRACE(::testing::Message() << "theta = " << theta);
    const NeighborGraph g = RandomGraph(seed, theta);
    const LinkMatrix links = GetParam().build(g);
    ASSERT_TRUE(links.frozen());
    for (size_t i = 0; i < links.size(); ++i) {
      const auto p = static_cast<PointIndex>(i);
      const LinkRowSpan row = links.FlatRow(p);
      for (size_t e = 0; e < row.size; ++e) {
        ASSERT_EQ(links.Count(row.partners[e], p), row.counts[e])
            << "mirror of (" << i << ", " << row.partners[e] << ")";
      }
    }
    diag::InvariantReport report;
    diag::CheckLinkMatrixSymmetry(links, &report);
    EXPECT_TRUE(report.ok()) << report.violations().front().detail;
  }
}

// links.self diagonal guard (PR 2 regression): no engine may emit an entry
// on the diagonal, and the diag oracle still trips if one is forced in.
TEST_P(LinkEngineInvariantTest, DiagonalStaysEmpty) {
  const uint64_t seed = 313;
  ROCK_TRACE_SEED(seed);
  const NeighborGraph g = RandomGraph(seed, 0.4);
  const LinkMatrix links = GetParam().build(g);
  for (size_t i = 0; i < links.size(); ++i) {
    const auto p = static_cast<PointIndex>(i);
    EXPECT_EQ(links.Count(p, p), 0u);
    const LinkRowSpan row = links.FlatRow(p);
    for (size_t e = 0; e < row.size; ++e) {
      ASSERT_NE(row.partners[e], p) << "self-link stored in row " << i;
    }
  }
}

// Conservation law: every point with degree m_i credits exactly C(m_i, 2)
// links (one per unordered pair of its neighbors), so the total over all
// pairs must equal Σ_i C(m_i, 2) — for any engine, any graph.
TEST_P(LinkEngineInvariantTest, TotalLinksEqualSumOfDegreeChoose2) {
  const uint64_t seed = 317;
  ROCK_TRACE_SEED(seed);
  for (double theta : {0.0, 0.3, 0.6, 1.0}) {
    SCOPED_TRACE(::testing::Message() << "theta = " << theta);
    const NeighborGraph g = RandomGraph(seed, theta);
    const LinkMatrix links = GetParam().build(g);
    uint64_t want = 0;
    for (size_t i = 0; i < g.size(); ++i) {
      const uint64_t m = g.Degree(i);
      want += m * (m - (m > 0 ? 1 : 0)) / 2;
    }
    EXPECT_EQ(links.TotalLinks(), want);
  }
}

// Freeze() must be a no-op on an already-frozen matrix from either engine —
// in particular on the packed engine's FromCsr-constructed output, which
// never had hash rows to rebuild from.
TEST_P(LinkEngineInvariantTest, FreezeIsIdempotentOnEngineOutput) {
  const uint64_t seed = 331;
  ROCK_TRACE_SEED(seed);
  const NeighborGraph g = RandomGraph(seed, 0.5);
  LinkMatrix links = GetParam().build(g);
  ASSERT_TRUE(links.frozen());
  const LinkMatrix reference = GetParam().build(g);
  links.Freeze();  // must not disturb the CSR arrays
  ASSERT_TRUE(links.frozen());
  for (size_t i = 0; i < links.size(); ++i) {
    const auto p = static_cast<PointIndex>(i);
    const LinkRowSpan got = links.FlatRow(p);
    const LinkRowSpan want = reference.FlatRow(p);
    ASSERT_EQ(got.size, want.size) << "row " << i;
    for (size_t e = 0; e < got.size; ++e) {
      ASSERT_EQ(got.partners[e], want.partners[e]) << "row " << i;
      ASSERT_EQ(got.counts[e], want.counts[e]) << "row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, LinkEngineInvariantTest,
                         ::testing::Values(EngineCase{"hashed", &BuildHashed},
                                           EngineCase{"packed", &BuildPacked}),
                         [](const ::testing::TestParamInfo<EngineCase>& p) {
                           return std::string(p.param.name);
                         });

// ------------------------------------------------------------------- fuzz --

// Random Add/Count sequences against a std::map model. Checks per-query
// agreement, symmetry, and the TotalLinks / NumNonZeroPairs aggregates.
TEST(LinkMatrixFuzzTest, RandomAddCountSequencesMatchModel) {
  const uint64_t base_seed = 4242;
  for (uint64_t round = 0; round < 8; ++round) {
    const uint64_t seed = base_seed + round;
    ROCK_SEEDED_RNG(rng, seed);
    const size_t n = 3 + static_cast<size_t>(rng.UniformInt(0, 29));
    LinkMatrix links(n);
    std::map<std::pair<PointIndex, PointIndex>, uint64_t> model;

    for (int op = 0; op < 600; ++op) {
      const auto i = static_cast<PointIndex>(
          rng.UniformInt(0, static_cast<int>(n) - 1));
      auto j = static_cast<PointIndex>(
          rng.UniformInt(0, static_cast<int>(n) - 1));
      if (i == j) j = (j + 1) % static_cast<PointIndex>(n);
      if (rng.UniformInt(0, 2) != 0) {  // Add with probability 2/3
        const auto delta =
            static_cast<LinkCount>(rng.UniformInt(1, 5));
        links.Add(i, j, delta);
        model[{std::min(i, j), std::max(i, j)}] += delta;
      } else {  // Count query, both orientations
        const auto it = model.find({std::min(i, j), std::max(i, j)});
        const uint64_t want = it == model.end() ? 0 : it->second;
        ASSERT_EQ(links.Count(i, j), want) << "(" << i << ", " << j << ")";
        ASSERT_EQ(links.Count(j, i), want) << "(" << j << ", " << i << ")";
      }
    }

    // Aggregate agreement with the model.
    uint64_t want_total = 0;
    size_t want_pairs = 0;
    for (const auto& [pair, count] : model) {
      (void)pair;
      want_total += count;
      if (count > 0) ++want_pairs;
    }
    EXPECT_EQ(links.TotalLinks(), want_total);
    EXPECT_EQ(links.NumNonZeroPairs(), want_pairs);

    // Structural symmetry via the diag oracle (self/zero entries included).
    diag::InvariantReport report;
    diag::CheckLinkMatrixSymmetry(links, &report);
    EXPECT_TRUE(report.ok()) << report.violations().front().detail;

    // Self-queries are zero by convention regardless of history.
    for (PointIndex p = 0; p < n; ++p) EXPECT_EQ(links.Count(p, p), 0u);
  }
}

}  // namespace
}  // namespace rock
