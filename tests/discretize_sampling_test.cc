// Tests for data/discretize.h, the [GRS98] sample-size bound, and the
// discriminative cluster profiles.

#include <gtest/gtest.h>

#include <cmath>

#include "core/sampling.h"
#include "data/discretize.h"
#include "eval/profiles.h"

namespace rock {
namespace {

// ------------------------------------------------------------- discretize --

std::vector<std::optional<double>> Values(std::initializer_list<double> v) {
  std::vector<std::optional<double>> out;
  for (double x : v) out.emplace_back(x);
  return out;
}

TEST(DiscretizerTest, EqualWidthCutPoints) {
  auto d = Discretizer::Fit(Values({0, 10}), 4, BinningScheme::kEqualWidth);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_bins(), 4u);
  EXPECT_EQ(d->cuts(), (std::vector<double>{2.5, 5.0, 7.5}));
  EXPECT_EQ(d->Bin(0.0), 0u);
  EXPECT_EQ(d->Bin(2.4), 0u);
  EXPECT_EQ(d->Bin(2.5), 1u);  // upper_bound: cut belongs to the next bin
  EXPECT_EQ(d->Bin(9.9), 3u);
  // Out-of-range values clamp.
  EXPECT_EQ(d->Bin(-100.0), 0u);
  EXPECT_EQ(d->Bin(+100.0), 3u);
}

TEST(DiscretizerTest, EqualFrequencyBalancesSkew) {
  // Heavily skewed data: equal-frequency puts ~half the mass per bin.
  std::vector<std::optional<double>> values;
  for (int i = 0; i < 90; ++i) values.emplace_back(0.001 * i);
  for (int i = 0; i < 10; ++i) values.emplace_back(1000.0 + i);
  auto d = Discretizer::Fit(values, 2, BinningScheme::kEqualFrequency);
  ASSERT_TRUE(d.ok());
  size_t in_bin0 = 0;
  for (const auto& v : values) {
    if (d->Bin(*v) == 0) ++in_bin0;
  }
  EXPECT_NEAR(static_cast<double>(in_bin0), 50.0, 2.0);

  // Equal width would have dumped 90 of 100 into bin 0.
  auto w = Discretizer::Fit(values, 2, BinningScheme::kEqualWidth);
  ASSERT_TRUE(w.ok());
  size_t w_bin0 = 0;
  for (const auto& v : values) {
    if (w->Bin(*v) == 0) ++w_bin0;
  }
  EXPECT_EQ(w_bin0, 90u);
}

TEST(DiscretizerTest, DegenerateConstantColumn) {
  auto d = Discretizer::Fit(Values({5, 5, 5}), 4, BinningScheme::kEqualWidth);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_bins(), 1u);
  EXPECT_EQ(d->Bin(5.0), 0u);
}

TEST(DiscretizerTest, RejectsBadInput) {
  EXPECT_TRUE(Discretizer::Fit(Values({1, 2}), 1, BinningScheme::kEqualWidth)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Discretizer::Fit({}, 2, BinningScheme::kEqualWidth)
                  .status()
                  .IsInvalidArgument());
  std::vector<std::optional<double>> with_nan = {
      1.0, std::nan(""), 2.0};
  EXPECT_TRUE(Discretizer::Fit(with_nan, 2, BinningScheme::kEqualWidth)
                  .status()
                  .IsInvalidArgument());
  // All-missing column.
  std::vector<std::optional<double>> all_missing = {std::nullopt,
                                                    std::nullopt};
  EXPECT_TRUE(Discretizer::Fit(all_missing, 2, BinningScheme::kEqualWidth)
                  .status()
                  .IsInvalidArgument());
}

TEST(DiscretizeColumnsTest, BuildsCategoricalDataset) {
  NumericColumns table;
  table.names = {"age", "income"};
  table.columns = {
      {25.0, 35.0, std::nullopt, 65.0},
      {10.0, 20.0, 30.0, 40.0},
  };
  auto ds = DiscretizeColumns(table, 2, BinningScheme::kEqualFrequency);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->size(), 4u);
  EXPECT_EQ(ds->schema().num_attributes(), 2u);
  EXPECT_TRUE(ds->record(2).IsMissing(0));
  EXPECT_FALSE(ds->record(2).IsMissing(1));
  // Row 0 and row 3 land in different age bins.
  EXPECT_NE(ds->record(0).value(0), ds->record(3).value(0));
}

TEST(DiscretizeColumnsTest, RejectsBadShapes) {
  NumericColumns table;
  table.names = {"a"};
  table.columns = {};
  EXPECT_TRUE(DiscretizeColumns(table, 2, BinningScheme::kEqualWidth)
                  .status()
                  .IsInvalidArgument());
  table.names = {"a", "b"};
  table.columns = {{1.0}, {1.0, 2.0}};
  EXPECT_TRUE(DiscretizeColumns(table, 2, BinningScheme::kEqualWidth)
                  .status()
                  .IsInvalidArgument());
}

// ------------------------------------------------------ sample-size bound --

TEST(MinSampleSizeTest, MatchesClosedForm) {
  // n = 100000, u = 5000, f = 0.1, δ = 0.001 — compute by hand.
  const double n = 100000, u = 5000, f = 0.1;
  const double l = std::log(1000.0);
  const double expected =
      std::ceil(f * n + (n / u) * l +
                (n / u) * std::sqrt(l * l + 2 * f * u * l));
  EXPECT_EQ(MinSampleSize(100000, 5000, 0.1, 0.001),
            static_cast<size_t>(expected));
}

TEST(MinSampleSizeTest, MonotoneInParameters) {
  const size_t base = MinSampleSize(100000, 5000, 0.1, 0.01);
  // Stricter confidence → bigger sample.
  EXPECT_GT(MinSampleSize(100000, 5000, 0.1, 0.0001), base);
  // Bigger required fraction → bigger sample.
  EXPECT_GT(MinSampleSize(100000, 5000, 0.3, 0.01), base);
  // Smaller minimum cluster → bigger sample.
  EXPECT_GT(MinSampleSize(100000, 1000, 0.1, 0.01), base);
}

TEST(MinSampleSizeTest, CappedAtPopulation) {
  EXPECT_EQ(MinSampleSize(100, 2, 0.99, 0.0001), 100u);
}

TEST(MinSampleSizeTest, PaperScaleSanity) {
  // The paper samples 1000–5000 from 114,586 rows with smallest cluster
  // 5411. The bound says ~4000+ guarantees a quarter of every cluster
  // with 99.9% confidence — consistent with Table 6's quality jump
  // between 1000 and 4000 samples.
  const size_t s = MinSampleSize(114586, 5411, 0.25, 0.001);
  EXPECT_GT(s, 1000u);
  EXPECT_LT(s, 114586u / 2);
}

// ------------------------------------------------ discriminative profiles --

TEST(DiscriminativeProfilesTest, EnrichedValuesOnly) {
  // Attribute "shared" takes value "x" everywhere (lift 1 — excluded);
  // attribute "marker" separates the clusters (lift 2 — kept).
  CategoricalDataset ds{Schema({"shared", "marker"})};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ds.AddRecord({"x", i < 2 ? "a" : "b"}).ok());
  }
  Clustering c = Clustering::FromAssignment({0, 0, 1, 1});
  DiscriminativeOptions opt;
  opt.min_support = 0.5;
  opt.min_lift = 1.5;
  auto profiles = DiscriminativeProfiles(ds, c, opt);
  ASSERT_EQ(profiles.size(), 2u);
  ASSERT_EQ(profiles[0].size(), 1u);
  EXPECT_EQ(profiles[0][0].attribute, "marker");
  EXPECT_EQ(profiles[0][0].value, "a");
  EXPECT_DOUBLE_EQ(profiles[0][0].support, 1.0);
  EXPECT_DOUBLE_EQ(profiles[0][0].lift, 2.0);
  ASSERT_EQ(profiles[1].size(), 1u);
  EXPECT_EQ(profiles[1][0].value, "b");
}

TEST(DiscriminativeProfilesTest, TopKTruncatesByLift) {
  CategoricalDataset ds{Schema({"a", "b", "c"})};
  ASSERT_TRUE(ds.AddRecord({"p", "q", "r"}).ok());
  ASSERT_TRUE(ds.AddRecord({"p", "q", "r"}).ok());
  ASSERT_TRUE(ds.AddRecord({"z", "z", "z"}).ok());
  Clustering c = Clustering::FromAssignment({0, 0, 1});
  DiscriminativeOptions opt;
  opt.min_lift = 1.0;
  opt.top_k = 2;
  auto profiles = DiscriminativeProfiles(ds, c, opt);
  EXPECT_LE(profiles[0].size(), 2u);
  EXPECT_LE(profiles[1].size(), 2u);
  // Cluster 1's values are unique to it: lift = 3.
  ASSERT_FALSE(profiles[1].empty());
  EXPECT_DOUBLE_EQ(profiles[1][0].lift, 3.0);
}

}  // namespace
}  // namespace rock
