// Tests for diag/metrics.h and diag/invariants.h — the observability
// registry, the JSON report, and the invariant oracles, plus full ROCK and
// pipeline runs with runtime checks enabled (which must report zero
// violations).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>

#include "core/pipeline.h"
#include "core/rock.h"
#include "data/disk_store.h"
#include "diag/invariants.h"
#include "diag/metrics.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"
#include "test_support.h"

namespace rock {
namespace {

// ----------------------------------------------------------------- metrics --

TEST(TimerStatsTest, RecordAndMerge) {
  diag::TimerStats a;
  a.Record(2.0);
  a.Record(0.5);
  EXPECT_EQ(a.count, 2u);
  EXPECT_DOUBLE_EQ(a.total_seconds, 2.5);
  EXPECT_DOUBLE_EQ(a.min_seconds, 0.5);
  EXPECT_DOUBLE_EQ(a.max_seconds, 2.0);

  diag::TimerStats b;
  b.Record(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.total_seconds, 5.5);
  EXPECT_DOUBLE_EQ(a.max_seconds, 3.0);

  diag::TimerStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count, 3u);
  empty.Merge(a);
  EXPECT_EQ(empty.count, 3u);
  EXPECT_DOUBLE_EQ(empty.min_seconds, 0.5);
}

TEST(MetricsRegistryTest, CountersGaugesTimers) {
  diag::MetricsRegistry registry;
  registry.AddCounter("a", 2);
  registry.AddCounter("a", 3);
  registry.MaxCounter("peak", 5);
  registry.MaxCounter("peak", 3);  // lower → ignored
  registry.SetGauge("g", 1.5);
  registry.SetGauge("g", 2.5);  // last write wins
  registry.RecordSeconds("t", 0.25);

  const diag::RunMetrics m = registry.Snapshot();
  EXPECT_EQ(m.CounterOr("a"), 5u);
  EXPECT_EQ(m.CounterOr("peak"), 5u);
  EXPECT_EQ(m.CounterOr("missing", 42), 42u);
  EXPECT_DOUBLE_EQ(m.GaugeOr("g"), 2.5);
  ASSERT_NE(m.FindTimer("t"), nullptr);
  EXPECT_EQ(m.FindTimer("t")->count, 1u);
  EXPECT_EQ(m.FindTimer("missing"), nullptr);
}

TEST(MetricsRegistryTest, NullRegistryIsANoOp) {
  diag::AddCounter(nullptr, "a", 1);
  diag::MaxCounter(nullptr, "a", 1);
  diag::SetGauge(nullptr, "a", 1.0);
  diag::ScopedTimer timer(nullptr, "t");
  EXPECT_GE(timer.Stop(), 0.0);
}

TEST(MetricsRegistryTest, ScopedTimerRecordsOnce) {
  diag::MetricsRegistry registry;
  {
    diag::ScopedTimer timer(&registry, "t");
    timer.Stop();
    // Destructor must not double-record.
  }
  EXPECT_EQ(registry.Snapshot().FindTimer("t")->count, 1u);
}

TEST(RunMetricsTest, MergeSemantics) {
  diag::RunMetrics a, b;
  a.counters["c"] = 1;
  b.counters["c"] = 2;
  a.gauges["g"] = 1.0;
  b.gauges["g"] = 9.0;
  a.RecordSeconds("t", 1.0);
  b.RecordSeconds("t", 3.0);
  a.Merge(b);
  EXPECT_EQ(a.CounterOr("c"), 3u);
  EXPECT_DOUBLE_EQ(a.GaugeOr("g"), 9.0);
  EXPECT_EQ(a.FindTimer("t")->count, 2u);
  EXPECT_DOUBLE_EQ(a.FindTimer("t")->total_seconds, 4.0);
}

TEST(RunMetricsTest, ToJsonDerivesStagesAndEscapes) {
  diag::RunMetrics m;
  m.RecordSeconds("stage.links", 0.5);
  m.RecordSeconds("stage.merge", 1.0);
  m.RecordSeconds("other.timer", 2.0);
  m.counters["graph.edges"] = 7;
  m.gauges["criterion.value"] = 1.25;
  const std::string json = m.ToJson("test\"tool");
  EXPECT_NE(json.find("\"stages\": [\"links\", \"merge\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"test\\\"tool\""), std::string::npos);
  EXPECT_NE(json.find("\"graph.edges\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"other.timer\""), std::string::npos);
  // Balanced braces/brackets — a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(RunMetricsTest, EmptyReportKeepsSchema) {
  const std::string json = diag::RunMetrics{}.ToJson("empty");
  EXPECT_NE(json.find("\"stages\": []"), std::string::npos);
  EXPECT_NE(json.find("\"timers\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
}

// -------------------------------------------------------- check intervals --

TEST(InvariantCheckIntervalTest, ConfiguredValueWins) {
  EXPECT_EQ(diag::InvariantCheckInterval(7), 7u);
}

TEST(InvariantCheckIntervalTest, EnvironmentVariable) {
  ASSERT_EQ(::setenv("ROCK_DIAG_CHECKS", "5", 1), 0);
  EXPECT_EQ(diag::InvariantCheckInterval(0), 5u);
  EXPECT_EQ(diag::InvariantCheckInterval(3), 3u);  // explicit beats env
  ASSERT_EQ(::setenv("ROCK_DIAG_CHECKS", "on", 1), 0);
  EXPECT_EQ(diag::InvariantCheckInterval(0), 1u);
  ASSERT_EQ(::setenv("ROCK_DIAG_CHECKS", "0", 1), 0);
  EXPECT_EQ(diag::InvariantCheckInterval(0), 0u);
  ASSERT_EQ(::unsetenv("ROCK_DIAG_CHECKS"), 0);
#ifndef ROCK_DIAG_CHECKS_DEFAULT
  EXPECT_EQ(diag::InvariantCheckInterval(0), 0u);
#endif
}

// -------------------------------------------------------------- invariants --

NeighborGraph SmallGraph() {
  // 0 – 1 – 2 triangle plus isolated 3.
  NeighborGraph g;
  g.nbrlist = {{1, 2}, {0, 2}, {0, 1}, {}};
  return g;
}

TEST(InvariantOracleTest, CleanGraphAndLinksPass) {
  const NeighborGraph g = SmallGraph();
  diag::InvariantReport report;
  diag::CheckNeighborGraph(g, &report);
  const LinkMatrix links = ComputeLinks(g);
  diag::CheckLinkMatrixSymmetry(links, &report);
  diag::CheckLinksMatchGraph(g, links, &report);
  EXPECT_TRUE(report.ok()) << report.violations().front().detail;
  EXPECT_EQ(report.checks_run(), 3u);
}

TEST(InvariantOracleTest, DetectsUnsortedRow) {
  NeighborGraph g = SmallGraph();
  g.nbrlist[0] = {2, 1};
  diag::InvariantReport report;
  diag::CheckNeighborGraph(g, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().check, "graph.sorted");
}

TEST(InvariantOracleTest, DetectsSelfLoopAndAsymmetry) {
  NeighborGraph g = SmallGraph();
  g.nbrlist[3] = {3};  // self-loop
  diag::InvariantReport report;
  diag::CheckNeighborGraph(g, &report);
  EXPECT_FALSE(report.ok());

  NeighborGraph h = SmallGraph();
  h.nbrlist[3] = {0};  // 3 → 0 has no reverse edge
  diag::InvariantReport report2;
  diag::CheckNeighborGraph(h, &report2);
  ASSERT_FALSE(report2.ok());
  EXPECT_EQ(report2.violations().front().check, "graph.symmetry");
}

TEST(InvariantOracleTest, DetectsZeroAndSelfLinkEntries) {
  LinkMatrix links(3);
  links.Add(0, 1, 0);  // stored zero
  diag::InvariantReport report;
  diag::CheckLinkMatrixSymmetry(links, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().check, "links.zero_entry");
}

TEST(InvariantOracleTest, DetectsStoredDiagonalEntry) {
  // Add(i, i, d) is a guarded no-op, so a stored diagonal can only come
  // from memory corruption; plant one with the AddDirected test hook and
  // prove the links.self oracle still catches it.
  LinkMatrix links(3);
  links.Add(0, 1, 2);
  links.AddDirected(1, 1, 4);
  diag::InvariantReport report;
  diag::CheckLinkMatrixSymmetry(links, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().check, "links.self");
}

TEST(InvariantOracleTest, DetectsAsymmetricLinkCounts) {
  LinkMatrix links(3);
  links.Add(0, 1, 2);
  links.AddDirected(0, 1, 1);  // forward row only: 3 vs reverse 2
  diag::InvariantReport report;
  diag::CheckLinkMatrixSymmetry(links, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().check, "links.symmetry");
}

TEST(InvariantOracleTest, DetectsLinkRecountMismatch) {
  const NeighborGraph g = SmallGraph();
  LinkMatrix links = ComputeLinks(g);
  links.Add(0, 3, 2);  // spurious link to the isolated point
  diag::InvariantReport report;
  diag::CheckLinksMatchGraph(g, links, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().check, "links.recount");
}

TEST(InvariantOracleTest, SizeMismatchIsReported) {
  const NeighborGraph g = SmallGraph();
  LinkMatrix links(2);
  diag::InvariantReport report;
  diag::CheckLinksMatchGraph(g, links, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().check, "links.size");
}

// ------------------------------------------------- checked end-to-end runs --

TransactionDataset DiagBaskets(uint64_t seed) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {60, 40, 25};
  gen.items_per_cluster = {14, 12, 16};
  gen.num_outliers = 10;
  gen.seed = seed;
  return std::move(GenerateBasketData(gen)).value();
}

TEST(DiagRockRunTest, CheckedRunReportsZeroViolations) {
  const uint64_t seed = 31;
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = DiagBaskets(seed);
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 3;
  opt.diag.invariant_check_every = 1;  // validate after every merge
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.CounterOr("diag.invariant_checks"), 0u);
  EXPECT_EQ(result->metrics.CounterOr("diag.invariant_violations"), 0u);
}

TEST(DiagRockRunTest, CheckedRunWithWeedingAndThreads) {
  const uint64_t seed = 32;
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = DiagBaskets(seed);
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.4;
  opt.num_clusters = 3;
  opt.outlier_stop_multiple = 3.0;
  opt.min_cluster_support = 4;
  opt.num_threads = 4;
  opt.diag.invariant_check_every = 3;
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.CounterOr("diag.invariant_checks"), 0u);
  EXPECT_EQ(result->metrics.CounterOr("diag.invariant_violations"), 0u);
}

TEST(DiagRockRunTest, StageMetricsArePopulated) {
  TransactionDataset ds = DiagBaskets(33);
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 3;
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());
  const diag::RunMetrics& m = result->metrics;
  for (const char* stage :
       {"stage.neighbors", "stage.links", "stage.merge", "stage.total"}) {
    ASSERT_NE(m.FindTimer(stage), nullptr) << stage;
    EXPECT_EQ(m.FindTimer(stage)->count, 1u) << stage;
  }
  // stage.total covers neighbors + links + merge.
  EXPECT_GE(m.FindTimer("stage.total")->total_seconds,
            m.FindTimer("stage.links")->total_seconds +
                m.FindTimer("stage.merge")->total_seconds);
  EXPECT_EQ(m.CounterOr("graph.points"), ds.size());
  EXPECT_EQ(m.CounterOr("merge.merges"), result->stats.num_merges);
  EXPECT_GT(m.CounterOr("graph.edges"), 0u);
  EXPECT_GT(m.CounterOr("links.nonzero_pairs"), 0u);
  EXPECT_GT(m.CounterOr("heap.global_peak"), 0u);
  EXPECT_DOUBLE_EQ(m.GaugeOr("criterion.value"),
                   result->stats.criterion_value);
}

TEST(DiagRockRunTest, MetricsCanBeDisabled) {
  TransactionDataset ds = DiagBaskets(34);
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 3;
  opt.diag.collect_metrics = false;
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->metrics.counters.empty());
  EXPECT_TRUE(result->metrics.gauges.empty());
  EXPECT_TRUE(result->metrics.timers.empty());
  // The classic stats stay available either way.
  EXPECT_GT(result->stats.num_merges, 0u);
}

TEST(DiagRockRunTest, ClusterGraphAlsoCollects) {
  // Direct graph entry (no neighbor phase): stage.neighbors absent,
  // stage.total still present.
  const NeighborGraph g = SmallGraph();
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 1;
  auto result = RockClusterer(opt).ClusterGraph(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.FindTimer("stage.neighbors"), nullptr);
  EXPECT_NE(result->metrics.FindTimer("stage.total"), nullptr);
}

TEST(DiagPipelineTest, PipelineMergesStageAndRockMetrics) {
  const auto store = std::filesystem::temp_directory_path() /
                     ("rock_diag_pipeline_" + std::to_string(::getpid()) +
                      ".bin");
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {200, 150};
  gen.items_per_cluster = {18, 18};
  gen.num_outliers = 15;
  gen.seed = 5;
  auto data = GenerateBasketData(gen);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteDatasetToStore(*data, store.string()).ok());

  PipelineOptions opt;
  opt.rock.theta = 0.5;
  opt.rock.num_clusters = 2;
  opt.rock.diag.invariant_check_every = 4;
  opt.sample_size = 120;
  opt.seed = 11;
  auto result = RunRockPipeline(store.string(), opt);
  std::filesystem::remove(store);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const diag::RunMetrics& m = result->metrics;
  for (const char* stage : {"stage.sample", "stage.label", "stage.neighbors",
                            "stage.links", "stage.merge", "stage.total"}) {
    EXPECT_NE(m.FindTimer(stage), nullptr) << stage;
  }
  EXPECT_EQ(m.CounterOr("sample.rows"), 120u);
  EXPECT_EQ(m.CounterOr("label.rows"), data->size());
  EXPECT_EQ(m.CounterOr("diag.invariant_violations"), 0u);
  EXPECT_GT(m.CounterOr("diag.invariant_checks"), 0u);
}

}  // namespace
}  // namespace rock
