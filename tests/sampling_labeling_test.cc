// Tests for core/sampling.h (reservoir + Vitter skips), core/labeling.h
// (the §4.6 disk-labeling phase) and core/pipeline.h (the Fig. 2
// sample → cluster → label pipeline, end to end on a real temp file).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <numeric>
#include <set>

#include "common/random.h"
#include "core/labeling.h"
#include "core/pipeline.h"
#include "core/sampling.h"
#include "data/disk_store.h"
#include "synth/basket_generator.h"
#include "test_support.h"

namespace rock {
namespace {

// --------------------------------------------------------------- Sampling --

TEST(SamplingTest, ReservoirHoldsWholeStreamWhenSmall) {
  ROCK_SEEDED_RNG(rng, 1);
  ReservoirSampler<int> s(10, &rng);
  for (int i = 0; i < 5; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 5u);
  EXPECT_EQ(s.seen(), 5u);
}

TEST(SamplingTest, ReservoirCapsAtK) {
  ROCK_SEEDED_RNG(rng, 2);
  ReservoirSampler<int> s(10, &rng);
  for (int i = 0; i < 1000; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 10u);
  std::set<int> distinct(s.sample().begin(), s.sample().end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(SamplingTest, ReservoirIndicesMatchValues) {
  ROCK_SEEDED_RNG(rng, 3);
  ReservoirSampler<int> s(8, &rng);
  for (int i = 0; i < 500; ++i) s.Offer(i * 7);  // value = index * 7
  for (size_t slot = 0; slot < s.sample().size(); ++slot) {
    EXPECT_EQ(static_cast<uint64_t>(s.sample()[slot]),
              s.sample_indices()[slot] * 7);
  }
}

TEST(SamplingTest, ReservoirIsApproximatelyUniform) {
  // Each of 100 stream positions should appear in a 10-sample with
  // probability 0.1.
  std::vector<int> hits(100, 0);
  const int trials = 20000;
  ROCK_SEEDED_RNG(rng, 4);
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler<int> s(10, &rng);
    for (int i = 0; i < 100; ++i) s.Offer(i);
    for (int v : s.sample()) ++hits[static_cast<size_t>(v)];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.1, 0.02);
  }
}

TEST(SamplingTest, SampleIndicesSortedDistinct) {
  ROCK_SEEDED_RNG(rng, 5);
  auto idx = SampleIndices(100, 20, &rng);
  EXPECT_EQ(idx.size(), 20u);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  std::set<size_t> distinct(idx.begin(), idx.end());
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(SamplingTest, VitterSkipMatchesAlgorithmRAcceptanceRate) {
  // After `seen` records, Algorithm R accepts each new record with
  // probability k/(seen+1). The mean skip from Algorithm X must match the
  // geometric-like expectation: E[accepted fraction over window] ≈ k/seen.
  ROCK_SEEDED_RNG(rng, 6);
  const size_t k = 10;
  const uint64_t seen = 1000;
  double total_skip = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    total_skip += static_cast<double>(VitterSkipX(seen, k, &rng));
  }
  // E[S] = (seen + 1 − k)/(k − 1) − 1 … ≈ seen/k for seen >> k; accept a
  // generous ±10% window around the analytic mean for k=10, seen=1000:
  // E[S] = (seen+1)/(k-1) − 1 ≈ 110.2.
  const double mean_skip = total_skip / trials;
  EXPECT_NEAR(mean_skip, 110.2, 11.0);
}

// --------------------------------------------------------------- Labeling --

/// Builds a tiny two-cluster sample: cluster 0 over items {a,b,c},
/// cluster 1 over items {x,y,z}.
struct LabelingFixture {
  TransactionDataset sample;
  Clustering clustering;
  RockOptions rock;

  LabelingFixture() {
    sample.AddTransaction({"a", "b"});
    sample.AddTransaction({"b", "c"});
    sample.AddTransaction({"a", "c"});
    sample.AddTransaction({"x", "y"});
    sample.AddTransaction({"y", "z"});
    sample.AddTransaction({"x", "z"});
    clustering = Clustering::FromAssignment({0, 0, 0, 1, 1, 1});
    rock.theta = 0.3;
    rock.num_clusters = 2;
  }
};

TEST(LabelingTest, AssignsToNeighborRichCluster) {
  LabelingFixture fx;
  LabelingOptions opt;
  opt.fraction = 1.0;
  auto labeler =
      TransactionLabeler::Build(fx.sample, fx.clustering, fx.rock, opt);
  ASSERT_TRUE(labeler.ok()) << labeler.status().ToString();
  EXPECT_EQ(labeler->num_clusters(), 2u);

  const Dictionary& items = fx.sample.items();
  Transaction near0({items.Lookup("a"), items.Lookup("b"),
                     items.Lookup("c")});
  Transaction near1({items.Lookup("x"), items.Lookup("y")});
  EXPECT_EQ(labeler->Assign(near0), 0);
  EXPECT_EQ(labeler->Assign(near1), 1);
}

TEST(LabelingTest, NoNeighborsMeansOutlier) {
  LabelingFixture fx;
  LabelingOptions opt;
  auto labeler =
      TransactionLabeler::Build(fx.sample, fx.clustering, fx.rock, opt);
  ASSERT_TRUE(labeler.ok());
  // Items unseen by the sample: ids beyond the dictionary.
  Transaction alien({100, 101, 102});
  EXPECT_EQ(labeler->Assign(alien), kUnassigned);
}

TEST(LabelingTest, FractionControlsSetSize) {
  LabelingFixture fx;
  LabelingOptions opt;
  opt.fraction = 0.34;  // ceil(0.34 * 3) = 2
  opt.min_labeling_points = 1;
  auto labeler =
      TransactionLabeler::Build(fx.sample, fx.clustering, fx.rock, opt);
  ASSERT_TRUE(labeler.ok());
  EXPECT_EQ(labeler->labeling_set_size(0), 2u);
  EXPECT_EQ(labeler->labeling_set_size(1), 2u);
}

TEST(LabelingTest, MinLabelingPointsFloorCapped) {
  LabelingFixture fx;
  LabelingOptions opt;
  opt.fraction = 0.01;
  opt.min_labeling_points = 100;  // larger than any cluster
  auto labeler =
      TransactionLabeler::Build(fx.sample, fx.clustering, fx.rock, opt);
  ASSERT_TRUE(labeler.ok());
  EXPECT_EQ(labeler->labeling_set_size(0), 3u);  // capped at cluster size
}

TEST(LabelingTest, RejectsBadInputs) {
  LabelingFixture fx;
  LabelingOptions opt;
  opt.fraction = 0.0;
  EXPECT_TRUE(TransactionLabeler::Build(fx.sample, fx.clustering, fx.rock, opt)
                  .status()
                  .IsInvalidArgument());
  // A NaN fraction must fail the (0, 1] check, not slip through it.
  opt.fraction = std::nan("");
  EXPECT_TRUE(TransactionLabeler::Build(fx.sample, fx.clustering, fx.rock, opt)
                  .status()
                  .IsInvalidArgument());
  opt.fraction = 0.5;
  Clustering mismatched = Clustering::FromAssignment({0, 0});
  EXPECT_TRUE(TransactionLabeler::Build(fx.sample, mismatched, fx.rock, opt)
                  .status()
                  .IsInvalidArgument());
}

TEST(LabelingTest, NormalizationPrefersSmallerSetAtEqualCount) {
  // Two clusters; the probe has exactly one neighbor in each labeling set,
  // but cluster 1's set is larger → normalization must prefer cluster 0.
  TransactionDataset sample;
  sample.AddTransaction({"a", "b"});                      // cluster 0
  sample.AddTransaction({"x", "y"});                      // cluster 1 …
  sample.AddTransaction({"p", "q"});
  sample.AddTransaction({"r", "s"});
  sample.AddTransaction({"t", "u"});
  Clustering clustering = Clustering::FromAssignment({0, 1, 1, 1, 1});
  RockOptions rock;
  rock.theta = 0.3;
  LabelingOptions opt;
  opt.fraction = 1.0;
  auto labeler = TransactionLabeler::Build(sample, clustering, rock, opt);
  ASSERT_TRUE(labeler.ok());
  const Dictionary& items = sample.items();
  // Probe neighbors {a,b} (cluster 0) and {x,y} (cluster 1) equally.
  Transaction probe({items.Lookup("a"), items.Lookup("b"),
                     items.Lookup("x"), items.Lookup("y")});
  EXPECT_EQ(labeler->Assign(probe), 0);
}

// ---------------------------------------------------------------- Pipeline --

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rock_pipeline_test_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST_F(PipelineTest, EndToEndOnSmallSyntheticStore) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {400, 300};
  gen.items_per_cluster = {20, 20};
  gen.num_outliers = 30;
  gen.seed = 7;
  auto data = GenerateBasketData(gen);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteDatasetToStore(*data, path()).ok());

  PipelineOptions opt;
  opt.rock.theta = 0.5;
  opt.rock.num_clusters = 2;
  opt.sample_size = 150;
  opt.seed = 11;
  auto result = RunRockPipeline(path(), opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->sample_rows.size(), 150u);
  EXPECT_TRUE(std::is_sorted(result->sample_rows.begin(),
                             result->sample_rows.end()));
  EXPECT_EQ(result->labeling.assignments.size(), data->size());
  EXPECT_EQ(result->labeling.ground_truth.size(), data->size());

  // Quality: the two generated clusters must map to two distinct found
  // clusters for the overwhelming majority of rows.
  const LabelSet& labels = data->labels();
  std::map<std::pair<LabelId, ClusterIndex>, size_t> joint;
  for (size_t i = 0; i < data->size(); ++i) {
    ++joint[{labels.label(i), result->labeling.assignments[i]}];
  }
  // For each true cluster label, find its dominant assignment.
  std::map<LabelId, ClusterIndex> dominant;
  std::map<LabelId, size_t> dominant_count, total;
  for (const auto& [key, count] : joint) {
    total[key.first] += count;
    if (count > dominant_count[key.first]) {
      dominant_count[key.first] = count;
      dominant[key.first] = key.second;
    }
  }
  for (const auto& [label, cluster] : dominant) {
    if (labels.Name(label) == "outlier") continue;
    EXPECT_NE(cluster, kUnassigned) << labels.Name(label);
    EXPECT_GT(static_cast<double>(dominant_count[label]) /
                  static_cast<double>(total[label]),
              0.9)
        << labels.Name(label);
  }
  // The two real clusters land in different found clusters.
  std::set<ClusterIndex> distinct;
  for (const auto& [label, cluster] : dominant) {
    if (labels.Name(label) != "outlier") distinct.insert(cluster);
  }
  EXPECT_EQ(distinct.size(), 2u);
}

TEST_F(PipelineTest, SampleLargerThanStoreClampsToStoreSize) {
  TransactionDataset tiny;
  tiny.AddTransaction({"a", "b"});
  tiny.AddTransaction({"a", "b", "c"});
  tiny.AddTransaction({"x", "y"});
  ASSERT_TRUE(WriteDatasetToStore(tiny, path()).ok());
  PipelineOptions opt;
  opt.sample_size = 10;
  auto result = RunRockPipeline(path(), opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The whole store became the sample, and the clamp is observable.
  EXPECT_EQ(result->sample_rows.size(), 3u);
  EXPECT_EQ(result->labeling.assignments.size(), 3u);
  EXPECT_EQ(result->metrics.CounterOr("sample.clamped"), 1u);
}

TEST_F(PipelineTest, SampleExactlyStoreSizeIsNotClamped) {
  TransactionDataset tiny;
  tiny.AddTransaction({"a", "b"});
  tiny.AddTransaction({"a", "b", "c"});
  ASSERT_TRUE(WriteDatasetToStore(tiny, path()).ok());
  PipelineOptions opt;
  opt.sample_size = 2;
  auto result = RunRockPipeline(path(), opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sample_rows.size(), 2u);
  EXPECT_EQ(result->metrics.CounterOr("sample.clamped"), 0u);
}

TEST_F(PipelineTest, EmptyStoreIsInvalidArgument) {
  TransactionDataset empty;
  ASSERT_TRUE(WriteDatasetToStore(empty, path()).ok());
  PipelineOptions opt;
  opt.sample_size = 10;
  EXPECT_TRUE(RunRockPipeline(path(), opt).status().IsInvalidArgument());
}

TEST_F(PipelineTest, MissingStoreFails) {
  PipelineOptions opt;
  opt.sample_size = 1;
  EXPECT_TRUE(RunRockPipeline("/no/such/store.bin", opt).status().IsIOError());
}

}  // namespace
}  // namespace rock
