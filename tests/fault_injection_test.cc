// tests/fault_injection_test.cc — the fault-injection subsystem itself.
//
// Covers the failpoint schedule grammar (util/failpoint.h), the
// transient-retry backoff engine (util/retry.h), injected faults at every
// store/labeler I/O site, and a seeded corruption matrix proving that
// truncation, bit flips and appended garbage in store/labeler files always
// surface as Corruption/InvalidArgument — never a crash, never silent
// success. The failpoint registry is process-global, so every fixture
// clears it on both sides of each test.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/labeling.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "data/disk_store.h"
#include "data/transaction.h"
#include "serve/model_handle.h"
#include "serve/stream.h"
#include "test_support.h"
#include "util/failpoint.h"
#include "util/retry.h"

namespace rock {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& stem) {
  return (fs::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + ".bin"))
      .string();
}

std::vector<unsigned char> ReadAllBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void WriteAllBytes(const std::string& path,
                   const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

/// Three-group synthetic basket data: group g draws items from a disjoint
/// range, so the sample clusters cleanly and labeling is unambiguous.
TransactionDataset MakeGroupedDataset(size_t rows, uint64_t seed) {
  Rng rng(seed);
  TransactionDataset data;
  for (size_t i = 0; i < rows; ++i) {
    const uint32_t group = static_cast<uint32_t>(i % 3);
    std::vector<ItemId> items;
    const size_t k = 4 + static_cast<size_t>(rng.UniformUint64(4));
    for (size_t j = 0; j < k; ++j) {
      items.push_back(group * 100 +
                      static_cast<ItemId>(rng.UniformUint64(20)));
    }
    data.AddTransaction(Transaction(std::move(items)));
    data.labels().Append("g" + std::to_string(group));
  }
  return data;
}

/// A labeler built over `data` with one labeling set per group.
Result<TransactionLabeler> MakeGroupedLabeler(const TransactionDataset& data) {
  std::vector<ClusterIndex> assignment(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    assignment[i] = static_cast<ClusterIndex>(i % 3);
  }
  RockOptions rock;
  rock.theta = 0.1;
  LabelingOptions lab;
  lab.fraction = 1.0;
  lab.seed = 7;
  return TransactionLabeler::Build(
      data, Clustering::FromAssignment(std::move(assignment)), rock, lab);
}

/// Clears the process-global failpoint schedule around every test.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::Clear(); }
  void TearDown() override {
    fail::Clear();
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }

  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

// ---------------------------------------------------------------------------
// Schedule grammar.

TEST_F(FailpointTest, FireOnHitFiresExactlyOnce) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure("x=fire_on_hit_2:error").ok());
  EXPECT_EQ(fail::Consult("x"), fail::Action::kNone);
  EXPECT_EQ(fail::Consult("x"), fail::Action::kError);
  EXPECT_EQ(fail::Consult("x"), fail::Action::kNone);
  EXPECT_EQ(fail::Consult("x"), fail::Action::kNone);
  EXPECT_EQ(fail::HitCount("x"), 4u);
  EXPECT_EQ(fail::FiredCount("x"), 1u);
}

TEST_F(FailpointTest, FireEveryFiresPeriodically) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure("x=fire_every_2:short_read").ok());
  std::vector<fail::Action> got;
  for (int i = 0; i < 6; ++i) got.push_back(fail::Consult("x"));
  const std::vector<fail::Action> want = {
      fail::Action::kNone,      fail::Action::kShortRead,
      fail::Action::kNone,      fail::Action::kShortRead,
      fail::Action::kNone,      fail::Action::kShortRead};
  EXPECT_EQ(got, want);
  EXPECT_EQ(fail::FiredCount("x"), 3u);
}

TEST_F(FailpointTest, UnconfiguredSitesNeverFire) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure("x=fire_on_hit_1:crash").ok());
  EXPECT_EQ(fail::Consult("y"), fail::Action::kNone);
  EXPECT_EQ(fail::FiredCount("y"), 0u);
}

TEST_F(FailpointTest, ConfigureReplacesScheduleAndResetsCounters) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure("x=fire_on_hit_1:error").ok());
  EXPECT_EQ(fail::Consult("x"), fail::Action::kError);
  ASSERT_TRUE(fail::Configure("x=fire_on_hit_1:short_read").ok());
  EXPECT_EQ(fail::HitCount("x"), 0u) << "Configure must reset hit counters";
  EXPECT_EQ(fail::Consult("x"), fail::Action::kShortRead);
  ASSERT_TRUE(fail::Configure("").ok());
  EXPECT_EQ(fail::Consult("x"), fail::Action::kNone);
}

TEST_F(FailpointTest, MultiEntrySchedulesAndWhitespaceParse) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure(" a = fire_on_hit_1 : error ; "
                              "b=fire_every_3:torn_write;")
                  .ok());
  EXPECT_EQ(fail::Consult("a"), fail::Action::kError);
  EXPECT_EQ(fail::Consult("b"), fail::Action::kNone);
  EXPECT_EQ(fail::Consult("b"), fail::Action::kNone);
  EXPECT_EQ(fail::Consult("b"), fail::Action::kTornWrite);
}

TEST_F(FailpointTest, GrammarErrorsAreInvalidArgument) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  const char* bad[] = {
      "x",                           // no '='
      "=fire_on_hit_1:error",        // empty site
      "x=fire_on_hit_1",             // missing ':action'
      "x=fire_on_hit_1:explode",     // unknown action
      "x=whenever:error",            // unknown trigger
      "x=fire_on_hit_:error",        // missing count
      "x=fire_on_hit_0:error",       // zero count
      "x=fire_every_0:error",        // zero count
      "x=fire_on_hit_9x:error",      // non-numeric count
      "x=fire_on_hit_1:error;x=fire_every_2:crash",  // duplicate site
  };
  for (const char* spec : bad) {
    Status s = fail::Configure(spec);
    EXPECT_TRUE(s.IsInvalidArgument()) << spec << " -> " << s.ToString();
  }
  // A failed Configure must not leave a partial schedule armed.
  EXPECT_EQ(fail::Consult("x"), fail::Action::kNone);
}

TEST_F(FailpointTest, FiredSnapshotListsOnlyFiredSites) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(
      fail::Configure("a=fire_on_hit_1:error;b=fire_on_hit_99:error").ok());
  (void)fail::Consult("a");
  (void)fail::Consult("b");
  auto snapshot = fail::FiredSnapshot();
  ASSERT_EQ(snapshot.count("a"), 1u);
  EXPECT_EQ(snapshot.at("a"), 1u);
  EXPECT_EQ(snapshot.count("b"), 0u);
}

TEST_F(FailpointTest, ConsultReadMapsActionsToStatusCodes) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure("x=fire_on_hit_1:error").ok());
  EXPECT_TRUE(fail::ConsultRead("x").IsIOError());
  ASSERT_TRUE(fail::Configure("x=fire_on_hit_1:short_read").ok());
  EXPECT_TRUE(fail::ConsultRead("x").IsCorruption());
  ASSERT_TRUE(fail::Configure("x=fire_on_hit_1:crash").ok());
  Status crash = fail::ConsultRead("x");
  EXPECT_TRUE(crash.IsInternal());
  EXPECT_TRUE(fail::IsInjectedCrash(crash));
  EXPECT_FALSE(fail::IsInjectedCrash(Status::Internal("unrelated")));
  EXPECT_FALSE(fail::IsInjectedCrash(Status::OK()));
}

TEST_F(FailpointTest, ConsultWritePersistsTornPrefix) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  const std::string path = Track(TempPath("rock_torn_prefix"));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(fail::Configure("w=fire_on_hit_1:torn_write").ok());
  const char payload[10] = "123456789";
  Status s = fail::ConsultWrite("w", f, payload, sizeof(payload));
  std::fclose(f);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(fs::file_size(path), sizeof(payload) / 2)
      << "torn_write must persist exactly half the payload";
}

// ---------------------------------------------------------------------------
// Retry engine.

TEST(RetryTest, FirstTrySuccessDoesNotSleep) {
  std::vector<double> sleeps;
  RetryStats stats;
  Status s = RetryTransient(
      RetryPolicy{}, []() { return Status::OK(); }, &stats,
      [&](double ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryTest, TransientFailuresBackOffExponentially) {
  std::vector<double> sleeps;
  RetryStats stats;
  int calls = 0;
  Status s = RetryTransient(
      RetryPolicy{},
      [&]() -> Status {
        return ++calls <= 2 ? Status::IOError("blip") : Status::OK();
      },
      &stats, [&](double ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 0u);
  EXPECT_DOUBLE_EQ(stats.backoff_ms, 3.0);
}

TEST(RetryTest, PersistentFailureExhaustsWithCappedBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1.0;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 4.0;
  std::vector<double> sleeps;
  RetryStats stats;
  Status s = RetryTransient(
      policy, []() { return Status::IOError("disk on fire"); }, &stats,
      [&](double ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(sleeps, (std::vector<double>{1.0, 2.0, 4.0, 4.0, 4.0}));
  EXPECT_EQ(stats.attempts, 6u);
  EXPECT_EQ(stats.retries, 5u);
  EXPECT_EQ(stats.exhausted, 1u);
}

TEST(RetryTest, CorruptionIsNotTransient) {
  std::vector<double> sleeps;
  RetryStats stats;
  int calls = 0;
  Status s = RetryTransient(
      RetryPolicy{},
      [&]() -> Status {
        ++calls;
        return Status::Corruption("bit rot");
      },
      &stats, [&](double ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryTest, InjectedCrashAbortsImmediately) {
  int calls = 0;
  Status s = RetryTransient(
      RetryPolicy{},
      [&]() -> Status {
        ++calls;
        return fail::InjectedCrash("test.site");
      },
      nullptr, [](double) { FAIL() << "crash must not back off"; });
  EXPECT_TRUE(fail::IsInjectedCrash(s));
  EXPECT_EQ(calls, 1) << "a simulated process death is never retried";
}

TEST(RetryTest, MergeAddsCounts) {
  RetryStats a{3, 2, 1, 5.0};
  RetryStats b{4, 1, 0, 2.5};
  a.Merge(b);
  EXPECT_EQ(a.attempts, 7u);
  EXPECT_EQ(a.retries, 3u);
  EXPECT_EQ(a.exhausted, 1u);
  EXPECT_DOUBLE_EQ(a.backoff_ms, 7.5);
}

// ---------------------------------------------------------------------------
// Injected faults at the store / labeler I/O sites.

class StoreFaultTest : public FailpointTest {
 protected:
  void SetUp() override {
    FailpointTest::SetUp();
    path_ = Track(TempPath("rock_store_fault"));
    data_ = MakeGroupedDataset(24, /*seed=*/0xfa11);
    ASSERT_TRUE(WriteDatasetToStore(data_, path_).ok());
  }

  std::string path_;
  TransactionDataset data_;
};

TEST_F(StoreFaultTest, InjectedOpenErrorFailsOpen) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure("store.open=fire_on_hit_1:error").ok());
  auto r = TransactionStoreReader::Open(path_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();
}

TEST_F(StoreFaultTest, InjectedReadErrorStopsTheScan) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure("store.read=fire_on_hit_5:error").ok());
  auto r = TransactionStoreReader::Open(path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  size_t rows = 0;
  while (r->Next()) ++rows;
  EXPECT_EQ(rows, 4u) << "the 5th read must be the injected failure";
  EXPECT_TRUE(r->status().IsIOError()) << r->status().ToString();
}

TEST_F(StoreFaultTest, InjectedShortReadIsCorruption) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure("store.read=fire_on_hit_1:short_read").ok());
  auto r = TransactionStoreReader::Open(path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->Next());
  EXPECT_TRUE(r->status().IsCorruption()) << r->status().ToString();
}

TEST_F(StoreFaultTest, InjectedCrashCarriesTheMarker) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::Configure("store.read=fire_on_hit_1:crash").ok());
  auto r = TransactionStoreReader::Open(path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->Next());
  EXPECT_TRUE(fail::IsInjectedCrash(r->status())) << r->status().ToString();
}

TEST_F(StoreFaultTest, TornAppendLeavesADetectableFile) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  const std::string torn = Track(TempPath("rock_store_torn"));
  auto w = TransactionStoreWriter::Open(torn);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  ASSERT_TRUE(w->Append(data_.transaction(0)).ok());
  ASSERT_TRUE(w->Append(data_.transaction(1)).ok());
  // Configure resets hit counters, so the next append is hit 1.
  ASSERT_TRUE(fail::Configure("store.append=fire_on_hit_1:torn_write").ok());
  Status s = w->Append(data_.transaction(2));
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  fail::Clear();
  ASSERT_TRUE(w->Finish().ok());

  // The torn prefix of record 3 sits after the two committed records; the
  // whole-file reader must reject it as trailing garbage, not return a
  // silently short dataset.
  auto r = TransactionStoreReader::Open(torn);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  size_t rows = 0;
  while (r->Next()) ++rows;
  EXPECT_EQ(rows, 2u);
  EXPECT_TRUE(r->status().IsCorruption()) << r->status().ToString();
}

TEST_F(StoreFaultTest, LabelerSaveAndLoadSitesInject) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto labeler = MakeGroupedLabeler(data_);
  ASSERT_TRUE(labeler.ok()) << labeler.status().ToString();
  const std::string path = Track(TempPath("rock_labeler_fault"));

  ASSERT_TRUE(fail::Configure("labeler.save=fire_on_hit_2:torn_write").ok());
  Status s = labeler->Save(path);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  fail::Clear();
  // The torn labeler file must be rejected, never half-loaded.
  auto torn = TransactionLabeler::Load(path);
  EXPECT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsCorruption()) << torn.status().ToString();

  ASSERT_TRUE(labeler->Save(path).ok());
  ASSERT_TRUE(fail::Configure("labeler.load=fire_on_hit_1:error").ok());
  auto load = TransactionLabeler::Load(path);
  EXPECT_FALSE(load.ok());
  EXPECT_TRUE(load.status().IsIOError()) << load.status().ToString();
  fail::Clear();
  EXPECT_TRUE(TransactionLabeler::Load(path).ok());
}

TEST_F(StoreFaultTest, LabelStoreRetriesATransientOpenFault) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto labeler = MakeGroupedLabeler(data_);
  ASSERT_TRUE(labeler.ok()) << labeler.status().ToString();
  auto baseline = LabelStore(path_, *labeler);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  ASSERT_TRUE(fail::Configure("store.open=fire_on_hit_1:error").ok());
  std::atomic<int> sleeps{0};
  LabelStoreOptions options;
  options.retry_sleeper = [&](double) { sleeps.fetch_add(1); };
  auto retried = LabelStore(path_, *labeler, options);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_GE(retried->retry_stats.retries, 1u);
  EXPECT_GE(sleeps.load(), 1);
  EXPECT_EQ(retried->assignments, baseline->assignments)
      << "a retried scan must be bit-identical to a clean one";
  EXPECT_EQ(retried->ground_truth, baseline->ground_truth);
  EXPECT_EQ(retried->num_outliers, baseline->num_outliers);
}

TEST_F(StoreFaultTest, LabelStoreExhaustsOnPersistentFault) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto labeler = MakeGroupedLabeler(data_);
  ASSERT_TRUE(labeler.ok()) << labeler.status().ToString();
  ASSERT_TRUE(fail::Configure("store.open=fire_every_1:error").ok());
  LabelStoreOptions options;
  options.retry_sleeper = [](double) {};
  auto r = LabelStore(path_, *labeler, options);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();
}

// ---------------------------------------------------------------------------
// Corruption matrix: random truncation, bit flips and duplicated trailing
// blocks must always be detected, whatever byte they land on.

enum class Mutation { kTruncate, kBitFlip, kDuplicateTail };

std::vector<unsigned char> Mutate(const std::vector<unsigned char>& bytes,
                                  Mutation mode, Rng& rng) {
  std::vector<unsigned char> out = bytes;
  switch (mode) {
    case Mutation::kTruncate:
      out.resize(static_cast<size_t>(rng.UniformUint64(bytes.size())));
      break;
    case Mutation::kBitFlip: {
      const size_t i = static_cast<size_t>(rng.UniformUint64(bytes.size()));
      out[i] = static_cast<unsigned char>(
          out[i] ^ (1u << rng.UniformUint64(8)));
      break;
    }
    case Mutation::kDuplicateTail: {
      const size_t k = 1 + static_cast<size_t>(rng.UniformUint64(
                               std::min<size_t>(bytes.size(), 64)));
      out.insert(out.end(), bytes.end() - static_cast<long>(k), bytes.end());
      break;
    }
  }
  return out;
}

TEST_F(FailpointTest, StoreCorruptionMatrixNeverSilentlySucceeds) {
  ROCK_SEEDED_RNG(rng, 0xc0de2026ULL);
  const std::string good = Track(TempPath("rock_store_matrix_good"));
  const std::string bad = Track(TempPath("rock_store_matrix_bad"));
  ASSERT_TRUE(
      WriteDatasetToStore(MakeGroupedDataset(30, 0xbeef), good).ok());
  const std::vector<unsigned char> bytes = ReadAllBytes(good);

  for (int trial = 0; trial < 90; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    const auto mode = static_cast<Mutation>(trial % 3);
    WriteAllBytes(bad, Mutate(bytes, mode, rng));

    Status failure;
    auto r = TransactionStoreReader::Open(bad);
    if (!r.ok()) {
      failure = r.status();
    } else {
      while (r->Next()) {
      }
      failure = r->status();
    }
    ASSERT_FALSE(failure.ok()) << "corruption read back silently";
    EXPECT_TRUE(failure.IsCorruption() || failure.IsInvalidArgument())
        << failure.ToString();
  }
}

TEST_F(FailpointTest, LabelerCorruptionMatrixNeverSilentlySucceeds) {
  ROCK_SEEDED_RNG(rng, 0x1abe1e12ULL);
  auto labeler = MakeGroupedLabeler(MakeGroupedDataset(24, 0xfeed));
  ASSERT_TRUE(labeler.ok()) << labeler.status().ToString();
  const std::string good = Track(TempPath("rock_labeler_matrix_good"));
  const std::string bad = Track(TempPath("rock_labeler_matrix_bad"));
  ASSERT_TRUE(labeler->Save(good).ok());
  const std::vector<unsigned char> bytes = ReadAllBytes(good);

  for (int trial = 0; trial < 90; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    const auto mode = static_cast<Mutation>(trial % 3);
    WriteAllBytes(bad, Mutate(bytes, mode, rng));

    auto r = TransactionLabeler::Load(bad);
    ASSERT_FALSE(r.ok()) << "corruption loaded silently";
    EXPECT_TRUE(r.status().IsCorruption() || r.status().IsInvalidArgument())
        << r.status().ToString();
  }
}

// [[nodiscard] regression: the compiler now rejects `reader->Next(); // oops`
// style Status drops outright, so the only runtime-observable contract left
// is that error statuses survive until the caller checks them. Prove the
// store reader latches its first error rather than letting a later Next()
// overwrite it with a clean EOF.
TEST_F(FailpointTest, ReaderLatchesItsFirstError) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  const std::string path = Track(TempPath("rock_store_latch"));
  ASSERT_TRUE(
      WriteDatasetToStore(MakeGroupedDataset(6, 0x5eed), path).ok());
  ASSERT_TRUE(fail::Configure("store.read=fire_on_hit_2:short_read").ok());
  auto r = TransactionStoreReader::Open(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->Next());
  EXPECT_FALSE(r->Next());
  ASSERT_TRUE(r->status().IsCorruption());
  const std::string first = r->status().ToString();
  EXPECT_FALSE(r->Next()) << "a failed reader must stay failed";
  EXPECT_EQ(r->status().ToString(), first);
}

// ---------------------------------------------------------------------------
// Streaming appends and model swaps (DESIGN §11): a fault or crash at any
// injected site must leave the store byte-identical and the model either
// fully old or fully new — and a retry/resume must converge without
// duplicating or mixing labels.

/// Two fresh in-distribution rows for appending to the 24-row fixture store.
std::vector<Transaction> TwoAppendRows() {
  return {Transaction({1, 2, 3, 4}), Transaction({101, 102, 103})};
}

TEST_F(StoreFaultTest, AppendTornWriteLeavesStoreByteIdentical) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  Track(path_ + ".append.tmp");
  const std::vector<unsigned char> before = ReadAllBytes(path_);

  ASSERT_TRUE(fail::Configure("store.append=fire_on_hit_1:torn_write").ok());
  auto torn = AppendToStore(path_, TwoAppendRows(), nullptr);
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsIOError()) << torn.status().ToString();
  EXPECT_EQ(ReadAllBytes(path_), before)
      << "a torn append must not disturb the committed store";

  // Retrying after the fault clears commits the batch exactly once.
  fail::Clear();
  auto retried = AppendToStore(path_, TwoAppendRows(), nullptr);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->base_count, 24u);
  EXPECT_EQ(retried->new_count, 26u);
  EXPECT_EQ(retried->generation, 1u);
  auto r = TransactionStoreReader::Open(path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count(), 26u);
}

TEST_F(StoreFaultTest, AppendCrashBeforeRenameLeavesStoreByteIdentical) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  Track(path_ + ".append.tmp");
  const std::vector<unsigned char> before = ReadAllBytes(path_);

  // Crash at the commit (rename) boundary: the fully written tmp file never
  // replaces the original.
  ASSERT_TRUE(fail::Configure("store.commit=fire_on_hit_1:crash").ok());
  auto crashed = AppendToStore(path_, TwoAppendRows(), nullptr);
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(fail::IsInjectedCrash(crashed.status()))
      << crashed.status().ToString();
  EXPECT_EQ(ReadAllBytes(path_), before);

  // Resume-after-crash: the retry appends the rows once — never twice.
  fail::Clear();
  auto retried = AppendToStore(path_, TwoAppendRows(), nullptr);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->new_count, 26u);
  EXPECT_EQ(retried->generation, 1u);
  size_t rows = 0;
  auto r = TransactionStoreReader::Open(path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  while (r->Next()) ++rows;
  ASSERT_TRUE(r->status().ok()) << r->status().ToString();
  EXPECT_EQ(rows, 26u) << "a crashed-then-retried append must not duplicate";
}

TEST_F(StoreFaultTest, AppendRefusesToExtendACorruptStore) {
  ROCK_SEEDED_RNG(rng, 0xc0bb);
  std::vector<unsigned char> bytes = ReadAllBytes(path_);
  // Flip one payload bit: the copy-on-append CRC re-verify must refuse to
  // extend (and thereby re-checksum, masking the damage) a corrupt store.
  const size_t pos =
      48 + static_cast<size_t>(rng.UniformUint64(bytes.size() - 48));
  bytes[pos] ^= 0x10;
  WriteAllBytes(path_, bytes);

  auto appended = AppendToStore(path_, TwoAppendRows(), nullptr);
  ASSERT_FALSE(appended.ok());
  EXPECT_TRUE(appended.status().IsCorruption())
      << appended.status().ToString();
  EXPECT_EQ(ReadAllBytes(path_), bytes)
      << "a refused append must leave the (corrupt) file for forensics";
}

class StreamFaultTest : public StoreFaultTest {
 protected:
  void SetUp() override {
    StoreFaultTest::SetUp();
    model_path_ = Track(TempPath("rock_stream_fault_model"));
    Track(model_path_ + ".tmp");
    Track(path_ + ".append.tmp");
    checkpoint_path_ = Track(TempPath("rock_stream_fault_ckpt"));
    Track(checkpoint_path_ + ".tmp");
  }

  ModelBuildOptions BuildOptions() const {
    ModelBuildOptions opt;
    opt.pipeline.rock.theta = 0.3;
    opt.pipeline.rock.num_clusters = 3;
    opt.pipeline.sample_size = 24;
    opt.pipeline.seed = 99;
    opt.pipeline.labeling.seed = 5;
    opt.model_path = model_path_;
    return opt;
  }

  std::string model_path_;
  std::string checkpoint_path_;
};

TEST_F(StreamFaultTest, ModelSwapCrashPublishesButKeepsServingOldModel) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(BuildModel(path_, BuildOptions()).ok());

  StreamOptions opt;
  opt.build = BuildOptions();
  opt.background_rebuild = false;
  auto session = StreamingSession::Open(path_, model_path_, opt);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto appended = (*session)->Append(TwoAppendRows(), nullptr);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();

  // Crash in the "published but not yet serving" window: the re-clustered
  // bundle is durable on disk, the in-process model is still entirely the
  // old one.
  ASSERT_TRUE(fail::Configure("model.swap=fire_on_hit_1:crash").ok());
  Status swap = (*session)->Rebuild();
  ASSERT_FALSE(swap.ok());
  EXPECT_TRUE(fail::IsInjectedCrash(swap)) << swap.ToString();
  fail::Clear();

  EXPECT_EQ((*session)->Acquire()->fingerprint().store_count, 24u)
      << "the session must keep serving the old model after a swap crash";
  auto on_disk = ModelHandle::Load(model_path_);
  ASSERT_TRUE(on_disk.ok()) << on_disk.status().ToString();
  EXPECT_EQ(on_disk->fingerprint().store_count, 26u)
      << "the rebuilt bundle must already be durable on disk";

  // Resume: MaybeReload finds the published fingerprint and converges.
  auto reloaded = (*session)->MaybeReload();
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(*reloaded);
  EXPECT_EQ((*session)->Acquire()->fingerprint().store_count, 26u);
}

TEST_F(StreamFaultTest, RebuildResumeAfterModelSaveCrashIsByteIdentical) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  // Reference: an uninterrupted build of the same store.
  const std::string reference = Track(TempPath("rock_stream_fault_ref"));
  Track(reference + ".tmp");
  ModelBuildOptions ref = BuildOptions();
  ref.model_path = reference;
  ASSERT_TRUE(BuildModel(path_, ref).ok());

  // Crash while freezing the bundle; the labeling checkpoint survives.
  ModelBuildOptions crash = BuildOptions();
  crash.pipeline.checkpoint_path = checkpoint_path_;
  ASSERT_TRUE(fail::Configure("model.save=fire_on_hit_1:crash").ok());
  auto crashed = BuildModel(path_, crash);
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(fail::IsInjectedCrash(crashed.status()))
      << crashed.status().ToString();
  fail::Clear();

  ModelBuildOptions resume = crash;
  resume.pipeline.resume = true;
  auto resumed = BuildModel(path_, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed) << "the rebuild must ride the checkpoint";
  EXPECT_EQ(ReadAllBytes(model_path_), ReadAllBytes(reference))
      << "a resumed rebuild must freeze a byte-identical bundle";
}

}  // namespace
}  // namespace rock
