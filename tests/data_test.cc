// Tests for data/: dictionary, transactions, records, datasets, transforms,
// time-series encoding, CSV reading, and the on-disk transaction store.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/csv_reader.h"
#include "data/dataset.h"
#include "data/dictionary.h"
#include "data/disk_store.h"
#include "data/record.h"
#include "data/timeseries.h"
#include "data/transaction.h"
#include "data/transforms.h"

namespace rock {
namespace {

// ------------------------------------------------------------ Dictionary --

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary d;
  EXPECT_EQ(d.Intern("milk"), 0u);
  EXPECT_EQ(d.Intern("bread"), 1u);
  EXPECT_EQ(d.Intern("milk"), 0u);  // idempotent
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, LookupMissingReturnsSentinel) {
  Dictionary d;
  d.Intern("x");
  EXPECT_EQ(d.Lookup("x"), 0u);
  EXPECT_EQ(d.Lookup("y"), kNoItem);
}

TEST(DictionaryTest, NameRoundTrips) {
  Dictionary d;
  const ItemId id = d.Intern("swiss cheese");
  EXPECT_EQ(d.Name(id), "swiss cheese");
}

// ----------------------------------------------------------- Transaction --

TEST(TransactionTest, SortsAndDeduplicates) {
  Transaction t({5, 1, 3, 1, 5});
  EXPECT_EQ(t.items(), (std::vector<ItemId>{1, 3, 5}));
  EXPECT_EQ(t.size(), 3u);
}

TEST(TransactionTest, ContainsUsesBinarySearch) {
  Transaction t({2, 4, 6});
  EXPECT_TRUE(t.Contains(4));
  EXPECT_FALSE(t.Contains(5));
}

TEST(TransactionTest, EmptyTransaction) {
  Transaction t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Contains(0));
}

TEST(TransactionTest, IntersectionAndUnion) {
  // Paper Example 1.1 transactions (a) {1,2,3,5} and (b) {2,3,4,5}.
  Transaction a({1, 2, 3, 5});
  Transaction b({2, 3, 4, 5});
  EXPECT_EQ(IntersectionSize(a, b), 3u);
  EXPECT_EQ(UnionSize(a, b), 5u);
}

TEST(TransactionTest, DisjointSets) {
  Transaction a({1, 4});
  Transaction b({6});
  EXPECT_EQ(IntersectionSize(a, b), 0u);
  EXPECT_EQ(UnionSize(a, b), 3u);
}

TEST(TransactionTest, IntersectionWithSelf) {
  Transaction a({1, 2, 3});
  EXPECT_EQ(IntersectionSize(a, a), 3u);
  EXPECT_EQ(UnionSize(a, a), 3u);
}

// ----------------------------------------------------------------- Record --

TEST(RecordTest, SchemaInternsPerAttributeDomains) {
  Schema s({"color", "size"});
  const ValueId red = s.InternValue(0, "red");
  const ValueId big = s.InternValue(1, "big");
  EXPECT_EQ(red, 0u);
  EXPECT_EQ(big, 0u);  // separate domains both start at 0
  EXPECT_EQ(s.LookupValue(0, "red"), red);
  EXPECT_EQ(s.LookupValue(1, "red"), kNoItem);
  EXPECT_EQ(s.ValueName(0, red), "red");
}

TEST(RecordTest, TotalDomainSize) {
  Schema s({"a", "b"});
  s.InternValue(0, "x");
  s.InternValue(0, "y");
  s.InternValue(1, "z");
  EXPECT_EQ(s.TotalDomainSize(), 3u);
}

TEST(RecordTest, MissingValues) {
  Record r({0, kMissingValue, 2});
  EXPECT_FALSE(r.IsMissing(0));
  EXPECT_TRUE(r.IsMissing(1));
  EXPECT_EQ(r.NumPresent(), 2u);
}

// ---------------------------------------------------------------- Dataset --

TEST(TransactionDatasetTest, AddByNames) {
  TransactionDataset ds;
  ds.AddTransaction({"wine", "cheese"});
  ds.AddTransaction({"cheese", "beer"});
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.items().size(), 3u);
  // Shared item must map to the same id.
  const ItemId cheese = ds.items().Lookup("cheese");
  EXPECT_TRUE(ds.transaction(0).Contains(cheese));
  EXPECT_TRUE(ds.transaction(1).Contains(cheese));
}

TEST(TransactionDatasetTest, MeanTransactionSize) {
  TransactionDataset ds;
  ds.AddTransaction({"a"});
  ds.AddTransaction({"a", "b", "c"});
  EXPECT_DOUBLE_EQ(ds.MeanTransactionSize(), 2.0);
  EXPECT_DOUBLE_EQ(TransactionDataset{}.MeanTransactionSize(), 0.0);
}

TEST(CategoricalDatasetTest, AddRecordEncodesAndHandlesMissing) {
  CategoricalDataset ds{Schema({"color", "shape"})};
  ASSERT_TRUE(ds.AddRecord({"red", "round"}).ok());
  ASSERT_TRUE(ds.AddRecord({"?", "round"}).ok());
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_TRUE(ds.record(1).IsMissing(0));
  EXPECT_EQ(ds.record(0).value(1), ds.record(1).value(1));
  EXPECT_DOUBLE_EQ(ds.MissingRate(), 0.25);
}

TEST(CategoricalDatasetTest, ArityMismatchFails) {
  CategoricalDataset ds{Schema({"a", "b"})};
  EXPECT_TRUE(ds.AddRecord({"x"}).IsInvalidArgument());
  EXPECT_TRUE(ds.AddRecord(Record({0u})).IsInvalidArgument());
}

TEST(LabelSetTest, InternsAndCounts) {
  LabelSet ls;
  ls.Append("republican");
  ls.Append("democrat");
  ls.Append("republican");
  ls.AppendUnlabeled();
  EXPECT_EQ(ls.num_classes(), 2u);
  EXPECT_EQ(ls.label(0), ls.label(2));
  EXPECT_EQ(ls.label(3), kNoLabel);
  EXPECT_EQ(ls.Name(ls.label(1)), "democrat");
}

// ------------------------------------------------------------- Transforms --

TEST(TransformsTest, RecordsBecomeAvItems) {
  CategoricalDataset ds{Schema({"color", "shape"})};
  ASSERT_TRUE(ds.AddRecord({"red", "round"}).ok());
  ASSERT_TRUE(ds.AddRecord({"red", "square"}).ok());
  ds.labels().Append("a");
  ds.labels().Append("b");

  TransactionDataset tx = RecordsToTransactions(ds);
  ASSERT_EQ(tx.size(), 2u);
  EXPECT_EQ(tx.transaction(0).size(), 2u);
  // Shared "color=red" item appears in both transactions.
  EXPECT_EQ(IntersectionSize(tx.transaction(0), tx.transaction(1)), 1u);
  EXPECT_EQ(tx.labels().Name(tx.labels().label(1)), "b");
}

TEST(TransformsTest, MissingValuesProduceNoItem) {
  CategoricalDataset ds{Schema({"a", "b", "c"})};
  ASSERT_TRUE(ds.AddRecord({"x", "?", "z"}).ok());
  TransactionDataset tx = RecordsToTransactions(ds);
  EXPECT_EQ(tx.transaction(0).size(), 2u);
}

// ------------------------------------------------------------- TimeSeries --

TEST(TimeSeriesTest, ClassifyMove) {
  EXPECT_EQ(ClassifyMove(10.0, 10.5), PriceMove::kUp);
  EXPECT_EQ(ClassifyMove(10.0, 9.5), PriceMove::kDown);
  EXPECT_EQ(ClassifyMove(10.0, 10.0), PriceMove::kNo);
  // Sub-epsilon wiggles count as no change.
  EXPECT_EQ(ClassifyMove(10.0, 10.0 + 1e-12), PriceMove::kNo);
}

TEST(TimeSeriesTest, TransformsToUpDownNo) {
  TimeSeriesSet set;
  set.num_dates = 4;
  set.series.push_back(
      TimeSeries{"F0", "bonds", {10.0, 11.0, 11.0, 10.0}});
  auto ds = TimeSeriesToCategorical(set);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->schema().num_attributes(), 3u);
  const Record& r = ds->record(0);
  EXPECT_EQ(ds->schema().ValueName(0, r.value(0)), "Up");
  EXPECT_EQ(ds->schema().ValueName(1, r.value(1)), "No");
  EXPECT_EQ(ds->schema().ValueName(2, r.value(2)), "Down");
  EXPECT_EQ(ds->labels().Name(ds->labels().label(0)), "bonds");
}

TEST(TimeSeriesTest, MissingPricesYieldMissingTransitions) {
  TimeSeriesSet set;
  set.num_dates = 4;
  // Young fund: first two dates unobserved.
  set.series.push_back(
      TimeSeries{"F0", "", {std::nullopt, std::nullopt, 5.0, 6.0}});
  auto ds = TimeSeriesToCategorical(set);
  ASSERT_TRUE(ds.ok());
  const Record& r = ds->record(0);
  EXPECT_TRUE(r.IsMissing(0));
  EXPECT_TRUE(r.IsMissing(1));  // needs both endpoints
  EXPECT_FALSE(r.IsMissing(2));
}

TEST(TimeSeriesTest, LengthMismatchFails) {
  TimeSeriesSet set;
  set.num_dates = 3;
  set.series.push_back(TimeSeries{"F0", "", {1.0, 2.0}});
  EXPECT_TRUE(TimeSeriesToCategorical(set).status().IsInvalidArgument());
}

TEST(TimeSeriesTest, TooFewDatesFails) {
  TimeSeriesSet set;
  set.num_dates = 1;
  EXPECT_TRUE(TimeSeriesToCategorical(set).status().IsInvalidArgument());
}

// -------------------------------------------------------------------- CSV --

TEST(CsvReaderTest, ParsesUciStyleRows) {
  const std::string text =
      "republican,n,y,?\n"
      "democrat,y,y,n\n";
  CsvOptions opt;
  auto ds = ReadCsvString(text, opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->schema().num_attributes(), 3u);
  EXPECT_TRUE(ds->record(0).IsMissing(2));
  EXPECT_EQ(ds->labels().Name(ds->labels().label(0)), "republican");
}

TEST(CsvReaderTest, HeaderNamesAttributes) {
  const std::string text =
      "class,odor,size\n"
      "edible,none,big\n";
  CsvOptions opt;
  opt.has_header = true;
  auto ds = ReadCsvString(text, opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->schema().attribute_name(0), "odor");
  EXPECT_EQ(ds->schema().attribute_name(1), "size");
}

TEST(CsvReaderTest, NoLabelColumn) {
  CsvOptions opt;
  opt.label_column = -1;
  auto ds = ReadCsvString("a,b\nc,d\n", opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->schema().num_attributes(), 2u);
  EXPECT_TRUE(ds->labels().empty());
}

TEST(CsvReaderTest, RaggedRowIsCorruption) {
  auto ds = ReadCsvString("l,a,b\nl,a\n", CsvOptions{});
  EXPECT_TRUE(ds.status().IsCorruption());
}

TEST(CsvReaderTest, EmptyInputFails) {
  EXPECT_TRUE(ReadCsvString("", CsvOptions{}).status().IsInvalidArgument());
  EXPECT_TRUE(
      ReadCsvString("\n\n", CsvOptions{}).status().IsInvalidArgument());
}

TEST(CsvReaderTest, HandlesCrLfAndBlankLines) {
  auto ds = ReadCsvString("l,a\r\n\r\nl,b\r\n", CsvOptions{});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
}

TEST(CsvReaderTest, MissingFileIsIOError) {
  auto ds = ReadCsvFile("/nonexistent/path.data", CsvOptions{});
  EXPECT_TRUE(ds.status().IsIOError());
}

// ------------------------------------------------------------- Disk store --

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rock_store_test_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST_F(DiskStoreTest, RoundTripsTransactionsAndLabels) {
  {
    auto writer = TransactionStoreWriter::Open(path());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer->Append(Transaction({1, 2, 3}), 0).ok());
    ASSERT_TRUE(writer->Append(Transaction({4}), 1).ok());
    ASSERT_TRUE(writer->Append(Transaction({}), kNoLabel).ok());
    ASSERT_TRUE(writer->Finish().ok());
  }
  auto reader = TransactionStoreReader::Open(path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->count(), 3u);

  ASSERT_TRUE(reader->Next());
  EXPECT_EQ(reader->transaction(), Transaction({1, 2, 3}));
  EXPECT_EQ(reader->label(), 0u);
  ASSERT_TRUE(reader->Next());
  EXPECT_EQ(reader->transaction(), Transaction({4}));
  ASSERT_TRUE(reader->Next());
  EXPECT_TRUE(reader->transaction().empty());
  EXPECT_EQ(reader->label(), kNoLabel);
  EXPECT_FALSE(reader->Next());
  EXPECT_TRUE(reader->status().ok());
}

TEST_F(DiskStoreTest, RewindRestartsStream) {
  {
    auto writer = TransactionStoreWriter::Open(path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(Transaction({7, 8})).ok());
    ASSERT_TRUE(writer->Finish().ok());
  }
  auto reader = TransactionStoreReader::Open(path());
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->Next());
  EXPECT_FALSE(reader->Next());
  ASSERT_TRUE(reader->Rewind().ok());
  ASSERT_TRUE(reader->Next());
  EXPECT_EQ(reader->transaction(), Transaction({7, 8}));
}

TEST_F(DiskStoreTest, AppendAfterFinishFails) {
  auto writer = TransactionStoreWriter::Open(path());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_TRUE(writer->Append(Transaction({1})).IsFailedPrecondition());
}

TEST_F(DiskStoreTest, GarbageFileIsCorruption) {
  {
    std::FILE* f = std::fopen(path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a store";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  auto reader = TransactionStoreReader::Open(path());
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST_F(DiskStoreTest, TruncatedBodyIsCorruption) {
  {
    auto writer = TransactionStoreWriter::Open(path());
    ASSERT_TRUE(writer.ok());
    for (uint32_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(writer->Append(Transaction({i, i + 1, i + 2})).ok());
    }
    ASSERT_TRUE(writer->Finish().ok());
  }
  // Chop off the tail of the file.
  std::filesystem::resize_file(path(),
                               std::filesystem::file_size(path()) - 8);
  auto reader = TransactionStoreReader::Open(path());
  ASSERT_TRUE(reader.ok());
  size_t read = 0;
  while (reader->Next()) ++read;
  EXPECT_LT(read, 10u);
  EXPECT_TRUE(reader->status().IsCorruption());
}

TEST_F(DiskStoreTest, MissingFileIsIOError) {
  auto reader = TransactionStoreReader::Open("/does/not/exist.bin");
  EXPECT_TRUE(reader.status().IsIOError());
}

TEST_F(DiskStoreTest, DatasetRoundTripHelpers) {
  TransactionDataset ds;
  ds.AddTransaction({"a", "b"});
  ds.labels().Append("c0");
  ds.AddTransaction({"b", "c"});
  ds.labels().Append("c1");
  ASSERT_TRUE(WriteDatasetToStore(ds, path()).ok());

  auto loaded = ReadStoreToDataset(path(), &ds.labels());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->transaction(0), ds.transaction(0));
  EXPECT_EQ(loaded->labels().Name(loaded->labels().label(1)), "c1");
}

}  // namespace
}  // namespace rock
