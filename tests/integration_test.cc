// Integration tests: end-to-end ROCK runs over the paper's scenarios at
// test-friendly scales, checking the cross-module contracts the benches
// rely on (generators → similarity → clusterer → evaluation).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/binarize.h"
#include "baselines/centroid_hierarchical.h"
#include "core/rock.h"
#include "data/timeseries.h"
#include "data/transforms.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "eval/profiles.h"
#include "similarity/jaccard.h"
#include "synth/fund_generator.h"
#include "synth/mushroom_generator.h"
#include "synth/votes_generator.h"

namespace rock {
namespace {

TEST(IntegrationTest, VotesRockSeparatesParties) {
  // Table 2 scenario, θ = 0.73 (the paper's setting).
  auto ds = GenerateVotesData(VotesGeneratorOptions{});
  ASSERT_TRUE(ds.ok());
  CategoricalJaccard sim(*ds);
  RockOptions opt;
  opt.theta = 0.73;
  opt.num_clusters = 2;
  opt.outlier_stop_multiple = 3.0;
  opt.min_cluster_support = 5;
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());

  auto table = ContingencyTable::Build(result->clustering, ds->labels());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(result->clustering.num_clusters(), 2u);
  // Each cluster dominated by one party; majority of records clustered.
  EXPECT_GT(Purity(*table), 0.95);
  EXPECT_GT(table->GrandTotal(), 350u);
  EXPECT_NE(table->MajorityClass(0), table->MajorityClass(1));
}

TEST(IntegrationTest, VotesRockBeatsOrMatchesCentroidBaseline) {
  auto ds = GenerateVotesData(VotesGeneratorOptions{});
  ASSERT_TRUE(ds.ok());
  CategoricalJaccard sim(*ds);
  RockOptions ropt;
  ropt.theta = 0.73;
  ropt.num_clusters = 2;
  ropt.outlier_stop_multiple = 3.0;
  ropt.min_cluster_support = 5;
  auto rock_result = RockClusterer(ropt).Cluster(sim);
  ASSERT_TRUE(rock_result.ok());
  auto rock_table =
      ContingencyTable::Build(rock_result->clustering, ds->labels());

  BinarizedData bin = BinarizeRecords(*ds);
  CentroidHierarchicalOptions copt;
  copt.num_clusters = 2;
  auto centroid = ClusterCentroidHierarchical(bin.points, copt);
  ASSERT_TRUE(centroid.ok());
  auto centroid_table =
      ContingencyTable::Build(centroid->clustering, ds->labels());

  // The paper: both find the two parties on this "easy" set, but ROCK's
  // clusters cover at least as many records at equal-or-better purity.
  EXPECT_GE(Purity(*rock_table) + 1e-9, Purity(*centroid_table));
  EXPECT_GE(rock_table->GrandTotal(), centroid_table->GrandTotal());
}

TEST(IntegrationTest, MushroomRockFindsSkewedPureClusters) {
  // Table 3 scenario at 1/8 scale, θ = 0.8.
  MushroomGeneratorOptions gen;
  gen.size_scale = 0.125;
  auto ds = GenerateMushroomData(gen);
  ASSERT_TRUE(ds.ok());
  CategoricalJaccard sim(*ds);
  RockOptions opt;
  opt.theta = 0.8;
  opt.num_clusters = 20;
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());

  auto table = ContingencyTable::Build(result->clustering, ds->labels());
  ASSERT_TRUE(table.ok());
  // The paper found 21 clusters (k was 20) with all but one pure, and a
  // wide size spread. Allow headroom for the surrogate at small scale.
  EXPECT_GE(result->clustering.num_clusters(), 20u);
  EXPECT_LE(result->clustering.num_clusters(), 26u);
  EXPECT_GT(Purity(*table), 0.98);

  size_t pure = 0;
  uint64_t largest = 0, smallest = UINT64_MAX;
  for (size_t c = 0; c < table->num_clusters(); ++c) {
    const uint64_t total = table->ClusterTotal(c);
    largest = std::max(largest, total);
    smallest = std::min(smallest, total);
    for (size_t l = 0; l < table->num_classes(); ++l) {
      if (table->Count(c, l) == total) ++pure;
    }
  }
  EXPECT_GE(pure + 2, table->num_clusters());  // at most 2 mixed
  EXPECT_GT(largest, 10 * std::max<uint64_t>(smallest, 1));
}

TEST(IntegrationTest, MushroomRecoversLatentGroups) {
  MushroomGeneratorOptions gen;
  gen.size_scale = 0.125;
  auto ds = GenerateMushroomDataWithTruth(gen);
  ASSERT_TRUE(ds.ok());
  CategoricalJaccard sim(*ds);
  RockOptions opt;
  opt.theta = 0.8;
  opt.num_clusters = 20;
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());
  auto table = ContingencyTable::Build(result->clustering, ds->labels());
  ASSERT_TRUE(table.ok());
  EXPECT_GT(AdjustedRandIndex(*table), 0.95);
  EXPECT_GT(NormalizedMutualInformation(*table), 0.95);
}

TEST(IntegrationTest, FundsPipelineGroupsByCategory) {
  // Table 4 scenario: transform, pairwise-missing similarity, θ = 0.8.
  auto set = GenerateFundData(FundGeneratorOptions{});
  ASSERT_TRUE(set.ok());
  auto ds = TimeSeriesToCategorical(*set);
  ASSERT_TRUE(ds.ok());
  PairwiseMissingJaccard sim(*ds);
  RockOptions opt;
  opt.theta = 0.8;
  opt.num_clusters = 40;
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());

  // All 16 named groups are recovered as (near-)pure clusters of the
  // right size, and a sizable share of funds are outliers.
  std::map<std::string, size_t> recovered;
  for (const auto& members : result->clustering.clusters) {
    std::map<std::string, size_t> groups;
    for (PointIndex p : members) {
      ++groups[ds->labels().Name(ds->labels().label(p))];
    }
    for (const auto& [g, n] : groups) {
      // A group counts as recovered when one cluster holds >= 90% of it.
      recovered[g] = std::max(recovered[g], n);
    }
  }
  const std::map<std::string, size_t> expected = {
      {"Growth 2", 107},       {"Growth 3", 70},  {"Bonds 7", 26},
      {"Bonds 3", 24},         {"Bonds 4", 15},   {"Bonds 2", 10},
      {"Precious Metals", 10}, {"Growth 1", 8},   {"International 3", 6},
      {"Bonds 5", 5},          {"Balanced", 5},   {"Bonds 1", 4},
      {"International 1", 4},  {"International 2", 4}};
  for (const auto& [group, size] : expected) {
    EXPECT_GE(recovered[group] * 10, size * 9) << group;
  }
  EXPECT_GT(result->clustering.num_outliers(), 300u);

  // A healthy number of twin pairs survive together (size 2 or 3 clusters
  // holding both members).
  size_t twins_together = 0;
  for (const auto& members : result->clustering.clusters) {
    if (members.size() > 3) continue;
    std::map<std::string, size_t> groups;
    for (PointIndex p : members) {
      ++groups[ds->labels().Name(ds->labels().label(p))];
    }
    for (const auto& [g, n] : groups) {
      if (n == 2 && g.rfind("pair", 0) == 0) ++twins_together;
    }
  }
  EXPECT_GE(twins_together, 10u);
}

TEST(IntegrationTest, ProfilesReflectVoteSplits) {
  // Table 7 scenario: the two ROCK clusters' profiles disagree on the
  // polarized issues and agree on immigration.
  auto ds = GenerateVotesData(VotesGeneratorOptions{});
  ASSERT_TRUE(ds.ok());
  CategoricalJaccard sim(*ds);
  RockOptions opt;
  opt.theta = 0.73;
  opt.num_clusters = 2;
  opt.outlier_stop_multiple = 3.0;
  opt.min_cluster_support = 5;
  auto result = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clustering.num_clusters(), 2u);

  ProfileOptions popt;
  popt.min_support = 0.5;
  auto profiles = ProfileClusters(*ds, result->clustering, popt);
  ASSERT_EQ(profiles.size(), 2u);

  auto value_of = [](const ClusterProfile& p, const std::string& attr) {
    for (const auto& e : p.entries) {
      if (e.attribute == attr) return e.value;
    }
    return std::string();
  };
  // Polarized issue: opposite frequent values.
  EXPECT_NE(value_of(profiles[0], "physician-fee-freeze"),
            value_of(profiles[1], "physician-fee-freeze"));
  EXPECT_NE(value_of(profiles[0], "el-salvador-aid"),
            value_of(profiles[1], "el-salvador-aid"));
  EXPECT_NE(value_of(profiles[0], "crime"), value_of(profiles[1], "crime"));
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  MushroomGeneratorOptions gen;
  gen.size_scale = 0.05;
  auto d1 = GenerateMushroomData(gen);
  auto d2 = GenerateMushroomData(gen);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  CategoricalJaccard s1(*d1), s2(*d2);
  RockOptions opt;
  opt.theta = 0.8;
  opt.num_clusters = 20;
  auto r1 = RockClusterer(opt).Cluster(s1);
  auto r2 = RockClusterer(opt).Cluster(s2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->clustering.assignment, r2->clustering.assignment);
  EXPECT_EQ(r1->merges.size(), r2->merges.size());
}

}  // namespace
}  // namespace rock
