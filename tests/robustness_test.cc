// Robustness tests: the readers and parsers must reject arbitrary garbage
// with a Status — never crash, hang, or silently accept — and the CLI's
// JSON output must stay well-formed for adversarial label names.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cli/cli.h"
#include "common/random.h"
#include "data/arff_reader.h"
#include "data/csv_reader.h"
#include "data/disk_store.h"
#include "test_support.h"

namespace rock {
namespace {

std::string RandomBytes(Rng* rng, size_t n) {
  std::string s(n, '\0');
  for (char& c : s) {
    c = static_cast<char>(rng->UniformUint64(256));
  }
  return s;
}

std::string RandomAsciiLines(Rng* rng, size_t n) {
  const char alphabet[] = "abc,?{}@%\n\r\t '\"0123456789";
  std::string s(n, '\0');
  for (char& c : s) {
    c = alphabet[rng->UniformUint64(sizeof(alphabet) - 1)];
  }
  return s;
}

TEST(ReaderRobustnessTest, CsvSurvivesGarbage) {
  ROCK_SEEDED_RNG(rng, 101);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string text =
        trial % 2 == 0 ? RandomBytes(&rng, 200) : RandomAsciiLines(&rng, 200);
    // Must return (either outcome fine), not crash.
    auto r = ReadCsvString(text, CsvOptions{});
    if (r.ok()) {
      EXPECT_GE(r->size(), 1u);
    }
  }
}

TEST(ReaderRobustnessTest, ArffSurvivesGarbage) {
  ROCK_SEEDED_RNG(rng, 202);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string text =
        trial % 2 == 0 ? RandomBytes(&rng, 300) : RandomAsciiLines(&rng, 300);
    auto r = ReadArffString(text);
    // Random bytes essentially never form a valid ARFF header; accept
    // either outcome but require no crash.
    (void)r.ok();
  }
}

TEST(ReaderRobustnessTest, ArffHeaderFuzz) {
  // Structured fuzz around the header grammar.
  const std::vector<std::string> fragments = {
      "@relation",  "@attribute", "@data", "{a,b}", "{}", "'unterminated",
      "numeric",    "x",          ",",     "?",     "%c", "{a,",
  };
  ROCK_SEEDED_RNG(rng, 303);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t lines = 1 + rng.UniformUint64(8);
    for (size_t l = 0; l < lines; ++l) {
      const size_t tokens = 1 + rng.UniformUint64(4);
      for (size_t t = 0; t < tokens; ++t) {
        text += fragments[rng.UniformUint64(fragments.size())];
        text += ' ';
      }
      text += '\n';
    }
    auto r = ReadArffString(text);
    (void)r.ok();
  }
}

TEST(ReaderRobustnessTest, StoreSurvivesBitFlips) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("rock_fuzz_store_" + std::to_string(::getpid()));
  // A valid store file...
  {
    auto writer = TransactionStoreWriter::Open(path.string());
    ASSERT_TRUE(writer.ok());
    for (uint32_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(writer->Append(Transaction({i, i + 1, i + 2}), i % 3).ok());
    }
    ASSERT_TRUE(writer->Finish().ok());
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  // ...with random single-byte corruptions must never crash the reader.
  ROCK_SEEDED_RNG(rng, 404);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    const size_t flips = 1 + rng.UniformUint64(4);
    for (size_t fi = 0; fi < flips; ++fi) {
      corrupted[rng.UniformUint64(corrupted.size())] =
          static_cast<char>(rng.UniformUint64(256));
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << corrupted;
    }
    auto reader = TransactionStoreReader::Open(path.string());
    if (!reader.ok()) continue;
    size_t rows = 0;
    while (reader->Next() && rows < 1000) ++rows;
    // Either a clean end or a corruption status — both acceptable.
    EXPECT_LE(rows, 1000u);
  }
  std::filesystem::remove(path);
}

TEST(CliRobustnessTest, JsonStaysValidWithHostileLabels) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("rock_fuzz_cli_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string csv_path = (dir / "hostile.csv").string();
  const std::string json_path = (dir / "out.json").string();
  {
    std::ofstream f(csv_path);
    // Labels containing quotes and backslashes.
    f << "he said \"hi\"\\path,a,b\n"
      << "he said \"hi\"\\path,a,b\n"
      << "tab\there,c,d\n"
      << "tab\there,c,d\n";
  }
  std::string out;
  const int code = RunCli({"cluster", "--input=" + csv_path, "--theta=0.4",
                           "--k=2", "--json=" + json_path},
                          &out);
  ASSERT_EQ(code, 0) << out;
  std::ifstream json_in(json_path);
  std::string json((std::istreambuf_iterator<char>(json_in)),
                   std::istreambuf_iterator<char>());
  // Spot-check escaping: no raw tab inside the JSON, quotes escaped.
  EXPECT_EQ(json.find("said \"hi\""), std::string::npos);
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rock
