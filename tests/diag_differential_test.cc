// Differential tests: the parallel graph algorithms must be bit-identical
// to their serial counterparts on randomized Jaccard datasets across θ and
// thread counts, including the degenerate graphs (no edges, complete graph).
// Equality is asserted structurally AND through the diag invariant oracles,
// so a disagreement reports which layer diverged.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/pipeline.h"
#include "core/rock.h"
#include "data/disk_store.h"
#include "data/transaction.h"
#include "diag/invariants.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "graph/parallel.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"
#include "test_support.h"
#include "util/failpoint.h"

namespace rock {
namespace {

// Builds a randomized transaction dataset with cluster structure plus
// outliers, so the neighbor graph has both dense and sparse regions.
TransactionDataset RandomDataset(uint64_t seed, size_t scale) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {30 * scale, 20 * scale, 15 * scale};
  gen.items_per_cluster = {12, 10, 14};
  gen.num_outliers = 5 * scale;
  gen.seed = seed;
  return std::move(GenerateBasketData(gen)).value();
}

void ExpectGraphsIdentical(const NeighborGraph& serial,
                           const NeighborGraph& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.nbrlist[i], parallel.nbrlist[i]) << "row " << i;
  }
}

void ExpectLinksIdentical(const LinkMatrix& serial,
                          const LinkMatrix& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial.NumNonZeroPairs(), parallel.NumNonZeroPairs());
  EXPECT_EQ(serial.TotalLinks(), parallel.TotalLinks());
  for (size_t i = 0; i < serial.size(); ++i) {
    const auto& row = serial.Row(static_cast<PointIndex>(i));
    ASSERT_EQ(row.size(), parallel.Row(static_cast<PointIndex>(i)).size())
        << "row " << i;
    for (const auto& [j, count] : row) {
      EXPECT_EQ(parallel.Count(static_cast<PointIndex>(i), j), count)
          << "entry (" << i << ", " << j << ")";
    }
  }
}

// θ × thread-count grid over a randomized dataset.
class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(DifferentialTest, ParallelMatchesSerial) {
  const auto [theta, threads] = GetParam();
  const uint64_t seed = 20260806;
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = RandomDataset(seed, 2);
  TransactionJaccard sim(ds);

  auto serial = ComputeNeighbors(sim, theta);
  ASSERT_TRUE(serial.ok());
  ParallelOptions par;
  par.num_threads = threads;
  auto parallel = ComputeNeighborsParallel(sim, theta, par);
  ASSERT_TRUE(parallel.ok());
  ExpectGraphsIdentical(*serial, *parallel);

  // The parallel graph must satisfy the structural invariants on its own.
  diag::InvariantReport report;
  diag::CheckNeighborGraph(*parallel, &report);
  EXPECT_TRUE(report.ok()) << report.violations().front().detail;

  const LinkMatrix serial_links = ComputeLinks(*serial);
  const LinkMatrix parallel_links = ComputeLinksParallel(*serial, par);
  ExpectLinksIdentical(serial_links, parallel_links);

  diag::InvariantReport link_report;
  diag::CheckLinkMatrixSymmetry(parallel_links, &link_report);
  diag::CheckLinksMatchGraph(*parallel, parallel_links, &link_report);
  EXPECT_TRUE(link_report.ok())
      << link_report.violations().front().detail;
}

INSTANTIATE_TEST_SUITE_P(
    ThetaByThreads, DifferentialTest,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{4},
                                         size_t{8})),
    [](const ::testing::TestParamInfo<DifferentialTest::ParamType>& param) {
      const double theta = std::get<0>(param.param);
      return "theta" + std::to_string(static_cast<int>(theta * 10)) +
             "_threads" + std::to_string(std::get<1>(param.param));
    });

// Varying seeds at a fixed mid-grid configuration, to shake out schedule-
// dependent bugs that a single dataset might mask.
class DifferentialSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSeedTest, ParallelMatchesSerialAcrossSeeds) {
  const uint64_t seed = GetParam();
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = RandomDataset(seed, 1);
  TransactionJaccard sim(ds);

  auto serial = ComputeNeighbors(sim, 0.5);
  ASSERT_TRUE(serial.ok());
  ParallelOptions par;
  par.num_threads = 4;
  par.row_chunk = 3;  // force many scheduling steps on a small input
  auto parallel = ComputeNeighborsParallel(sim, 0.5, par);
  ASSERT_TRUE(parallel.ok());
  ExpectGraphsIdentical(*serial, *parallel);
  ExpectLinksIdentical(ComputeLinks(*serial),
                       ComputeLinksParallel(*serial, par));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeedTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ------------------------------------------------- merge-engine differential --

// The flat merge engine (CSR rows, sorted-merge relinking, batched heap
// updates) must reproduce the hashed oracle bit for bit: the same merge
// sequence record by record, the same clustering, the same stats. Any
// divergence in the relink algebra or heap ordering shows up as the first
// differing MergeRecord.

void ExpectRunsIdentical(const RockResult& hashed, const RockResult& flat) {
  ASSERT_EQ(hashed.merges.size(), flat.merges.size());
  for (size_t m = 0; m < hashed.merges.size(); ++m) {
    const MergeRecord& a = hashed.merges[m];
    const MergeRecord& b = flat.merges[m];
    ASSERT_EQ(a.left, b.left) << "merge " << m;
    ASSERT_EQ(a.right, b.right) << "merge " << m;
    ASSERT_EQ(a.merged, b.merged) << "merge " << m;
    ASSERT_EQ(a.new_size, b.new_size) << "merge " << m;
    ASSERT_DOUBLE_EQ(a.goodness, b.goodness) << "merge " << m;
  }
  EXPECT_EQ(hashed.clustering.assignment, flat.clustering.assignment);
  ASSERT_EQ(hashed.clustering.num_clusters(), flat.clustering.num_clusters());
  for (size_t c = 0; c < hashed.clustering.num_clusters(); ++c) {
    EXPECT_EQ(hashed.clustering.clusters[c], flat.clustering.clusters[c])
        << "cluster " << c;
  }
  EXPECT_EQ(hashed.stats.num_points, flat.stats.num_points);
  EXPECT_EQ(hashed.stats.num_pruned_points, flat.stats.num_pruned_points);
  EXPECT_EQ(hashed.stats.num_weeded_clusters,
            flat.stats.num_weeded_clusters);
  EXPECT_EQ(hashed.stats.num_weeded_points, flat.stats.num_weeded_points);
  EXPECT_EQ(hashed.stats.num_merges, flat.stats.num_merges);
  EXPECT_DOUBLE_EQ(hashed.stats.criterion_value,
                   flat.stats.criterion_value);
}

// θ × thread-count grid, with outlier pruning and weeding enabled so the
// flat engine's lazy-deletion path is exercised through WeedSmallClusters
// as well as merges. Invariant checking runs in both engines every few
// merges, so each engine's own bookkeeping oracle must also stay clean.
class MergeEngineDifferentialTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(MergeEngineDifferentialTest, FlatMatchesHashedOracle) {
  const auto [theta, threads] = GetParam();
  const uint64_t seed = 20260806;
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = RandomDataset(seed, 2);
  TransactionJaccard sim(ds);

  RockOptions opt;
  opt.theta = theta;
  opt.num_clusters = 3;
  opt.outlier_stop_multiple = 3.0;
  opt.min_cluster_support = 4;
  opt.num_threads = threads;
  opt.row_chunk = 5;  // force many scheduling steps on a small input
  opt.diag.invariant_check_every = 7;

  opt.merge_engine = MergeEngineKind::kHashed;
  auto hashed = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(hashed.ok());
  opt.merge_engine = MergeEngineKind::kFlat;
  auto flat = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(flat.ok());

  ExpectRunsIdentical(*hashed, *flat);
  EXPECT_EQ(hashed->metrics.CounterOr("diag.invariant_violations"), 0u);
  EXPECT_EQ(flat->metrics.CounterOr("diag.invariant_violations"), 0u);
  EXPECT_GT(flat->metrics.CounterOr("diag.invariant_checks"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ThetaByThreads, MergeEngineDifferentialTest,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{4})),
    [](const ::testing::TestParamInfo<
        MergeEngineDifferentialTest::ParamType>& param) {
      const double theta = std::get<0>(param.param);
      return "theta" + std::to_string(static_cast<int>(theta * 10)) +
             "_threads" + std::to_string(std::get<1>(param.param));
    });

// Varying datasets at a fixed grid point: different seeds produce different
// merge orders, weeding patterns, and pruning sets.
class MergeEngineSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeEngineSeedTest, FlatMatchesHashedAcrossDatasets) {
  const uint64_t seed = GetParam();
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = RandomDataset(seed, 1);
  TransactionJaccard sim(ds);

  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 3;
  opt.outlier_stop_multiple = 2.0;
  opt.min_cluster_support = 3;
  opt.diag.invariant_check_every = 5;

  opt.merge_engine = MergeEngineKind::kHashed;
  auto hashed = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(hashed.ok());
  opt.merge_engine = MergeEngineKind::kFlat;
  auto flat = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(flat.ok());

  ExpectRunsIdentical(*hashed, *flat);
  EXPECT_EQ(flat->metrics.CounterOr("diag.invariant_violations"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeEngineSeedTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// Degenerate inputs: a link-free graph (every point isolated → everything
// pruned) and the complete graph (θ = 0, densest relinking possible) must
// agree too, including when weeding is disabled.
TEST(MergeEngineEdgeCaseTest, DegenerateGraphsAgree) {
  TransactionDataset disjoint;
  for (int t = 0; t < 30; ++t) {
    disjoint.AddTransaction({"item_" + std::to_string(2 * t),
                             "item_" + std::to_string(2 * t + 1)});
  }
  const uint64_t seed = 100;
  ROCK_TRACE_SEED(seed);
  TransactionDataset dense = RandomDataset(seed, 1);

  struct Case {
    const char* name;
    const TransactionDataset* ds;
    double theta;
  };
  TransactionJaccard disjoint_sim(disjoint);
  TransactionJaccard dense_sim(dense);
  const Case cases[] = {{"disjoint", &disjoint, 0.5},
                        {"complete", &dense, 0.0}};
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    TransactionJaccard sim(*c.ds);
    RockOptions opt;
    opt.theta = c.theta;
    opt.num_clusters = 2;
    opt.diag.invariant_check_every = 3;
    opt.merge_engine = MergeEngineKind::kHashed;
    auto hashed = RockClusterer(opt).Cluster(sim);
    ASSERT_TRUE(hashed.ok());
    opt.merge_engine = MergeEngineKind::kFlat;
    auto flat = RockClusterer(opt).Cluster(sim);
    ASSERT_TRUE(flat.ok());
    ExpectRunsIdentical(*hashed, *flat);
    EXPECT_EQ(flat->metrics.CounterOr("diag.invariant_violations"), 0u);
  }
}

// ---------------------------------------------- parallel-engine differential --

// The parallel merge engine adds three layers on top of flat — sharded
// relinking, lazy best-cleaning with upper-bound priorities, and periodic
// dead-entry compaction — and every one of them must be invisible in the
// output: same MergeRecords, same clustering, same stats as BOTH oracles,
// at every thread count. merge_shard_min is dropped to 1 so the ~100-point
// datasets actually exercise the sharded path rather than falling back to
// the serial relink.

RockOptions ParallelGridOptions(double theta, size_t threads, bool weeding) {
  RockOptions opt;
  opt.theta = theta;
  opt.num_clusters = 3;
  if (weeding) {
    opt.outlier_stop_multiple = 3.0;
    opt.min_cluster_support = 4;
  }
  opt.merge_threads = threads;
  opt.merge_shard_min = 1;
  opt.diag.invariant_check_every = 7;
  return opt;
}

class ParallelEngineDifferentialTest
    : public ::testing::TestWithParam<std::tuple<double, size_t, bool>> {};

TEST_P(ParallelEngineDifferentialTest, ParallelMatchesBothOracles) {
  const auto [theta, threads, weeding] = GetParam();
  const uint64_t seed = 20260806;
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = RandomDataset(seed, 2);
  TransactionJaccard sim(ds);

  RockOptions opt = ParallelGridOptions(theta, threads, weeding);
  opt.merge_engine = MergeEngineKind::kFlat;
  auto flat = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(flat.ok());
  opt.merge_engine = MergeEngineKind::kHashed;
  auto hashed = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(hashed.ok());
  opt.merge_engine = MergeEngineKind::kParallel;
  auto parallel = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(parallel.ok());

  ExpectRunsIdentical(*flat, *parallel);
  ExpectRunsIdentical(*hashed, *parallel);
  EXPECT_EQ(parallel->metrics.CounterOr("diag.invariant_violations"), 0u);
  EXPECT_GT(parallel->metrics.CounterOr("diag.invariant_checks"), 0u);
  if (threads > 1 && parallel->stats.num_merges > 0) {
    // Sharding must actually have run — a silent serial fallback would
    // make this grid vacuous.
    EXPECT_GT(parallel->metrics.CounterOr("merge.shards"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThetaByThreadsByWeeding, ParallelEngineDifferentialTest,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(size_t{1}, size_t{4}, size_t{8}),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<
        ParallelEngineDifferentialTest::ParamType>& param) {
      const double theta = std::get<0>(param.param);
      return "theta" + std::to_string(static_cast<int>(theta * 10)) +
             "_threads" + std::to_string(std::get<1>(param.param)) +
             (std::get<2>(param.param) ? "_weeded" : "_unweeded");
    });

// Varying datasets at the most adversarial grid point (8 threads on ~70
// points, weeding on): different seeds shuffle the merge order, the dirty/
// clean pattern of the lazy best-cleaning, and the shard boundaries.
class ParallelEngineSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEngineSeedTest, ParallelMatchesFlatAcrossDatasets) {
  const uint64_t seed = GetParam();
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = RandomDataset(seed, 1);
  TransactionJaccard sim(ds);

  RockOptions opt = ParallelGridOptions(0.5, 8, true);
  opt.outlier_stop_multiple = 2.0;
  opt.min_cluster_support = 3;
  opt.diag.invariant_check_every = 5;

  opt.merge_engine = MergeEngineKind::kFlat;
  auto flat = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(flat.ok());
  opt.merge_engine = MergeEngineKind::kParallel;
  auto parallel = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(parallel.ok());

  ExpectRunsIdentical(*flat, *parallel);
  EXPECT_EQ(parallel->metrics.CounterOr("diag.invariant_violations"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEngineSeedTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// Degenerate graphs under the parallel engine: a link-free graph (every
// merge candidate pruned away), the complete graph at θ = 0 (densest rows,
// maximal shard counts), and a hub-and-spokes dataset where one point
// neighbors everyone (one giant row next to width-1 rows — the worst case
// for shard boundary placement).
TEST(ParallelEngineEdgeCaseTest, DegenerateGraphsAgree) {
  TransactionDataset disjoint;
  for (int t = 0; t < 30; ++t) {
    disjoint.AddTransaction({"item_" + std::to_string(2 * t),
                             "item_" + std::to_string(2 * t + 1)});
  }
  const uint64_t seed = 100;
  ROCK_TRACE_SEED(seed);
  TransactionDataset dense = RandomDataset(seed, 1);
  TransactionDataset star;
  star.AddTransaction({"hub_a", "hub_b"});
  for (int t = 0; t < 24; ++t) {
    star.AddTransaction({"hub_a", "spoke_" + std::to_string(t)});
  }

  struct Case {
    const char* name;
    const TransactionDataset* ds;
    double theta;
  };
  const Case cases[] = {{"disjoint", &disjoint, 0.5},
                        {"complete", &dense, 0.0},
                        {"star", &star, 0.3}};
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    TransactionJaccard sim(*c.ds);
    RockOptions opt = ParallelGridOptions(c.theta, 8, false);
    opt.num_clusters = 2;
    opt.diag.invariant_check_every = 3;
    opt.merge_engine = MergeEngineKind::kFlat;
    auto flat = RockClusterer(opt).Cluster(sim);
    ASSERT_TRUE(flat.ok());
    opt.merge_engine = MergeEngineKind::kParallel;
    auto parallel = RockClusterer(opt).Cluster(sim);
    ASSERT_TRUE(parallel.ok());
    ExpectRunsIdentical(*flat, *parallel);
    EXPECT_EQ(parallel->metrics.CounterOr("diag.invariant_violations"), 0u);
  }
}

// ------------------------------------------------- link-engine differential --

// The bit-plane link engine must be invisible to everything downstream:
// with the link rows byte-identical, the merge sequence, clustering, stats
// and labels of a full run cannot depend on --link-engine. Exercised across
// both merge engines (flat probes frozen CSR rows, hashed probes the lazily
// materialized hash rows) so both row representations of the packed output
// are covered end to end.
class LinkEngineClusterDifferentialTest
    : public ::testing::TestWithParam<std::tuple<double, MergeEngineKind>> {};

TEST_P(LinkEngineClusterDifferentialTest, PackedMatchesHashedEndToEnd) {
  const auto [theta, merge_engine] = GetParam();
  const uint64_t seed = 20260808;
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = RandomDataset(seed, 2);
  TransactionJaccard sim(ds);

  RockOptions opt;
  opt.theta = theta;
  opt.num_clusters = 3;
  opt.outlier_stop_multiple = 3.0;
  opt.min_cluster_support = 4;
  opt.num_threads = 4;
  opt.row_chunk = 5;
  opt.diag.invariant_check_every = 7;
  opt.merge_engine = merge_engine;

  opt.link_engine = LinkEngineKind::kHashed;
  auto hashed = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(hashed.ok());
  opt.link_engine = LinkEngineKind::kPacked;
  auto packed = RockClusterer(opt).Cluster(sim);
  ASSERT_TRUE(packed.ok());

  ExpectRunsIdentical(*hashed, *packed);
  EXPECT_EQ(packed->metrics.CounterOr("diag.invariant_violations"), 0u);

  // Engine-selection accounting: only the packed run packs bit planes, and
  // its candidate enumeration is exact (every candidate pair is stored).
  EXPECT_EQ(packed->metrics.CounterOr("links.fallback_hashed"), 0u);
  EXPECT_EQ(packed->metrics.CounterOr("links.candidate_pairs"),
            packed->metrics.CounterOr("links.pairs_counted"));
  ASSERT_NE(packed->metrics.FindTimer("stage.links.pack"), nullptr);
  EXPECT_EQ(hashed->metrics.FindTimer("stage.links.pack"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    ThetaByMergeEngine, LinkEngineClusterDifferentialTest,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(MergeEngineKind::kFlat,
                                         MergeEngineKind::kHashed)),
    [](const ::testing::TestParamInfo<
        LinkEngineClusterDifferentialTest::ParamType>& param) {
      const double theta = std::get<0>(param.param);
      return "theta" + std::to_string(static_cast<int>(theta * 10)) +
             (std::get<1>(param.param) == MergeEngineKind::kFlat ? "_flat"
                                                                 : "_hashed");
    });

// Full disk pipeline: --link-engine packed vs hashed must deliver identical
// MergeRecords and final labels, including when a packed run crashes at a
// checkpoint and is resumed with the *other* engine — the link engine is
// below the checkpoint's fingerprint, so a cross-engine resume must still
// reproduce the uninterrupted run bit for bit.
class LinkEnginePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::Clear();
    const auto dir = std::filesystem::temp_directory_path();
    const std::string pid = std::to_string(::getpid());
    store_path_ = (dir / ("rock_linkdiff_store_" + pid + ".bin")).string();
    ckpt_path_ = (dir / ("rock_linkdiff_ckpt_" + pid + ".bin")).string();

    // Three well-separated transaction groups (disjoint item ranges) so the
    // sample clusters cleanly and labeling is deterministic.
    Rng rng(0x1b1b);
    TransactionDataset data;
    for (size_t i = 0; i < 120; ++i) {
      const uint32_t group = static_cast<uint32_t>(i % 3);
      std::vector<ItemId> items;
      const size_t k = 4 + static_cast<size_t>(rng.UniformUint64(4));
      for (size_t j = 0; j < k; ++j) {
        items.push_back(group * 100 +
                        static_cast<ItemId>(rng.UniformUint64(20)));
      }
      data.AddTransaction(Transaction(std::move(items)));
      data.labels().Append("g" + std::to_string(group));
    }
    ASSERT_TRUE(WriteDatasetToStore(data, store_path_).ok());
  }

  void TearDown() override {
    fail::Clear();
    std::remove(store_path_.c_str());
    std::remove(ckpt_path_.c_str());
    std::remove((ckpt_path_ + ".tmp").c_str());
  }

  PipelineOptions Options(LinkEngineKind engine) const {
    PipelineOptions opt;
    opt.rock.theta = 0.5;
    opt.rock.num_clusters = 3;
    opt.rock.link_engine = engine;
    opt.sample_size = 60;
    opt.seed = 2026;
    opt.labeling.seed = 11;
    return opt;
  }

  static void ExpectPipelinesIdentical(const PipelineResult& a,
                                       const PipelineResult& b) {
    EXPECT_EQ(a.sample_rows, b.sample_rows);
    EXPECT_EQ(a.sample_result.clustering.assignment,
              b.sample_result.clustering.assignment);
    EXPECT_EQ(a.sample_result.clustering.clusters,
              b.sample_result.clustering.clusters);
    ASSERT_EQ(a.sample_result.merges.size(), b.sample_result.merges.size());
    for (size_t m = 0; m < a.sample_result.merges.size(); ++m) {
      const MergeRecord& x = a.sample_result.merges[m];
      const MergeRecord& y = b.sample_result.merges[m];
      ASSERT_EQ(x.left, y.left) << "merge " << m;
      ASSERT_EQ(x.right, y.right) << "merge " << m;
      ASSERT_EQ(x.merged, y.merged) << "merge " << m;
      ASSERT_EQ(x.new_size, y.new_size) << "merge " << m;
      ASSERT_DOUBLE_EQ(x.goodness, y.goodness) << "merge " << m;
    }
    EXPECT_EQ(a.labeling.assignments, b.labeling.assignments);
    EXPECT_EQ(a.labeling.num_outliers, b.labeling.num_outliers);
  }

  std::string store_path_;
  std::string ckpt_path_;
};

TEST_F(LinkEnginePipelineTest, PackedAndHashedPipelinesAreIdentical) {
  auto packed = RunRockPipeline(store_path_, Options(LinkEngineKind::kPacked));
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  auto hashed = RunRockPipeline(store_path_, Options(LinkEngineKind::kHashed));
  ASSERT_TRUE(hashed.ok()) << hashed.status().ToString();
  ExpectPipelinesIdentical(*packed, *hashed);
}

TEST_F(LinkEnginePipelineTest, CrossEngineResumeMatchesUninterruptedRun) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto baseline =
      RunRockPipeline(store_path_, Options(LinkEngineKind::kHashed));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Crash a packed-engine run at its second checkpoint write...
  auto crashed_opt = Options(LinkEngineKind::kPacked);
  crashed_opt.checkpoint_path = ckpt_path_;
  crashed_opt.rock.failpoints = "pipeline.checkpoint=fire_on_hit_2:crash";
  auto crashed = RunRockPipeline(store_path_, crashed_opt);
  ASSERT_FALSE(crashed.ok()) << "the injected crash must abort the run";
  ASSERT_TRUE(fail::IsInjectedCrash(crashed.status()))
      << crashed.status().ToString();

  // ...then "restart the process" and resume with the hashed engine.
  fail::Clear();
  auto resumed_opt = Options(LinkEngineKind::kHashed);
  resumed_opt.checkpoint_path = ckpt_path_;
  resumed_opt.resume = true;
  auto resumed = RunRockPipeline(store_path_, resumed_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  ExpectPipelinesIdentical(*resumed, *baseline);

  // And the mirror image: hashed crash, packed resume.
  auto crashed2_opt = Options(LinkEngineKind::kHashed);
  crashed2_opt.checkpoint_path = ckpt_path_;
  crashed2_opt.rock.failpoints = "pipeline.checkpoint=fire_on_hit_2:crash";
  auto crashed2 = RunRockPipeline(store_path_, crashed2_opt);
  ASSERT_FALSE(crashed2.ok());
  ASSERT_TRUE(fail::IsInjectedCrash(crashed2.status()));
  fail::Clear();
  auto resumed2_opt = Options(LinkEngineKind::kPacked);
  resumed2_opt.checkpoint_path = ckpt_path_;
  resumed2_opt.resume = true;
  auto resumed2 = RunRockPipeline(store_path_, resumed2_opt);
  ASSERT_TRUE(resumed2.ok()) << resumed2.status().ToString();
  EXPECT_TRUE(resumed2->resumed);
  ExpectPipelinesIdentical(*resumed2, *baseline);
}

// Crash/resume across *merge* engines: a run that crashes mid-pipeline
// under the sharded parallel engine must resume under the flat oracle into
// the exact uninterrupted result, and vice versa — the merge engine, like
// the link engine, lives below the checkpoint fingerprint.
TEST_F(LinkEnginePipelineTest, ParallelMergeResumeMatchesUninterruptedRun) {
  if (!fail::BuildEnabled()) GTEST_SKIP() << "failpoints compiled out";
  auto baseline_opt = Options(LinkEngineKind::kHashed);
  baseline_opt.rock.merge_engine = MergeEngineKind::kFlat;
  auto baseline = RunRockPipeline(store_path_, baseline_opt);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Crash a sharded parallel-engine run at its second checkpoint write...
  auto crashed_opt = Options(LinkEngineKind::kHashed);
  crashed_opt.rock.merge_engine = MergeEngineKind::kParallel;
  crashed_opt.rock.merge_threads = 4;
  crashed_opt.rock.merge_shard_min = 1;
  crashed_opt.checkpoint_path = ckpt_path_;
  crashed_opt.rock.failpoints = "pipeline.checkpoint=fire_on_hit_2:crash";
  auto crashed = RunRockPipeline(store_path_, crashed_opt);
  ASSERT_FALSE(crashed.ok()) << "the injected crash must abort the run";
  ASSERT_TRUE(fail::IsInjectedCrash(crashed.status()))
      << crashed.status().ToString();

  // ...then resume it with the flat engine.
  fail::Clear();
  auto resumed_opt = Options(LinkEngineKind::kHashed);
  resumed_opt.rock.merge_engine = MergeEngineKind::kFlat;
  resumed_opt.checkpoint_path = ckpt_path_;
  resumed_opt.resume = true;
  auto resumed = RunRockPipeline(store_path_, resumed_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  ExpectPipelinesIdentical(*resumed, *baseline);

  // Mirror image: flat crash, sharded parallel resume at 8 threads.
  auto crashed2_opt = Options(LinkEngineKind::kHashed);
  crashed2_opt.rock.merge_engine = MergeEngineKind::kFlat;
  crashed2_opt.checkpoint_path = ckpt_path_;
  crashed2_opt.rock.failpoints = "pipeline.checkpoint=fire_on_hit_2:crash";
  auto crashed2 = RunRockPipeline(store_path_, crashed2_opt);
  ASSERT_FALSE(crashed2.ok());
  ASSERT_TRUE(fail::IsInjectedCrash(crashed2.status()));
  fail::Clear();
  auto resumed2_opt = Options(LinkEngineKind::kHashed);
  resumed2_opt.rock.merge_engine = MergeEngineKind::kParallel;
  resumed2_opt.rock.merge_threads = 8;
  resumed2_opt.rock.merge_shard_min = 1;
  resumed2_opt.checkpoint_path = ckpt_path_;
  resumed2_opt.resume = true;
  auto resumed2 = RunRockPipeline(store_path_, resumed2_opt);
  ASSERT_TRUE(resumed2.ok()) << resumed2.status().ToString();
  EXPECT_TRUE(resumed2->resumed);
  ExpectPipelinesIdentical(*resumed2, *baseline);
}

// ------------------------------------------------------------- edge cases --

// Pairwise-disjoint transactions → Jaccard 0 for every pair → empty
// neighbor graph at any θ > 0, zero links.
TEST(DifferentialEdgeCaseTest, EmptyGraph) {
  TransactionDataset ds;
  for (int t = 0; t < 40; ++t) {
    ds.AddTransaction({"item_" + std::to_string(2 * t),
                       "item_" + std::to_string(2 * t + 1)});
  }
  TransactionJaccard sim(ds);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelOptions par;
    par.num_threads = threads;
    auto serial = ComputeNeighbors(sim, 0.5);
    ASSERT_TRUE(serial.ok());
    auto parallel = ComputeNeighborsParallel(sim, 0.5, par);
    ASSERT_TRUE(parallel.ok());
    ExpectGraphsIdentical(*serial, *parallel);
    EXPECT_EQ(parallel->NumEdges(), 0u);
    const LinkMatrix links = ComputeLinksParallel(*parallel, par);
    EXPECT_EQ(links.NumNonZeroPairs(), 0u);
    EXPECT_EQ(links.TotalLinks(), 0u);
    ExpectLinksIdentical(ComputeLinks(*serial), links);
  }
}

// θ = 0 → every pair of points is a neighbor (complete graph): the densest
// possible link structure, n−2 links on every pair.
TEST(DifferentialEdgeCaseTest, AllNeighborsGraph) {
  const uint64_t seed = 100;
  ROCK_TRACE_SEED(seed);
  TransactionDataset ds = RandomDataset(seed, 1);
  TransactionJaccard sim(ds);
  const size_t n = ds.size();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelOptions par;
    par.num_threads = threads;
    auto serial = ComputeNeighbors(sim, 0.0);
    ASSERT_TRUE(serial.ok());
    auto parallel = ComputeNeighborsParallel(sim, 0.0, par);
    ASSERT_TRUE(parallel.ok());
    ExpectGraphsIdentical(*serial, *parallel);
    EXPECT_EQ(parallel->NumEdges(), n * (n - 1) / 2);
    const LinkMatrix links = ComputeLinksParallel(*parallel, par);
    ExpectLinksIdentical(ComputeLinks(*serial), links);
    // Complete graph: link(i, j) = n − 2 for every pair.
    EXPECT_EQ(links.Count(0, 1), static_cast<LinkCount>(n - 2));
    EXPECT_EQ(links.TotalLinks(),
              static_cast<uint64_t>(n) * (n - 1) / 2 * (n - 2));
  }
}

// Tiny inputs: fewer points than threads, and the empty / single-point /
// two-point graphs must not trip range or scheduling bugs.
TEST(DifferentialEdgeCaseTest, FewerPointsThanThreads) {
  for (size_t n : {0u, 1u, 2u, 3u}) {
    NeighborGraph g;
    g.nbrlist.resize(n);
    if (n >= 2) {
      // Path graph 0 – 1 – … – (n−1).
      for (size_t i = 0; i + 1 < n; ++i) {
        g.nbrlist[i].push_back(static_cast<PointIndex>(i + 1));
        g.nbrlist[i + 1].push_back(static_cast<PointIndex>(i));
      }
      for (auto& row : g.nbrlist) std::sort(row.begin(), row.end());
    }
    ParallelOptions par;
    par.num_threads = 8;
    ExpectLinksIdentical(ComputeLinks(g), ComputeLinksParallel(g, par));
  }
}

}  // namespace
}  // namespace rock
