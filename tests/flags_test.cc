// Tests for util/flags.h — the typed flag parser behind rock_cli.

#include <gtest/gtest.h>

#include "util/flags.h"

namespace rock {
namespace {

struct Bound {
  std::string name = "default";
  double ratio = 0.5;
  int64_t count = -3;
  size_t size = 7;
  bool verbose = false;

  FlagSet MakeFlags() {
    FlagSet f;
    f.AddString("name", &name, "a name");
    f.AddDouble("ratio", &ratio, "a ratio");
    f.AddInt("count", &count, "a count");
    f.AddSize("size", &size, "a size");
    f.AddBool("verbose", &verbose, "talk more");
    return f;
  }
};

TEST(FlagsTest, ParsesEqualsSyntax) {
  Bound b;
  FlagSet f = b.MakeFlags();
  ASSERT_TRUE(f.Parse({"--name=rock", "--ratio=0.73", "--count=-9",
                       "--size=42", "--verbose=true"})
                  .ok());
  EXPECT_EQ(b.name, "rock");
  EXPECT_DOUBLE_EQ(b.ratio, 0.73);
  EXPECT_EQ(b.count, -9);
  EXPECT_EQ(b.size, 42u);
  EXPECT_TRUE(b.verbose);
}

TEST(FlagsTest, ParsesSpaceSyntax) {
  Bound b;
  FlagSet f = b.MakeFlags();
  ASSERT_TRUE(f.Parse({"--name", "linked", "--ratio", "1.5"}).ok());
  EXPECT_EQ(b.name, "linked");
  EXPECT_DOUBLE_EQ(b.ratio, 1.5);
}

TEST(FlagsTest, BareBoolAndNegation) {
  Bound b;
  FlagSet f = b.MakeFlags();
  ASSERT_TRUE(f.Parse({"--verbose"}).ok());
  EXPECT_TRUE(b.verbose);
  ASSERT_TRUE(f.Parse({"--no-verbose"}).ok());
  EXPECT_FALSE(b.verbose);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  Bound b;
  FlagSet f = b.MakeFlags();
  ASSERT_TRUE(f.Parse({"cluster", "--size=3", "input.csv"}).ok());
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"cluster", "input.csv"}));
}

TEST(FlagsTest, UnknownFlagFails) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Parse({"--bogus=1"}).IsInvalidArgument());
}

TEST(FlagsTest, BadValueFails) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Parse({"--ratio=abc"}).IsInvalidArgument());
  EXPECT_TRUE(f.Parse({"--count=1.5"}).IsInvalidArgument());
  EXPECT_TRUE(f.Parse({"--size=-2"}).IsInvalidArgument());
  EXPECT_TRUE(f.Parse({"--verbose=maybe"}).IsInvalidArgument());
}

TEST(FlagsTest, MissingValueFails) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Parse({"--name"}).IsInvalidArgument());
}

TEST(FlagsTest, NoNegationWithValueFails) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Parse({"--no-verbose=true"}).IsInvalidArgument());
}

TEST(FlagsTest, BoolTokens) {
  Bound b;
  FlagSet f = b.MakeFlags();
  for (const char* token : {"true", "1", "yes", "on"}) {
    b.verbose = false;
    ASSERT_TRUE(f.Parse({std::string("--verbose=") + token}).ok());
    EXPECT_TRUE(b.verbose) << token;
  }
  for (const char* token : {"false", "0", "no", "off"}) {
    b.verbose = true;
    ASSERT_TRUE(f.Parse({std::string("--verbose=") + token}).ok());
    EXPECT_FALSE(b.verbose) << token;
  }
}

TEST(FlagsTest, HelpListsFlagsWithDefaults) {
  Bound b;
  FlagSet f = b.MakeFlags();
  const std::string help = f.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("default: default"), std::string::npos);
  EXPECT_NE(help.find("--ratio"), std::string::npos);
  EXPECT_NE(help.find("talk more"), std::string::npos);
}

TEST(FlagsTest, HasChecksRegistration) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Has("name"));
  EXPECT_FALSE(f.Has("bogus"));
}

// Regression: strtod parses "nan"/"inf", and a NaN theta sails through
// every downstream `x >= lo && x <= hi` range check. The parser must
// refuse non-finite doubles outright.
TEST(FlagsTest, NonFiniteDoublesRejected) {
  Bound b;
  FlagSet f = b.MakeFlags();
  for (const char* bad : {"nan", "NaN", "-nan", "inf", "INF", "-inf",
                          "infinity", "1e999"}) {
    b.ratio = 0.5;
    EXPECT_TRUE(f.Parse({std::string("--ratio=") + bad}).IsInvalidArgument())
        << bad;
    EXPECT_DOUBLE_EQ(b.ratio, 0.5) << bad << " clobbered the destination";
  }
  // Ordinary extremes still parse.
  ASSERT_TRUE(f.Parse({"--ratio=-1e300"}).ok());
  EXPECT_DOUBLE_EQ(b.ratio, -1e300);
}

TEST(FlagsDeathTest, DuplicateRegistrationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string a;
  std::string b;
  EXPECT_DEATH(
      {
        FlagSet f;
        f.AddString("store", &a, "first");
        f.AddString("store", &b, "second");
      },
      "duplicate flag --store");
}

TEST(FlagsTest, EmptyValueAfterEqualsIsAccepted) {
  Bound b;
  FlagSet f = b.MakeFlags();
  // "--name=" explicitly sets the string flag to empty...
  ASSERT_TRUE(f.Parse({"--name="}).ok());
  EXPECT_EQ(b.name, "");
  // ...but an empty token is not a number or a bool.
  EXPECT_TRUE(f.Parse({"--ratio="}).IsInvalidArgument());
  EXPECT_TRUE(f.Parse({"--count="}).IsInvalidArgument());
  EXPECT_TRUE(f.Parse({"--verbose="}).IsInvalidArgument());
}

TEST(FlagsTest, NoNegationOnNonBoolIsUnknownFlag) {
  Bound b;
  FlagSet f = b.MakeFlags();
  // --no-name: "name" exists but is not a bool, and no flag is literally
  // called "no-name" — that is an unknown flag, not a silent no-op.
  EXPECT_TRUE(f.Parse({"--no-name"}).IsInvalidArgument());
  EXPECT_TRUE(f.Parse({"--no-ratio=0.5"}).IsInvalidArgument());
  // A flag whose registered name starts with "no-" still parses normally.
  bool cache = true;
  f.AddBool("no-cache", &cache, "registered with the prefix");
  ASSERT_TRUE(f.Parse({"--no-cache=false"}).ok());
  EXPECT_FALSE(cache);
}

TEST(FlagsTest, BareBoolDoesNotConsumeNextToken) {
  Bound b;
  FlagSet f = b.MakeFlags();
  // A bool flag never eats the following token as its value; the stray
  // token lands in positional() instead.
  ASSERT_TRUE(f.Parse({"--verbose", "input.csv"}).ok());
  EXPECT_TRUE(b.verbose);
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"input.csv"}));
}

TEST(FlagsTest, IntegerOverflowRejected) {
  Bound b;
  FlagSet f = b.MakeFlags();
  // One past INT64_MAX / a 21-digit size: from_chars reports out-of-range
  // and the parse must fail rather than wrap.
  EXPECT_TRUE(f.Parse({"--count=9223372036854775808"}).IsInvalidArgument());
  EXPECT_TRUE(
      f.Parse({"--size=184467440737095516160"}).IsInvalidArgument());
  EXPECT_EQ(b.count, -3);
  EXPECT_EQ(b.size, 7u);
  // The exact extremes still parse.
  ASSERT_TRUE(f.Parse({"--count=9223372036854775807"}).ok());
  EXPECT_EQ(b.count, INT64_MAX);
  ASSERT_TRUE(f.Parse({"--count=-9223372036854775808"}).ok());
  EXPECT_EQ(b.count, INT64_MIN);
}

}  // namespace
}  // namespace rock
