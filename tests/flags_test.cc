// Tests for util/flags.h — the typed flag parser behind rock_cli.

#include <gtest/gtest.h>

#include "util/flags.h"

namespace rock {
namespace {

struct Bound {
  std::string name = "default";
  double ratio = 0.5;
  int64_t count = -3;
  size_t size = 7;
  bool verbose = false;

  FlagSet MakeFlags() {
    FlagSet f;
    f.AddString("name", &name, "a name");
    f.AddDouble("ratio", &ratio, "a ratio");
    f.AddInt("count", &count, "a count");
    f.AddSize("size", &size, "a size");
    f.AddBool("verbose", &verbose, "talk more");
    return f;
  }
};

TEST(FlagsTest, ParsesEqualsSyntax) {
  Bound b;
  FlagSet f = b.MakeFlags();
  ASSERT_TRUE(f.Parse({"--name=rock", "--ratio=0.73", "--count=-9",
                       "--size=42", "--verbose=true"})
                  .ok());
  EXPECT_EQ(b.name, "rock");
  EXPECT_DOUBLE_EQ(b.ratio, 0.73);
  EXPECT_EQ(b.count, -9);
  EXPECT_EQ(b.size, 42u);
  EXPECT_TRUE(b.verbose);
}

TEST(FlagsTest, ParsesSpaceSyntax) {
  Bound b;
  FlagSet f = b.MakeFlags();
  ASSERT_TRUE(f.Parse({"--name", "linked", "--ratio", "1.5"}).ok());
  EXPECT_EQ(b.name, "linked");
  EXPECT_DOUBLE_EQ(b.ratio, 1.5);
}

TEST(FlagsTest, BareBoolAndNegation) {
  Bound b;
  FlagSet f = b.MakeFlags();
  ASSERT_TRUE(f.Parse({"--verbose"}).ok());
  EXPECT_TRUE(b.verbose);
  ASSERT_TRUE(f.Parse({"--no-verbose"}).ok());
  EXPECT_FALSE(b.verbose);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  Bound b;
  FlagSet f = b.MakeFlags();
  ASSERT_TRUE(f.Parse({"cluster", "--size=3", "input.csv"}).ok());
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"cluster", "input.csv"}));
}

TEST(FlagsTest, UnknownFlagFails) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Parse({"--bogus=1"}).IsInvalidArgument());
}

TEST(FlagsTest, BadValueFails) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Parse({"--ratio=abc"}).IsInvalidArgument());
  EXPECT_TRUE(f.Parse({"--count=1.5"}).IsInvalidArgument());
  EXPECT_TRUE(f.Parse({"--size=-2"}).IsInvalidArgument());
  EXPECT_TRUE(f.Parse({"--verbose=maybe"}).IsInvalidArgument());
}

TEST(FlagsTest, MissingValueFails) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Parse({"--name"}).IsInvalidArgument());
}

TEST(FlagsTest, NoNegationWithValueFails) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Parse({"--no-verbose=true"}).IsInvalidArgument());
}

TEST(FlagsTest, BoolTokens) {
  Bound b;
  FlagSet f = b.MakeFlags();
  for (const char* token : {"true", "1", "yes", "on"}) {
    b.verbose = false;
    ASSERT_TRUE(f.Parse({std::string("--verbose=") + token}).ok());
    EXPECT_TRUE(b.verbose) << token;
  }
  for (const char* token : {"false", "0", "no", "off"}) {
    b.verbose = true;
    ASSERT_TRUE(f.Parse({std::string("--verbose=") + token}).ok());
    EXPECT_FALSE(b.verbose) << token;
  }
}

TEST(FlagsTest, HelpListsFlagsWithDefaults) {
  Bound b;
  FlagSet f = b.MakeFlags();
  const std::string help = f.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("default: default"), std::string::npos);
  EXPECT_NE(help.find("--ratio"), std::string::npos);
  EXPECT_NE(help.find("talk more"), std::string::npos);
}

TEST(FlagsTest, HasChecksRegistration) {
  Bound b;
  FlagSet f = b.MakeFlags();
  EXPECT_TRUE(f.Has("name"));
  EXPECT_FALSE(f.Has("bogus"));
}

}  // namespace
}  // namespace rock
