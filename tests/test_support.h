// tests/test_support.h — shared helpers for librock's test suite.
//
// Seed discipline: every randomized test announces its RNG seed so that any
// red run can be reproduced from its log alone. ROCK_TRACE_SEED attaches the
// seed to every gtest failure raised in the current scope (SCOPED_TRACE);
// ROCK_SEEDED_RNG declares a traced rock::Rng in one line. Default-
// constructed RNGs are banned in tests — always pass an explicit seed
// through one of these macros.

#ifndef ROCK_TESTS_TEST_SUPPORT_H_
#define ROCK_TESTS_TEST_SUPPORT_H_

#include <gtest/gtest.h>

#include <cstdint>

#include "common/random.h"

/// Attaches "RNG seed = N" to every failure message in the current scope.
#define ROCK_TRACE_SEED(seed) \
  SCOPED_TRACE(::testing::Message() << "RNG seed = " << (seed))

/// Declares `rock::Rng var(seed)` and traces the seed on failure.
#define ROCK_SEEDED_RNG(var, seed) \
  ROCK_TRACE_SEED(seed);           \
  ::rock::Rng var(seed)

#endif  // ROCK_TESTS_TEST_SUPPORT_H_
