// Tests for common/: Status, Result, Rng, Timer, string utilities.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "test_support.h"

namespace rock {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("theta out of range");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "theta out of range");
  EXPECT_EQ(s.ToString(), "InvalidArgument: theta out of range");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = [] { return Status::NotFound("gone"); };
  auto outer = [&]() -> Status {
    ROCK_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk on fire"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForEqualSeeds) {
  ROCK_TRACE_SEED(123);
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  ROCK_TRACE_SEED(1);
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformUint64RespectsBound) {
  ROCK_SEEDED_RNG(rng, 7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformUint64CoversAllResidues) {
  ROCK_SEEDED_RNG(rng, 11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformUint64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  ROCK_SEEDED_RNG(rng, 3);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  ROCK_SEEDED_RNG(rng, 5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalHasSaneMoments) {
  ROCK_SEEDED_RNG(rng, 9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  ROCK_SEEDED_RNG(rng, 13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  ROCK_SEEDED_RNG(rng, 17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctSubset) {
  ROCK_SEEDED_RNG(rng, 19);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.SampleWithoutReplacement(100, 30);
    std::set<size_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 30u);
    for (size_t x : s) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  ROCK_SEEDED_RNG(rng, 21);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementIsUnbiased) {
  // Each element of [0,10) should land in a 3-sample ~ 30% of the time.
  ROCK_SEEDED_RNG(rng, 23);
  std::vector<int> hits(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t x : rng.SampleWithoutReplacement(10, 3)) ++hits[x];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.3, 0.02);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  ROCK_TRACE_SEED(31);
  Rng a(31);
  Rng child = a.Fork();
  // The fork and the parent should not produce the same next values.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(SplitMixTest, KnownGolden) {
  // Reference values for splitmix64 seeded with 0 (public-domain vectors).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ULL);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 10.0);
  EXPECT_LT(ms, 5000.0);
}

TEST(TimerTest, RestartResetsOrigin) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 10.0);
}

// ----------------------------------------------------------- string_util --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, SplitSingleField) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, SplitTrailingDelimiter) {
  EXPECT_EQ(Split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(StringUtilTest, TrimRemovesBothEnds) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
}

}  // namespace
}  // namespace rock
