// Tests for cli/cli.h — full in-process runs of the rock CLI commands.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "cli/cli.h"

namespace rock {
namespace {

/// Reads a whole file into a string.
std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Extracts every JSON object key ("..." immediately followed by a colon),
/// masking all values — the golden assertions below pin the schema, not the
/// machine-dependent timings.
std::set<std::string> JsonKeys(const std::string& json) {
  std::set<std::string> keys;
  for (size_t pos = json.find('"'); pos != std::string::npos;
       pos = json.find('"', pos + 1)) {
    const size_t end = json.find('"', pos + 1);
    if (end == std::string::npos) break;
    size_t after = end + 1;
    while (after < json.size() &&
           (json[after] == ' ' || json[after] == '\n')) {
      ++after;
    }
    if (after < json.size() && json[after] == ':') {
      keys.insert(json.substr(pos + 1, end - pos - 1));
    }
    pos = end;
  }
  return keys;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rock_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Runs the CLI and returns (exit code, output).
  std::pair<int, std::string> Run(const std::vector<std::string>& args) {
    std::string out;
    const int code = RunCli(args, &out);
    return {code, out};
  }

 private:
  std::filesystem::path dir_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  auto [code, out] = Run({"help"});
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("usage: rock"), std::string::npos);

  auto [code2, out2] = Run({"frobnicate"});
  EXPECT_EQ(code2, 2);
  EXPECT_NE(out2.find("unknown command"), std::string::npos);

  auto [code3, out3] = Run({});
  EXPECT_EQ(code3, 2);
}

TEST_F(CliTest, SubcommandHelp) {
  for (const char* cmd :
       {"gen", "cluster", "pipeline", "build", "serve", "query", "sweep"}) {
    auto [code, out] = Run({cmd, "--help"});
    EXPECT_EQ(code, 0) << cmd;
    EXPECT_NE(out.find("--"), std::string::npos) << cmd;
  }
}

TEST_F(CliTest, GenVotesThenClusterRock) {
  auto [gcode, gout] = Run({"gen", "--dataset=votes",
                            "--out=" + Path("votes.csv")});
  ASSERT_EQ(gcode, 0) << gout;
  EXPECT_NE(gout.find("435 records"), std::string::npos);

  auto [ccode, cout] =
      Run({"cluster", "--input=" + Path("votes.csv"), "--theta=0.73",
           "--k=2", "--stop-multiple=3", "--min-support=5",
           "--assignments=" + Path("assign.csv")});
  ASSERT_EQ(ccode, 0) << cout;
  EXPECT_NE(cout.find("clusters: 2"), std::string::npos);
  EXPECT_NE(cout.find("purity:"), std::string::npos);

  // The assignments file covers all rows with a header.
  std::ifstream assign(Path("assign.csv"));
  std::string line;
  size_t lines = 0;
  while (std::getline(assign, line)) ++lines;
  EXPECT_EQ(lines, 436u);  // header + 435 rows
}

TEST_F(CliTest, ClusterBaselineAlgos) {
  auto [gcode, gout] = Run({"gen", "--dataset=votes",
                            "--out=" + Path("votes.csv")});
  ASSERT_EQ(gcode, 0) << gout;
  for (const char* algo :
       {"centroid", "single-link", "group-average", "kmeans"}) {
    auto [code, out] = Run({"cluster", "--input=" + Path("votes.csv"),
                            "--algo=" + std::string(algo), "--k=2"});
    EXPECT_EQ(code, 0) << algo << ": " << out;
    EXPECT_NE(out.find("clusters:"), std::string::npos) << algo;
  }
}

TEST_F(CliTest, GenBasketThenPipeline) {
  auto [gcode, gout] = Run({"gen", "--dataset=basket", "--scale=0.02",
                            "--out=" + Path("baskets.store")});
  ASSERT_EQ(gcode, 0) << gout;

  auto [pcode, pout] =
      Run({"pipeline", "--store=" + Path("baskets.store"),
           "--sample-size=400", "--theta=0.5", "--k=10",
           "--assignments=" + Path("pipe.csv")});
  ASSERT_EQ(pcode, 0) << pout;
  EXPECT_NE(pout.find("pipeline: sample=400"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(Path("pipe.csv")));
}

TEST_F(CliTest, BuildServeQueryRoundTrip) {
  auto [gcode, gout] = Run({"gen", "--dataset=basket", "--scale=0.02",
                            "--out=" + Path("baskets.store")});
  ASSERT_EQ(gcode, 0) << gout;

  // The batch answer: pipeline assignments for every store row.
  auto [pcode, pout] =
      Run({"pipeline", "--store=" + Path("baskets.store"),
           "--sample-size=400", "--theta=0.5", "--k=10",
           "--assignments=" + Path("batch.csv")});
  ASSERT_EQ(pcode, 0) << pout;

  // Build a model with the same clustering parameters…
  auto [bcode, bout] =
      Run({"build", "--store=" + Path("baskets.store"), "--sample-size=400",
           "--theta=0.5", "--k=10", "--model=" + Path("model.rock")});
  ASSERT_EQ(bcode, 0) << bout;
  EXPECT_NE(bout.find("build: sample=400"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(Path("model.rock")));

  // …then serve the whole store through the query path: the CSV must be
  // byte-identical to the batch pipeline's.
  auto [qcode, qout] =
      Run({"query", "--model=" + Path("model.rock"),
           "--from-store=" + Path("baskets.store"), "--threads=2",
           "--assignments=" + Path("served.csv")});
  ASSERT_EQ(qcode, 0) << qout;
  EXPECT_EQ(Slurp(Path("served.csv")), Slurp(Path("batch.csv")));

  // One-shot query: any answer is fine, but it must be a bare integer.
  auto [ocode, oout] =
      Run({"query", "--model=" + Path("model.rock"), "3", "5", "9"});
  ASSERT_EQ(ocode, 0) << oout;
  EXPECT_FALSE(oout.empty());
  EXPECT_NE(oout.find_first_of("-0123456789"), std::string::npos);
}

TEST_F(CliTest, ServeSpeaksTheLineProtocol) {
  auto [gcode, gout] = Run({"gen", "--dataset=basket", "--scale=0.02",
                            "--out=" + Path("baskets.store")});
  ASSERT_EQ(gcode, 0) << gout;
  auto [bcode, bout] =
      Run({"build", "--store=" + Path("baskets.store"), "--sample-size=400",
           "--theta=0.5", "--k=10", "--model=" + Path("model.rock")});
  ASSERT_EQ(bcode, 0) << bout;

  std::istringstream queries(
      "# comment\n"
      "3 5 9\n"
      "bogus\n");
  std::ostringstream answers;
  std::string out;
  const int code = RunCli({"serve", "--model=" + Path("model.rock"),
                           "--threads=2",
                           "--metrics-json=" + Path("serve.json")},
                          &out, &queries, &answers);
  ASSERT_EQ(code, 0) << out;
  // Protocol answers go to the stream — and only there.
  EXPECT_EQ(out, "");
  std::istringstream lines(answers.str());
  std::string line;
  std::vector<std::string> got;
  while (std::getline(lines, line)) got.push_back(line);
  ASSERT_EQ(got.size(), 2u) << answers.str();
  EXPECT_NE(got[0].find_first_of("-0123456789"), std::string::npos);
  EXPECT_EQ(got[1].substr(0, 4), "ERR:");

  const std::string metrics = Slurp(Path("serve.json"));
  EXPECT_NE(metrics.find("serve.requests"), std::string::npos);
  EXPECT_NE(metrics.find("serve.qps"), std::string::npos);

  // Without streams, serve is a flag error.
  auto [scode, sout] = Run({"serve", "--model=" + Path("model.rock")});
  EXPECT_EQ(scode, 2);
  EXPECT_NE(sout.find("stream"), std::string::npos);
}

TEST_F(CliTest, ClusterStoreInputDirectly) {
  auto [gcode, gout] = Run({"gen", "--dataset=basket", "--scale=0.005",
                            "--out=" + Path("tiny.store")});
  ASSERT_EQ(gcode, 0) << gout;
  auto [code, out] = Run({"cluster", "--input=" + Path("tiny.store"),
                          "--format=store", "--theta=0.5", "--k=10"});
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("transactions"), std::string::npos);
}

TEST_F(CliTest, ClusterBasketTextFormat) {
  {
    std::ofstream f(Path("basket.txt"));
    f << "A milk bread eggs\n"
      << "A milk bread butter\n"
      << "A bread eggs butter\n"
      << "B wine cheese grapes\n"
      << "B wine cheese olives\n"
      << "B cheese grapes olives\n"
      << "\n";
  }
  auto [code, out] =
      Run({"cluster", "--input=" + Path("basket.txt"), "--format=basket",
           "--label-first", "--theta=0.4", "--k=2"});
  ASSERT_EQ(code, 0) << out;
  EXPECT_NE(out.find("clusters: 2"), std::string::npos);
  EXPECT_NE(out.find("purity: 1.0000"), std::string::npos);
}

TEST_F(CliTest, ProfilesFlagPrintsProfiles) {
  auto [gcode, gout] = Run({"gen", "--dataset=votes",
                            "--out=" + Path("votes.csv")});
  ASSERT_EQ(gcode, 0) << gout;
  auto [code, out] = Run({"cluster", "--input=" + Path("votes.csv"),
                          "--theta=0.73", "--k=2", "--profiles"});
  ASSERT_EQ(code, 0) << out;
  EXPECT_NE(out.find("Cluster 1 (size"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreReported) {
  auto [code, out] = Run({"cluster", "--input=/no/such/file.csv"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("error:"), std::string::npos);

  auto [code2, out2] = Run({"cluster"});
  EXPECT_EQ(code2, 2);
  EXPECT_NE(out2.find("--input is required"), std::string::npos);

  auto [code3, out3] = Run({"gen", "--dataset=nonsense",
                            "--out=" + Path("x")});
  EXPECT_EQ(code3, 2);

  auto [code4, out4] = Run({"cluster", "--input=x", "--format=weird"});
  EXPECT_EQ(code4, 1);
  EXPECT_NE(out4.find("unknown --format"), std::string::npos);

  auto [code5, out5] = Run({"pipeline"});
  EXPECT_EQ(code5, 2);
}

TEST_F(CliTest, NeighborEngineFlagSelectsAndValidates) {
  auto [gcode, gout] = Run({"gen", "--dataset=votes",
                            "--out=" + Path("votes.csv")});
  ASSERT_EQ(gcode, 0) << gout;
  std::string purity_line;
  for (const char* engine : {"packed", "scalar"}) {
    auto [code, out] = Run({"cluster", "--input=" + Path("votes.csv"),
                            "--theta=0.73", "--k=2",
                            std::string("--neighbor-engine=") + engine});
    ASSERT_EQ(code, 0) << out;
    const size_t pos = out.find("purity:");
    ASSERT_NE(pos, std::string::npos) << out;
    // Engines must agree on the clustering (purity is a function of it).
    const std::string line = out.substr(pos, out.find('\n', pos) - pos);
    if (purity_line.empty()) {
      purity_line = line;
    } else {
      EXPECT_EQ(line, purity_line);
    }
  }
  auto [bcode, bout] = Run({"cluster", "--input=" + Path("votes.csv"),
                            "--neighbor-engine=simd"});
  EXPECT_EQ(bcode, 2);
  EXPECT_NE(bout.find("unknown --neighbor-engine"), std::string::npos);
}

TEST_F(CliTest, GenMushroomScaled) {
  auto [code, out] = Run({"gen", "--dataset=mushroom", "--scale=0.02",
                          "--out=" + Path("mush.csv")});
  ASSERT_EQ(code, 0) << out;
  auto [ccode, cout] = Run({"cluster", "--input=" + Path("mush.csv"),
                            "--theta=0.8", "--k=20"});
  EXPECT_EQ(ccode, 0) << cout;
  EXPECT_NE(cout.find("purity:"), std::string::npos);
}

TEST_F(CliTest, GenFundsCsvWithPairwiseMissing) {
  auto [code, out] = Run({"gen", "--dataset=funds",
                          "--out=" + Path("funds.csv")});
  ASSERT_EQ(code, 0) << out;
  auto [ccode, cout] =
      Run({"cluster", "--input=" + Path("funds.csv"),
           "--similarity=pairwise-missing", "--theta=0.8", "--k=40"});
  EXPECT_EQ(ccode, 0) << cout;
  EXPECT_NE(cout.find("clusters: 40"), std::string::npos);
}


TEST_F(CliTest, ClusterArffInput) {
  {
    std::ofstream f(Path("votes.arff"));
    f << "@relation votes\n"
      << "@attribute issue1 {y,n}\n"
      << "@attribute issue2 {y,n}\n"
      << "@attribute issue3 {y,n}\n"
      << "@attribute class {r,d}\n"
      << "@data\n";
    for (int i = 0; i < 8; ++i) f << "y,y,n,r\n";
    for (int i = 0; i < 8; ++i) f << "n,n,y,d\n";
  }
  auto [code, out] = Run({"cluster", "--input=" + Path("votes.arff"),
                          "--format=arff", "--theta=0.6", "--k=2"});
  ASSERT_EQ(code, 0) << out;
  EXPECT_NE(out.find("clusters: 2"), std::string::npos);
  EXPECT_NE(out.find("purity: 1.0000"), std::string::npos);
}

// Golden schema test for --metrics-json: the key set and stage list must
// stay stable (values are masked — timings are machine-dependent).
TEST_F(CliTest, MetricsJsonGoldenSchema) {
  auto [gcode, gout] = Run({"gen", "--dataset=votes",
                            "--out=" + Path("votes.csv")});
  ASSERT_EQ(gcode, 0) << gout;

  auto [code, out] =
      Run({"cluster", "--input=" + Path("votes.csv"), "--theta=0.73",
           "--k=2", "--stop-multiple=3", "--min-support=5",
           "--check-invariants=8",
           "--metrics-json=" + Path("metrics.json")});
  ASSERT_EQ(code, 0) << out;
  EXPECT_NE(out.find("diag: invariant checks="), std::string::npos);
  EXPECT_NE(out.find("violations=0"), std::string::npos);

  const std::string json = Slurp(Path("metrics.json"));
  ASSERT_FALSE(json.empty());

  // Stage list, with values unmasked — stages are stable across machines.
  EXPECT_NE(json.find("\"stages\": [\"links\", \"links.pack\", \"merge\", "
                      "\"merge.heap\", \"merge.relink\", "
                      "\"merge.relink.parallel\", \"neighbors\", "
                      "\"neighbors.pack\", \"total\"]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"tool\": \"cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);

  // Golden key set (values masked).
  const std::set<std::string> expected = {
      "version",         "tool",
      "stages",          "timers",
      "counters",        "gauges",
      "stage.links",     "stage.links.pack",
      "stage.merge",
      "stage.merge.heap",
      "stage.merge.relink",
      "stage.merge.relink.parallel",
      "stage.neighbors", "stage.neighbors.pack",
      "stage.total",
      "neighbors.pairs_evaluated",
      "neighbors.pairs_pruned",
      "count",           "total_seconds",
      "min_seconds",     "max_seconds",
      "diag.invariant_checks",
      "diag.invariant_violations",
      "graph.points",    "graph.edges",
      "graph.max_degree",
      "graph.threads",
      "prune.isolated_points",
      "links.nonzero_pairs",
      "links.total",
      "links.candidate_pairs",
      "links.pairs_counted",
      "heap.global_peak",
      "heap.local_entries_peak",
      "heap.ops",
      "merge.merges",
      "merge.goodness_updates",
      "merge.relink_partners",
      "merge.relink_dead_skipped",
      "merge.relink_compactions",
      "merge.relink_best_rescans",
      "merge.shards",
      "merge.parallel_relinks",
      "merge.compact_sweeps",
      "merge.threads",
      "weed.clusters",   "weed.points",
      "graph.average_degree",
      "criterion.value",
  };
  EXPECT_EQ(JsonKeys(json), expected);
}

TEST_F(CliTest, MetricsJsonPipeline) {
  auto [gcode, gout] = Run({"gen", "--dataset=basket", "--scale=0.02",
                            "--out=" + Path("baskets.store")});
  ASSERT_EQ(gcode, 0) << gout;
  auto [code, out] =
      Run({"pipeline", "--store=" + Path("baskets.store"),
           "--sample-size=400", "--theta=0.5", "--k=10",
           "--metrics-json=" + Path("pipe_metrics.json")});
  ASSERT_EQ(code, 0) << out;
  const std::string json = Slurp(Path("pipe_metrics.json"));
  EXPECT_NE(json.find("\"tool\": \"pipeline\""), std::string::npos);
  const std::set<std::string> keys = JsonKeys(json);
  for (const char* stage :
       {"stage.sample", "stage.label", "stage.neighbors", "stage.links",
        "stage.merge"}) {
    EXPECT_TRUE(keys.count(stage)) << stage;
  }
  EXPECT_TRUE(keys.count("sample.rows"));
  EXPECT_TRUE(keys.count("label.rows"));
  EXPECT_TRUE(keys.count("label.outliers"));
}

TEST_F(CliTest, MetricsJsonRequiresRockAlgo) {
  auto [gcode, gout] = Run({"gen", "--dataset=votes",
                            "--out=" + Path("votes.csv")});
  ASSERT_EQ(gcode, 0) << gout;
  auto [code, out] = Run({"cluster", "--input=" + Path("votes.csv"),
                          "--algo=kmeans", "--k=2",
                          "--metrics-json=" + Path("m.json")});
  EXPECT_EQ(code, 2);
  EXPECT_NE(out.find("--metrics-json requires --algo=rock"),
            std::string::npos);
}

}  // namespace
}  // namespace rock
