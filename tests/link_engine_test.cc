// tests/link_engine_test.cc — oracle-grade differential harness for the
// bit-plane link engine (graph/link_engine.h).
//
// ComputeLinksPacked must produce byte-identical frozen CSR rows vs three
// independent oracles — the Fig. 4 hashed scatter (ComputeLinks + Freeze),
// the brute-force sorted-intersection path, and the Strassen A² squaring —
// across a θ × seed × thread-count × graph-shape grid, including the
// degenerate shapes (empty graph, star, clique, isolated points, θ ∈
// {0, 1}). The packing-budget boundary is pinned byte by byte: exactly-fits
// packs, one byte short falls back to the hashed scatter (and says so via
// links.fallback_hashed) with identical results either way.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "diag/invariants.h"
#include "diag/metrics.h"
#include "graph/link_engine.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "graph/strassen.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"
#include "test_support.h"

namespace rock {
namespace {

NeighborGraph RandomGraph(uint64_t seed, double theta) {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {40, 30, 20};
  gen.items_per_cluster = {12, 10, 14};
  gen.num_outliers = 8;
  gen.seed = seed;
  TransactionDataset ds = std::move(GenerateBasketData(gen)).value();
  TransactionJaccard sim(ds);
  return std::move(ComputeNeighbors(sim, theta)).value();
}

/// Plane bytes ComputeLinksPacked needs for an n-point graph.
size_t PlaneBytes(size_t n) { return n * ((n + 63) / 64) * sizeof(uint64_t); }

/// The acceptance bar: every frozen CSR row equal element for element —
/// same offsets (row sizes), same partner bytes, same count bytes.
void ExpectFrozenRowsIdentical(const LinkMatrix& got, const LinkMatrix& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_TRUE(got.frozen());
  ASSERT_TRUE(want.frozen());
  for (size_t i = 0; i < got.size(); ++i) {
    const LinkRowSpan g = got.FlatRow(static_cast<PointIndex>(i));
    const LinkRowSpan w = want.FlatRow(static_cast<PointIndex>(i));
    ASSERT_EQ(g.size, w.size) << "row " << i;
    for (size_t e = 0; e < g.size; ++e) {
      ASSERT_EQ(g.partners[e], w.partners[e]) << "row " << i << " entry " << e;
      ASSERT_EQ(g.counts[e], w.counts[e]) << "row " << i << " entry " << e;
    }
  }
  EXPECT_EQ(got.NumNonZeroPairs(), want.NumNonZeroPairs());
  EXPECT_EQ(got.TotalLinks(), want.TotalLinks());
}

/// Cross-checks `packed` against every independent oracle on `graph`, plus
/// the structural invariant oracles.
void ExpectMatchesAllOracles(const NeighborGraph& graph,
                             const LinkMatrix& packed) {
  LinkMatrix hashed = ComputeLinks(graph);
  hashed.Freeze();
  ExpectFrozenRowsIdentical(packed, hashed);

  const LinkMatrix brute = ComputeLinksBruteForce(graph);
  const LinkMatrix strassen = ComputeLinksStrassen(graph);
  ASSERT_EQ(brute.size(), packed.size());
  ASSERT_EQ(strassen.size(), packed.size());
  for (size_t i = 0; i < packed.size(); ++i) {
    const LinkRowSpan row = packed.FlatRow(static_cast<PointIndex>(i));
    ASSERT_EQ(row.size, brute.Row(static_cast<PointIndex>(i)).size())
        << "row " << i;
    for (size_t e = 0; e < row.size; ++e) {
      const auto p = static_cast<PointIndex>(i);
      ASSERT_EQ(row.counts[e], brute.Count(p, row.partners[e]))
          << "entry (" << i << ", " << row.partners[e] << ") vs brute force";
      ASSERT_EQ(row.counts[e], strassen.Count(p, row.partners[e]))
          << "entry (" << i << ", " << row.partners[e] << ") vs Strassen";
    }
  }

  diag::InvariantReport report;
  diag::CheckLinkMatrixSymmetry(packed, &report);
  diag::CheckLinksMatchGraph(graph, packed, &report);
  EXPECT_TRUE(report.ok()) << report.violations().front().detail;
}

// ------------------------------------------------------- differential grid --

// θ × thread-count grid on a randomized graph; every cell checks the packed
// engine against all three oracles and the metric accounting invariant
// candidate_pairs == pairs_counted == stored non-zero pairs.
class LinkEngineGridTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(LinkEngineGridTest, PackedMatchesOraclesAndCountsCandidatesExactly) {
  const auto [theta, threads] = GetParam();
  const uint64_t seed = 20260808;
  ROCK_TRACE_SEED(seed);
  const NeighborGraph graph = RandomGraph(seed, theta);

  diag::MetricsRegistry registry;
  PackedLinkOptions opt;
  opt.num_threads = threads;
  opt.row_chunk = 3;  // force many scheduling steps on a small input
  opt.metrics = &registry;
  const LinkMatrix packed = ComputeLinksPacked(graph, opt);
  ASSERT_TRUE(packed.frozen()) << "packed engine must return a frozen matrix";
  ExpectMatchesAllOracles(graph, packed);

  const diag::RunMetrics m = registry.Snapshot();
  EXPECT_EQ(m.CounterOr("links.fallback_hashed"), 0u);
  EXPECT_EQ(m.CounterOr("links.candidate_pairs"),
            m.CounterOr("links.pairs_counted"))
      << "candidate enumeration must be exact (no wasted popcounts)";
  EXPECT_EQ(m.CounterOr("links.pairs_counted"), packed.NumNonZeroPairs());
  ASSERT_NE(m.FindTimer("stage.links.pack"), nullptr);
  EXPECT_EQ(m.FindTimer("stage.links.pack")->count, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    ThetaByThreads, LinkEngineGridTest,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0),
                       ::testing::Values(size_t{1}, size_t{4}, size_t{8})),
    [](const ::testing::TestParamInfo<LinkEngineGridTest::ParamType>& param) {
      const double theta = std::get<0>(param.param);
      return "theta" + std::to_string(static_cast<int>(theta * 10)) +
             "_threads" + std::to_string(std::get<1>(param.param));
    });

// Varying seeds at a fixed mid-grid configuration; also pins the thread-
// count determinism clause directly (1, 4 and 8 workers byte-identical).
class LinkEngineSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinkEngineSeedTest, ThreadCountsAgreeByteForByteAcrossSeeds) {
  const uint64_t seed = GetParam();
  ROCK_TRACE_SEED(seed);
  const NeighborGraph graph = RandomGraph(seed, 0.5);

  PackedLinkOptions serial;
  const LinkMatrix golden = ComputeLinksPacked(graph, serial);
  ExpectMatchesAllOracles(graph, golden);
  for (size_t threads : {4u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "threads = " << threads);
    PackedLinkOptions opt;
    opt.num_threads = threads;
    opt.row_chunk = 2;
    ExpectFrozenRowsIdentical(ComputeLinksPacked(graph, opt), golden);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkEngineSeedTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

// ------------------------------------------------------- strategy forcing --

// Both counting passes, forced explicitly, must match every oracle on the
// same graphs the grid exercises — independent of which one kAuto would
// have picked — and must report themselves through the metric catalog.
class LinkEngineStrategyTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(LinkEngineStrategyTest, ForcedScatterAndPlaneBothMatchOracles) {
  const auto [theta, threads] = GetParam();
  const uint64_t seed = 20260808;
  ROCK_TRACE_SEED(seed);
  const NeighborGraph graph = RandomGraph(seed, theta);

  for (const PackedLinkStrategy strategy :
       {PackedLinkStrategy::kPlane, PackedLinkStrategy::kScatter}) {
    const bool scatter = strategy == PackedLinkStrategy::kScatter;
    SCOPED_TRACE(scatter ? "scatter" : "plane");
    diag::MetricsRegistry registry;
    PackedLinkOptions opt;
    opt.num_threads = threads;
    opt.row_chunk = 3;
    opt.strategy = strategy;
    opt.metrics = &registry;
    const LinkMatrix packed = ComputeLinksPacked(graph, opt);
    ASSERT_TRUE(packed.frozen());
    ExpectMatchesAllOracles(graph, packed);

    const diag::RunMetrics m = registry.Snapshot();
    EXPECT_EQ(m.CounterOr("links.scatter_pass"), scatter ? 1u : 0u);
    EXPECT_EQ(m.CounterOr("links.fallback_hashed"), 0u);
    EXPECT_EQ(m.CounterOr("links.candidate_pairs"),
              m.CounterOr("links.pairs_counted"))
        << "candidate enumeration must be exact on both passes";
    EXPECT_EQ(m.CounterOr("links.pairs_counted"), packed.NumNonZeroPairs());
    // Only the plane pass packs; the scatter needs no plane, so it must
    // not charge pack time.
    EXPECT_EQ(m.FindTimer("stage.links.pack") != nullptr, !scatter);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThetaByThreads, LinkEngineStrategyTest,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5, 0.8),
                       ::testing::Values(size_t{1}, size_t{4})),
    [](const ::testing::TestParamInfo<LinkEngineStrategyTest::ParamType>&
           param) {
      const double theta = std::get<0>(param.param);
      return "theta" + std::to_string(static_cast<int>(theta * 10)) +
             "_threads" + std::to_string(std::get<1>(param.param));
    });

// The scatter pass carries no plane, so it must ignore the packing budget
// entirely: a zero budget that forces the plane into the hashed fallback
// leaves a forced scatter untouched.
TEST(LinkEngineStrategyTest, ScatterIgnoresPackBudget) {
  const uint64_t seed = 42;
  ROCK_TRACE_SEED(seed);
  const NeighborGraph graph = RandomGraph(seed, 0.5);
  LinkMatrix oracle = ComputeLinks(graph);
  oracle.Freeze();

  diag::MetricsRegistry registry;
  PackedLinkOptions opt;
  opt.strategy = PackedLinkStrategy::kScatter;
  opt.pack_budget_bytes = 0;
  opt.metrics = &registry;
  ExpectFrozenRowsIdentical(ComputeLinksPacked(graph, opt), oracle);
  const diag::RunMetrics m = registry.Snapshot();
  EXPECT_EQ(m.CounterOr("links.fallback_hashed"), 0u);
  EXPECT_EQ(m.CounterOr("links.scatter_pass"), 1u);
}

// kAuto's pass choice is a pure function of the graph (never the thread
// count or budget), pinned here on the two extremes: a sparse chain (tiny
// neighborhoods → scatter) and a dense clique-like graph (plane).
TEST(LinkEngineStrategyTest, AutoChoiceDependsOnlyOnGraphShape) {
  NeighborGraph chain;
  chain.nbrlist.resize(200);
  for (size_t i = 0; i + 1 < chain.nbrlist.size(); ++i) {
    chain.nbrlist[i].push_back(static_cast<PointIndex>(i + 1));
    chain.nbrlist[i + 1].push_back(static_cast<PointIndex>(i));
  }
  NeighborGraph clique;
  clique.nbrlist.resize(200);
  for (size_t i = 0; i < clique.nbrlist.size(); ++i) {
    for (size_t j = 0; j < clique.nbrlist.size(); ++j) {
      if (i != j) clique.nbrlist[i].push_back(static_cast<PointIndex>(j));
    }
  }

  const std::tuple<const char*, const NeighborGraph*, uint64_t> cases[] = {
      {"sparse_chain", &chain, 1},
      {"dense_clique", &clique, 0},
  };
  for (const auto& [label, graph, want_scatter] : cases) {
    SCOPED_TRACE(label);
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(::testing::Message() << "threads = " << threads);
      diag::MetricsRegistry registry;
      PackedLinkOptions opt;
      opt.num_threads = threads;
      opt.metrics = &registry;
      const LinkMatrix links = ComputeLinksPacked(*graph, opt);
      ExpectMatchesAllOracles(*graph, links);
      EXPECT_EQ(registry.Snapshot().CounterOr("links.scatter_pass"),
                want_scatter);
    }
  }
}

// ------------------------------------------------------------ graph shapes --

NeighborGraph StarGraph(size_t n) {
  // Hub 0 adjacent to every leaf; every leaf pair shares exactly the hub.
  NeighborGraph g;
  g.nbrlist.resize(n);
  for (size_t leaf = 1; leaf < n; ++leaf) {
    g.nbrlist[0].push_back(static_cast<PointIndex>(leaf));
    g.nbrlist[leaf].push_back(0);
  }
  return g;
}

NeighborGraph CliqueGraph(size_t n) {
  NeighborGraph g;
  g.nbrlist.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) g.nbrlist[i].push_back(static_cast<PointIndex>(j));
    }
  }
  return g;
}

TEST(LinkEngineShapeTest, DegenerateShapesMatchOraclesAtEveryThreadCount) {
  struct Shape {
    const char* name;
    NeighborGraph graph;
  };
  // A clique with isolated points tacked on: the isolated rows must stay
  // all-zero and must not disturb their neighbors' candidate masks.
  NeighborGraph clique_iso = CliqueGraph(40);
  clique_iso.nbrlist.resize(55);
  Shape shapes[] = {
      {"empty_graph", NeighborGraph{}},
      {"edgeless_graph", [] {
         NeighborGraph g;
         g.nbrlist.resize(30);  // isolated points only
         return g;
       }()},
      {"single_point", [] {
         NeighborGraph g;
         g.nbrlist.resize(1);
         return g;
       }()},
      {"star", StarGraph(70)},
      {"clique", CliqueGraph(65)},
      {"clique_plus_isolated", std::move(clique_iso)},
  };
  for (Shape& s : shapes) {
    SCOPED_TRACE(s.name);
    for (size_t threads : {1u, 4u, 8u}) {
      SCOPED_TRACE(::testing::Message() << "threads = " << threads);
      PackedLinkOptions opt;
      opt.num_threads = threads;
      opt.row_chunk = 2;
      ExpectMatchesAllOracles(s.graph, ComputeLinksPacked(s.graph, opt));
    }
  }
  // Clique sanity anchor: link(i, j) = n − 2 on every pair.
  const NeighborGraph clique = CliqueGraph(65);
  const LinkMatrix links = ComputeLinksPacked(clique);
  EXPECT_EQ(links.Count(0, 1), 63u);
  EXPECT_EQ(links.TotalLinks(), uint64_t{65} * 64 / 2 * 63);
  // Star anchor: every leaf pair shares exactly the hub, the hub shares
  // nobody with anyone.
  const LinkMatrix star = ComputeLinksPacked(StarGraph(70));
  EXPECT_EQ(star.Count(1, 2), 1u);
  EXPECT_EQ(star.Count(0, 1), 0u);
  EXPECT_EQ(star.TotalLinks(), uint64_t{69} * 68 / 2);
}

// θ = 0 (complete graph) and θ = 1 (near-empty graph) through the real
// neighbor-construction path rather than synthetic adjacency.
TEST(LinkEngineShapeTest, ThetaExtremesMatchOracles) {
  const uint64_t seed = 77;
  ROCK_TRACE_SEED(seed);
  for (const double theta : {0.0, 1.0}) {
    SCOPED_TRACE(::testing::Message() << "theta = " << theta);
    const NeighborGraph graph = RandomGraph(seed, theta);
    for (size_t threads : {1u, 8u}) {
      PackedLinkOptions opt;
      opt.num_threads = threads;
      ExpectMatchesAllOracles(graph, ComputeLinksPacked(graph, opt));
    }
  }
}

// ---------------------------------------------------------- budget / fallback --

TEST(LinkEngineBudgetTest, BudgetBoundaryPacksExactlyAndFallsBackOneByteShort) {
  const uint64_t seed = 42;
  ROCK_TRACE_SEED(seed);
  const NeighborGraph graph = RandomGraph(seed, 0.5);
  const size_t exact = PlaneBytes(graph.size());
  ASSERT_GT(exact, 0u);

  LinkMatrix oracle = ComputeLinks(graph);
  oracle.Freeze();

  const std::tuple<const char*, size_t, uint64_t> cases[] = {
      {"exactly fits (packed)", exact, 0},
      {"one byte short (fallback)", exact - 1, 1},
      {"zero budget (fallback)", 0, 1},
      {"default budget (packed)", PackedLinkOptions{}.pack_budget_bytes, 0},
  };
  for (const auto& [label, budget, want_fallback] : cases) {
    SCOPED_TRACE(label);
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(::testing::Message() << "threads = " << threads);
      diag::MetricsRegistry registry;
      PackedLinkOptions opt;
      opt.num_threads = threads;
      opt.pack_budget_bytes = budget;
      opt.metrics = &registry;
      const LinkMatrix links = ComputeLinksPacked(graph, opt);
      ExpectFrozenRowsIdentical(links, oracle);

      const diag::RunMetrics m = registry.Snapshot();
      EXPECT_EQ(m.CounterOr("links.fallback_hashed"), want_fallback);
      EXPECT_EQ(m.CounterOr("links.pairs_counted"), links.NumNonZeroPairs());
      if (want_fallback == 1) {
        EXPECT_EQ(m.CounterOr("links.candidate_pairs"), 0u)
            << "the fallback enumerates no candidates";
        EXPECT_EQ(m.FindTimer("stage.links.pack"), nullptr)
            << "the fallback must not charge a pack timer";
      }
    }
  }
}

// The n < 2 early-outs still honor the frozen-matrix contract.
TEST(LinkEngineBudgetTest, TinyGraphsEveryBudget) {
  for (size_t n : {0u, 1u}) {
    NeighborGraph g;
    g.nbrlist.resize(n);
    for (size_t budget : {size_t{0}, size_t{1} << 20}) {
      PackedLinkOptions opt;
      opt.pack_budget_bytes = budget;
      const LinkMatrix links = ComputeLinksPacked(g, opt);
      EXPECT_TRUE(links.frozen());
      EXPECT_EQ(links.size(), n);
      EXPECT_EQ(links.NumNonZeroPairs(), 0u);
      EXPECT_EQ(links.TotalLinks(), 0u);
    }
  }
}

// ----------------------------------------------- lazy hash-row materialization --

// A packed (FromCsr) matrix must behave exactly like an Add-built one once
// the hash API is touched: Row() agrees with the CSR rows, mutation thaws,
// and a re-Freeze reproduces the original layout plus the mutation.
TEST(LinkEngineLazyRowsTest, HashApiOnPackedMatrixMatchesOracle) {
  const uint64_t seed = 7;
  ROCK_TRACE_SEED(seed);
  const NeighborGraph graph = RandomGraph(seed, 0.5);
  LinkMatrix packed = ComputeLinksPacked(graph);
  const LinkMatrix oracle = ComputeLinks(graph);

  // Row() materializes the hash rows from the CSR arrays.
  for (size_t i = 0; i < packed.size(); ++i) {
    const auto p = static_cast<PointIndex>(i);
    const auto& row = packed.Row(p);
    ASSERT_EQ(row.size(), oracle.Row(p).size()) << "row " << i;
    for (const auto& [j, count] : row) {
      ASSERT_EQ(oracle.Count(p, j), count) << "(" << i << ", " << j << ")";
    }
  }

  // Mutation thaws; refreezing sees both the old data and the new entry.
  ASSERT_GE(packed.size(), 2u);
  const LinkCount before = packed.Count(0, 1);
  packed.Add(0, 1, 5);
  EXPECT_FALSE(packed.frozen());
  EXPECT_EQ(packed.Count(0, 1), before + 5);
  packed.Freeze();
  EXPECT_EQ(packed.Count(0, 1), before + 5);
}

TEST(LinkEngineLazyRowsTest, MaterializeHashRowsIsIdempotent) {
  const NeighborGraph graph = StarGraph(20);
  const LinkMatrix packed = ComputeLinksPacked(graph);
  packed.MaterializeHashRows();
  packed.MaterializeHashRows();  // no-op second time
  EXPECT_EQ(packed.Row(1).size(), 18u);  // 18 other leaves share the hub
  EXPECT_TRUE(packed.frozen());
}

// ------------------------------------------------------------------- fuzz --

// Random graphs through the real θ-threshold construction; every round
// checks packed-vs-hashed byte equality at 1/4/8 threads and a random
// packing budget (sometimes forcing the fallback mid-grid).
TEST(LinkEngineFuzzTest, RandomGraphsAllEnginesAgree) {
  const uint64_t base_seed = 0xE5151;
  for (uint64_t round = 0; round < 6; ++round) {
    ROCK_SEEDED_RNG(rng, base_seed + round);
    const double theta = 0.2 + 0.15 * static_cast<double>(round % 4);
    const NeighborGraph graph = RandomGraph(base_seed + round, theta);
    LinkMatrix oracle = ComputeLinks(graph);
    oracle.Freeze();
    const size_t exact = PlaneBytes(graph.size());
    for (size_t threads : {1u, 4u, 8u}) {
      PackedLinkOptions opt;
      opt.num_threads = threads;
      opt.row_chunk = 1 + static_cast<size_t>(rng.UniformInt(0, 6));
      // Half the rounds land under the plane size and take the fallback.
      opt.pack_budget_bytes =
          static_cast<size_t>(rng.UniformInt(0, 1)) == 0 ? exact / 2 : exact;
      SCOPED_TRACE(::testing::Message()
                   << "theta=" << theta << " threads=" << threads
                   << " budget=" << opt.pack_budget_bytes);
      ExpectFrozenRowsIdentical(ComputeLinksPacked(graph, opt), oracle);
    }
  }
}

}  // namespace
}  // namespace rock
