// Tests for similarity/packed.h + graph/neighbor_engine.h — the packed
// neighbor engine must produce bit-identical NeighborGraphs to the scalar
// per-pair oracle across θ, seeds, thread counts, pruning strategies and
// dataset shapes (empty rows, duplicate rows, missing values, θ ∈ {0, 1}).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/rock.h"
#include "data/dataset.h"
#include "diag/metrics.h"
#include "graph/neighbor_engine.h"
#include "graph/neighbors.h"
#include "similarity/jaccard.h"
#include "similarity/minhash.h"
#include "similarity/packed.h"
#include "similarity/similarity_table.h"
#include "test_support.h"

namespace rock {
namespace {

// ------------------------------------------------------ dataset factories --

// Random basket data: `empty_per_mille` rows are empty, and row 1 (when
// present) duplicates row 0 so identical sets exist at every θ.
TransactionDataset RandomBaskets(size_t n, uint32_t universe, size_t max_items,
                                 uint32_t empty_per_mille, Rng* rng) {
  TransactionDataset dataset;
  for (size_t r = 0; r < n; ++r) {
    if (r == 1) {
      dataset.AddTransaction(dataset.transaction(0));
      continue;
    }
    if (rng->UniformUint64(1000) < empty_per_mille) {
      dataset.AddTransaction(Transaction{});
      continue;
    }
    std::vector<ItemId> items;
    const size_t count = 1 + static_cast<size_t>(rng->UniformUint64(max_items));
    for (size_t k = 0; k < count; ++k) {
      items.push_back(static_cast<ItemId>(rng->UniformUint64(universe)));
    }
    dataset.AddTransaction(Transaction(std::move(items)));
  }
  return dataset;
}

// Random categorical data over d attributes with missing cells (including,
// at missing_per_mille == 1000, all-missing records).
CategoricalDataset RandomRecords(size_t n, size_t d, uint32_t domain,
                                 uint32_t missing_per_mille, Rng* rng) {
  std::vector<std::string> names;
  for (size_t a = 0; a < d; ++a) names.push_back("a" + std::to_string(a));
  CategoricalDataset dataset{Schema(names)};
  for (size_t r = 0; r < n; ++r) {
    std::vector<ValueId> values;
    for (size_t a = 0; a < d; ++a) {
      if (rng->UniformUint64(1000) < missing_per_mille) {
        values.push_back(kMissingValue);
      } else {
        values.push_back(static_cast<ValueId>(rng->UniformUint64(domain)));
      }
    }
    EXPECT_TRUE(dataset.AddRecord(Record(std::move(values))).ok());
  }
  return dataset;
}

// --------------------------------------------------- packed kernel (unit) --

TEST(PackedKernelTest, IntersectPopcountMatchesScalarReference) {
  ROCK_SEEDED_RNG(rng, 20260806);
  // Lengths straddle the AVX2 block size (4 words) to cover every tail.
  for (const size_t words : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 12u, 33u}) {
    std::vector<uint64_t> a(words), b(words);
    uint64_t expected = 0;
    for (size_t w = 0; w < words; ++w) {
      a[w] = rng.NextUint64();
      b[w] = rng.NextUint64();
      expected += static_cast<uint64_t>(std::popcount(a[w] & b[w]));
    }
    EXPECT_EQ(IntersectPopcount(a.data(), b.data(), words), expected)
        << "words = " << words;
  }
}

TEST(PackedJaccardTest, TransactionValuesBitIdenticalToOracle) {
  ROCK_SEEDED_RNG(rng, 7);
  const TransactionDataset dataset = RandomBaskets(60, 300, 20, 100, &rng);
  const TransactionJaccard oracle(dataset);
  const auto batch = oracle.MakeBatch();
  ASSERT_NE(batch, nullptr);
  ASSERT_EQ(batch->size(), dataset.size());
  ASSERT_NE(batch->prune_sizes(), nullptr);
  ASSERT_NE(batch->items(), nullptr);
  for (size_t i = 0; i < dataset.size(); ++i) {
    std::vector<uint32_t> js;
    for (size_t j = 0; j < dataset.size(); ++j) {
      js.push_back(static_cast<uint32_t>(j));
    }
    std::vector<double> got(js.size());
    batch->SimilarityBatch(i, js.data(), js.size(), got.data());
    for (size_t j = 0; j < js.size(); ++j) {
      EXPECT_EQ(got[j], oracle.Similarity(i, j)) << i << "," << j;
    }
    EXPECT_EQ((*batch->prune_sizes())[i],
              static_cast<uint32_t>(dataset.transaction(i).size()));
  }
}

TEST(PackedJaccardTest, CategoricalValuesBitIdenticalToOracle) {
  ROCK_SEEDED_RNG(rng, 11);
  const CategoricalDataset dataset = RandomRecords(50, 9, 6, 250, &rng);
  const CategoricalJaccard oracle(dataset);
  const auto batch = oracle.MakeBatch();
  ASSERT_NE(batch, nullptr);
  ASSERT_NE(batch->prune_sizes(), nullptr);
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (size_t j = 0; j < dataset.size(); ++j) {
      const auto jj = static_cast<uint32_t>(j);
      double got = -1;
      batch->SimilarityBatch(i, &jj, 1, &got);
      EXPECT_EQ(got, oracle.Similarity(i, j)) << i << "," << j;
    }
  }
}

TEST(PackedJaccardTest, PairwiseMissingValuesBitIdenticalToOracle) {
  ROCK_SEEDED_RNG(rng, 13);
  const CategoricalDataset dataset = RandomRecords(50, 9, 6, 400, &rng);
  const PairwiseMissingJaccard oracle(dataset);
  const auto batch = oracle.MakeBatch();
  ASSERT_NE(batch, nullptr);
  // No length bound exists for pairwise-missing semantics, but the item
  // view does (sim > 0 needs a shared present-and-equal value).
  EXPECT_EQ(batch->prune_sizes(), nullptr);
  ASSERT_NE(batch->items(), nullptr);
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (size_t j = 0; j < dataset.size(); ++j) {
      const auto jj = static_cast<uint32_t>(j);
      double got = -1;
      batch->SimilarityBatch(i, &jj, 1, &got);
      EXPECT_EQ(got, oracle.Similarity(i, j)) << i << "," << j;
    }
  }
}

TEST(PackedJaccardTest, OverBudgetPackingReturnsNull) {
  ROCK_SEEDED_RNG(rng, 17);
  const TransactionDataset dataset = RandomBaskets(64, 1024, 12, 0, &rng);
  EXPECT_EQ(PackedJaccard::PackTransactions(dataset, /*max_bytes=*/64),
            nullptr);
  EXPECT_NE(PackedJaccard::PackTransactions(dataset), nullptr);
}

TEST(PackedJaccardTest, EmptyDatasetPacks) {
  const TransactionDataset dataset;
  const auto batch = PackedJaccard::PackTransactions(dataset);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->size(), 0u);
  EXPECT_EQ(batch->words_per_row(), 0u);
}

// ------------------------------------------------------- engine (differential)

std::vector<PackedStrategy> AllStrategies() {
  return {PackedStrategy::kAuto, PackedStrategy::kWindow,
          PackedStrategy::kCandidates};
}

// Asserts the packed engine reproduces the scalar oracle exactly and that
// the pairs accounting covers the full triangle.
void ExpectEngineMatchesOracle(const PointSimilarity& sim, double theta) {
  const auto oracle = ComputeNeighbors(sim, theta);
  ASSERT_TRUE(oracle.ok());
  const size_t n = sim.size();
  const uint64_t total =
      n < 2 ? 0 : static_cast<uint64_t>(n) * static_cast<uint64_t>(n - 1) / 2;
  for (const PackedStrategy strategy : AllStrategies()) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(::testing::Message()
                   << "theta=" << theta << " strategy="
                   << static_cast<int>(strategy) << " threads=" << threads);
      diag::MetricsRegistry metrics;
      PackedNeighborOptions options;
      options.num_threads = threads;
      options.row_chunk = 3;  // ragged chunks on purpose
      options.strategy = strategy;
      options.metrics = &metrics;
      const auto packed = ComputeNeighborsPacked(sim, theta, options);
      ASSERT_TRUE(packed.ok());
      EXPECT_EQ(packed->nbrlist, oracle->nbrlist);
      const auto snap = metrics.Snapshot();
      EXPECT_EQ(snap.CounterOr("neighbors.pairs_evaluated") +
                    snap.CounterOr("neighbors.pairs_pruned"),
                total);
      EXPECT_NE(snap.FindTimer("stage.neighbors.pack"), nullptr);
    }
  }
}

TEST(NeighborEngineTest, TransactionGridMatchesOracle) {
  const double thetas[] = {0.0, 0.2, 0.5, 0.73, 1.0};
  const uint64_t seeds[] = {1, 2, 3};
  for (const uint64_t seed : seeds) {
    ROCK_SEEDED_RNG(rng, seed);
    // Shapes: dense small universe, sparse large universe, heavy empties.
    const TransactionDataset shapes[] = {
        RandomBaskets(40, 24, 10, 50, &rng),
        RandomBaskets(70, 900, 8, 0, &rng),
        RandomBaskets(30, 60, 6, 400, &rng),
    };
    for (const auto& dataset : shapes) {
      const TransactionJaccard sim(dataset);
      for (const double theta : thetas) {
        ExpectEngineMatchesOracle(sim, theta);
      }
    }
  }
}

TEST(NeighborEngineTest, CategoricalGridMatchesOracle) {
  for (const uint64_t seed : {5u, 6u}) {
    ROCK_SEEDED_RNG(rng, seed);
    const CategoricalDataset dataset = RandomRecords(45, 8, 5, 300, &rng);
    const CategoricalJaccard sim(dataset);
    const PairwiseMissingJaccard pairwise(dataset);
    for (const double theta : {0.0, 0.4, 0.8, 1.0}) {
      ExpectEngineMatchesOracle(sim, theta);
      ExpectEngineMatchesOracle(pairwise, theta);
    }
  }
}

TEST(NeighborEngineTest, DegenerateShapes) {
  // Empty and single-point datasets.
  TransactionDataset empty;
  ExpectEngineMatchesOracle(TransactionJaccard(empty), 0.5);
  TransactionDataset one;
  one.AddTransaction(Transaction{1, 2, 3});
  ExpectEngineMatchesOracle(TransactionJaccard(one), 0.5);

  // All rows identical: every pair is a neighbor even at θ = 1.
  TransactionDataset identical;
  for (int r = 0; r < 12; ++r) {
    identical.AddTransaction(Transaction{4, 9, 17});
  }
  ExpectEngineMatchesOracle(TransactionJaccard(identical), 1.0);
  ExpectEngineMatchesOracle(TransactionJaccard(identical), 0.0);

  // All rows empty: sim == 0 everywhere, so the complete graph at θ = 0
  // and no edges at θ > 0.
  TransactionDataset empties;
  for (int r = 0; r < 9; ++r) empties.AddTransaction(Transaction{});
  ExpectEngineMatchesOracle(TransactionJaccard(empties), 0.0);
  ExpectEngineMatchesOracle(TransactionJaccard(empties), 0.25);
  ExpectEngineMatchesOracle(TransactionJaccard(empties), 1.0);
}

TEST(NeighborEngineTest, FallsBackToScalarWithoutBatchKernel) {
  // SimilarityTable has no MakeBatch — the engine must fall back and say so.
  SimilarityTable table(4);
  ASSERT_TRUE(table.Set(0, 1, 0.9).ok());
  ASSERT_TRUE(table.Set(2, 3, 0.8).ok());
  diag::MetricsRegistry metrics;
  PackedNeighborOptions options;
  options.metrics = &metrics;
  const auto packed = ComputeNeighborsPacked(table, 0.5, options);
  ASSERT_TRUE(packed.ok());
  const auto oracle = ComputeNeighbors(table, 0.5);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(packed->nbrlist, oracle->nbrlist);
  const auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterOr("neighbors.fallback_scalar"), 1u);
  EXPECT_EQ(snap.CounterOr("neighbors.pairs_evaluated"), 6u);
  EXPECT_EQ(snap.CounterOr("neighbors.pairs_pruned"), 0u);
}

TEST(NeighborEngineTest, CandidatePassCounterFires) {
  ROCK_SEEDED_RNG(rng, 23);
  const TransactionDataset dataset = RandomBaskets(50, 400, 6, 0, &rng);
  const TransactionJaccard sim(dataset);
  diag::MetricsRegistry metrics;
  PackedNeighborOptions options;
  options.strategy = PackedStrategy::kCandidates;
  options.metrics = &metrics;
  ASSERT_TRUE(ComputeNeighborsPacked(sim, 0.5, options).ok());
  EXPECT_EQ(metrics.Snapshot().CounterOr("neighbors.candidate_pass"), 1u);
  // θ = 0 needs the complete graph; the engine must refuse the candidate
  // pass even when asked for it.
  diag::MetricsRegistry metrics0;
  options.metrics = &metrics0;
  ASSERT_TRUE(ComputeNeighborsPacked(sim, 0.0, options).ok());
  EXPECT_EQ(metrics0.Snapshot().CounterOr("neighbors.candidate_pass"), 0u);
}

// ---------------------------------------------------------------- LSH pass --

// The LSH contract (see graph/neighbor_engine.h): every emitted edge is
// exact (precision 1), recall follows the banding curve 1 − (1 − s^r)^b,
// and for a fixed seed the graph is identical at any thread count.

std::vector<uint64_t> EdgeList(const NeighborGraph& graph) {
  std::vector<uint64_t> edges;
  for (size_t i = 0; i < graph.size(); ++i) {
    for (const PointIndex j : graph.nbrlist[i]) {
      if (j > i) edges.push_back((uint64_t{i} << 32) | j);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

// Basket mix engineered so every tested θ sees many genuine edges: random
// background rows plus near-duplicate groups, each drawn from a 13-item
// pool with one item dropped per row so in-group similarities sit in
// {11/13 ≈ 0.846, 1} — above every θ in the grid.
TransactionDataset LshRecallBaskets(Rng* rng) {
  TransactionDataset dataset;
  for (size_t r = 0; r < 40; ++r) {
    std::vector<ItemId> items;
    const size_t count = 1 + static_cast<size_t>(rng->UniformUint64(10));
    for (size_t k = 0; k < count; ++k) {
      items.push_back(static_cast<ItemId>(rng->UniformUint64(30)));
    }
    dataset.AddTransaction(Transaction(std::move(items)));
  }
  for (uint32_t g = 0; g < 15; ++g) {
    const ItemId base = 100 + 13 * g;
    for (size_t m = 0; m < 4; ++m) {
      const auto drop = static_cast<ItemId>(rng->UniformUint64(13));
      std::vector<ItemId> items;
      for (ItemId k = 0; k < 13; ++k) {
        if (k != drop) items.push_back(base + k);
      }
      dataset.AddTransaction(Transaction(std::move(items)));
    }
  }
  return dataset;
}

// Deliberately weak banding (b = 4, r = 4) makes recall genuinely
// fractional, so the observed rate actually exercises the prediction
// instead of saturating at 1. Everything is deterministic for fixed
// seeds; the tolerance absorbs the correlation between pairs that share
// a row's signature.
TEST(NeighborEngineLshTest, RecallTracksCollisionProbability) {
  for (const double theta : {0.3, 0.5, 0.73, 0.8}) {
    SCOPED_TRACE(::testing::Message() << "theta = " << theta);
    double expected_sum = 0.0;
    uint64_t oracle_edges = 0;
    uint64_t recalled = 0;
    for (const uint64_t seed : {101u, 202u, 303u}) {
      ROCK_SEEDED_RNG(rng, seed);
      const TransactionDataset dataset = LshRecallBaskets(&rng);
      const TransactionJaccard sim(dataset);
      const auto oracle = ComputeNeighbors(sim, theta);
      ASSERT_TRUE(oracle.ok());

      LshOptions weak;
      weak.num_bands = 4;
      weak.rows_per_band = 4;
      weak.seed = seed;
      PackedNeighborOptions options;
      options.strategy = PackedStrategy::kLsh;
      options.lsh = weak;
      const auto packed = ComputeNeighborsPacked(sim, theta, options);
      ASSERT_TRUE(packed.ok());

      const std::vector<uint64_t> got = EdgeList(*packed);
      const std::vector<uint64_t> want = EdgeList(*oracle);
      for (const uint64_t edge : got) {
        EXPECT_TRUE(std::binary_search(want.begin(), want.end(), edge))
            << "LSH edge (" << (edge >> 32) << ", " << (edge & 0xffffffffu)
            << ") not in the exact graph — precision must be 1";
      }
      for (const uint64_t edge : want) {
        ++oracle_edges;
        expected_sum += LshCollisionProbability(
            sim.Similarity(edge >> 32, edge & 0xffffffffu), weak);
        if (std::binary_search(got.begin(), got.end(), edge)) ++recalled;
      }
    }
    ASSERT_GT(oracle_edges, 50u) << "dataset must produce real statistics";
    const double observed =
        static_cast<double>(recalled) / static_cast<double>(oracle_edges);
    const double predicted = expected_sum / static_cast<double>(oracle_edges);
    EXPECT_NEAR(observed, predicted, 0.1);
  }
}

TEST(NeighborEngineLshTest, DeterministicAcrossThreadCountsAndRuns) {
  ROCK_SEEDED_RNG(rng, 71);
  const TransactionDataset dataset = LshRecallBaskets(&rng);
  const TransactionJaccard sim(dataset);
  const auto oracle_edges = [&] {
    const auto oracle = ComputeNeighbors(sim, 0.5);
    EXPECT_TRUE(oracle.ok());
    return EdgeList(*oracle);
  }();

  for (const uint64_t lsh_seed : {123u, 456u}) {
    SCOPED_TRACE(::testing::Message() << "lsh_seed = " << lsh_seed);
    NeighborGraph golden;
    uint64_t golden_candidates = 0;
    uint64_t golden_evaluated = 0;
    bool have_golden = false;
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        SCOPED_TRACE(::testing::Message()
                     << "threads = " << threads << " repeat = " << repeat);
        diag::MetricsRegistry metrics;
        PackedNeighborOptions options;
        options.strategy = PackedStrategy::kLsh;
        options.lsh = TuneLshOptions(0.5, lsh_seed);
        options.num_threads = threads;
        options.row_chunk = 3;
        options.metrics = &metrics;
        const auto packed = ComputeNeighborsPacked(sim, 0.5, options);
        ASSERT_TRUE(packed.ok());
        const auto snap = metrics.Snapshot();
        EXPECT_EQ(snap.CounterOr("neighbors.lsh_pass"), 1u);
        if (!have_golden) {
          golden = *packed;
          golden_candidates = snap.CounterOr("neighbors.lsh_candidates");
          golden_evaluated = snap.CounterOr("neighbors.pairs_evaluated");
          have_golden = true;
          // The golden run must itself be a subgraph of the exact oracle.
          for (const uint64_t edge : EdgeList(golden)) {
            ASSERT_TRUE(std::binary_search(oracle_edges.begin(),
                                           oracle_edges.end(), edge));
          }
          continue;
        }
        EXPECT_EQ(packed->nbrlist, golden.nbrlist)
            << "LSH must be deterministic for a fixed seed";
        EXPECT_EQ(snap.CounterOr("neighbors.lsh_candidates"),
                  golden_candidates);
        EXPECT_EQ(snap.CounterOr("neighbors.pairs_evaluated"),
                  golden_evaluated);
      }
    }
  }
}

TEST(NeighborEngineLshTest, SkipsEmptyRowsAtBandingTime) {
  // All-max signatures of empty rows collide in every band; skipping them
  // at banding time keeps that quadratic candidate mass out of the pass
  // entirely. With 60 empties and one genuine pair, the candidate count
  // must be exactly 1 — the regression (banding the empties) would report
  // 1 + C(60, 2) = 1771.
  TransactionDataset sharp;
  for (int r = 0; r < 60; ++r) sharp.AddTransaction(Transaction{});
  sharp.AddTransaction(Transaction{1, 2, 3});
  sharp.AddTransaction(Transaction{1, 2, 3});
  const TransactionJaccard sharp_sim(sharp);
  diag::MetricsRegistry sharp_metrics;
  PackedNeighborOptions options;
  options.strategy = PackedStrategy::kLsh;
  options.metrics = &sharp_metrics;
  const auto pair_graph = ComputeNeighborsPacked(sharp_sim, 0.5, options);
  ASSERT_TRUE(pair_graph.ok());
  const auto sharp_snap = sharp_metrics.Snapshot();
  EXPECT_EQ(sharp_snap.CounterOr("neighbors.lsh_skipped_empty"), 60u);
  EXPECT_EQ(sharp_snap.CounterOr("neighbors.lsh_candidates"), 1u);
  EXPECT_EQ(pair_graph->nbrlist[60], (std::vector<PointIndex>{61}));
  EXPECT_EQ(pair_graph->nbrlist[61], (std::vector<PointIndex>{60}));

  // Random mixed data: the counter equals the exact empty-row count and
  // every empty row stays isolated.
  ROCK_SEEDED_RNG(rng, 29);
  const TransactionDataset dataset = RandomBaskets(90, 24, 8, 400, &rng);
  uint64_t empties = 0;
  for (size_t r = 0; r < dataset.size(); ++r) {
    if (dataset.transaction(r).empty()) ++empties;
  }
  ASSERT_GT(empties, 0u);
  const TransactionJaccard sim(dataset);
  diag::MetricsRegistry metrics;
  options.metrics = &metrics;
  const auto packed = ComputeNeighborsPacked(sim, 0.5, options);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(metrics.Snapshot().CounterOr("neighbors.lsh_skipped_empty"),
            empties);
  for (size_t r = 0; r < dataset.size(); ++r) {
    if (dataset.transaction(r).empty()) {
      EXPECT_TRUE(packed->nbrlist[r].empty()) << "row " << r;
    }
  }
}

TEST(NeighborEngineLshTest, DegradesToWindowAtThetaZero) {
  // θ = 0 needs the complete graph (empty rows neighbor everything while
  // sharing no items), so a forced kLsh must degrade to the exact window
  // pass rather than emit a candidate-limited subgraph.
  ROCK_SEEDED_RNG(rng, 31);
  const TransactionDataset dataset = RandomBaskets(40, 24, 8, 100, &rng);
  const TransactionJaccard sim(dataset);
  const auto oracle = ComputeNeighbors(sim, 0.0);
  ASSERT_TRUE(oracle.ok());
  diag::MetricsRegistry metrics;
  PackedNeighborOptions options;
  options.strategy = PackedStrategy::kLsh;
  options.metrics = &metrics;
  const auto packed = ComputeNeighborsPacked(sim, 0.0, options);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->nbrlist, oracle->nbrlist);
  const auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterOr("neighbors.lsh_pass"), 0u);
  const auto n = static_cast<uint64_t>(dataset.size());
  EXPECT_EQ(snap.CounterOr("neighbors.pairs_evaluated") +
                snap.CounterOr("neighbors.pairs_pruned"),
            n * (n - 1) / 2);
}

TEST(NeighborEngineLshTest, AutoKeepsExactPassesOnSmallUniverses) {
  // Small dense universes are inverted-index country: the sampled cost
  // model must leave kAuto on an exact pass even with LSH allowed, so
  // the result stays bit-identical to the oracle.
  ROCK_SEEDED_RNG(rng, 37);
  const TransactionDataset dataset = RandomBaskets(60, 32, 8, 50, &rng);
  const TransactionJaccard sim(dataset);
  const auto oracle = ComputeNeighbors(sim, 0.5);
  ASSERT_TRUE(oracle.ok());
  diag::MetricsRegistry metrics;
  PackedNeighborOptions options;
  options.allow_lsh = true;
  options.lsh = TuneLshOptions(0.5, 0x5eed);
  options.metrics = &metrics;
  const auto packed = ComputeNeighborsPacked(sim, 0.5, options);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->nbrlist, oracle->nbrlist);
  EXPECT_EQ(metrics.Snapshot().CounterOr("neighbors.lsh_pass"), 0u);
}

TEST(NeighborEngineLshTest, AutoPicksLshOnHeavyHitterBaskets) {
  // 200 clusters × 10 rows; each row carries 8 of its cluster's 10
  // private items plus 4 global heavy-hitter items. The heavy hitters
  // cost the inverted-index ScanCount ~4 · C(2000, 2) increments and the
  // uniform row sizes disarm the window length bound, while banding
  // collapses the candidate mass to in-cluster pairs — the regime where
  // the sampled cost model must flip kAuto to LSH.
  ROCK_SEEDED_RNG(rng, 43);
  TransactionDataset dataset;
  for (uint32_t c = 0; c < 200; ++c) {
    for (size_t m = 0; m < 10; ++m) {
      auto drop_a = static_cast<ItemId>(rng.UniformUint64(10));
      auto drop_b = static_cast<ItemId>(rng.UniformUint64(10));
      if (drop_a == drop_b) drop_b = (drop_b + 1) % 10;
      std::vector<ItemId> items{2000, 2001, 2002, 2003};
      for (ItemId k = 0; k < 10; ++k) {
        if (k != drop_a && k != drop_b) items.push_back(10 * c + k);
      }
      dataset.AddTransaction(Transaction(std::move(items)));
    }
  }
  const TransactionJaccard sim(dataset);
  const double theta = 0.73;
  const auto oracle = ComputeNeighbors(sim, theta);
  ASSERT_TRUE(oracle.ok());
  const std::vector<uint64_t> want = EdgeList(*oracle);

  NeighborGraph golden;
  bool have_golden = false;
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(::testing::Message() << "threads = " << threads);
    diag::MetricsRegistry metrics;
    PackedNeighborOptions options;
    options.allow_lsh = true;
    options.lsh = LshOptions{4, 4, 9};
    options.num_threads = threads;
    options.metrics = &metrics;
    const auto packed = ComputeNeighborsPacked(sim, theta, options);
    ASSERT_TRUE(packed.ok());
    EXPECT_EQ(metrics.Snapshot().CounterOr("neighbors.lsh_pass"), 1u)
        << "the cost model must choose LSH on heavy-hitter data";
    const std::vector<uint64_t> got = EdgeList(*packed);
    EXPECT_GT(got.size(), 0u);
    for (const uint64_t edge : got) {
      ASSERT_TRUE(std::binary_search(want.begin(), want.end(), edge))
          << "precision must be 1";
    }
    if (!have_golden) {
      golden = *packed;
      have_golden = true;
    } else {
      EXPECT_EQ(packed->nbrlist, golden.nbrlist);
    }
  }
}

TEST(NeighborEngineTest, RejectsBadTheta) {
  TransactionDataset dataset;
  dataset.AddTransaction(Transaction{1});
  const TransactionJaccard sim(dataset);
  EXPECT_FALSE(ComputeNeighborsPacked(sim, -0.1).ok());
  EXPECT_FALSE(ComputeNeighborsPacked(sim, 1.5).ok());
}

// --------------------------------------------------- clusterer integration --

TEST(NeighborEngineTest, ClustererEnginesProduceIdenticalResults) {
  ROCK_SEEDED_RNG(rng, 41);
  const TransactionDataset dataset = RandomBaskets(80, 48, 12, 50, &rng);
  const TransactionJaccard sim(dataset);
  RockOptions options;
  options.theta = 0.4;
  options.num_clusters = 5;
  for (const size_t threads : {size_t{1}, size_t{3}}) {
    options.num_threads = threads;
    options.neighbor_engine = NeighborEngineKind::kPacked;
    const auto packed = RockClusterer(options).Cluster(sim);
    ASSERT_TRUE(packed.ok());
    options.neighbor_engine = NeighborEngineKind::kScalar;
    const auto scalar = RockClusterer(options).Cluster(sim);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(packed->clustering.assignment, scalar->clustering.assignment);
    EXPECT_EQ(packed->merges.size(), scalar->merges.size());
    // The packed run reports its pruning accounting through RockResult.
    EXPECT_GT(packed->metrics.CounterOr("neighbors.pairs_evaluated"), 0u);
    EXPECT_NE(packed->metrics.FindTimer("stage.neighbors.pack"), nullptr);
  }
}

// ------------------------------------------------- jaccard presence counts --

TEST(CategoricalJaccardTest, PrecomputedPresenceMatchesDefinition) {
  CategoricalDataset dataset{Schema({"a", "b", "c", "d"})};
  ASSERT_TRUE(dataset.AddRecord(Record({1, 2, kMissingValue, 3})).ok());
  ASSERT_TRUE(dataset.AddRecord(Record({1, kMissingValue, 5, 4})).ok());
  ASSERT_TRUE(
      dataset
          .AddRecord(Record({kMissingValue, kMissingValue, kMissingValue,
                             kMissingValue}))
          .ok());
  const CategoricalJaccard sim(dataset);
  // Rows 0/1: equal = 1 (attr a), union = 3 + 3 − 1 = 5.
  EXPECT_EQ(sim.Similarity(0, 1), 1.0 / 5.0);
  // Both-missing attributes must not count as equal.
  EXPECT_EQ(sim.Similarity(0, 2), 0.0);
  EXPECT_EQ(sim.Similarity(2, 2), 0.0);
}

}  // namespace
}  // namespace rock
