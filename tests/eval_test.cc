// Tests for eval/: contingency tables, purity/ARI/NMI, the Table 6
// misclassification measure, and the Tables 7–9 cluster profiler.

#include <gtest/gtest.h>

#include "eval/contingency.h"
#include "eval/metrics.h"
#include "eval/profiles.h"

namespace rock {
namespace {

/// 2 found clusters × 2 classes with a known confusion structure:
/// cluster 0 = {8 of class 0, 2 of class 1}; cluster 1 = {1, 9};
/// outliers: 3 of class 0.
ContingencyTable MakeTable() {
  std::vector<ClusterIndex> assignment;
  std::vector<LabelId> labels;
  auto add = [&](ClusterIndex c, LabelId l, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      assignment.push_back(c);
      labels.push_back(l);
    }
  };
  add(0, 0, 8);
  add(0, 1, 2);
  add(1, 0, 1);
  add(1, 1, 9);
  add(kUnassigned, 0, 3);
  auto table = ContingencyTable::Build(assignment, labels, 2, 2);
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

// -------------------------------------------------------------- Contingency --

TEST(ContingencyTest, CountsAndTotals) {
  ContingencyTable t = MakeTable();
  EXPECT_EQ(t.Count(0, 0), 8u);
  EXPECT_EQ(t.Count(1, 1), 9u);
  EXPECT_EQ(t.ClusterTotal(0), 10u);
  EXPECT_EQ(t.ClassTotal(0), 9u);
  EXPECT_EQ(t.GrandTotal(), 20u);
  EXPECT_EQ(t.outliers_per_class()[0], 3u);
  EXPECT_EQ(t.outliers_per_class()[1], 0u);
}

TEST(ContingencyTest, MajorityClass) {
  ContingencyTable t = MakeTable();
  EXPECT_EQ(t.MajorityClass(0), 0u);
  EXPECT_EQ(t.MajorityClass(1), 1u);
}

TEST(ContingencyTest, SkipsUnlabeledRows) {
  auto t = ContingencyTable::Build({0, 0, 1}, {0, kNoLabel, 1}, 2, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->GrandTotal(), 2u);
}

TEST(ContingencyTest, RejectsBadInputs) {
  EXPECT_TRUE(ContingencyTable::Build({0}, {0, 1}, 1, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ContingencyTable::Build({0}, {5}, 1, 2).status().IsOutOfRange());
  EXPECT_TRUE(
      ContingencyTable::Build({7}, {0}, 2, 1).status().IsOutOfRange());
}

TEST(ContingencyTest, BuildFromClusteringAndLabelSet) {
  Clustering c = Clustering::FromAssignment({0, 0, 1});
  LabelSet ls;
  ls.Append("a");
  ls.Append("a");
  ls.Append("b");
  auto t = ContingencyTable::Build(c, ls);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Count(0, 0), 2u);
  EXPECT_EQ(t->Count(1, 1), 1u);
}

// ------------------------------------------------------------------ Purity --

TEST(MetricsTest, PurityOfKnownTable) {
  ContingencyTable t = MakeTable();
  // (8 + 9) / 20.
  EXPECT_DOUBLE_EQ(Purity(t), 0.85);
}

TEST(MetricsTest, PurityPerfectAndWorst) {
  auto perfect = ContingencyTable::Build({0, 0, 1, 1}, {0, 0, 1, 1}, 2, 2);
  ASSERT_TRUE(perfect.ok());
  EXPECT_DOUBLE_EQ(Purity(*perfect), 1.0);
  auto mixed = ContingencyTable::Build({0, 0, 0, 0}, {0, 1, 0, 1}, 1, 2);
  ASSERT_TRUE(mixed.ok());
  EXPECT_DOUBLE_EQ(Purity(*mixed), 0.5);
}

// --------------------------------------------------------------------- ARI --

TEST(MetricsTest, AriPerfectIsOne) {
  auto t = ContingencyTable::Build({0, 0, 1, 1, 2, 2},
                                   {0, 0, 1, 1, 2, 2}, 3, 3);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(AdjustedRandIndex(*t), 1.0, 1e-12);
}

TEST(MetricsTest, AriLabelPermutationInvariant) {
  auto t = ContingencyTable::Build({1, 1, 0, 0}, {0, 0, 1, 1}, 2, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(AdjustedRandIndex(*t), 1.0, 1e-12);
}

TEST(MetricsTest, AriSingleClusterIsZeroish) {
  auto t = ContingencyTable::Build({0, 0, 0, 0}, {0, 0, 1, 1}, 1, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(AdjustedRandIndex(*t), 0.0, 1e-12);
}

TEST(MetricsTest, AriKnownValue) {
  // Classic worked example: clusters {a,a,b}, {b,b,a} style 3x2.
  auto t = ContingencyTable::Build({0, 0, 0, 1, 1, 1},
                                   {0, 0, 1, 1, 1, 0}, 2, 2);
  ASSERT_TRUE(t.ok());
  // sum_cells = C(2,2)+C(1,2)+C(1,2)+C(2,2) = 1+0+0+1 = 2; rows = 2·C(3,2)=6;
  // cols = 6; expected = 36/15 = 2.4; max = 6 → ARI = (2−2.4)/(6−2.4).
  EXPECT_NEAR(AdjustedRandIndex(*t), (2.0 - 2.4) / (6.0 - 2.4), 1e-12);
}

// --------------------------------------------------------------------- NMI --

TEST(MetricsTest, NmiPerfectIsOne) {
  auto t = ContingencyTable::Build({0, 0, 1, 1}, {1, 1, 0, 0}, 2, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(NormalizedMutualInformation(*t), 1.0, 1e-12);
}

TEST(MetricsTest, NmiIndependentIsZero) {
  // Clusters split each class exactly in half → MI = 0.
  auto t = ContingencyTable::Build({0, 1, 0, 1}, {0, 0, 1, 1}, 2, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(NormalizedMutualInformation(*t), 0.0, 1e-12);
}

TEST(MetricsTest, NmiBetweenZeroAndOne) {
  ContingencyTable t = MakeTable();
  const double nmi = NormalizedMutualInformation(t);
  EXPECT_GT(nmi, 0.0);
  EXPECT_LT(nmi, 1.0);
}

// --------------------------------------------------- Misclassification (T6) --

TEST(MetricsTest, MisclassificationMajorityRule) {
  ContingencyTable t = MakeTable();
  // In-cluster minorities: 2 + 1 = 3; dropped class-0 points: 3.
  MisclassificationOptions opt;
  EXPECT_EQ(MisclassificationCount(t, opt), 6u);
}

TEST(MetricsTest, MisclassificationSparesTrueOutliers) {
  // Class 1 is the designated outlier class; its unassigned rows are fine.
  std::vector<ClusterIndex> assignment = {0, 0, kUnassigned, kUnassigned};
  std::vector<LabelId> labels = {0, 0, 1, 0};
  auto t = ContingencyTable::Build(assignment, labels, 1, 2);
  ASSERT_TRUE(t.ok());
  MisclassificationOptions opt;
  opt.outlier_label = 1;
  // Only the dropped class-0 row counts.
  EXPECT_EQ(MisclassificationCount(*t, opt), 1u);
  // An outlier assigned *into* a cluster counts against it.
  auto t2 = ContingencyTable::Build({0, 0, 0}, {0, 0, 1}, 1, 2);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(MisclassificationCount(*t2, opt), 1u);
}

TEST(MetricsTest, MisclassificationZeroOnPerfect) {
  auto t = ContingencyTable::Build({0, 0, 1}, {0, 0, 1}, 2, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(MisclassificationCount(*t), 0u);
}

// ---------------------------------------------------------------- Profiles --

TEST(ProfilesTest, FrequentValuesPerCluster) {
  CategoricalDataset ds{Schema({"vote", "region"})};
  ASSERT_TRUE(ds.AddRecord({"y", "north"}).ok());
  ASSERT_TRUE(ds.AddRecord({"y", "north"}).ok());
  ASSERT_TRUE(ds.AddRecord({"y", "south"}).ok());
  ASSERT_TRUE(ds.AddRecord({"n", "south"}).ok());
  Clustering c = Clustering::FromAssignment({0, 0, 0, 1});

  ProfileOptions opt;
  opt.min_support = 0.6;
  auto profiles = ProfileClusters(ds, c, opt);
  ASSERT_EQ(profiles.size(), 2u);
  // Cluster 0: vote=y support 1.0; region=north support 2/3 ≥ 0.6.
  ASSERT_EQ(profiles[0].entries.size(), 2u);
  EXPECT_EQ(profiles[0].entries[0].attribute, "vote");
  EXPECT_EQ(profiles[0].entries[0].value, "y");
  EXPECT_DOUBLE_EQ(profiles[0].entries[0].support, 1.0);
  EXPECT_EQ(profiles[0].entries[1].value, "north");
  // Cluster 1 (singleton): both values at support 1.
  EXPECT_EQ(profiles[1].size, 1u);
  ASSERT_EQ(profiles[1].entries.size(), 2u);
}

TEST(ProfilesTest, MissingValuesExcludedFromSupportBase) {
  CategoricalDataset ds{Schema({"a"})};
  ASSERT_TRUE(ds.AddRecord({"x"}).ok());
  ASSERT_TRUE(ds.AddRecord({"?"}).ok());
  Clustering c = Clustering::FromAssignment({0, 0});
  auto profiles = ProfileClusters(ds, c, ProfileOptions{});
  ASSERT_EQ(profiles[0].entries.size(), 1u);
  // Support over *present* members: 1/1, not 1/2.
  EXPECT_DOUBLE_EQ(profiles[0].entries[0].support, 1.0);
}

TEST(ProfilesTest, ThresholdFilters) {
  CategoricalDataset ds{Schema({"a"})};
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(ds.AddRecord({i < 2 ? "x" : "y"}).ok());
  }
  Clustering c = Clustering::FromAssignment({0, 0, 0, 0, 0, 0});
  ProfileOptions opt;
  opt.min_support = 0.5;
  auto profiles = ProfileClusters(ds, c, opt);
  ASSERT_EQ(profiles[0].entries.size(), 1u);
  EXPECT_EQ(profiles[0].entries[0].value, "y");
}

TEST(ProfilesTest, FormatMatchesPaperStyle) {
  ClusterProfile p;
  p.cluster = 0;
  p.size = 2;
  p.entries.push_back(ProfileEntry{"crime", "y", 0.98});
  const std::string s = FormatProfile(p);
  EXPECT_NE(s.find("Cluster 1 (size 2):"), std::string::npos);
  EXPECT_NE(s.find("(crime,y,0.98)"), std::string::npos);
}

}  // namespace
}  // namespace rock
