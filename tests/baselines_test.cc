// Tests for baselines/: binarization, centroid-linkage hierarchical
// clustering (incl. the paper's Example 1.1 pathology), single-link (MST),
// group-average, and k-means.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/binarize.h"
#include "baselines/centroid_hierarchical.h"
#include "baselines/kmeans.h"
#include "baselines/linkage_hierarchical.h"
#include "similarity/jaccard.h"
#include "similarity/similarity_table.h"

namespace rock {
namespace {

// --------------------------------------------------------------- Binarize --

TEST(BinarizeTest, RecordsGetIndicatorColumns) {
  CategoricalDataset ds{Schema({"color", "size"})};
  ASSERT_TRUE(ds.AddRecord({"red", "big"}).ok());
  ASSERT_TRUE(ds.AddRecord({"blue", "big"}).ok());
  BinarizedData bin = BinarizeRecords(ds);
  ASSERT_EQ(bin.points.size(), 2u);
  ASSERT_EQ(bin.column_names.size(), 3u);  // red, blue, big
  // Each record has exactly 2 ones.
  for (const auto& p : bin.points) {
    double sum = 0;
    for (double v : p) sum += v;
    EXPECT_DOUBLE_EQ(sum, 2.0);
  }
  EXPECT_EQ(bin.column_names[0], "color=red");
}

TEST(BinarizeTest, MissingValuesAreAllZero) {
  CategoricalDataset ds{Schema({"a", "b"})};
  ASSERT_TRUE(ds.AddRecord({"x", "?"}).ok());
  ASSERT_TRUE(ds.AddRecord({"x", "y"}).ok());
  BinarizedData bin = BinarizeRecords(ds);
  double sum0 = 0;
  for (double v : bin.points[0]) sum0 += v;
  EXPECT_DOUBLE_EQ(sum0, 1.0);
}

TEST(BinarizeTest, TransactionsMatchExample11Vectors) {
  // Example 1.1: {1,2,3,5} over items 1..6 → (1,1,1,0,1,0).
  TransactionDataset ds;
  for (int i = 1; i <= 6; ++i) ds.items().Intern(std::to_string(i));
  ds.AddTransaction(Transaction({0, 1, 2, 4}));  // items 1,2,3,5
  BinarizedData bin = BinarizeTransactions(ds);
  EXPECT_EQ(bin.points[0],
            (std::vector<double>{1, 1, 1, 0, 1, 0}));
}

// --------------------------------------------- Centroid-based hierarchical --

TEST(CentroidHierarchicalTest, SimpleTwoBlobs) {
  std::vector<std::vector<double>> pts = {
      {0, 0}, {0.1, 0}, {0, 0.1},  // blob 1
      {5, 5}, {5.1, 5}, {5, 5.1},  // blob 2
  };
  CentroidHierarchicalOptions opt;
  opt.num_clusters = 2;
  opt.eliminate_singleton_outliers = false;
  auto result = ClusterCentroidHierarchical(pts, opt);
  ASSERT_TRUE(result.ok());
  const auto& a = result->clustering.assignment;
  EXPECT_EQ(a[0], a[1]);
  EXPECT_EQ(a[0], a[2]);
  EXPECT_EQ(a[3], a[4]);
  EXPECT_EQ(a[3], a[5]);
  EXPECT_NE(a[0], a[3]);
  EXPECT_EQ(result->num_merges, 4u);
}

TEST(CentroidHierarchicalTest, Example11Pathology) {
  // The paper's Example 1.1: after {1,2,3,5} and {2,3,4,5} merge (distance
  // √2), the centroid algorithm merges {1,4} with {6} (distance √3 beats
  // 3.5 and 4.5 to the merged centroid) even though they share no item.
  std::vector<std::vector<double>> pts = {
      {1, 1, 1, 0, 1, 0},  // {1,2,3,5}
      {0, 1, 1, 1, 1, 0},  // {2,3,4,5}
      {1, 0, 0, 1, 0, 0},  // {1,4}
      {0, 0, 0, 0, 0, 1},  // {6}
  };
  CentroidHierarchicalOptions opt;
  opt.num_clusters = 2;
  opt.eliminate_singleton_outliers = false;
  auto result = ClusterCentroidHierarchical(pts, opt);
  ASSERT_TRUE(result.ok());
  const auto& a = result->clustering.assignment;
  EXPECT_EQ(a[0], a[1]);
  EXPECT_EQ(a[2], a[3]);  // the undesirable merge the paper predicts
  EXPECT_NE(a[0], a[2]);
}

TEST(CentroidHierarchicalTest, SingletonOutlierElimination) {
  // 9 points: two tight blobs of 4 plus one far-away singleton. With the
  // 1/3-trigger the singleton must be eliminated once 3 clusters remain.
  std::vector<std::vector<double>> pts = {
      {0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1},
      {5, 5}, {5.1, 5}, {5, 5.1}, {5.1, 5.1},
      {100, 100},
  };
  CentroidHierarchicalOptions opt;
  opt.num_clusters = 2;
  auto result = ClusterCentroidHierarchical(pts, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_eliminated_singletons, 1u);
  EXPECT_EQ(result->clustering.assignment[8], kUnassigned);
  EXPECT_EQ(result->clustering.num_clusters(), 2u);
}

TEST(CentroidHierarchicalTest, RejectsBadInput) {
  EXPECT_TRUE(ClusterCentroidHierarchical({}, {})
                  .status()
                  .IsInvalidArgument());
  CentroidHierarchicalOptions opt;
  opt.num_clusters = 0;
  EXPECT_TRUE(ClusterCentroidHierarchical({{1.0}}, opt)
                  .status()
                  .IsInvalidArgument());
  opt.num_clusters = 1;
  EXPECT_TRUE(ClusterCentroidHierarchical({{1.0}, {1.0, 2.0}}, opt)
                  .status()
                  .IsInvalidArgument());
}

TEST(CentroidHierarchicalTest, DeterministicAndCoversAllPoints) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({static_cast<double>(i % 7), static_cast<double>(i % 3)});
  }
  CentroidHierarchicalOptions opt;
  opt.num_clusters = 4;
  opt.eliminate_singleton_outliers = false;
  auto r1 = ClusterCentroidHierarchical(pts, opt);
  auto r2 = ClusterCentroidHierarchical(pts, opt);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->clustering.assignment, r2->clustering.assignment);
  EXPECT_EQ(r1->clustering.num_assigned(), 30u);
}

// ------------------------------------------------------------ Single-link --

TEST(SingleLinkTest, CutsWeakestBridges) {
  // Chain of similarities: two tight groups bridged weakly.
  SimilarityTable t(6);
  ASSERT_TRUE(t.Set(0, 1, 0.9).ok());
  ASSERT_TRUE(t.Set(1, 2, 0.9).ok());
  ASSERT_TRUE(t.Set(3, 4, 0.9).ok());
  ASSERT_TRUE(t.Set(4, 5, 0.9).ok());
  ASSERT_TRUE(t.Set(2, 3, 0.2).ok());  // bridge
  auto c = ClusterSingleLink(t, 2);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->num_clusters(), 2u);
  EXPECT_EQ(c->assignment[0], c->assignment[2]);
  EXPECT_EQ(c->assignment[3], c->assignment[5]);
  EXPECT_NE(c->assignment[0], c->assignment[3]);
}

TEST(SingleLinkTest, ChainingPathologyOnFigure1Shape) {
  // §1.1: "The MST algorithm may first merge transactions {1,2,3} and
  // {1,2,7}" — i.e. single-link crosses cluster borders through the most
  // similar pair. Verify the cross-pair survives to the 2-cluster cut,
  // i.e. {1,2,3} and {1,2,7} land together even though the ground truth
  // separates them.
  TransactionDataset ds;
  auto add_triples = [&](const std::vector<ItemId>& items) {
    for (size_t i = 0; i < items.size(); ++i)
      for (size_t j = i + 1; j < items.size(); ++j)
        for (size_t l = j + 1; l < items.size(); ++l)
          ds.AddTransaction(Transaction({items[i], items[j], items[l]}));
  };
  add_triples({1, 2, 3, 4, 5});
  add_triples({1, 2, 6, 7});
  TransactionJaccard sim(ds);
  auto c = ClusterSingleLink(sim, 2);
  ASSERT_TRUE(c.ok());
  // Index 0 is {1,2,3}; index 11 is {1,2,7} (second block, second triple).
  // All transactions containing {1,2} chain together under single link.
  EXPECT_EQ(c->assignment[0], c->assignment[11]);
}

TEST(SingleLinkTest, KEqualsNAndK1) {
  SimilarityTable t(4);
  ASSERT_TRUE(t.Set(0, 1, 0.8).ok());
  auto all_separate = ClusterSingleLink(t, 4);
  ASSERT_TRUE(all_separate.ok());
  EXPECT_EQ(all_separate->num_clusters(), 4u);
  auto one = ClusterSingleLink(t, 1);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->num_clusters(), 1u);
}

TEST(SingleLinkTest, EmptyAndOversizedK) {
  SimilarityTable t(0);
  auto c = ClusterSingleLink(t, 3);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->num_clusters(), 0u);
  SimilarityTable t2(2);
  auto c2 = ClusterSingleLink(t2, 10);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2->num_clusters(), 2u);
}

// ---------------------------------------------------------- Group average --

TEST(GroupAverageTest, SeparatesBlobs) {
  SimilarityTable t(6);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      ASSERT_TRUE(t.Set(i, j, 0.9).ok());
    }
  }
  for (size_t i = 3; i < 6; ++i) {
    for (size_t j = i + 1; j < 6; ++j) {
      ASSERT_TRUE(t.Set(i, j, 0.9).ok());
    }
  }
  ASSERT_TRUE(t.Set(2, 3, 0.3).ok());
  auto c = ClusterGroupAverage(t, 2);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->num_clusters(), 2u);
  EXPECT_EQ(c->assignment[0], c->assignment[2]);
  EXPECT_EQ(c->assignment[3], c->assignment[5]);
  EXPECT_NE(c->assignment[0], c->assignment[3]);
}

TEST(GroupAverageTest, SharesTheFirstMergePathology) {
  // §1.1: "similar to MST, it [group average] may first merge a pair of
  // transactions … belonging to different clusters" — from singletons, the
  // single most-similar pair wins regardless of linkage, so a strong bridge
  // edge is merged first and the final 2-clustering cannot separate the
  // blobs cleanly.
  SimilarityTable t(8);
  auto blob = [&](size_t lo, size_t hi, double s) {
    for (size_t i = lo; i <= hi; ++i) {
      for (size_t j = i + 1; j <= hi; ++j) {
        ASSERT_TRUE(t.Set(i, j, s).ok());
      }
    }
  };
  blob(0, 3, 0.8);
  blob(4, 7, 0.8);
  ASSERT_TRUE(t.Set(3, 4, 0.85).ok());  // strong single bridge edge
  auto ga = ClusterGroupAverage(t, 2);
  ASSERT_TRUE(ga.ok());
  // Points 3 and 4 stay together → the ground-truth blobs are not cleanly
  // recovered.
  EXPECT_EQ(ga->assignment[3], ga->assignment[4]);
}

TEST(GroupAverageTest, ResistsChainingThatBreaksSingleLink) {
  // §1.1: "The use of group average ameliorates some of the problems with
  // the MST algorithm." Two 4-cliques joined through an outlier X with the
  // strongest individual edges: single-link's MST must cut a clique edge
  // (all tree edges through X are stronger), splitting a blob; group
  // average keeps both blobs intact because X's *average* pull is weak.
  SimilarityTable t(9);
  auto blob = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i <= hi; ++i) {
      for (size_t j = i + 1; j <= hi; ++j) {
        ASSERT_TRUE(t.Set(i, j, 0.9).ok());
      }
    }
  };
  blob(0, 3);
  blob(4, 7);
  ASSERT_TRUE(t.Set(8, 0, 0.95).ok());
  ASSERT_TRUE(t.Set(8, 4, 0.95).ok());

  auto is_blob_intact = [](const Clustering& c, size_t lo, size_t hi) {
    for (size_t i = lo + 1; i <= hi; ++i) {
      if (c.assignment[i] != c.assignment[lo]) return false;
    }
    return true;
  };

  auto sl = ClusterSingleLink(t, 2);
  ASSERT_TRUE(sl.ok());
  EXPECT_TRUE(!is_blob_intact(*sl, 0, 3) || !is_blob_intact(*sl, 4, 7));

  auto ga = ClusterGroupAverage(t, 2);
  ASSERT_TRUE(ga.ok());
  EXPECT_TRUE(is_blob_intact(*ga, 0, 3));
  EXPECT_TRUE(is_blob_intact(*ga, 4, 7));
  EXPECT_NE(ga->assignment[1], ga->assignment[5]);
}

TEST(GroupAverageTest, KBoundsRespected) {
  SimilarityTable t(3);
  ASSERT_TRUE(t.Set(0, 1, 0.9).ok());
  auto c = ClusterGroupAverage(t, 1);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->num_clusters(), 1u);
  EXPECT_EQ(c->num_assigned(), 3u);
}

// ---------------------------------------------------------------- K-means --

TEST(KMeansTest, SeparatesBlobs) {
  std::vector<std::vector<double>> pts = {
      {0, 0}, {0.2, 0}, {0, 0.2}, {9, 9}, {9.2, 9}, {9, 9.2}};
  KMeansOptions opt;
  opt.num_clusters = 2;
  auto r = ClusterKMeans(pts, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  const auto& a = r->clustering.assignment;
  EXPECT_EQ(a[0], a[1]);
  EXPECT_EQ(a[0], a[2]);
  EXPECT_EQ(a[3], a[4]);
  EXPECT_NE(a[0], a[3]);
  EXPECT_GT(r->criterion, 0.0);
}

TEST(KMeansTest, CriterionIsSumOfDistancesNotSquares) {
  // One cluster, two points at distance 2 from each other → centroid in the
  // middle, E = 1 + 1 = 2.
  std::vector<std::vector<double>> pts = {{0.0}, {2.0}};
  KMeansOptions opt;
  opt.num_clusters = 1;
  auto r = ClusterKMeans(pts, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->criterion, 2.0, 1e-9);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({std::sin(i * 1.7), std::cos(i * 0.9)});
  }
  KMeansOptions opt;
  opt.num_clusters = 3;
  opt.seed = 5;
  auto r1 = ClusterKMeans(pts, opt);
  auto r2 = ClusterKMeans(pts, opt);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->clustering.assignment, r2->clustering.assignment);
}

TEST(KMeansTest, RejectsBadInput) {
  KMeansOptions opt;
  opt.num_clusters = 3;
  EXPECT_TRUE(ClusterKMeans({{1.0}, {2.0}}, opt)
                  .status()
                  .IsInvalidArgument());
  opt.num_clusters = 0;
  EXPECT_TRUE(ClusterKMeans({{1.0}}, opt).status().IsInvalidArgument());
}

TEST(KMeansTest, AllIdenticalPoints) {
  std::vector<std::vector<double>> pts(5, std::vector<double>{1.0, 1.0});
  KMeansOptions opt;
  opt.num_clusters = 2;
  auto r = ClusterKMeans(pts, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->criterion, 0.0, 1e-12);
}

}  // namespace
}  // namespace rock
