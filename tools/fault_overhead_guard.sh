#!/usr/bin/env bash
# tools/fault_overhead_guard.sh — failpoint compile-out perf gate.
#
# The fault subsystem promises that release builds can compile every
# failpoint site to a no-op (-DROCK_FAILPOINTS=OFF) and that the default
# build's armed-flag fast path costs nothing measurable. This gate proves
# both: it builds the rock CLI with failpoints ON (the default) and OFF,
# runs the same disk-labeling workload in each, and fails when the ON
# build's labeling scan (stage.label_scan, min of N runs) is more than
# TOLERANCE slower than the compiled-out build. The comparison is a ratio
# between two builds on the same machine in the same run, so it holds on
# any CI host — no absolute-seconds baseline needed.
#
# It also checks the compile-out contract itself: the OFF build must
# *reject* --failpoints with an error, never silently ignore a schedule.
#
# Usage: tools/fault_overhead_guard.sh [on-build-dir] [off-build-dir]

set -euo pipefail
cd "$(dirname "$0")/.."

ON_DIR="${1:-build}"
OFF_DIR="${2:-build-nofp}"
RUNS=5
TOLERANCE=0.25
SCALE=0.05 # DB ≈ 5700 tx — enough labeling work to time meaningfully

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "=== fault-overhead: building rock CLI with failpoints ON and OFF ==="
cmake -B "$ON_DIR" -S . -DROCK_FAILPOINTS=ON >/dev/null
cmake --build "$ON_DIR" -j --target rock_cli
cmake -B "$OFF_DIR" -S . -DROCK_FAILPOINTS=OFF >/dev/null
cmake --build "$OFF_DIR" -j --target rock_cli

echo "=== fault-overhead: compile-out contract ==="
if "$OFF_DIR/tools/rock" pipeline --store=/dev/null \
    --failpoints='store.read=fire_on_hit_1:error' >/dev/null 2>&1; then
  echo "FAIL: the ROCK_FAILPOINTS=OFF build silently accepted --failpoints"
  exit 1
fi
echo "OFF build rejects --failpoints: OK"

STORE="$WORK/baskets.store"
"$ON_DIR/tools/rock" gen --dataset=basket --scale="$SCALE" --out="$STORE" \
    >/dev/null

# Minimum stage.label_scan seconds over $RUNS pipeline runs of one build.
min_label_scan() {
  local rock_bin="$1" best=""
  for i in $(seq "$RUNS"); do
    local report="$WORK/metrics_$i.json"
    "$rock_bin" pipeline --store="$STORE" --sample-size=1000 --theta=0.5 \
        --k=10 --metrics-json="$report" >/dev/null
    local t
    t=$(python3 -c "
import json
with open('$report') as f:
    report = json.load(f)
print(report['timers']['stage.label_scan']['total_seconds'])")
    best=$(python3 -c "print(min($t, ${best:-float('inf')}))")
  done
  echo "$best"
}

echo "=== fault-overhead: timing stage.label_scan (min of $RUNS) ==="
ON_SECS=$(min_label_scan "$ON_DIR/tools/rock")
OFF_SECS=$(min_label_scan "$OFF_DIR/tools/rock")

python3 - "$ON_SECS" "$OFF_SECS" "$TOLERANCE" <<'EOF'
import sys
on, off, tol = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
ratio = on / off if off > 0 else float("inf")
ceiling = 1.0 + tol
verdict = "OK" if ratio <= ceiling else "REGRESSION"
print(f"stage.label_scan: failpoints ON {on:.4f}s, OFF {off:.4f}s, "
      f"ratio {ratio:.2f}x, ceiling {ceiling:.2f}x -> {verdict}")
sys.exit(0 if ratio <= ceiling else 1)
EOF
