#!/usr/bin/env bash
# tools/perf_smoke.sh — CI's merge-engine perf gate.
#
# Runs bench_fig5_scalability at a small scale with --compare-engines
# (every (n, θ) cell under both the flat and the hashed merge engine),
# collects the BENCH_rock.json perf report, and fails if the flat/hashed
# stage.merge speedup regressed more than 25% against the checked-in
# baseline (bench/baselines/BENCH_rock_smoke.json). The gate compares
# speedup *ratios*, never absolute seconds, so it holds across machines.
#
# Usage: tools/perf_smoke.sh [build-dir]   (default: build)
#
# To refresh the baseline after an intentional perf change:
#   tools/perf_smoke.sh && cp build/BENCH_rock_smoke.json \
#       bench/baselines/BENCH_rock_smoke.json

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SCALE=0.02  # DB ≈ 2300 tx -> sample sizes 1000 and 2000 only
BASELINE=bench/baselines/BENCH_rock_smoke.json
REPORT="$BUILD_DIR/BENCH_rock_smoke.json"

cmake --build "$BUILD_DIR" -j --target bench_fig5_scalability

echo "=== perf-smoke: bench_fig5_scalability $SCALE --compare-engines ==="
ROCK_BENCH_JSON="$REPORT" \
    "$BUILD_DIR/bench/bench_fig5_scalability" "$SCALE" --compare-engines

echo "=== perf-smoke: gate vs $BASELINE ==="
python3 tools/check_perf_regression.py "$REPORT" "$BASELINE"
