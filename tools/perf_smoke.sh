#!/usr/bin/env bash
# tools/perf_smoke.sh — CI's engine perf gates.
#
# Seven gates, all comparing speedup *ratios* (never absolute seconds, so
# the gate holds across machines) against checked-in baselines, failing on
# a >25% regression of the geometric-mean ratio:
#
#   1. merge engines — bench_fig5_scalability at a small scale with
#      --compare-engines (every (n, θ) cell under the parallel, flat and
#      hashed merge engines); gates on the flat/hashed stage.merge speedup
#      vs bench/baselines/BENCH_rock_smoke.json.
#   2. neighbor engines — bench_neighbors_ablation --compare-engines
#      (packed bit-plane engine vs the scalar per-pair oracle, graphs
#      verified identical); gates on the packed/scalar stage.neighbors
#      speedup vs bench/baselines/BENCH_neighbors_smoke.json.
#   3. link engines — bench_links_ablation --compare-engines (bit-plane
#      popcount engine vs the Fig. 4 hashed-scatter oracle, frozen CSR
#      rows verified byte-identical); gates on the packed/hashed
#      stage.links speedup vs bench/baselines/BENCH_links_smoke.json.
#   4. serve loopback — bench_serve (label server vs direct Assign loop,
#      assignments verified identical); gates on the direct/serve
#      stage.label_query ratio vs bench/baselines/BENCH_serve_smoke.json,
#      plus an absolute ≥ 10k QPS floor on the served answers.
#   5. graph scale — bench_graph_scale at n = 20k, θ = 0.73 (LSH-candidate
#      neighbors + kAuto links vs the all-pairs single-thread baseline,
#      LSH edges verified an exact subgraph); gates on the lsh/baseline
#      stage.graph ratio vs bench/baselines/BENCH_graph_smoke.json AND
#      floors the LSH candidate recall at 0.999.
#   6. streaming appends — bench_stream (StreamingSession::Append vs the
#      direct Assign loop over the same held-out rows, assignments
#      verified identical); gates on the direct/stream stage.append_label
#      ratio vs bench/baselines/BENCH_stream_smoke.json, plus an absolute
#      ≥ 10k rows/s floor on appended-row labeling throughput.
#   7. parallel merge engine — reuses gate 1's report (the same
#      --compare-engines run also times the parallel engine, whose
#      MergeRecords are differentially pinned to flat/hashed in
#      tests/diag_differential_test.cc); gates on the flat/parallel
#      stage.merge speedup vs bench/baselines/BENCH_merge_smoke.json.
#
# Usage: tools/perf_smoke.sh [build-dir]   (default: build)
#
# To refresh the baselines after an intentional perf change:
#   tools/perf_smoke.sh && \
#     cp build/BENCH_rock_smoke.json bench/baselines/BENCH_rock_smoke.json && \
#     cp build/BENCH_rock_smoke.json bench/baselines/BENCH_merge_smoke.json && \
#     cp build/BENCH_neighbors_smoke.json \
#         bench/baselines/BENCH_neighbors_smoke.json && \
#     cp build/BENCH_links_smoke.json bench/baselines/BENCH_links_smoke.json && \
#     cp build/BENCH_serve_smoke.json bench/baselines/BENCH_serve_smoke.json && \
#     cp build/BENCH_graph_smoke.json bench/baselines/BENCH_graph_smoke.json && \
#     cp build/BENCH_stream_smoke.json \
#         bench/baselines/BENCH_stream_smoke.json

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SCALE=0.02  # DB ≈ 2300 tx -> sample sizes 1000 and 2000 only
BASELINE=bench/baselines/BENCH_rock_smoke.json
REPORT="$BUILD_DIR/BENCH_rock_smoke.json"
MRG_BASELINE=bench/baselines/BENCH_merge_smoke.json
NBR_BASELINE=bench/baselines/BENCH_neighbors_smoke.json
NBR_REPORT="$BUILD_DIR/BENCH_neighbors_smoke.json"
LNK_BASELINE=bench/baselines/BENCH_links_smoke.json
LNK_REPORT="$BUILD_DIR/BENCH_links_smoke.json"
SRV_BASELINE=bench/baselines/BENCH_serve_smoke.json
SRV_REPORT="$BUILD_DIR/BENCH_serve_smoke.json"
GRF_BASELINE=bench/baselines/BENCH_graph_smoke.json
GRF_REPORT="$BUILD_DIR/BENCH_graph_smoke.json"
STRM_BASELINE=bench/baselines/BENCH_stream_smoke.json
STRM_REPORT="$BUILD_DIR/BENCH_stream_smoke.json"

cmake --build "$BUILD_DIR" -j --target bench_fig5_scalability \
    bench_neighbors_ablation bench_links_ablation bench_serve \
    bench_graph_scale bench_stream

echo "=== perf-smoke: bench_fig5_scalability $SCALE --compare-engines ==="
ROCK_BENCH_JSON="$REPORT" \
    "$BUILD_DIR/bench/bench_fig5_scalability" "$SCALE" --compare-engines

echo "=== perf-smoke: gate vs $BASELINE ==="
python3 tools/check_perf_regression.py "$REPORT" "$BASELINE"

# Gate 7 rides on the same report: the --compare-engines run above timed
# the parallel engine too, so only the gate invocation differs.
echo "=== perf-smoke: gate vs $MRG_BASELINE (parallel vs flat) ==="
python3 tools/check_perf_regression.py "$REPORT" "$MRG_BASELINE" \
    --engines=parallel,flat --stage=stage.merge

# Best-of-3 timing per cell: the neighbor stage is fast at smoke scale, so
# a single rep is noisy enough to trip a ratio gate on a busy CI box.
echo "=== perf-smoke: bench_neighbors_ablation --compare-engines ==="
ROCK_BENCH_JSON="$NBR_REPORT" \
    "$BUILD_DIR/bench/bench_neighbors_ablation" --compare-engines \
    --scale=$SCALE --max-n=2000 --reps=3

echo "=== perf-smoke: gate vs $NBR_BASELINE ==="
python3 tools/check_perf_regression.py "$NBR_REPORT" "$NBR_BASELINE" \
    --engines=packed,scalar --stage=stage.neighbors

# Same best-of-3 discipline: the packed link stage finishes in single-digit
# milliseconds at smoke scale.
echo "=== perf-smoke: bench_links_ablation --compare-engines ==="
ROCK_BENCH_JSON="$LNK_REPORT" \
    "$BUILD_DIR/bench/bench_links_ablation" --compare-engines \
    --scale=$SCALE --max-n=2000 --reps=3

echo "=== perf-smoke: gate vs $LNK_BASELINE ==="
python3 tools/check_perf_regression.py "$LNK_REPORT" "$LNK_BASELINE" \
    --engines=packed,hashed --stage=stage.links

# Serve loopback: best-of-3 like the other sub-second stages, with an
# absolute QPS floor on top of the machine-independent ratio gate.
echo "=== perf-smoke: bench_serve --min-qps=10000 ==="
(cd "$BUILD_DIR" && ROCK_BENCH_JSON=BENCH_serve_smoke.json \
    ./bench/bench_serve "$SCALE" --min-qps=10000 --reps=3)

echo "=== perf-smoke: gate vs $SRV_BASELINE ==="
python3 tools/check_perf_regression.py "$SRV_REPORT" "$SRV_BASELINE" \
    --engines=serve,direct --stage=stage.label_query

# Graph-scale gate: LSH-candidate generation vs the all-pairs packed
# baseline at n = 20k (the bench differentially verifies every engine
# against the exact graph before timing counts), plus the 0.999 candidate
# recall floor at θ = 0.73 with tuned banding.
echo "=== perf-smoke: bench_graph_scale --ns=20000 ==="
ROCK_BENCH_JSON="$GRF_REPORT" \
    "$BUILD_DIR/bench/bench_graph_scale" --ns=20000 --threads=8

echo "=== perf-smoke: gate vs $GRF_BASELINE ==="
python3 tools/check_perf_regression.py "$GRF_REPORT" "$GRF_BASELINE" \
    --engines=lsh,baseline --stage=stage.graph --min-recall=0.999

# Streaming appends: the session labels every appended row through the
# same §4.6 Assign path as the direct loop (differentially verified inside
# the bench); gate on the direct/stream ratio plus an absolute
# appended-row labeling throughput floor.
echo "=== perf-smoke: bench_stream --reps=3 ==="
(cd "$BUILD_DIR" && ROCK_BENCH_JSON=BENCH_stream_smoke.json \
    ./bench/bench_stream "$SCALE" --reps=3)

echo "=== perf-smoke: gate vs $STRM_BASELINE ==="
python3 tools/check_perf_regression.py "$STRM_REPORT" "$STRM_BASELINE" \
    --engines=stream,direct --stage=stage.append_label \
    --min-counter=stream.rows_per_sec:10000
