#!/usr/bin/env bash
# tools/tier1.sh — the repo's tier-1 verification gate.
#
#   1. standard build + full ctest suite (ROADMAP.md "Tier-1 verify");
#   2. ThreadSanitizer build of the threaded/diag subset (ctest -L sanitize),
#      so data races in the parallel graph phases fail the gate.
#
# Usage: tools/tier1.sh [--skip-tsan]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: standard build + full test suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" == "--skip-tsan" ]]; then
  echo "=== tier-1: TSan stage skipped (--skip-tsan) ==="
  exit 0
fi

echo "=== tier-1: TSan build + 'sanitize'-labeled tests ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j
ctest --test-dir build-tsan -L sanitize --output-on-failure -j "$(nproc)"

echo "=== tier-1: OK ==="
