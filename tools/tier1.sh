#!/usr/bin/env bash
# tools/tier1.sh — the repo's tier-1 verification gate.
#
#   1. standard build + full ctest suite (ROADMAP.md "Tier-1 verify");
#   2. serve smoke: gen → pipeline → build → query/serve, diffing the
#      served assignments byte-for-byte against the batch pipeline's;
#   3. stream smoke: `rock append` onto a copy of the store, diffing the
#      incrementally labeled rows byte-for-byte against the tail of a full
#      `rock query --from-store` relabel of the grown store, plus the
#      'stream'-labeled ctest subset (the soak/differential harness);
#   4. ThreadSanitizer build of the threaded/diag subset (ctest -L sanitize,
#      which includes the streaming soak), so data races in the parallel
#      graph phases or the background-rebuild path fail the gate.
#
# Usage: tools/tier1.sh [--skip-tsan]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: standard build + full test suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== tier-1: serve smoke (serve ≡ pipeline differential) ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
ROCK=build/tools/rock
[[ -x "$ROCK" ]] || ROCK=build/rock
"$ROCK" gen --dataset=basket --scale=0.02 --out="$SMOKE_DIR/baskets.store"
"$ROCK" pipeline --store="$SMOKE_DIR/baskets.store" --sample-size=400 \
    --theta=0.5 --k=10 --assignments="$SMOKE_DIR/batch.csv"
"$ROCK" build --store="$SMOKE_DIR/baskets.store" --sample-size=400 \
    --theta=0.5 --k=10 --model="$SMOKE_DIR/model.rock"
"$ROCK" query --model="$SMOKE_DIR/model.rock" \
    --from-store="$SMOKE_DIR/baskets.store" --threads=4 \
    --assignments="$SMOKE_DIR/served.csv"
cmp "$SMOKE_DIR/batch.csv" "$SMOKE_DIR/served.csv" \
    || { echo "serve smoke: served assignments differ from pipeline"; exit 1; }
printf '3 5 9\n# comment\n17\n' | \
    "$ROCK" serve --model="$SMOKE_DIR/model.rock" --threads=2 \
    > "$SMOKE_DIR/answers.txt"
[[ "$(wc -l < "$SMOKE_DIR/answers.txt")" == "2" ]] \
    || { echo "serve smoke: line protocol answered wrong line count"; exit 1; }
echo "serve smoke: OK"

echo "=== tier-1: stream smoke (append ≡ full relabel differential) ==="
"$ROCK" gen --dataset=basket --scale=0.01 --out="$SMOKE_DIR/extra.store"
cp "$SMOKE_DIR/baskets.store" "$SMOKE_DIR/grown.store"
"$ROCK" append --store="$SMOKE_DIR/grown.store" \
    --model="$SMOKE_DIR/model.rock" --from-store="$SMOKE_DIR/extra.store" \
    --assignments="$SMOKE_DIR/append.csv"
"$ROCK" query --model="$SMOKE_DIR/model.rock" \
    --from-store="$SMOKE_DIR/grown.store" --threads=4 \
    --assignments="$SMOKE_DIR/relabel.csv"
# batch.csv = header + one line per base row; the append CSV (absolute row
# ids) must be the exact tail of the full relabel of the grown store.
BASE_LINES="$(wc -l < "$SMOKE_DIR/batch.csv")"
tail -n +2 "$SMOKE_DIR/append.csv" > "$SMOKE_DIR/append_rows.csv"
tail -n "+$((BASE_LINES + 1))" "$SMOKE_DIR/relabel.csv" \
    > "$SMOKE_DIR/relabel_tail.csv"
cmp "$SMOKE_DIR/append_rows.csv" "$SMOKE_DIR/relabel_tail.csv" \
    || { echo "stream smoke: incremental labels differ from full relabel"; \
         exit 1; }
ctest --test-dir build -L stream --output-on-failure -j "$(nproc)"
echo "stream smoke: OK"

if [[ "${1:-}" == "--skip-tsan" ]]; then
  echo "=== tier-1: TSan stage skipped (--skip-tsan) ==="
  exit 0
fi

echo "=== tier-1: TSan build + 'sanitize'-labeled tests ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j
ctest --test-dir build-tsan -L sanitize --output-on-failure -j "$(nproc)"

echo "=== tier-1: OK ==="
