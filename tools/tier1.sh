#!/usr/bin/env bash
# tools/tier1.sh — the repo's tier-1 verification gate.
#
#   1. standard build + full ctest suite (ROADMAP.md "Tier-1 verify");
#   2. serve smoke: gen → pipeline → build → query/serve, diffing the
#      served assignments byte-for-byte against the batch pipeline's;
#   3. ThreadSanitizer build of the threaded/diag subset (ctest -L sanitize),
#      so data races in the parallel graph phases fail the gate.
#
# Usage: tools/tier1.sh [--skip-tsan]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: standard build + full test suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== tier-1: serve smoke (serve ≡ pipeline differential) ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
ROCK=build/tools/rock
[[ -x "$ROCK" ]] || ROCK=build/rock
"$ROCK" gen --dataset=basket --scale=0.02 --out="$SMOKE_DIR/baskets.store"
"$ROCK" pipeline --store="$SMOKE_DIR/baskets.store" --sample-size=400 \
    --theta=0.5 --k=10 --assignments="$SMOKE_DIR/batch.csv"
"$ROCK" build --store="$SMOKE_DIR/baskets.store" --sample-size=400 \
    --theta=0.5 --k=10 --model="$SMOKE_DIR/model.rock"
"$ROCK" query --model="$SMOKE_DIR/model.rock" \
    --from-store="$SMOKE_DIR/baskets.store" --threads=4 \
    --assignments="$SMOKE_DIR/served.csv"
cmp "$SMOKE_DIR/batch.csv" "$SMOKE_DIR/served.csv" \
    || { echo "serve smoke: served assignments differ from pipeline"; exit 1; }
printf '3 5 9\n# comment\n17\n' | \
    "$ROCK" serve --model="$SMOKE_DIR/model.rock" --threads=2 \
    > "$SMOKE_DIR/answers.txt"
[[ "$(wc -l < "$SMOKE_DIR/answers.txt")" == "2" ]] \
    || { echo "serve smoke: line protocol answered wrong line count"; exit 1; }
echo "serve smoke: OK"

if [[ "${1:-}" == "--skip-tsan" ]]; then
  echo "=== tier-1: TSan stage skipped (--skip-tsan) ==="
  exit 0
fi

echo "=== tier-1: TSan build + 'sanitize'-labeled tests ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j
ctest --test-dir build-tsan -L sanitize --output-on-failure -j "$(nproc)"

echo "=== tier-1: OK ==="
