// rock — command-line front end for librock. All logic lives in
// src/cli/cli.cc so the test suite can exercise it in-process.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "util/failpoint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string output;
  if (rock::Status s = rock::fail::ConfigureFromEnv(); !s.ok()) {
    std::fprintf(stderr, "error: ROCK_FAILPOINTS: %s\n",
                 s.ToString().c_str());
    return 2;
  }
  // stdin/stdout carry the `rock serve` line protocol; summary text still
  // arrives through `output` so piped protocol streams stay clean.
  const int code = rock::RunCli(args, &output, &std::cin, &std::cout);
  std::fputs(output.c_str(), stdout);
  return code;
}
