// rock — command-line front end for librock. All logic lives in
// src/cli/cli.cc so the test suite can exercise it in-process.

#include <cstdio>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string output;
  const int code = rock::RunCli(args, &output);
  std::fputs(output.c_str(), stdout);
  return code;
}
