#!/usr/bin/env python3
"""Gate on an engine-pair speedup ratio in a BENCH_rock.json report.

Usage: check_perf_regression.py CURRENT.json BASELINE.json
           [--tolerance=0.25] [--engines=NEW,OLD] [--stage=STAGE]
           [--min-recall=R [--recall-counter=NAME]]
           [--min-counter=NAME:FLOOR ...]

Both files follow the BENCH_rock.json schema (docs/OBSERVABILITY.md §2b) and
must come from a --compare-engines bench run, which emits one entry per
(n, theta, engine) cell. For every (n, theta) cell present in both reports,
the per-cell metric is the ratio

    speedup = OLD-engine STAGE seconds / NEW-engine STAGE seconds

and the gate compares the geometric mean of those ratios: current must not
fall below baseline * (1 - tolerance). Ratios — not absolute seconds — keep
the gate independent of the machine the baseline was recorded on; the
geometric mean keeps one noisy cell from dominating.

Defaults match the merge-engine gate (bench_fig5_scalability):
--engines=flat,hashed --stage=stage.merge. The neighbor-engine gate
(bench_neighbors_ablation) uses --engines=packed,scalar
--stage=stage.neighbors.

--min-recall=R additionally floors an accuracy counter in the CURRENT
report: every NEW-engine entry carrying --recall-counter (default
neighbors.lsh_recall_ppm, parts per million) must report at least
R * 1e6. The graph-scale gate (bench_graph_scale) uses it to pin the LSH
candidate recall at >= 0.999 alongside the lsh/baseline time ratio.

--min-counter=NAME:FLOOR floors a raw counter the same way (repeatable).
The streaming gate (bench_stream) uses it to pin an absolute
stream.rows_per_sec floor on the appended-row labeling throughput
alongside the direct/stream time ratio.

Exit status: 0 pass, 1 regression, 2 bad input.
"""

import json
import math
import sys


def load_cells(path, engines, stage):
    """Maps (n, theta) -> {engine: stage seconds}."""
    with open(path) as f:
        report = json.load(f)
    if report.get("version") != 1:
        raise ValueError(f"{path}: unsupported schema version "
                         f"{report.get('version')!r}")
    cells = {}
    for entry in report.get("entries", []):
        params = entry.get("params", {})
        engine = params.get("engine")
        seconds = entry.get("timers", {}).get(stage)
        if engine not in engines or seconds is None:
            continue
        key = (params.get("n"), params.get("theta"))
        cells.setdefault(key, {})[engine] = seconds
    return cells


def speedups(cells, new_engine, old_engine):
    """Maps (n, theta) -> old/new stage-seconds ratio, where both ran."""
    out = {}
    for key, engines in cells.items():
        new = engines.get(new_engine)
        old = engines.get(old_engine)
        if new and old and new > 0:
            out[key] = old / new
    return out


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def check_counter_floor(path, engine, counter, floor, what="COUNTER"):
    """Floors a raw counter on every entry of `engine`; returns pass."""
    with open(path) as f:
        report = json.load(f)
    checked = 0
    ok = True
    for entry in report.get("entries", []):
        if entry.get("params", {}).get("engine") != engine:
            continue
        value = entry.get("counters", {}).get(counter)
        if value is None:
            continue
        checked += 1
        verdict = "OK" if value >= floor else f"{what} REGRESSION"
        print(f"{entry.get('label', '?')}: {counter} {value} "
              f"(floor {floor:.0f}) -> {verdict}")
        ok = ok and value >= floor
    if checked == 0:
        print(f"perf-smoke: no {engine} entries with {counter} in {path}",
              file=sys.stderr)
        return False
    return ok


def check_recall(path, engine, counter, min_recall):
    """Floors counter (ppm) on every entry of `engine`; returns pass."""
    return check_counter_floor(path, engine, counter, min_recall * 1e6,
                               what="RECALL")


def main(argv):
    tolerance = 0.25
    new_engine, old_engine = "flat", "hashed"
    stage = "stage.merge"
    min_recall = None
    recall_counter = "neighbors.lsh_recall_ppm"
    counter_floors = []
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--engines="):
            pair = arg.split("=", 1)[1].split(",")
            if len(pair) != 2:
                print("perf-smoke: --engines wants NEW,OLD", file=sys.stderr)
                return 2
            new_engine, old_engine = pair
        elif arg.startswith("--stage="):
            stage = arg.split("=", 1)[1]
        elif arg.startswith("--min-recall="):
            min_recall = float(arg.split("=", 1)[1])
        elif arg.startswith("--recall-counter="):
            recall_counter = arg.split("=", 1)[1]
        elif arg.startswith("--min-counter="):
            spec = arg.split("=", 1)[1]
            name, _, floor = spec.rpartition(":")
            if not name:
                print("perf-smoke: --min-counter wants NAME:FLOOR",
                      file=sys.stderr)
                return 2
            try:
                counter_floors.append((name, float(floor)))
            except ValueError:
                print(f"perf-smoke: bad --min-counter floor {floor!r}",
                      file=sys.stderr)
                return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    engines = (new_engine, old_engine)
    try:
        current = speedups(load_cells(paths[0], engines, stage),
                           new_engine, old_engine)
        baseline = speedups(load_cells(paths[1], engines, stage),
                            new_engine, old_engine)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"perf-smoke: {e}", file=sys.stderr)
        return 2

    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("perf-smoke: no comparable (n, theta) cells between "
              f"{paths[0]} and {paths[1]}", file=sys.stderr)
        return 2

    print(f"{stage} {old_engine}/{new_engine} speedup")
    print(f"{'cell':<16} {'current':>9} {'baseline':>9}")
    for key in shared:
        n, theta = key
        print(f"n={n} θ={theta}   {current[key]:8.2f}x {baseline[key]:8.2f}x")

    cur = geomean([current[k] for k in shared])
    base = geomean([baseline[k] for k in shared])
    floor = base * (1.0 - tolerance)
    verdict = "OK" if cur >= floor else "REGRESSION"
    print(f"geometric mean: current {cur:.2f}x, baseline {base:.2f}x, "
          f"floor {floor:.2f}x ({tolerance:.0%} tolerance) -> {verdict}")

    recall_ok = True
    if min_recall is not None:
        try:
            recall_ok = check_recall(paths[0], new_engine, recall_counter,
                                     min_recall)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"perf-smoke: {e}", file=sys.stderr)
            return 2
    floors_ok = True
    for name, counter_floor in counter_floors:
        try:
            floors_ok = check_counter_floor(
                paths[0], new_engine, name, counter_floor) and floors_ok
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"perf-smoke: {e}", file=sys.stderr)
            return 2
    return 0 if cur >= floor and recall_ok and floors_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
