// bench/bench_util.h — shared console-report helpers for the table/figure
// reproduction harnesses. Each bench binary prints the paper's rows followed
// by our measured values so EXPERIMENTS.md can quote them directly.

#ifndef ROCK_BENCH_BENCH_UTIL_H_
#define ROCK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "diag/metrics.h"
#include "eval/contingency.h"

namespace rock::bench {

/// Total seconds recorded for pipeline stage `stage` ("neighbors", "links",
/// "merge", …) in a diag metrics report; 0 when the stage never ran.
inline double StageSeconds(const diag::RunMetrics& metrics,
                           const std::string& stage) {
  const diag::TimerStats* stats = metrics.FindTimer("stage." + stage);
  return stats == nullptr ? 0.0 : stats->total_seconds;
}

/// Prints one labeled per-stage wall-time breakdown row (the three phases
/// of the paper's §4.5 cost model) plus the dominant size counters.
inline void PrintStageBreakdown(const std::string& label,
                                const diag::RunMetrics& metrics) {
  std::printf(
      "%-16s nbr %7.3fs  links %7.3fs  merge %7.3fs  "
      "(edges %llu, link-pairs %llu, merges %llu)\n",
      label.c_str(), StageSeconds(metrics, "neighbors"),
      StageSeconds(metrics, "links"), StageSeconds(metrics, "merge"),
      static_cast<unsigned long long>(metrics.CounterOr("graph.edges")),
      static_cast<unsigned long long>(
          metrics.CounterOr("links.nonzero_pairs")),
      static_cast<unsigned long long>(metrics.CounterOr("merge.merges")));
}

/// Prints a banner naming the experiment.
inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Prints a contingency table: one row per found cluster, one column per
/// ground-truth class, plus the outlier row.
inline void PrintContingency(const ContingencyTable& table,
                             const LabelSet& labels,
                             size_t max_clusters = SIZE_MAX) {
  std::printf("%-10s", "cluster");
  for (size_t l = 0; l < table.num_classes(); ++l) {
    std::printf("%14s", labels.Name(static_cast<LabelId>(l)).c_str());
  }
  std::printf("%10s\n", "total");
  const size_t shown =
      table.num_clusters() < max_clusters ? table.num_clusters() : max_clusters;
  for (size_t c = 0; c < shown; ++c) {
    std::printf("%-10zu", c + 1);
    for (size_t l = 0; l < table.num_classes(); ++l) {
      std::printf("%14llu",
                  static_cast<unsigned long long>(table.Count(c, l)));
    }
    std::printf("%10llu\n",
                static_cast<unsigned long long>(table.ClusterTotal(c)));
  }
  if (shown < table.num_clusters()) {
    std::printf("  … %zu more clusters elided\n",
                table.num_clusters() - shown);
  }
  std::printf("%-10s", "(outlier)");
  uint64_t outlier_total = 0;
  for (size_t l = 0; l < table.num_classes(); ++l) {
    std::printf("%14llu", static_cast<unsigned long long>(
                              table.outliers_per_class()[l]));
    outlier_total += table.outliers_per_class()[l];
  }
  std::printf("%10llu\n", static_cast<unsigned long long>(outlier_total));
}

// ------------------------------------------------- BENCH_rock.json writer --

/// Machine-readable perf-trajectory report (schema documented in
/// docs/OBSERVABILITY.md, `"version": 1`). Bench binaries append one entry
/// per measured configuration — label, string params, stage timers in
/// seconds, counters — and write the file once at exit. CI's perf-smoke job
/// diffs these files across commits, so keys must stay stable.
class PerfJsonWriter {
 public:
  explicit PerfJsonWriter(std::string tool) : tool_(std::move(tool)) {}

  /// Starts a new entry; subsequent Param/Timer/Counter calls attach to it.
  void BeginEntry(const std::string& label) {
    entries_.push_back(Entry{label, {}, {}, {}});
  }
  void Param(const std::string& key, const std::string& value) {
    entries_.back().params.emplace_back(key, value);
  }
  void Timer(const std::string& name, double seconds) {
    entries_.back().timers.emplace_back(name, seconds);
  }
  void Counter(const std::string& name, uint64_t value) {
    entries_.back().counters.emplace_back(name, value);
  }

  /// Copies every stage.* timer (total seconds) and all counters out of a
  /// run's diag metrics into the current entry.
  void AddRunMetrics(const diag::RunMetrics& metrics) {
    for (const auto& [name, stats] : metrics.timers) {
      if (name.rfind("stage.", 0) == 0) Timer(name, stats.total_seconds);
    }
    for (const auto& [name, value] : metrics.counters) {
      Counter(name, value);
    }
  }

  /// Resolved output path: the ROCK_BENCH_JSON environment variable when
  /// set, else BENCH_rock.json in the working directory.
  static std::string DefaultPath() {
    const char* env = std::getenv("ROCK_BENCH_JSON");
    return env != nullptr && env[0] != '\0' ? env : "BENCH_rock.json";
  }

  /// Writes the report; returns false (with a note on stderr) on I/O error.
  bool Write(const std::string& path = DefaultPath()) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf-json: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"version\": 1,\n  \"tool\": \"%s\",\n",
                 tool_.c_str());
    std::fprintf(f, "  \"entries\": [");
    for (size_t e = 0; e < entries_.size(); ++e) {
      const Entry& entry = entries_[e];
      std::fprintf(f, "%s\n    {\n      \"label\": \"%s\",\n",
                   e == 0 ? "" : ",", entry.label.c_str());
      std::fprintf(f, "      \"params\": {");
      for (size_t i = 0; i < entry.params.size(); ++i) {
        std::fprintf(f, "%s\"%s\": \"%s\"", i == 0 ? "" : ", ",
                     entry.params[i].first.c_str(),
                     entry.params[i].second.c_str());
      }
      std::fprintf(f, "},\n      \"timers\": {");
      for (size_t i = 0; i < entry.timers.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %.6f", i == 0 ? "" : ", ",
                     entry.timers[i].first.c_str(), entry.timers[i].second);
      }
      std::fprintf(f, "},\n      \"counters\": {");
      for (size_t i = 0; i < entry.counters.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %llu", i == 0 ? "" : ", ",
                     entry.counters[i].first.c_str(),
                     static_cast<unsigned long long>(
                         entry.counters[i].second));
      }
      std::fprintf(f, "}\n    }");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("perf json written to %s (%zu entries)\n", path.c_str(),
                entries_.size());
    return true;
  }

 private:
  struct Entry {
    std::string label;
    std::vector<std::pair<std::string, std::string>> params;
    std::vector<std::pair<std::string, double>> timers;
    std::vector<std::pair<std::string, uint64_t>> counters;
  };
  std::string tool_;
  std::vector<Entry> entries_;
};

}  // namespace rock::bench

#endif  // ROCK_BENCH_BENCH_UTIL_H_
