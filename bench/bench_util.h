// bench/bench_util.h — shared console-report helpers for the table/figure
// reproduction harnesses. Each bench binary prints the paper's rows followed
// by our measured values so EXPERIMENTS.md can quote them directly.

#ifndef ROCK_BENCH_BENCH_UTIL_H_
#define ROCK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "diag/metrics.h"
#include "eval/contingency.h"

namespace rock::bench {

/// Total seconds recorded for pipeline stage `stage` ("neighbors", "links",
/// "merge", …) in a diag metrics report; 0 when the stage never ran.
inline double StageSeconds(const diag::RunMetrics& metrics,
                           const std::string& stage) {
  const diag::TimerStats* stats = metrics.FindTimer("stage." + stage);
  return stats == nullptr ? 0.0 : stats->total_seconds;
}

/// Prints one labeled per-stage wall-time breakdown row (the three phases
/// of the paper's §4.5 cost model) plus the dominant size counters.
inline void PrintStageBreakdown(const std::string& label,
                                const diag::RunMetrics& metrics) {
  std::printf(
      "%-16s nbr %7.3fs  links %7.3fs  merge %7.3fs  "
      "(edges %llu, link-pairs %llu, merges %llu)\n",
      label.c_str(), StageSeconds(metrics, "neighbors"),
      StageSeconds(metrics, "links"), StageSeconds(metrics, "merge"),
      static_cast<unsigned long long>(metrics.CounterOr("graph.edges")),
      static_cast<unsigned long long>(
          metrics.CounterOr("links.nonzero_pairs")),
      static_cast<unsigned long long>(metrics.CounterOr("merge.merges")));
}

/// Prints a banner naming the experiment.
inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Prints a contingency table: one row per found cluster, one column per
/// ground-truth class, plus the outlier row.
inline void PrintContingency(const ContingencyTable& table,
                             const LabelSet& labels,
                             size_t max_clusters = SIZE_MAX) {
  std::printf("%-10s", "cluster");
  for (size_t l = 0; l < table.num_classes(); ++l) {
    std::printf("%14s", labels.Name(static_cast<LabelId>(l)).c_str());
  }
  std::printf("%10s\n", "total");
  const size_t shown =
      table.num_clusters() < max_clusters ? table.num_clusters() : max_clusters;
  for (size_t c = 0; c < shown; ++c) {
    std::printf("%-10zu", c + 1);
    for (size_t l = 0; l < table.num_classes(); ++l) {
      std::printf("%14llu",
                  static_cast<unsigned long long>(table.Count(c, l)));
    }
    std::printf("%10llu\n",
                static_cast<unsigned long long>(table.ClusterTotal(c)));
  }
  if (shown < table.num_clusters()) {
    std::printf("  … %zu more clusters elided\n",
                table.num_clusters() - shown);
  }
  std::printf("%-10s", "(outlier)");
  uint64_t outlier_total = 0;
  for (size_t l = 0; l < table.num_classes(); ++l) {
    std::printf("%14llu", static_cast<unsigned long long>(
                              table.outliers_per_class()[l]));
    outlier_total += table.outliers_per_class()[l];
  }
  std::printf("%10llu\n", static_cast<unsigned long long>(outlier_total));
}

}  // namespace rock::bench

#endif  // ROCK_BENCH_BENCH_UTIL_H_
