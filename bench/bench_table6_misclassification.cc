// bench_table6_misclassification — reproduces paper Table 6: number of
// misclassified transactions on the 114,586-row synthetic database as a
// function of the random-sample size (1000 … 5000) for θ = 0.5 and θ = 0.6,
// using the full Fig. 2 pipeline (reservoir sample from disk → cluster →
// label the whole store from disk).
//
// Paper values:  sample   θ=0.5   θ=0.6
//                 1000      37     8123
//                 2000       0     1051
//                 3000       0      384
//                 4000       0      104
//                 5000       0        8

#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "data/disk_store.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "synth/basket_generator.h"

int main(int argc, char** argv) {
  using namespace rock;
  bench::Banner("Table 6 — misclassified transactions vs sample size");

  // Smaller scale via argv[1] (fraction of the paper's database) for quick
  // runs; default = full 114,586 rows.
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  BasketGeneratorOptions gen;
  if (scale != 1.0) {
    for (auto& s : gen.cluster_sizes) {
      s = static_cast<size_t>(static_cast<double>(s) * scale);
    }
    gen.num_outliers =
        static_cast<size_t>(static_cast<double>(gen.num_outliers) * scale);
  }

  Timer gen_timer;
  auto ds = GenerateBasketData(gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  const auto store_path =
      std::filesystem::temp_directory_path() / "rock_table6_store.bin";
  if (Status s = WriteDatasetToStore(*ds, store_path.string()); !s.ok()) {
    std::fprintf(stderr, "store write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("database: %zu transactions on disk (%.1fs to generate+write)\n",
              ds->size(), gen_timer.ElapsedSeconds());

  // Ground-truth outlier label id for the misclassification rule.
  LabelId outlier_label = kNoLabel;
  for (LabelId l = 0; l < ds->labels().num_classes(); ++l) {
    if (ds->labels().Name(l) == gen.outlier_label) outlier_label = l;
  }

  std::printf("\n%-12s %14s %14s %14s %14s\n", "sample size",
              "miscl θ=0.5", "paper θ=0.5", "miscl θ=0.6", "paper θ=0.6");
  const size_t paper_05[] = {37, 0, 0, 0, 0};
  const size_t paper_06[] = {8123, 1051, 384, 104, 8};
  const size_t samples[] = {1000, 2000, 3000, 4000, 5000};
  for (size_t i = 0; i < 5; ++i) {
    const size_t sample_size = static_cast<size_t>(
        static_cast<double>(samples[i]) * (scale == 1.0 ? 1.0 : scale));
    uint64_t misclassified[2] = {0, 0};
    int slot = 0;
    for (double theta : {0.5, 0.6}) {
      PipelineOptions opt;
      opt.rock.theta = theta;
      opt.rock.num_clusters = 10;
      opt.rock.outlier_stop_multiple = 3.0;
      opt.rock.min_cluster_support = 5;
      opt.sample_size = sample_size;
      opt.labeling.fraction = 0.25;
      opt.seed = 42 + i;
      auto result = RunRockPipeline(store_path.string(), opt);
      if (!result.ok()) {
        std::fprintf(stderr, "pipeline failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      auto table = ContingencyTable::Build(
          result->labeling.assignments, result->labeling.ground_truth,
          result->sample_result.clustering.num_clusters(),
          ds->labels().num_classes());
      if (!table.ok()) {
        std::fprintf(stderr, "contingency failed: %s\n",
                     table.status().ToString().c_str());
        return 1;
      }
      MisclassificationOptions mopt;
      mopt.outlier_label = outlier_label;
      misclassified[slot++] = MisclassificationCount(*table, mopt);
    }
    std::printf("%-12zu %14llu %14zu %14llu %14zu\n", sample_size,
                static_cast<unsigned long long>(misclassified[0]),
                paper_05[i],
                static_cast<unsigned long long>(misclassified[1]),
                paper_06[i]);
  }
  std::printf("\npaper's reading: θ=0.5 is near-perfect from 2000 samples; "
              "θ=0.6 needs larger samples because cluster items overlap "
              "40%% and transactions can be as small as 11 — a lower θ "
              "makes more same-cluster pairs neighbors (§5.4).\n");
  std::filesystem::remove(store_path);
  return 0;
}
