// bench_table6_misclassification — reproduces paper Table 6: number of
// misclassified transactions on the 114,586-row synthetic database as a
// function of the random-sample size (1000 … 5000) for θ = 0.5 and θ = 0.6,
// using the full Fig. 2 pipeline (reservoir sample from disk → cluster →
// label the whole store from disk).
//
// Paper values:  sample   θ=0.5   θ=0.6
//                 1000      37     8123
//                 2000       0     1051
//                 3000       0      384
//                 4000       0      104
//                 5000       0        8

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "core/sampling.h"
#include "data/disk_store.h"
#include "diag/metrics.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"

int main(int argc, char** argv) {
  using namespace rock;
  bench::Banner("Table 6 — misclassified transactions vs sample size");

  // Smaller scale via argv[1] (fraction of the paper's database) for quick
  // runs; default = full 114,586 rows.
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  BasketGeneratorOptions gen;
  if (scale != 1.0) {
    for (auto& s : gen.cluster_sizes) {
      s = static_cast<size_t>(static_cast<double>(s) * scale);
    }
    gen.num_outliers =
        static_cast<size_t>(static_cast<double>(gen.num_outliers) * scale);
  }

  Timer gen_timer;
  auto ds = GenerateBasketData(gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  const auto store_path =
      std::filesystem::temp_directory_path() / "rock_table6_store.bin";
  if (Status s = WriteDatasetToStore(*ds, store_path.string()); !s.ok()) {
    std::fprintf(stderr, "store write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("database: %zu transactions on disk (%.1fs to generate+write)\n",
              ds->size(), gen_timer.ElapsedSeconds());

  // Ground-truth outlier label id for the misclassification rule.
  LabelId outlier_label = kNoLabel;
  for (LabelId l = 0; l < ds->labels().num_classes(); ++l) {
    if (ds->labels().Name(l) == gen.outlier_label) outlier_label = l;
  }

  std::printf("\n%-12s %14s %14s %14s %14s\n", "sample size",
              "miscl θ=0.5", "paper θ=0.5", "miscl θ=0.6", "paper θ=0.6");
  const size_t paper_05[] = {37, 0, 0, 0, 0};
  const size_t paper_06[] = {8123, 1051, 384, 104, 8};
  const size_t samples[] = {1000, 2000, 3000, 4000, 5000};
  for (size_t i = 0; i < 5; ++i) {
    const size_t sample_size = static_cast<size_t>(
        static_cast<double>(samples[i]) * (scale == 1.0 ? 1.0 : scale));
    uint64_t misclassified[2] = {0, 0};
    int slot = 0;
    for (double theta : {0.5, 0.6}) {
      PipelineOptions opt;
      opt.rock.theta = theta;
      opt.rock.num_clusters = 10;
      opt.rock.outlier_stop_multiple = 3.0;
      opt.rock.min_cluster_support = 5;
      opt.sample_size = sample_size;
      opt.labeling.fraction = 0.25;
      opt.seed = 42 + i;
      auto result = RunRockPipeline(store_path.string(), opt);
      if (!result.ok()) {
        std::fprintf(stderr, "pipeline failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      auto table = ContingencyTable::Build(
          result->labeling.assignments, result->labeling.ground_truth,
          result->sample_result.clustering.num_clusters(),
          ds->labels().num_classes());
      if (!table.ok()) {
        std::fprintf(stderr, "contingency failed: %s\n",
                     table.status().ToString().c_str());
        return 1;
      }
      MisclassificationOptions mopt;
      mopt.outlier_label = outlier_label;
      misclassified[slot++] = MisclassificationCount(*table, mopt);
    }
    std::printf("%-12zu %14llu %14zu %14llu %14zu\n", sample_size,
                static_cast<unsigned long long>(misclassified[0]),
                paper_05[i],
                static_cast<unsigned long long>(misclassified[1]),
                paper_06[i]);
  }
  std::printf("\npaper's reading: θ=0.5 is near-perfect from 2000 samples; "
              "θ=0.6 needs larger samples because cluster items overlap "
              "40%% and transactions can be as small as 11 — a lower θ "
              "makes more same-cluster pairs neighbors (§5.4).\n");

  // ------------------------------------------------------ labeling engine --
  // §4.6 labeling throughput over the full store: the pre-index brute-force
  // scan (AssignUnpruned per row, the seed engine) vs the sharded LabelStore
  // engine with candidate pruning, serial and at 8 threads. All three must
  // produce identical assignments.
  bench::Banner("labeling engine — brute force vs pruned, serial vs sharded");
  {
    const double theta = 0.5;
    const size_t sample_size = static_cast<size_t>(
        2000.0 * (scale == 1.0 ? 1.0 : scale));
    RockOptions rock;
    rock.theta = theta;
    rock.num_clusters = 10;
    rock.outlier_stop_multiple = 3.0;
    rock.min_cluster_support = 5;

    // Mirror the Fig. 2 pipeline up to the labeler: reservoir-sample the
    // store, cluster the sample, build the labeler.
    Rng rng(42);
    auto reader = TransactionStoreReader::Open(store_path.string());
    if (!reader.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    ReservoirSampler<Transaction> sampler(sample_size, &rng);
    while (reader->Next()) sampler.Offer(reader->transaction());
    std::vector<size_t> order(sampler.sample().size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return sampler.sample_indices()[a] < sampler.sample_indices()[b];
    });
    TransactionDataset sample;
    for (size_t idx : order) sample.AddTransaction(sampler.sample()[idx]);
    TransactionJaccard sim(sample);
    RockClusterer clusterer(rock);
    auto clustered = clusterer.Cluster(sim);
    if (!clustered.ok()) {
      std::fprintf(stderr, "clustering failed: %s\n",
                   clustered.status().ToString().c_str());
      return 1;
    }
    LabelingOptions lopt;
    lopt.fraction = 0.25;
    auto labeler = TransactionLabeler::Build(sample, clustered->clustering,
                                             rock, lopt);
    if (!labeler.ok()) {
      std::fprintf(stderr, "labeler build failed: %s\n",
                   labeler.status().ToString().c_str());
      return 1;
    }

    // Baseline: serial brute-force scan, exactly the pre-index engine.
    Timer brute_timer;
    std::vector<ClusterIndex> brute;
    brute.reserve(ds->size());
    if (Status s = reader->Rewind(); !s.ok()) {
      std::fprintf(stderr, "rewind failed: %s\n", s.ToString().c_str());
      return 1;
    }
    while (reader->Next()) {
      brute.push_back(labeler->AssignUnpruned(reader->transaction()));
    }
    const double brute_s = brute_timer.ElapsedSeconds();
    const double rows = static_cast<double>(brute.size());

    diag::MetricsRegistry metrics;
    LabelStoreOptions serial_opt;
    serial_opt.num_threads = 1;
    serial_opt.metrics = &metrics;
    auto serial = LabelStore(store_path.string(), *labeler, serial_opt);
    LabelStoreOptions wide_opt;
    wide_opt.num_threads = 8;
    auto wide = LabelStore(store_path.string(), *labeler, wide_opt);
    if (!serial.ok() || !wide.ok()) {
      std::fprintf(stderr, "label scan failed\n");
      return 1;
    }
    if (serial->assignments != brute || wide->assignments != brute) {
      std::fprintf(stderr, "ENGINE MISMATCH: pruned/sharded assignments "
                           "differ from brute force\n");
      return 1;
    }
    const diag::RunMetrics snap = metrics.Snapshot();
    std::printf("%zu rows, %zu clusters, θ=%.1f — all engines identical\n",
                brute.size(), labeler->num_clusters(), theta);
    std::printf("%-28s %10s %14s %9s\n", "engine", "seconds", "tx/sec",
                "speedup");
    std::printf("%-28s %10.3f %14.0f %9s\n", "brute force (seed engine)",
                brute_s, rows / brute_s, "1.0x");
    std::printf("%-28s %10.3f %14.0f %8.1fx\n", "pruned, 1 thread",
                serial->seconds, rows / serial->seconds,
                brute_s / serial->seconds);
    std::printf("%-28s %10.3f %14.0f %8.1fx  (%zu shards)\n",
                "pruned, 8 threads", wide->seconds, rows / wide->seconds,
                brute_s / wide->seconds, wide->shards);
    size_t labeling_points = 0;
    for (size_t c = 0; c < labeler->num_clusters(); ++c) {
      labeling_points += labeler->labeling_set_size(c);
    }
    std::printf("prune hit rate %.3f, length-bound skips %llu, "
                "similarities computed %llu (of %llu brute-force)\n",
                snap.GaugeOr("label.prune_hit_rate"),
                static_cast<unsigned long long>(
                    serial->stats.points_skipped_length),
                static_cast<unsigned long long>(
                    serial->stats.similarities_computed),
                static_cast<unsigned long long>(brute.size() *
                                                labeling_points));
  }

  std::filesystem::remove(store_path);
  return 0;
}
