// bench_table3_mushroom — reproduces paper Table 3 (and Tables 8–9):
// mushroom data, traditional centroid-based hierarchical clustering (k=20)
// vs ROCK (θ = 0.8, k = 20 — the paper's run stopped at 21 clusters with no
// cross links left).
//
// Data: real UCI file from $ROCK_DATA_DIR/agaricus-lepiota.data (or
// ./data/agaricus-lepiota.data) when present; otherwise the Table 3/8/9-
// calibrated surrogate.
//
// The traditional baseline is O(n²·d)-heavy at n = 8124; pass a smaller
// fraction as argv[1] (default 1.0 = full scale, a few minutes of compute;
// 0.25 finishes in seconds and preserves every qualitative conclusion).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/binarize.h"
#include "baselines/centroid_hierarchical.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/rock.h"
#include "data/csv_reader.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "eval/profiles.h"
#include "similarity/jaccard.h"
#include "synth/mushroom_generator.h"

namespace rock {
namespace {

Result<CategoricalDataset> LoadMushroom(double scale) {
  std::string path = "data/agaricus-lepiota.data";
  if (const char* dir = std::getenv("ROCK_DATA_DIR")) {
    path = std::string(dir) + "/agaricus-lepiota.data";
  }
  CsvOptions csv;
  auto real = ReadCsvFile(path, csv);
  if (real.ok()) {
    std::printf("using real UCI data: %s (%zu records)\n", path.c_str(),
                real->size());
    return real;
  }
  std::printf("real UCI file not found — using Table 3/8/9-calibrated "
              "surrogate (scale %.2f)\n",
              scale);
  MushroomGeneratorOptions gen;
  gen.size_scale = scale;
  return GenerateMushroomData(gen);
}

void SummarizePurity(const ContingencyTable& table) {
  size_t pure = 0;
  size_t over_1000 = 0, under_100 = 0;
  uint64_t largest = 0, smallest = UINT64_MAX;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    bool is_pure = false;
    for (size_t l = 0; l < table.num_classes(); ++l) {
      if (table.Count(c, l) == table.ClusterTotal(c)) is_pure = true;
    }
    pure += is_pure ? 1 : 0;
    const uint64_t size = table.ClusterTotal(c);
    if (size > 1000) ++over_1000;
    if (size < 100) ++under_100;
    largest = std::max(largest, size);
    smallest = std::min(smallest, size);
  }
  std::printf("pure clusters: %zu / %zu;  size>1000: %zu;  size<100: %zu;  "
              "largest=%llu smallest=%llu\n",
              pure, table.num_clusters(), over_1000, under_100,
              static_cast<unsigned long long>(largest),
              static_cast<unsigned long long>(smallest));
}

}  // namespace
}  // namespace rock

int main(int argc, char** argv) {
  using namespace rock;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  bench::Banner("Table 3 — Mushroom: traditional vs ROCK");

  auto ds = LoadMushroom(scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("records: %zu, attributes: %zu\n", ds->size(),
              ds->schema().num_attributes());

  // --- ROCK, θ = 0.8, k = 20 (paper stops at 21 with zero cross links). ---
  bench::Section("ROCK (θ = 0.8, k = 20)");
  Timer t2;
  CategoricalJaccard sim(*ds);
  RockOptions ropt;
  ropt.theta = 0.8;
  ropt.num_clusters = 20;
  auto rock_result = RockClusterer(ropt).Cluster(sim);
  if (!rock_result.ok()) {
    std::fprintf(stderr, "ROCK failed: %s\n",
                 rock_result.status().ToString().c_str());
    return 1;
  }
  auto rt = ContingencyTable::Build(rock_result->clustering, ds->labels());
  std::printf("ROCK found %zu clusters (paper: 21 — no links left between "
              "them)\n",
              rock_result->clustering.num_clusters());
  bench::PrintContingency(*rt, ds->labels(), 25);
  SummarizePurity(*rt);
  std::printf("purity=%.4f  ARI=%.3f  time=%.1fs\n", Purity(*rt),
              AdjustedRandIndex(*rt), t2.ElapsedSeconds());
  std::printf("paper: all clusters pure except one (32 e + 72 p); sizes "
              "8 … 1728; 3 clusters > 1000, 9 of 21 < 100\n");

  // --- Traditional centroid-based hierarchical, k = 20. ---
  bench::Section("traditional centroid-based hierarchical (k = 20)");
  Timer t1;
  BinarizedData bin = BinarizeRecords(*ds);
  CentroidHierarchicalOptions copt;
  copt.num_clusters = 20;
  auto centroid = ClusterCentroidHierarchical(bin.points, copt);
  if (!centroid.ok()) {
    std::fprintf(stderr, "centroid clustering failed: %s\n",
                 centroid.status().ToString().c_str());
    return 1;
  }
  auto ct = ContingencyTable::Build(centroid->clustering, ds->labels());
  std::printf("traditional found %zu clusters\n",
              centroid->clustering.num_clusters());
  bench::PrintContingency(*ct, ds->labels(), 25);
  SummarizePurity(*ct);
  std::printf("purity=%.4f  ARI=%.3f  time=%.1fs\n", Purity(*ct),
              AdjustedRandIndex(*ct), t1.ElapsedSeconds());
  std::printf("paper: NO pure clusters; >90%% of clusters sized 200–400 "
              "(uniform); every cluster mixes edible & poisonous\n");

  // --- Tables 8–9: profiles of the five largest ROCK clusters. ---
  bench::Section("Tables 8–9 — profiles of the 5 largest ROCK clusters "
                 "(support >= 0.3)");
  ProfileOptions popt;
  popt.min_support = 0.3;
  auto profiles = ProfileClusters(*ds, rock_result->clustering, popt);
  for (size_t c = 0; c < profiles.size() && c < 5; ++c) {
    std::printf("%s", FormatProfile(profiles[c]).c_str());
  }
  return 0;
}
