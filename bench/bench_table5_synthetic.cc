// bench_table5_synthetic — reproduces paper Table 5: the synthetic
// market-basket database (114,586 transactions, 10 clusters, ~5% outliers,
// tx sizes ~N(15, 2)) and verifies the generated data matches the spec.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/timer.h"
#include "synth/basket_generator.h"

int main() {
  using namespace rock;
  bench::Banner("Table 5 — synthetic market-basket data set");

  Timer timer;
  BasketGeneratorOptions opt;  // defaults == Table 5
  auto ds = GenerateBasketData(opt);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu transactions over %zu items in %.2fs\n",
              ds->size(), ds->items().size(), timer.ElapsedSeconds());

  std::map<std::string, size_t> sizes;
  std::map<std::string, double> tx_size_sum;
  for (size_t i = 0; i < ds->size(); ++i) {
    const std::string& label = ds->labels().Name(ds->labels().label(i));
    ++sizes[label];
    tx_size_sum[label] += static_cast<double>(ds->transaction(i).size());
  }

  bench::Section("paper Table 5 vs generated");
  std::printf("%-10s %15s %15s %15s\n", "cluster", "paper #tx",
              "generated #tx", "mean tx size");
  const size_t paper_sizes[] = {9736,  13029, 14832, 10893, 13022,
                                7391,  8564,  11973, 14279, 5411};
  for (size_t c = 0; c < 10; ++c) {
    const std::string label = "cluster" + std::to_string(c);
    std::printf("%-10zu %15zu %15zu %15.2f\n", c + 1, paper_sizes[c],
                sizes[label],
                tx_size_sum[label] / static_cast<double>(sizes[label]));
  }
  std::printf("%-10s %15d %15zu %15.2f\n", "outliers", 5456,
              sizes["outlier"],
              tx_size_sum["outlier"] / static_cast<double>(sizes["outlier"]));

  // Spec checks: "98% of transactions have sizes between 11 and 19".
  size_t in_window = 0;
  double total_size = 0;
  for (const auto& tx : ds->transactions()) {
    total_size += static_cast<double>(tx.size());
    if (tx.size() >= 11 && tx.size() <= 19) ++in_window;
  }
  std::printf("\nmean transaction size: %.2f (paper: 15)\n",
              total_size / static_cast<double>(ds->size()));
  std::printf("transactions sized 11–19: %.1f%% (paper: 98%%)\n",
              100.0 * static_cast<double>(in_window) /
                  static_cast<double>(ds->size()));
  std::printf("outlier share: %.1f%% (paper: ~5%%)\n",
              100.0 * static_cast<double>(sizes["outlier"]) /
                  static_cast<double>(ds->size()));
  return 0;
}
