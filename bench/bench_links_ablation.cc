// bench_links_ablation — google-benchmark microbenchmarks for §4.4/§4.5:
// the three link-computation strategies (sparse Fig. 4 pair counting with
// hash rows, the same with the dense triangular accumulator, and adjacency
// matrix squaring — naive and Strassen) across graph sizes and densities.
//
// Paper claim to verify: the sparse algorithm's O(Σ m_i²) beats matrix
// squaring on the sparse graphs that realistic θ values produce, while
// dense squaring wins only as density → 1.
//
// Default mode runs the google-benchmark suite below. With
// --compare-engines it instead measures the bit-plane packed link engine
// against the Fig. 4 hashed-scatter oracle on the Fig. 5 configuration
// (shared samples, θ sweep), verifies the frozen CSR rows are identical,
// and appends packed-vs-hashed rows to the machine-readable perf
// trajectory (BENCH_rock.json / $ROCK_BENCH_JSON) for CI's perf-smoke
// stage.links ratio gate.
//
// Usage: bench_links_ablation [--compare-engines] [--scale=X]
//                             [--max-n=N] [--reps=R] [gbench flags]
//   --scale=X  — multiplies the generated database size (default 1.0)
//   --max-n=N  — largest sample size to run (default 5000)
//   --reps=R   — timing repetitions per cell, best-of-R (default 1)

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/sampling.h"
#include "diag/metrics.h"
#include "graph/dense_matrix.h"
#include "graph/link_engine.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "graph/strassen.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"

namespace rock {
namespace {

/// Random graph with the requested edge density.
NeighborGraph MakeGraph(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  NeighborGraph g;
  g.nbrlist.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(density)) {
        g.nbrlist[i].push_back(static_cast<PointIndex>(j));
        g.nbrlist[j].push_back(static_cast<PointIndex>(i));
      }
    }
  }
  for (auto& l : g.nbrlist) std::sort(l.begin(), l.end());
  return g;
}

double DensityArg(int64_t permille) {
  return static_cast<double>(permille) / 1000.0;
}

void BM_LinksSparseHash(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double density = DensityArg(state.range(1));
  NeighborGraph g = MakeGraph(n, density, 42);
  ComputeLinksOptions opt;
  opt.dense_budget_bytes = 0;  // force hash rows
  for (auto _ : state) {
    LinkMatrix links = ComputeLinks(g, opt);
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksSparseHash)
    ->ArgsProduct({{256, 512, 1024}, {20, 100, 300}})
    ->Unit(benchmark::kMillisecond);

void BM_LinksDenseAccumulator(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double density = DensityArg(state.range(1));
  NeighborGraph g = MakeGraph(n, density, 42);
  for (auto _ : state) {
    LinkMatrix links = ComputeLinks(g);  // default budget → dense path
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksDenseAccumulator)
    ->ArgsProduct({{256, 512, 1024}, {20, 100, 300}})
    ->Unit(benchmark::kMillisecond);

void BM_LinksMatrixSquaringNaive(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double density = DensityArg(state.range(1));
  NeighborGraph g = MakeGraph(n, density, 42);
  for (auto _ : state) {
    LinkMatrix links = ComputeLinksDense(g);
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksMatrixSquaringNaive)
    ->ArgsProduct({{256, 512, 1024}, {20, 300}})
    ->Unit(benchmark::kMillisecond);

void BM_LinksMatrixSquaringStrassen(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double density = DensityArg(state.range(1));
  NeighborGraph g = MakeGraph(n, density, 42);
  for (auto _ : state) {
    LinkMatrix links = ComputeLinksStrassen(g);
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksMatrixSquaringStrassen)
    ->ArgsProduct({{256, 512, 1024}, {20, 300}})
    ->Unit(benchmark::kMillisecond);

void BM_StrassenVsNaiveSquare(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  DenseMatrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) a.At(r, c) = rng.UniformInt(0, 1);
  }
  const bool strassen = state.range(1) != 0;
  for (auto _ : state) {
    if (strassen) {
      auto p = StrassenMultiply(a, a);
      benchmark::DoNotOptimize(p->At(0, 0));
    } else {
      auto p = a.Multiply(a);
      benchmark::DoNotOptimize(p->At(0, 0));
    }
  }
}
BENCHMARK(BM_StrassenVsNaiveSquare)
    ->ArgsProduct({{128, 256, 512, 1024}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------- --compare-engines harness --

/// Frozen CSR rows byte-equal: same row sizes, partners and counts.
bool FrozenRowsEqual(const LinkMatrix& a, const LinkMatrix& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const LinkRowSpan x = a.FlatRow(static_cast<PointIndex>(i));
    const LinkRowSpan y = b.FlatRow(static_cast<PointIndex>(i));
    if (x.size != y.size) return false;
    for (size_t e = 0; e < x.size; ++e) {
      if (x.partners[e] != y.partners[e] || x.counts[e] != y.counts[e]) {
        return false;
      }
    }
  }
  return true;
}

// Packed vs hashed link computation on the Fig. 5 configuration: one shared
// sample and neighbor graph per (n, θ), frozen rows cross-checked for
// byte equality, timings appended to the perf trajectory. Returns nonzero
// on any mismatch so CI fails loudly rather than gating on wrong rows.
int RunEngineComparison(double scale, size_t max_n, size_t reps) {
  bench::Banner(
      "link engines — packed (bit-plane popcount) vs hashed scatter oracle");

  BasketGeneratorOptions gen;
  if (scale != 1.0) {
    for (auto& s : gen.cluster_sizes) {
      s = static_cast<size_t>(static_cast<double>(s) * scale);
    }
    gen.num_outliers =
        static_cast<size_t>(static_cast<double>(gen.num_outliers) * scale);
  }
  auto ds = GenerateBasketData(gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("database: %zu transactions, reps=%zu (best-of)\n", ds->size(),
              reps);

  const double thetas[] = {0.5, 0.6, 0.7, 0.8};
  const size_t samples[] = {1000, 2000, 3000, 4000, 5000};
  bench::PerfJsonWriter perf("bench_links_ablation");
  std::printf("\n%-16s %10s %10s %9s %14s\n", "cell", "packed", "hashed",
              "speedup", "link-pairs");

  Rng rng(7);
  for (const size_t n : samples) {
    if (n > max_n || n > ds->size()) break;
    const std::vector<size_t> rows = SampleIndices(ds->size(), n, &rng);
    TransactionDataset sample;
    for (const size_t r : rows) sample.AddTransaction(ds->transaction(r));
    const TransactionJaccard sim(sample);

    for (const double theta : thetas) {
      auto graph = ComputeNeighbors(sim, theta);
      if (!graph.ok()) {
        std::fprintf(stderr, "neighbor graph failed: %s\n",
                     graph.status().ToString().c_str());
        return 1;
      }

      diag::MetricsRegistry metrics;
      double packed_s = 0.0;
      LinkMatrix packed_links(0);
      for (size_t rep = 0; rep < reps; ++rep) {
        diag::MetricsRegistry rep_metrics;
        PackedLinkOptions lopts;
        lopts.metrics = &rep_metrics;
        Timer timer;
        LinkMatrix links = ComputeLinksPacked(*graph, lopts);
        const double s = timer.ElapsedSeconds();
        if (rep == 0 || s < packed_s) {
          packed_s = s;
          metrics = std::move(rep_metrics);
          packed_links = std::move(links);
        }
      }
      double hashed_s = 0.0;
      LinkMatrix hashed_links(0);
      for (size_t rep = 0; rep < reps; ++rep) {
        Timer timer;
        LinkMatrix links = ComputeLinks(*graph);
        links.Freeze();
        const double s = timer.ElapsedSeconds();
        if (rep == 0 || s < hashed_s) {
          hashed_s = s;
          hashed_links = std::move(links);
        }
      }
      if (!FrozenRowsEqual(packed_links, hashed_links)) {
        std::fprintf(stderr,
                     "ENGINE MISMATCH at n=%zu θ=%.1f — link rows differ\n", n,
                     theta);
        return 1;
      }

      const diag::RunMetrics snap = metrics.Snapshot();
      char label[64];
      char theta_str[16];
      std::snprintf(theta_str, sizeof(theta_str), "%.1f", theta);
      for (const char* engine : {"packed", "hashed"}) {
        std::snprintf(label, sizeof(label), "n=%zu θ=%s %s", n, theta_str,
                      engine);
        perf.BeginEntry(label);
        perf.Param("n", std::to_string(n));
        perf.Param("theta", theta_str);
        perf.Param("engine", engine);
        if (std::strcmp(engine, "packed") == 0) {
          perf.Timer("stage.links", packed_s);
          perf.AddRunMetrics(snap);
        } else {
          perf.Timer("stage.links", hashed_s);
        }
      }
      std::snprintf(label, sizeof(label), "n=%zu θ=%s", n, theta_str);
      std::printf("%-16s %9.4fs %9.4fs %8.2fx %14llu\n", label, packed_s,
                  hashed_s, packed_s > 0.0 ? hashed_s / packed_s : 0.0,
                  static_cast<unsigned long long>(
                      packed_links.NumNonZeroPairs()));
    }
  }
  perf.Write();
  return 0;
}

}  // namespace
}  // namespace rock

int main(int argc, char** argv) {
  bool compare_engines = false;
  double scale = 1.0;
  size_t max_n = 5000;
  size_t reps = 1;
  int kept = 1;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--compare-engines") == 0) {
      compare_engines = true;
    } else if (std::strncmp(argv[a], "--scale=", 8) == 0) {
      scale = std::atof(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--max-n=", 8) == 0) {
      max_n = static_cast<size_t>(std::atoll(argv[a] + 8));
    } else if (std::strncmp(argv[a], "--reps=", 7) == 0) {
      reps = static_cast<size_t>(std::atoll(argv[a] + 7));
    } else {
      argv[kept++] = argv[a];  // leave for google-benchmark
    }
  }
  argc = kept;
  if (compare_engines) {
    return rock::RunEngineComparison(scale, max_n, reps < 1 ? 1 : reps);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
