// bench_links_ablation — google-benchmark microbenchmarks for §4.4/§4.5:
// the three link-computation strategies (sparse Fig. 4 pair counting with
// hash rows, the same with the dense triangular accumulator, and adjacency
// matrix squaring — naive and Strassen) across graph sizes and densities.
//
// Paper claim to verify: the sparse algorithm's O(Σ m_i²) beats matrix
// squaring on the sparse graphs that realistic θ values produce, while
// dense squaring wins only as density → 1.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "graph/dense_matrix.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "graph/strassen.h"

namespace rock {
namespace {

/// Random graph with the requested edge density.
NeighborGraph MakeGraph(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  NeighborGraph g;
  g.nbrlist.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(density)) {
        g.nbrlist[i].push_back(static_cast<PointIndex>(j));
        g.nbrlist[j].push_back(static_cast<PointIndex>(i));
      }
    }
  }
  for (auto& l : g.nbrlist) std::sort(l.begin(), l.end());
  return g;
}

double DensityArg(int64_t permille) {
  return static_cast<double>(permille) / 1000.0;
}

void BM_LinksSparseHash(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double density = DensityArg(state.range(1));
  NeighborGraph g = MakeGraph(n, density, 42);
  ComputeLinksOptions opt;
  opt.dense_budget_bytes = 0;  // force hash rows
  for (auto _ : state) {
    LinkMatrix links = ComputeLinks(g, opt);
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksSparseHash)
    ->ArgsProduct({{256, 512, 1024}, {20, 100, 300}})
    ->Unit(benchmark::kMillisecond);

void BM_LinksDenseAccumulator(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double density = DensityArg(state.range(1));
  NeighborGraph g = MakeGraph(n, density, 42);
  for (auto _ : state) {
    LinkMatrix links = ComputeLinks(g);  // default budget → dense path
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksDenseAccumulator)
    ->ArgsProduct({{256, 512, 1024}, {20, 100, 300}})
    ->Unit(benchmark::kMillisecond);

void BM_LinksMatrixSquaringNaive(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double density = DensityArg(state.range(1));
  NeighborGraph g = MakeGraph(n, density, 42);
  for (auto _ : state) {
    LinkMatrix links = ComputeLinksDense(g);
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksMatrixSquaringNaive)
    ->ArgsProduct({{256, 512, 1024}, {20, 300}})
    ->Unit(benchmark::kMillisecond);

void BM_LinksMatrixSquaringStrassen(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double density = DensityArg(state.range(1));
  NeighborGraph g = MakeGraph(n, density, 42);
  for (auto _ : state) {
    LinkMatrix links = ComputeLinksStrassen(g);
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksMatrixSquaringStrassen)
    ->ArgsProduct({{256, 512, 1024}, {20, 300}})
    ->Unit(benchmark::kMillisecond);

void BM_StrassenVsNaiveSquare(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  DenseMatrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) a.At(r, c) = rng.UniformInt(0, 1);
  }
  const bool strassen = state.range(1) != 0;
  for (auto _ : state) {
    if (strassen) {
      auto p = StrassenMultiply(a, a);
      benchmark::DoNotOptimize(p->At(0, 0));
    } else {
      auto p = a.Multiply(a);
      benchmark::DoNotOptimize(p->At(0, 0));
    }
  }
}
BENCHMARK(BM_StrassenVsNaiveSquare)
    ->ArgsProduct({{128, 256, 512, 1024}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rock

BENCHMARK_MAIN();
