// bench_stream — appended-row labeling throughput of the streaming session
// vs a direct single-thread Assign loop, on the Figure-5 synthetic
// database.
//
// The database is split 80/20: the first 80% becomes the base store the
// model is built from (exactly as `rock build` does — sample 5000 at scale
// 1, θ = 0.73, k = 10), the held-out 20% becomes the append stream. Both
// engines label every held-out row:
//
//   direct — one thread calling TransactionLabeler::Assign in a loop; no
//            store I/O, no drift accounting. The physics bound for the
//            labeling half of an append.
//   stream — StreamingSession::Append in batches: crash-safe copy-on-append
//            store commits + §4.6 labeling + drift window updates. Each
//            rep restarts from a fresh copy of the base store.
//
// Both engines must produce bit-identical cluster assignments (checked
// every run); the streaming_test suite carries the fine-grained
// differential. Writes the BENCH_rock.json perf report ($ROCK_BENCH_JSON);
// CI's sixth perf-smoke gate compares the direct/stream stage.append_label
// ratio against bench/baselines/BENCH_stream_smoke.json and floors the
// absolute stream.rows_per_sec counter.
//
// Usage: bench_stream [scale] [--reps=K] [--batch=B] [--min-rows-per-sec=N]
//   scale      — multiplies the generated database size (default 0.1)
//   --reps     — best-of-K timing per engine (default 3)
//   --batch    — rows per Append call (default 512)
//   --min-rows-per-sec — fail (exit 1) below this stream throughput;
//                0 = report only (default)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/labeling.h"
#include "core/pipeline.h"
#include "data/disk_store.h"
#include "serve/model_handle.h"
#include "serve/stream.h"
#include "synth/basket_generator.h"

namespace {

struct EngineRun {
  double seconds = 0.0;  ///< best rep
  double rows_per_sec = 0.0;
  std::vector<rock::ClusterIndex> assignments;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rock;
  namespace fs = std::filesystem;
  bench::Banner("streaming append throughput — session vs direct Assign");

  double scale = 0.1;
  double min_rows_per_sec = 0.0;
  int reps = 3;
  size_t batch = 512;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--reps=", 7) == 0) {
      reps = std::atoi(argv[a] + 7);
    } else if (std::strncmp(argv[a], "--batch=", 8) == 0) {
      batch = static_cast<size_t>(std::atoll(argv[a] + 8));
    } else if (std::strncmp(argv[a], "--min-rows-per-sec=", 19) == 0) {
      min_rows_per_sec = std::atof(argv[a] + 19);
    } else {
      scale = std::atof(argv[a]);
    }
  }
  if (reps < 1) reps = 1;
  if (batch < 1) batch = 1;

  BasketGeneratorOptions gen;
  for (auto& s : gen.cluster_sizes) {
    s = static_cast<size_t>(static_cast<double>(s) * scale);
  }
  gen.num_outliers =
      static_cast<size_t>(static_cast<double>(gen.num_outliers) * scale);
  auto ds = GenerateBasketData(gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }

  // 80/20 split: model + base store vs the append stream.
  const size_t total = ds->size();
  const size_t base_rows = total * 8 / 10;
  TransactionDataset base;
  std::vector<Transaction> stream_rows;
  for (size_t i = 0; i < total; ++i) {
    if (i < base_rows) {
      base.AddTransaction(ds->transaction(i));
      base.labels().Append(ds->labels().Name(ds->labels().label(i)));
    } else {
      stream_rows.push_back(ds->transaction(i));
    }
  }

  const std::string base_path = "bench_stream_base.bin";
  const std::string work_path = "bench_stream_work.bin";
  const std::string model_path = "bench_stream_model.bin";
  const auto cleanup = [&] {
    std::remove(base_path.c_str());
    std::remove(work_path.c_str());
    std::remove(model_path.c_str());
  };
  if (Status s = WriteDatasetToStore(base, base_path); !s.ok()) {
    std::fprintf(stderr, "store write failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The Fig. 5 model over the base store.
  ModelBuildOptions build;
  build.pipeline.rock.theta = 0.73;
  build.pipeline.rock.num_clusters = 10;
  build.pipeline.rock.outlier_stop_multiple = 3.0;
  build.pipeline.rock.min_cluster_support = 5;
  build.pipeline.sample_size = 5000;
  build.model_path = model_path;
  auto built = BuildModel(base_path, build);
  if (!built.ok()) {
    std::fprintf(stderr, "BuildModel failed: %s\n",
                 built.status().ToString().c_str());
    cleanup();
    return 1;
  }
  const size_t sample_n = built->sample_rows.size();
  std::printf("database: %zu transactions (%zu base + %zu appended); "
              "model: sample=%zu clusters=%zu (build %.2fs)\n",
              total, base_rows, stream_rows.size(), sample_n,
              built->bundle.labeling_sets.size(),
              built->cluster_seconds + built->build_seconds);

  auto handle = ModelHandle::FromBundle(std::move(built->bundle));
  if (!handle.ok()) {
    std::fprintf(stderr, "FromBundle failed: %s\n",
                 handle.status().ToString().c_str());
    cleanup();
    return 1;
  }

  const size_t rows = stream_rows.size();
  EngineRun direct;
  EngineRun stream;

  // Engine "direct": the labeling-only oracle.
  {
    TransactionLabeler::Scratch scratch;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<ClusterIndex> assignments(rows, kUnassigned);
      Timer timer;
      for (size_t i = 0; i < rows; ++i) {
        assignments[i] =
            handle->labeler().Assign(stream_rows[i], &scratch, nullptr);
      }
      const double secs = timer.ElapsedSeconds();
      if (rep == 0 || secs < direct.seconds) {
        direct.seconds = secs;
        direct.assignments = std::move(assignments);
      }
    }
    direct.rows_per_sec = static_cast<double>(rows) / direct.seconds;
  }

  // Engine "stream": crash-safe appends + labeling + drift, batched.
  for (int rep = 0; rep < reps; ++rep) {
    std::error_code ec;
    fs::copy_file(base_path, work_path, fs::copy_options::overwrite_existing,
                  ec);
    if (ec) {
      std::fprintf(stderr, "store copy failed: %s\n", ec.message().c_str());
      cleanup();
      return 1;
    }
    StreamOptions options;
    options.build = build;
    auto session = StreamingSession::Open(work_path, model_path, options);
    if (!session.ok()) {
      std::fprintf(stderr, "session open failed: %s\n",
                   session.status().ToString().c_str());
      cleanup();
      return 1;
    }
    std::vector<ClusterIndex> assignments;
    assignments.reserve(rows);
    Timer timer;
    for (size_t at = 0; at < rows; at += batch) {
      const size_t n = std::min(batch, rows - at);
      const auto first =
          stream_rows.begin() + static_cast<std::ptrdiff_t>(at);
      const std::vector<Transaction> slice(
          first, first + static_cast<std::ptrdiff_t>(n));
      auto appended = (*session)->Append(slice, nullptr);
      if (!appended.ok()) {
        std::fprintf(stderr, "append failed: %s\n",
                     appended.status().ToString().c_str());
        cleanup();
        return 1;
      }
      for (const auto& oc : appended->outcomes) {
        assignments.push_back(oc.cluster);
      }
    }
    const double secs = timer.ElapsedSeconds();
    if (rep == 0 || secs < stream.seconds) {
      stream.seconds = secs;
      stream.assignments = std::move(assignments);
    }
  }
  stream.rows_per_sec = static_cast<double>(rows) / stream.seconds;

  if (stream.assignments != direct.assignments) {
    std::fprintf(stderr,
                 "FATAL: streamed assignments differ from the direct loop\n");
    cleanup();
    return 1;
  }
  cleanup();

  bench::Section("append results (best of reps)");
  std::printf("%-8s %12s %14s\n", "engine", "seconds", "rows/s");
  std::printf("%-8s %12.4f %14.0f\n", "direct", direct.seconds,
              direct.rows_per_sec);
  std::printf("%-8s %12.4f %14.0f\n", "stream", stream.seconds,
              stream.rows_per_sec);
  std::printf("stream/direct overhead: %.2fx (store I/O + drift window)\n",
              direct.seconds > 0.0 ? stream.seconds / direct.seconds : 0.0);

  bench::PerfJsonWriter perf("bench_stream");
  for (const auto* run : {&direct, &stream}) {
    const bool is_stream = run == &stream;
    perf.BeginEntry(std::string("n=") + std::to_string(rows) + " θ=0.73 " +
                    (is_stream ? "stream" : "direct"));
    perf.Param("n", std::to_string(rows));
    perf.Param("theta", "0.73");
    perf.Param("engine", is_stream ? "stream" : "direct");
    perf.Timer("stage.append_label", run->seconds);
    perf.Counter("stream.rows_per_sec",
                 static_cast<uint64_t>(run->rows_per_sec));
  }
  perf.Write();

  if (min_rows_per_sec > 0.0 && stream.rows_per_sec < min_rows_per_sec) {
    std::fprintf(stderr,
                 "FAIL: stream sustained %.0f rows/s < required %.0f\n",
                 stream.rows_per_sec, min_rows_per_sec);
    return 1;
  }
  return 0;
}
