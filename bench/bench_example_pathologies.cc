// bench_example_pathologies — reproduces the paper's motivating examples:
//
//   * Example 1.1: the centroid-based hierarchical algorithm merges {1,4}
//     with {6} (no common item) on the 4-transaction database, while ROCK's
//     link rule refuses.
//   * Example 1.2 / Figure 1 / §3.2: link counts on the two overlapping
//     triple clusters, the single-link (MST) and group-average failure
//     modes, and ROCK's behavior under both readings of f(θ).

#include <cstdio>
#include <vector>

#include "baselines/binarize.h"
#include "baselines/centroid_hierarchical.h"
#include "baselines/linkage_hierarchical.h"
#include "bench_util.h"
#include "core/rock.h"
#include "data/dataset.h"
#include "eval/contingency.h"
#include "graph/links.h"
#include "similarity/jaccard.h"

namespace rock {
namespace {

TransactionDataset Figure1Data() {
  TransactionDataset ds;
  auto add_triples = [&](const std::vector<ItemId>& items,
                         const std::string& label) {
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        for (size_t l = j + 1; l < items.size(); ++l) {
          ds.AddTransaction(Transaction({items[i], items[j], items[l]}));
          ds.labels().Append(label);
        }
      }
    }
  };
  add_triples({1, 2, 3, 4, 5}, "big");
  add_triples({1, 2, 6, 7}, "small");
  return ds;
}

void PrintTx(const TransactionDataset& ds, size_t i) {
  std::printf("{");
  bool first = true;
  for (ItemId item : ds.transaction(i)) {
    std::printf("%s%u", first ? "" : ",", item);
    first = false;
  }
  std::printf("}");
}

size_t RowOf(const TransactionDataset& ds, const Transaction& tx) {
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.transaction(i) == tx) return i;
  }
  return SIZE_MAX;
}

void RunExample11() {
  bench::Banner(
      "Example 1.1 — centroid-based merging of itemless pairs (paper p.3)");
  std::printf(
      "Database: (a) {1,2,3,5}  (b) {2,3,4,5}  (c) {1,4}  (d) {6}\n"
      "Paper: after (a)+(b) merge, the centroid algorithm merges (c)+(d)\n"
      "even though they do not share a single item; links refuse.\n");

  std::vector<std::vector<double>> pts = {
      {1, 1, 1, 0, 1, 0}, {0, 1, 1, 1, 1, 0},
      {1, 0, 0, 1, 0, 0}, {0, 0, 0, 0, 0, 1}};
  CentroidHierarchicalOptions copt;
  copt.num_clusters = 2;
  copt.eliminate_singleton_outliers = false;
  auto centroid = ClusterCentroidHierarchical(pts, copt);
  std::printf("\ncentroid-based, k=2: (c) and (d) in the same cluster? %s\n",
              centroid->clustering.assignment[2] ==
                      centroid->clustering.assignment[3]
                  ? "YES (the pathology)"
                  : "no");

  TransactionDataset ds;
  ds.AddTransaction(Transaction({1, 2, 3, 5}));
  ds.AddTransaction(Transaction({2, 3, 4, 5}));
  ds.AddTransaction(Transaction({1, 4}));
  ds.AddTransaction(Transaction({6}));
  TransactionJaccard sim(ds);
  RockOptions ropt;
  ropt.theta = 0.001;  // "neighbors = at least one common item"
  ropt.num_clusters = 2;
  ropt.min_neighbors = 0;
  auto rock_result = RockClusterer(ropt).Cluster(sim);
  std::printf("ROCK (links),    k=2: (c) and (d) in the same cluster? %s\n",
              rock_result->clustering.assignment[2] ==
                      rock_result->clustering.assignment[3]
                  ? "YES"
                  : "no (links between {1,4} and {6} = 0)");
}

void RunExample12Links() {
  bench::Banner(
      "Example 1.2 / Fig. 1 / §3.2 — link counts at θ = 0.5 (Jaccard)");
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);
  auto graph = ComputeNeighbors(sim, 0.5);
  LinkMatrix links = ComputeLinks(*graph);

  struct Probe {
    Transaction a, b;
    const char* claim;
  };
  const std::vector<Probe> probes = {
      {Transaction({1, 2, 3}), Transaction({1, 2, 4}),
       "same cluster, paper: 5 links"},
      {Transaction({1, 2, 3}), Transaction({1, 2, 6}),
       "different clusters, paper: 3 links"},
      {Transaction({1, 2, 6}), Transaction({1, 2, 7}),
       "same (small) cluster, paper: 5 links"},
      {Transaction({1, 6, 7}), Transaction({1, 2, 6}),
       "same (small) cluster, paper: 2 links"},
      {Transaction({1, 6, 7}), Transaction({1, 3, 4}),
       "different clusters, paper: 0 links"},
      {Transaction({1, 6, 7}), Transaction({1, 2, 3}),
       "different clusters (both contain item 1&2 path), computed: 2"},
  };
  for (const auto& p : probes) {
    const size_t ia = RowOf(ds, p.a);
    const size_t ib = RowOf(ds, p.b);
    std::printf("link(");
    PrintTx(ds, ia);
    std::printf(", ");
    PrintTx(ds, ib);
    std::printf(") = %u   [%s]\n",
                links.Count(static_cast<PointIndex>(ia),
                            static_cast<PointIndex>(ib)),
                p.claim);
  }
}

void RunFigure1Clusterings() {
  bench::Banner("Fig. 1 end-to-end — who recovers the overlapping clusters?");
  TransactionDataset ds = Figure1Data();
  TransactionJaccard sim(ds);

  auto report = [&](const char* name, const Clustering& c) {
    auto table = ContingencyTable::Build(c, ds.labels());
    std::printf("\n%s → %zu clusters\n", name, c.num_clusters());
    bench::PrintContingency(*table, ds.labels());
  };

  auto sl = ClusterSingleLink(sim, 2);
  report("single-link / MST (paper: fragile, chains through {1,2,*})", *sl);

  auto ga = ClusterGroupAverage(sim, 2);
  report("group average (paper: may merge cross-cluster {1,2,*} pairs)",
         *ga);

  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 2;
  auto canonical = RockClusterer(opt).Cluster(sim);
  report("ROCK, f(θ)=(1−θ)/(1+θ) (canonical; absorbs {1,2,6},{1,2,7})",
         canonical->clustering);

  opt.f = ConservativeMarketBasketF;
  auto conservative = RockClusterer(opt).Cluster(sim);
  report("ROCK, f(θ)=1/(1+θ) (conservative reading; exact recovery)",
         conservative->clustering);
}

}  // namespace
}  // namespace rock

int main() {
  rock::RunExample11();
  rock::RunExample12Links();
  rock::RunFigure1Clusterings();
  return 0;
}
