// bench_goodness_ablation — ablations of ROCK's design choices:
//
//  A. Goodness normalization (§4.2): merging by *raw* cross-link counts vs
//     the expectation-normalized goodness measure. The paper predicts raw
//     counts let "a large cluster swallow other clusters".
//  B. Criterion function (§1.1 / §3.3): the distance-based partitional
//     criterion E favors splitting a large, well-linked categorical
//     cluster, while E_l does not — shown by scoring ground truth vs a
//     split of the biggest cluster under both criteria.
//  C. f(θ) readings: canonical (1−θ)/(1+θ) vs conservative 1/(1+θ) on the
//     skewed-size mushroom surrogate.

#include <cstdio>
#include <limits>

#include "baselines/binarize.h"
#include "baselines/kmeans.h"
#include "bench_util.h"
#include "core/criterion.h"
#include "core/rock.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "similarity/jaccard.h"
#include "similarity/lp_metric.h"
#include "synth/basket_generator.h"
#include "synth/mushroom_generator.h"

namespace rock {
namespace {

/// Skewed two-cluster basket data: one big cluster, one small.
TransactionDataset SkewedBaskets() {
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {900, 100};
  gen.items_per_cluster = {24, 18};
  gen.num_outliers = 0;
  gen.seed = 17;
  auto ds = GenerateBasketData(gen);
  return std::move(ds).value();
}

/// Figure-1-style *overlapping* clusters at scale: cluster A over items
/// {0..9}, cluster B over {0,1,10,11,12} (items 0, 1 shared), size-3
/// transactions — so genuine cross links exist and the normalization has
/// something to defend against.
TransactionDataset OverlappingBaskets(size_t na, size_t nb, uint64_t seed) {
  Rng rng(seed);
  TransactionDataset ds;
  const std::vector<ItemId> a_items = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<ItemId> b_items = {0, 1, 10, 11, 12};
  auto add = [&](const std::vector<ItemId>& items, size_t count,
                 const char* label) {
    for (size_t i = 0; i < count; ++i) {
      auto pick = rng.SampleWithoutReplacement(items.size(), 3);
      ds.AddTransaction(
          Transaction({items[pick[0]], items[pick[1]], items[pick[2]]}));
      ds.labels().Append(label);
    }
  };
  add(a_items, na, "A");
  add(b_items, nb, "B");
  return ds;
}

void AblationRawLinks() {
  bench::Section("A — merge by raw cross-links vs normalized goodness");
  TransactionDataset ds = OverlappingBaskets(600, 120, 5);
  TransactionJaccard sim(ds);

  RockOptions normalized;
  normalized.theta = 0.5;
  normalized.num_clusters = 2;

  // "Raw links" = goodness whose denominator is nearly size-independent
  // (exponent 1 + 2f → 1), i.e. merge by cross-link counts alone.
  RockOptions raw = normalized;
  raw.f = [](double) { return 0.0000005; };

  for (const auto& [name, opt] :
       {std::pair<const char*, RockOptions>{"normalized goodness (§4.2)",
                                            normalized},
        {"raw cross-link counts", raw}}) {
    auto result = RockClusterer(opt).Cluster(sim);
    auto table = ContingencyTable::Build(result->clustering, ds.labels());
    uint64_t largest = 0;
    for (size_t c = 0; c < table->num_clusters(); ++c) {
      largest = std::max<uint64_t>(largest, table->ClusterTotal(c));
    }
    std::printf("%-32s clusters=%zu purity=%.3f ARI=%.3f largest=%llu\n",
                name, result->clustering.num_clusters(), Purity(*table),
                AdjustedRandIndex(*table),
                static_cast<unsigned long long>(largest));
  }
  std::printf("expected: raw counting lets the big cluster swallow the "
              "small one (largest = 720, ARI ≈ 0); normalization keeps "
              "them apart (ARI ≈ 0.75).\n");
}

void AblationCriterion() {
  bench::Section(
      "B — distance criterion E splits large clusters; E_l does not");
  TransactionDataset ds = SkewedBaskets();
  TransactionJaccard sim(ds);
  auto graph = ComputeNeighbors(sim, 0.5);
  LinkMatrix links = ComputeLinks(*graph);
  RockOptions opt;
  opt.theta = 0.5;
  GoodnessMeasure g(opt);

  // Ground truth (900 + 100) vs splitting the big cluster in half
  // (450 + 450 + 100).
  std::vector<ClusterIndex> truth(ds.size()), split(ds.size());
  size_t big_seen = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    const bool big = ds.labels().Name(ds.labels().label(i)) == "cluster0";
    truth[i] = big ? 0 : 1;
    if (big) {
      split[i] = (big_seen++ % 2 == 0) ? 0 : 2;
    } else {
      split[i] = 1;
    }
  }
  Clustering truth_c = Clustering::FromAssignment(truth);
  Clustering split_c = Clustering::FromAssignment(split);

  BinarizedData bin = BinarizeTransactions(ds);
  auto distance_criterion = [&](const Clustering& c) {
    // E = Σ_i Σ_{x∈C_i} ||x − m_i||₂ over the 0/1 vectors (§1.1).
    double total = 0.0;
    for (const auto& members : c.clusters) {
      std::vector<double> mean(bin.points[0].size(), 0.0);
      for (PointIndex p : members) {
        for (size_t d = 0; d < mean.size(); ++d) mean[d] += bin.points[p][d];
      }
      for (double& v : mean) v /= static_cast<double>(members.size());
      for (PointIndex p : members) {
        total += L2Distance(bin.points[p], mean);
      }
    }
    return total;
  };

  const double e_truth = distance_criterion(truth_c);
  const double e_split = distance_criterion(split_c);
  const double el_truth = CriterionFunction(truth_c, links, g);
  const double el_split = CriterionFunction(split_c, links, g);
  std::printf("distance criterion E  : truth=%.1f  split-big=%.1f → "
              "prefers %s (lower is better)\n",
              e_truth, e_split, e_split < e_truth ? "SPLIT" : "truth");
  std::printf("link criterion   E_l : truth=%.1f  split-big=%.1f → "
              "prefers %s (higher is better)\n",
              el_truth, el_split, el_split > el_truth ? "SPLIT" : "truth");
  std::printf("expected: E rewards splitting the well-connected big "
              "cluster (§1.1); E_l keeps it whole (§3.3).\n");
}

void AblationFReading() {
  bench::Section("C — f(θ) readings on the skewed mushroom surrogate");
  MushroomGeneratorOptions gen;
  gen.size_scale = 0.1;
  auto ds = GenerateMushroomData(gen);
  CategoricalJaccard sim(*ds);
  for (const auto& [name, f] :
       {std::pair<const char*, double (*)(double)>{
            "canonical    (1−θ)/(1+θ)", MarketBasketF},
        {"conservative 1/(1+θ)", ConservativeMarketBasketF}}) {
    RockOptions opt;
    opt.theta = 0.8;
    opt.num_clusters = 20;
    opt.f = f;
    auto result = RockClusterer(opt).Cluster(sim);
    auto table = ContingencyTable::Build(result->clustering, ds->labels());
    std::printf("%-28s clusters=%zu purity=%.4f criterion=%.1f\n", name,
                result->clustering.num_clusters(), Purity(*table),
                result->stats.criterion_value);
  }
  std::printf("expected: both readings behave identically here (groups "
              "have zero cross links at θ=0.8); the readings only diverge "
              "when clusters overlap, as in Fig. 1 "
              "(bench_example_pathologies).\n");
}

}  // namespace
}  // namespace rock

int main() {
  rock::bench::Banner("Ablations — goodness normalization, criterion, f(θ)");
  rock::AblationRawLinks();
  rock::AblationCriterion();
  rock::AblationFReading();
  return 0;
}
