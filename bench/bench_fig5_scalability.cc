// bench_fig5_scalability — reproduces paper Figure 5: ROCK execution time
// on the synthetic database as a function of the random-sample size, for
// four θ settings. As in the paper, the final labeling phase is excluded;
// time covers neighbor computation, link computation and the merge loop.
//
// Expected shape (paper): roughly quadratic growth in sample size; larger
// θ is faster because each transaction has fewer neighbors, making link
// computation cheaper.

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/rock.h"
#include "core/sampling.h"
#include "data/disk_store.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"

int main(int argc, char** argv) {
  using namespace rock;
  bench::Banner("Figure 5 — scalability: time vs random-sample size");

  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  BasketGeneratorOptions gen;
  if (scale != 1.0) {
    for (auto& s : gen.cluster_sizes) {
      s = static_cast<size_t>(static_cast<double>(s) * scale);
    }
    gen.num_outliers =
        static_cast<size_t>(static_cast<double>(gen.num_outliers) * scale);
  }
  auto ds = GenerateBasketData(gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("database: %zu transactions\n", ds->size());

  const double thetas[] = {0.5, 0.6, 0.7, 0.8};
  const size_t samples[] = {1000, 2000, 3000, 4000, 5000};

  std::printf("\nexecution time in seconds (excludes labeling, as in the "
              "paper)\n");
  std::printf("%-12s", "sample");
  for (double theta : thetas) std::printf("   θ=%.1f", theta);
  std::printf("\n");

  // Per-run diag metrics, kept for the stage breakdown table below.
  std::vector<std::pair<std::string, diag::RunMetrics>> breakdowns;

  Rng rng(7);
  for (size_t n : samples) {
    if (n > ds->size()) break;
    // One shared sample per row so θ is the only variable per column.
    std::vector<size_t> rows = SampleIndices(ds->size(), n, &rng);
    TransactionDataset sample;
    for (size_t r : rows) sample.AddTransaction(ds->transaction(r));

    std::printf("%-12zu", n);
    for (double theta : thetas) {
      TransactionJaccard sim(sample);
      RockOptions opt;
      opt.theta = theta;
      opt.num_clusters = 10;
      opt.outlier_stop_multiple = 3.0;
      opt.min_cluster_support = 5;
      Timer timer;
      auto result = RockClusterer(opt).Cluster(sim);
      if (!result.ok()) {
        std::fprintf(stderr, "ROCK failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("%8.2f", timer.ElapsedSeconds());
      std::fflush(stdout);
      char label[64];
      std::snprintf(label, sizeof(label), "n=%zu θ=%.1f", n, theta);
      breakdowns.emplace_back(label, std::move(result->metrics));
    }
    std::printf("\n");
  }

  bench::Section("per-stage breakdown (diag metrics)");
  for (const auto& [label, metrics] : breakdowns) {
    bench::PrintStageBreakdown(label, metrics);
  }

  std::printf("\nshape checks (paper): each column grows ~quadratically in "
              "sample size; rows decrease left→right (larger θ → fewer "
              "neighbors → cheaper links); within a row, link time should "
              "shrink with θ faster than neighbor time.\n");
  return 0;
}
