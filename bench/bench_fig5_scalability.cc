// bench_fig5_scalability — reproduces paper Figure 5: ROCK execution time
// on the synthetic database as a function of the random-sample size, for
// four θ settings. As in the paper, the final labeling phase is excluded;
// time covers neighbor computation, link computation and the merge loop.
//
// Expected shape (paper): roughly quadratic growth in sample size; larger
// θ is faster because each transaction has fewer neighbors, making link
// computation cheaper.
//
// Usage: bench_fig5_scalability [scale] [--compare-engines]
//                               [--threads=N] [--merge-threads=N]
//   scale             — multiplies the generated database size (default 1.0)
//   --compare-engines — run every cell under all three merge engines
//                       (parallel, flat, hashed) and report the
//                       flat/parallel stage.merge speedup
//   --threads=N       — worker threads for the graph phases (neighbor +
//                       link engines). Used by EXPERIMENTS.md's multi-core
//                       stage table.
//   --merge-threads=N — relink shards for the parallel merge engine; the
//                       merge *sequence* stays serial at any setting.
//
// The headline table times the parallel engine (the default).
//
// Every run appends to the machine-readable perf trajectory
// (BENCH_rock.json, or $ROCK_BENCH_JSON; schema in docs/OBSERVABILITY.md).
// CI's perf-smoke job runs this binary at a small scale with
// --compare-engines and gates on both the flat/hashed and the
// parallel/flat stage.merge ratios.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/rock.h"
#include "core/sampling.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"

namespace {

const char* EngineName(rock::MergeEngineKind kind) {
  switch (kind) {
    case rock::MergeEngineKind::kParallel:
      return "parallel";
    case rock::MergeEngineKind::kFlat:
      return "flat";
    default:
      return "hashed";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rock;
  bench::Banner("Figure 5 — scalability: time vs random-sample size");

  double scale = 1.0;
  bool compare_engines = false;
  size_t threads = 1;
  size_t merge_threads = 1;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--compare-engines") == 0) {
      compare_engines = true;
    } else if (std::strncmp(argv[a], "--merge-threads=", 16) == 0) {
      merge_threads = static_cast<size_t>(std::atoll(argv[a] + 16));
    } else if (std::strncmp(argv[a], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::atoll(argv[a] + 10));
    } else {
      scale = std::atof(argv[a]);
    }
  }

  BasketGeneratorOptions gen;
  if (scale != 1.0) {
    for (auto& s : gen.cluster_sizes) {
      s = static_cast<size_t>(static_cast<double>(s) * scale);
    }
    gen.num_outliers =
        static_cast<size_t>(static_cast<double>(gen.num_outliers) * scale);
  }
  auto ds = GenerateBasketData(gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("database: %zu transactions\n", ds->size());

  const double thetas[] = {0.5, 0.6, 0.7, 0.8};
  const size_t samples[] = {1000, 2000, 3000, 4000, 5000};
  std::vector<MergeEngineKind> engines = {MergeEngineKind::kParallel};
  if (compare_engines) {
    engines.push_back(MergeEngineKind::kFlat);
    engines.push_back(MergeEngineKind::kHashed);
  }

  std::printf("\nexecution time in seconds (excludes labeling, as in the "
              "paper)%s\n",
              compare_engines ? "; parallel engine" : "");
  std::printf("%-12s", "sample");
  for (double theta : thetas) std::printf("   θ=%.1f", theta);
  std::printf("\n");

  // Per-run diag metrics, kept for the stage breakdown table below.
  std::vector<std::pair<std::string, diag::RunMetrics>> breakdowns;
  bench::PerfJsonWriter perf("bench_fig5_scalability");

  Rng rng(7);
  for (size_t n : samples) {
    if (n > ds->size()) break;
    // One shared sample per row so θ is the only variable per column.
    std::vector<size_t> rows = SampleIndices(ds->size(), n, &rng);
    TransactionDataset sample;
    for (size_t r : rows) sample.AddTransaction(ds->transaction(r));

    std::printf("%-12zu", n);
    for (double theta : thetas) {
      TransactionJaccard sim(sample);
      for (MergeEngineKind engine : engines) {
        RockOptions opt;
        opt.theta = theta;
        opt.num_clusters = 10;
        opt.outlier_stop_multiple = 3.0;
        opt.min_cluster_support = 5;
        opt.merge_engine = engine;
        opt.merge_threads = merge_threads;
        opt.graph_threads = threads;
        Timer timer;
        auto result = RockClusterer(opt).Cluster(sim);
        if (!result.ok()) {
          std::fprintf(stderr, "ROCK failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        if (engine == engines.front()) {
          std::printf("%8.2f", timer.ElapsedSeconds());
          std::fflush(stdout);
        }
        char label[64];
        std::snprintf(label, sizeof(label), "n=%zu θ=%.1f %s", n, theta,
                      EngineName(engine));
        perf.BeginEntry(label);
        perf.Param("n", std::to_string(n));
        char theta_str[16];
        std::snprintf(theta_str, sizeof(theta_str), "%.1f", theta);
        perf.Param("theta", theta_str);
        perf.Param("engine", EngineName(engine));
        perf.Param("threads", std::to_string(threads));
        perf.Param("merge_threads", std::to_string(merge_threads));
        perf.AddRunMetrics(result->metrics);
        breakdowns.emplace_back(label, std::move(result->metrics));
      }
    }
    std::printf("\n");
  }

  bench::Section("per-stage breakdown (diag metrics)");
  for (const auto& [label, metrics] : breakdowns) {
    bench::PrintStageBreakdown(label, metrics);
  }

  if (compare_engines) {
    bench::Section("merge-engine comparison (stage.merge seconds)");
    std::printf("%-24s %10s %10s %10s %13s\n", "cell", "parallel", "flat",
                "hashed", "flat/par");
    for (size_t i = 0; i + 2 < breakdowns.size(); i += 3) {
      const double par_s =
          bench::StageSeconds(breakdowns[i].second, "merge");
      const double flat_s =
          bench::StageSeconds(breakdowns[i + 1].second, "merge");
      const double hashed_s =
          bench::StageSeconds(breakdowns[i + 2].second, "merge");
      std::printf("%-24s %10.4f %10.4f %10.4f %12.2fx\n",
                  breakdowns[i].first.c_str(), par_s, flat_s, hashed_s,
                  par_s > 0.0 ? flat_s / par_s : 0.0);
    }
  }

  perf.Write();
  std::printf("\nshape checks (paper): each column grows ~quadratically in "
              "sample size; rows decrease left→right (larger θ → fewer "
              "neighbors → cheaper links); within a row, link time should "
              "shrink with θ faster than neighbor time.\n");
  return 0;
}
