// bench_table4_funds — reproduces paper Table 4: clustering the US
// mutual-fund closing-price time series with ROCK at θ = 0.8 after the
// Up/Down/No categorical transform (§5.1). The paper found 16 clusters of
// size > 3 aligned with fund categories (bonds, growth, international,
// precious metals, …), 24 twin pairs of size 2, and many outlier funds; the
// traditional algorithm could not run at all because of missing values.
//
// Data: group-correlated surrogate series (see DESIGN.md substitutions).

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "common/timer.h"
#include "core/rock.h"
#include "data/timeseries.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "similarity/jaccard.h"
#include "synth/fund_generator.h"

int main() {
  using namespace rock;
  bench::Banner("Table 4 — US mutual funds (time-series → Up/Down/No)");

  auto set = GenerateFundData(FundGeneratorOptions{});
  if (!set.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 set.status().ToString().c_str());
    return 1;
  }
  size_t young = 0;
  for (const auto& ts : set->series) {
    if (!ts.prices.front().has_value()) ++young;
  }
  std::printf("funds: %zu, business dates: %zu, young funds (missing "
              "leading history): %zu\n",
              set->series.size(), set->num_dates, young);

  auto ds = TimeSeriesToCategorical(*set);
  if (!ds.ok()) {
    std::fprintf(stderr, "transform failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("categorical view: %zu attributes (date transitions), "
              "missing rate %.3f\n",
              ds->schema().num_attributes(), ds->MissingRate());

  bench::Section("ROCK (θ = 0.8, pairwise-missing Jaccard)");
  Timer timer;
  PairwiseMissingJaccard sim(*ds);
  RockOptions opt;
  opt.theta = 0.8;
  // "The desired number of clusters input to ROCK is just a hint" (§5.2):
  // 16 named groups + 24 twin pairs. Stopping here keeps the pairs from
  // being absorbed into the loose group neighborhoods they sit near.
  opt.num_clusters = 40;
  auto result = RockClusterer(opt).Cluster(sim);
  if (!result.ok()) {
    std::fprintf(stderr, "ROCK failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const Clustering& c = result->clustering;
  std::printf("time=%.1fs  clusters=%zu  outlier funds=%zu (paper: many "
              "single-fund outliers)\n",
              timer.ElapsedSeconds(), c.num_clusters(), c.num_outliers());

  // Table 4 layout: the named clusters (size >= 3; the paper's own table
  // lists two clusters of size 3) with their dominant category.
  bench::Section("named clusters, size >= 3 (paper Table 4: 16 clusters)");
  std::printf("%-8s %-6s %-22s %s\n", "cluster", "funds", "dominant group",
              "group share");
  size_t big = 0, pairs = 0, pure_pairs = 0, twins_held = 0;
  for (size_t i = 0; i < c.num_clusters(); ++i) {
    std::map<std::string, size_t> groups;
    size_t pair_members = 0;
    for (PointIndex p : c.clusters[i]) {
      const std::string& g = ds->labels().Name(ds->labels().label(p));
      ++groups[g];
      if (g.rfind("pair", 0) == 0) ++pair_members;
    }
    auto dominant = std::max_element(
        groups.begin(), groups.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const bool pair_cluster =
        dominant->first.rfind("pair", 0) == 0 && pair_members == 2;
    if (c.clusters[i].size() >= 3 && !pair_cluster) {
      ++big;
      std::printf("%-8zu %-6zu %-22s %zu/%zu\n", big, c.clusters[i].size(),
                  dominant->first.c_str(), dominant->second,
                  c.clusters[i].size());
    } else if (c.clusters[i].size() == 2) {
      ++pairs;
      if (groups.size() == 1) ++pure_pairs;
    } else if (pair_cluster) {
      ++twins_held;  // twins together with a stray market fund attached
    }
  }
  std::printf("\nnamed clusters of size >= 3: %zu   (paper: 16)\n", big);
  std::printf("clusters of size 2:  %zu, of which same-group (twin funds "
              "with one manager): %zu   (paper: 24 interesting pairs)\n",
              pairs, pure_pairs);
  std::printf("twin pairs held together with one stray fund attached: %zu\n",
              twins_held);

  auto table = ContingencyTable::Build(c, ds->labels());
  if (table.ok()) {
    std::printf("purity over clustered funds: %.3f\n", Purity(*table));
  }
  std::printf("\nnote: the traditional centroid algorithm \"could not be "
              "run\" on this data (paper §5.2) — record lengths vary due to "
              "missing values;\nROCK handles them via the pairwise-missing "
              "similarity of §3.1.2.\n");
  return 0;
}
