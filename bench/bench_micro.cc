// bench_micro — google-benchmark microbenchmarks for librock's hot paths:
// Jaccard similarity, neighbor-graph construction, the updatable heap, the
// goodness measure, reservoir sampling, the synthetic generators, and the
// diag metrics overhead (collection on vs off on a full clustering run —
// must stay within noise).

#include <benchmark/benchmark.h>

#include <cmath>
#include <utility>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/goodness.h"
#include "core/rock.h"
#include "core/sampling.h"
#include "data/dataset.h"
#include "graph/neighbors.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"
#include "synth/mushroom_generator.h"
#include "util/updatable_heap.h"

namespace rock {
namespace {

TransactionDataset MakeBaskets(size_t n) {
  BasketGeneratorOptions opt;
  opt.cluster_sizes = {n / 2, n - n / 2};
  opt.items_per_cluster = {20, 20};
  opt.num_outliers = 0;
  opt.seed = 99;
  return std::move(GenerateBasketData(opt)).value();
}

void BM_JaccardSimilarity(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(1024);
  size_t i = 0;
  for (auto _ : state) {
    const double s = JaccardSimilarity(ds.transaction(i % ds.size()),
                                       ds.transaction((i * 7 + 1) % ds.size()));
    benchmark::DoNotOptimize(s);
    ++i;
  }
}
BENCHMARK(BM_JaccardSimilarity);

void BM_NeighborGraph(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  TransactionDataset ds = MakeBaskets(n);
  TransactionJaccard sim(ds);
  for (auto _ : state) {
    auto g = ComputeNeighbors(sim, 0.5);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborGraph)->Arg(256)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_HeapInsertEraseMixed(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    UpdatableHeap<uint32_t, double> heap;
    for (int op = 0; op < 10000; ++op) {
      const auto key = static_cast<uint32_t>(rng.UniformUint64(2000));
      if (rng.Bernoulli(0.7)) {
        heap.InsertOrUpdate(key, rng.UniformDouble());
      } else {
        heap.Erase(key);
      }
    }
    benchmark::DoNotOptimize(heap.size());
  }
}
BENCHMARK(BM_HeapInsertEraseMixed)->Unit(benchmark::kMillisecond);

void BM_HeapExtractAll(benchmark::State& state) {
  Rng rng(2);
  const auto n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    UpdatableHeap<uint32_t, double> heap;
    for (size_t i = 0; i < n; ++i) {
      heap.InsertOrUpdate(static_cast<uint32_t>(i), rng.UniformDouble());
    }
    state.ResumeTiming();
    while (!heap.empty()) {
      benchmark::DoNotOptimize(heap.ExtractTop().key);
    }
  }
}
BENCHMARK(BM_HeapExtractAll)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_GoodnessMeasure(benchmark::State& state) {
  RockOptions opt;
  opt.theta = 0.5;
  GoodnessMeasure g(opt);
  uint64_t links = 1;
  for (auto _ : state) {
    const double v = g.Goodness(links, (links % 100) + 1, 50);
    benchmark::DoNotOptimize(v);
    ++links;
  }
}
BENCHMARK(BM_GoodnessMeasure);

// The memoized size^{1+2f(θ)} table against the raw std::pow call it
// replaces. The merge loop asks for these powers once per relinked row
// entry — millions of times with sizes bounded by n — so a table hit must
// cost a single L1 read. The memo arm is bit-identical to the pow arm by
// construction (pinned in tests/rock_test.cc).
void BM_ExpectedIntraLinks(benchmark::State& state) {
  const bool memo = state.range(0) != 0;
  RockOptions opt;
  opt.theta = 0.5;
  GoodnessMeasure g(opt);
  g.Reserve(4096);
  const double e = g.exponent();
  size_t i = 1;
  for (auto _ : state) {
    const size_t size = (i % 4096) + 1;
    const double v = memo ? g.ExpectedIntraLinks(size)
                          : std::pow(static_cast<double>(size), e);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}
BENCHMARK(BM_ExpectedIntraLinks)->Arg(0)->Arg(1)->ArgName("memo");

void BM_ReservoirSampling(benchmark::State& state) {
  const auto stream = static_cast<size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    ReservoirSampler<size_t> sampler(1000, &rng);
    for (size_t i = 0; i < stream; ++i) sampler.Offer(i);
    benchmark::DoNotOptimize(sampler.sample().size());
  }
}
BENCHMARK(BM_ReservoirSampling)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_BasketGenerator(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    BasketGeneratorOptions opt;
    opt.cluster_sizes = {n};
    opt.items_per_cluster = {20};
    opt.num_outliers = n / 20;
    TransactionDataset ds = std::move(GenerateBasketData(opt)).value();
    benchmark::DoNotOptimize(ds.size());
  }
}
BENCHMARK(BM_BasketGenerator)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// Full ROCK run with metrics collection toggled by the benchmark argument;
// compare the two rows to bound the diag subsystem's enabled/disabled cost.
void BM_RockClusterMetrics(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(512);
  TransactionJaccard sim(ds);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 2;
  opt.diag.collect_metrics = state.range(0) != 0;
  RockClusterer clusterer(opt);
  for (auto _ : state) {
    auto result = clusterer.Cluster(sim);
    benchmark::DoNotOptimize(result->stats.num_merges);
  }
}
BENCHMARK(BM_RockClusterMetrics)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("collect_metrics")
    ->Unit(benchmark::kMillisecond);

// The three merge-engine layouts over an identical precomputed neighbor
// graph: hashed (unordered_map oracle), flat (CSR + sorted-merge
// relinking), parallel (AoS rows + lazy best-cleaning + sharded relink).
// Same merge sequence, different memory traffic and rescan counts.
void BM_RockMergeEngine(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  TransactionDataset local = MakeBaskets(n);
  TransactionJaccard local_sim(local);
  auto graph = ComputeNeighbors(local_sim, 0.5);
  RockOptions opt;
  opt.theta = 0.5;
  opt.num_clusters = 4;
  opt.merge_engine = state.range(1) == 0   ? MergeEngineKind::kHashed
                     : state.range(1) == 1 ? MergeEngineKind::kFlat
                                           : MergeEngineKind::kParallel;
  RockClusterer clusterer(opt);
  for (auto _ : state) {
    auto result = clusterer.ClusterGraph(*graph);
    benchmark::DoNotOptimize(result->stats.num_merges);
  }
}
BENCHMARK(BM_RockMergeEngine)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({2048, 0})
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->ArgNames({"n", "engine"})
    ->Unit(benchmark::kMillisecond);

// The merge loop's new heap primitives: rename-in-place vs the
// erase + insert pair it replaces, and bulk Assign vs repeated inserts.
void BM_HeapReplaceKey(benchmark::State& state) {
  Rng rng(4);
  const bool use_replace = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    UpdatableHeap<uint32_t, double> heap;
    for (uint32_t i = 0; i < 4096; ++i) {
      heap.InsertOrUpdate(i, rng.UniformDouble());
    }
    state.ResumeTiming();
    for (uint32_t i = 0; i < 4096; ++i) {
      const double priority = rng.UniformDouble();
      if (use_replace) {
        heap.ReplaceKey(i, i + 100000, priority);
      } else {
        heap.Erase(i);
        heap.InsertOrUpdate(i + 100000, priority);
      }
    }
    benchmark::DoNotOptimize(heap.size());
  }
}
BENCHMARK(BM_HeapReplaceKey)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("replace_key")
    ->Unit(benchmark::kMicrosecond);

void BM_HeapAssign(benchmark::State& state) {
  Rng rng(5);
  const bool use_assign = state.range(0) != 0;
  std::vector<UpdatableHeap<uint32_t, double>::Entry> entries;
  for (uint32_t i = 0; i < 4096; ++i) {
    entries.push_back({i, rng.UniformDouble()});
  }
  for (auto _ : state) {
    UpdatableHeap<uint32_t, double> heap;
    if (use_assign) {
      heap.Assign(entries);
    } else {
      for (const auto& e : entries) heap.InsertOrUpdate(e.key, e.priority);
    }
    benchmark::DoNotOptimize(heap.size());
  }
}
BENCHMARK(BM_HeapAssign)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("assign")
    ->Unit(benchmark::kMicrosecond);

void BM_MushroomGenerator(benchmark::State& state) {
  for (auto _ : state) {
    MushroomGeneratorOptions opt;
    opt.size_scale = 0.25;
    auto ds = GenerateMushroomData(opt);
    benchmark::DoNotOptimize(ds->size());
  }
}
BENCHMARK(BM_MushroomGenerator)->Unit(benchmark::kMillisecond);

// Direct engine measurement for the perf trajectory: one timed
// ClusterGraph per engine at each size, full diag metrics captured, written
// to BENCH_rock.json ($ROCK_BENCH_JSON). Runs after the google-benchmark
// suite so the JSON exists even when benchmarks are filtered out.
void WritePerfTrajectory() {
  bench::PerfJsonWriter perf("bench_micro");
  const std::pair<MergeEngineKind, const char*> kEngines[] = {
      {MergeEngineKind::kParallel, "parallel"},
      {MergeEngineKind::kFlat, "flat"},
      {MergeEngineKind::kHashed, "hashed"},
  };
  for (size_t n : {size_t{512}, size_t{2048}}) {
    TransactionDataset ds = MakeBaskets(n);
    TransactionJaccard sim(ds);
    auto graph = ComputeNeighbors(sim, 0.5);
    for (const auto& [kind, engine] : kEngines) {
      RockOptions opt;
      opt.theta = 0.5;
      opt.num_clusters = 4;
      opt.merge_engine = kind;
      Timer timer;
      auto result = RockClusterer(opt).ClusterGraph(*graph);
      const double seconds = timer.ElapsedSeconds();
      if (!result.ok()) continue;
      perf.BeginEntry("merge_engine n=" + std::to_string(n) + " " + engine);
      perf.Param("n", std::to_string(n));
      perf.Param("engine", engine);
      perf.Timer("wall", seconds);
      perf.AddRunMetrics(result->metrics);
    }
  }
  perf.Write();
}

}  // namespace
}  // namespace rock

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  rock::WritePerfTrajectory();
  return 0;
}
