// bench_table2_votes — reproduces paper Table 2 (and Table 7):
// congressional-votes data, traditional centroid-based hierarchical
// clustering vs ROCK with θ = 0.73, k = 2.
//
// Data: the real UCI file is loaded from $ROCK_DATA_DIR/house-votes-84.data
// (or ./data/house-votes-84.data) when present; otherwise the Table 7-
// calibrated surrogate generator is used (see DESIGN.md substitutions).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/binarize.h"
#include "baselines/centroid_hierarchical.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/rock.h"
#include "data/csv_reader.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "eval/profiles.h"
#include "similarity/jaccard.h"
#include "synth/votes_generator.h"

namespace rock {
namespace {

Result<CategoricalDataset> LoadVotes() {
  std::string path = "data/house-votes-84.data";
  if (const char* dir = std::getenv("ROCK_DATA_DIR")) {
    path = std::string(dir) + "/house-votes-84.data";
  }
  CsvOptions csv;  // class label in column 0, '?' missing — UCI layout
  auto real = ReadCsvFile(path, csv);
  if (real.ok()) {
    std::printf("using real UCI data: %s (%zu records)\n", path.c_str(),
                real->size());
    return real;
  }
  std::printf("real UCI file not found (%s) — using Table 7-calibrated "
              "surrogate\n",
              real.status().ToString().c_str());
  return GenerateVotesData(VotesGeneratorOptions{});
}

}  // namespace
}  // namespace rock

int main() {
  using namespace rock;
  bench::Banner("Table 2 — Congressional votes: traditional vs ROCK");

  auto ds = LoadVotes();
  if (!ds.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("records: %zu, attributes: %zu, missing rate: %.3f\n",
              ds->size(), ds->schema().num_attributes(), ds->MissingRate());

  // --- Traditional centroid-based hierarchical algorithm (paper §5). ---
  bench::Section("traditional centroid-based hierarchical (k = 2)");
  Timer t1;
  BinarizedData bin = BinarizeRecords(*ds);
  CentroidHierarchicalOptions copt;
  copt.num_clusters = 2;  // outlier handling per §5: singletons die at n/3
  auto centroid = ClusterCentroidHierarchical(bin.points, copt);
  if (!centroid.ok()) {
    std::fprintf(stderr, "centroid clustering failed: %s\n",
                 centroid.status().ToString().c_str());
    return 1;
  }
  auto ct = ContingencyTable::Build(centroid->clustering, ds->labels());
  bench::PrintContingency(*ct, ds->labels());
  std::printf("purity=%.3f  ARI=%.3f  time=%.2fs\n", Purity(*ct),
              AdjustedRandIndex(*ct), t1.ElapsedSeconds());
  std::printf("paper Table 2 (real data): cluster1 = 157 R + 52 D, "
              "cluster2 = 11 R + 215 D\n");

  // --- ROCK, θ = 0.73 (paper §5.2). ---
  bench::Section("ROCK (θ = 0.73, k = 2, outlier weeding on)");
  Timer t2;
  CategoricalJaccard sim(*ds);
  RockOptions ropt;
  ropt.theta = 0.73;
  ropt.num_clusters = 2;
  ropt.outlier_stop_multiple = 3.0;
  ropt.min_cluster_support = 5;
  auto rock_result = RockClusterer(ropt).Cluster(sim);
  if (!rock_result.ok()) {
    std::fprintf(stderr, "ROCK failed: %s\n",
                 rock_result.status().ToString().c_str());
    return 1;
  }
  auto rt = ContingencyTable::Build(rock_result->clustering, ds->labels());
  bench::PrintContingency(*rt, ds->labels());
  std::printf("purity=%.3f  ARI=%.3f  time=%.2fs  (pruned=%zu weeded=%zu "
              "criterion=%.1f)\n",
              Purity(*rt), AdjustedRandIndex(*rt), t2.ElapsedSeconds(),
              rock_result->stats.num_pruned_points,
              rock_result->stats.num_weeded_clusters,
              rock_result->stats.criterion_value);
  std::printf("paper Table 2 (real data): cluster1 = 144 R + 22 D, "
              "cluster2 = 5 R + 201 D (sum < 435: outliers removed)\n");

  // --- Table 7: frequent attribute values of the two ROCK clusters. ---
  bench::Section("Table 7 — cluster characteristics (support >= 0.5)");
  ProfileOptions popt;
  popt.min_support = 0.5;
  auto profiles =
      ProfileClusters(*ds, rock_result->clustering, popt);
  for (const auto& p : profiles) {
    std::printf("%s", FormatProfile(p).c_str());
  }
  return 0;
}
