// bench_neighbors_ablation — google-benchmark comparison of the neighbor-
// graph construction strategies on basket data (the O(n²) phase of §4.5):
//   * exact serial all-pairs Jaccard (the paper's algorithm),
//   * exact multithreaded all-pairs,
//   * MinHash/LSH candidate generation + exact verification,
// plus the end-to-end clustering alternatives at high θ:
//   * full merge engine vs the link-component shortcut.

#include <benchmark/benchmark.h>

#include "core/components.h"
#include "core/rock.h"
#include "graph/parallel.h"
#include "similarity/jaccard.h"
#include "similarity/minhash.h"
#include "synth/basket_generator.h"
#include "synth/mushroom_generator.h"

namespace rock {
namespace {

TransactionDataset MakeBaskets(size_t n) {
  BasketGeneratorOptions opt;
  opt.cluster_sizes = {n / 3, n / 3, n - 2 * (n / 3)};
  opt.items_per_cluster = {20, 22, 18};
  opt.num_outliers = n / 20;
  opt.seed = 12345;
  return std::move(GenerateBasketData(opt)).value();
}

void BM_NeighborsExactSerial(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(static_cast<size_t>(state.range(0)));
  TransactionJaccard sim(ds);
  for (auto _ : state) {
    auto g = ComputeNeighbors(sim, 0.5);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsExactSerial)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_NeighborsExactParallel(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(static_cast<size_t>(state.range(0)));
  TransactionJaccard sim(ds);
  ParallelOptions opt;
  opt.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto g = ComputeNeighborsParallel(sim, 0.5, opt);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsExactParallel)
    ->ArgsProduct({{1000, 2000, 4000}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_NeighborsLsh(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto g = ComputeNeighborsLsh(ds, 0.5);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsLsh)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

// With small (~15-item) transactions, an exact Jaccard costs tens of
// nanoseconds and LSH's signature work cannot pay for itself — the honest
// result the small-tx benchmarks above show. The crossover needs expensive
// similarities: these variants use ~150-item transactions (wide baskets,
// e.g. monthly shopping histories), where one exact comparison costs ~10×
// more while signatures amortize.
TransactionDataset MakeWideBaskets(size_t n) {
  BasketGeneratorOptions opt;
  opt.cluster_sizes = {n / 2, n - n / 2};
  opt.items_per_cluster = {300, 320};
  opt.mean_tx_size = 150.0;
  opt.stddev_tx_size = 15.0;
  opt.num_outliers = n / 20;
  opt.seed = 777;
  return std::move(GenerateBasketData(opt)).value();
}

void BM_NeighborsExactSerialWideTx(benchmark::State& state) {
  TransactionDataset ds = MakeWideBaskets(static_cast<size_t>(state.range(0)));
  TransactionJaccard sim(ds);
  for (auto _ : state) {
    auto g = ComputeNeighbors(sim, 0.5);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsExactSerialWideTx)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_NeighborsLshWideTx(benchmark::State& state) {
  TransactionDataset ds = MakeWideBaskets(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto g = ComputeNeighborsLsh(ds, 0.5);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsLshWideTx)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_LinksParallelThreads(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(2000);
  TransactionJaccard sim(ds);
  auto graph = ComputeNeighbors(sim, 0.5);
  ParallelOptions opt;
  opt.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    LinkMatrix links = opt.num_threads == 1
                           ? ComputeLinks(*graph)
                           : ComputeLinksParallel(*graph, opt);
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksParallelThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ClusterMergeEngine(benchmark::State& state) {
  MushroomGeneratorOptions gen;
  gen.size_scale = 0.1;
  auto ds = GenerateMushroomData(gen);
  CategoricalJaccard sim(*ds);
  for (auto _ : state) {
    RockOptions opt;
    opt.theta = 0.8;
    opt.num_clusters = 1;
    auto r = RockClusterer(opt).Cluster(sim);
    benchmark::DoNotOptimize(r->clustering.num_clusters());
  }
}
BENCHMARK(BM_ClusterMergeEngine)->Unit(benchmark::kMillisecond);

void BM_ClusterLinkComponents(benchmark::State& state) {
  MushroomGeneratorOptions gen;
  gen.size_scale = 0.1;
  auto ds = GenerateMushroomData(gen);
  CategoricalJaccard sim(*ds);
  for (auto _ : state) {
    auto r = ComputeLinkComponents(sim, 0.8);
    benchmark::DoNotOptimize(r->clustering.num_clusters());
  }
}
BENCHMARK(BM_ClusterLinkComponents)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rock

BENCHMARK_MAIN();
