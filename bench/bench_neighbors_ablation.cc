// bench_neighbors_ablation — comparison of the neighbor-graph construction
// strategies on basket data (the O(n²) phase of §4.5):
//   * exact serial all-pairs Jaccard (the paper's algorithm),
//   * exact multithreaded all-pairs,
//   * MinHash/LSH candidate generation + exact verification,
// plus the end-to-end clustering alternatives at high θ:
//   * full merge engine vs the link-component shortcut.
//
// Default mode runs the google-benchmark suite below. With
// --compare-engines it instead measures the packed neighbor engine against
// the scalar oracle on the Fig. 5 configuration (shared samples, θ sweep),
// verifies the graphs are identical, and appends packed-vs-scalar rows to
// the machine-readable perf trajectory (BENCH_rock.json / $ROCK_BENCH_JSON)
// for CI's perf-smoke stage.neighbors ratio gate.
//
// Usage: bench_neighbors_ablation [--compare-engines] [--scale=X]
//                                 [--max-n=N] [--reps=R] [gbench flags]
//   --scale=X  — multiplies the generated database size (default 1.0)
//   --max-n=N  — largest sample size to run (default 5000)
//   --reps=R   — timing repetitions per cell, best-of-R (default 1)

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/components.h"
#include "core/rock.h"
#include "core/sampling.h"
#include "diag/metrics.h"
#include "graph/neighbor_engine.h"
#include "graph/parallel.h"
#include "similarity/jaccard.h"
#include "similarity/minhash.h"
#include "synth/basket_generator.h"
#include "synth/mushroom_generator.h"

namespace rock {
namespace {

TransactionDataset MakeBaskets(size_t n) {
  BasketGeneratorOptions opt;
  opt.cluster_sizes = {n / 3, n / 3, n - 2 * (n / 3)};
  opt.items_per_cluster = {20, 22, 18};
  opt.num_outliers = n / 20;
  opt.seed = 12345;
  return std::move(GenerateBasketData(opt)).value();
}

void BM_NeighborsExactSerial(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(static_cast<size_t>(state.range(0)));
  TransactionJaccard sim(ds);
  for (auto _ : state) {
    auto g = ComputeNeighbors(sim, 0.5);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsExactSerial)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_NeighborsExactParallel(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(static_cast<size_t>(state.range(0)));
  TransactionJaccard sim(ds);
  ParallelOptions opt;
  opt.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto g = ComputeNeighborsParallel(sim, 0.5, opt);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsExactParallel)
    ->ArgsProduct({{1000, 2000, 4000}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_NeighborsLsh(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto g = ComputeNeighborsLsh(ds, 0.5);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsLsh)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

// With small (~15-item) transactions, an exact Jaccard costs tens of
// nanoseconds and LSH's signature work cannot pay for itself — the honest
// result the small-tx benchmarks above show. The crossover needs expensive
// similarities: these variants use ~150-item transactions (wide baskets,
// e.g. monthly shopping histories), where one exact comparison costs ~10×
// more while signatures amortize.
TransactionDataset MakeWideBaskets(size_t n) {
  BasketGeneratorOptions opt;
  opt.cluster_sizes = {n / 2, n - n / 2};
  opt.items_per_cluster = {300, 320};
  opt.mean_tx_size = 150.0;
  opt.stddev_tx_size = 15.0;
  opt.num_outliers = n / 20;
  opt.seed = 777;
  return std::move(GenerateBasketData(opt)).value();
}

void BM_NeighborsExactSerialWideTx(benchmark::State& state) {
  TransactionDataset ds = MakeWideBaskets(static_cast<size_t>(state.range(0)));
  TransactionJaccard sim(ds);
  for (auto _ : state) {
    auto g = ComputeNeighbors(sim, 0.5);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsExactSerialWideTx)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_NeighborsLshWideTx(benchmark::State& state) {
  TransactionDataset ds = MakeWideBaskets(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto g = ComputeNeighborsLsh(ds, 0.5);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_NeighborsLshWideTx)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_LinksParallelThreads(benchmark::State& state) {
  TransactionDataset ds = MakeBaskets(2000);
  TransactionJaccard sim(ds);
  auto graph = ComputeNeighbors(sim, 0.5);
  ParallelOptions opt;
  opt.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    LinkMatrix links = opt.num_threads == 1
                           ? ComputeLinks(*graph)
                           : ComputeLinksParallel(*graph, opt);
    benchmark::DoNotOptimize(links.size());
  }
}
BENCHMARK(BM_LinksParallelThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ClusterMergeEngine(benchmark::State& state) {
  MushroomGeneratorOptions gen;
  gen.size_scale = 0.1;
  auto ds = GenerateMushroomData(gen);
  CategoricalJaccard sim(*ds);
  for (auto _ : state) {
    RockOptions opt;
    opt.theta = 0.8;
    opt.num_clusters = 1;
    auto r = RockClusterer(opt).Cluster(sim);
    benchmark::DoNotOptimize(r->clustering.num_clusters());
  }
}
BENCHMARK(BM_ClusterMergeEngine)->Unit(benchmark::kMillisecond);

void BM_ClusterLinkComponents(benchmark::State& state) {
  MushroomGeneratorOptions gen;
  gen.size_scale = 0.1;
  auto ds = GenerateMushroomData(gen);
  CategoricalJaccard sim(*ds);
  for (auto _ : state) {
    auto r = ComputeLinkComponents(sim, 0.8);
    benchmark::DoNotOptimize(r->clustering.num_clusters());
  }
}
BENCHMARK(BM_ClusterLinkComponents)->Unit(benchmark::kMillisecond);

// ------------------------------------------- --compare-engines harness --

// Packed vs scalar neighbor construction on the Fig. 5 configuration: one
// shared sample per n, θ sweep, graphs cross-checked for equality, timings
// appended to the perf trajectory. Returns nonzero on any mismatch so CI
// fails loudly rather than gating on a wrong graph's timings.
int RunEngineComparison(double scale, size_t max_n, size_t reps) {
  bench::Banner(
      "neighbor engines — packed (bit-planes + θ pruning) vs scalar oracle");

  BasketGeneratorOptions gen;
  if (scale != 1.0) {
    for (auto& s : gen.cluster_sizes) {
      s = static_cast<size_t>(static_cast<double>(s) * scale);
    }
    gen.num_outliers =
        static_cast<size_t>(static_cast<double>(gen.num_outliers) * scale);
  }
  auto ds = GenerateBasketData(gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("database: %zu transactions, reps=%zu (best-of)\n", ds->size(),
              reps);

  const double thetas[] = {0.5, 0.6, 0.7, 0.8};
  const size_t samples[] = {1000, 2000, 3000, 4000, 5000};
  bench::PerfJsonWriter perf("bench_neighbors_ablation");
  std::printf("\n%-16s %10s %10s %9s %14s %14s\n", "cell", "packed",
              "scalar", "speedup", "evaluated", "pruned");

  Rng rng(7);
  for (const size_t n : samples) {
    if (n > max_n || n > ds->size()) break;
    const std::vector<size_t> rows = SampleIndices(ds->size(), n, &rng);
    TransactionDataset sample;
    for (const size_t r : rows) sample.AddTransaction(ds->transaction(r));
    const TransactionJaccard sim(sample);

    for (const double theta : thetas) {
      diag::MetricsRegistry metrics;
      double packed_s = 0.0;
      NeighborGraph packed_graph;
      for (size_t rep = 0; rep < reps; ++rep) {
        diag::MetricsRegistry rep_metrics;
        PackedNeighborOptions nopts;
        nopts.metrics = &rep_metrics;
        Timer timer;
        auto g = ComputeNeighborsPacked(sim, theta, nopts);
        const double s = timer.ElapsedSeconds();
        if (!g.ok()) {
          std::fprintf(stderr, "packed engine failed: %s\n",
                       g.status().ToString().c_str());
          return 1;
        }
        if (rep == 0 || s < packed_s) {
          packed_s = s;
          metrics = std::move(rep_metrics);
          packed_graph = *std::move(g);
        }
      }
      double scalar_s = 0.0;
      NeighborGraph scalar_graph;
      for (size_t rep = 0; rep < reps; ++rep) {
        Timer timer;
        auto g = ComputeNeighbors(sim, theta);
        const double s = timer.ElapsedSeconds();
        if (!g.ok()) {
          std::fprintf(stderr, "scalar engine failed: %s\n",
                       g.status().ToString().c_str());
          return 1;
        }
        if (rep == 0 || s < scalar_s) {
          scalar_s = s;
          scalar_graph = *std::move(g);
        }
      }
      if (packed_graph.nbrlist != scalar_graph.nbrlist) {
        std::fprintf(stderr,
                     "ENGINE MISMATCH at n=%zu θ=%.1f — graphs differ\n", n,
                     theta);
        return 1;
      }

      const diag::RunMetrics snap = metrics.Snapshot();
      char label[64];
      char theta_str[16];
      std::snprintf(theta_str, sizeof(theta_str), "%.1f", theta);
      for (const char* engine : {"packed", "scalar"}) {
        std::snprintf(label, sizeof(label), "n=%zu θ=%s %s", n, theta_str,
                      engine);
        perf.BeginEntry(label);
        perf.Param("n", std::to_string(n));
        perf.Param("theta", theta_str);
        perf.Param("engine", engine);
        if (std::strcmp(engine, "packed") == 0) {
          perf.Timer("stage.neighbors", packed_s);
          perf.AddRunMetrics(snap);
        } else {
          perf.Timer("stage.neighbors", scalar_s);
        }
      }
      std::snprintf(label, sizeof(label), "n=%zu θ=%s", n, theta_str);
      std::printf("%-16s %9.4fs %9.4fs %8.2fx %14llu %14llu\n", label,
                  packed_s, scalar_s,
                  packed_s > 0.0 ? scalar_s / packed_s : 0.0,
                  static_cast<unsigned long long>(
                      snap.CounterOr("neighbors.pairs_evaluated")),
                  static_cast<unsigned long long>(
                      snap.CounterOr("neighbors.pairs_pruned")));
    }
  }
  perf.Write();
  return 0;
}

}  // namespace
}  // namespace rock

int main(int argc, char** argv) {
  bool compare_engines = false;
  double scale = 1.0;
  size_t max_n = 5000;
  size_t reps = 1;
  int kept = 1;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--compare-engines") == 0) {
      compare_engines = true;
    } else if (std::strncmp(argv[a], "--scale=", 8) == 0) {
      scale = std::atof(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--max-n=", 8) == 0) {
      max_n = static_cast<size_t>(std::atoll(argv[a] + 8));
    } else if (std::strncmp(argv[a], "--reps=", 7) == 0) {
      reps = static_cast<size_t>(std::atoll(argv[a] + 7));
    } else {
      argv[kept++] = argv[a];  // leave for google-benchmark
    }
  }
  argc = kept;
  if (compare_engines) {
    return rock::RunEngineComparison(scale, max_n, reps < 1 ? 1 : reps);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
