// bench_graph_scale — graph-build scaling harness for the neighbor + link
// engines (the two phases the paper's §4.5 cost model calls O(n²) and
// O(Σ mᵢ²)). Measures stage.neighbors + stage.links on Fig. 5 synthetic
// baskets at n ∈ {5k, 20k, 50k} under three engine configurations:
//
//   baseline — the all-pairs packed neighbor engine, single thread, with
//              the bit-plane link pass (which over the packing budget at
//              large n degrades to the hashed Fig. 4 scatter) — the
//              pre-LSH, pre-scatter configuration.
//   auto     — kAuto neighbors with LSH allowed (the sampled cost model
//              picks all-pairs vs LSH from n, density and θ) + kAuto
//              links (plane vs dense ScanCount scatter), multi-threaded.
//   lsh      — kLsh forced with θ-tuned banding, multi-threaded; reports
//              candidate recall against the exact graph (recall_ppm).
//
// Every configuration is differentially checked against the baseline run:
// exact engines must reproduce the graph bit-identically; LSH must be an
// exact subgraph (precision 1) and its edge recall is recorded as the
// neighbors.lsh_recall_ppm counter, which CI's perf-smoke gate floors at
// 0.999 for θ = 0.73 with tuned bands.
//
// Usage: bench_graph_scale [--theta=0.73] [--ns=5000,20000,50000]
//                          [--threads=8] [--seed=7]
//
// Appends to the machine-readable perf trajectory (BENCH_rock.json or
// $ROCK_BENCH_JSON): one entry per (n, engine) with stage.neighbors,
// stage.links and their sum stage.graph, which the fifth perf-smoke gate
// ratios (lsh vs baseline at n = 20k).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/sampling.h"
#include "graph/link_engine.h"
#include "graph/neighbor_engine.h"
#include "similarity/jaccard.h"
#include "similarity/minhash.h"
#include "synth/basket_generator.h"

namespace {

using namespace rock;

struct Cell {
  NeighborGraph graph;
  uint64_t nonzero_pairs = 0;
  uint64_t total_links = 0;
  double nbr_seconds = 0;
  double link_seconds = 0;
};

uint64_t EdgeCount(const NeighborGraph& graph) {
  uint64_t twice = 0;
  for (const auto& row : graph.nbrlist) twice += row.size();
  return twice / 2;
}

/// Edges present in both graphs (each adjacency list is sorted ascending).
uint64_t SharedEdges(const NeighborGraph& a, const NeighborGraph& b) {
  uint64_t twice = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a.nbrlist[i];
    const auto& rb = b.nbrlist[i];
    size_t x = 0, y = 0;
    while (x < ra.size() && y < rb.size()) {
      if (ra[x] < rb[y]) {
        ++x;
      } else if (rb[y] < ra[x]) {
        ++y;
      } else {
        ++twice, ++x, ++y;
      }
    }
  }
  return twice / 2;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("graph scale — neighbor + link engines vs n");

  double theta = 0.73;
  size_t threads = 8;
  uint64_t seed = 7;
  std::vector<size_t> ns = {5000, 20000, 50000};
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--theta=", 8) == 0) {
      theta = std::atof(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::atoll(argv[a] + 10));
    } else if (std::strncmp(argv[a], "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::atoll(argv[a] + 7));
    } else if (std::strncmp(argv[a], "--ns=", 5) == 0) {
      ns.clear();
      for (const char* p = argv[a] + 5; *p != '\0';) {
        ns.push_back(static_cast<size_t>(std::atoll(p)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[a]);
      return 2;
    }
  }

  size_t max_n = 0;
  for (const size_t n : ns) max_n = n > max_n ? n : max_n;
  BasketGeneratorOptions gen;
  {
    // Scale the Fig. 5 database so the largest requested n fits.
    size_t base = gen.num_outliers;
    for (const size_t s : gen.cluster_sizes) base += s;
    const double scale =
        base < max_n ? static_cast<double>(max_n) / static_cast<double>(base)
                     : 1.0;
    for (auto& s : gen.cluster_sizes) {
      s = static_cast<size_t>(static_cast<double>(s) * scale);
    }
    gen.num_outliers =
        static_cast<size_t>(static_cast<double>(gen.num_outliers) * scale);
  }
  auto ds = GenerateBasketData(gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("database: %zu transactions, θ = %.2f, threads = %zu\n",
              ds->size(), theta, threads);

  bench::PerfJsonWriter perf("bench_graph_scale");
  const LshOptions tuned = TuneLshOptions(theta, seed);
  std::printf("tuned banding: b = %zu, r = %zu (recall at s = θ: %.6f)\n",
              tuned.num_bands, tuned.rows_per_band,
              LshCollisionProbability(theta, tuned));

  std::printf("\n%-8s %-10s %12s %12s %12s %10s\n", "n", "engine",
              "neighbors", "links", "graph", "edges");

  Rng rng(seed);
  for (const size_t n : ns) {
    if (n > ds->size()) {
      std::fprintf(stderr, "skipping n=%zu (database has %zu)\n", n,
                   ds->size());
      continue;
    }
    const std::vector<size_t> rows = SampleIndices(ds->size(), n, &rng);
    TransactionDataset sample;
    for (const size_t r : rows) sample.AddTransaction(ds->transaction(r));
    const TransactionJaccard sim(sample);

    Cell baseline;
    double auto_graph_seconds = 0;
    const struct {
      const char* name;
      PackedStrategy strategy;
      bool allow_lsh;
      size_t threads;
      PackedLinkStrategy links;
    } engines[] = {
        {"baseline", PackedStrategy::kAuto, false, 1,
         PackedLinkStrategy::kPlane},
        {"auto", PackedStrategy::kAuto, true, threads,
         PackedLinkStrategy::kAuto},
        {"lsh", PackedStrategy::kLsh, false, threads,
         PackedLinkStrategy::kAuto},
    };
    for (const auto& engine : engines) {
      diag::MetricsRegistry registry;
      PackedNeighborOptions nopts;
      nopts.num_threads = engine.threads;
      nopts.strategy = engine.strategy;
      nopts.allow_lsh = engine.allow_lsh;
      nopts.lsh = tuned;
      nopts.metrics = &registry;
      Timer nbr_timer;
      auto graph = ComputeNeighborsPacked(sim, theta, nopts);
      const double nbr_seconds = nbr_timer.ElapsedSeconds();
      if (!graph.ok()) {
        std::fprintf(stderr, "neighbors failed: %s\n",
                     graph.status().ToString().c_str());
        return 1;
      }

      PackedLinkOptions lopts;
      lopts.num_threads = engine.threads;
      lopts.strategy = engine.links;
      lopts.metrics = &registry;
      Timer link_timer;
      const LinkMatrix links = ComputeLinksPacked(*graph, lopts);
      const double link_seconds = link_timer.ElapsedSeconds();

      const diag::RunMetrics m = registry.Snapshot();
      const bool ran_lsh = m.CounterOr("neighbors.lsh_pass") > 0;
      uint64_t recall_ppm = 1000000;
      if (std::strcmp(engine.name, "baseline") == 0) {
        baseline.graph = std::move(*graph);
        baseline.nonzero_pairs = links.NumNonZeroPairs();
        baseline.total_links = links.TotalLinks();
        baseline.nbr_seconds = nbr_seconds;
        baseline.link_seconds = link_seconds;
      } else if (!ran_lsh) {
        // Exact configurations must reproduce the baseline graph (and
        // with it the link matrix aggregates) bit-identically.
        if (graph->nbrlist != baseline.graph.nbrlist) {
          std::fprintf(stderr, "FAIL: %s n=%zu exact graph differs\n",
                       engine.name, n);
          return 1;
        }
        if (links.NumNonZeroPairs() != baseline.nonzero_pairs ||
            links.TotalLinks() != baseline.total_links) {
          std::fprintf(stderr, "FAIL: %s n=%zu link aggregates differ\n",
                       engine.name, n);
          return 1;
        }
      } else {
        // LSH: exact subgraph (precision 1), recorded recall.
        const uint64_t exact_edges = EdgeCount(baseline.graph);
        const uint64_t lsh_edges = EdgeCount(*graph);
        const uint64_t shared = SharedEdges(baseline.graph, *graph);
        if (shared != lsh_edges) {
          std::fprintf(stderr,
                       "FAIL: %s n=%zu emitted %llu edges outside the "
                       "exact graph\n",
                       engine.name, n,
                       static_cast<unsigned long long>(lsh_edges - shared));
          return 1;
        }
        recall_ppm = exact_edges == 0
                         ? 1000000
                         : shared * 1000000 / exact_edges;
      }

      const double graph_seconds = nbr_seconds + link_seconds;
      if (std::strcmp(engine.name, "auto") == 0) {
        auto_graph_seconds = graph_seconds;
      }
      std::printf("%-8zu %-10s %11.3fs %11.3fs %11.3fs %10llu%s\n", n,
                  engine.name, nbr_seconds, link_seconds, graph_seconds,
                  static_cast<unsigned long long>(
                      ran_lsh ? EdgeCount(*graph) : EdgeCount(baseline.graph)),
                  ran_lsh ? (std::string("  recall=") +
                             std::to_string(recall_ppm) + "ppm")
                                .c_str()
                          : "");
      std::fflush(stdout);

      char label[64];
      std::snprintf(label, sizeof(label), "n=%zu θ=%.2f %s", n, theta,
                    engine.name);
      perf.BeginEntry(label);
      perf.Param("n", std::to_string(n));
      char theta_str[16];
      std::snprintf(theta_str, sizeof(theta_str), "%.2f", theta);
      perf.Param("theta", theta_str);
      perf.Param("engine", engine.name);
      perf.Timer("stage.neighbors", nbr_seconds);
      perf.Timer("stage.links", link_seconds);
      perf.Timer("stage.graph", graph_seconds);
      perf.Counter("graph.edges", EdgeCount(ran_lsh ? *graph
                                                    : baseline.graph));
      perf.Counter("neighbors.lsh_recall_ppm", recall_ppm);
      perf.AddRunMetrics(m);
    }
    const double base_graph = baseline.nbr_seconds + baseline.link_seconds;
    std::printf("%-8s auto speedup over baseline: %.2fx\n", "",
                auto_graph_seconds > 0 ? base_graph / auto_graph_seconds : 0);
  }

  perf.Write();
  std::printf(
      "\nacceptance: at the largest n the auto row's graph time should be "
      "≥5x below baseline; lsh recall must stay ≥ 999000 ppm at θ=0.73.\n");
  return 0;
}
