// bench_serve — loopback QPS of the label server vs a direct single-thread
// Assign loop, on the Figure-5 synthetic database.
//
// The build half samples and clusters the store exactly as `rock build`
// does (sample_size 5000 at scale 1, θ = 0.73, k = 10 — the Fig. 5 model),
// then every store row is pushed through both engines:
//
//   direct — one thread calling TransactionLabeler::Assign in a loop; the
//            serve path can never beat physics, so this is the oracle the
//            server's overhead is measured against.
//   serve  — LabelServer loopback: Submit every row, drain the futures
//            (worker pool + coalesced batches + promise round-trips).
//
// Both engines must produce bit-identical assignments (checked every run);
// the serve_test suite carries the fine-grained differential.
//
// Usage: bench_serve [scale] [--min-qps=N] [--reps=K] [--threads=T]
//   scale      — multiplies the generated database size (default 0.1)
//   --min-qps  — fail (exit 1) if the serve engine's best rep sustains
//                fewer queries/second; 0 = report only (default)
//   --reps     — best-of-K timing per engine (default 3)
//   --threads  — serve worker threads (default 0 = all cores)
//
// Writes the BENCH_rock.json perf report ($ROCK_BENCH_JSON); CI's fourth
// perf-smoke gate compares the direct/serve stage.label_query ratio
// against bench/baselines/BENCH_serve_smoke.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/labeling.h"
#include "core/pipeline.h"
#include "data/disk_store.h"
#include "serve/model_handle.h"
#include "serve/server.h"
#include "synth/basket_generator.h"

namespace {

struct EngineRun {
  double seconds = 0.0;  ///< best rep
  double qps = 0.0;
  std::vector<rock::ClusterIndex> assignments;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rock;
  bench::Banner("serve loopback QPS — label server vs direct Assign");

  double scale = 0.1;
  double min_qps = 0.0;
  int reps = 3;
  size_t threads = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--min-qps=", 10) == 0) {
      min_qps = std::atof(argv[a] + 10);
    } else if (std::strncmp(argv[a], "--reps=", 7) == 0) {
      reps = std::atoi(argv[a] + 7);
    } else if (std::strncmp(argv[a], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::atoll(argv[a] + 10));
    } else {
      scale = std::atof(argv[a]);
    }
  }
  if (reps < 1) reps = 1;

  BasketGeneratorOptions gen;
  for (auto& s : gen.cluster_sizes) {
    s = static_cast<size_t>(static_cast<double>(s) * scale);
  }
  gen.num_outliers =
      static_cast<size_t>(static_cast<double>(gen.num_outliers) * scale);
  auto ds = GenerateBasketData(gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }

  const std::string store_path = "bench_serve_store.bin";
  if (Status s = WriteDatasetToStore(*ds, store_path); !s.ok()) {
    std::fprintf(stderr, "store write failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The Fig. 5 model: sample 5000, θ = 0.73, k = 10 (clamped at tiny
  // smoke scales where the database is smaller than the sample).
  ModelBuildOptions build;
  build.pipeline.rock.theta = 0.73;
  build.pipeline.rock.num_clusters = 10;
  build.pipeline.rock.outlier_stop_multiple = 3.0;
  build.pipeline.rock.min_cluster_support = 5;
  build.pipeline.sample_size = 5000;
  auto built = BuildModel(store_path, build);
  if (!built.ok()) {
    std::fprintf(stderr, "BuildModel failed: %s\n",
                 built.status().ToString().c_str());
    std::remove(store_path.c_str());
    return 1;
  }
  const size_t sample_n = built->sample_rows.size();
  std::printf("database: %zu transactions; model: sample=%zu clusters=%zu "
              "(build %.2fs)\n",
              ds->size(), sample_n, built->bundle.labeling_sets.size(),
              built->cluster_seconds + built->build_seconds);
  std::remove(store_path.c_str());

  auto handle = ModelHandle::FromBundle(std::move(built->bundle));
  if (!handle.ok()) {
    std::fprintf(stderr, "FromBundle failed: %s\n",
                 handle.status().ToString().c_str());
    return 1;
  }

  const size_t rows = ds->size();
  EngineRun direct;
  EngineRun serve;

  // Engine "direct": the single-thread oracle.
  {
    TransactionLabeler::Scratch scratch;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<ClusterIndex> assignments(rows, kUnassigned);
      Timer timer;
      for (size_t i = 0; i < rows; ++i) {
        assignments[i] =
            handle->labeler().Assign(ds->transaction(i), &scratch, nullptr);
      }
      const double secs = timer.ElapsedSeconds();
      if (rep == 0 || secs < direct.seconds) {
        direct.seconds = secs;
        direct.assignments = std::move(assignments);
      }
    }
    direct.qps = static_cast<double>(rows) / direct.seconds;
  }

  // Engine "serve": the full loopback — admission, batching, futures.
  for (int rep = 0; rep < reps; ++rep) {
    ServeOptions options;
    options.num_threads = threads;
    options.max_batch = 64;
    options.max_queue = rows + 1;  // admit the whole store
    LabelServer server(&*handle, options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<std::future<ClusterIndex>> futures;
    futures.reserve(rows);
    Timer timer;
    for (size_t i = 0; i < rows; ++i) {
      auto f = server.Submit(ds->transaction(i));
      if (!f.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     f.status().ToString().c_str());
        return 1;
      }
      futures.push_back(std::move(*f));
    }
    std::vector<ClusterIndex> assignments(rows, kUnassigned);
    for (size_t i = 0; i < rows; ++i) assignments[i] = futures[i].get();
    const double secs = timer.ElapsedSeconds();
    server.Stop();
    if (rep == 0 || secs < serve.seconds) {
      serve.seconds = secs;
      serve.assignments = std::move(assignments);
    }
  }
  serve.qps = static_cast<double>(rows) / serve.seconds;

  if (serve.assignments != direct.assignments) {
    std::fprintf(stderr,
                 "FATAL: served assignments differ from the direct loop\n");
    return 1;
  }

  bench::Section("loopback results (best of reps)");
  std::printf("%-8s %12s %14s\n", "engine", "seconds", "qps");
  std::printf("%-8s %12.4f %14.0f\n", "direct", direct.seconds, direct.qps);
  std::printf("%-8s %12.4f %14.0f\n", "serve", serve.seconds, serve.qps);
  std::printf("serve/direct overhead: %.2fx\n",
              direct.seconds > 0.0 ? serve.seconds / direct.seconds : 0.0);

  bench::PerfJsonWriter perf("bench_serve");
  char theta_str[16];
  std::snprintf(theta_str, sizeof(theta_str), "%.2f", 0.73);
  for (const auto* run : {&direct, &serve}) {
    const bool is_serve = run == &serve;
    perf.BeginEntry(std::string("n=") + std::to_string(sample_n) +
                    " θ=0.73 " + (is_serve ? "serve" : "direct"));
    perf.Param("n", std::to_string(sample_n));
    perf.Param("theta", theta_str);
    perf.Param("engine", is_serve ? "serve" : "direct");
    perf.Timer("stage.label_query", run->seconds);
    perf.Counter("serve.qps", static_cast<uint64_t>(run->qps));
  }
  perf.Write();

  if (min_qps > 0.0 && serve.qps < min_qps) {
    std::fprintf(stderr, "FAIL: serve sustained %.0f qps < required %.0f\n",
                 serve.qps, min_qps);
    return 1;
  }
  return 0;
}
