#include "serve/stream.h"

#include <utility>

#include "diag/metrics.h"
#include "util/failpoint.h"

namespace rock {

Result<std::unique_ptr<StreamingSession>> StreamingSession::Open(
    std::string store_path, std::string model_path, StreamOptions options) {
  Result<ModelHandle> handle = ModelHandle::Load(model_path);
  if (!handle.ok()) return handle.status();

  Result<TransactionStoreReader> reader =
      TransactionStoreReader::Open(store_path);
  if (!reader.ok()) return reader.status();

  // Drift and stream metrics share one registry, written only under mu_.
  options.drift.metrics = options.metrics;

  std::unique_ptr<StreamingSession> session(new StreamingSession(
      std::move(store_path), std::move(model_path), std::move(options)));
  session->generation_ = reader->generation();
  session->store_rows_ = reader->count();
  auto shared = std::make_shared<const ModelHandle>(std::move(*handle));
  session->drift_ = DriftDetector(shared->profile(), session->options_.drift);
  session->model_.Swap(std::move(shared));
  diag::SetGauge(session->options_.metrics, "stream.generation",
                 static_cast<double>(session->generation_));
  diag::SetGauge(session->options_.metrics, "stream.store_rows",
                 static_cast<double>(session->store_rows_));
  return session;
}

StreamingSession::~StreamingSession() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t = std::move(rebuild_thread_);
  }
  if (t.joinable()) t.join();
}

Result<StreamAppendResult> StreamingSession::Append(
    const std::vector<Transaction>& rows, const std::vector<LabelId>* labels) {
  StreamAppendResult out;
  {
    std::lock_guard<std::mutex> lock(mu_);

    StoreAppendResult committed;
    const Status append_status = RetryTransient(
        options_.build.pipeline.retry,
        [&] {
          Result<StoreAppendResult> r = AppendToStore(store_path_, rows, labels);
          if (!r.ok()) return r.status();
          committed = *r;
          return Status::OK();
        },
        &retry_stats_, options_.build.pipeline.retry_sleeper);
    if (!append_status.ok()) return append_status;

    generation_ = committed.generation;
    store_rows_ = committed.new_count;
    out.store = committed;

    // One snapshot labels the whole batch: a swap landing mid-append can
    // never mix two models' answers within one batch.
    const std::shared_ptr<const ModelHandle> snapshot = model_.Acquire();
    out.outcomes.reserve(rows.size());
    uint64_t outliers = 0;
    for (const Transaction& tx : rows) {
      const TransactionLabeler::AssignOutcome oc =
          snapshot->labeler().AssignDetailed(tx, &scratch_, nullptr);
      if (oc.cluster == kUnassigned) ++outliers;
      drift_.Observe(oc);
      out.outcomes.push_back(oc);
    }
    out.drift = drift_.report();
    out.drift_tripped = out.drift.tripped;

    diag::AddCounter(options_.metrics, "stream.appends", 1);
    diag::AddCounter(options_.metrics, "stream.rows_appended", rows.size());
    diag::AddCounter(options_.metrics, "stream.labeled", rows.size());
    diag::AddCounter(options_.metrics, "stream.outliers", outliers);
    diag::SetGauge(options_.metrics, "stream.generation",
                   static_cast<double>(generation_));
    diag::SetGauge(options_.metrics, "stream.store_rows",
                   static_cast<double>(store_rows_));
  }

  // Outside mu_: the trigger path re-locks (and an inline rebuild must not
  // run under the append lock).
  if (out.drift_tripped && options_.auto_rebuild) {
    out.rebuild_started = MaybeStartRebuild();
  }
  return out;
}

TransactionLabeler::AssignOutcome StreamingSession::Label(
    const Transaction& tx) {
  const std::shared_ptr<const ModelHandle> snapshot = model_.Acquire();
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot->labeler().AssignDetailed(tx, &scratch_, nullptr);
}

Status StreamingSession::RebuildNow() {
  ModelBuildOptions build = options_.build;
  build.model_path = model_path_;
  Result<ModelBuildResult> built = BuildModel(store_path_, build);
  if (!built.ok()) return built.status();

  // The bundle is durable on disk (atomic tmp+rename inside BuildModel).
  // A crash here is the "published but not yet serving" window: reopening
  // the session — or MaybeReload — finds the new fingerprint and installs
  // it, so resume converges on the new model without relabeling anything.
  switch (fail::Consult("model.swap")) {
    case fail::Action::kNone:
      break;
    case fail::Action::kCrash:
      return fail::InjectedCrash("model.swap");
    case fail::Action::kError:
    case fail::Action::kShortRead:
    case fail::Action::kTornWrite:
      return fail::InjectedError("model.swap");
  }

  Result<ModelHandle> handle = ModelHandle::FromBundle(std::move(built->bundle));
  if (!handle.ok()) return handle.status();
  auto shared = std::make_shared<const ModelHandle>(std::move(*handle));

  std::lock_guard<std::mutex> lock(mu_);
  drift_.Reset(shared->profile());
  model_.Swap(std::move(shared));
  ++rebuilds_;
  diag::AddCounter(options_.metrics, "stream.rebuilds", 1);
  diag::SetGauge(options_.metrics, "stream.swaps",
                 static_cast<double>(model_.swaps()));
  return Status::OK();
}

Status StreamingSession::Rebuild() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rebuild_inflight_) {
      return Status::FailedPrecondition("a rebuild is already in flight");
    }
    rebuild_inflight_ = true;
  }
  Status s = RebuildNow();
  std::lock_guard<std::mutex> lock(mu_);
  rebuild_inflight_ = false;
  rebuild_status_ = s;
  return s;
}

bool StreamingSession::MaybeStartRebuild() {
  std::thread stale;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rebuild_inflight_) return false;
    rebuild_inflight_ = true;
    // A previous background rebuild has finished (inflight is false) but
    // its thread handle may still need joining before we reuse the slot.
    stale = std::move(rebuild_thread_);
  }
  if (stale.joinable()) stale.join();

  if (!options_.background_rebuild) {
    Status s = RebuildNow();
    std::lock_guard<std::mutex> lock(mu_);
    rebuild_inflight_ = false;
    rebuild_status_ = s;
    return true;
  }

  std::thread worker([this] {
    Status s = RebuildNow();
    std::lock_guard<std::mutex> lock(mu_);
    rebuild_inflight_ = false;
    rebuild_status_ = s;
  });
  std::lock_guard<std::mutex> lock(mu_);
  rebuild_thread_ = std::move(worker);
  return true;
}

Status StreamingSession::WaitForRebuild() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t = std::move(rebuild_thread_);
  }
  if (t.joinable()) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  return rebuild_status_;
}

bool StreamingSession::rebuild_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rebuild_inflight_;
}

Result<bool> StreamingSession::MaybeReload() {
  Result<ModelHandle> fresh = ModelHandle::Load(model_path_);
  if (!fresh.ok()) return fresh.status();
  const std::shared_ptr<const ModelHandle> current = model_.Acquire();
  if (current != nullptr && fresh->fingerprint() == current->fingerprint()) {
    return false;
  }
  auto shared = std::make_shared<const ModelHandle>(std::move(*fresh));
  std::lock_guard<std::mutex> lock(mu_);
  drift_.Reset(shared->profile());
  model_.Swap(std::move(shared));
  diag::AddCounter(options_.metrics, "stream.reloads", 1);
  diag::SetGauge(options_.metrics, "stream.swaps",
                 static_cast<double>(model_.swaps()));
  return true;
}

DriftReport StreamingSession::drift_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_.report();
}

uint64_t StreamingSession::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

uint64_t StreamingSession::store_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_rows_;
}

uint64_t StreamingSession::rebuilds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rebuilds_;
}

RetryStats StreamingSession::retry_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retry_stats_;
}

}  // namespace rock
