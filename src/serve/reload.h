// librock — serve/reload.h
//
// Hot model reload for the long-lived label server (`rock serve
// --reload-poll-ms`). A rebuilt bundle is published to disk atomically
// (tmp + rename inside SaveModelBundle); this poller notices the new file
// without restarting the server:
//
//   poll tick → ModelHandle::Load(model_path)   (CRC-verified, off to the
//             → fingerprint == current? done     side — readers keep
//             → SwappableModel::Swap(fresh)      answering the old model)
//
// The swap piggybacks on the SwappableModel snapshot discipline
// (serve/stream.h): workers acquire one snapshot per batch, so a query in
// flight during a swap is answered entirely by the old model or the new
// one, never a mix. A failed load — most likely a read racing a publish,
// or no bundle yet — is counted and retried at the next tick, never
// fatal: the server keeps serving the model it has.
//
// PollOnce() is public so tests (and callers without a background thread)
// can drive the reload check deterministically; Start() runs it on a
// condvar-parked thread every poll_ms. Metrics (serve.reload.polls /
// .swaps / .failures, docs/OBSERVABILITY.md) live in internal atomics and
// are published by ExportMetrics after Stop — the diag registry is
// single-writer.

#ifndef ROCK_SERVE_RELOAD_H_
#define ROCK_SERVE_RELOAD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "serve/server.h"
#include "serve/stream.h"

namespace rock {

namespace diag {
class MetricsRegistry;
}  // namespace diag

/// Controls for a ModelReloadPoller.
struct ReloadOptions {
  /// Bundle file to watch (the path the build/rebuild publishes to).
  std::string model_path;
  /// Background poll period. 0 = no thread; the owner calls PollOnce().
  uint64_t poll_ms = 0;
};

/// Watches a model bundle on disk and swaps it into a SwappableModel when
/// its fingerprint changes. Thread-safe; at most one poll runs at a time.
class ModelReloadPoller {
 public:
  /// `model` is borrowed and must outlive the poller.
  ModelReloadPoller(SwappableModel* model, ReloadOptions options);

  /// Stops and joins the poll thread if still running.
  ~ModelReloadPoller();

  ModelReloadPoller(const ModelReloadPoller&) = delete;
  ModelReloadPoller& operator=(const ModelReloadPoller&) = delete;

  /// Starts the background thread (no-op when poll_ms == 0).
  void Start();

  /// Stops and joins the background thread. Idempotent.
  void Stop();

  /// One reload check: loads the bundle, compares fingerprints, swaps on
  /// change. Returns true when a new model was published to the
  /// SwappableModel, false when the on-disk model is the one already
  /// being served. A load failure is counted under failures() and
  /// returned — the background thread treats it as retry-next-tick.
  Result<bool> PollOnce();

  /// Poll ticks executed (manual and background).
  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  /// Polls that swapped a new model in.
  uint64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  /// Polls whose bundle load failed (counted, never fatal).
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

  /// Publishes serve.reload.* into `registry`. Call after Stop — the
  /// registry is single-writer.
  void ExportMetrics(diag::MetricsRegistry* registry) const;

 private:
  void PollLoop();

  SwappableModel* const model_;
  const ReloadOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;  // wakes the poll thread early on Stop
  bool stopping_ = false;       // guarded by mu_
  bool started_ = false;        // guarded by mu_
  std::thread thread_;

  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> failures_{0};
};

/// ServeLines against a hot-swappable model: the same stdin/stdout line
/// protocol as the fixed-model overload (serve/server.h), but queries are
/// parsed and answered against whatever model the SwappableModel currently
/// holds — a concurrent ModelReloadPoller (or StreamingSession rebuild)
/// takes effect mid-stream without dropping or reordering answers.
Status ServeLines(const SwappableModel& model, const ServeOptions& options,
                  std::istream& in, std::ostream& out);

}  // namespace rock

#endif  // ROCK_SERVE_RELOAD_H_
