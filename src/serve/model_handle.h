// librock — serve/model_handle.h
//
// The serve-side view of a clustered model. A ModelHandle loads and
// validates a model bundle (core/model_bundle.h) exactly once, reassembles
// the §4.6 ScanCount labeler from its parts, and turns query text into
// transactions against the bundle's dictionary. Everything in the handle is
// immutable after Load, so any number of server workers can share one
// handle without locks.
//
// Query text is one whitespace-separated item list. With a dictionary in
// the bundle, tokens are item names; names the model never saw are mapped
// (per query) to distinct ids beyond the dictionary — they can never match
// a labeling-set item, but they still count toward |T|, exactly as a
// never-sampled item id does in the batch pipeline. Without a dictionary
// (bundles built straight from a store, which persists ids only), tokens
// are the numeric item ids themselves.

#ifndef ROCK_SERVE_MODEL_HANDLE_H_
#define ROCK_SERVE_MODEL_HANDLE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/checkpoint.h"
#include "core/labeling.h"
#include "core/model_bundle.h"
#include "data/transaction.h"

namespace rock {

/// An immutable, validated, query-ready model.
class ModelHandle {
 public:
  /// Loads the bundle at `path` (CRC-verified; see LoadModelBundle) and
  /// reassembles the labeler. A bundle that parses but carries implausible
  /// parameters is refused — a damaged model is never served.
  static Result<ModelHandle> Load(const std::string& path);

  /// Builds a handle from an in-memory bundle (tests; `rock build` piping
  /// straight into a server).
  static Result<ModelHandle> FromBundle(ModelBundle bundle);

  /// The reassembled §4.6 labeler. Assign() on it is bit-identical to the
  /// batch pipeline's labeling of the same transaction.
  const TransactionLabeler& labeler() const { return labeler_; }

  /// Identity of the build run this model came from.
  const CheckpointFingerprint& fingerprint() const { return fingerprint_; }

  /// Build-time assignment profile carried by version-2 bundles (empty for
  /// version-1 bundles). The drift detector's baseline.
  const ModelProfile& profile() const { return profile_; }

  size_t num_clusters() const { return labeler_.num_clusters(); }

  /// True when the bundle carries item names (name-mode queries).
  bool has_dictionary() const { return !name_to_id_.empty(); }

  /// Parses one query line into a transaction. Tokens are separated by
  /// spaces/tabs; an empty token list is InvalidArgument (an empty
  /// transaction has no neighbors and callers should not submit one by
  /// accident). Id-mode tokens that are not valid u32 ids are
  /// InvalidArgument.
  Result<Transaction> ParseQuery(std::string_view line) const;

 private:
  ModelHandle(TransactionLabeler labeler, CheckpointFingerprint fingerprint)
      : labeler_(std::move(labeler)), fingerprint_(fingerprint) {}

  TransactionLabeler labeler_;
  CheckpointFingerprint fingerprint_;
  ModelProfile profile_;
  std::unordered_map<std::string, ItemId> name_to_id_;
  /// First id past the dictionary — per-query unknown names map to
  /// unknown_base_ + k so they stay distinct from every known item.
  ItemId unknown_base_ = 0;
};

}  // namespace rock

#endif  // ROCK_SERVE_MODEL_HANDLE_H_
