// librock — serve/stream.h
//
// Streaming append-mode clustering (docs/DESIGN.md §11). A model is built
// once from a sample (core/pipeline.h BuildModel); afterwards new
// transactions arrive incrementally:
//
//   Append(rows) → AppendToStore (crash-safe copy-on-append, data layer)
//               → label each appended row with the live model's §4.6
//                 ScanCount AssignDetailed — the exact Assign path the
//                 batch pipeline runs, so incremental labels are
//                 byte-identical to a full relabel of the same model
//               → feed every outcome to the drift detector (eval/drift.h)
//               → when drift trips and auto_rebuild is on, kick off a
//                 re-cluster of the grown store in the background
//
// The live model is a SwappableModel: a mutex-guarded shared_ptr to an
// immutable ModelHandle. Readers Acquire() a snapshot and answer entirely
// from it — a query in flight during a swap is answered by the old model
// or the new one, never a mix. A rebuild publishes its bundle to disk
// first (atomic tmp+rename inside SaveModelBundle), then consults the
// "model.swap" failpoint, then swaps the in-process handle — a crash at
// the failpoint leaves the new model durable on disk, and reopening the
// session (or MaybeReload) picks it up; rows are never labeled by a model
// older than the one that crashed mid-swap plus the swap itself is
// idempotent, so resume cannot produce duplicated or mixed labels.
//
// Rebuilds ride the PR-4 checkpoint spine: with
// StreamOptions::build.pipeline.checkpoint_path set, a rebuild that
// crashes after clustering resumes without re-clustering and freezes a
// byte-identical bundle (core/pipeline.h BuildModel).
//
// Metrics (stream.*, docs/OBSERVABILITY.md): stream.appends,
// stream.rows_appended, stream.labeled, stream.outliers, stream.rebuilds,
// stream.reloads, stream.generation, stream.store_rows, stream.swaps —
// plus the detector's drift.* family. All registry writes happen under the
// session mutex (the registry itself is single-writer).

#ifndef ROCK_SERVE_STREAM_H_
#define ROCK_SERVE_STREAM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "data/disk_store.h"
#include "eval/drift.h"
#include "serve/model_handle.h"
#include "util/retry.h"

namespace rock {

/// A hot-swappable immutable model. Readers take a shared_ptr snapshot and
/// answer entirely from it; Swap() publishes a replacement for future
/// acquisitions without disturbing snapshots already taken. Thread-safe.
class SwappableModel {
 public:
  SwappableModel() = default;
  explicit SwappableModel(std::shared_ptr<const ModelHandle> model)
      : model_(std::move(model)) {}

  SwappableModel(const SwappableModel&) = delete;
  SwappableModel& operator=(const SwappableModel&) = delete;

  /// The current model. Never null once constructed with a model; the
  /// returned snapshot stays valid (and immutable) across any number of
  /// subsequent swaps.
  std::shared_ptr<const ModelHandle> Acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return model_;
  }

  /// Publishes `model` as the current one. Snapshots already acquired are
  /// unaffected.
  void Swap(std::shared_ptr<const ModelHandle> model) {
    std::lock_guard<std::mutex> lock(mu_);
    model_ = std::move(model);
    ++swaps_;
  }

  /// Number of Swap() calls so far.
  uint64_t swaps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return swaps_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ModelHandle> model_;
  uint64_t swaps_ = 0;  // guarded by mu_
};

/// Controls for a StreamingSession.
struct StreamOptions {
  /// Parameters for drift-triggered (and explicit) rebuilds: θ/k/sampling,
  /// checkpoint_path/resume for crash-safe rebuilds, retry policy. The
  /// model_path field is ignored — rebuilds always publish to the
  /// session's own model path. The retry policy also wraps the append
  /// itself.
  ModelBuildOptions build;
  /// Drift thresholds. The metrics field is overridden with
  /// StreamOptions::metrics so drift.* and stream.* land in one registry.
  DriftOptions drift;
  /// When drift trips, start a re-cluster automatically.
  bool auto_rebuild = false;
  /// Auto rebuilds run on a background thread (true) or inline in the
  /// Append call that tripped the detector (false — deterministic tests).
  bool background_rebuild = true;
  /// When non-null, stream.* / drift.* metrics are recorded here. Written
  /// only under the session mutex (the registry is single-writer).
  diag::MetricsRegistry* metrics = nullptr;
};

/// What one Append call did.
struct StreamAppendResult {
  /// The committed store state (base_count / new_count / generation).
  StoreAppendResult store;
  /// §4.6 assignment of each appended row, in input order — cluster,
  /// winning neighbor count and score, bit-identical to what a full
  /// relabel of the same model would produce for these rows.
  std::vector<TransactionLabeler::AssignOutcome> outcomes;
  /// Drift verdict + evidence right after observing this batch — captured
  /// before any triggered rebuild resets the detector.
  DriftReport drift;
  /// Convenience mirror of drift.tripped (sticky until a rebuild).
  bool drift_tripped = false;
  /// True when this Append kicked off an automatic rebuild.
  bool rebuild_started = false;
};

/// One long-lived append-mode clustering session over a store + model pair.
/// Append/Label/Rebuild/MaybeReload are thread-safe with respect to each
/// other and to the background rebuild; model snapshots taken through
/// swappable() are safe from any thread.
class StreamingSession {
 public:
  /// Opens a session: loads and validates the model bundle at `model_path`
  /// and the store header at `store_path`. The model's build-time profile
  /// (empty for version-1 bundles) seeds the drift baseline.
  static Result<std::unique_ptr<StreamingSession>> Open(
      std::string store_path, std::string model_path, StreamOptions options);

  /// Joins any background rebuild still running.
  ~StreamingSession();

  StreamingSession(const StreamingSession&) = delete;
  StreamingSession& operator=(const StreamingSession&) = delete;

  /// Appends `rows` (with optional ground-truth `labels`) to the store —
  /// crash-safe, see AppendToStore — then labels each appended row against
  /// one acquired model snapshot and feeds the drift detector. Transient
  /// append I/O errors are retried under the build retry policy. On any
  /// error the store is either untouched or fully committed (never torn);
  /// an error after the commit surfaces the committed state in the store
  /// field of the session (generation()/store_rows()).
  Result<StreamAppendResult> Append(const std::vector<Transaction>& rows,
                                    const std::vector<LabelId>* labels =
                                        nullptr);

  /// Labels one transaction against the current model without appending it
  /// (read-only query; does not feed the drift detector).
  TransactionLabeler::AssignOutcome Label(const Transaction& tx);

  /// The swappable model, for wiring into a LabelServer or taking
  /// snapshots directly.
  SwappableModel* swappable() { return &model_; }
  std::shared_ptr<const ModelHandle> Acquire() const {
    return model_.Acquire();
  }

  /// Re-clusters the grown store synchronously with the session's build
  /// options, publishes the bundle to the model path (atomic), consults
  /// the "model.swap" failpoint, swaps the in-process model and resets the
  /// drift baseline to the new profile. FailedPrecondition when a rebuild
  /// is already in flight.
  Status Rebuild();

  /// Joins the background rebuild if one is running (or just finished) and
  /// returns its status; OK when none was ever started.
  Status WaitForRebuild();

  /// True while a rebuild (background or synchronous) is running.
  bool rebuild_in_flight() const;

  /// Reloads the model from disk if its fingerprint changed (another
  /// process — or a crashed swap — published a new bundle). Returns true
  /// when a new model was swapped in.
  Result<bool> MaybeReload();

  /// Snapshot of the drift verdict + evidence.
  DriftReport drift_report() const;

  /// Store generation after the last committed append (header stamp).
  uint64_t generation() const;
  /// Store row count after the last committed append.
  uint64_t store_rows() const;
  /// Completed model rebuilds (swaps from Rebuild, not MaybeReload).
  uint64_t rebuilds() const;
  /// Transient-I/O retry accounting for appends.
  RetryStats retry_stats() const;

 private:
  StreamingSession(std::string store_path, std::string model_path,
                   StreamOptions options)
      : store_path_(std::move(store_path)),
        model_path_(std::move(model_path)),
        options_(std::move(options)) {}

  /// The rebuild body: BuildModel → "model.swap" consult → swap + drift
  /// reset. Takes mu_ only for the final publication.
  Status RebuildNow();
  /// Starts a rebuild if none is in flight; returns true when started.
  bool MaybeStartRebuild();

  const std::string store_path_;
  const std::string model_path_;
  StreamOptions options_;

  SwappableModel model_;

  mutable std::mutex mu_;
  DriftDetector drift_;                   // guarded by mu_
  TransactionLabeler::Scratch scratch_;   // guarded by mu_
  uint64_t generation_ = 0;               // guarded by mu_
  uint64_t store_rows_ = 0;               // guarded by mu_
  uint64_t rebuilds_ = 0;                 // guarded by mu_
  RetryStats retry_stats_;                // guarded by mu_
  bool rebuild_inflight_ = false;         // guarded by mu_
  Status rebuild_status_;                 // guarded by mu_
  std::thread rebuild_thread_;            // guarded by mu_ (handle only)
};

}  // namespace rock

#endif  // ROCK_SERVE_STREAM_H_
