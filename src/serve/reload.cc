#include "serve/reload.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "diag/metrics.h"
#include "serve/model_handle.h"

namespace rock {

ModelReloadPoller::ModelReloadPoller(SwappableModel* model,
                                     ReloadOptions options)
    : model_(model), options_(std::move(options)) {}

ModelReloadPoller::~ModelReloadPoller() { Stop(); }

void ModelReloadPoller::Start() {
  if (options_.poll_ms == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { PollLoop(); });
}

void ModelReloadPoller::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

Result<bool> ModelReloadPoller::PollOnce() {
  polls_.fetch_add(1, std::memory_order_relaxed);
  Result<ModelHandle> fresh = ModelHandle::Load(options_.model_path);
  if (!fresh.ok()) {
    // Most likely a publish in flight or no bundle yet — keep serving the
    // current model and try again next tick.
    failures_.fetch_add(1, std::memory_order_relaxed);
    return fresh.status();
  }
  const std::shared_ptr<const ModelHandle> current = model_->Acquire();
  if (current != nullptr && fresh->fingerprint() == current->fingerprint()) {
    return false;
  }
  model_->Swap(std::make_shared<const ModelHandle>(std::move(*fresh)));
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ModelReloadPoller::PollLoop() {
  const auto period = std::chrono::milliseconds(options_.poll_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) break;
    lock.unlock();
    (void)PollOnce();  // failures are counted, never fatal
    lock.lock();
  }
}

void ModelReloadPoller::ExportMetrics(diag::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->AddCounter("serve.reload.polls", polls());
  registry->AddCounter("serve.reload.swaps", swaps());
  registry->AddCounter("serve.reload.failures", failures());
}

Status ServeLines(const SwappableModel& model, const ServeOptions& options,
                  std::istream& in, std::ostream& out) {
  LabelServer server(&model, options);
  ROCK_RETURN_IF_ERROR(server.Start());

  // Identical order-preserving drain discipline to the fixed-model
  // overload (serve/server.cc); the one difference is that each line is
  // parsed against the model snapshot current at read time, matching the
  // model its batch will (at the latest) be answered by.
  struct Pending {
    std::future<ClusterIndex> future;
    bool is_error = false;
    std::string error;
  };
  std::deque<Pending> pending;
  const auto flush_front = [&] {
    Pending p = std::move(pending.front());
    pending.pop_front();
    if (p.is_error) {
      out << "ERR: " << p.error << '\n';
    } else {
      out << p.future.get() << '\n';
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();

    Result<Transaction> tx = model.Acquire()->ParseQuery(line);
    if (!tx.ok()) {
      pending.push_back(Pending{{}, true, tx.status().message()});
    } else {
      const Transaction query = std::move(*tx);
      while (true) {
        Result<std::future<ClusterIndex>> future = server.Submit(query);
        if (future.ok()) {
          pending.push_back(Pending{std::move(*future), false, {}});
          break;
        }
        if (pending.empty()) return future.status();
        flush_front();
      }
    }
    const size_t window = std::max<size_t>(1, options.max_queue);
    while (pending.size() > window) flush_front();
  }
  while (!pending.empty()) flush_front();
  server.Stop();
  return Status::OK();
}

}  // namespace rock
