#include "serve/model_handle.h"

#include <charconv>
#include <utility>

namespace rock {

Result<ModelHandle> ModelHandle::Load(const std::string& path) {
  Result<ModelBundle> bundle = LoadModelBundle(path);
  if (!bundle.ok()) return bundle.status();
  return FromBundle(std::move(*bundle));
}

Result<ModelHandle> ModelHandle::FromBundle(ModelBundle bundle) {
  Result<TransactionLabeler> labeler = TransactionLabeler::FromParts(
      bundle.theta, bundle.f_exponent, std::move(bundle.labeling_sets));
  if (!labeler.ok()) return labeler.status();

  ModelHandle handle(std::move(*labeler), bundle.fingerprint);
  handle.profile_ = std::move(bundle.profile);
  handle.name_to_id_.reserve(bundle.dictionary.size());
  for (size_t i = 0; i < bundle.dictionary.size(); ++i) {
    handle.name_to_id_.emplace(std::move(bundle.dictionary[i]),
                               static_cast<ItemId>(i));
  }
  handle.unknown_base_ = static_cast<ItemId>(bundle.dictionary.size());
  return handle;
}

Result<Transaction> ModelHandle::ParseQuery(std::string_view line) const {
  std::vector<ItemId> items;
  // Per-query ids for names outside the dictionary: the same unknown token
  // dedupes within a query, and every unknown id is >= unknown_base_, so it
  // can never intersect a labeling-set item.
  std::unordered_map<std::string_view, ItemId> unknowns;

  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') {
      ++end;
    }
    if (end == pos) break;
    const std::string_view token = line.substr(pos, end - pos);
    pos = end;

    if (has_dictionary()) {
      auto it = name_to_id_.find(std::string(token));
      if (it != name_to_id_.end()) {
        items.push_back(it->second);
      } else {
        const auto [slot, inserted] = unknowns.emplace(
            token, unknown_base_ + static_cast<ItemId>(unknowns.size()));
        items.push_back(slot->second);
        (void)inserted;
      }
    } else {
      uint32_t id = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), id);
      if (ec != std::errc() || ptr != token.data() + token.size()) {
        return Status::InvalidArgument(
            "query token '" + std::string(token) +
            "' is not an item id (this model has no dictionary)");
      }
      items.push_back(id);
    }
  }

  if (items.empty()) {
    return Status::InvalidArgument("empty query");
  }
  return Transaction(std::move(items));
}

}  // namespace rock
