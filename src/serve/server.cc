#include "serve/server.h"

#include <algorithm>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "diag/metrics.h"
#include "serve/stream.h"
#include "util/thread_pool.h"

namespace rock {

LabelServer::LabelServer(const ModelHandle* model,
                         const ServeOptions& options)
    : model_(model), options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.max_queue == 0) options_.max_queue = 1;
}

LabelServer::LabelServer(const SwappableModel* model,
                         const ServeOptions& options)
    : model_(nullptr), swappable_(model), options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.max_queue == 0) options_.max_queue = 1;
}

LabelServer::~LabelServer() { Stop(); }

Status LabelServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  const size_t threads = ResolveThreads(options_.num_threads);
  runner_ = std::thread([this, threads] {
    ParallelInvoke(threads, [this](size_t worker) { WorkerLoop(worker); });
  });
  return Status::OK();
}

Result<std::future<ClusterIndex>> LabelServer::Submit(Transaction tx) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("label server is shutting down");
  }
  if (queue_.size() >= options_.max_queue) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("label server queue is full");
  }
  queue_.push_back(Request{std::move(tx), {}});
  std::future<ClusterIndex> future = queue_.back().promise.get_future();
  const uint64_t depth = queue_.size();
  uint64_t prev = peak_depth_.load(std::memory_order_relaxed);
  while (depth > prev && !peak_depth_.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
  lock.unlock();
  cv_.notify_one();
  return future;
}

void LabelServer::WorkerLoop(size_t /*worker*/) {
  // Per-worker scratch keeps Assign allocation-free after warm-up
  // (core/labeling.h); the popped block lives outside the lock.
  TransactionLabeler::Scratch scratch;
  std::vector<Request> block;
  block.reserve(options_.max_batch);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      const size_t take = std::min(options_.max_batch, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        block.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_items_.fetch_add(block.size(), std::memory_order_relaxed);
    // Swap-aware mode: one snapshot answers the whole popped block, so a
    // model swap takes effect between blocks, never inside one.
    std::shared_ptr<const ModelHandle> snapshot;
    const ModelHandle* model = model_;
    if (swappable_ != nullptr) {
      snapshot = swappable_->Acquire();
      model = snapshot.get();
    }
    for (Request& request : block) {
      const ClusterIndex cluster =
          model->labeler().Assign(request.tx, &scratch, nullptr);
      if (cluster == kUnassigned) {
        outliers_.fetch_add(1, std::memory_order_relaxed);
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      request.promise.set_value(cluster);
    }
    block.clear();
  }
}

void LabelServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  const bool joined_now = runner_.joinable();
  if (joined_now) {
    runner_.join();
    seconds_ = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_time_)
                   .count();
  }
  // Submissions made but never started are dropped with their promises —
  // the futures surface std::future_error(broken_promise). A started
  // server drains everything before its workers exit, so no admitted
  // request is ever dropped.
  if (!started_) queue_.clear();

  if (options_.metrics != nullptr && !metrics_exported_) {
    metrics_exported_ = true;
    ExportMetrics(options_.metrics);
  }
}

LabelServer::Stats LabelServer::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.outliers = outliers_.load(std::memory_order_relaxed);
  s.peak_queue_depth = peak_depth_.load(std::memory_order_relaxed);
  s.seconds = seconds_;
  if (s.seconds > 0.0) {
    s.qps = static_cast<double>(s.requests) / s.seconds;
  }
  if (s.batches > 0) {
    s.batch_fill =
        static_cast<double>(batch_items_.load(std::memory_order_relaxed)) /
        static_cast<double>(s.batches);
  }
  return s;
}

void LabelServer::ExportMetrics(diag::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const Stats s = stats();
  registry->AddCounter("serve.requests", s.requests);
  registry->AddCounter("serve.batches", s.batches);
  registry->AddCounter("serve.rejected", s.rejected);
  registry->AddCounter("serve.outliers", s.outliers);
  registry->SetGauge("serve.qps", s.qps);
  registry->SetGauge("serve.batch_fill", s.batch_fill);
  registry->SetGauge("serve.queue_depth",
                     static_cast<double>(s.peak_queue_depth));
  registry->RecordSeconds("serve.uptime", s.seconds);
}

Status ServeLines(const ModelHandle& model, const ServeOptions& options,
                  std::istream& in, std::ostream& out) {
  LabelServer server(&model, options);
  ROCK_RETURN_IF_ERROR(server.Start());

  // Answers must come back in submission order; futures preserve it. A
  // malformed line produces an immediate "ERR:" slot that flushes in
  // sequence with the real answers. Flushing the oldest pending answer
  // whenever the admission bound pushes back keeps memory bounded on
  // arbitrarily long input streams.
  struct Pending {
    std::future<ClusterIndex> future;
    bool is_error = false;
    std::string error;
  };
  std::deque<Pending> pending;
  const auto flush_front = [&] {
    Pending p = std::move(pending.front());
    pending.pop_front();
    if (p.is_error) {
      out << "ERR: " << p.error << '\n';
    } else {
      out << p.future.get() << '\n';
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    // Skip blanks and '#' comments without emitting an answer line.
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();

    Result<Transaction> tx = model.ParseQuery(line);
    if (!tx.ok()) {
      pending.push_back(Pending{{}, true, tx.status().message()});
    } else {
      const Transaction query = std::move(*tx);
      while (true) {
        Result<std::future<ClusterIndex>> future = server.Submit(query);
        if (future.ok()) {
          pending.push_back(Pending{std::move(*future), false, {}});
          break;
        }
        // Queue full: drain the oldest answer and retry. With nothing
        // left to drain the rejection is fatal (server shutting down).
        if (pending.empty()) return future.status();
        flush_front();
      }
    }
    const size_t window = std::max<size_t>(1, options.max_queue);
    while (pending.size() > window) flush_front();
  }
  while (!pending.empty()) flush_front();
  server.Stop();
  return Status::OK();
}

}  // namespace rock
