// librock — serve/server.h
//
// The long-lived label server (ROADMAP item 1: clustering-as-a-service).
// One process loads a model once (serve/model_handle.h) and answers
// "which cluster is this transaction?" at high QPS:
//
//   client → Submit(tx) → bounded request queue → worker batches
//                                                   (≤ max_batch pops)
//                                                 → ScanCount Assign
//                                                 → future resolves
//
// Workers coalesce whatever is queued into blocks of up to `max_batch`
// requests per wake-up — one lock round-trip amortized over the block,
// the same batch-sized-block idea as similarity/batch.h — and run on a
// fork-join pool (util/thread_pool.h) held open for the server's
// lifetime. Admission is bounded: a Submit against a full queue is
// rejected immediately (counted as serve.rejected) instead of growing
// without limit.
//
// Every answer is the §4.6 labeler's Assign of that transaction — the
// exact assignment `rock pipeline` writes for the same row, enforced by
// the serve ≡ pipeline differential test.
//
// Metrics: workers keep internal atomics (the diag registry is
// single-writer by design) and ExportMetrics() publishes serve.qps,
// serve.batch_fill, serve.queue_depth (peak), serve.rejected,
// serve.requests, serve.batches and serve.outliers after Stop().

#ifndef ROCK_SERVE_SERVER_H_
#define ROCK_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <iosfwd>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "core/cluster.h"
#include "serve/model_handle.h"

namespace rock {

class SwappableModel;  // serve/stream.h

namespace diag {
class MetricsRegistry;
}  // namespace diag

/// Controls for a LabelServer.
struct ServeOptions {
  /// Worker threads: 0 = hardware concurrency.
  size_t num_threads = 1;
  /// Most requests a worker pops per wake-up (the coalescing block size).
  size_t max_batch = 64;
  /// Admission bound: Submit against a queue this deep is rejected.
  size_t max_queue = 4096;
  /// When non-null, Stop() publishes the serve.* metrics here once the
  /// workers have joined (the registry is single-writer, so the export
  /// happens strictly after the last worker write).
  diag::MetricsRegistry* metrics = nullptr;
};

/// A long-lived server answering cluster-assignment queries from one
/// loaded model. Thread-safe: any number of client threads may Submit
/// concurrently with the workers.
class LabelServer {
 public:
  /// `model` is borrowed and must outlive the server.
  LabelServer(const ModelHandle* model, const ServeOptions& options);

  /// Swap-aware variant for the streaming layer (serve/stream.h): each
  /// worker acquires one model snapshot per popped batch and answers the
  /// whole batch from it. A Swap() landing mid-batch takes effect at the
  /// next pop — every individual query is answered entirely by the old
  /// model or the new one, never a mix, and snapshots keep the old model
  /// alive until its last in-flight batch finishes.
  LabelServer(const SwappableModel* model, const ServeOptions& options);

  /// Stops and joins if still running.
  ~LabelServer();

  LabelServer(const LabelServer&) = delete;
  LabelServer& operator=(const LabelServer&) = delete;

  /// Starts the worker pool. Submissions made before Start queue up (to
  /// the admission bound) and are answered once workers run.
  Status Start();

  /// Enqueues one query. The future resolves to the assigned cluster
  /// (kUnassigned = outlier). Rejected with FailedPrecondition — and
  /// counted under serve.rejected — when the queue is at max_queue or the
  /// server is shutting down.
  Result<std::future<ClusterIndex>> Submit(Transaction tx);

  /// Drains the queue, resolves every pending future, and joins the
  /// workers. Idempotent. After Stop the server no longer admits work.
  void Stop();

  /// Aggregate counters, valid once the workers are quiescent (after
  /// Stop, or between Submits in single-threaded tests).
  struct Stats {
    uint64_t requests = 0;   ///< queries answered
    uint64_t batches = 0;    ///< worker wake-ups that popped work
    uint64_t rejected = 0;   ///< submissions refused at admission
    uint64_t outliers = 0;   ///< answers that were kUnassigned
    uint64_t peak_queue_depth = 0;
    double seconds = 0.0;    ///< Start → Stop wall time
    /// requests / seconds (0 before Stop).
    double qps = 0.0;
    /// Mean requests per batch — how full the coalescing blocks ran.
    double batch_fill = 0.0;
  };
  Stats stats() const;

  /// Publishes the serve.* metrics into `registry` (docs/OBSERVABILITY.md).
  /// Call after Stop — the registry is single-writer.
  void ExportMetrics(diag::MetricsRegistry* registry) const;

 private:
  struct Request {
    Transaction tx;
    std::promise<ClusterIndex> promise;
  };

  void WorkerLoop(size_t worker);

  const ModelHandle* model_;              // fixed-model mode (else null)
  const SwappableModel* swappable_ = nullptr;  // swap-aware mode (else null)
  ServeOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;  // guarded by mu_
  bool started_ = false;
  std::thread runner_;     // forks the worker pool and joins it

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_items_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> outliers_{0};
  std::atomic<uint64_t> peak_depth_{0};
  double seconds_ = 0.0;   // written by Stop before stats() is legal
  bool metrics_exported_ = false;
  std::chrono::steady_clock::time_point start_time_;
};

/// Runs the stdin/stdout line protocol against a model: one
/// whitespace-separated item query per line, one decimal cluster index per
/// answer line (-1 = outlier, "ERR: …" for malformed queries), answers in
/// submission order. Blank lines and lines starting with '#' are skipped.
/// Used by `rock serve`; tests drive it with stringstreams.
Status ServeLines(const ModelHandle& model, const ServeOptions& options,
                  std::istream& in, std::ostream& out);

}  // namespace rock

#endif  // ROCK_SERVE_SERVER_H_
