// librock — util/checksum.h
//
// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) for on-disk
// integrity: the transaction store, the labeler file and the pipeline
// checkpoint all carry a payload CRC so that torn writes, truncation and
// bit flips are detected as Corruption instead of being read back as data.
// Streaming via Crc32Accumulator keeps the writers single-pass.

#ifndef ROCK_UTIL_CHECKSUM_H_
#define ROCK_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace rock {

/// CRC-32 of `n` bytes, continuing from a previous value (0 for a fresh
/// checksum). Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)) for any split.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

/// Streaming CRC-32: feed bytes as they are written/read, read value() at
/// the end. Reset() starts a fresh checksum (e.g. after a Rewind).
class Crc32Accumulator {
 public:
  /// Folds `n` more bytes into the checksum.
  void Update(const void* data, size_t n) { crc_ = Crc32(data, n, crc_); }

  /// Checksum of everything fed so far.
  uint32_t value() const { return crc_; }

  /// Restarts from an empty stream.
  void Reset() { crc_ = 0; }

 private:
  uint32_t crc_ = 0;
};

}  // namespace rock

#endif  // ROCK_UTIL_CHECKSUM_H_
