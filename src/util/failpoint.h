// librock — util/failpoint.h
//
// Deterministic fault injection for the disk pipeline. Named failpoint
// *sites* are compiled into I/O code paths (e.g. "store.read",
// "store.append", "labeler.save", "pipeline.checkpoint"); a *schedule*
// configured from the ROCK_FAILPOINTS environment variable or
// RockOptions::failpoints decides which hit of which site misbehaves, and
// how:
//
//   schedule   := entry (';' entry)*
//   entry      := site '=' trigger ':' action
//   trigger    := 'fire_on_hit_' N        — fire on the Nth hit (1-based),
//                                           exactly once
//               | 'fire_every_' N         — fire on every Nth hit
//   action     := 'error'                 — transient Status::IOError
//               | 'short_read'            — Status::Corruption, as a
//                                           truncated file would produce
//               | 'torn_write'            — write a prefix of the payload,
//                                           then fail with IOError
//               | 'crash'                 — non-retryable Status::Internal
//                                           simulating process death
//
//   e.g. ROCK_FAILPOINTS="store.read=fire_on_hit_100:error;
//                         pipeline.checkpoint=fire_on_hit_2:torn_write"
//
// Hit counting is per-site and global to the process, guarded by a mutex,
// so schedules are deterministic for serial scans and per-site-total
// deterministic for parallel ones. When the build compiles failpoints out
// (-DROCK_FAILPOINTS=OFF), Consult() is a constexpr no-op and every site
// check folds away; Configure() then rejects non-empty schedules so a user
// asking for faults in a release binary gets an error, not silence.

#ifndef ROCK_UTIL_FAILPOINT_H_
#define ROCK_UTIL_FAILPOINT_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rock::fail {

/// What an armed failpoint site does when its trigger fires.
enum class Action : uint8_t {
  kNone = 0,    ///< site not armed / trigger did not fire
  kError,       ///< inject a transient IOError (retry-eligible)
  kShortRead,   ///< inject Corruption, as a short read would surface
  kTornWrite,   ///< persist a torn prefix of the write, then IOError
  kCrash,       ///< inject a non-retryable Internal "process died" error
};

/// The transient error Consult()-ing code injects for kError / kTornWrite.
Status InjectedError(std::string_view site);

/// The fatal error injected for kCrash. Carries kCrashMarker so callers
/// (and tests) can tell a simulated crash from a real Internal error.
Status InjectedCrash(std::string_view site);

/// Message marker present in every InjectedCrash status.
inline constexpr std::string_view kCrashMarker = "injected crash";

/// True if `status` came from InjectedCrash (a simulated process death).
bool IsInjectedCrash(const Status& status);

#ifdef ROCK_FAILPOINTS_ENABLED

/// Replaces the process-wide schedule with `spec` (the grammar above).
/// An empty spec disarms everything. Hit counters reset.
Status Configure(std::string_view spec);

/// Disarms all sites and resets hit counters.
void Clear();

/// Counts one hit of `site` and returns the action to take (kNone almost
/// always). Unconfigured processes pay one relaxed atomic load.
Action Consult(std::string_view site);

/// Times `site` fired so far (for fault.* metrics and tests).
uint64_t FiredCount(std::string_view site);

/// Times `site` was hit so far.
uint64_t HitCount(std::string_view site);

/// Snapshot of fired counts for every site that fired at least once,
/// keyed by site name — exported as fault.fired.<site> metrics.
std::map<std::string, uint64_t> FiredSnapshot();

/// True when this build can inject faults.
inline constexpr bool BuildEnabled() { return true; }

#else  // !ROCK_FAILPOINTS_ENABLED — everything folds to nothing.

inline Status Configure(std::string_view spec) {
  if (!spec.empty()) {
    return Status::FailedPrecondition(
        "failpoints are compiled out of this build (ROCK_FAILPOINTS=OFF)");
  }
  return Status::OK();
}
inline void Clear() {}
inline constexpr Action Consult(std::string_view) { return Action::kNone; }
inline constexpr uint64_t FiredCount(std::string_view) { return 0; }
inline constexpr uint64_t HitCount(std::string_view) { return 0; }
inline std::map<std::string, uint64_t> FiredSnapshot() { return {}; }
inline constexpr bool BuildEnabled() { return false; }

#endif  // ROCK_FAILPOINTS_ENABLED

/// Applies the ROCK_FAILPOINTS environment variable (if set and non-empty)
/// to the process-wide schedule. Called once by the CLI entry point; tests
/// call Configure() directly.
Status ConfigureFromEnv();

/// Read-path site check: returns OK when idle, the injected status when the
/// site fires. short_read surfaces as Corruption — exactly what a truncated
/// file produces — while error stays a transient IOError. Folds to an OK
/// constant when failpoints are compiled out.
inline Status ConsultRead(std::string_view site) {
  switch (Consult(site)) {
    case Action::kNone:
      return Status::OK();
    case Action::kShortRead:
      return Status::Corruption("injected short read at '" +
                                std::string(site) + "'");
    case Action::kCrash:
      return InjectedCrash(site);
    case Action::kError:
    case Action::kTornWrite:
      return InjectedError(site);
  }
  return Status::OK();
}

/// Write-path site check for an `n`-byte write of `data` to `f`: returns OK
/// when idle; on torn_write it persists a prefix of the payload (the torn
/// bytes a crashed writer would leave behind) and reports IOError; crash
/// writes nothing and reports the non-retryable injected crash. Folds to an
/// OK constant when failpoints are compiled out.
inline Status ConsultWrite(std::string_view site, std::FILE* f,
                           const void* data, size_t n) {
  switch (Consult(site)) {
    case Action::kNone:
      return Status::OK();
    case Action::kTornWrite:
      if (n > 0) {
        std::fwrite(data, 1, n / 2, f);
        std::fflush(f);
      }
      return InjectedError(site);
    case Action::kCrash:
      return InjectedCrash(site);
    case Action::kError:
    case Action::kShortRead:
      return InjectedError(site);
  }
  return Status::OK();
}

}  // namespace rock::fail

#endif  // ROCK_UTIL_FAILPOINT_H_
