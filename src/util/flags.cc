#include "util/flags.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace rock {

namespace {

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  // strtod happily parses "nan" and "inf"; no rock flag means anything
  // non-finite, and a NaN slips through every `x < bound` range check
  // downstream, so reject it at the parser.
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

template <typename T>
bool ParseIntegral(const std::string& s, T* out) {
  T v{};
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseBool(const std::string& s, bool* out) {
  const std::string lower = ToLower(s);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    *out = true;
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagSet::Register(Flag flag) {
  // A duplicate registration is a programming error in the command setup:
  // Find() returns the first match, so the second registration would be
  // silently dead (its default still shown in --help). Fail loudly instead.
  if (Has(flag.name)) {
    std::fprintf(stderr, "FlagSet: duplicate flag --%s\n", flag.name.c_str());
    std::abort();
  }
  flags_.push_back(std::move(flag));
}

void FlagSet::AddString(const std::string& name, std::string* dest,
                        const std::string& help) {
  Register(Flag{name, help, "string", *dest, false,
                [dest](const std::string& v) {
                  *dest = v;
                  return true;
                }});
}

void FlagSet::AddDouble(const std::string& name, double* dest,
                        const std::string& help) {
  Register(Flag{name, help, "double", FormatDouble(*dest, 4), false,
                [dest](const std::string& v) { return ParseDouble(v, dest); }});
}

void FlagSet::AddInt(const std::string& name, int64_t* dest,
                     const std::string& help) {
  Register(Flag{name, help, "int", std::to_string(*dest), false,
                [dest](const std::string& v) {
                  return ParseIntegral(v, dest);
                }});
}

void FlagSet::AddSize(const std::string& name, size_t* dest,
                      const std::string& help) {
  Register(Flag{name, help, "size", std::to_string(*dest), false,
                [dest](const std::string& v) {
                  return ParseIntegral(v, dest);
                }});
}

void FlagSet::AddBool(const std::string& name, bool* dest,
                      const std::string& help) {
  Register(Flag{name, help, "bool", *dest ? "true" : "false", true,
                [dest](const std::string& v) { return ParseBool(v, dest); }});
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool FlagSet::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

Status FlagSet::Parse(const std::vector<std::string>& args) {
  positional_.clear();
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const size_t eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }

    const Flag* flag = Find(body);
    // "--no-<bool>" negation.
    if (flag == nullptr && StartsWith(body, "no-")) {
      const Flag* negated = Find(body.substr(3));
      if (negated != nullptr && negated->is_bool) {
        if (has_value) {
          return Status::InvalidArgument("--no-" + negated->name +
                                         " does not take a value");
        }
        negated->set("false");
        continue;
      }
    }
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + body);
    }

    if (!has_value) {
      if (flag->is_bool) {
        value = "true";
      } else if (i + 1 < args.size()) {
        value = args[++i];
      } else {
        return Status::InvalidArgument("flag --" + body +
                                       " expects a value");
      }
    }
    if (!flag->set(value)) {
      return Status::InvalidArgument("cannot parse '" + value +
                                     "' for --" + body + " (" +
                                     flag->type_name + ")");
    }
  }
  return Status::OK();
}

std::string FlagSet::Help() const {
  std::string out;
  for (const Flag& f : flags_) {
    out += "  --" + f.name + " (" + f.type_name +
           ", default: " + f.default_value + ")\n      " + f.help + "\n";
  }
  return out;
}

}  // namespace rock
