// librock — util/thread_pool.h
//
// Minimal fork-join helpers for the parallel neighbor/link computations
// (graph/parallel.h). Workloads here are large, coarse-grained and
// CPU-bound, so plain std::thread fork-join per call is the right shape —
// no task queue, no futures.

#ifndef ROCK_UTIL_THREAD_POOL_H_
#define ROCK_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace rock {

/// Resolves a thread-count request: 0 → hardware concurrency (min 1).
inline size_t ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(worker_index) on `num_threads` threads and joins them all.
/// fn must be thread-safe across workers. With num_threads <= 1 the call
/// runs inline (no thread spawn), which keeps small inputs cheap and makes
/// single-threaded behavior exactly the serial code path.
inline void ParallelInvoke(size_t num_threads,
                           const std::function<void(size_t)>& fn) {
  num_threads = ResolveThreads(num_threads);
  if (num_threads <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&fn, t] { fn(t); });
  }
  for (auto& w : workers) w.join();
}

/// Dynamic chunked loop over [0, total): workers repeatedly claim
/// `chunk`-sized index ranges from a shared counter and pass them to
/// fn(begin, end). Self-balancing for skewed per-index costs.
inline void ParallelChunks(
    size_t num_threads, size_t total, size_t chunk,
    const std::function<void(size_t, size_t)>& fn) {
  num_threads = ResolveThreads(num_threads);
  if (chunk == 0) chunk = 1;
  if (num_threads <= 1 || total <= chunk) {
    if (total > 0) fn(0, total);
    return;
  }
  std::atomic<size_t> next{0};
  ParallelInvoke(num_threads, [&](size_t) {
    while (true) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= total) break;
      fn(begin, std::min(begin + chunk, total));
    }
  });
}

}  // namespace rock

#endif  // ROCK_UTIL_THREAD_POOL_H_
