// librock — util/updatable_heap.h
//
// Handle-based binary max-heap with O(log n) insert / erase / update of
// arbitrary keys. The ROCK clusterer (paper Fig. 3) maintains one *local*
// heap q[i] per live cluster (candidate partners ordered by goodness) plus a
// *global* heap Q (clusters ordered by their best local goodness); merges
// require delete(Q, v), delete(q[x], u) and update(Q, x, q[x]) — operations
// std::priority_queue cannot do, hence this structure.
//
// Determinism: equal priorities are broken toward the smaller key, so runs
// are reproducible regardless of insertion order.

#ifndef ROCK_UTIL_UPDATABLE_HEAP_H_
#define ROCK_UTIL_UPDATABLE_HEAP_H_

#include <cassert>
#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rock {

/// Max-heap over (Key → Priority) with updatable/erasable entries.
///
/// Key must be hashable and equality-comparable; Priority must be
/// less-than-comparable. Each key appears at most once.
template <typename Key, typename Priority>
class UpdatableHeap {
 public:
  /// One heap entry.
  struct Entry {
    Key key;
    Priority priority;
  };

  /// Number of entries.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True iff `key` is present.
  bool Contains(const Key& key) const { return index_.count(key) > 0; }

  /// Priority of `key`; key must be present.
  const Priority& PriorityOf(const Key& key) const {
    auto it = index_.find(key);
    assert(it != index_.end());
    return entries_[it->second].priority;
  }

  /// Inserts `key` with `priority`, or changes its priority if present.
  void InsertOrUpdate(const Key& key, const Priority& priority) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      entries_.push_back(Entry{key, priority});
      index_[key] = entries_.size() - 1;
      SiftUp(entries_.size() - 1);
    } else {
      const size_t pos = it->second;
      entries_[pos].priority = priority;
      if (!SiftUp(pos)) SiftDown(pos);
    }
  }

  /// Removes `key` if present; returns whether it was present.
  bool Erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    const size_t pos = it->second;
    RemoveAt(pos);
    return true;
  }

  /// Renames the entry `old_key` to `new_key` and sets its priority — one
  /// sift instead of an Erase + InsertOrUpdate pair. `old_key` must be
  /// present and `new_key` absent. The merge loop uses this when a partner
  /// cluster u is replaced by the merged cluster w in a local heap.
  void ReplaceKey(const Key& old_key, const Key& new_key,
                  const Priority& priority) {
    auto it = index_.find(old_key);
    assert(it != index_.end());
    assert(index_.count(new_key) == 0);
    const size_t pos = it->second;
    index_.erase(it);
    entries_[pos] = Entry{new_key, priority};
    index_[new_key] = pos;
    if (!SiftUp(pos)) SiftDown(pos);
  }

  /// Replaces the whole heap with `entries` in O(n) (Floyd heapify) instead
  /// of n individual O(log n) inserts. Keys must be unique; any previous
  /// content is discarded. The merge loop uses this to build the merged
  /// cluster's local heap from its freshly counted partner list.
  void Assign(std::vector<Entry> entries) {
    entries_ = std::move(entries);
    index_.clear();
    index_.reserve(entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i) {
      assert(index_.count(entries_[i].key) == 0);
      index_[entries_[i].key] = i;
    }
    for (size_t i = entries_.size() / 2; i-- > 0;) SiftDown(i);
  }

  /// The maximum entry; heap must be non-empty.
  const Entry& Top() const {
    assert(!entries_.empty());
    return entries_[0];
  }

  /// Removes and returns the maximum entry; heap must be non-empty.
  Entry ExtractTop() {
    assert(!entries_.empty());
    Entry top = entries_[0];
    RemoveAt(0);
    return top;
  }

  /// All entries in unspecified (heap) order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Removes all entries.
  void Clear() {
    entries_.clear();
    index_.clear();
  }

 private:
  // Entry ordering: higher priority wins; ties go to the smaller key.
  bool Before(const Entry& a, const Entry& b) const {
    if (b.priority < a.priority) return true;
    if (a.priority < b.priority) return false;
    return a.key < b.key;
  }

  void RemoveAt(size_t pos) {
    index_.erase(entries_[pos].key);
    const size_t last = entries_.size() - 1;
    if (pos != last) {
      entries_[pos] = std::move(entries_[last]);
      index_[entries_[pos].key] = pos;
      entries_.pop_back();
      if (!SiftUp(pos)) SiftDown(pos);
    } else {
      entries_.pop_back();
    }
  }

  // Returns true if the entry moved.
  bool SiftUp(size_t pos) {
    bool moved = false;
    while (pos > 0) {
      const size_t parent = (pos - 1) / 2;
      if (!Before(entries_[pos], entries_[parent])) break;
      SwapEntries(pos, parent);
      pos = parent;
      moved = true;
    }
    return moved;
  }

  void SiftDown(size_t pos) {
    const size_t n = entries_.size();
    while (true) {
      size_t best = pos;
      const size_t l = 2 * pos + 1;
      const size_t r = 2 * pos + 2;
      if (l < n && Before(entries_[l], entries_[best])) best = l;
      if (r < n && Before(entries_[r], entries_[best])) best = r;
      if (best == pos) break;
      SwapEntries(pos, best);
      pos = best;
    }
  }

  void SwapEntries(size_t a, size_t b) {
    std::swap(entries_[a], entries_[b]);
    index_[entries_[a].key] = a;
    index_[entries_[b].key] = b;
  }

  std::vector<Entry> entries_;
  std::unordered_map<Key, size_t> index_;
};

}  // namespace rock

#endif  // ROCK_UTIL_UPDATABLE_HEAP_H_
