#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace rock {

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void RetryStats::Merge(const RetryStats& other) {
  attempts += other.attempts;
  retries += other.retries;
  exhausted += other.exhausted;
  backoff_ms += other.backoff_ms;
}

Status RetryTransient(const RetryPolicy& policy,
                      const std::function<Status()>& op, RetryStats* stats,
                      const RetrySleeper& sleeper) {
  const int max_attempts = std::max(policy.max_attempts, 1);
  double backoff = policy.initial_backoff_ms;
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (stats != nullptr) {
      ++stats->attempts;
      if (attempt > 1) ++stats->retries;
    }
    last = op();
    if (last.ok()) return last;
    // Only IOError is worth retrying; corruption is deterministic, and an
    // injected crash (Status::Internal) must surface as-is so resume paths
    // are exercised.
    if (!last.IsIOError()) return last;
    if (attempt == max_attempts) break;
    const double sleep_ms = std::min(backoff, policy.max_backoff_ms);
    if (stats != nullptr) stats->backoff_ms += sleep_ms;
    if (sleeper) {
      sleeper(sleep_ms);
    } else {
      SleepMs(sleep_ms);
    }
    backoff *= policy.multiplier;
  }
  if (stats != nullptr) ++stats->exhausted;
  return last;
}

}  // namespace rock
