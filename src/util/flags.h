// librock — util/flags.h
//
// Minimal typed command-line flag parser for the rock_cli tool. Flags are
// registered with a pointer to their destination, parsed from
// "--name=value" / "--name value" syntax, and rendered into a --help text.
// No global state; each FlagSet is independent (testable).

#ifndef ROCK_UTIL_FLAGS_H_
#define ROCK_UTIL_FLAGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace rock {

/// A set of typed flags plus positional-argument collection.
class FlagSet {
 public:
  /// Registers a flag bound to `*dest`; the current value of `*dest` is
  /// the default shown in help. `name` excludes the leading dashes.
  void AddString(const std::string& name, std::string* dest,
                 const std::string& help);
  void AddDouble(const std::string& name, double* dest,
                 const std::string& help);
  void AddInt(const std::string& name, int64_t* dest,
              const std::string& help);
  void AddSize(const std::string& name, size_t* dest,
               const std::string& help);
  void AddBool(const std::string& name, bool* dest, const std::string& help);

  /// Parses arguments (excluding argv[0]). Accepts "--name=value",
  /// "--name value", and for bools "--name" / "--no-name". Non-flag
  /// arguments are collected into positional(). Unknown flags fail.
  Status Parse(const std::vector<std::string>& args);

  /// Arguments that were not flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a help block listing every flag with its default.
  std::string Help() const;

  /// True iff a flag with this name is registered.
  bool Has(const std::string& name) const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string type_name;
    std::string default_value;
    bool is_bool = false;
    // Returns false if the value cannot be parsed.
    std::function<bool(const std::string&)> set;
  };

  void Register(Flag flag);
  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rock

#endif  // ROCK_UTIL_FLAGS_H_
