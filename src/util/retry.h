// librock — util/retry.h
//
// Transient-error retry with capped exponential backoff, wrapped around the
// disk pipeline's I/O (store scans, labeler/checkpoint persistence). Only
// IOError is considered transient: Corruption means the bytes are wrong and
// rereading them cannot help, and an injected crash (util/failpoint.h) must
// abort the run so resume can be exercised. The sleeper is injectable so
// tests assert the exact backoff schedule without waiting for it.

#ifndef ROCK_UTIL_RETRY_H_
#define ROCK_UTIL_RETRY_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/status.h"

namespace rock {

/// Backoff schedule for RetryTransient. Defaults are tuned for local disk
/// hiccups: up to 4 attempts, sleeping 1ms, 2ms, 4ms between them.
struct RetryPolicy {
  /// Total attempts, including the first (>= 1). 1 disables retrying.
  int max_attempts = 4;
  /// Sleep before the first retry, in milliseconds.
  double initial_backoff_ms = 1.0;
  /// Backoff growth per retry.
  double multiplier = 2.0;
  /// Cap on a single sleep, in milliseconds.
  double max_backoff_ms = 64.0;
};

/// Sleeps for `ms` milliseconds. Tests substitute a recording fake; the
/// default sleeper really sleeps.
using RetrySleeper = std::function<void(double ms)>;

/// The default RetrySleeper (std::this_thread::sleep_for).
void SleepMs(double ms);

/// Retry counters accumulated by RetryTransient. Parallel callers keep one
/// per worker and merge after joining (MetricsRegistry is single-writer),
/// surfacing them as the retry.* metrics (docs/OBSERVABILITY.md).
struct RetryStats {
  uint64_t attempts = 0;    ///< operations attempted (first tries + retries)
  uint64_t retries = 0;     ///< attempts that were retries
  uint64_t exhausted = 0;   ///< operations that failed every attempt
  double backoff_ms = 0.0;  ///< total time handed to the sleeper

  /// Adds `other`'s counts into this.
  void Merge(const RetryStats& other);
};

/// Runs `op` until it succeeds, fails non-transiently, or exhausts
/// `policy.max_attempts`. Transient means Status::IOError, except injected
/// crashes, which abort immediately. Returns the last status. `stats` and
/// `sleeper` may be null (no accounting / really sleep).
Status RetryTransient(const RetryPolicy& policy,
                      const std::function<Status()>& op,
                      RetryStats* stats = nullptr,
                      const RetrySleeper& sleeper = nullptr);

}  // namespace rock

#endif  // ROCK_UTIL_RETRY_H_
