// librock — util/bytes.h
//
// Little byte-buffer plumbing shared by every versioned+CRC'd on-disk
// format (pipeline checkpoints, model bundles): an appending POD writer,
// a bounds-checked POD reader, and whole-file read/write helpers. These
// used to live in core/checkpoint.cc's anonymous namespace; they moved
// here when the model bundle needed the same discipline.
//
// ByteReader treats every overrun as the same Corruption — a truncated or
// tampered payload — tagged with the caller-supplied `context` so the
// error names which format was being parsed.

#ifndef ROCK_UTIL_BYTES_H_
#define ROCK_UTIL_BYTES_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace rock {

/// Appends POD fields to an in-memory payload buffer.
struct ByteWriter {
  std::vector<uint8_t> buf;

  void Write(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf.insert(buf.end(), p, p + n);
  }
  template <typename T>
  void Pod(const T& v) {
    Write(&v, sizeof(v));
  }
};

/// Bounds-checked reader over a payload buffer. Every overrun is the same
/// Corruption — a truncated or tampered payload.
struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  const char* context = "payload";  ///< names the format in errors

  Status Read(void* out, size_t n) {
    if (n > size - pos) {
      return Status::Corruption(std::string("truncated ") + context);
    }
    std::memcpy(out, data + pos, n);
    pos += n;
    return Status::OK();
  }
  template <typename T>
  Status Pod(T* out) {
    return Read(out, sizeof(*out));
  }
  /// Remaining bytes — used to sanity-check counts before allocating.
  size_t Remaining() const { return size - pos; }
};

/// Writes `n` bytes to `path`, failing on short writes or flush errors.
/// Callers wanting atomicity write to "<path>.tmp" and rename.
inline Status WriteFileBytes(const std::string& path, const uint8_t* data,
                             size_t n) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot create '" + path + "'");
  }
  if (n > 0 && std::fwrite(data, 1, n, file.get()) != n) {
    return Status::IOError("short write to '" + path + "'");
  }
  if (std::fflush(file.get()) != 0) {
    return Status::IOError("flush failure on '" + path + "'");
  }
  return Status::OK();
}

/// Reads the whole of `path` into memory. Missing file → IOError.
inline Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::FILE* f = file.get();
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError("seek failure on '" + path + "'");
  }
  const long end = std::ftell(f);
  if (end < 0) {
    return Status::IOError("tell failure on '" + path + "'");
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IOError("seek failure on '" + path + "'");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(end));
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    return Status::IOError("read failure on '" + path + "'");
  }
  return bytes;
}

}  // namespace rock

#endif  // ROCK_UTIL_BYTES_H_
