#include "util/failpoint.h"

#include <cstdlib>

#include "common/string_util.h"

#ifdef ROCK_FAILPOINTS_ENABLED
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>
#endif

namespace rock::fail {

Status InjectedError(std::string_view site) {
  return Status::IOError("injected fault at '" + std::string(site) + "'");
}

Status InjectedCrash(std::string_view site) {
  return Status::Internal(std::string(kCrashMarker) + " at '" +
                          std::string(site) + "'");
}

bool IsInjectedCrash(const Status& status) {
  return status.IsInternal() &&
         status.message().find(kCrashMarker) != std::string::npos;
}

#ifdef ROCK_FAILPOINTS_ENABLED

namespace {

struct Site {
  uint64_t fire_at = 0;      ///< trigger threshold N
  bool every = false;        ///< fire_every_N vs fire_on_hit_N
  Action action = Action::kNone;
  uint64_t hits = 0;
  uint64_t fired = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
  /// Fast path: true only while at least one site is armed. Lets an
  /// unconfigured process answer Consult() with one relaxed load.
  std::atomic<bool> armed{false};
};

Registry& Global() {
  static Registry* r = new Registry();
  return *r;
}

Result<Action> ParseAction(std::string_view token) {
  if (token == "error") return Action::kError;
  if (token == "short_read") return Action::kShortRead;
  if (token == "torn_write") return Action::kTornWrite;
  if (token == "crash") return Action::kCrash;
  return Status::InvalidArgument("unknown failpoint action '" +
                                 std::string(token) + "'");
}

Status ParseEntry(std::string_view entry,
                  std::unordered_map<std::string, Site>* sites) {
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("failpoint entry '" + std::string(entry) +
                                   "' is not site=trigger:action");
  }
  const std::string site(Trim(entry.substr(0, eq)));
  std::string_view rest = Trim(entry.substr(eq + 1));
  const size_t colon = rest.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("failpoint entry for '" + site +
                                   "' is missing ':action'");
  }
  const std::string_view trigger = Trim(rest.substr(0, colon));
  const std::string_view action_token = Trim(rest.substr(colon + 1));

  Site config;
  std::string_view count_text;
  constexpr std::string_view kOnHit = "fire_on_hit_";
  constexpr std::string_view kEvery = "fire_every_";
  if (StartsWith(trigger, kOnHit)) {
    config.every = false;
    count_text = trigger.substr(kOnHit.size());
  } else if (StartsWith(trigger, kEvery)) {
    config.every = true;
    count_text = trigger.substr(kEvery.size());
  } else {
    return Status::InvalidArgument(
        "unknown failpoint trigger '" + std::string(trigger) +
        "' (expected fire_on_hit_N or fire_every_N)");
  }
  if (count_text.empty()) {
    return Status::InvalidArgument("failpoint trigger for '" + site +
                                   "' is missing its hit count");
  }
  uint64_t n = 0;
  for (char c : count_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("failpoint hit count '" +
                                     std::string(count_text) +
                                     "' is not a positive integer");
    }
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  if (n == 0) {
    return Status::InvalidArgument("failpoint hit count must be >= 1");
  }
  config.fire_at = n;

  auto action = ParseAction(action_token);
  ROCK_RETURN_IF_ERROR(action.status());
  config.action = *action;

  if (sites->count(site) > 0) {
    return Status::InvalidArgument("failpoint site '" + site +
                                   "' configured twice");
  }
  (*sites)[site] = config;
  return Status::OK();
}

}  // namespace

Status Configure(std::string_view spec) {
  std::unordered_map<std::string, Site> parsed;
  std::string_view remaining = spec;
  while (!remaining.empty()) {
    const size_t sep = remaining.find(';');
    std::string_view entry = Trim(sep == std::string_view::npos
                                      ? remaining
                                      : remaining.substr(0, sep));
    remaining = sep == std::string_view::npos
                    ? std::string_view()
                    : remaining.substr(sep + 1);
    if (entry.empty()) continue;
    ROCK_RETURN_IF_ERROR(ParseEntry(entry, &parsed));
  }
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites = std::move(parsed);
  r.armed.store(!r.sites.empty(), std::memory_order_release);
  return Status::OK();
}

void Clear() {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  r.armed.store(false, std::memory_order_release);
}

Action Consult(std::string_view site) {
  Registry& r = Global();
  if (!r.armed.load(std::memory_order_acquire)) return Action::kNone;
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(std::string(site));
  if (it == r.sites.end()) return Action::kNone;
  Site& s = it->second;
  ++s.hits;
  const bool fire = s.every ? (s.hits % s.fire_at == 0)
                            : (s.hits == s.fire_at);
  if (!fire) return Action::kNone;
  ++s.fired;
  return s.action;
}

uint64_t FiredCount(std::string_view site) {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(std::string(site));
  return it == r.sites.end() ? 0 : it->second.fired;
}

uint64_t HitCount(std::string_view site) {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(std::string(site));
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::map<std::string, uint64_t> FiredSnapshot() {
  Registry& r = Global();
  std::lock_guard<std::mutex> lock(r.mu);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, site] : r.sites) {
    if (site.fired > 0) out[name] = site.fired;
  }
  return out;
}

#endif  // ROCK_FAILPOINTS_ENABLED

Status ConfigureFromEnv() {
  const char* env = std::getenv("ROCK_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return Status::OK();
  return Configure(env);
}

}  // namespace rock::fail
