#include "util/checksum.h"

#include <array>

namespace rock {

namespace {

/// Byte-at-a-time lookup table for the reflected IEEE polynomial 0xEDB88320,
/// built once at load time.
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  const auto& table = CrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rock
