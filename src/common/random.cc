#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <numeric>

namespace rock {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  uint64_t draw = (span == 0) ? NextUint64() : UniformUint64(span);
  return lo + static_cast<int64_t>(draw);
}

double Rng::UniformDouble() {
  // 53 high bits → uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformUint64(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace rock
