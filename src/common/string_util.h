// librock — common/string_util.h
//
// Small string helpers shared by the CSV reader, profilers and report
// printers. Kept deliberately minimal (no locale, no unicode).

#ifndef ROCK_COMMON_STRING_UTIL_H_
#define ROCK_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rock {

/// Splits `s` on `delim`; keeps empty fields ("a,,b" → {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins the parts with the separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Formats a double with `digits` decimal places (fixed notation).
std::string FormatDouble(double v, int digits);

}  // namespace rock

#endif  // ROCK_COMMON_STRING_UTIL_H_
