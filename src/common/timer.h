// librock — common/timer.h
//
// Wall-clock stopwatch used by the benchmark harnesses (Figure 5 reproduces
// runtime-vs-sample-size curves).

#ifndef ROCK_COMMON_TIMER_H_
#define ROCK_COMMON_TIMER_H_

#include <chrono>

namespace rock {

/// Monotonic stopwatch. Starts on construction; Restart() resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double ElapsedSeconds() const;

  /// Elapsed milliseconds since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rock

#endif  // ROCK_COMMON_TIMER_H_
