#include "common/timer.h"

namespace rock {

double Timer::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace rock
