// librock — common/status.h
//
// RocksDB-style Status / Result<T> error plumbing. Library code paths do not
// throw; fallible operations return a Status (or a Result<T> when they also
// produce a value). Callers are expected to check ok() before use.

#ifndef ROCK_COMMON_STATUS_H_
#define ROCK_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace rock {

/// Outcome of a fallible librock operation.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// human-readable message. Statuses are cheap to copy (the message is only
/// allocated on the error path). Marked [[nodiscard]]: silently dropping a
/// Status is how I/O errors turn into wrong results, so ignoring one is a
/// compile error under -Werror.
class [[nodiscard]] Status {
 public:
  /// Error taxonomy. Kept deliberately small; the message carries detail.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kOutOfRange,
    kFailedPrecondition,
    kInternal,
  };

  /// Constructs an OK status.
  Status() = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  /// Returns an IOError status with the given message.
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  /// Returns a Corruption status with the given message.
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  /// Returns a FailedPrecondition status with the given message.
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  /// Returns an Internal status with the given message.
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == Code::kOk; }
  /// The status code.
  Code code() const { return code_; }
  /// The error message ("" for OK statuses).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// A value-or-error sum type: holds either a T or a non-OK Status.
///
/// Mirrors rocksdb's StatusOr / arrow::Result. Dereferencing a Result that
/// holds an error is a programming bug and asserts in debug builds.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// True iff the result holds a value.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is held).
  const Status& status() const { return status_; }

  /// Access to the held value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// Moves the held value out; requires ok().
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller. The
/// temporary's name is line-pasted so the macro can appear inside a lambda
/// that is itself an argument to another ROCK_RETURN_IF_ERROR without
/// tripping -Wshadow.
#define ROCK_STATUS_CONCAT_IMPL(x, y) x##y
#define ROCK_STATUS_CONCAT(x, y) ROCK_STATUS_CONCAT_IMPL(x, y)
#define ROCK_RETURN_IF_ERROR(expr)                                          \
  do {                                                                      \
    ::rock::Status ROCK_STATUS_CONCAT(_rock_status_, __LINE__) = (expr);    \
    if (!ROCK_STATUS_CONCAT(_rock_status_, __LINE__).ok())                  \
      return ROCK_STATUS_CONCAT(_rock_status_, __LINE__);                   \
  } while (false)

}  // namespace rock

#endif  // ROCK_COMMON_STATUS_H_
