// librock — common/random.h
//
// Deterministic, seedable pseudo-random number generation. All randomized
// librock components (synthetic generators, sampling, k-means init) draw from
// Rng so that experiments reproduce bit-for-bit given a seed.
//
// The generator is xoshiro256**, seeded through splitmix64 — fast, high
// quality, and trivially portable (no libstdc++ distribution quirks).

#ifndef ROCK_COMMON_RANDOM_H_
#define ROCK_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rock {

/// Expands a 64-bit seed into well-mixed stream values (SplitMix64).
/// Used for seeding and for deriving independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64-bit value in the stream.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// Deterministic PRNG (xoshiro256**) with convenience draws.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal via Box–Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Derives an independent child generator (for parallel / modular seeding).
  Rng Fork();

  /// Fisher–Yates shuffle of the whole vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (partial Fisher–Yates); requires k <= n. Result order is random.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rock

#endif  // ROCK_COMMON_RANDOM_H_
