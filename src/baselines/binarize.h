// librock — baselines/binarize.h
//
// Categorical → boolean vectorization used by the traditional baselines
// (paper §5: "we handle categorical attributes by converting them to boolean
// attributes with 0/1 values. For every categorical attribute, we define a
// new attribute for every value in its domain"). Missing values produce all
// zeros across the attribute's indicator columns.

#ifndef ROCK_BASELINES_BINARIZE_H_
#define ROCK_BASELINES_BINARIZE_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace rock {

/// Dense 0/1 vectors plus the name of each indicator column.
struct BinarizedData {
  std::vector<std::vector<double>> points;  ///< n × D indicator matrix
  std::vector<std::string> column_names;    ///< "attr=value" per column
};

/// One indicator column per (attribute, value) pair of the schema.
BinarizedData BinarizeRecords(const CategoricalDataset& dataset);

/// One indicator column per item of the dictionary (market-basket view,
/// paper §1: transactions become points with boolean attributes).
BinarizedData BinarizeTransactions(const TransactionDataset& dataset);

}  // namespace rock

#endif  // ROCK_BASELINES_BINARIZE_H_
