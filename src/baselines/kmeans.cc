#include "baselines/kmeans.h"

#include <cmath>
#include <limits>

#include "similarity/lp_metric.h"

namespace rock {

namespace {

size_t NearestCentroid(const std::vector<double>& point,
                       const std::vector<std::vector<double>>& centroids) {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    const double d = SquaredL2Distance(point, centroids[c]);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

std::vector<std::vector<double>> KMeansPlusPlusInit(
    const std::vector<std::vector<double>>& points, size_t k, Rng* rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[static_cast<size_t>(rng->UniformUint64(points.size()))]);

  std::vector<double> dist2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        dist2[i] = std::min(dist2[i], SquaredL2Distance(points[i], c));
      }
      total += dist2[i];
    }
    if (total == 0.0) {
      // All remaining points coincide with centroids; pick uniformly.
      centroids.push_back(
          points[static_cast<size_t>(rng->UniformUint64(points.size()))]);
      continue;
    }
    double target = rng->UniformDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

Result<KMeansResult> ClusterKMeans(
    const std::vector<std::vector<double>>& points,
    const KMeansOptions& options) {
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (points.size() < options.num_clusters) {
    return Status::InvalidArgument("fewer points than clusters");
  }
  const size_t dim = points.front().size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("points have inconsistent dimensions");
    }
  }

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = KMeansPlusPlusInit(points, options.num_clusters, &rng);
  std::vector<ClusterIndex> assignment(points.size(), kUnassigned);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<ClusterIndex>(
          NearestCentroid(points[i], result.centroids));
      if (c != assignment[i]) {
        assignment[i] = c;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
    // Recompute centroids; empty clusters keep their previous centroid.
    std::vector<std::vector<double>> sums(
        options.num_clusters, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(options.num_clusters, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<size_t>(assignment[i]);
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < options.num_clusters; ++c) {
      if (counts[c] == 0) continue;
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  result.clustering = Clustering::FromAssignment(std::move(assignment));
  result.clustering.SortBySizeDescending();

  // E = Σ_i Σ_{x∈C_i} d(x, m_i): recompute against the final centroids,
  // matching points through the final (pre-compaction) assignment.
  result.criterion = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    result.criterion += std::sqrt(SquaredL2Distance(
        points[i],
        result.centroids[NearestCentroid(points[i], result.centroids)]));
  }
  return result;
}

}  // namespace rock
