// librock — baselines/linkage_hierarchical.h
//
// The two non-metric hierarchical baselines the paper discusses for
// Jaccard-style similarities (§1.1):
//   * single-link / MST clustering — "merges, at each step, the pair of
//     clusters containing the most similar pair of points"; implemented as
//     a maximum-similarity spanning tree with the k−1 weakest edges cut;
//   * group-average clustering — merges the pair with the highest average
//     pairwise similarity.
// Both run on any PointSimilarity, metric or not.

#ifndef ROCK_BASELINES_LINKAGE_HIERARCHICAL_H_
#define ROCK_BASELINES_LINKAGE_HIERARCHICAL_H_

#include "common/status.h"
#include "core/cluster.h"
#include "similarity/similarity.h"

namespace rock {

/// Single-link (MST) clustering into k clusters: build the maximum spanning
/// tree under `sim` (Prim, O(n²)), then cut the k−1 smallest-similarity
/// edges. Every point is assigned (the method has no outlier notion — its
/// fragility on outliers is exactly what §1.1 critiques).
Result<Clustering> ClusterSingleLink(const PointSimilarity& sim,
                                     size_t num_clusters);

/// Group-average agglomeration into k clusters: repeatedly merge the pair
/// of clusters maximizing mean pairwise similarity. O(n²) memory for the
/// similarity sums; suited to sampled inputs.
Result<Clustering> ClusterGroupAverage(const PointSimilarity& sim,
                                       size_t num_clusters);

}  // namespace rock

#endif  // ROCK_BASELINES_LINKAGE_HIERARCHICAL_H_
