// librock — baselines/kmeans.h
//
// Partitional baseline (paper §1.1): minimize the criterion
// E = Σ_i Σ_{x ∈ C_i} d(x, m_i) by iterative refinement. Implemented as
// Lloyd's algorithm with k-means++ seeding on the 0/1-binarized vectors.
// §1.1's point — that this criterion favors splitting large, well-linked
// categorical clusters — is demonstrated in bench_goodness_ablation.

#ifndef ROCK_BASELINES_KMEANS_H_
#define ROCK_BASELINES_KMEANS_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/cluster.h"

namespace rock {

/// Options for the k-means baseline.
struct KMeansOptions {
  size_t num_clusters = 2;
  size_t max_iterations = 100;
  /// Stop when no point changes assignment.
  uint64_t seed = 42;
};

/// Result of a k-means run.
struct KMeansResult {
  Clustering clustering;
  std::vector<std::vector<double>> centroids;
  /// The paper's criterion E = Σ_i Σ_{x∈C_i} ||x − m_i||₂ (distances, not
  /// squared distances, per §1.1).
  double criterion = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// Runs Lloyd's algorithm with k-means++ initialization.
Result<KMeansResult> ClusterKMeans(
    const std::vector<std::vector<double>>& points,
    const KMeansOptions& options);

}  // namespace rock

#endif  // ROCK_BASELINES_KMEANS_H_
