#include "baselines/centroid_hierarchical.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "similarity/lp_metric.h"

namespace rock {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct CentroidCluster {
  bool alive = false;
  size_t size = 0;
  std::vector<double> centroid;
  std::vector<PointIndex> members;
  // Cached nearest live partner (by squared centroid distance).
  size_t nearest = 0;
  double nearest_dist = kInf;
};

class Engine {
 public:
  Engine(const std::vector<std::vector<double>>& points,
         const CentroidHierarchicalOptions& options)
      : options_(options), n_(points.size()) {
    clusters_.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
      clusters_[i].alive = true;
      clusters_[i].size = 1;
      clusters_[i].centroid = points[i];
      clusters_[i].members = {static_cast<PointIndex>(i)};
    }
    live_ = n_;
  }

  CentroidHierarchicalResult Run() {
    CentroidHierarchicalResult result;
    for (size_t i = 0; i < n_; ++i) {
      if (clusters_[i].alive) ResolveNearest(i);
    }

    const size_t trigger = static_cast<size_t>(std::floor(
        options_.outlier_trigger_fraction * static_cast<double>(n_)));
    bool outliers_done = !options_.eliminate_singleton_outliers;

    while (live_ > options_.num_clusters) {
      if (!outliers_done && live_ <= trigger) {
        EliminateSingletons(&result);
        outliers_done = true;
        if (live_ <= options_.num_clusters) break;
      }
      // Global closest pair via the cached per-cluster nearest entries.
      size_t best_u = SIZE_MAX;
      double best_dist = kInf;
      for (size_t i = 0; i < clusters_.size(); ++i) {
        if (clusters_[i].alive && clusters_[i].nearest_dist < best_dist) {
          best_dist = clusters_[i].nearest_dist;
          best_u = i;
        }
      }
      if (best_u == SIZE_MAX || best_dist == kInf) break;  // disconnected
      Merge(best_u, clusters_[best_u].nearest);
      ++result.num_merges;
    }

    BuildClustering(&result);
    return result;
  }

 private:
  void ResolveNearest(size_t i) {
    auto& ci = clusters_[i];
    ci.nearest_dist = kInf;
    ci.nearest = i;
    for (size_t j = 0; j < clusters_.size(); ++j) {
      if (j == i || !clusters_[j].alive) continue;
      const double d = SquaredL2Distance(ci.centroid, clusters_[j].centroid);
      if (d < ci.nearest_dist) {
        ci.nearest_dist = d;
        ci.nearest = j;
      }
    }
  }

  void Merge(size_t u, size_t v) {
    auto& cu = clusters_[u];
    auto& cv = clusters_[v];
    const double wu = static_cast<double>(cu.size);
    const double wv = static_cast<double>(cv.size);
    for (size_t d = 0; d < cu.centroid.size(); ++d) {
      cu.centroid[d] =
          (wu * cu.centroid[d] + wv * cv.centroid[d]) / (wu + wv);
    }
    cu.size += cv.size;
    cu.members.insert(cu.members.end(), cv.members.begin(), cv.members.end());
    cv.alive = false;
    cv.members.clear();
    --live_;
    RefreshAfterRemoval(u, v);
  }

  void EliminateSingletons(CentroidHierarchicalResult* result) {
    std::vector<size_t> removed;
    for (size_t i = 0; i < clusters_.size(); ++i) {
      if (clusters_[i].alive && clusters_[i].size == 1) {
        clusters_[i].alive = false;
        --live_;
        ++result->num_eliminated_singletons;
        removed.push_back(i);
      }
    }
    if (removed.empty()) return;
    // Any cached nearest pointing at a removed singleton must re-resolve.
    for (size_t i = 0; i < clusters_.size(); ++i) {
      if (!clusters_[i].alive) continue;
      if (!clusters_[clusters_[i].nearest].alive) ResolveNearest(i);
    }
  }

  /// After merging v into u: u re-resolves; every x whose cached nearest
  /// was u or v re-resolves; everyone else only checks the new centroid u.
  void RefreshAfterRemoval(size_t u, size_t v) {
    ResolveNearest(u);
    for (size_t x = 0; x < clusters_.size(); ++x) {
      if (!clusters_[x].alive || x == u) continue;
      auto& cx = clusters_[x];
      if (cx.nearest == u || cx.nearest == v) {
        ResolveNearest(x);
      } else {
        const double d = SquaredL2Distance(cx.centroid, clusters_[u].centroid);
        if (d < cx.nearest_dist) {
          cx.nearest_dist = d;
          cx.nearest = u;
        }
      }
    }
  }

  void BuildClustering(CentroidHierarchicalResult* result) {
    std::vector<ClusterIndex> assignment(n_, kUnassigned);
    ClusterIndex next = 0;
    for (const auto& c : clusters_) {
      if (!c.alive) continue;
      for (PointIndex p : c.members) assignment[p] = next;
      ++next;
    }
    result->clustering = Clustering::FromAssignment(std::move(assignment));
    result->clustering.SortBySizeDescending();
  }

  const CentroidHierarchicalOptions& options_;
  size_t n_;
  size_t live_ = 0;
  std::vector<CentroidCluster> clusters_;
};

}  // namespace

Result<CentroidHierarchicalResult> ClusterCentroidHierarchical(
    const std::vector<std::vector<double>>& points,
    const CentroidHierarchicalOptions& options) {
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (points.empty()) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }
  const size_t dim = points.front().size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("points have inconsistent dimensions");
    }
  }
  Engine engine(points, options);
  return engine.Run();
}

}  // namespace rock
