#include "baselines/linkage_hierarchical.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

namespace rock {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct DisjointSet {
  explicit DisjointSet(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent[Find(a)] = Find(b); }
  std::vector<size_t> parent;
};

}  // namespace

Result<Clustering> ClusterSingleLink(const PointSimilarity& sim,
                                     size_t num_clusters) {
  const size_t n = sim.size();
  if (num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (n == 0) return Clustering{};
  if (num_clusters > n) num_clusters = n;

  // Prim's algorithm on the complete similarity graph: maximum spanning
  // tree == single-link dendrogram.
  std::vector<bool> in_tree(n, false);
  std::vector<double> best_sim(n, kNegInf);
  std::vector<size_t> best_from(n, 0);
  struct Edge {
    size_t a, b;
    double s;
  };
  std::vector<Edge> tree_edges;
  tree_edges.reserve(n - 1);

  in_tree[0] = true;
  for (size_t j = 1; j < n; ++j) {
    best_sim[j] = sim.Similarity(0, j);
    best_from[j] = 0;
  }
  for (size_t step = 1; step < n; ++step) {
    size_t next = SIZE_MAX;
    double next_sim = kNegInf;
    for (size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best_sim[j] > next_sim) {
        next_sim = best_sim[j];
        next = j;
      }
    }
    in_tree[next] = true;
    tree_edges.push_back(Edge{best_from[next], next, next_sim});
    for (size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      const double s = sim.Similarity(next, j);
      if (s > best_sim[j]) {
        best_sim[j] = s;
        best_from[j] = next;
      }
    }
  }

  // Keep the n−k strongest edges; the k−1 weakest cuts define the clusters.
  std::sort(tree_edges.begin(), tree_edges.end(),
            [](const Edge& a, const Edge& b) { return a.s > b.s; });
  DisjointSet ds(n);
  const size_t keep = n - num_clusters;
  for (size_t e = 0; e < keep; ++e) {
    ds.Union(tree_edges[e].a, tree_edges[e].b);
  }

  std::vector<ClusterIndex> assignment(n, kUnassigned);
  std::vector<ClusterIndex> root_to_cluster(n, kUnassigned);
  ClusterIndex next_cluster = 0;
  for (size_t p = 0; p < n; ++p) {
    const size_t root = ds.Find(p);
    if (root_to_cluster[root] == kUnassigned) {
      root_to_cluster[root] = next_cluster++;
    }
    assignment[p] = root_to_cluster[root];
  }
  Clustering out = Clustering::FromAssignment(std::move(assignment));
  out.SortBySizeDescending();
  return out;
}

Result<Clustering> ClusterGroupAverage(const PointSimilarity& sim,
                                       size_t num_clusters) {
  const size_t n = sim.size();
  if (num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (n == 0) return Clustering{};
  if (num_clusters > n) num_clusters = n;

  // S[i][j] = total pairwise similarity between clusters i and j; the
  // group-average criterion is S[i][j] / (|i|·|j|). Merging u, v into u
  // gives the exact Lance–Williams update S[w][x] = S[u][x] + S[v][x].
  std::vector<std::vector<double>> total(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double s = sim.Similarity(i, j);
      total[i][j] = s;
      total[j][i] = s;
    }
  }

  std::vector<bool> alive(n, true);
  std::vector<size_t> size(n, 1);
  std::vector<std::vector<PointIndex>> members(n);
  for (size_t i = 0; i < n; ++i) members[i] = {static_cast<PointIndex>(i)};

  // Cached best partner per cluster (lazy re-resolution, same scheme as the
  // centroid engine).
  std::vector<size_t> best(n, 0);
  std::vector<double> best_avg(n, kNegInf);
  auto resolve = [&](size_t i) {
    best_avg[i] = kNegInf;
    best[i] = i;
    for (size_t j = 0; j < n; ++j) {
      if (j == i || !alive[j]) continue;
      const double avg = total[i][j] /
                         (static_cast<double>(size[i]) *
                          static_cast<double>(size[j]));
      if (avg > best_avg[i]) {
        best_avg[i] = avg;
        best[i] = j;
      }
    }
  };
  for (size_t i = 0; i < n; ++i) resolve(i);

  size_t live = n;
  while (live > num_clusters) {
    size_t u = SIZE_MAX;
    double u_avg = kNegInf;
    for (size_t i = 0; i < n; ++i) {
      if (alive[i] && best_avg[i] > u_avg) {
        u_avg = best_avg[i];
        u = i;
      }
    }
    if (u == SIZE_MAX) break;
    const size_t v = best[u];

    for (size_t x = 0; x < n; ++x) {
      if (!alive[x] || x == u || x == v) continue;
      total[u][x] += total[v][x];
      total[x][u] = total[u][x];
    }
    size[u] += size[v];
    members[u].insert(members[u].end(), members[v].begin(), members[v].end());
    alive[v] = false;
    --live;

    resolve(u);
    for (size_t x = 0; x < n; ++x) {
      if (!alive[x] || x == u) continue;
      if (best[x] == u || best[x] == v) {
        resolve(x);
      } else {
        const double avg = total[x][u] /
                           (static_cast<double>(size[x]) *
                            static_cast<double>(size[u]));
        if (avg > best_avg[x]) {
          best_avg[x] = avg;
          best[x] = u;
        }
      }
    }
  }

  std::vector<ClusterIndex> assignment(n, kUnassigned);
  ClusterIndex next = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    for (PointIndex p : members[i]) assignment[p] = next;
    ++next;
  }
  Clustering out = Clustering::FromAssignment(std::move(assignment));
  out.SortBySizeDescending();
  return out;
}

}  // namespace rock
