// librock — baselines/centroid_hierarchical.h
//
// The traditional centroid-based agglomerative hierarchical algorithm ROCK
// is compared against (paper §1.1, §5): start with singletons, repeatedly
// merge the two clusters whose centroids (means of the 0/1-binarized
// vectors) are closest in euclidean distance. Includes the paper's outlier
// handling: "eliminating clusters with only one point when the number of
// clusters reduces to 1/3 of the original number".

#ifndef ROCK_BASELINES_CENTROID_HIERARCHICAL_H_
#define ROCK_BASELINES_CENTROID_HIERARCHICAL_H_

#include <vector>

#include "common/status.h"
#include "core/cluster.h"

namespace rock {

/// Options for the centroid-linkage baseline.
struct CentroidHierarchicalOptions {
  /// Desired number of clusters k.
  size_t num_clusters = 2;
  /// Drop singleton clusters when the live count first reaches
  /// `outlier_trigger_fraction × n` (paper §5). Set false to disable.
  bool eliminate_singleton_outliers = true;
  /// The "1/3 of the original number" trigger point.
  double outlier_trigger_fraction = 1.0 / 3.0;
};

/// Result: flat clustering (eliminated singletons are kUnassigned) plus the
/// number of outliers removed.
struct CentroidHierarchicalResult {
  Clustering clustering;
  size_t num_eliminated_singletons = 0;
  size_t num_merges = 0;
};

/// Runs centroid-linkage agglomeration over dense numeric points.
/// O(n²·d) initialization; each merge costs O(c·d) plus re-resolution of
/// invalidated nearest-neighbor entries.
Result<CentroidHierarchicalResult> ClusterCentroidHierarchical(
    const std::vector<std::vector<double>>& points,
    const CentroidHierarchicalOptions& options);

}  // namespace rock

#endif  // ROCK_BASELINES_CENTROID_HIERARCHICAL_H_
