#include "baselines/binarize.h"

namespace rock {

BinarizedData BinarizeRecords(const CategoricalDataset& dataset) {
  const Schema& schema = dataset.schema();
  BinarizedData out;

  // Column layout: attribute-major, value-minor.
  std::vector<size_t> offsets(schema.num_attributes());
  size_t total = 0;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    offsets[a] = total;
    total += schema.DomainSize(a);
    for (size_t v = 0; v < schema.DomainSize(a); ++v) {
      out.column_names.push_back(
          schema.attribute_name(a) + "=" +
          schema.ValueName(a, static_cast<ValueId>(v)));
    }
  }

  out.points.assign(dataset.size(), std::vector<double>(total, 0.0));
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Record& r = dataset.record(i);
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      if (r.IsMissing(a)) continue;
      out.points[i][offsets[a] + r.value(a)] = 1.0;
    }
  }
  return out;
}

BinarizedData BinarizeTransactions(const TransactionDataset& dataset) {
  const size_t total = dataset.items().size();
  BinarizedData out;
  out.column_names.reserve(total);
  for (size_t item = 0; item < total; ++item) {
    out.column_names.push_back(dataset.items().Name(
        static_cast<ItemId>(item)));
  }
  out.points.assign(dataset.size(), std::vector<double>(total, 0.0));
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (ItemId item : dataset.transaction(i)) {
      out.points[i][item] = 1.0;
    }
  }
  return out;
}

}  // namespace rock
