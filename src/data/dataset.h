// librock — data/dataset.h
//
// In-memory dataset containers. Two first-class shapes, mirroring the paper:
//   * TransactionDataset — market-basket data (§3.1.1): item-set rows over a
//     shared item dictionary.
//   * CategoricalDataset — fixed-schema records (§3.1.2) with optional
//     missing values.
// Both optionally carry ground-truth class labels (Republican/Democrat,
// edible/poisonous, cluster id of synthetic transactions) used only for
// evaluation, never by the clustering algorithms.

#ifndef ROCK_DATA_DATASET_H_
#define ROCK_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/dictionary.h"
#include "data/record.h"
#include "data/transaction.h"

namespace rock {

/// Dense ground-truth class id.
using LabelId = uint32_t;

/// Sentinel for rows without a ground-truth class.
inline constexpr LabelId kNoLabel = static_cast<LabelId>(-1);

/// Ground-truth class labels for a dataset (evaluation only).
class LabelSet {
 public:
  /// Interns `name` and records it as the label of the next row.
  void Append(std::string_view name) {
    labels_.push_back(dict_.Intern(name));
  }

  /// Records an unlabeled row.
  void AppendUnlabeled() { labels_.push_back(kNoLabel); }

  /// Label of row `i` (kNoLabel if unlabeled).
  LabelId label(size_t i) const { return labels_[i]; }

  /// Display name of a label id.
  const std::string& Name(LabelId id) const { return dict_.Name(id); }

  /// Number of distinct label names.
  size_t num_classes() const { return dict_.size(); }

  /// Number of labeled rows recorded (== dataset size when labels exist).
  size_t size() const { return labels_.size(); }

  bool empty() const { return labels_.empty(); }

  const std::vector<LabelId>& labels() const { return labels_; }

 private:
  Dictionary dict_;
  std::vector<LabelId> labels_;
};

/// Market-basket dataset: transactions over a shared item dictionary.
class TransactionDataset {
 public:
  /// Interns `item_names` and appends the transaction they form.
  void AddTransaction(const std::vector<std::string>& item_names);

  /// Appends a transaction of already-interned ids.
  void AddTransaction(Transaction tx) {
    transactions_.push_back(std::move(tx));
  }

  /// Number of transactions n.
  size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  /// Transaction `i`.
  const Transaction& transaction(size_t i) const { return transactions_[i]; }

  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }

  /// The shared item dictionary.
  Dictionary& items() { return items_; }
  const Dictionary& items() const { return items_; }

  /// Ground-truth labels (may be empty).
  LabelSet& labels() { return labels_; }
  const LabelSet& labels() const { return labels_; }

  /// Mean number of items per transaction (0 for an empty dataset).
  double MeanTransactionSize() const;

 private:
  Dictionary items_;
  std::vector<Transaction> transactions_;
  LabelSet labels_;
};

/// Fixed-schema categorical dataset (records may have missing values).
class CategoricalDataset {
 public:
  CategoricalDataset() = default;
  explicit CategoricalDataset(Schema schema) : schema_(std::move(schema)) {}

  /// Appends a record of raw string values; `missing_token` entries become
  /// kMissingValue. Fails if the arity does not match the schema.
  Status AddRecord(const std::vector<std::string>& values,
                   std::string_view missing_token = "?");

  /// Appends an already-encoded record; fails on arity mismatch.
  Status AddRecord(Record record);

  /// Number of records n.
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Record `i`.
  const Record& record(size_t i) const { return records_[i]; }

  const std::vector<Record>& records() const { return records_; }

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  LabelSet& labels() { return labels_; }
  const LabelSet& labels() const { return labels_; }

  /// Fraction of (record, attribute) cells that are missing.
  double MissingRate() const;

 private:
  Schema schema_;
  std::vector<Record> records_;
  LabelSet labels_;
};

}  // namespace rock

#endif  // ROCK_DATA_DATASET_H_
