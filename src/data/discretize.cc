#include "data/discretize.h"

#include <algorithm>
#include <cmath>

namespace rock {

Result<Discretizer> Discretizer::Fit(
    const std::vector<std::optional<double>>& values, size_t num_bins,
    BinningScheme scheme) {
  if (num_bins < 2) {
    return Status::InvalidArgument("num_bins must be >= 2");
  }
  std::vector<double> present;
  present.reserve(values.size());
  for (const auto& v : values) {
    if (v.has_value()) {
      if (!std::isfinite(*v)) {
        return Status::InvalidArgument("non-finite value in numeric column");
      }
      present.push_back(*v);
    }
  }
  if (present.empty()) {
    return Status::InvalidArgument("cannot fit a discretizer on no values");
  }
  std::sort(present.begin(), present.end());

  std::vector<double> cuts;
  if (scheme == BinningScheme::kEqualWidth) {
    const double lo = present.front();
    const double hi = present.back();
    if (hi > lo) {
      const double width = (hi - lo) / static_cast<double>(num_bins);
      for (size_t b = 1; b < num_bins; ++b) {
        cuts.push_back(lo + width * static_cast<double>(b));
      }
    }
  } else {
    for (size_t b = 1; b < num_bins; ++b) {
      const size_t idx = b * present.size() / num_bins;
      cuts.push_back(present[std::min(idx, present.size() - 1)]);
    }
  }
  // Collapse duplicate cut points (degenerate data → fewer bins).
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return Discretizer(std::move(cuts));
}

size_t Discretizer::Bin(double value) const {
  // First bin whose upper cut exceeds the value.
  const auto it = std::upper_bound(cuts_.begin(), cuts_.end(), value);
  return static_cast<size_t>(it - cuts_.begin());
}

Result<CategoricalDataset> DiscretizeColumns(const NumericColumns& table,
                                             size_t num_bins,
                                             BinningScheme scheme) {
  if (table.names.size() != table.columns.size()) {
    return Status::InvalidArgument("names/columns size mismatch");
  }
  if (table.columns.empty()) {
    return Status::InvalidArgument("no columns to discretize");
  }
  const size_t rows = table.columns.front().size();
  for (const auto& col : table.columns) {
    if (col.size() != rows) {
      return Status::InvalidArgument("columns have unequal lengths");
    }
  }

  std::vector<Discretizer> discretizers;
  discretizers.reserve(table.columns.size());
  for (const auto& col : table.columns) {
    auto d = Discretizer::Fit(col, num_bins, scheme);
    ROCK_RETURN_IF_ERROR(d.status());
    discretizers.push_back(std::move(*d));
  }

  CategoricalDataset out{Schema(table.names)};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<ValueId> values(table.columns.size(), kMissingValue);
    for (size_t c = 0; c < table.columns.size(); ++c) {
      const auto& cell = table.columns[c][r];
      if (!cell.has_value()) continue;
      values[c] = out.schema().InternValue(
          c, Discretizer::BinLabel(discretizers[c].Bin(*cell)));
    }
    ROCK_RETURN_IF_ERROR(out.AddRecord(Record(std::move(values))));
  }
  return out;
}

}  // namespace rock
