// librock — data/timeseries.h
//
// Time-series → categorical transform (paper §5.1, US Mutual Funds): each
// date becomes one categorical attribute whose value is the *direction* of
// the closing-price change vs the previous business date — "Up", "Down" or
// "No". Dates before a fund's inception (or otherwise unobserved) are
// missing values, which the pairwise-missing similarity in similarity/
// then ignores when comparing two funds.

#ifndef ROCK_DATA_TIMESERIES_H_
#define ROCK_DATA_TIMESERIES_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace rock {

/// One named price series over a shared date axis. Entries with no
/// observation (e.g. before the fund's inception) are std::nullopt.
struct TimeSeries {
  std::string name;                          ///< e.g. ticker symbol
  std::string group;                         ///< ground-truth category, eval only
  std::vector<std::optional<double>> prices; ///< one entry per business date
};

/// A collection of series sharing one date axis of length num_dates.
struct TimeSeriesSet {
  size_t num_dates = 0;
  std::vector<TimeSeries> series;
};

/// Direction-of-change encoding of one price step.
enum class PriceMove { kUp, kDown, kNo };

/// Classifies the move from `prev` to `cur`. Changes with magnitude below
/// `epsilon` (relative to prev) count as "No" change.
PriceMove ClassifyMove(double prev, double cur, double epsilon = 1e-9);

/// Converts price series to a CategoricalDataset with one attribute per
/// date-transition (num_dates − 1 attributes, domain {Up, Down, No}).
/// A transition is missing unless both endpoints are observed.
/// Series groups become ground-truth labels.
Result<CategoricalDataset> TimeSeriesToCategorical(const TimeSeriesSet& set,
                                                   double epsilon = 1e-9);

}  // namespace rock

#endif  // ROCK_DATA_TIMESERIES_H_
