#include "data/arff_reader.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace rock {

namespace {

/// "@attribute name {a, b, c}" → (name, values). Supports quoted names.
struct AttributeDecl {
  std::string name;
  bool nominal = false;
  std::vector<std::string> values;
};

Result<AttributeDecl> ParseAttribute(std::string_view rest, size_t line_no) {
  AttributeDecl decl;
  rest = Trim(rest);
  if (rest.empty()) {
    return Status::Corruption("line " + std::to_string(line_no) +
                              ": @attribute without a name");
  }
  // Attribute name, possibly quoted.
  if (rest.front() == '\'' || rest.front() == '"') {
    const char quote = rest.front();
    const size_t close = rest.find(quote, 1);
    if (close == std::string_view::npos) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": unterminated quoted attribute name");
    }
    decl.name = std::string(rest.substr(1, close - 1));
    rest = Trim(rest.substr(close + 1));
  } else {
    size_t end = 0;
    while (end < rest.size() &&
           !std::isspace(static_cast<unsigned char>(rest[end]))) {
      ++end;
    }
    decl.name = std::string(rest.substr(0, end));
    rest = Trim(rest.substr(end));
  }
  if (rest.empty()) {
    return Status::Corruption("line " + std::to_string(line_no) +
                              ": @attribute '" + decl.name +
                              "' lacks a type");
  }
  if (rest.front() == '{') {
    if (rest.back() != '}') {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": unterminated nominal specification");
    }
    decl.nominal = true;
    for (const std::string& v :
         Split(rest.substr(1, rest.size() - 2), ',')) {
      decl.values.emplace_back(Trim(v));
    }
    if (decl.values.empty() ||
        (decl.values.size() == 1 && decl.values[0].empty())) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": empty nominal domain");
    }
    return decl;
  }
  return Status::InvalidArgument(
      "line " + std::to_string(line_no) + ": attribute '" + decl.name +
      "' has non-nominal type '" + std::string(rest) +
      "' — librock's ARFF reader supports nominal attributes only");
}

}  // namespace

Result<CategoricalDataset> ReadArffString(const std::string& text,
                                          const ArffOptions& options) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  std::vector<AttributeDecl> attributes;
  bool in_data = false;
  bool schema_built = false;
  size_t label_index = SIZE_MAX;
  CategoricalDataset dataset;

  const std::string label_lower = ToLower(options.label_attribute);

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '%') continue;

    if (!in_data) {
      const std::string lower = ToLower(trimmed.substr(
          0, std::min<size_t>(trimmed.size(), 10)));
      if (StartsWith(lower, "@relation")) continue;
      if (StartsWith(lower, "@attribute")) {
        auto decl = ParseAttribute(trimmed.substr(10), line_no);
        ROCK_RETURN_IF_ERROR(decl.status());
        attributes.push_back(std::move(*decl));
        continue;
      }
      if (StartsWith(lower, "@data")) {
        if (attributes.empty()) {
          return Status::Corruption("@data before any @attribute");
        }
        std::vector<std::string> names;
        for (size_t a = 0; a < attributes.size(); ++a) {
          if (!label_lower.empty() &&
              ToLower(attributes[a].name) == label_lower) {
            label_index = a;
          } else {
            names.push_back(attributes[a].name);
          }
        }
        dataset = CategoricalDataset{Schema(std::move(names))};
        schema_built = true;
        in_data = true;
        continue;
      }
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": unrecognized header line");
    }

    // Data row.
    std::vector<std::string> fields = Split(trimmed, ',');
    for (auto& f : fields) f = std::string(Trim(f));
    if (fields.size() != attributes.size()) {
      return Status::Corruption(
          "line " + std::to_string(line_no) + ": got " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(attributes.size()));
    }
    std::vector<std::string> values;
    values.reserve(fields.size());
    std::string label;
    bool has_label = false;
    for (size_t a = 0; a < fields.size(); ++a) {
      // Validate the value against the declared domain (missing exempt).
      if (fields[a] != options.missing_token) {
        bool known = false;
        for (const std::string& v : attributes[a].values) {
          if (v == fields[a]) known = true;
        }
        if (!known) {
          return Status::Corruption("line " + std::to_string(line_no) +
                                    ": value '" + fields[a] +
                                    "' not in the domain of attribute '" +
                                    attributes[a].name + "'");
        }
      }
      if (a == label_index) {
        label = fields[a];
        has_label = true;
      } else {
        values.push_back(fields[a]);
      }
    }
    ROCK_RETURN_IF_ERROR(dataset.AddRecord(values, options.missing_token));
    if (has_label) {
      if (label == options.missing_token) {
        dataset.labels().AppendUnlabeled();
      } else {
        dataset.labels().Append(label);
      }
    }
  }

  if (!schema_built) {
    return Status::InvalidArgument("ARFF input contains no @data section");
  }
  return dataset;
}

Result<CategoricalDataset> ReadArffFile(const std::string& path,
                                        const ArffOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on '" + path + "'");
  return ReadArffString(buf.str(), options);
}

}  // namespace rock
