#include "data/dictionary.h"

namespace rock {

ItemId Dictionary::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  ItemId id = static_cast<ItemId>(names_.size());
  names_.emplace_back(s);
  index_.emplace(names_.back(), id);
  return id;
}

ItemId Dictionary::Lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? kNoItem : it->second;
}

}  // namespace rock
