#include "data/record.h"

namespace rock {

Schema::Schema(std::vector<std::string> attribute_names)
    : attribute_names_(std::move(attribute_names)),
      domains_(attribute_names_.size()) {}

size_t Schema::TotalDomainSize() const {
  size_t total = 0;
  for (const auto& d : domains_) total += d.size();
  return total;
}

size_t Record::NumPresent() const {
  size_t n = 0;
  for (ValueId v : values_) {
    if (v != kMissingValue) ++n;
  }
  return n;
}

}  // namespace rock
