// librock — data/arff_reader.h
//
// Reader for Weka ARFF files restricted to the subset categorical
// clustering needs: nominal attributes ("@attribute name {a,b,c}"),
// '?' missing values, '%' comments, a designated class attribute for
// ground-truth labels. Numeric/string/date attributes are rejected with a
// clear error — binarize or discretize upstream.

#ifndef ROCK_DATA_ARFF_READER_H_
#define ROCK_DATA_ARFF_READER_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace rock {

/// Options controlling ARFF → CategoricalDataset parsing.
struct ArffOptions {
  /// Name of the attribute holding ground-truth class labels
  /// (case-insensitive). Empty = no label attribute; "class" by default,
  /// falling back to "no labels" when absent.
  std::string label_attribute = "class";
  /// Token denoting a missing value.
  std::string missing_token = "?";
};

/// Parses ARFF text into a categorical dataset.
Result<CategoricalDataset> ReadArffString(const std::string& text,
                                          const ArffOptions& options = {});

/// Reads and parses an ARFF file.
Result<CategoricalDataset> ReadArffFile(const std::string& path,
                                        const ArffOptions& options = {});

}  // namespace rock

#endif  // ROCK_DATA_ARFF_READER_H_
