#include "data/disk_store.h"

#include <cstring>

namespace rock {

namespace {

constexpr uint64_t kMagic = 0x524f434b53544f52ULL;  // "ROCKSTOR"
constexpr uint32_t kVersion = 1;
constexpr long kCountOffset = sizeof(uint64_t) + sizeof(uint32_t);

// Sanity bound on items-per-transaction to catch corrupt length fields
// before they turn into huge allocations.
constexpr uint32_t kMaxTransactionItems = 1u << 24;

Status WriteRaw(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::IOError("short write to transaction store");
  }
  return Status::OK();
}

Status ReadRaw(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::Corruption("short read from transaction store");
  }
  return Status::OK();
}

}  // namespace

Result<TransactionStoreWriter> TransactionStoreWriter::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create '" + path + "'");
  }
  TransactionStoreWriter writer(f);
  uint64_t count_placeholder = 0;
  Status s = WriteRaw(f, &kMagic, sizeof(kMagic));
  if (s.ok()) s = WriteRaw(f, &kVersion, sizeof(kVersion));
  if (s.ok()) s = WriteRaw(f, &count_placeholder, sizeof(count_placeholder));
  if (!s.ok()) return s;
  return writer;
}

TransactionStoreWriter::~TransactionStoreWriter() = default;

Status TransactionStoreWriter::Append(const Transaction& tx, LabelId label) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish");
  }
  std::FILE* f = file_.get();
  uint32_t n = static_cast<uint32_t>(tx.size());
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &label, sizeof(label)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &n, sizeof(n)));
  if (n > 0) {
    ROCK_RETURN_IF_ERROR(
        WriteRaw(f, tx.items().data(), n * sizeof(ItemId)));
  }
  ++count_;
  return Status::OK();
}

Status TransactionStoreWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  std::FILE* f = file_.get();
  if (std::fseek(f, kCountOffset, SEEK_SET) != 0) {
    return Status::IOError("seek failure finalizing store");
  }
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &count_, sizeof(count_)));
  if (std::fflush(f) != 0) {
    return Status::IOError("flush failure finalizing store");
  }
  file_.reset();
  return Status::OK();
}

Result<TransactionStoreReader> TransactionStoreReader::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  TransactionStoreReader reader(f);
  uint64_t magic = 0;
  uint32_t version = 0;
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &magic, sizeof(magic)));
  if (magic != kMagic) {
    return Status::Corruption("'" + path + "' is not a transaction store");
  }
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &version, sizeof(version)));
  if (version != kVersion) {
    return Status::Corruption("unsupported store version " +
                              std::to_string(version));
  }
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &reader.count_, sizeof(reader.count_)));
  return reader;
}

bool TransactionStoreReader::Next() {
  if (!status_.ok() || read_ >= count_) return false;
  std::FILE* f = file_.get();
  uint32_t n = 0;
  status_ = ReadRaw(f, &label_, sizeof(label_));
  if (status_.ok()) status_ = ReadRaw(f, &n, sizeof(n));
  if (status_.ok() && n > kMaxTransactionItems) {
    status_ = Status::Corruption("implausible transaction length " +
                                 std::to_string(n));
  }
  if (!status_.ok()) return false;
  std::vector<ItemId> items(n);
  if (n > 0) {
    status_ = ReadRaw(f, items.data(), n * sizeof(ItemId));
    if (!status_.ok()) return false;
  }
  current_ = Transaction(std::move(items));
  ++read_;
  return true;
}

Status TransactionStoreReader::Rewind() {
  std::FILE* f = file_.get();
  if (std::fseek(f, kCountOffset + static_cast<long>(sizeof(uint64_t)),
                 SEEK_SET) != 0) {
    return Status::IOError("seek failure rewinding store");
  }
  read_ = 0;
  status_ = Status::OK();
  return Status::OK();
}

Status WriteDatasetToStore(const TransactionDataset& dataset,
                           const std::string& path) {
  auto writer = TransactionStoreWriter::Open(path);
  ROCK_RETURN_IF_ERROR(writer.status());
  for (size_t i = 0; i < dataset.size(); ++i) {
    LabelId label =
        dataset.labels().empty() ? kNoLabel : dataset.labels().label(i);
    ROCK_RETURN_IF_ERROR(writer->Append(dataset.transaction(i), label));
  }
  return writer->Finish();
}

Result<TransactionDataset> ReadStoreToDataset(const std::string& path,
                                              const LabelSet* label_names) {
  auto reader = TransactionStoreReader::Open(path);
  ROCK_RETURN_IF_ERROR(reader.status());
  TransactionDataset out;
  while (reader->Next()) {
    out.AddTransaction(reader->transaction());
    LabelId l = reader->label();
    if (l == kNoLabel) {
      out.labels().AppendUnlabeled();
    } else if (label_names != nullptr && l < label_names->num_classes()) {
      out.labels().Append(label_names->Name(l));
    } else {
      out.labels().Append("class" + std::to_string(l));
    }
  }
  ROCK_RETURN_IF_ERROR(reader->status());
  return out;
}

}  // namespace rock
