#include "data/disk_store.h"

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"

namespace rock {

namespace {

constexpr uint64_t kMagic = 0x524f434b53544f52ULL;  // "ROCKSTOR"
// Version 2 added the header crc32 over the record bytes.
constexpr uint32_t kVersion = 2;
constexpr long kCountOffset = sizeof(uint64_t) + sizeof(uint32_t);
constexpr long kCrcOffset = kCountOffset + static_cast<long>(sizeof(uint64_t));
constexpr long kHeaderSize = kCrcOffset + static_cast<long>(sizeof(uint32_t));

// Sanity bound on items-per-transaction to catch corrupt length fields
// before they turn into huge allocations.
constexpr uint32_t kMaxTransactionItems = 1u << 24;

Status WriteRaw(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::IOError("short write to transaction store");
  }
  return Status::OK();
}

Status ReadRaw(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::Corruption("short read from transaction store");
  }
  return Status::OK();
}

/// Validates magic + version at the current position and reads the header
/// record count and checksum into *count / *crc.
Status ReadHeader(std::FILE* f, const std::string& path, uint64_t* count,
                  uint32_t* crc) {
  uint64_t magic = 0;
  uint32_t version = 0;
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &magic, sizeof(magic)));
  if (magic != kMagic) {
    return Status::Corruption("'" + path + "' is not a transaction store");
  }
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &version, sizeof(version)));
  if (version != kVersion) {
    return Status::Corruption("unsupported store version " +
                              std::to_string(version));
  }
  ROCK_RETURN_IF_ERROR(ReadRaw(f, count, sizeof(*count)));
  return ReadRaw(f, crc, sizeof(*crc));
}

}  // namespace

Result<TransactionStoreWriter> TransactionStoreWriter::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create '" + path + "'");
  }
  TransactionStoreWriter writer(f);
  uint64_t count_placeholder = 0;
  uint32_t crc_placeholder = 0;
  Status s = WriteRaw(f, &kMagic, sizeof(kMagic));
  if (s.ok()) s = WriteRaw(f, &kVersion, sizeof(kVersion));
  if (s.ok()) s = WriteRaw(f, &count_placeholder, sizeof(count_placeholder));
  if (s.ok()) s = WriteRaw(f, &crc_placeholder, sizeof(crc_placeholder));
  if (!s.ok()) return s;
  return writer;
}

TransactionStoreWriter::~TransactionStoreWriter() = default;

Status TransactionStoreWriter::Append(const Transaction& tx, LabelId label) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish");
  }
  std::FILE* f = file_.get();
  uint32_t n = static_cast<uint32_t>(tx.size());
  // Failpoint "store.append": the torn variant persists a prefix of the
  // item payload, leaving the file exactly as a writer crash would.
  ROCK_RETURN_IF_ERROR(
      fail::ConsultWrite("store.append", f, tx.items().data(),
                         static_cast<size_t>(n) * sizeof(ItemId)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &label, sizeof(label)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &n, sizeof(n)));
  if (n > 0) {
    ROCK_RETURN_IF_ERROR(
        WriteRaw(f, tx.items().data(), n * sizeof(ItemId)));
  }
  crc_.Update(&label, sizeof(label));
  crc_.Update(&n, sizeof(n));
  if (n > 0) crc_.Update(tx.items().data(), n * sizeof(ItemId));
  ++count_;
  return Status::OK();
}

Status TransactionStoreWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  std::FILE* f = file_.get();
  if (std::fseek(f, kCountOffset, SEEK_SET) != 0) {
    return Status::IOError("seek failure finalizing store");
  }
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &count_, sizeof(count_)));
  const uint32_t crc = crc_.value();
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &crc, sizeof(crc)));
  if (std::fflush(f) != 0) {
    return Status::IOError("flush failure finalizing store");
  }
  file_.reset();
  return Status::OK();
}

Result<TransactionStoreReader> TransactionStoreReader::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  TransactionStoreReader reader(f);
  ROCK_RETURN_IF_ERROR(fail::ConsultRead("store.open"));
  ROCK_RETURN_IF_ERROR(ReadHeader(f, path, &reader.count_,
                                  &reader.expected_crc_));
  reader.start_offset_ = kHeaderSize;
  reader.verify_full_ = true;
  return reader;
}

Result<TransactionStoreReader> TransactionStoreReader::OpenRange(
    const std::string& path, const StoreShardRange& range) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  TransactionStoreReader reader(f);
  ROCK_RETURN_IF_ERROR(fail::ConsultRead("store.open"));
  uint64_t header_count = 0;
  uint32_t header_crc = 0;
  ROCK_RETURN_IF_ERROR(ReadHeader(f, path, &header_count, &header_crc));
  if (range.byte_offset < static_cast<uint64_t>(kHeaderSize) ||
      range.first_row + range.num_rows > header_count) {
    return Status::InvalidArgument("shard range does not fit the store");
  }
  if (std::fseek(f, static_cast<long>(range.byte_offset), SEEK_SET) != 0) {
    return Status::IOError("seek failure opening store range");
  }
  reader.count_ = range.num_rows;
  reader.start_offset_ = static_cast<long>(range.byte_offset);
  return reader;
}

Result<std::vector<StoreShardRange>> TransactionStoreReader::PlanShards(
    const std::string& path, uint64_t max_shards) {
  if (max_shards == 0) {
    return Status::InvalidArgument("max_shards must be > 0");
  }
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::FILE* f = file.get();
  ROCK_RETURN_IF_ERROR(fail::ConsultRead("store.open"));
  uint64_t count = 0;
  uint32_t crc = 0;
  ROCK_RETURN_IF_ERROR(ReadHeader(f, path, &count, &crc));

  std::vector<StoreShardRange> shards;
  if (count == 0) return shards;
  const uint64_t num_shards = std::min<uint64_t>(max_shards, count);
  // Rows r in [s·count/S, (s+1)·count/S) go to shard s: near-equal ranges
  // whose boundaries we resolve to byte offsets during one header-skipping
  // scan of the record stream.
  uint64_t offset = static_cast<uint64_t>(kHeaderSize);
  uint64_t next_shard = 0;
  for (uint64_t row = 0; row < count; ++row) {
    if (row == next_shard * count / num_shards) {
      const uint64_t end = (next_shard + 1) * count / num_shards;
      shards.push_back(StoreShardRange{offset, row, end - row});
      ++next_shard;
    }
    uint32_t n = 0;
    if (std::fseek(f, static_cast<long>(offset + sizeof(LabelId)),
                   SEEK_SET) != 0) {
      return Status::IOError("seek failure planning store shards");
    }
    ROCK_RETURN_IF_ERROR(ReadRaw(f, &n, sizeof(n)));
    if (n > kMaxTransactionItems) {
      return Status::Corruption("implausible transaction length " +
                                std::to_string(n));
    }
    offset += sizeof(LabelId) + sizeof(uint32_t) +
              static_cast<uint64_t>(n) * sizeof(ItemId);
  }
  return shards;
}

bool TransactionStoreReader::Next() {
  if (!status_.ok()) return false;
  if (read_ >= count_) {
    // Exhausted. Whole-file readers verify the header checksum over every
    // record byte and reject trailing data, once, so corruption anywhere in
    // the payload — and garbage appended past it — surfaces as a non-OK
    // status instead of a silently wrong dataset.
    if (verify_full_ && !end_checked_) {
      end_checked_ = true;
      if (crc_.value() != expected_crc_) {
        status_ = Status::Corruption(
            "transaction store checksum mismatch (bit rot or torn write)");
      } else if (std::fgetc(file_.get()) != EOF) {
        status_ = Status::Corruption(
            "trailing data after the last transaction store record");
      }
    }
    return false;
  }
  if (Status injected = fail::ConsultRead("store.read"); !injected.ok()) {
    status_ = std::move(injected);
    return false;
  }
  std::FILE* f = file_.get();
  uint32_t n = 0;
  status_ = ReadRaw(f, &label_, sizeof(label_));
  if (status_.ok()) status_ = ReadRaw(f, &n, sizeof(n));
  if (status_.ok() && n > kMaxTransactionItems) {
    status_ = Status::Corruption("implausible transaction length " +
                                 std::to_string(n));
  }
  if (!status_.ok()) return false;
  std::vector<ItemId> items(n);
  if (n > 0) {
    status_ = ReadRaw(f, items.data(), n * sizeof(ItemId));
    if (!status_.ok()) return false;
  }
  if (verify_full_) {
    crc_.Update(&label_, sizeof(label_));
    crc_.Update(&n, sizeof(n));
    if (n > 0) crc_.Update(items.data(), n * sizeof(ItemId));
  }
  current_ = Transaction(std::move(items));
  ++read_;
  return true;
}

Status TransactionStoreReader::Rewind() {
  std::FILE* f = file_.get();
  if (std::fseek(f, start_offset_, SEEK_SET) != 0) {
    return Status::IOError("seek failure rewinding store");
  }
  read_ = 0;
  status_ = Status::OK();
  crc_.Reset();
  end_checked_ = false;
  return Status::OK();
}

Status WriteDatasetToStore(const TransactionDataset& dataset,
                           const std::string& path) {
  auto writer = TransactionStoreWriter::Open(path);
  ROCK_RETURN_IF_ERROR(writer.status());
  for (size_t i = 0; i < dataset.size(); ++i) {
    LabelId label =
        dataset.labels().empty() ? kNoLabel : dataset.labels().label(i);
    ROCK_RETURN_IF_ERROR(writer->Append(dataset.transaction(i), label));
  }
  return writer->Finish();
}

Result<TransactionDataset> ReadStoreToDataset(const std::string& path,
                                              const LabelSet* label_names) {
  auto reader = TransactionStoreReader::Open(path);
  ROCK_RETURN_IF_ERROR(reader.status());
  TransactionDataset out;
  while (reader->Next()) {
    out.AddTransaction(reader->transaction());
    LabelId l = reader->label();
    if (l == kNoLabel) {
      out.labels().AppendUnlabeled();
    } else if (label_names != nullptr && l < label_names->num_classes()) {
      out.labels().Append(label_names->Name(l));
    } else {
      out.labels().Append("class" + std::to_string(l));
    }
  }
  ROCK_RETURN_IF_ERROR(reader->status());
  return out;
}

}  // namespace rock
