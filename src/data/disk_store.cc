#include "data/disk_store.h"

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"

namespace rock {

namespace {

constexpr uint64_t kMagic = 0x524f434b53544f52ULL;  // "ROCKSTOR"
// Version 2 added the header crc32 over the record bytes; version 3 added
// the generation / base_count append stamps. Writers emit version 3;
// readers accept both (a v2 header reads as generation 0).
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 2;
constexpr long kCountOffset = sizeof(uint64_t) + sizeof(uint32_t);
constexpr long kCrcOffset = kCountOffset + static_cast<long>(sizeof(uint64_t));
constexpr long kHeaderSizeV2 = kCrcOffset + static_cast<long>(sizeof(uint32_t));
constexpr long kHeaderSize = kHeaderSizeV2 + 2 * static_cast<long>(sizeof(uint64_t));

// Sanity bound on items-per-transaction to catch corrupt length fields
// before they turn into huge allocations.
constexpr uint32_t kMaxTransactionItems = 1u << 24;

Status WriteRaw(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::IOError("short write to transaction store");
  }
  return Status::OK();
}

Status ReadRaw(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::Corruption("short read from transaction store");
  }
  return Status::OK();
}

/// Parsed store header: everything before the first record.
struct StoreHeader {
  uint64_t count = 0;
  uint32_t crc = 0;
  uint64_t generation = 0;
  uint64_t base_count = 0;
  long header_size = kHeaderSize;  ///< byte offset of the first record
};

/// Validates magic + version at the current position and reads the header
/// fields. Version-2 files carry no append stamps: generation reads as 0
/// and base_count as the record count.
Status ReadHeader(std::FILE* f, const std::string& path, StoreHeader* h) {
  uint64_t magic = 0;
  uint32_t version = 0;
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &magic, sizeof(magic)));
  if (magic != kMagic) {
    return Status::Corruption("'" + path + "' is not a transaction store");
  }
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &version, sizeof(version)));
  if (version < kMinVersion || version > kVersion) {
    return Status::Corruption("unsupported store version " +
                              std::to_string(version));
  }
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &h->count, sizeof(h->count)));
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &h->crc, sizeof(h->crc)));
  if (version >= 3) {
    ROCK_RETURN_IF_ERROR(ReadRaw(f, &h->generation, sizeof(h->generation)));
    ROCK_RETURN_IF_ERROR(ReadRaw(f, &h->base_count, sizeof(h->base_count)));
    if (h->base_count > h->count) {
      return Status::Corruption("implausible store base count");
    }
    h->header_size = kHeaderSize;
  } else {
    h->generation = 0;
    h->base_count = h->count;
    h->header_size = kHeaderSizeV2;
  }
  return Status::OK();
}

}  // namespace

Result<TransactionStoreWriter> TransactionStoreWriter::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create '" + path + "'");
  }
  TransactionStoreWriter writer(f);
  uint64_t count_placeholder = 0;
  uint32_t crc_placeholder = 0;
  uint64_t generation = 0;
  uint64_t base_placeholder = 0;
  Status s = WriteRaw(f, &kMagic, sizeof(kMagic));
  if (s.ok()) s = WriteRaw(f, &kVersion, sizeof(kVersion));
  if (s.ok()) s = WriteRaw(f, &count_placeholder, sizeof(count_placeholder));
  if (s.ok()) s = WriteRaw(f, &crc_placeholder, sizeof(crc_placeholder));
  if (s.ok()) s = WriteRaw(f, &generation, sizeof(generation));
  if (s.ok()) s = WriteRaw(f, &base_placeholder, sizeof(base_placeholder));
  if (!s.ok()) return s;
  return writer;
}

TransactionStoreWriter::~TransactionStoreWriter() = default;

Status TransactionStoreWriter::Append(const Transaction& tx, LabelId label) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish");
  }
  std::FILE* f = file_.get();
  uint32_t n = static_cast<uint32_t>(tx.size());
  // Failpoint "store.append": the torn variant persists a prefix of the
  // item payload, leaving the file exactly as a writer crash would.
  ROCK_RETURN_IF_ERROR(
      fail::ConsultWrite("store.append", f, tx.items().data(),
                         static_cast<size_t>(n) * sizeof(ItemId)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &label, sizeof(label)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &n, sizeof(n)));
  if (n > 0) {
    ROCK_RETURN_IF_ERROR(
        WriteRaw(f, tx.items().data(), n * sizeof(ItemId)));
  }
  crc_.Update(&label, sizeof(label));
  crc_.Update(&n, sizeof(n));
  if (n > 0) crc_.Update(tx.items().data(), n * sizeof(ItemId));
  ++count_;
  return Status::OK();
}

Status TransactionStoreWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  std::FILE* f = file_.get();
  if (std::fseek(f, kCountOffset, SEEK_SET) != 0) {
    return Status::IOError("seek failure finalizing store");
  }
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &count_, sizeof(count_)));
  const uint32_t crc = crc_.value();
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &crc, sizeof(crc)));
  // Generation stays 0 for a fresh store; base_count = count means "no
  // appended batch yet" (the count/crc/generation/base fields are
  // contiguous, so this continues the same back-patch write).
  const uint64_t generation = 0;
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &generation, sizeof(generation)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &count_, sizeof(count_)));
  if (std::fflush(f) != 0) {
    return Status::IOError("flush failure finalizing store");
  }
  file_.reset();
  return Status::OK();
}

Result<TransactionStoreReader> TransactionStoreReader::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  TransactionStoreReader reader(f);
  ROCK_RETURN_IF_ERROR(fail::ConsultRead("store.open"));
  StoreHeader h;
  ROCK_RETURN_IF_ERROR(ReadHeader(f, path, &h));
  reader.count_ = h.count;
  reader.expected_crc_ = h.crc;
  reader.generation_ = h.generation;
  reader.base_count_ = h.base_count;
  reader.start_offset_ = h.header_size;
  reader.verify_full_ = true;
  return reader;
}

Result<TransactionStoreReader> TransactionStoreReader::OpenRange(
    const std::string& path, const StoreShardRange& range) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  TransactionStoreReader reader(f);
  ROCK_RETURN_IF_ERROR(fail::ConsultRead("store.open"));
  StoreHeader h;
  ROCK_RETURN_IF_ERROR(ReadHeader(f, path, &h));
  if (range.byte_offset < static_cast<uint64_t>(h.header_size) ||
      range.first_row + range.num_rows > h.count) {
    return Status::InvalidArgument("shard range does not fit the store");
  }
  if (std::fseek(f, static_cast<long>(range.byte_offset), SEEK_SET) != 0) {
    return Status::IOError("seek failure opening store range");
  }
  reader.count_ = range.num_rows;
  reader.generation_ = h.generation;
  reader.base_count_ = h.base_count;
  reader.start_offset_ = static_cast<long>(range.byte_offset);
  return reader;
}

Result<std::vector<StoreShardRange>> TransactionStoreReader::PlanShards(
    const std::string& path, uint64_t max_shards) {
  if (max_shards == 0) {
    return Status::InvalidArgument("max_shards must be > 0");
  }
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::FILE* f = file.get();
  ROCK_RETURN_IF_ERROR(fail::ConsultRead("store.open"));
  StoreHeader h;
  ROCK_RETURN_IF_ERROR(ReadHeader(f, path, &h));
  const uint64_t count = h.count;

  std::vector<StoreShardRange> shards;
  if (count == 0) return shards;
  const uint64_t num_shards = std::min<uint64_t>(max_shards, count);
  // Rows r in [s·count/S, (s+1)·count/S) go to shard s: near-equal ranges
  // whose boundaries we resolve to byte offsets during one header-skipping
  // scan of the record stream.
  uint64_t offset = static_cast<uint64_t>(h.header_size);
  uint64_t next_shard = 0;
  for (uint64_t row = 0; row < count; ++row) {
    if (row == next_shard * count / num_shards) {
      const uint64_t end = (next_shard + 1) * count / num_shards;
      shards.push_back(StoreShardRange{offset, row, end - row});
      ++next_shard;
    }
    uint32_t n = 0;
    if (std::fseek(f, static_cast<long>(offset + sizeof(LabelId)),
                   SEEK_SET) != 0) {
      return Status::IOError("seek failure planning store shards");
    }
    ROCK_RETURN_IF_ERROR(ReadRaw(f, &n, sizeof(n)));
    if (n > kMaxTransactionItems) {
      return Status::Corruption("implausible transaction length " +
                                std::to_string(n));
    }
    offset += sizeof(LabelId) + sizeof(uint32_t) +
              static_cast<uint64_t>(n) * sizeof(ItemId);
  }
  return shards;
}

bool TransactionStoreReader::Next() {
  if (!status_.ok()) return false;
  if (read_ >= count_) {
    // Exhausted. Whole-file readers verify the header checksum over every
    // record byte and reject trailing data, once, so corruption anywhere in
    // the payload — and garbage appended past it — surfaces as a non-OK
    // status instead of a silently wrong dataset.
    if (verify_full_ && !end_checked_) {
      end_checked_ = true;
      if (crc_.value() != expected_crc_) {
        status_ = Status::Corruption(
            "transaction store checksum mismatch (bit rot or torn write)");
      } else if (std::fgetc(file_.get()) != EOF) {
        status_ = Status::Corruption(
            "trailing data after the last transaction store record");
      }
    }
    return false;
  }
  if (Status injected = fail::ConsultRead("store.read"); !injected.ok()) {
    status_ = std::move(injected);
    return false;
  }
  std::FILE* f = file_.get();
  uint32_t n = 0;
  status_ = ReadRaw(f, &label_, sizeof(label_));
  if (status_.ok()) status_ = ReadRaw(f, &n, sizeof(n));
  if (status_.ok() && n > kMaxTransactionItems) {
    status_ = Status::Corruption("implausible transaction length " +
                                 std::to_string(n));
  }
  if (!status_.ok()) return false;
  std::vector<ItemId> items(n);
  if (n > 0) {
    status_ = ReadRaw(f, items.data(), n * sizeof(ItemId));
    if (!status_.ok()) return false;
  }
  if (verify_full_) {
    crc_.Update(&label_, sizeof(label_));
    crc_.Update(&n, sizeof(n));
    if (n > 0) crc_.Update(items.data(), n * sizeof(ItemId));
  }
  current_ = Transaction(std::move(items));
  ++read_;
  return true;
}

Status TransactionStoreReader::Rewind() {
  std::FILE* f = file_.get();
  if (std::fseek(f, start_offset_, SEEK_SET) != 0) {
    return Status::IOError("seek failure rewinding store");
  }
  read_ = 0;
  status_ = Status::OK();
  crc_.Reset();
  end_checked_ = false;
  return Status::OK();
}

namespace {

/// The append body: everything up to (but not including) the commit
/// rename. Split out so AppendToStore can clean up the tmp file on any
/// non-crash failure.
Status BuildAppendTmp(const std::string& path, const std::string& tmp,
                      const std::vector<Transaction>& rows,
                      const std::vector<LabelId>* labels,
                      StoreAppendResult* result) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> src(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (src == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  ROCK_RETURN_IF_ERROR(fail::ConsultRead("store.open"));
  StoreHeader h;
  ROCK_RETURN_IF_ERROR(ReadHeader(src.get(), path, &h));

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> dst(
      std::fopen(tmp.c_str(), "wb"), &std::fclose);
  if (dst == nullptr) {
    return Status::IOError("cannot create '" + tmp + "'");
  }
  std::FILE* out = dst.get();
  const uint64_t zero64 = 0;
  const uint32_t zero32 = 0;
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &kMagic, sizeof(kMagic)));
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &kVersion, sizeof(kVersion)));
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &zero64, sizeof(zero64)));  // count
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &zero32, sizeof(zero32)));  // crc
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &zero64, sizeof(zero64)));  // generation
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &zero64, sizeof(zero64)));  // base_count

  // Stream-copy the existing records, re-accumulating their CRC: a store
  // that fails its own checksum is refused, never extended — appending to
  // rotted bytes would launder the corruption into a "valid" file.
  Crc32Accumulator crc;
  char buf[1 << 16];
  for (;;) {
    const size_t n = std::fread(buf, 1, sizeof(buf), src.get());
    if (n == 0) break;
    crc.Update(buf, n);
    ROCK_RETURN_IF_ERROR(WriteRaw(out, buf, n));
  }
  if (std::ferror(src.get()) != 0) {
    return Status::IOError("read failure copying '" + path + "'");
  }
  if (crc.value() != h.crc) {
    return Status::Corruption(
        "transaction store checksum mismatch (bit rot or torn write); "
        "refusing to append to '" + path + "'");
  }

  // Append the new records through the same failpoint site the writer
  // uses, continuing the running CRC.
  for (size_t i = 0; i < rows.size(); ++i) {
    const Transaction& tx = rows[i];
    const LabelId label = labels == nullptr ? kNoLabel : (*labels)[i];
    const uint32_t n = static_cast<uint32_t>(tx.size());
    ROCK_RETURN_IF_ERROR(
        fail::ConsultWrite("store.append", out, tx.items().data(),
                           static_cast<size_t>(n) * sizeof(ItemId)));
    ROCK_RETURN_IF_ERROR(WriteRaw(out, &label, sizeof(label)));
    ROCK_RETURN_IF_ERROR(WriteRaw(out, &n, sizeof(n)));
    if (n > 0) {
      ROCK_RETURN_IF_ERROR(WriteRaw(out, tx.items().data(),
                                    n * sizeof(ItemId)));
    }
    crc.Update(&label, sizeof(label));
    crc.Update(&n, sizeof(n));
    if (n > 0) crc.Update(tx.items().data(), n * sizeof(ItemId));
  }

  // Back-patch the header: count/crc/generation/base_count are contiguous.
  result->base_count = h.count;
  result->new_count = h.count + rows.size();
  result->generation = h.generation + 1;
  if (std::fseek(out, kCountOffset, SEEK_SET) != 0) {
    return Status::IOError("seek failure finalizing append");
  }
  const uint32_t final_crc = crc.value();
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &result->new_count,
                                sizeof(result->new_count)));
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &final_crc, sizeof(final_crc)));
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &result->generation,
                                sizeof(result->generation)));
  ROCK_RETURN_IF_ERROR(WriteRaw(out, &result->base_count,
                                sizeof(result->base_count)));
  if (std::fflush(out) != 0) {
    return Status::IOError("flush failure finalizing append");
  }
  return Status::OK();
}

}  // namespace

Result<StoreAppendResult> AppendToStore(const std::string& path,
                                        const std::vector<Transaction>& rows,
                                        const std::vector<LabelId>* labels) {
  if (rows.empty()) {
    return Status::InvalidArgument("nothing to append");
  }
  if (labels != nullptr && labels->size() != rows.size()) {
    return Status::InvalidArgument("labels do not cover the appended rows");
  }
  const std::string tmp = path + ".append.tmp";
  StoreAppendResult result;
  Status s = BuildAppendTmp(path, tmp, rows, labels, &result);
  if (s.ok()) {
    // Commit point: "store.commit" models a crash between finishing the
    // tmp file and renaming it — the original store stays byte-identical
    // either way, so a retried append starts from the same state.
    switch (fail::Consult("store.commit")) {
      case fail::Action::kNone:
        break;
      case fail::Action::kCrash:
        return fail::InjectedCrash("store.commit");
      case fail::Action::kError:
      case fail::Action::kShortRead:
      case fail::Action::kTornWrite:
        s = fail::InjectedError("store.commit");
        break;
    }
  }
  if (s.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    s = Status::IOError("cannot rename '" + tmp + "' over '" + path + "'");
  }
  if (!s.ok()) {
    // A live process cleans its tmp up; a simulated crash cannot (the tmp
    // a real crash leaves behind is exactly what the fault tests verify a
    // retry tolerates).
    if (!fail::IsInjectedCrash(s)) std::remove(tmp.c_str());
    return s;
  }
  return result;
}

Status WriteDatasetToStore(const TransactionDataset& dataset,
                           const std::string& path) {
  auto writer = TransactionStoreWriter::Open(path);
  ROCK_RETURN_IF_ERROR(writer.status());
  for (size_t i = 0; i < dataset.size(); ++i) {
    LabelId label =
        dataset.labels().empty() ? kNoLabel : dataset.labels().label(i);
    ROCK_RETURN_IF_ERROR(writer->Append(dataset.transaction(i), label));
  }
  return writer->Finish();
}

Result<TransactionDataset> ReadStoreToDataset(const std::string& path,
                                              const LabelSet* label_names) {
  auto reader = TransactionStoreReader::Open(path);
  ROCK_RETURN_IF_ERROR(reader.status());
  TransactionDataset out;
  while (reader->Next()) {
    out.AddTransaction(reader->transaction());
    LabelId l = reader->label();
    if (l == kNoLabel) {
      out.labels().AppendUnlabeled();
    } else if (label_names != nullptr && l < label_names->num_classes()) {
      out.labels().Append(label_names->Name(l));
    } else {
      out.labels().Append("class" + std::to_string(l));
    }
  }
  ROCK_RETURN_IF_ERROR(reader->status());
  return out;
}

}  // namespace rock
