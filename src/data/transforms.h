// librock — data/transforms.h
//
// Dataset transformations from the paper:
//   * RecordsToTransactions (§3.1.2): "Corresponding to every attribute A and
//     value v in its domain, we introduce an item A.v" — missing values are
//     simply omitted. This lets the Jaccard machinery run on categorical
//     records.
//   * The pairwise-missing variant used for time-series (§3.1.2, mutual
//     funds): when comparing two records, only attributes present in *both*
//     are considered. That similarity lives in similarity/ (it needs record
//     pairs, not a static transaction view); the transform here is the static
//     one.

#ifndef ROCK_DATA_TRANSFORMS_H_
#define ROCK_DATA_TRANSFORMS_H_

#include "data/dataset.h"

namespace rock {

/// Converts categorical records to transactions over "A.v" items, omitting
/// missing values. Labels are carried over.
TransactionDataset RecordsToTransactions(const CategoricalDataset& dataset);

/// Builds the transaction for a single record against an existing item
/// dictionary (items named "<attr>=<value>"). Used by streaming paths.
Transaction RecordToTransaction(const Schema& schema, const Record& record,
                                Dictionary& items);

}  // namespace rock

#endif  // ROCK_DATA_TRANSFORMS_H_
