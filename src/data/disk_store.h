// librock — data/disk_store.h
//
// On-disk transaction store backing the paper's Figure 2 pipeline: the
// database lives on disk; ROCK draws a random sample into memory, clusters
// it, and then *streams* the remaining data from disk through the labeling
// phase without ever materializing the whole database in memory.
//
// Format (little-endian, fixed magic + version header):
//   [u64 magic][u32 version][u64 count]
//   count × { u32 label; u32 n; n × u32 item; }
// `label` is the ground-truth class id (kNoLabel when absent) — carried for
// evaluation (Table 6 counts misclassified transactions), never consulted by
// the clustering code.

#ifndef ROCK_DATA_DISK_STORE_H_
#define ROCK_DATA_DISK_STORE_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "data/transaction.h"

namespace rock {

/// Sequential writer for a transaction store file.
class TransactionStoreWriter {
 public:
  /// Creates/truncates the file and writes the header.
  static Result<TransactionStoreWriter> Open(const std::string& path);

  TransactionStoreWriter(TransactionStoreWriter&&) = default;
  TransactionStoreWriter& operator=(TransactionStoreWriter&&) = default;
  ~TransactionStoreWriter();

  /// Appends one transaction with an optional ground-truth label.
  Status Append(const Transaction& tx, LabelId label = kNoLabel);

  /// Back-patches the record count into the header and closes the file.
  Status Finish();

  /// Number of transactions appended so far.
  uint64_t count() const { return count_; }

 private:
  explicit TransactionStoreWriter(std::FILE* f) : file_(f, &std::fclose) {}

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  uint64_t count_ = 0;
  bool finished_ = false;
};

/// Streaming reader. Usage:
///   auto r = TransactionStoreReader::Open(path);
///   while (r->Next()) { use r->transaction(), r->label(); }
///   ROCK_RETURN_IF_ERROR(r->status());
class TransactionStoreReader {
 public:
  /// Opens the file and validates the header.
  static Result<TransactionStoreReader> Open(const std::string& path);

  TransactionStoreReader(TransactionStoreReader&&) = default;
  TransactionStoreReader& operator=(TransactionStoreReader&&) = default;

  /// Advances to the next transaction. Returns false at end-of-stream or on
  /// error (check status() to distinguish).
  bool Next();

  /// The current transaction (valid after Next() returned true).
  const Transaction& transaction() const { return current_; }

  /// Ground-truth label of the current transaction (kNoLabel if absent).
  LabelId label() const { return label_; }

  /// OK unless a read error or corruption was encountered.
  const Status& status() const { return status_; }

  /// Total number of transactions in the file (from the header).
  uint64_t count() const { return count_; }

  /// Rewinds the stream to the first transaction (labeling makes one pass,
  /// but multi-θ experiments rescan the same store).
  Status Rewind();

 private:
  explicit TransactionStoreReader(std::FILE* f) : file_(f, &std::fclose) {}

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  uint64_t count_ = 0;
  uint64_t read_ = 0;
  Transaction current_;
  LabelId label_ = kNoLabel;
  Status status_;
};

/// Writes an in-memory dataset to a store file (convenience for tests and
/// the synthetic-data benches).
Status WriteDatasetToStore(const TransactionDataset& dataset,
                           const std::string& path);

/// Reads an entire store into memory (convenience; the labeling phase itself
/// streams instead).
Result<TransactionDataset> ReadStoreToDataset(const std::string& path,
                                              const LabelSet* label_names);

}  // namespace rock

#endif  // ROCK_DATA_DISK_STORE_H_
