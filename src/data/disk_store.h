// librock — data/disk_store.h
//
// On-disk transaction store backing the paper's Figure 2 pipeline: the
// database lives on disk; ROCK draws a random sample into memory, clusters
// it, and then *streams* the remaining data from disk through the labeling
// phase without ever materializing the whole database in memory.
//
// Format (little-endian, fixed magic + version header):
//   [u64 magic][u32 version][u64 count][u32 crc32]          (version 2)
//   [… same …][u64 generation][u64 base_count]              (version 3)
//   count × { u32 label; u32 n; n × u32 item; }
// `label` is the ground-truth class id (kNoLabel when absent) — carried for
// evaluation (Table 6 counts misclassified transactions), never consulted by
// the clustering code.
//
// Integrity (version 2, docs/ROBUSTNESS.md): `crc32` covers every record
// byte after the header. Whole-file readers (Open) verify it — and reject
// trailing bytes — once the last record is consumed, so truncation, bit
// flips and appended garbage surface as Corruption. Range readers
// (OpenRange) stream a slice and cannot verify the whole-file checksum; the
// labeling phase relies on per-record bounds plus the shard row counts
// instead. I/O paths carry the "store.read" / "store.append" failpoint
// sites (util/failpoint.h) so the fault tests can inject errors, short
// reads and torn writes deterministically.
//
// Version 3 (streaming, docs/DESIGN.md §11) adds two generation-stamp
// fields: `generation` counts AppendToStore commits (0 for a freshly
// written store) and `base_count` is the row count before the most recent
// append — rows [base_count, count) are the latest appended batch. Readers
// accept both versions (a v2 file reads as generation 0). Appends are
// crash-safe: the whole store is re-written to "<path>.append.tmp" (the
// copied payload's CRC is re-verified before anything new is added), the
// new records go through the same "store.append" failpoint site as the
// writer, and the final rename consults "store.commit" — a crash at either
// site leaves the original store untouched, so a retried append never
// duplicates rows.

#ifndef ROCK_DATA_DISK_STORE_H_
#define ROCK_DATA_DISK_STORE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/transaction.h"
#include "util/checksum.h"

namespace rock {

/// One contiguous row range of a transaction store, resolved to its byte
/// offset so a reader can seek straight to it. Produced by
/// TransactionStoreReader::PlanShards; consumed by OpenRange. The labeling
/// phase fans these out over worker threads (core/labeling.h).
struct StoreShardRange {
  uint64_t byte_offset = 0;  ///< file offset of the range's first record
  uint64_t first_row = 0;    ///< store row index of that record
  uint64_t num_rows = 0;     ///< records in the range
};

/// Sequential writer for a transaction store file.
class TransactionStoreWriter {
 public:
  /// Creates/truncates the file and writes the header.
  static Result<TransactionStoreWriter> Open(const std::string& path);

  TransactionStoreWriter(TransactionStoreWriter&&) = default;
  TransactionStoreWriter& operator=(TransactionStoreWriter&&) = default;
  ~TransactionStoreWriter();

  /// Appends one transaction with an optional ground-truth label.
  Status Append(const Transaction& tx, LabelId label = kNoLabel);

  /// Back-patches the record count into the header and closes the file.
  Status Finish();

  /// Number of transactions appended so far.
  uint64_t count() const { return count_; }

 private:
  explicit TransactionStoreWriter(std::FILE* f) : file_(f, &std::fclose) {}

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  uint64_t count_ = 0;
  bool finished_ = false;
  Crc32Accumulator crc_;  ///< running checksum of the record bytes
};

/// Streaming reader. Usage:
///   auto r = TransactionStoreReader::Open(path);
///   while (r->Next()) { use r->transaction(), r->label(); }
///   ROCK_RETURN_IF_ERROR(r->status());
class TransactionStoreReader {
 public:
  /// Opens the file and validates the header.
  static Result<TransactionStoreReader> Open(const std::string& path);

  /// Opens a reader scoped to `range` (from PlanShards): it starts at the
  /// range's byte offset and Next() ends after `range.num_rows` records.
  /// count() returns the range size; Rewind() returns to the range start.
  static Result<TransactionStoreReader> OpenRange(const std::string& path,
                                                  const StoreShardRange& range);

  /// Splits the store into at most `max_shards` contiguous, near-equal row
  /// ranges whose byte offsets are resolved with one cheap header-skipping
  /// scan (no item payload is read). Returns fewer ranges when the store
  /// has fewer rows than `max_shards`, and none for an empty store. The
  /// ranges cover every row exactly once, in store order.
  static Result<std::vector<StoreShardRange>> PlanShards(
      const std::string& path, uint64_t max_shards);

  TransactionStoreReader(TransactionStoreReader&&) = default;
  TransactionStoreReader& operator=(TransactionStoreReader&&) = default;

  /// Advances to the next transaction. Returns false at end-of-stream or on
  /// error (check status() to distinguish).
  bool Next();

  /// The current transaction (valid after Next() returned true).
  const Transaction& transaction() const { return current_; }

  /// Ground-truth label of the current transaction (kNoLabel if absent).
  LabelId label() const { return label_; }

  /// OK unless a read error or corruption was encountered.
  const Status& status() const { return status_; }

  /// Total number of transactions this reader will yield: the header count
  /// for Open(), the range size for OpenRange().
  uint64_t count() const { return count_; }

  /// Append-commit generation of the file (0 for a freshly written store
  /// and for version-2 files, which predate the stamp).
  uint64_t generation() const { return generation_; }

  /// Row count before the most recent append: rows [base_count, count) are
  /// the latest appended batch. Equals the header count when the store has
  /// never been appended to.
  uint64_t base_count() const { return base_count_; }

  /// Rewinds the stream to its first transaction — the file's first record
  /// for Open(), the range start for OpenRange(). (Labeling makes one pass,
  /// but multi-θ experiments rescan the same store.)
  Status Rewind();

 private:
  explicit TransactionStoreReader(std::FILE* f) : file_(f, &std::fclose) {}

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  uint64_t count_ = 0;
  uint64_t read_ = 0;
  uint64_t generation_ = 0;
  uint64_t base_count_ = 0;
  long start_offset_ = 0;  ///< byte offset Next() starts/rewinds at
  Transaction current_;
  LabelId label_ = kNoLabel;
  Status status_;
  /// Whole-file readers verify the header checksum and reject trailing
  /// bytes once the stream is exhausted; range readers skip both.
  bool verify_full_ = false;
  bool end_checked_ = false;
  uint32_t expected_crc_ = 0;
  Crc32Accumulator crc_;
};

/// Outcome of one committed AppendToStore call.
struct StoreAppendResult {
  uint64_t base_count = 0;  ///< rows before the append
  uint64_t new_count = 0;   ///< rows after the append
  uint64_t generation = 0;  ///< generation stamp of the committed file
};

/// Atomically appends `rows` (with optional per-row ground-truth `labels`,
/// nullptr = all kNoLabel) to the store at `path`.
///
/// The append is copy-on-write: the existing records are streamed to
/// "<path>.append.tmp" while their CRC is re-verified (a corrupt store is
/// refused, never extended), the new records are written through the
/// "store.append" failpoint site, the header is stamped with the new
/// count/CRC, generation+1 and base_count = old count, and the tmp file is
/// renamed over `path` after consulting "store.commit". Any failure or
/// crash before the rename leaves the original store byte-identical, so
/// retrying the append after a crash cannot duplicate rows.
Result<StoreAppendResult> AppendToStore(const std::string& path,
                                        const std::vector<Transaction>& rows,
                                        const std::vector<LabelId>* labels);

/// Writes an in-memory dataset to a store file (convenience for tests and
/// the synthetic-data benches).
Status WriteDatasetToStore(const TransactionDataset& dataset,
                           const std::string& path);

/// Reads an entire store into memory (convenience; the labeling phase itself
/// streams instead).
Result<TransactionDataset> ReadStoreToDataset(const std::string& path,
                                              const LabelSet* label_names);

}  // namespace rock

#endif  // ROCK_DATA_DISK_STORE_H_
