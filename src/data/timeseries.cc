#include "data/timeseries.h"

#include <cmath>

namespace rock {

PriceMove ClassifyMove(double prev, double cur, double epsilon) {
  const double delta = cur - prev;
  const double tol = epsilon * std::max(std::abs(prev), 1.0);
  if (delta > tol) return PriceMove::kUp;
  if (delta < -tol) return PriceMove::kDown;
  return PriceMove::kNo;
}

namespace {
const char* MoveName(PriceMove m) {
  switch (m) {
    case PriceMove::kUp:
      return "Up";
    case PriceMove::kDown:
      return "Down";
    case PriceMove::kNo:
      return "No";
  }
  return "No";
}
}  // namespace

Result<CategoricalDataset> TimeSeriesToCategorical(const TimeSeriesSet& set,
                                                   double epsilon) {
  if (set.num_dates < 2) {
    return Status::InvalidArgument(
        "time-series set needs at least two dates to form transitions");
  }
  std::vector<std::string> attr_names;
  attr_names.reserve(set.num_dates - 1);
  for (size_t t = 1; t < set.num_dates; ++t) {
    attr_names.push_back("d" + std::to_string(t));
  }
  CategoricalDataset out{Schema(std::move(attr_names))};

  for (const TimeSeries& ts : set.series) {
    if (ts.prices.size() != set.num_dates) {
      return Status::InvalidArgument("series '" + ts.name +
                                     "' length does not match date axis");
    }
    std::vector<ValueId> values(set.num_dates - 1, kMissingValue);
    for (size_t t = 1; t < set.num_dates; ++t) {
      if (!ts.prices[t - 1].has_value() || !ts.prices[t].has_value()) continue;
      PriceMove m = ClassifyMove(*ts.prices[t - 1], *ts.prices[t], epsilon);
      values[t - 1] = out.schema().InternValue(t - 1, MoveName(m));
    }
    ROCK_RETURN_IF_ERROR(out.AddRecord(Record(std::move(values))));
    if (ts.group.empty()) {
      out.labels().AppendUnlabeled();
    } else {
      out.labels().Append(ts.group);
    }
  }
  return out;
}

}  // namespace rock
