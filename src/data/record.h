// librock — data/record.h
//
// Fixed-schema categorical records (paper §3.1.2). A schema names d
// attributes; each attribute has its own value domain (interned per
// attribute). A record stores one value id per attribute, with kMissingValue
// marking missing entries — the paper's treatment simply omits the item for a
// missing attribute when the record is viewed as a transaction.

#ifndef ROCK_DATA_RECORD_H_
#define ROCK_DATA_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/dictionary.h"

namespace rock {

/// Per-attribute value id. Dense within each attribute's domain.
using ValueId = uint32_t;

/// Sentinel marking a missing attribute value in a record.
inline constexpr ValueId kMissingValue = static_cast<ValueId>(-1);

/// Names the attributes of a categorical dataset and interns each
/// attribute's value domain.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema with the given attribute names (domains start empty).
  explicit Schema(std::vector<std::string> attribute_names);

  /// Number of attributes d.
  size_t num_attributes() const { return attribute_names_.size(); }

  /// Name of attribute `a`.
  const std::string& attribute_name(size_t a) const {
    return attribute_names_[a];
  }

  /// Interns value `v` in attribute `a`'s domain and returns its ValueId.
  ValueId InternValue(size_t a, std::string_view v) {
    return domains_[a].Intern(v);
  }

  /// Looks up value `v` in attribute `a`'s domain (kNoItem if absent).
  ValueId LookupValue(size_t a, std::string_view v) const {
    return domains_[a].Lookup(v);
  }

  /// Name of value id `v` in attribute `a`'s domain.
  const std::string& ValueName(size_t a, ValueId v) const {
    return domains_[a].Name(v);
  }

  /// Size of attribute `a`'s value domain.
  size_t DomainSize(size_t a) const { return domains_[a].size(); }

  /// Total number of (attribute, value) pairs across all domains — the
  /// number of distinct items when records are viewed as transactions.
  size_t TotalDomainSize() const;

 private:
  std::vector<std::string> attribute_names_;
  std::vector<Dictionary> domains_;
};

/// One categorical record: a ValueId (or kMissingValue) per attribute.
class Record {
 public:
  Record() = default;

  /// Builds a record; `values.size()` must equal the schema's attribute
  /// count (checked by the dataset on insertion).
  explicit Record(std::vector<ValueId> values) : values_(std::move(values)) {}

  /// Number of attributes in the record.
  size_t size() const { return values_.size(); }

  /// Value of attribute `a` (kMissingValue if missing).
  ValueId value(size_t a) const { return values_[a]; }

  /// True iff attribute `a` has no value.
  bool IsMissing(size_t a) const { return values_[a] == kMissingValue; }

  /// Number of attributes with a present value.
  size_t NumPresent() const;

  const std::vector<ValueId>& values() const { return values_; }

  bool operator==(const Record& other) const = default;

 private:
  std::vector<ValueId> values_;
};

}  // namespace rock

#endif  // ROCK_DATA_RECORD_H_
