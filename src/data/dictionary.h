// librock — data/dictionary.h
//
// String interning. Items ("A.v" attribute-value pairs, basket items, class
// labels) are interned to dense uint32_t ids once at load time so that all
// hot paths (similarity, neighbor and link computation) work on integers.

#ifndef ROCK_DATA_DICTIONARY_H_
#define ROCK_DATA_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rock {

/// Dense id assigned to an interned string. Ids start at 0 and are
/// contiguous.
using ItemId = uint32_t;

/// Sentinel for "no id" (missing attribute values, failed lookups).
inline constexpr ItemId kNoItem = static_cast<ItemId>(-1);

/// Bidirectional string <-> dense-id map.
class Dictionary {
 public:
  /// Returns the id for `s`, interning it if previously unseen.
  ItemId Intern(std::string_view s);

  /// Returns the id for `s`, or kNoItem if it was never interned.
  ItemId Lookup(std::string_view s) const;

  /// Returns the string for an id; id must be < size().
  const std::string& Name(ItemId id) const { return names_[id]; }

  /// Number of interned strings.
  size_t size() const { return names_.size(); }

  bool empty() const { return names_.empty(); }

 private:
  std::unordered_map<std::string, ItemId> index_;
  std::vector<std::string> names_;
};

}  // namespace rock

#endif  // ROCK_DATA_DICTIONARY_H_
