#include "data/transforms.h"

namespace rock {

Transaction RecordToTransaction(const Schema& schema, const Record& record,
                                Dictionary& items) {
  std::vector<ItemId> ids;
  ids.reserve(record.size());
  for (size_t a = 0; a < record.size(); ++a) {
    if (record.IsMissing(a)) continue;
    std::string item = schema.attribute_name(a);
    item += '=';
    item += schema.ValueName(a, record.value(a));
    ids.push_back(items.Intern(item));
  }
  return Transaction(std::move(ids));
}

TransactionDataset RecordsToTransactions(const CategoricalDataset& dataset) {
  TransactionDataset out;
  for (size_t i = 0; i < dataset.size(); ++i) {
    out.AddTransaction(
        RecordToTransaction(dataset.schema(), dataset.record(i), out.items()));
    if (!dataset.labels().empty()) {
      LabelId l = dataset.labels().label(i);
      if (l == kNoLabel) {
        out.labels().AppendUnlabeled();
      } else {
        out.labels().Append(dataset.labels().Name(l));
      }
    }
  }
  return out;
}

}  // namespace rock
