// librock — data/transaction.h
//
// A transaction is a set of items (paper §3.1.1: "The database consists of a
// set of transactions, each of which is a set of items"). Stored as a sorted,
// deduplicated vector of ItemId so set operations are linear merges.

#ifndef ROCK_DATA_TRANSACTION_H_
#define ROCK_DATA_TRANSACTION_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "data/dictionary.h"

namespace rock {

/// An item set. Immutable after construction; always sorted and unique.
class Transaction {
 public:
  Transaction() = default;

  /// Builds from arbitrary item ids; sorts and deduplicates.
  explicit Transaction(std::vector<ItemId> items);

  /// Convenience literal constructor: Transaction({1, 2, 3}).
  Transaction(std::initializer_list<ItemId> items);

  /// Number of distinct items.
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// The sorted item ids.
  const std::vector<ItemId>& items() const { return items_; }

  /// True iff the transaction contains `item` (binary search).
  bool Contains(ItemId item) const;

  bool operator==(const Transaction& other) const = default;

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::vector<ItemId> items_;
};

/// |T1 ∩ T2| via linear merge of the sorted item vectors.
size_t IntersectionSize(const Transaction& a, const Transaction& b);

/// |T1 ∪ T2| = |T1| + |T2| − |T1 ∩ T2|.
size_t UnionSize(const Transaction& a, const Transaction& b);

}  // namespace rock

#endif  // ROCK_DATA_TRANSACTION_H_
