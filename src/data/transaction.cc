#include "data/transaction.h"

#include <algorithm>

namespace rock {

Transaction::Transaction(std::vector<ItemId> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Transaction::Transaction(std::initializer_list<ItemId> items)
    : Transaction(std::vector<ItemId>(items)) {}

bool Transaction::Contains(ItemId item) const {
  return std::binary_search(items_.begin(), items_.end(), item);
}

size_t IntersectionSize(const Transaction& a, const Transaction& b) {
  size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

size_t UnionSize(const Transaction& a, const Transaction& b) {
  return a.size() + b.size() - IntersectionSize(a, b);
}

}  // namespace rock
