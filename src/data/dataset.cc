#include "data/dataset.h"

namespace rock {

void TransactionDataset::AddTransaction(
    const std::vector<std::string>& item_names) {
  std::vector<ItemId> ids;
  ids.reserve(item_names.size());
  for (const auto& name : item_names) ids.push_back(items_.Intern(name));
  transactions_.emplace_back(std::move(ids));
}

double TransactionDataset::MeanTransactionSize() const {
  if (transactions_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& tx : transactions_) total += tx.size();
  return static_cast<double>(total) / static_cast<double>(transactions_.size());
}

Status CategoricalDataset::AddRecord(const std::vector<std::string>& values,
                                     std::string_view missing_token) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("record arity does not match schema");
  }
  std::vector<ValueId> encoded(values.size());
  for (size_t a = 0; a < values.size(); ++a) {
    encoded[a] = (values[a] == missing_token)
                     ? kMissingValue
                     : schema_.InternValue(a, values[a]);
  }
  records_.emplace_back(std::move(encoded));
  return Status::OK();
}

Status CategoricalDataset::AddRecord(Record record) {
  if (record.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("record arity does not match schema");
  }
  records_.push_back(std::move(record));
  return Status::OK();
}

double CategoricalDataset::MissingRate() const {
  const size_t d = schema_.num_attributes();
  if (records_.empty() || d == 0) return 0.0;
  size_t missing = 0;
  for (const auto& r : records_) missing += d - r.NumPresent();
  return static_cast<double>(missing) /
         (static_cast<double>(records_.size()) * static_cast<double>(d));
}

}  // namespace rock
