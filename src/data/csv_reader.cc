#include "data/csv_reader.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace rock {

namespace {

/// Splits one CSV line, trimming whitespace around fields. Quoting is not
/// supported — UCI categorical files never quote.
std::vector<std::string> SplitLine(std::string_view line, char delim) {
  std::vector<std::string> fields = Split(line, delim);
  for (auto& f : fields) f = std::string(Trim(f));
  return fields;
}

}  // namespace

Result<CategoricalDataset> ReadCsvString(const std::string& text,
                                         const CsvOptions& options) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool schema_ready = false;
  size_t num_columns = 0;
  CategoricalDataset dataset;

  auto build_schema = [&](const std::vector<std::string>& fields,
                          bool from_header) {
    num_columns = fields.size();
    std::vector<std::string> names;
    for (size_t c = 0; c < fields.size(); ++c) {
      if (options.label_column >= 0 &&
          c == static_cast<size_t>(options.label_column)) {
        continue;
      }
      names.push_back(from_header ? fields[c] : "a" + std::to_string(c));
    }
    dataset = CategoricalDataset{Schema(std::move(names))};
    schema_ready = true;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (options.skip_blank_lines && Trim(line).empty()) continue;
    std::vector<std::string> fields = SplitLine(line, options.delimiter);

    if (!schema_ready) {
      build_schema(fields, options.has_header);
      if (options.has_header) continue;
    }
    if (fields.size() != num_columns) {
      return Status::Corruption("line " + std::to_string(line_no) + ": got " +
                                std::to_string(fields.size()) +
                                " fields, expected " +
                                std::to_string(num_columns));
    }

    std::vector<std::string> values;
    values.reserve(num_columns);
    std::string label;
    bool has_label = false;
    for (size_t c = 0; c < fields.size(); ++c) {
      if (options.label_column >= 0 &&
          c == static_cast<size_t>(options.label_column)) {
        label = fields[c];
        has_label = true;
      } else {
        values.push_back(fields[c]);
      }
    }
    ROCK_RETURN_IF_ERROR(dataset.AddRecord(values, options.missing_token));
    if (has_label) {
      dataset.labels().Append(label);
    }
  }

  if (!schema_ready) {
    return Status::InvalidArgument("CSV input contains no data rows");
  }
  return dataset;
}

Result<CategoricalDataset> ReadCsvFile(const std::string& path,
                                       const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on '" + path + "'");
  return ReadCsvString(buf.str(), options);
}

}  // namespace rock
