// librock — data/csv_reader.h
//
// Loader for UCI-style comma-separated categorical files (Congressional
// Votes `house-votes-84.data`, Mushroom `agaricus-lepiota.data`). These
// files are plain CSV with a class-label column and '?' missing markers.
// When the real UCI files are present on disk the experiment harnesses load
// them; otherwise the synth/ surrogate generators are used (see DESIGN.md
// substitution table).

#ifndef ROCK_DATA_CSV_READER_H_
#define ROCK_DATA_CSV_READER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace rock {

/// Options controlling CSV → CategoricalDataset parsing.
struct CsvOptions {
  char delimiter = ',';
  /// Column holding the ground-truth class; negative means "no label
  /// column". UCI votes/mushroom put the class first (column 0).
  int label_column = 0;
  /// Token denoting a missing value.
  std::string missing_token = "?";
  /// Whether the first line is a header of attribute names. UCI .data files
  /// have no header; attributes are then named "a0", "a1", ...
  bool has_header = false;
  /// Skip lines that are empty after trimming.
  bool skip_blank_lines = true;
};

/// Parses CSV text into a categorical dataset.
Result<CategoricalDataset> ReadCsvString(const std::string& text,
                                         const CsvOptions& options);

/// Reads and parses a CSV file.
Result<CategoricalDataset> ReadCsvFile(const std::string& path,
                                       const CsvOptions& options);

}  // namespace rock

#endif  // ROCK_DATA_CSV_READER_H_
