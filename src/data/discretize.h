// librock — data/discretize.h
//
// Numeric → categorical discretization. ROCK consumes categorical
// attributes; real UCI files often mix numeric columns in. These binners
// turn a numeric column into a small ordinal domain ("bin0" … "binK-1"),
// after which the usual Jaccard machinery applies. Two classic schemes:
//
//   equal-width     bins split [min, max] evenly — preserves scale, skewed
//                   data lands in few bins;
//   equal-frequency bins hold ~the same number of values — robust to
//                   skew, adaptive cut points.
//
// The paper's own mutual-fund treatment (§5.1) is a domain-specific
// instance of the same move (price deltas → {Up, Down, No}).

#ifndef ROCK_DATA_DISCRETIZE_H_
#define ROCK_DATA_DISCRETIZE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace rock {

/// Binning scheme.
enum class BinningScheme { kEqualWidth, kEqualFrequency };

/// A fitted discretizer for one numeric column: cut points c₁ < … < c_{K−1}
/// mapping value v to the first bin whose upper cut exceeds it.
class Discretizer {
 public:
  /// Fits cut points from the observed values (missing = nullopt entries
  /// are skipped). num_bins >= 2; fewer distinct values than bins yields
  /// fewer effective bins (duplicate cuts are collapsed).
  static Result<Discretizer> Fit(
      const std::vector<std::optional<double>>& values, size_t num_bins,
      BinningScheme scheme);

  /// Bin index for a value (values outside the fitted range clamp to the
  /// first/last bin).
  size_t Bin(double value) const;

  /// Number of effective bins (≤ the requested count).
  size_t num_bins() const { return cuts_.size() + 1; }

  /// Human-readable bin label "binI".
  static std::string BinLabel(size_t bin) {
    return "bin" + std::to_string(bin);
  }

  /// The fitted cut points (ascending, strictly increasing).
  const std::vector<double>& cuts() const { return cuts_; }

 private:
  explicit Discretizer(std::vector<double> cuts) : cuts_(std::move(cuts)) {}
  std::vector<double> cuts_;
};

/// A numeric table with optional missing entries, column-major adjunct to
/// CategoricalDataset construction.
struct NumericColumns {
  std::vector<std::string> names;
  /// columns[c][row]; nullopt = missing.
  std::vector<std::vector<std::optional<double>>> columns;
};

/// Discretizes every column into `num_bins` bins and returns the resulting
/// categorical dataset (values "bin0"… per column). Missing stays missing.
Result<CategoricalDataset> DiscretizeColumns(const NumericColumns& table,
                                             size_t num_bins,
                                             BinningScheme scheme);

}  // namespace rock

#endif  // ROCK_DATA_DISCRETIZE_H_
