#include "similarity/packed.h"

#include <algorithm>
#include <bit>
#include <limits>

#if defined(__x86_64__) || defined(__i386__)
#define ROCK_PACKED_X86 1
#include <immintrin.h>
#else
#define ROCK_PACKED_X86 0
#endif

namespace rock {
namespace {

uint64_t IntersectScalar(const uint64_t* a, const uint64_t* b, size_t words) {
  uint64_t total = 0;
  for (size_t w = 0; w < words; ++w) {
    total += static_cast<uint64_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

#if ROCK_PACKED_X86
// Nibble-LUT popcount over AND'd 256-bit blocks (4 words per step); the
// per-byte counts are folded with psadbw so the accumulator never saturates.
__attribute__((target("avx2"))) uint64_t IntersectAvx2(const uint64_t* a,
                                                       const uint64_t* b,
                                                       size_t words) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i v = _mm256_and_si256(va, vb);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; w < words; ++w) {
    total += static_cast<uint64_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}
#endif  // ROCK_PACKED_X86

using IntersectFn = uint64_t (*)(const uint64_t*, const uint64_t*, size_t);

IntersectFn ResolveIntersect() {
#if ROCK_PACKED_X86
  if (__builtin_cpu_supports("avx2")) return &IntersectAvx2;
#endif
  return &IntersectScalar;
}

const IntersectFn g_intersect = ResolveIntersect();

}  // namespace

uint64_t IntersectPopcount(const uint64_t* a, const uint64_t* b, size_t words) {
  return g_intersect(a, b, words);
}

bool PackedKernelUsesAvx2() {
#if ROCK_PACKED_X86
  return g_intersect == &IntersectAvx2;
#else
  return false;
#endif
}

std::unique_ptr<PackedJaccard> PackedJaccard::FromRows(
    std::vector<std::vector<uint32_t>> rows, uint64_t universe,
    size_t max_bytes, size_t extra_bytes) {
  if (universe > std::numeric_limits<uint32_t>::max()) return nullptr;
  if (extra_bytes > max_bytes) return nullptr;
  const size_t n = rows.size();
  const size_t words = static_cast<size_t>((universe + 63) / 64);
  const size_t budget_words = (max_bytes - extra_bytes) / 8;
  if (n != 0 && words != 0 && words > budget_words / n) return nullptr;

  auto packed = std::unique_ptr<PackedJaccard>(new PackedJaccard());
  packed->n_ = n;
  packed->words_ = words;
  packed->bits_.assign(n * words, 0);
  packed->sizes_.resize(n);
  size_t total_items = 0;
  for (const auto& row : rows) total_items += row.size();
  packed->items_.row_offsets.reserve(n + 1);
  packed->items_.row_offsets.push_back(0);
  packed->items_.items.reserve(total_items);
  packed->items_.universe = static_cast<uint32_t>(universe);
  for (size_t r = 0; r < n; ++r) {
    uint64_t* plane = packed->bits_.data() + r * words;
    for (const uint32_t item : rows[r]) {
      plane[item >> 6] |= uint64_t{1} << (item & 63);
      packed->items_.items.push_back(item);
    }
    packed->sizes_[r] = static_cast<uint32_t>(rows[r].size());
    packed->items_.row_offsets.push_back(packed->items_.items.size());
  }
  return packed;
}

std::unique_ptr<PackedJaccard> PackedJaccard::PackTransactions(
    const TransactionDataset& dataset, size_t max_bytes) {
  const size_t n = dataset.size();
  // Universe = max observed id + 1, not the dictionary size: rows may carry
  // ids never interned (hand-built Transaction({...}) test data).
  uint64_t universe = 0;
  std::vector<std::vector<uint32_t>> rows(n);
  for (size_t r = 0; r < n; ++r) {
    const Transaction& tx = dataset.transaction(r);
    rows[r].assign(tx.begin(), tx.end());
    if (!tx.empty()) {
      universe = std::max(universe, uint64_t{tx.items().back()} + 1);
    }
  }
  return FromRows(std::move(rows), universe, max_bytes, 0);
}

namespace {

// (attribute, value) item encoding shared by the two categorical packings:
// attribute a's values occupy [offset[a], offset[a] + width[a]) where
// width[a] = max observed present value + 1 (observed, not interned — test
// records may carry raw value ids). Returns false when the item space
// overflows uint32_t.
bool EncodeAttributeValueRows(const CategoricalDataset& dataset,
                              std::vector<std::vector<uint32_t>>* rows,
                              uint64_t* universe) {
  const size_t n = dataset.size();
  const size_t d = n == 0 ? 0 : dataset.record(0).size();
  std::vector<uint64_t> width(d, 0);
  for (size_t r = 0; r < n; ++r) {
    const Record& rec = dataset.record(r);
    for (size_t a = 0; a < d; ++a) {
      const ValueId v = rec.value(a);
      if (v != kMissingValue) width[a] = std::max(width[a], uint64_t{v} + 1);
    }
  }
  std::vector<uint64_t> offset(d + 1, 0);
  for (size_t a = 0; a < d; ++a) offset[a + 1] = offset[a] + width[a];
  *universe = offset[d];
  if (*universe > std::numeric_limits<uint32_t>::max()) return false;
  rows->assign(n, {});
  for (size_t r = 0; r < n; ++r) {
    const Record& rec = dataset.record(r);
    std::vector<uint32_t>& row = (*rows)[r];
    for (size_t a = 0; a < d; ++a) {
      const ValueId v = rec.value(a);
      if (v != kMissingValue) {
        row.push_back(static_cast<uint32_t>(offset[a] + v));
      }
    }
  }
  return true;
}

}  // namespace

std::unique_ptr<PackedJaccard> PackedJaccard::PackCategorical(
    const CategoricalDataset& dataset, size_t max_bytes) {
  std::vector<std::vector<uint32_t>> rows;
  uint64_t universe = 0;
  if (!EncodeAttributeValueRows(dataset, &rows, &universe)) return nullptr;
  return FromRows(std::move(rows), universe, max_bytes, 0);
}

std::unique_ptr<PackedJaccard> PackedJaccard::PackPairwiseMissing(
    const CategoricalDataset& dataset, size_t max_bytes) {
  std::vector<std::vector<uint32_t>> rows;
  uint64_t universe = 0;
  if (!EncodeAttributeValueRows(dataset, &rows, &universe)) return nullptr;
  const size_t n = dataset.size();
  const size_t d = n == 0 ? 0 : dataset.record(0).size();
  const size_t pres_words = (d + 63) / 64;
  auto packed =
      FromRows(std::move(rows), universe, max_bytes, n * pres_words * 8);
  if (packed == nullptr) return nullptr;
  packed->pairwise_missing_ = true;
  packed->pres_words_ = pres_words;
  packed->presence_.assign(n * pres_words, 0);
  for (size_t r = 0; r < n; ++r) {
    const Record& rec = dataset.record(r);
    uint64_t* plane = packed->presence_.data() + r * pres_words;
    for (size_t a = 0; a < d; ++a) {
      if (!rec.IsMissing(a)) plane[a >> 6] |= uint64_t{1} << (a & 63);
    }
  }
  return packed;
}

void PackedJaccard::SimilarityBatch(size_t i, const uint32_t* js, size_t count,
                                    double* out) const {
  const uint64_t* row_i = bits_.data() + i * words_;
  if (!pairwise_missing_) {
    const uint64_t si = sizes_[i];
    for (size_t t = 0; t < count; ++t) {
      const size_t j = js[t];
      const uint64_t inter =
          IntersectPopcount(row_i, bits_.data() + j * words_, words_);
      const uint64_t uni = si + sizes_[j] - inter;
      out[t] = uni == 0 ? 0.0
                        : static_cast<double>(inter) / static_cast<double>(uni);
    }
    return;
  }
  const uint64_t* pres_i = presence_.data() + i * pres_words_;
  for (size_t t = 0; t < count; ++t) {
    const size_t j = js[t];
    const uint64_t both = IntersectPopcount(
        pres_i, presence_.data() + j * pres_words_, pres_words_);
    if (both == 0) {
      out[t] = 0.0;
      continue;
    }
    const uint64_t equal =
        IntersectPopcount(row_i, bits_.data() + j * words_, words_);
    out[t] =
        static_cast<double>(equal) / static_cast<double>(2 * both - equal);
  }
}

}  // namespace rock
