// librock — similarity/minhash.h
//
// MinHash + LSH-banding acceleration for the neighbor-graph phase on
// market-basket data. The paper's pipeline spends O(n²) similarity
// evaluations building the neighbor graph (§4.5); for Jaccard similarity
// the classic MinHash sketch lets us generate *candidate* neighbor pairs
// in roughly O(n · signature) time and verify only the candidates exactly,
// preserving ROCK's semantics: every reported edge satisfies
// sim(i, j) >= θ exactly (precision 1), while recall is controlled by the
// banding parameters (probability of missing a pair at similarity s is
// (1 − s^r)^b).

#ifndef ROCK_SIMILARITY_MINHASH_H_
#define ROCK_SIMILARITY_MINHASH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "graph/neighbors.h"

namespace rock {

/// Computes fixed-length MinHash signatures of item sets.
class MinHasher {
 public:
  /// `num_hashes` independent permutation approximations, derived from
  /// `seed`.
  MinHasher(size_t num_hashes, uint64_t seed);

  /// Signature of a transaction: per hash function, the minimum hashed
  /// item value. Empty transactions get all-max signatures.
  std::vector<uint64_t> Signature(const Transaction& tx) const;

  /// Signature of an item-id array into caller storage (`out` must hold
  /// num_hashes() words). Same function as Signature(), minus the
  /// allocation — the packed neighbor engine calls this once per row.
  void SignatureInto(const uint32_t* items, size_t count,
                     uint64_t* out) const;

  /// Fraction of matching positions — an unbiased estimate of Jaccard.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

  size_t num_hashes() const { return mix_.size(); }

 private:
  std::vector<uint64_t> mix_;  // per-hash xor mixers
};

/// Options for LSH-accelerated neighbor computation.
struct LshOptions {
  /// Number of bands b and rows per band r; signature length = b · r.
  /// The collision threshold sits near (1/b)^(1/r) — defaults target high
  /// recall for θ ≥ 0.5.
  size_t num_bands = 50;
  size_t rows_per_band = 3;
  uint64_t seed = 0x5eed;

  Status Validate() const;
};

/// Builds the θ-neighbor graph over basket transactions using MinHash
/// banding for candidate generation and exact Jaccard verification.
/// Guaranteed a subgraph of ComputeNeighbors(TransactionJaccard, θ);
/// misses edges only when a truly-similar pair never collides in any band.
Result<NeighborGraph> ComputeNeighborsLsh(const TransactionDataset& dataset,
                                          double theta,
                                          const LshOptions& options = {});

/// Expected probability that a pair at similarity `s` becomes a candidate
/// under the banding parameters: 1 − (1 − s^r)^b. Exposed for tests and
/// for tuning recall targets.
double LshCollisionProbability(double s, const LshOptions& options);

/// Picks banding parameters for a threshold θ: the sharpest S-curve (the
/// largest rows-per-band r, with the band count b sized so that a pair at
/// similarity exactly θ is still recalled with probability ≥ 99.95%) that
/// fits a bounded signature length b·r ≤ 256. Larger r steepens the curve,
/// so below-θ pairs generate fewer junk candidates at the same recall.
/// For θ where no r fits the budget (θ → 0) the whole budget goes to
/// single-row bands, the best recall the budget buys. θ ≤ 0 or θ ≥ 1 get
/// the LshOptions defaults (banding cannot help those thresholds).
LshOptions TuneLshOptions(double theta, uint64_t seed);

/// Bucket key of one band slice (`rows` consecutive signature words),
/// salted by the band index so equal slices in different bands land in
/// distinct bucket spaces. Shared by ComputeNeighborsLsh and the packed
/// neighbor engine's LSH pass so both bucket identically.
uint64_t LshBandKey(const uint64_t* slice, size_t rows, size_t band);

}  // namespace rock

#endif  // ROCK_SIMILARITY_MINHASH_H_
