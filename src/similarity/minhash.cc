#include "similarity/minhash.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/random.h"
#include "similarity/jaccard.h"

namespace rock {

namespace {

/// Stateless 64-bit mix (splitmix64 finalizer) — a cheap hash whose
/// per-function variation comes from xoring a random mixer first.
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

MinHasher::MinHasher(size_t num_hashes, uint64_t seed) {
  SplitMix64 sm(seed);
  mix_.resize(num_hashes);
  for (auto& m : mix_) m = sm.Next();
}

std::vector<uint64_t> MinHasher::Signature(const Transaction& tx) const {
  std::vector<uint64_t> sig(mix_.size(),
                            std::numeric_limits<uint64_t>::max());
  for (ItemId item : tx) {
    for (size_t k = 0; k < mix_.size(); ++k) {
      const uint64_t h = Mix64(static_cast<uint64_t>(item) ^ mix_[k]);
      sig[k] = std::min(sig[k], h);
    }
  }
  return sig;
}

void MinHasher::SignatureInto(const uint32_t* items, size_t count,
                              uint64_t* out) const {
  std::fill(out, out + mix_.size(), std::numeric_limits<uint64_t>::max());
  for (size_t i = 0; i < count; ++i) {
    const auto item = static_cast<uint64_t>(items[i]);
    for (size_t k = 0; k < mix_.size(); ++k) {
      const uint64_t h = Mix64(item ^ mix_[k]);
      out[k] = std::min(out[k], h);
    }
  }
}

uint64_t LshBandKey(const uint64_t* slice, size_t rows, size_t band) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (band * 0xff51afd7ed558ccdULL);
  for (size_t r = 0; r < rows; ++r) h = Mix64(h ^ slice[r]);
  return h;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  size_t match = 0;
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k] == b[k]) ++match;
  }
  return static_cast<double>(match) / static_cast<double>(a.size());
}

Status LshOptions::Validate() const {
  if (num_bands == 0 || rows_per_band == 0) {
    return Status::InvalidArgument("num_bands and rows_per_band must be >= 1");
  }
  return Status::OK();
}

LshOptions TuneLshOptions(double theta, uint64_t seed) {
  LshOptions tuned;
  tuned.seed = seed;
  if (!(theta > 0.0 && theta < 1.0)) return tuned;
  constexpr double kTargetMiss = 5e-4;  // recall ≥ 99.95% at s = θ
  constexpr size_t kMaxSignature = 256;
  bool found = false;
  for (size_t r = 1; r <= 16; ++r) {
    const double per_band = std::pow(theta, static_cast<double>(r));
    const size_t b = static_cast<size_t>(
        std::ceil(std::log(kTargetMiss) / std::log(1.0 - per_band)));
    if (b == 0 || b * r > kMaxSignature) continue;
    // Candidates with larger r keep overwriting: the largest feasible r
    // gives the sharpest filter at the same recall target.
    tuned.num_bands = b;
    tuned.rows_per_band = r;
    found = true;
  }
  if (!found) {
    tuned.num_bands = kMaxSignature;
    tuned.rows_per_band = 1;
  }
  return tuned;
}

double LshCollisionProbability(double s, const LshOptions& options) {
  const double per_band = std::pow(s, static_cast<double>(
                                          options.rows_per_band));
  return 1.0 - std::pow(1.0 - per_band,
                        static_cast<double>(options.num_bands));
}

Result<NeighborGraph> ComputeNeighborsLsh(const TransactionDataset& dataset,
                                          double theta,
                                          const LshOptions& options) {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  ROCK_RETURN_IF_ERROR(options.Validate());

  const size_t n = dataset.size();
  const size_t sig_len = options.num_bands * options.rows_per_band;
  MinHasher hasher(sig_len, options.seed);

  std::vector<std::vector<uint64_t>> signatures(n);
  for (size_t i = 0; i < n; ++i) {
    signatures[i] = hasher.Signature(dataset.transaction(i));
  }

  // Banding: bucket each point by the hash of every band slice; points
  // sharing any bucket become candidates. Candidate pairs are collected
  // with duplicates and batch-deduplicated (sort + unique) before the
  // exact verification pass. Empty transactions never enter a bucket:
  // their all-max signatures would all collide with each other in every
  // band (a quadratic candidate blow-up in one bucket at scale) even
  // though their exact Jaccard is 0 < θ with everything, so for θ > 0
  // skipping them loses no edge; at θ = 0 they neighbor everything and
  // no banding scheme can see that, which is why callers needing θ = 0
  // use the exact engines.
  std::vector<uint64_t> candidates;  // (lo << 32) | hi
  std::unordered_map<uint64_t, std::vector<PointIndex>> buckets;
  for (size_t band = 0; band < options.num_bands; ++band) {
    buckets.clear();
    for (size_t i = 0; i < n; ++i) {
      if (dataset.transaction(i).empty()) continue;
      const uint64_t h =
          LshBandKey(signatures[i].data() + band * options.rows_per_band,
                     options.rows_per_band, band);
      buckets[h].push_back(static_cast<PointIndex>(i));
    }
    for (const auto& [_, members] : buckets) {
      if (members.size() < 2) continue;
      for (size_t a = 0; a + 1 < members.size(); ++a) {
        for (size_t b = a + 1; b < members.size(); ++b) {
          const uint64_t lo = std::min(members[a], members[b]);
          const uint64_t hi = std::max(members[a], members[b]);
          candidates.push_back((lo << 32) | hi);
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  NeighborGraph graph;
  graph.nbrlist.resize(n);
  for (uint64_t key : candidates) {
    const auto lo = static_cast<PointIndex>(key >> 32);
    const auto hi = static_cast<PointIndex>(key & 0xffffffffu);
    // Exact verification keeps precision at 1.
    if (JaccardSimilarity(dataset.transaction(lo),
                          dataset.transaction(hi)) >= theta) {
      graph.nbrlist[lo].push_back(hi);
      graph.nbrlist[hi].push_back(lo);
    }
  }
  for (auto& l : graph.nbrlist) std::sort(l.begin(), l.end());
  return graph;
}

}  // namespace rock
