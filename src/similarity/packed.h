// librock — similarity/packed.h
//
// Bit-packed Jaccard kernels. Every row of a dataset becomes a plane of
// 64-bit words — one bit per item (transactions) or per (attribute, value)
// pair (categorical records) — so an intersection count is an AND + popcount
// sweep over `words_per_row` words instead of an element-wise scan. The
// sweep runs through a runtime-dispatched kernel (AVX2 nibble-LUT popcount
// when the CPU has it, std::popcount otherwise); both produce the same
// integer counts, so similarity values match the per-pair oracles in
// similarity/jaccard.h bit for bit.
//
// Packing is gated by a memory budget: the factories return nullptr instead
// of allocating an unreasonable plane (dense bitsets over a huge sparse
// universe), and callers fall back to the scalar path.

#ifndef ROCK_SIMILARITY_PACKED_H_
#define ROCK_SIMILARITY_PACKED_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "similarity/batch.h"

namespace rock {

/// Default cap on total packed-plane bytes (all rows, all planes).
inline constexpr size_t kDefaultPackedBytes = size_t{256} << 20;  // 256 MiB

/// |a ∩ b| over `words` 64-bit words. Runtime-dispatches to an AVX2 kernel
/// when available; exact (integer) either way. Exposed for tests/benches.
uint64_t IntersectPopcount(const uint64_t* a, const uint64_t* b, size_t words);

/// True iff the AVX2 intersection kernel is active on this machine.
bool PackedKernelUsesAvx2();

/// Bit-packed BatchSimilarity matching one of the three Jaccard oracles.
class PackedJaccard final : public BatchSimilarity {
 public:
  /// Packs a transaction dataset; values match TransactionJaccard bit for
  /// bit. Returns nullptr when the plane would exceed `max_bytes`.
  static std::unique_ptr<PackedJaccard> PackTransactions(
      const TransactionDataset& dataset, size_t max_bytes = kDefaultPackedBytes);

  /// Packs categorical records through the static A.v item view; values
  /// match CategoricalJaccard bit for bit. nullptr when over budget.
  static std::unique_ptr<PackedJaccard> PackCategorical(
      const CategoricalDataset& dataset, size_t max_bytes = kDefaultPackedBytes);

  /// Packs categorical records for pairwise-missing semantics (two planes:
  /// value items + presence); values match PairwiseMissingJaccard bit for
  /// bit. nullptr when over budget.
  static std::unique_ptr<PackedJaccard> PackPairwiseMissing(
      const CategoricalDataset& dataset, size_t max_bytes = kDefaultPackedBytes);

  size_t size() const override { return n_; }

  void SimilarityBatch(size_t i, const uint32_t* js, size_t count,
                       double* out) const override;

  /// Set sizes for the Jaccard length bound; null for pairwise-missing
  /// (records of very different sizes can still score 1 there).
  const std::vector<uint32_t>* prune_sizes() const override {
    return pairwise_missing_ ? nullptr : &sizes_;
  }

  /// Sorted per-row item ids (all kinds: sim == 0 without a shared item).
  const SparseItemView* items() const override { return &items_; }

  /// Words per row of the item plane (tests/metrics).
  size_t words_per_row() const { return words_; }

 private:
  PackedJaccard() = default;

  /// Builds the plane + CSR view from per-row sorted item lists.
  static std::unique_ptr<PackedJaccard> FromRows(
      std::vector<std::vector<uint32_t>> rows, uint64_t universe,
      size_t max_bytes, size_t extra_bytes);

  bool pairwise_missing_ = false;
  size_t n_ = 0;
  size_t words_ = 0;       ///< item-plane words per row
  size_t pres_words_ = 0;  ///< presence-plane words per row (pairwise only)
  std::vector<uint64_t> bits_;      ///< n_ × words_ item plane
  std::vector<uint64_t> presence_;  ///< n_ × pres_words_ (pairwise only)
  std::vector<uint32_t> sizes_;     ///< |row| in items (item plane)
  SparseItemView items_;
};

}  // namespace rock

#endif  // ROCK_SIMILARITY_PACKED_H_
