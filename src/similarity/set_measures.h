// librock — similarity/set_measures.h
//
// Additional normalized set-similarity measures for transaction data.
// The paper uses the Jaccard coefficient (§3.1.1) but stresses that ROCK
// accepts *any* normalized similarity, including non-metric ones (§1.2);
// these are the standard alternatives a practitioner will want to sweep:
//
//   Dice     2|A∩B| / (|A|+|B|)      — forgiving of size imbalance
//   cosine   |A∩B| / √(|A|·|B|)      — the IR staple for sets
//   overlap  |A∩B| / min(|A|,|B|)    — containment (subsets score 1)
//
// For fixed-schema categorical records, SMC (simple matching) counts
// agreeing attributes over all attributes, treating a shared missing
// value as an agreement-free slot.

#ifndef ROCK_SIMILARITY_SET_MEASURES_H_
#define ROCK_SIMILARITY_SET_MEASURES_H_

#include "data/dataset.h"
#include "similarity/similarity.h"

namespace rock {

/// Dice coefficient 2|A∩B| / (|A|+|B|); 0 when both sets are empty.
double DiceSimilarity(const Transaction& a, const Transaction& b);

/// Cosine (Ochiai) coefficient |A∩B| / √(|A|·|B|); 0 when either empty.
double CosineSimilarity(const Transaction& a, const Transaction& b);

/// Overlap coefficient |A∩B| / min(|A|,|B|); 0 when either empty.
double OverlapSimilarity(const Transaction& a, const Transaction& b);

/// Kind selector for TransactionSetSimilarity.
enum class SetMeasure { kJaccard, kDice, kCosine, kOverlap };

/// Indexed PointSimilarity over a transaction dataset with a selectable
/// measure — drop-in alternative to TransactionJaccard.
class TransactionSetSimilarity final : public PointSimilarity {
 public:
  /// Binds to `dataset` (must outlive this object).
  TransactionSetSimilarity(const TransactionDataset& dataset,
                           SetMeasure measure)
      : dataset_(dataset), measure_(measure) {}

  size_t size() const override { return dataset_.size(); }
  double Similarity(size_t i, size_t j) const override;

 private:
  const TransactionDataset& dataset_;
  SetMeasure measure_;
};

/// Simple-matching coefficient over categorical records: agreeing present
/// attributes / total attributes. Missing-on-either counts as disagreement
/// (the conservative convention).
class SimpleMatchingSimilarity final : public PointSimilarity {
 public:
  explicit SimpleMatchingSimilarity(const CategoricalDataset& dataset)
      : dataset_(dataset) {}

  size_t size() const override { return dataset_.size(); }
  double Similarity(size_t i, size_t j) const override;

 private:
  const CategoricalDataset& dataset_;
};

}  // namespace rock

#endif  // ROCK_SIMILARITY_SET_MEASURES_H_
