#include "similarity/lp_metric.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rock {

double LpDistance(std::span<const double> x, std::span<const double> y,
                  double p) {
  assert(x.size() == y.size());
  assert(p >= 1.0);
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum += std::pow(std::abs(x[i] - y[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

double L1Distance(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) sum += std::abs(x[i] - y[i]);
  return sum;
}

double SquaredL2Distance(std::span<const double> x,
                         std::span<const double> y) {
  assert(x.size() == y.size());
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    sum += d * d;
  }
  return sum;
}

double L2Distance(std::span<const double> x, std::span<const double> y) {
  return std::sqrt(SquaredL2Distance(x, y));
}

double LInfDistance(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double best = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    best = std::max(best, std::abs(x[i] - y[i]));
  }
  return best;
}

NormalizedLpSimilarity::NormalizedLpSimilarity(
    const std::vector<std::vector<double>>& points, double p)
    : points_(points), p_(p), max_distance_(0.0) {
  for (size_t i = 0; i < points_.size(); ++i) {
    for (size_t j = i + 1; j < points_.size(); ++j) {
      max_distance_ = std::max(max_distance_, Distance(i, j));
    }
  }
}

double NormalizedLpSimilarity::Distance(size_t i, size_t j) const {
  std::span<const double> x(points_[i]);
  std::span<const double> y(points_[j]);
  if (p_ == kInfinity) return LInfDistance(x, y);
  if (p_ == 1.0) return L1Distance(x, y);
  if (p_ == 2.0) return L2Distance(x, y);
  return LpDistance(x, y, p_);
}

double NormalizedLpSimilarity::Similarity(size_t i, size_t j) const {
  if (max_distance_ == 0.0) return 1.0;
  return 1.0 - Distance(i, j) / max_distance_;
}

}  // namespace rock
