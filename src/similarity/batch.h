// librock — similarity/batch.h
//
// Batched similarity evaluation. PointSimilarity's one-pair-per-virtual-call
// contract is what dominates neighbor-graph construction (n²/2 calls, paper
// §4.5); BatchSimilarity amortizes the dispatch to one call per row block
// and optionally exposes the two structural facts the θ-pruned neighbor
// engine (graph/neighbor_engine.h) exploits:
//
//   * per-row set sizes for the exact Jaccard length bound
//     fl(min(sᵢ,sⱼ)/max(sᵢ,sⱼ)) < θ  ⟹  fl(sim(i,j)) < θ, and
//   * a sparse item view for inverted-index candidate generation
//     (sim(i,j) > 0 only when rows i and j share an item).
//
// Both prunes are exact — monotone IEEE rounding means the double-valued
// bound can never discard a pair the double-valued similarity would keep —
// so engines built on this interface reproduce the per-pair oracle bit for
// bit.

#ifndef ROCK_SIMILARITY_BATCH_H_
#define ROCK_SIMILARITY_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rock {

/// Sorted item ids of every row in CSR form. Item ids are dense in
/// [0, universe); row r's items are items[row_offsets[r] … row_offsets[r+1])
/// in strictly ascending order.
struct SparseItemView {
  std::vector<uint64_t> row_offsets;  ///< size n + 1
  std::vector<uint32_t> items;        ///< concatenated sorted item ids
  uint32_t universe = 0;              ///< every item id is < universe

  size_t size() const {
    return row_offsets.empty() ? 0 : row_offsets.size() - 1;
  }
};

/// Block-filling similarity: semantically identical to a PointSimilarity
/// (same values, bit for bit), but evaluated a row block per call so the
/// per-pair virtual dispatch disappears from the hot loop.
class BatchSimilarity {
 public:
  virtual ~BatchSimilarity() = default;

  /// Number of points n in the indexed set.
  virtual size_t size() const = 0;

  /// out[t] = sim(i, js[t]) for t < count. Values must equal the per-pair
  /// PointSimilarity bit for bit. js entries must be < size(); they need
  /// not be sorted or distinct.
  virtual void SimilarityBatch(size_t i, const uint32_t* js, size_t count,
                               double* out) const = 0;

  /// Jaccard length-bound sizes, or nullptr when the similarity admits no
  /// such bound (e.g. pairwise-missing semantics, where records of very
  /// different sizes can still score 1). When non-null (size n), the
  /// similarity is exactly set-Jaccard over items():
  ///     sim(i, j) = |i ∩ j| / (s_i + s_j − |i ∩ j|)
  /// computed in double, so engines may derive it from an intersection
  /// count, and fl(min(s_i,s_j)/max(s_i,s_j)) < θ implies fl(sim) < θ.
  virtual const std::vector<uint32_t>* prune_sizes() const { return nullptr; }

  /// Sparse item view for inverted-index candidate generation, or nullptr.
  /// Contract when non-null: sim(i, j) == 0 whenever rows i and j share no
  /// item, so for θ > 0 the candidate pass loses no neighbor.
  virtual const SparseItemView* items() const { return nullptr; }
};

}  // namespace rock

#endif  // ROCK_SIMILARITY_BATCH_H_
