#include "similarity/similarity_table.h"

#include <cmath>

namespace rock {

SimilarityTable::SimilarityTable(size_t n) : n_(n), data_(n * n, 0.0) {
  for (size_t i = 0; i < n_; ++i) data_[i * n_ + i] = 1.0;
}

Status SimilarityTable::Set(size_t i, size_t j, double v) {
  if (i >= n_ || j >= n_) {
    return Status::OutOfRange("similarity index out of range");
  }
  if (!(v >= 0.0 && v <= 1.0)) {
    return Status::InvalidArgument("similarity must be in [0, 1]");
  }
  data_[i * n_ + j] = v;
  data_[j * n_ + i] = v;
  return Status::OK();
}

Result<SimilarityTable> SimilarityTable::FromMatrix(
    const std::vector<std::vector<double>>& matrix) {
  const size_t n = matrix.size();
  SimilarityTable table(n);
  for (size_t i = 0; i < n; ++i) {
    if (matrix[i].size() != n) {
      return Status::InvalidArgument("similarity matrix is not square");
    }
    for (size_t j = 0; j < n; ++j) {
      const double v = matrix[i][j];
      if (!(v >= 0.0 && v <= 1.0)) {
        return Status::InvalidArgument("similarity entries must be in [0, 1]");
      }
      if (std::abs(v - matrix[j][i]) > 1e-12) {
        return Status::InvalidArgument("similarity matrix is not symmetric");
      }
      table.data_[i * n + j] = v;
    }
  }
  return table;
}

}  // namespace rock
