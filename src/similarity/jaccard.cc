#include "similarity/jaccard.h"

#include "similarity/packed.h"

namespace rock {

double JaccardSimilarity(const Transaction& a, const Transaction& b) {
  const size_t uni = UnionSize(a, b);
  if (uni == 0) return 0.0;
  const size_t inter = a.size() + b.size() - uni;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::unique_ptr<BatchSimilarity> TransactionJaccard::MakeBatch() const {
  return PackedJaccard::PackTransactions(dataset_);
}

CategoricalJaccard::CategoricalJaccard(const CategoricalDataset& dataset)
    : dataset_(dataset) {
  present_.reserve(dataset.size());
  for (const Record& r : dataset.records()) {
    present_.push_back(static_cast<uint32_t>(r.NumPresent()));
  }
}

double CategoricalJaccard::Similarity(size_t i, size_t j) const {
  const Record& r1 = dataset_.record(i);
  const Record& r2 = dataset_.record(j);
  size_t equal = 0;
  const size_t d = r1.size();
  for (size_t a = 0; a < d; ++a) {
    // A both-missing attribute would compare equal (kMissingValue on each
    // side), so the present check must come first.
    const ValueId v = r1.value(a);
    if (v != kMissingValue && v == r2.value(a)) ++equal;
  }
  const size_t uni = present_[i] + present_[j] - equal;
  if (uni == 0) return 0.0;
  return static_cast<double>(equal) / static_cast<double>(uni);
}

std::unique_ptr<BatchSimilarity> CategoricalJaccard::MakeBatch() const {
  return PackedJaccard::PackCategorical(dataset_);
}

double PairwiseMissingJaccard::Similarity(size_t i, size_t j) const {
  const Record& r1 = dataset_.record(i);
  const Record& r2 = dataset_.record(j);
  size_t both = 0;
  size_t equal = 0;
  const size_t d = r1.size();
  for (size_t a = 0; a < d; ++a) {
    if (r1.IsMissing(a) || r2.IsMissing(a)) continue;
    ++both;
    if (r1.value(a) == r2.value(a)) ++equal;
  }
  if (both == 0) return 0.0;
  // Each restricted transaction has `both` items; the union therefore has
  // 2·both − equal items.
  return static_cast<double>(equal) / static_cast<double>(2 * both - equal);
}

std::unique_ptr<BatchSimilarity> PairwiseMissingJaccard::MakeBatch() const {
  return PackedJaccard::PackPairwiseMissing(dataset_);
}

}  // namespace rock
