#include "similarity/jaccard.h"

namespace rock {

double JaccardSimilarity(const Transaction& a, const Transaction& b) {
  const size_t uni = UnionSize(a, b);
  if (uni == 0) return 0.0;
  const size_t inter = a.size() + b.size() - uni;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double CategoricalJaccard::Similarity(size_t i, size_t j) const {
  const Record& r1 = dataset_.record(i);
  const Record& r2 = dataset_.record(j);
  size_t equal = 0;
  size_t present1 = 0;
  size_t present2 = 0;
  const size_t d = r1.size();
  for (size_t a = 0; a < d; ++a) {
    const bool p1 = !r1.IsMissing(a);
    const bool p2 = !r2.IsMissing(a);
    present1 += p1 ? 1 : 0;
    present2 += p2 ? 1 : 0;
    if (p1 && p2 && r1.value(a) == r2.value(a)) ++equal;
  }
  const size_t uni = present1 + present2 - equal;
  if (uni == 0) return 0.0;
  return static_cast<double>(equal) / static_cast<double>(uni);
}

double PairwiseMissingJaccard::Similarity(size_t i, size_t j) const {
  const Record& r1 = dataset_.record(i);
  const Record& r2 = dataset_.record(j);
  size_t both = 0;
  size_t equal = 0;
  const size_t d = r1.size();
  for (size_t a = 0; a < d; ++a) {
    if (r1.IsMissing(a) || r2.IsMissing(a)) continue;
    ++both;
    if (r1.value(a) == r2.value(a)) ++equal;
  }
  if (both == 0) return 0.0;
  // Each restricted transaction has `both` items; the union therefore has
  // 2·both − equal items.
  return static_cast<double>(equal) / static_cast<double>(2 * both - equal);
}

}  // namespace rock
