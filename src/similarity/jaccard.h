// librock — similarity/jaccard.h
//
// Jaccard-coefficient similarities (paper §3.1.1–§3.1.2):
//   * transactions: sim(T1, T2) = |T1 ∩ T2| / |T1 ∪ T2|;
//   * categorical records via the A.v item view, missing values omitted;
//   * the pairwise-missing variant for time-series-style data, where only
//     attributes observed in *both* records participate.

#ifndef ROCK_SIMILARITY_JACCARD_H_
#define ROCK_SIMILARITY_JACCARD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "similarity/similarity.h"

namespace rock {

/// sim(T1, T2) = |T1 ∩ T2| / |T1 ∪ T2|; two empty transactions get 0.
double JaccardSimilarity(const Transaction& a, const Transaction& b);

/// Jaccard over a transaction dataset (market-basket data).
class TransactionJaccard final : public PointSimilarity {
 public:
  /// Binds to `dataset`, which must outlive this object.
  explicit TransactionJaccard(const TransactionDataset& dataset)
      : dataset_(dataset) {}

  size_t size() const override { return dataset_.size(); }
  double Similarity(size_t i, size_t j) const override {
    return JaccardSimilarity(dataset_.transaction(i),
                             dataset_.transaction(j));
  }

  /// Bit-packed batch kernel (similarity/packed.h); nullptr over budget.
  std::unique_ptr<BatchSimilarity> MakeBatch() const override;

 private:
  const TransactionDataset& dataset_;
};

/// Jaccard over categorical records through the static A.v item view
/// (§3.1.2): intersection counts attributes present-and-equal in both;
/// union counts every present (attribute, value) item of either record.
/// Missing values simply contribute no item.
class CategoricalJaccard final : public PointSimilarity {
 public:
  /// Binds to `dataset`, which must outlive this object and must already
  /// contain every record (per-record presence counts are taken here, once,
  /// instead of being recounted on all n²/2 pairs).
  explicit CategoricalJaccard(const CategoricalDataset& dataset);

  size_t size() const override { return dataset_.size(); }
  double Similarity(size_t i, size_t j) const override;

  /// Bit-packed batch kernel (similarity/packed.h); nullptr over budget.
  std::unique_ptr<BatchSimilarity> MakeBatch() const override;

 private:
  const CategoricalDataset& dataset_;
  std::vector<uint32_t> present_;  ///< NumPresent() per record
};

/// Pairwise-missing Jaccard (§3.1.2, time-series): for records r1, r2, form
/// each record's transaction only over attributes observed in *both*, then
/// take Jaccard. Two records identical on their common observed attributes
/// score 1 regardless of how much history either is missing.
class PairwiseMissingJaccard final : public PointSimilarity {
 public:
  /// Binds to `dataset`, which must outlive this object.
  explicit PairwiseMissingJaccard(const CategoricalDataset& dataset)
      : dataset_(dataset) {}

  size_t size() const override { return dataset_.size(); }
  double Similarity(size_t i, size_t j) const override;

  /// Bit-packed batch kernel (similarity/packed.h); nullptr over budget.
  std::unique_ptr<BatchSimilarity> MakeBatch() const override;

 private:
  const CategoricalDataset& dataset_;
};

}  // namespace rock

#endif  // ROCK_SIMILARITY_JACCARD_H_
