#include "similarity/set_measures.h"

#include <algorithm>
#include <cmath>

#include "similarity/jaccard.h"

namespace rock {

double DiceSimilarity(const Transaction& a, const Transaction& b) {
  const size_t total = a.size() + b.size();
  if (total == 0) return 0.0;
  const size_t inter = IntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) / static_cast<double>(total);
}

double CosineSimilarity(const Transaction& a, const Transaction& b) {
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = IntersectionSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double OverlapSimilarity(const Transaction& a, const Transaction& b) {
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = IntersectionSize(a, b);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(a.size(), b.size()));
}

double TransactionSetSimilarity::Similarity(size_t i, size_t j) const {
  const Transaction& a = dataset_.transaction(i);
  const Transaction& b = dataset_.transaction(j);
  switch (measure_) {
    case SetMeasure::kJaccard:
      return JaccardSimilarity(a, b);
    case SetMeasure::kDice:
      return DiceSimilarity(a, b);
    case SetMeasure::kCosine:
      return CosineSimilarity(a, b);
    case SetMeasure::kOverlap:
      return OverlapSimilarity(a, b);
  }
  return 0.0;
}

double SimpleMatchingSimilarity::Similarity(size_t i, size_t j) const {
  const Record& r1 = dataset_.record(i);
  const Record& r2 = dataset_.record(j);
  const size_t d = r1.size();
  if (d == 0) return 0.0;
  size_t agree = 0;
  for (size_t a = 0; a < d; ++a) {
    if (!r1.IsMissing(a) && !r2.IsMissing(a) &&
        r1.value(a) == r2.value(a)) {
      ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(d);
}

}  // namespace rock
