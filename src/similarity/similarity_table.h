// librock — similarity/similarity_table.h
//
// Domain-expert similarity table (paper §1.2 / §3.1: "a domain
// expert/similarity table is the only source of knowledge"). An explicit
// symmetric n×n matrix of similarities in [0, 1]; ROCK runs on it unchanged
// because nothing in the algorithm requires a metric.

#ifndef ROCK_SIMILARITY_SIMILARITY_TABLE_H_
#define ROCK_SIMILARITY_SIMILARITY_TABLE_H_

#include <vector>

#include "common/status.h"
#include "similarity/similarity.h"

namespace rock {

/// Explicit pairwise-similarity matrix.
class SimilarityTable final : public PointSimilarity {
 public:
  /// Builds an n-point table initialized to identity (1 on the diagonal,
  /// 0 elsewhere). Entries are then filled with Set().
  explicit SimilarityTable(size_t n);

  /// Validates and builds a table from a full row-major n×n matrix: entries
  /// must be in [0, 1] and the matrix symmetric (diagonal entries are taken
  /// as given — an expert may declare self-similarity < 1, librock does not
  /// rely on it).
  static Result<SimilarityTable> FromMatrix(
      const std::vector<std::vector<double>>& matrix);

  /// Sets sim(i, j) = sim(j, i) = v; v must be in [0, 1].
  Status Set(size_t i, size_t j, double v);

  size_t size() const override { return n_; }
  double Similarity(size_t i, size_t j) const override {
    return data_[i * n_ + j];
  }

 private:
  size_t n_;
  std::vector<double> data_;  // row-major, kept symmetric by Set()
};

}  // namespace rock

#endif  // ROCK_SIMILARITY_SIMILARITY_TABLE_H_
