#include "similarity/similarity.h"

// PointSimilarity is a pure interface; this TU only anchors its vtable.

namespace rock {}  // namespace rock
