// librock — similarity/lp_metric.h
//
// L_p distance metrics (paper §1: "Lp = (Σ |x_i − y_i|^p)^{1/p}, 1 ≤ p ≤ ∞")
// and a normalizer turning them into [0, 1] similarities for the neighbor
// threshold. The centroid-based baseline uses L2 directly.

#ifndef ROCK_SIMILARITY_LP_METRIC_H_
#define ROCK_SIMILARITY_LP_METRIC_H_

#include <span>
#include <vector>

#include "similarity/similarity.h"

namespace rock {

/// L_p distance between equal-length vectors; p must be >= 1. Use
/// LInfDistance for p = ∞.
double LpDistance(std::span<const double> x, std::span<const double> y,
                  double p);

/// L1 (Manhattan) distance.
double L1Distance(std::span<const double> x, std::span<const double> y);

/// L2 (euclidean) distance.
double L2Distance(std::span<const double> x, std::span<const double> y);

/// L∞ (Chebyshev) distance.
double LInfDistance(std::span<const double> x, std::span<const double> y);

/// Squared L2 distance (no sqrt; what k-means actually minimizes).
double SquaredL2Distance(std::span<const double> x, std::span<const double> y);

/// Similarity view over numeric vectors: sim = 1 − d(x, y) / d_max where
/// d_max is the largest pairwise distance in the bound set (precomputed at
/// construction). Degenerate all-equal sets score 1 everywhere.
class NormalizedLpSimilarity final : public PointSimilarity {
 public:
  /// Binds to `points` (must outlive this object) with exponent `p`
  /// (p >= 1; use kInfinity for L∞).
  NormalizedLpSimilarity(const std::vector<std::vector<double>>& points,
                         double p);

  /// Sentinel exponent selecting the L∞ metric.
  static constexpr double kInfinity = -1.0;

  size_t size() const override { return points_.size(); }
  double Similarity(size_t i, size_t j) const override;

 private:
  double Distance(size_t i, size_t j) const;

  const std::vector<std::vector<double>>& points_;
  double p_;
  double max_distance_;
};

}  // namespace rock

#endif  // ROCK_SIMILARITY_LP_METRIC_H_
