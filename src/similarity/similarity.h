// librock — similarity/similarity.h
//
// The similarity abstraction of paper §3.1: a normalized function
// sim(p_i, p_j) ∈ [0, 1], larger = more similar. It "could be one of the
// well-known distance metrics or it could even be non-metric (e.g., a
// distance/similarity function provided by a domain expert)". ROCK's
// neighbor/link machinery depends only on this interface, which is what lets
// the algorithm extend to non-metric expert-supplied similarities.

#ifndef ROCK_SIMILARITY_SIMILARITY_H_
#define ROCK_SIMILARITY_SIMILARITY_H_

#include <cstddef>

namespace rock {

/// Normalized pairwise similarity over an indexed point set.
///
/// Contract: Similarity(i, j) ∈ [0, 1]; Similarity(i, j) == Similarity(j, i);
/// Similarity(i, i) == 1 for non-degenerate points. No triangle inequality is
/// assumed anywhere in librock.
class PointSimilarity {
 public:
  virtual ~PointSimilarity() = default;

  /// Number of points n in the indexed set.
  virtual size_t size() const = 0;

  /// Similarity between points i and j; both must be < size().
  virtual double Similarity(size_t i, size_t j) const = 0;
};

}  // namespace rock

#endif  // ROCK_SIMILARITY_SIMILARITY_H_
