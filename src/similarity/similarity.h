// librock — similarity/similarity.h
//
// The similarity abstraction of paper §3.1: a normalized function
// sim(p_i, p_j) ∈ [0, 1], larger = more similar. It "could be one of the
// well-known distance metrics or it could even be non-metric (e.g., a
// distance/similarity function provided by a domain expert)". ROCK's
// neighbor/link machinery depends only on this interface, which is what lets
// the algorithm extend to non-metric expert-supplied similarities.

#ifndef ROCK_SIMILARITY_SIMILARITY_H_
#define ROCK_SIMILARITY_SIMILARITY_H_

#include <cstddef>
#include <memory>

#include "similarity/batch.h"

namespace rock {

/// Normalized pairwise similarity over an indexed point set.
///
/// Contract: Similarity(i, j) ∈ [0, 1]; Similarity(i, j) == Similarity(j, i);
/// Similarity(i, i) == 1 for non-degenerate points. No triangle inequality is
/// assumed anywhere in librock.
class PointSimilarity {
 public:
  virtual ~PointSimilarity() = default;

  /// Number of points n in the indexed set.
  virtual size_t size() const = 0;

  /// Similarity between points i and j; both must be < size().
  virtual double Similarity(size_t i, size_t j) const = 0;

  /// Builds a batched evaluator producing bit-identical values, or nullptr
  /// when none exists (default, expert-supplied similarities, or a packed
  /// representation over the memory budget). Each call returns a fresh
  /// instance, so callers may use it from any thread. The packed neighbor
  /// engine (graph/neighbor_engine.h) consumes this and falls back to the
  /// per-pair path on nullptr.
  virtual std::unique_ptr<BatchSimilarity> MakeBatch() const {
    return nullptr;
  }
};

}  // namespace rock

#endif  // ROCK_SIMILARITY_SIMILARITY_H_
