// librock — eval/metrics.h
//
// External clustering-quality metrics. MisclassificationCount reproduces
// the paper's Table 6 measure ("number of transactions misclassified");
// purity, ARI and NMI are the standard modern complements used by the test
// suite and the ablation benches.

#ifndef ROCK_EVAL_METRICS_H_
#define ROCK_EVAL_METRICS_H_

#include "eval/contingency.h"

namespace rock {

/// Fraction of clustered points that belong to their cluster's majority
/// class. Outliers are excluded from numerator and denominator.
double Purity(const ContingencyTable& table);

/// Adjusted Rand Index over clustered, labeled points (outliers excluded);
/// 1 = perfect agreement, ≈0 = chance.
double AdjustedRandIndex(const ContingencyTable& table);

/// Normalized Mutual Information (arithmetic-mean normalization) over
/// clustered, labeled points; in [0, 1].
double NormalizedMutualInformation(const ContingencyTable& table);

/// Options for the Table 6 misclassification measure on data with a
/// designated ground-truth "outlier" class.
struct MisclassificationOptions {
  /// Label id of ground-truth outliers; kNoLabel when the dataset has none.
  LabelId outlier_label = kNoLabel;
};

/// Fowlkes–Mallows index √(precision · recall) over co-clustered pairs of
/// clustered, labeled points; in [0, 1], 1 = perfect.
double FowlkesMallows(const ContingencyTable& table);

/// Homogeneity (each cluster holds one class), completeness (each class
/// lands in one cluster), and their harmonic mean (V-measure). All in
/// [0, 1]; degenerate zero-entropy cases score 1 by convention.
struct VMeasure {
  double homogeneity = 0.0;
  double completeness = 0.0;
  double v = 0.0;
};
VMeasure ComputeVMeasure(const ContingencyTable& table);

/// The paper's misclassification count: each found cluster is identified
/// with its majority true class; a point is misclassified when
///   * it sits in a cluster whose majority class differs from its own, or
///   * it is a true cluster member left unassigned (dropped as an outlier), or
///   * it is a true outlier that was assigned to some cluster.
/// True outliers left unassigned are correct.
uint64_t MisclassificationCount(const ContingencyTable& table,
                                const MisclassificationOptions& options = {});

}  // namespace rock

#endif  // ROCK_EVAL_METRICS_H_
