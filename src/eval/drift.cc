#include "eval/drift.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "diag/metrics.h"

namespace rock {

DriftDetector::DriftDetector(ModelProfile profile,
                             const DriftOptions& options)
    : profile_(std::move(profile)), options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.min_observations == 0) options_.min_observations = 1;
}

void DriftDetector::Reset(ModelProfile profile) {
  profile_ = std::move(profile);
  window_.clear();
  observed_ = 0;
  report_ = DriftReport{};
}

void DriftDetector::Observe(
    const TransactionLabeler::AssignOutcome& outcome) {
  ++observed_;
  window_.push_back(Observation{
      outcome.cluster == kUnassigned ? int64_t{-1}
                                     : static_cast<int64_t>(outcome.cluster),
      outcome.neighbors});
  while (window_.size() > options_.window) window_.pop_front();
  Evaluate();

  diag::AddCounter(options_.metrics, "drift.observed", 1);
  diag::SetGauge(options_.metrics, "drift.tv_distance", report_.tv_distance);
  diag::SetGauge(options_.metrics, "drift.neighbor_ratio",
                 report_.profile_mean_neighbors > 0.0
                     ? report_.window_mean_neighbors /
                           report_.profile_mean_neighbors
                     : 0.0);
}

void DriftDetector::Evaluate() {
  report_.window_fill = window_.size();
  if (profile_.empty() || window_.size() < options_.min_observations) {
    return;
  }

  // Window distribution over {clusters…, outlier} and mean winning
  // neighbor count, recomputed from the window each time — O(window) per
  // row, and free of the incremental floating-point differences a running
  // add/subtract sum would accumulate between runs that observed the same
  // rows in different batch sizes.
  const size_t num_clusters = profile_.cluster_share.size();
  std::vector<uint64_t> won(num_clusters, 0);
  uint64_t outliers = 0;
  uint64_t assigned = 0;
  double neighbor_sum = 0.0;
  for (const Observation& o : window_) {
    if (o.cluster < 0 || static_cast<size_t>(o.cluster) >= num_clusters) {
      ++outliers;  // out-of-range clusters count as "not where they were"
    } else {
      ++won[static_cast<size_t>(o.cluster)];
      ++assigned;
      neighbor_sum += static_cast<double>(o.neighbors);
    }
  }
  const double rows = static_cast<double>(window_.size());
  double tv = std::abs(static_cast<double>(outliers) / rows -
                       profile_.outlier_share);
  for (size_t c = 0; c < num_clusters; ++c) {
    tv += std::abs(static_cast<double>(won[c]) / rows -
                   profile_.cluster_share[c]);
  }
  tv *= 0.5;

  const double window_mean =
      assigned > 0 ? neighbor_sum / static_cast<double>(assigned) : 0.0;
  const double profile_mean = profile_.OverallMeanNeighbors();

  report_.tv_distance = tv;
  report_.window_mean_neighbors = window_mean;
  report_.profile_mean_neighbors = profile_mean;
  const bool share_now = tv > options_.share_tolerance;
  const bool neighbor_now =
      options_.neighbor_ratio > 0.0 && profile_mean > 0.0 &&
      window_mean < options_.neighbor_ratio * profile_mean;
  report_.share_tripped = report_.share_tripped || share_now;
  report_.neighbor_tripped = report_.neighbor_tripped || neighbor_now;
  if (!report_.tripped && (share_now || neighbor_now)) {
    report_.tripped = true;
    ++trips_;
    diag::AddCounter(options_.metrics, "drift.trips", 1);
  }
}

}  // namespace rock
