// librock — eval/contingency.h
//
// Cluster-vs-ground-truth contingency table. The paper's quality results are
// all contingency readouts: Table 2 (Republicans/Democrats per cluster),
// Table 3 (edible/poisonous per cluster), Table 6 (misclassified
// transactions). Evaluation only — the clustering algorithms never see
// labels.

#ifndef ROCK_EVAL_CONTINGENCY_H_
#define ROCK_EVAL_CONTINGENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cluster.h"
#include "data/dataset.h"

namespace rock {

/// counts[c][l] = number of points in found cluster c with true class l.
class ContingencyTable {
 public:
  /// Builds from a per-point cluster assignment (kUnassigned rows are
  /// tallied as outliers, not in the table) and parallel true labels.
  /// Rows with kNoLabel are skipped entirely.
  static Result<ContingencyTable> Build(
      const std::vector<ClusterIndex>& assignment,
      const std::vector<LabelId>& labels, size_t num_clusters,
      size_t num_classes);

  /// Convenience overload pulling labels from a dataset's LabelSet.
  static Result<ContingencyTable> Build(const Clustering& clustering,
                                        const LabelSet& labels);

  size_t num_clusters() const { return counts_.size(); }
  size_t num_classes() const {
    return counts_.empty() ? 0 : counts_[0].size();
  }

  /// Count of class `l` points inside cluster `c`.
  uint64_t Count(size_t c, size_t l) const { return counts_[c][l]; }

  /// Size of cluster `c` (labeled points only).
  uint64_t ClusterTotal(size_t c) const;

  /// Total points of class `l` that landed in any cluster.
  uint64_t ClassTotal(size_t l) const;

  /// Labeled points covered by clusters (excludes outliers).
  uint64_t GrandTotal() const;

  /// Labeled points left unassigned (outliers), per class.
  const std::vector<uint64_t>& outliers_per_class() const {
    return outlier_counts_;
  }

  /// Majority true class of cluster `c` (smallest class id wins ties).
  size_t MajorityClass(size_t c) const;

 private:
  std::vector<std::vector<uint64_t>> counts_;
  std::vector<uint64_t> outlier_counts_;
};

}  // namespace rock

#endif  // ROCK_EVAL_CONTINGENCY_H_
