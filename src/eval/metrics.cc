#include "eval/metrics.h"

#include <cmath>

namespace rock {

double Purity(const ContingencyTable& table) {
  const uint64_t total = table.GrandTotal();
  if (total == 0) return 0.0;
  uint64_t agree = 0;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    agree += table.Count(c, table.MajorityClass(c));
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

namespace {
double Choose2(uint64_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}
}  // namespace

double AdjustedRandIndex(const ContingencyTable& table) {
  const uint64_t total = table.GrandTotal();
  if (total < 2) return 0.0;
  double sum_cells = 0.0;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    for (size_t l = 0; l < table.num_classes(); ++l) {
      sum_cells += Choose2(table.Count(c, l));
    }
  }
  double sum_rows = 0.0;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    sum_rows += Choose2(table.ClusterTotal(c));
  }
  double sum_cols = 0.0;
  for (size_t l = 0; l < table.num_classes(); ++l) {
    sum_cols += Choose2(table.ClassTotal(l));
  }
  const double expected = sum_rows * sum_cols / Choose2(total);
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 0.0;
  return (sum_cells - expected) / (max_index - expected);
}

double NormalizedMutualInformation(const ContingencyTable& table) {
  const double total = static_cast<double>(table.GrandTotal());
  if (total == 0.0) return 0.0;
  double mi = 0.0;
  double h_clusters = 0.0;
  double h_classes = 0.0;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    const double pc = static_cast<double>(table.ClusterTotal(c)) / total;
    if (pc > 0.0) h_clusters -= pc * std::log(pc);
  }
  for (size_t l = 0; l < table.num_classes(); ++l) {
    const double pl = static_cast<double>(table.ClassTotal(l)) / total;
    if (pl > 0.0) h_classes -= pl * std::log(pl);
  }
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    const double pc = static_cast<double>(table.ClusterTotal(c)) / total;
    if (pc == 0.0) continue;
    for (size_t l = 0; l < table.num_classes(); ++l) {
      const double pcl = static_cast<double>(table.Count(c, l)) / total;
      if (pcl == 0.0) continue;
      const double pl = static_cast<double>(table.ClassTotal(l)) / total;
      mi += pcl * std::log(pcl / (pc * pl));
    }
  }
  const double denom = 0.5 * (h_clusters + h_classes);
  if (denom == 0.0) return (mi == 0.0) ? 1.0 : 0.0;
  return mi / denom;
}

double FowlkesMallows(const ContingencyTable& table) {
  // TP = co-clustered same-class pairs; FP = co-clustered different-class;
  // FN = same-class pairs split across clusters.
  double tp = 0.0;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    for (size_t l = 0; l < table.num_classes(); ++l) {
      tp += Choose2(table.Count(c, l));
    }
  }
  double cluster_pairs = 0.0;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    cluster_pairs += Choose2(table.ClusterTotal(c));
  }
  double class_pairs = 0.0;
  for (size_t l = 0; l < table.num_classes(); ++l) {
    class_pairs += Choose2(table.ClassTotal(l));
  }
  if (cluster_pairs == 0.0 || class_pairs == 0.0) return 0.0;
  return tp / std::sqrt(cluster_pairs * class_pairs);
}

VMeasure ComputeVMeasure(const ContingencyTable& table) {
  const double total = static_cast<double>(table.GrandTotal());
  VMeasure out;
  if (total == 0.0) return out;

  double h_class = 0.0;    // H(C) — class entropy
  double h_cluster = 0.0;  // H(K) — cluster entropy
  for (size_t l = 0; l < table.num_classes(); ++l) {
    const double p = static_cast<double>(table.ClassTotal(l)) / total;
    if (p > 0.0) h_class -= p * std::log(p);
  }
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    const double p = static_cast<double>(table.ClusterTotal(c)) / total;
    if (p > 0.0) h_cluster -= p * std::log(p);
  }
  // Conditional entropies.
  double h_class_given_cluster = 0.0;
  double h_cluster_given_class = 0.0;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    for (size_t l = 0; l < table.num_classes(); ++l) {
      const double joint = static_cast<double>(table.Count(c, l)) / total;
      if (joint == 0.0) continue;
      const double p_cluster =
          static_cast<double>(table.ClusterTotal(c)) / total;
      const double p_class =
          static_cast<double>(table.ClassTotal(l)) / total;
      h_class_given_cluster -= joint * std::log(joint / p_cluster);
      h_cluster_given_class -= joint * std::log(joint / p_class);
    }
  }
  out.homogeneity =
      h_class == 0.0 ? 1.0 : 1.0 - h_class_given_cluster / h_class;
  out.completeness =
      h_cluster == 0.0 ? 1.0 : 1.0 - h_cluster_given_class / h_cluster;
  const double sum = out.homogeneity + out.completeness;
  out.v = sum == 0.0 ? 0.0
                     : 2.0 * out.homogeneity * out.completeness / sum;
  return out;
}

uint64_t MisclassificationCount(const ContingencyTable& table,
                                const MisclassificationOptions& options) {
  uint64_t wrong = 0;
  // Points inside clusters disagreeing with the cluster majority.
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    const size_t majority = table.MajorityClass(c);
    for (size_t l = 0; l < table.num_classes(); ++l) {
      if (l != majority) wrong += table.Count(c, l);
    }
  }
  // Unassigned points: true outliers are *correctly* dropped; everyone
  // else was lost.
  const auto& dropped = table.outliers_per_class();
  for (size_t l = 0; l < dropped.size(); ++l) {
    if (options.outlier_label != kNoLabel &&
        l == static_cast<size_t>(options.outlier_label)) {
      continue;
    }
    wrong += dropped[l];
  }
  return wrong;
}

}  // namespace rock
