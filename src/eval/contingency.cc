#include "eval/contingency.h"

namespace rock {

Result<ContingencyTable> ContingencyTable::Build(
    const std::vector<ClusterIndex>& assignment,
    const std::vector<LabelId>& labels, size_t num_clusters,
    size_t num_classes) {
  if (assignment.size() != labels.size()) {
    return Status::InvalidArgument(
        "assignment and labels must have equal length");
  }
  ContingencyTable table;
  table.counts_.assign(num_clusters, std::vector<uint64_t>(num_classes, 0));
  table.outlier_counts_.assign(num_classes, 0);
  for (size_t i = 0; i < assignment.size(); ++i) {
    const LabelId l = labels[i];
    if (l == kNoLabel) continue;
    if (l >= num_classes) {
      return Status::OutOfRange("label id exceeds num_classes");
    }
    const ClusterIndex c = assignment[i];
    if (c == kUnassigned) {
      ++table.outlier_counts_[l];
    } else if (static_cast<size_t>(c) >= num_clusters) {
      return Status::OutOfRange("cluster index exceeds num_clusters");
    } else {
      ++table.counts_[static_cast<size_t>(c)][l];
    }
  }
  return table;
}

Result<ContingencyTable> ContingencyTable::Build(const Clustering& clustering,
                                                 const LabelSet& labels) {
  if (labels.size() != clustering.assignment.size()) {
    return Status::InvalidArgument("label set does not cover clustering");
  }
  return Build(clustering.assignment, labels.labels(),
               clustering.num_clusters(), labels.num_classes());
}

uint64_t ContingencyTable::ClusterTotal(size_t c) const {
  uint64_t total = 0;
  for (uint64_t v : counts_[c]) total += v;
  return total;
}

uint64_t ContingencyTable::ClassTotal(size_t l) const {
  uint64_t total = 0;
  for (const auto& row : counts_) total += row[l];
  return total;
}

uint64_t ContingencyTable::GrandTotal() const {
  uint64_t total = 0;
  for (size_t c = 0; c < counts_.size(); ++c) total += ClusterTotal(c);
  return total;
}

size_t ContingencyTable::MajorityClass(size_t c) const {
  size_t best = 0;
  uint64_t best_count = 0;
  for (size_t l = 0; l < counts_[c].size(); ++l) {
    if (counts_[c][l] > best_count) {
      best_count = counts_[c][l];
      best = l;
    }
  }
  return best;
}

}  // namespace rock
