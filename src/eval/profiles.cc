#include "eval/profiles.h"

#include <algorithm>

#include "common/string_util.h"

namespace rock {

std::vector<ClusterProfile> ProfileClusters(const CategoricalDataset& dataset,
                                            const Clustering& clustering,
                                            const ProfileOptions& options) {
  const Schema& schema = dataset.schema();
  std::vector<ClusterProfile> out;
  out.reserve(clustering.num_clusters());

  for (size_t c = 0; c < clustering.num_clusters(); ++c) {
    const auto& members = clustering.clusters[c];
    ClusterProfile profile;
    profile.cluster = c;
    profile.size = members.size();

    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      std::vector<uint64_t> counts(schema.DomainSize(a), 0);
      uint64_t present = 0;
      for (PointIndex p : members) {
        const Record& r = dataset.record(p);
        if (r.IsMissing(a)) continue;
        ++present;
        ++counts[r.value(a)];
      }
      if (present == 0) continue;
      // Collect qualifying values for this attribute, best first.
      std::vector<ProfileEntry> qualifying;
      for (size_t v = 0; v < counts.size(); ++v) {
        const double support = static_cast<double>(counts[v]) /
                               static_cast<double>(present);
        if (support >= options.min_support) {
          qualifying.push_back(ProfileEntry{
              schema.attribute_name(a),
              schema.ValueName(a, static_cast<ValueId>(v)), support});
        }
      }
      std::sort(qualifying.begin(), qualifying.end(),
                [](const ProfileEntry& x, const ProfileEntry& y) {
                  if (x.support != y.support) return x.support > y.support;
                  return x.value < y.value;
                });
      for (auto& e : qualifying) profile.entries.push_back(std::move(e));
    }
    out.push_back(std::move(profile));
  }
  return out;
}

std::vector<std::vector<DiscriminativeEntry>> DiscriminativeProfiles(
    const CategoricalDataset& dataset, const Clustering& clustering,
    const DiscriminativeOptions& options) {
  const Schema& schema = dataset.schema();

  // Global value frequencies, per attribute, over present values.
  std::vector<std::vector<double>> global_freq(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    std::vector<uint64_t> counts(schema.DomainSize(a), 0);
    uint64_t present = 0;
    for (size_t i = 0; i < dataset.size(); ++i) {
      const Record& r = dataset.record(i);
      if (r.IsMissing(a)) continue;
      ++present;
      ++counts[r.value(a)];
    }
    global_freq[a].resize(counts.size(), 0.0);
    if (present > 0) {
      for (size_t v = 0; v < counts.size(); ++v) {
        global_freq[a][v] = static_cast<double>(counts[v]) /
                            static_cast<double>(present);
      }
    }
  }

  std::vector<std::vector<DiscriminativeEntry>> out(
      clustering.num_clusters());
  for (size_t c = 0; c < clustering.num_clusters(); ++c) {
    const auto& members = clustering.clusters[c];
    std::vector<DiscriminativeEntry> entries;
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      std::vector<uint64_t> counts(schema.DomainSize(a), 0);
      uint64_t present = 0;
      for (PointIndex p : members) {
        const Record& r = dataset.record(p);
        if (r.IsMissing(a)) continue;
        ++present;
        ++counts[r.value(a)];
      }
      if (present == 0) continue;
      for (size_t v = 0; v < counts.size(); ++v) {
        const double support = static_cast<double>(counts[v]) /
                               static_cast<double>(present);
        if (support < options.min_support) continue;
        const double global = global_freq[a][v];
        const double lift = global > 0.0 ? support / global : 0.0;
        if (lift < options.min_lift) continue;
        entries.push_back(DiscriminativeEntry{
            schema.attribute_name(a),
            schema.ValueName(a, static_cast<ValueId>(v)), support, lift});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const DiscriminativeEntry& x, const DiscriminativeEntry& y) {
                if (x.lift != y.lift) return x.lift > y.lift;
                if (x.support != y.support) return x.support > y.support;
                if (x.attribute != y.attribute) return x.attribute < y.attribute;
                return x.value < y.value;
              });
    if (options.top_k > 0 && entries.size() > options.top_k) {
      entries.resize(options.top_k);
    }
    out[c] = std::move(entries);
  }
  return out;
}

std::string FormatProfile(const ClusterProfile& profile) {
  std::string out = "Cluster " + std::to_string(profile.cluster + 1) +
                    " (size " + std::to_string(profile.size) + "):\n";
  for (const auto& e : profile.entries) {
    out += "  (" + e.attribute + "," + e.value + "," +
           FormatDouble(e.support, 2) + ")\n";
  }
  return out;
}

}  // namespace rock
