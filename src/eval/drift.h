// librock — eval/drift.h
//
// Drift detection for the streaming layer (docs/DESIGN.md §11). A model is
// built once from a sample; appended rows are labeled online against it.
// The detector watches the §4.6 assignment evidence of newly labeled rows —
// which cluster won and with how many labeling-set neighbors — over a
// sliding window, and compares two statistics against the model's
// build-time profile (core/model_bundle.h):
//
//   share drift    — total-variation distance between the window's
//                    cluster-share distribution (outliers included as
//                    their own bucket) and the profile's. New data landing
//                    in different clusters, or turning into outliers, moves
//                    this toward 1.
//   neighbor drift — the window's mean winning neighbor count N_i(p)
//                    falling below `neighbor_ratio` × the profile's mean.
//                    Rows that still land in the right clusters but barely
//                    qualify (goodness decay) trip this before the share
//                    distribution moves.
//
// Either condition past its threshold trips the detector. Tripping is
// sticky — it latches until Reset() installs a new baseline (after a
// re-cluster swaps a fresh model in). A detector with an empty profile
// (version-1 bundle) observes but never trips.
//
// Metrics (drift.*, docs/OBSERVABILITY.md): drift.observed, drift.trips,
// drift.tv_distance, drift.neighbor_ratio.

#ifndef ROCK_EVAL_DRIFT_H_
#define ROCK_EVAL_DRIFT_H_

#include <cstdint>
#include <deque>

#include "core/labeling.h"
#include "core/model_bundle.h"

namespace rock {

namespace diag {
class MetricsRegistry;
}  // namespace diag

/// Thresholds for the drift decision.
struct DriftOptions {
  /// Sliding window: the most recent `window` labeled rows are compared
  /// against the profile.
  size_t window = 256;
  /// No verdict before this many rows are in the window — a handful of
  /// unlucky rows must not trip a re-cluster.
  size_t min_observations = 64;
  /// Trip when the total-variation distance between the window's and the
  /// profile's cluster-share distributions exceeds this (0..1).
  double share_tolerance = 0.25;
  /// Trip when the window's mean winning neighbor count drops below this
  /// fraction of the profile's mean. 0 disables the neighbor check.
  double neighbor_ratio = 0.5;
  /// When non-null, Observe records the drift.* metrics here. Single
  /// writer: the registry must only be fed from the appending thread.
  diag::MetricsRegistry* metrics = nullptr;
};

/// The detector's current verdict and the evidence behind it.
struct DriftReport {
  bool tripped = false;           ///< sticky: latched until Reset
  bool share_tripped = false;     ///< TV distance crossed share_tolerance
  bool neighbor_tripped = false;  ///< neighbor mean fell under the ratio
  double tv_distance = 0.0;
  double window_mean_neighbors = 0.0;
  double profile_mean_neighbors = 0.0;
  size_t window_fill = 0;         ///< rows currently in the window
};

/// Streams AssignDetailed outcomes and decides when incremental labeling
/// has degraded enough to warrant a background re-cluster. Not thread-safe;
/// the streaming session serializes Observe/Reset.
class DriftDetector {
 public:
  DriftDetector() = default;
  DriftDetector(ModelProfile profile, const DriftOptions& options);

  /// Installs a new baseline (after a model swap) and clears the window
  /// and the latch.
  void Reset(ModelProfile profile);

  /// Feeds one newly labeled row's assignment evidence.
  void Observe(const TransactionLabeler::AssignOutcome& outcome);

  /// True once either drift condition has fired since the last Reset.
  bool tripped() const { return report_.tripped; }

  /// The current verdict + evidence.
  const DriftReport& report() const { return report_; }

  /// Rows observed since the last Reset (window evictions included).
  uint64_t observed() const { return observed_; }

  /// True when the baseline profile is empty (detector can never trip).
  bool disabled() const { return profile_.empty(); }

 private:
  void Evaluate();

  ModelProfile profile_;
  DriftOptions options_;
  /// (cluster, winning neighbors) per windowed row; cluster -1 = outlier.
  struct Observation {
    int64_t cluster;
    uint32_t neighbors;
  };
  std::deque<Observation> window_;
  uint64_t observed_ = 0;
  uint64_t trips_ = 0;
  DriftReport report_;
};

}  // namespace rock

#endif  // ROCK_EVAL_DRIFT_H_
