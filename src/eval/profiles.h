// librock — eval/profiles.h
//
// Cluster characterization (paper Tables 7–9): for each cluster, the
// frequent (attribute, value, support) triples — e.g. votes cluster 1:
// "(el-salvador-aid, y, 0.99)". Support is computed over cluster members
// with a present value for the attribute.

#ifndef ROCK_EVAL_PROFILES_H_
#define ROCK_EVAL_PROFILES_H_

#include <string>
#include <vector>

#include "core/cluster.h"
#include "data/dataset.h"

namespace rock {

/// One frequent attribute value of a cluster.
struct ProfileEntry {
  std::string attribute;
  std::string value;
  double support = 0.0;  ///< fraction of members (with the attribute present)
};

/// Frequent values of one cluster, grouped per attribute in schema order;
/// within an attribute, decreasing support.
struct ClusterProfile {
  size_t cluster = 0;
  size_t size = 0;
  std::vector<ProfileEntry> entries;
};

/// Options for profiling.
struct ProfileOptions {
  /// Keep values with support >= this threshold (paper tables list values
  /// down to ~0.09, i.e. effectively all non-rare values).
  double min_support = 0.5;
};

/// Profiles every cluster of `clustering` against the categorical dataset
/// it was computed on.
std::vector<ClusterProfile> ProfileClusters(const CategoricalDataset& dataset,
                                            const Clustering& clustering,
                                            const ProfileOptions& options);

/// Renders a profile in the paper's "(attribute,value,support)" style.
std::string FormatProfile(const ClusterProfile& profile);

/// One discriminative attribute value of a cluster: frequent inside the
/// cluster *and* over-represented relative to the whole data set.
struct DiscriminativeEntry {
  std::string attribute;
  std::string value;
  double support = 0.0;  ///< in-cluster frequency
  double lift = 0.0;     ///< support / global frequency of the value
};

/// Options for discriminative profiling.
struct DiscriminativeOptions {
  /// Keep values with in-cluster support >= this.
  double min_support = 0.5;
  /// …and lift >= this (1 = no enrichment required; 2 = twice as common
  /// inside the cluster as globally).
  double min_lift = 1.5;
  /// Entries per cluster (best lift first); 0 = unlimited.
  size_t top_k = 8;
};

/// The values that *characterize* each cluster against the data set —
/// frequent-and-enriched, unlike ProfileClusters which reports frequency
/// alone (a value common everywhere, e.g. veil-type=partial in the
/// mushroom data, scores lift ≈ 1 and drops out here).
std::vector<std::vector<DiscriminativeEntry>> DiscriminativeProfiles(
    const CategoricalDataset& dataset, const Clustering& clustering,
    const DiscriminativeOptions& options);

}  // namespace rock

#endif  // ROCK_EVAL_PROFILES_H_
