// librock — core/labeling.h
//
// Labeling phase (paper §4.6, "Labeling Data on Disk"): after clustering the
// in-memory sample, every remaining point p on disk is assigned to the
// cluster i maximizing its normalized neighbor count
//
//     score_i(p) = N_i(p) / (|L_i| + 1)^{f(θ)}
//
// where L_i is a fraction of cluster i's sampled points kept for labeling
// and N_i(p) = |{ q ∈ L_i : sim(p, q) >= θ }|. Points with zero neighbors in
// every labeling set are outliers.

#ifndef ROCK_CORE_LABELING_H_
#define ROCK_CORE_LABELING_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/cluster.h"
#include "core/options.h"
#include "data/dataset.h"
#include "data/disk_store.h"
#include "similarity/jaccard.h"

namespace rock {

/// Options for building a TransactionLabeler.
struct LabelingOptions {
  /// Fraction of each cluster's sampled points kept in L_i (0 < f <= 1).
  double fraction = 0.25;
  /// Floor on |L_i| so tiny clusters still label (capped at cluster size).
  size_t min_labeling_points = 8;
  /// Seed for the per-cluster subset draw.
  uint64_t seed = 42;
};

/// Assigns market-basket transactions to the clusters discovered on a
/// sample, per paper §4.6.
class TransactionLabeler {
 public:
  /// Builds labeling sets L_i from `sample` and its `clustering`.
  /// `rock_options` supplies θ and f(θ). Copies the selected transactions,
  /// so the sample dataset may be discarded afterwards.
  static Result<TransactionLabeler> Build(const TransactionDataset& sample,
                                          const Clustering& clustering,
                                          const RockOptions& rock_options,
                                          const LabelingOptions& options);

  /// Cluster index for `tx`, or kUnassigned when tx has no neighbor in any
  /// labeling set.
  ClusterIndex Assign(const Transaction& tx) const;

  /// Number of clusters the labeler can assign to.
  size_t num_clusters() const { return sets_.size(); }

  /// Size of labeling set L_i.
  size_t labeling_set_size(size_t i) const { return sets_[i].size(); }

  /// Serializes the labeler (θ, f(θ), all labeling sets) to a binary file
  /// so the labeling phase can run in a different process — e.g. sharded
  /// over the store — without re-clustering the sample.
  Status Save(const std::string& path) const;

  /// Restores a labeler written by Save(). Item ids must come from the
  /// same dictionary as the store being labeled (as with Build()).
  static Result<TransactionLabeler> Load(const std::string& path);

 private:
  TransactionLabeler(double theta, double exponent)
      : theta_(theta), f_exponent_(exponent) {}

  double theta_;
  double f_exponent_;  // f(θ), the normalization exponent
  std::vector<std::vector<Transaction>> sets_;  // L_i per cluster
  std::vector<double> normalizers_;             // (|L_i|+1)^{f(θ)}
};

/// Result of labeling one on-disk store.
struct LabelingRunResult {
  /// Cluster per store row (kUnassigned = outlier). Size = store count.
  std::vector<ClusterIndex> assignments;
  /// Ground-truth label ids carried by the store (kNoLabel where absent).
  std::vector<LabelId> ground_truth;
  size_t num_outliers = 0;
};

/// Streams `store_path` through the labeler, assigning every transaction.
Result<LabelingRunResult> LabelStore(const std::string& store_path,
                                     const TransactionLabeler& labeler);

}  // namespace rock

#endif  // ROCK_CORE_LABELING_H_
