// librock — core/labeling.h
//
// Labeling phase (paper §4.6, "Labeling Data on Disk"): after clustering the
// in-memory sample, every remaining point p on disk is assigned to the
// cluster i maximizing its normalized neighbor count
//
//     score_i(p) = N_i(p) / (|L_i| + 1)^{f(θ)}
//
// where L_i is a fraction of cluster i's sampled points kept for labeling
// and N_i(p) = |{ q ∈ L_i : sim(p, q) >= θ }|. Points with zero neighbors in
// every labeling set are outliers.

#ifndef ROCK_CORE_LABELING_H_
#define ROCK_CORE_LABELING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/cluster.h"
#include "core/options.h"
#include "data/dataset.h"
#include "data/disk_store.h"
#include "similarity/jaccard.h"
#include "util/retry.h"

namespace rock {

namespace diag {
class MetricsRegistry;
}  // namespace diag

/// Options for building a TransactionLabeler.
struct LabelingOptions {
  /// Fraction of each cluster's sampled points kept in L_i (0 < f <= 1).
  double fraction = 0.25;
  /// Floor on |L_i| so tiny clusters still label (capped at cluster size).
  size_t min_labeling_points = 8;
  /// Seed for the per-cluster subset draw.
  uint64_t seed = 42;
};

/// Assigns market-basket transactions to the clusters discovered on a
/// sample, per paper §4.6.
class TransactionLabeler {
 public:
  /// Builds labeling sets L_i from `sample` and its `clustering`.
  /// `rock_options` supplies θ and f(θ). Copies the selected transactions,
  /// so the sample dataset may be discarded afterwards.
  static Result<TransactionLabeler> Build(const TransactionDataset& sample,
                                          const Clustering& clustering,
                                          const RockOptions& rock_options,
                                          const LabelingOptions& options);

  /// Per-thread reusable workspace for Assign. The ScanCount pass marks
  /// labeling points and clusters through epoch-stamped arrays, so nothing
  /// is cleared between calls; giving each labeling worker its own Scratch
  /// makes Assign allocation-free (after warm-up) and thread-safe.
  struct Scratch {
    std::vector<uint32_t> point_count;        ///< |T ∩ q| per labeling point
    std::vector<uint32_t> point_stamp;        ///< epoch marks for point_count
    std::vector<uint32_t> touched;            ///< points with count > 0
    std::vector<uint32_t> cluster_neighbors;  ///< N_i(T) per cluster
    std::vector<uint32_t> cluster_stamp;      ///< epoch marks for clusters
    uint32_t epoch = 0;
  };

  /// Pruning counters accumulated by Assign. Summed per shard and merged in
  /// shard order by LabelStore, so totals are deterministic.
  struct AssignStats {
    /// Clusters skipped because they share no item with the transaction.
    uint64_t clusters_pruned = 0;
    /// Clusters whose labeling set was actually scanned.
    uint64_t clusters_scored = 0;
    /// Item-sharing labeling points skipped by the Jaccard length bound
    /// min(|T|,|q|)/max(|T|,|q|) < θ without evaluating the similarity.
    uint64_t points_skipped_length = 0;
    /// Exact Jaccard evaluations (from ScanCount intersection counts).
    uint64_t similarities_computed = 0;

    /// Adds `other`'s counts into this.
    void Merge(const AssignStats& other);
  };

  /// Everything one §4.6 assignment decides: the winning cluster plus the
  /// evidence behind it. `neighbors` is N_i(p) for the winning cluster i
  /// (0 for outliers) and `score` the winning N_i(p)/(|L_i|+1)^f(θ) —
  /// the per-row goodness the drift detector (eval/drift.h) profiles.
  struct AssignOutcome {
    ClusterIndex cluster = kUnassigned;
    uint32_t neighbors = 0;
    double score = 0.0;
  };

  /// Cluster index for `tx`, or kUnassigned when tx has no neighbor in any
  /// labeling set.
  ClusterIndex Assign(const Transaction& tx) const;

  /// As above, with an optional reusable `scratch` (nullptr = internal
  /// temporary) and optional pruning-counter accumulation into `stats`.
  /// Walks the inverted item index once to accumulate exact intersection
  /// counts for every labeling point sharing an item with `tx` (ScanCount),
  /// then derives each touched point's Jaccard from its count in O(1) —
  /// untouched points have similarity 0 and are never visited, and the
  /// Jaccard length bound min(|T|,|q|)/max(|T|,|q|) < θ skips the rest
  /// before the division. Every surviving similarity is the same
  /// `double(|∩|)/double(|∪|)` JaccardSimilarity computes, so the result
  /// is bit-identical to AssignUnpruned for every input.
  ClusterIndex Assign(const Transaction& tx, Scratch* scratch,
                      AssignStats* stats) const;

  /// The same decision as Assign (identical code path, bit-identical
  /// winner), additionally reporting the winning cluster's neighbor count
  /// and score. This is the entry point the streaming layer uses so every
  /// incremental label doubles as a drift observation.
  AssignOutcome AssignDetailed(const Transaction& tx, Scratch* scratch,
                               AssignStats* stats) const;

  /// Reference implementation: brute-force Jaccard against every labeling
  /// point of every cluster, exactly the pre-index engine. Kept as the
  /// oracle for the differential tests and the labeling benchmarks.
  ClusterIndex AssignUnpruned(const Transaction& tx) const;

  /// Number of clusters the labeler can assign to.
  size_t num_clusters() const { return sets_.size(); }

  /// Size of labeling set L_i.
  size_t labeling_set_size(size_t i) const { return sets_[i].size(); }

  /// Serializes the labeler (θ, f(θ), all labeling sets) to a binary file
  /// so the labeling phase can run in a different process — e.g. sharded
  /// over the store — without re-clustering the sample. The file carries a
  /// payload crc32 (format version 2) that Load verifies, and the write
  /// path exposes the "labeler.save" failpoint site.
  Status Save(const std::string& path) const;

  /// Restores a labeler written by Save(). Item ids must come from the
  /// same dictionary as the store being labeled (as with Build()).
  static Result<TransactionLabeler> Load(const std::string& path);

  /// Reassembles a labeler from already-validated parts: θ, the
  /// normalization exponent f(θ), and the labeling sets L_i. Recomputes the
  /// normalizers and the inverted index, so a labeler round-tripped through
  /// any serialization (labeler file, model bundle) assigns bit-identically
  /// to the original. Rejects non-finite or out-of-range parameters the
  /// same way Load() does.
  static Result<TransactionLabeler> FromParts(
      double theta, double f_exponent,
      std::vector<std::vector<Transaction>> sets);

  /// Neighbor threshold θ the labeler was built with.
  double theta() const { return theta_; }
  /// Normalization exponent f(θ).
  double f_exponent() const { return f_exponent_; }
  /// Labeling set L_i (for serialization; treat as read-only).
  const std::vector<Transaction>& labeling_set(size_t i) const {
    return sets_[i];
  }

 private:
  TransactionLabeler(double theta, double exponent)
      : theta_(theta), f_exponent_(exponent) {}

  /// Builds the inverted point index from sets_ (called by Build and Load).
  void BuildIndex();

  double theta_;
  double f_exponent_;  // f(θ), the normalization exponent
  std::vector<std::vector<Transaction>> sets_;  // L_i per cluster
  std::vector<double> normalizers_;             // (|L_i|+1)^{f(θ)}
  /// Inverted index over all labeling points (flattened across clusters in
  /// cluster order): item id → point ids containing the item. One pass over
  /// a probe's postings yields exact |T ∩ q| for every point sharing an
  /// item; points sharing none have Jaccard 0, never ≥ θ for θ > 0.
  std::vector<std::vector<uint32_t>> item_to_points_;
  std::vector<uint32_t> point_cluster_;  ///< point id → owning cluster
  std::vector<uint32_t> point_size_;     ///< point id → |q|
};

/// Result of labeling one on-disk store.
struct LabelingRunResult {
  /// Cluster per store row (kUnassigned = outlier). Size = store count.
  std::vector<ClusterIndex> assignments;
  /// Ground-truth label ids carried by the store (kNoLabel where absent).
  std::vector<LabelId> ground_truth;
  size_t num_outliers = 0;
  /// Pruning counters summed over all shards (deterministic).
  TransactionLabeler::AssignStats stats;
  /// Wall time of the scan itself (excludes labeler construction).
  double seconds = 0.0;
  /// Worker threads and store shards the scan actually used.
  size_t threads_used = 1;
  size_t shards = 1;
  /// Shards restored from LabelStoreOptions::resume instead of scanned.
  size_t shards_skipped = 0;
  /// Transient-I/O retry accounting for the whole scan (retry.* metrics).
  RetryStats retry_stats;
};

/// Everything LabelStore reports about one finished shard, handed to
/// LabelStoreOptions::on_shard_complete so callers can checkpoint. The row
/// spans point at the shard's slice of the (still shared) result arrays —
/// the shard's rows are final once the callback runs, and LabelStore
/// serializes callback invocations, so reading them is race-free.
struct LabelShardCompletion {
  size_t shard = 0;              ///< index into the shard plan
  StoreShardRange range;         ///< rows this shard covered
  const ClusterIndex* assignments = nullptr;  ///< [range.num_rows]
  const LabelId* ground_truth = nullptr;      ///< [range.num_rows]
  TransactionLabeler::AssignStats stats;      ///< this shard's counters
  uint64_t outliers = 0;         ///< kUnassigned rows in this shard
};

/// Prior labeling progress for a resumed scan (from a pipeline checkpoint,
/// core/checkpoint.h). All vectors are borrowed and must outlive the
/// LabelStore call. `shard_done`, `shard_stats` and `shard_outliers` have
/// one entry per planned shard; `assignments`/`ground_truth` cover the
/// whole store and are only read for rows of completed shards.
struct LabelResumeState {
  uint64_t num_shards = 0;  ///< shard plan size the progress refers to
  const std::vector<uint8_t>* shard_done = nullptr;
  const std::vector<ClusterIndex>* assignments = nullptr;
  const std::vector<LabelId>* ground_truth = nullptr;
  const std::vector<TransactionLabeler::AssignStats>* shard_stats = nullptr;
  const std::vector<uint64_t>* shard_outliers = nullptr;
};

/// Controls for the sharded labeling scan.
struct LabelStoreOptions {
  /// Worker threads: 1 = serial scan, 0 = hardware concurrency.
  /// Assignments are bit-identical across all thread counts — shards are
  /// per-row-disjoint and merged in store order.
  size_t num_threads = 1;
  /// When non-null, the scan records label.* counters/gauges here (wall
  /// time, transactions/sec, candidate-prune hit rate; see
  /// docs/OBSERVABILITY.md).
  diag::MetricsRegistry* metrics = nullptr;
  /// Overrides the shard plan size (0 = derive from num_threads). Set by
  /// callers that persist per-shard progress so a resumed run replans the
  /// exact same shard boundaries regardless of its thread count.
  uint64_t num_shards = 0;
  /// Transient-I/O retry schedule for shard scans (docs/ROBUSTNESS.md).
  /// A shard whose reader fails with IOError is reopened and rescanned
  /// from its start; results stay bit-identical because shard rows are
  /// rewritten in place and per-shard counters reset per attempt.
  RetryPolicy retry;
  /// Injectable sleeper for the retry backoff (tests; nullptr = real).
  RetrySleeper retry_sleeper = nullptr;
  /// When set, called once per freshly scanned shard, right after its rows
  /// are final. Calls are serialized (a mutex) but can come from any
  /// worker, in any shard order. A non-OK return aborts the scan — that is
  /// how an injected checkpoint crash stops a run mid-flight.
  std::function<Status(const LabelShardCompletion&)> on_shard_complete;
  /// When non-null, shards marked done are restored instead of scanned.
  const LabelResumeState* resume = nullptr;
};

/// Labels every transaction of `store_path`. The store is split into
/// near-equal row ranges (StoreShardRange) claimed dynamically by
/// `options.num_threads` workers; each worker streams its ranges with a
/// range-scoped reader and writes assignments directly into the row slots
/// of the shared result, so the merged output is bit-identical to a serial
/// scan in store order.
Result<LabelingRunResult> LabelStore(const std::string& store_path,
                                     const TransactionLabeler& labeler,
                                     const LabelStoreOptions& options);

/// Serial convenience overload (num_threads = 1, no metrics).
Result<LabelingRunResult> LabelStore(const std::string& store_path,
                                     const TransactionLabeler& labeler);

}  // namespace rock

#endif  // ROCK_CORE_LABELING_H_
