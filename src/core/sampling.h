// librock — core/sampling.h
//
// Random sampling (paper §4.6 / Fig. 2): for large databases ROCK clusters a
// random sample that fits in memory, then labels the rest from disk. The
// paper cites Vitter's reservoir sampling [Vit85]; we implement Algorithm R
// (one uniform draw per element) and Vitter's Algorithm X (skip-based — the
// draws-per-skipped-run variant that dominates when k << n).

#ifndef ROCK_CORE_SAMPLING_H_
#define ROCK_CORE_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace rock {

/// Uniform reservoir sampler over a stream of T (Vitter's Algorithm R).
/// After offering the whole stream, sample() holds a uniform k-subset.
/// Items keep stream order of insertion positions only by accident; callers
/// needing order should sort by OfferIndex.
template <typename T>
class ReservoirSampler {
 public:
  /// Reservoir capacity k (> 0) and RNG (borrowed; must outlive sampler).
  ReservoirSampler(size_t k, Rng* rng) : k_(k), rng_(rng) {
    reservoir_.reserve(k);
    indices_.reserve(k);
  }

  /// Offers the next stream element.
  void Offer(const T& value) {
    if (reservoir_.size() < k_) {
      reservoir_.push_back(value);
      indices_.push_back(seen_);
    } else {
      const uint64_t j = rng_->UniformUint64(seen_ + 1);
      if (j < k_) {
        reservoir_[static_cast<size_t>(j)] = value;
        indices_[static_cast<size_t>(j)] = seen_;
      }
    }
    ++seen_;
  }

  /// Elements currently in the reservoir (uniform subset after the stream
  /// ends).
  const std::vector<T>& sample() const { return reservoir_; }

  /// Stream positions of the sampled elements (parallel to sample()).
  const std::vector<uint64_t>& sample_indices() const { return indices_; }

  /// Number of elements offered so far.
  uint64_t seen() const { return seen_; }

 private:
  size_t k_;
  Rng* rng_;
  uint64_t seen_ = 0;
  std::vector<T> reservoir_;
  std::vector<uint64_t> indices_;
};

/// Uniform k-subset of {0, …, n−1}, returned sorted. Requires k <= n.
std::vector<size_t> SampleIndices(size_t n, size_t k, Rng* rng);

/// Minimum random-sample size guaranteeing, with probability ≥ 1 − δ, that
/// every cluster of at least `min_cluster_size` points contributes at least
/// `fraction` of its points to the sample — the Chernoff-bound lemma of the
/// CURE paper [GRS98], which §4.6 cites for "an analysis of the appropriate
/// sample size for good quality clustering":
///
///   s ≥ f·n + (n / u) · log(1/δ)
///       + (n / u) · sqrt( log²(1/δ) + 2·f·u·log(1/δ) )
///
/// where n = population, u = min_cluster_size, f = fraction.
/// Result is capped at n.
size_t MinSampleSize(size_t population, size_t min_cluster_size,
                     double fraction, double delta);

/// Vitter's Algorithm X: number of records to *skip* before the next
/// reservoir replacement, given `seen` records so far and reservoir size k.
/// Exposed for the sampling property tests; ReservoirSampler composes the
/// same distribution one record at a time.
uint64_t VitterSkipX(uint64_t seen, size_t k, Rng* rng);

}  // namespace rock

#endif  // ROCK_CORE_SAMPLING_H_
