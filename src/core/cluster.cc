#include "core/cluster.h"

#include <algorithm>
#include <numeric>

namespace rock {

size_t Clustering::num_assigned() const {
  size_t n = 0;
  for (ClusterIndex c : assignment) {
    if (c != kUnassigned) ++n;
  }
  return n;
}

Clustering Clustering::FromAssignment(std::vector<ClusterIndex> assignment) {
  Clustering out;
  out.assignment = std::move(assignment);
  ClusterIndex max_id = -1;
  for (ClusterIndex c : out.assignment) max_id = std::max(max_id, c);
  std::vector<std::vector<PointIndex>> raw(
      static_cast<size_t>(max_id + 1));
  for (size_t p = 0; p < out.assignment.size(); ++p) {
    const ClusterIndex c = out.assignment[p];
    if (c != kUnassigned) raw[static_cast<size_t>(c)].push_back(
        static_cast<PointIndex>(p));
  }
  // Compact away empty ids and rewrite the assignment.
  std::vector<ClusterIndex> remap(raw.size(), kUnassigned);
  for (size_t c = 0; c < raw.size(); ++c) {
    if (raw[c].empty()) continue;
    remap[c] = static_cast<ClusterIndex>(out.clusters.size());
    out.clusters.push_back(std::move(raw[c]));
  }
  for (ClusterIndex& c : out.assignment) {
    if (c != kUnassigned) c = remap[static_cast<size_t>(c)];
  }
  return out;
}

void Clustering::SortBySizeDescending() {
  std::vector<size_t> order(clusters.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (clusters[a].size() != clusters[b].size()) {
      return clusters[a].size() > clusters[b].size();
    }
    // Clusters are non-empty and sorted, so front() is the smallest member.
    return clusters[a].front() < clusters[b].front();
  });
  std::vector<std::vector<PointIndex>> sorted;
  sorted.reserve(clusters.size());
  std::vector<ClusterIndex> remap(clusters.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    remap[order[rank]] = static_cast<ClusterIndex>(rank);
    sorted.push_back(std::move(clusters[order[rank]]));
  }
  clusters = std::move(sorted);
  for (ClusterIndex& c : assignment) {
    if (c != kUnassigned) c = remap[static_cast<size_t>(c)];
  }
}

}  // namespace rock
