#include "core/options.h"

namespace rock {

double MarketBasketF(double theta) { return (1.0 - theta) / (1.0 + theta); }

double ConservativeMarketBasketF(double theta) { return 1.0 / (1.0 + theta); }

Status RockOptions::Validate() const {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  if (num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (!f) {
    return Status::InvalidArgument("f(theta) function must be set");
  }
  const double fv = f(theta);
  if (!(fv >= 0.0)) {
    return Status::InvalidArgument("f(theta) must be non-negative");
  }
  // Negated-comparison form so a NaN (which fails every ordered compare)
  // is rejected here rather than slipping past both range checks.
  if (!(outlier_stop_multiple >= 0.0)) {
    return Status::InvalidArgument("outlier_stop_multiple must be >= 0");
  }
  if (outlier_stop_multiple > 0.0 && outlier_stop_multiple < 1.0) {
    return Status::InvalidArgument(
        "outlier_stop_multiple must be >= 1 when enabled");
  }
  if (row_chunk == 0) {
    return Status::InvalidArgument("row_chunk must be >= 1");
  }
  if (merge_shard_min == 0) {
    return Status::InvalidArgument("merge_shard_min must be >= 1");
  }
  if ((lsh_bands == 0) != (lsh_rows == 0)) {
    return Status::InvalidArgument(
        "lsh_bands and lsh_rows must be set together (both 0 auto-tunes)");
  }
  return Status::OK();
}

}  // namespace rock
