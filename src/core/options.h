// librock — core/options.h
//
// User-facing knobs for the ROCK clusterer, mirroring the paper's
// parameters: the similarity threshold θ (§3.1), the link-expectation
// exponent function f(θ) (§3.3), the desired cluster count k, and the two
// outlier-handling controls of §4.6 (isolated-point pruning and small-
// cluster weeding at a stop multiple of k).

#ifndef ROCK_CORE_OPTIONS_H_
#define ROCK_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace rock {

/// Sentinel for RockOptions::graph_threads: inherit num_threads.
inline constexpr size_t kGraphThreadsInherit = static_cast<size_t>(-1);

/// The paper's market-basket estimate f(θ) = (1 − θ) / (1 + θ): each point
/// of a cluster C_i has ≈ n_i^{f(θ)} neighbors inside C_i. Satisfies the
/// paper's sanity checks f(1) = 0 (only identical points are neighbors) and
/// f(0) = 1 (everyone is everyone's neighbor).
double MarketBasketF(double theta);

/// Alternative reading of the paper's (typographically garbled) market-
/// basket formula: f(θ) = 1/(1+θ). Its larger exponent penalizes merges
/// into big clusters more aggressively; unlike MarketBasketF it recovers
/// the paper's Figure 1 example end-to-end (see EXPERIMENTS.md). Note it
/// fails the paper's own boundary check f(1) = 0, so MarketBasketF is the
/// canonical default.
double ConservativeMarketBasketF(double theta);

/// Which data layout the Fig. 3 merge engine runs on. Results (merge
/// sequence, clustering, stats) are bit-identical across all three; only
/// memory layout and speed differ.
enum class MergeEngineKind {
  /// CSR link rows + sorted flat partner lists + batched heap updates.
  /// Kept as a second oracle for differential tests and perf baselines.
  kFlat,
  /// The original per-cluster `unordered_map` link tables. Kept as the
  /// reference oracle for differential tests and perf baselines.
  kHashed,
  /// Interleaved (AoS) partner rows, elided no-op heap fixups, and a
  /// relink that fans out over disjoint partner-id shards when
  /// merge_threads > 1 — the default engine (core/merge_parallel.cc).
  /// The merge *sequence* stays serial, so results are byte-identical to
  /// the other two at any thread count.
  kParallel,
};

/// Which engine builds the θ-thresholded neighbor graph. kPacked and
/// kScalar produce bit-identical graphs at any thread count; kLsh trades
/// a controlled amount of recall for sub-quadratic candidate generation
/// (precision stays 1 — every reported edge is exactly θ-verified), and
/// kAuto only makes that trade when the cost model predicts a clear win.
enum class NeighborEngineKind {
  /// Bit-packed popcount kernel + θ length-bound / inverted-index pruning
  /// (graph/neighbor_engine.h) — the default, always exact. Falls back to
  /// the scalar path for similarities without a batch kernel.
  kPacked,
  /// The original per-pair virtual-call sweep (graph/neighbors.h). Kept as
  /// the reference oracle for differential tests and perf baselines.
  kScalar,
  /// MinHash LSH banding candidates + exact θ-verification (the packed
  /// engine's kLsh strategy). Deterministic for a fixed lsh_seed at any
  /// thread count; recall follows 1 − (1 − θ^r)^b for the banding in use.
  kLsh,
  /// The packed engine's cost model, additionally allowed to pick the LSH
  /// pass when its estimated op count beats every exact pass by a wide
  /// margin (graph/neighbor_engine.h kLshAutoFactor).
  kAuto,
};

/// Which engine computes the pairwise link counts (paper §3.2 / Fig. 4).
/// Frozen CSR link rows are byte-identical between the two at any thread
/// count; only speed differs.
enum class LinkEngineKind {
  /// Bit-plane popcount engine (graph/link_engine.h): neighbor rows packed
  /// into 64-bit word planes, link(p, q) = popcount(row_p AND row_q) over
  /// exactly the pairs sharing ≥ 1 neighbor — the default. Falls back to
  /// the hashed scatter when the plane exceeds the packing budget.
  kPacked,
  /// The original Fig. 4 pair-counting scatter (graph/links.cc). Kept
  /// verbatim as the reference oracle for differential tests and perf
  /// baselines.
  kHashed,
};

/// Observability and self-checking knobs (see docs/OBSERVABILITY.md).
struct DiagOptions {
  /// Collect per-stage timers and counters into RockResult::metrics /
  /// PipelineResult::metrics. Costs a few dozen registry writes per run.
  bool collect_metrics = true;

  /// When > 0, the merge engine re-derives its link/heap bookkeeping from
  /// first principles after every Nth merge (plus once before the first and
  /// once after the last) and records violations under diag.invariant_*.
  /// 0 defers to the ROCK_DIAG_CHECKS environment variable / build option
  /// (diag::InvariantCheckInterval), which default to disabled.
  size_t invariant_check_every = 0;
};

/// Parameters of a ROCK clustering run.
struct RockOptions {
  /// Similarity threshold θ ∈ [0, 1]: pairs with sim ≥ θ are neighbors.
  double theta = 0.5;

  /// Desired number of clusters k. The algorithm may stop with more
  /// clusters if all cross-links are exhausted first (paper §5.2: mushroom
  /// stopped at 21 with k = 20), or fewer after outlier weeding.
  size_t num_clusters = 2;

  /// Link-expectation exponent f(θ). Defaults to MarketBasketF.
  std::function<double(double)> f = MarketBasketF;

  /// Outlier pruning (§4.6 first stage): points with fewer neighbors than
  /// this never participate in clustering. 0 disables pruning; the paper's
  /// default is to discard points "with very few or no neighbors".
  size_t min_neighbors = 1;

  /// Outlier weeding (§4.6 second stage): when > 0, clustering pauses at
  /// ceil(outlier_stop_multiple × k) clusters and discards clusters with
  /// fewer than min_cluster_support points before continuing to k.
  /// 0 disables the pause.
  double outlier_stop_multiple = 0.0;

  /// Minimum size a cluster must have to survive weeding.
  size_t min_cluster_support = 2;

  /// Worker threads for the neighbor-graph and link-computation phases
  /// (the O(n²)-ish parts; the merge loop is inherently sequential).
  /// 1 = serial (default), 0 = hardware concurrency. Results are
  /// identical regardless of thread count.
  size_t num_threads = 1;

  /// Rows claimed per scheduling step by the parallel graph phases
  /// (ParallelOptions::row_chunk). Smaller chunks balance better on skewed
  /// rows, larger chunks cut scheduling overhead. Ignored when
  /// num_threads == 1.
  size_t row_chunk = 16;

  /// Worker threads for just the neighbor-graph + link phases, overriding
  /// num_threads there when set (kGraphThreadsInherit = follow
  /// num_threads; 0 = hardware concurrency). Lets a pipeline keep the
  /// serial default elsewhere while the two graph phases fan out.
  size_t graph_threads = kGraphThreadsInherit;

  /// LSH banding for neighbor_engine kLsh / kAuto: bands b and rows per
  /// band r (signature length b·r, candidate recall 1 − (1 − θ^r)^b).
  /// Both 0 (the default) auto-tunes them from θ for ≥ 99.95% recall at
  /// similarity exactly θ under a bounded signature length
  /// (TuneLshOptions in similarity/minhash.h). Ignored by exact engines.
  size_t lsh_bands = 0;
  size_t lsh_rows = 0;

  /// Seed for the LSH hash family. Graphs from kLsh are deterministic
  /// functions of (data, banding, this seed) at any thread count.
  uint64_t lsh_seed = 0x5eed;

  /// Merge-engine data layout; see MergeEngineKind. All engines produce
  /// bit-identical results.
  MergeEngineKind merge_engine = MergeEngineKind::kParallel;

  /// Worker threads for the parallel merge engine's per-merge work (the
  /// sharded relink and the periodic compaction sweep; the merge sequence
  /// itself is inherently serial). 1 = serial (default), 0 = hardware
  /// concurrency. Results are byte-identical at any count. Ignored by the
  /// flat and hashed engines.
  size_t merge_threads = 1;

  /// Minimum combined live-entry count of the two merged clusters' rows
  /// for a relink to fan out over the shard pool; smaller relinks run the
  /// serial loop (waking workers costs more than a tiny merge). Only
  /// consulted when merge_threads > 1; determinism tests lower it to 1 to
  /// force the sharded path on small inputs.
  size_t merge_shard_min = 256;

  /// Neighbor-graph engine; see NeighborEngineKind. Both engines produce
  /// bit-identical graphs.
  NeighborEngineKind neighbor_engine = NeighborEngineKind::kPacked;

  /// Link-computation engine; see LinkEngineKind. Both engines produce
  /// byte-identical frozen link rows.
  LinkEngineKind link_engine = LinkEngineKind::kPacked;

  /// Worker threads for the disk labeling phase (§4.6, the only stage that
  /// touches the whole database). The store is split into row shards that
  /// workers claim dynamically; assignments are bit-identical across all
  /// thread counts. 1 = serial (default), 0 = hardware concurrency.
  size_t label_threads = 1;

  /// Metrics collection and runtime invariant checking.
  DiagOptions diag;

  /// Deterministic fault-injection schedule (util/failpoint.h grammar,
  /// e.g. "store.read=fire_on_hit_100:error"). Empty = leave the process
  /// schedule untouched. Applied by RunRockPipeline before any I/O; in
  /// builds compiled with -DROCK_FAILPOINTS=OFF a non-empty schedule is
  /// rejected with FailedPrecondition instead of being silently ignored.
  std::string failpoints;

  /// Thread count the graph phases actually run with: graph_threads
  /// unless it is kGraphThreadsInherit, in which case num_threads.
  size_t EffectiveGraphThreads() const {
    return graph_threads == kGraphThreadsInherit ? num_threads
                                                 : graph_threads;
  }

  /// Checks parameter sanity.
  Status Validate() const;
};

}  // namespace rock

#endif  // ROCK_CORE_OPTIONS_H_
