// librock — core/cluster.h
//
// Flat clustering result representation shared by ROCK and the baseline
// algorithms: a list of clusters (member point indices) plus the inverse
// point → cluster assignment, with kUnassigned marking outliers.

#ifndef ROCK_CORE_CLUSTER_H_
#define ROCK_CORE_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "graph/neighbors.h"

namespace rock {

/// Cluster index within a Clustering; kUnassigned marks outlier points.
using ClusterIndex = int32_t;
inline constexpr ClusterIndex kUnassigned = -1;

/// A flat partition (plus outliers) of n points.
struct Clustering {
  /// Member point indices per cluster; each inner vector is sorted.
  std::vector<std::vector<PointIndex>> clusters;

  /// Point → cluster index (kUnassigned for outliers). Size n.
  std::vector<ClusterIndex> assignment;

  /// Number of clusters.
  size_t num_clusters() const { return clusters.size(); }

  /// Number of points covered by clusters (excludes outliers).
  size_t num_assigned() const;

  /// Number of outlier points.
  size_t num_outliers() const { return assignment.size() - num_assigned(); }

  /// Builds the clusters list from an assignment vector over n points with
  /// values in {kUnassigned, 0 … max}. Gaps in cluster ids are compacted.
  static Clustering FromAssignment(std::vector<ClusterIndex> assignment);

  /// Reorders clusters by decreasing size (ties: smaller first member
  /// first) and rewrites the assignment accordingly. Gives deterministic,
  /// human-stable cluster numbering in reports.
  void SortBySizeDescending();
};

}  // namespace rock

#endif  // ROCK_CORE_CLUSTER_H_
