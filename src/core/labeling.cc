#include "core/labeling.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>

#include <mutex>

#include "common/timer.h"
#include "diag/metrics.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace rock {

Result<TransactionLabeler> TransactionLabeler::Build(
    const TransactionDataset& sample, const Clustering& clustering,
    const RockOptions& rock_options, const LabelingOptions& options) {
  ROCK_RETURN_IF_ERROR(rock_options.Validate());
  if (!(options.fraction > 0.0 && options.fraction <= 1.0)) {
    return Status::InvalidArgument("labeling fraction must be in (0, 1]");
  }
  if (clustering.assignment.size() != sample.size()) {
    return Status::InvalidArgument(
        "clustering does not cover the sample dataset");
  }

  TransactionLabeler labeler(rock_options.theta,
                             rock_options.f(rock_options.theta));
  labeler.sets_.resize(clustering.num_clusters());
  labeler.normalizers_.resize(clustering.num_clusters());

  Rng rng(options.seed);
  for (size_t c = 0; c < clustering.num_clusters(); ++c) {
    const auto& members = clustering.clusters[c];
    size_t want = static_cast<size_t>(std::ceil(
        options.fraction * static_cast<double>(members.size())));
    want = std::max(want, options.min_labeling_points);
    want = std::min(want, members.size());
    std::vector<size_t> picked =
        rng.SampleWithoutReplacement(members.size(), want);
    auto& set = labeler.sets_[c];
    set.reserve(want);
    for (size_t idx : picked) {
      set.push_back(sample.transaction(members[idx]));
    }
    labeler.normalizers_[c] =
        std::pow(static_cast<double>(set.size()) + 1.0, labeler.f_exponent_);
  }
  labeler.BuildIndex();
  return labeler;
}

Result<TransactionLabeler> TransactionLabeler::FromParts(
    double theta, double f_exponent,
    std::vector<std::vector<Transaction>> sets) {
  // Same plausibility gate as Load(): NaN-safe range checks.
  if (!(theta >= 0.0 && theta <= 1.0) || !(f_exponent >= 0.0)) {
    return Status::InvalidArgument("implausible labeler parameters");
  }
  TransactionLabeler labeler(theta, f_exponent);
  labeler.sets_ = std::move(sets);
  labeler.normalizers_.resize(labeler.sets_.size());
  for (size_t c = 0; c < labeler.sets_.size(); ++c) {
    labeler.normalizers_[c] = std::pow(
        static_cast<double>(labeler.sets_[c].size()) + 1.0, f_exponent);
  }
  labeler.BuildIndex();
  return labeler;
}

void TransactionLabeler::BuildIndex() {
  item_to_points_.clear();
  point_cluster_.clear();
  point_size_.clear();
  ItemId max_item = 0;
  bool any = false;
  for (const auto& set : sets_) {
    for (const Transaction& q : set) {
      if (!q.empty()) {
        any = true;
        max_item = std::max(max_item, q.items().back());
      }
    }
  }
  if (any) item_to_points_.resize(static_cast<size_t>(max_item) + 1);
  for (size_t c = 0; c < sets_.size(); ++c) {
    for (const Transaction& q : sets_[c]) {
      const uint32_t point = static_cast<uint32_t>(point_cluster_.size());
      point_cluster_.push_back(static_cast<uint32_t>(c));
      point_size_.push_back(static_cast<uint32_t>(q.size()));
      // Transactions are deduplicated, so each posting list gains this
      // point at most once.
      for (ItemId item : q) item_to_points_[item].push_back(point);
    }
  }
}

void TransactionLabeler::AssignStats::Merge(const AssignStats& other) {
  clusters_pruned += other.clusters_pruned;
  clusters_scored += other.clusters_scored;
  points_skipped_length += other.points_skipped_length;
  similarities_computed += other.similarities_computed;
}

ClusterIndex TransactionLabeler::Assign(const Transaction& tx) const {
  return Assign(tx, nullptr, nullptr);
}

ClusterIndex TransactionLabeler::AssignUnpruned(const Transaction& tx) const {
  ClusterIndex best = kUnassigned;
  double best_score = 0.0;
  for (size_t c = 0; c < sets_.size(); ++c) {
    size_t neighbors = 0;
    for (const Transaction& q : sets_[c]) {
      if (JaccardSimilarity(tx, q) >= theta_) ++neighbors;
    }
    if (neighbors == 0) continue;
    const double score =
        static_cast<double>(neighbors) / normalizers_[c];
    if (score > best_score) {
      best_score = score;
      best = static_cast<ClusterIndex>(c);
    }
  }
  return best;
}

ClusterIndex TransactionLabeler::Assign(const Transaction& tx,
                                        Scratch* scratch,
                                        AssignStats* stats) const {
  return AssignDetailed(tx, scratch, stats).cluster;
}

TransactionLabeler::AssignOutcome TransactionLabeler::AssignDetailed(
    const Transaction& tx, Scratch* scratch, AssignStats* stats) const {
  const size_t num_clusters = sets_.size();
  AssignOutcome best;

  // θ = 0 accepts every pair (Jaccard ≥ 0 always holds), so neither filter
  // can prune anything; run the full scan.
  if (theta_ <= 0.0) {
    for (size_t c = 0; c < num_clusters; ++c) {
      size_t neighbors = 0;
      for (const Transaction& q : sets_[c]) {
        if (stats != nullptr) ++stats->similarities_computed;
        if (JaccardSimilarity(tx, q) >= theta_) ++neighbors;
      }
      if (stats != nullptr) ++stats->clusters_scored;
      if (neighbors == 0) continue;
      const double score = static_cast<double>(neighbors) / normalizers_[c];
      if (score > best.score) {
        best.score = score;
        best.neighbors = static_cast<uint32_t>(neighbors);
        best.cluster = static_cast<ClusterIndex>(c);
      }
    }
    return best;
  }

  // ScanCount over the inverted index: one pass through the postings of
  // tx's items accumulates the exact intersection size |T ∩ q| for every
  // labeling point q sharing an item with T. Points sharing none have
  // Jaccard 0 and are never visited — for θ > 0 they can't be neighbors.
  Scratch local;
  if (scratch == nullptr) scratch = &local;
  const size_t num_points = point_cluster_.size();
  if (scratch->point_stamp.size() != num_points ||
      scratch->cluster_stamp.size() != num_clusters) {
    scratch->point_count.assign(num_points, 0);
    scratch->point_stamp.assign(num_points, 0);
    scratch->cluster_neighbors.assign(num_clusters, 0);
    scratch->cluster_stamp.assign(num_clusters, 0);
    scratch->epoch = 0;
  }
  if (++scratch->epoch == 0) {  // epoch wrapped: reset marks once
    std::fill(scratch->point_stamp.begin(), scratch->point_stamp.end(), 0u);
    std::fill(scratch->cluster_stamp.begin(), scratch->cluster_stamp.end(),
              0u);
    scratch->epoch = 1;
  }
  const uint32_t epoch = scratch->epoch;
  scratch->touched.clear();
  for (ItemId item : tx) {
    if (item >= item_to_points_.size()) continue;
    for (uint32_t p : item_to_points_[item]) {
      if (scratch->point_stamp[p] != epoch) {
        scratch->point_stamp[p] = epoch;
        scratch->point_count[p] = 1;
        scratch->touched.push_back(p);
      } else {
        ++scratch->point_count[p];
      }
    }
  }

  // Resolve each touched point: Jaccard ≤ min/max of the two sizes, so
  // points failing that bound are skipped before any division; the rest
  // get the exact similarity from the intersection count. Both the bound
  // and count/(|T|+|q|−count) divide the same integers JaccardSimilarity
  // divides, so no true neighbor is dropped and none is invented.
  const double t_size = static_cast<double>(tx.size());
  for (uint32_t p : scratch->touched) {
    const uint32_t cluster = point_cluster_[p];
    if (scratch->cluster_stamp[cluster] != epoch) {
      scratch->cluster_stamp[cluster] = epoch;
      scratch->cluster_neighbors[cluster] = 0;
    }
    const double q_size = static_cast<double>(point_size_[p]);
    const double lo = std::min(t_size, q_size);
    const double hi = std::max(t_size, q_size);
    if (lo / hi < theta_) {  // hi > 0: a touched point shares an item
      if (stats != nullptr) ++stats->points_skipped_length;
      continue;
    }
    if (stats != nullptr) ++stats->similarities_computed;
    const uint32_t inter = scratch->point_count[p];
    const double uni =
        t_size + q_size - static_cast<double>(inter);
    if (static_cast<double>(inter) / uni >= theta_) {
      ++scratch->cluster_neighbors[cluster];
    }
  }

  for (size_t c = 0; c < num_clusters; ++c) {
    if (scratch->cluster_stamp[c] != epoch) {
      if (stats != nullptr) ++stats->clusters_pruned;
      continue;
    }
    if (stats != nullptr) ++stats->clusters_scored;
    const uint32_t neighbors = scratch->cluster_neighbors[c];
    if (neighbors == 0) continue;
    const double score = static_cast<double>(neighbors) / normalizers_[c];
    if (score > best.score) {
      best.score = score;
      best.neighbors = neighbors;
      best.cluster = static_cast<ClusterIndex>(c);
    }
  }
  return best;
}

namespace {

constexpr uint64_t kLabelerMagic = 0x524f434b4c41424cULL;  // "ROCKLABL"
// Version 2 added the header crc32 over the payload.
constexpr uint32_t kLabelerVersion = 2;
constexpr long kLabelerCrcOffset =
    static_cast<long>(sizeof(kLabelerMagic) + sizeof(kLabelerVersion));

/// Per-transaction item cap shared by Save (reject) and Load (corruption
/// bound): lengths are serialized as uint32_t, and anything this large is
/// a bug or a corrupt file, not data.
constexpr uint64_t kMaxLabelerTransactionItems = 1u << 24;

/// Checksumming writer for the labeler payload; every write consults the
/// "labeler.save" failpoint site, so torn writes can land mid-file.
struct LabelerPayloadWriter {
  std::FILE* f;
  Crc32Accumulator crc;

  Status Write(const void* data, size_t n) {
    ROCK_RETURN_IF_ERROR(fail::ConsultWrite("labeler.save", f, data, n));
    if (std::fwrite(data, 1, n, f) != n) {
      return Status::IOError("short write to labeler file");
    }
    crc.Update(data, n);
    return Status::OK();
  }
};

/// Checksumming reader for the labeler payload ("labeler.load" site).
struct LabelerPayloadReader {
  std::FILE* f;
  Crc32Accumulator crc;

  Status Read(void* data, size_t n) {
    ROCK_RETURN_IF_ERROR(fail::ConsultRead("labeler.load"));
    if (std::fread(data, 1, n, f) != n) {
      return Status::Corruption("short read from labeler file");
    }
    crc.Update(data, n);
    return Status::OK();
  }
};

Status WriteRaw(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::IOError("short write to labeler file");
  }
  return Status::OK();
}

Status ReadRaw(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::Corruption("short read from labeler file");
  }
  return Status::OK();
}

}  // namespace

Status TransactionLabeler::Save(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot create '" + path + "'");
  }
  std::FILE* f = file.get();
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &kLabelerMagic, sizeof(kLabelerMagic)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &kLabelerVersion, sizeof(kLabelerVersion)));
  uint32_t crc_placeholder = 0;
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &crc_placeholder, sizeof(crc_placeholder)));
  LabelerPayloadWriter w{f, Crc32Accumulator{}};
  ROCK_RETURN_IF_ERROR(w.Write(&theta_, sizeof(theta_)));
  ROCK_RETURN_IF_ERROR(w.Write(&f_exponent_, sizeof(f_exponent_)));
  const uint64_t num_clusters = sets_.size();
  ROCK_RETURN_IF_ERROR(w.Write(&num_clusters, sizeof(num_clusters)));
  for (const auto& set : sets_) {
    const uint64_t set_size = set.size();
    ROCK_RETURN_IF_ERROR(w.Write(&set_size, sizeof(set_size)));
    for (const Transaction& tx : set) {
      if (tx.size() > kMaxLabelerTransactionItems) {
        return Status::InvalidArgument(
            "labeling transaction has " + std::to_string(tx.size()) +
            " items; the labeler format caps transactions at " +
            std::to_string(kMaxLabelerTransactionItems));
      }
      const uint32_t n = static_cast<uint32_t>(tx.size());
      ROCK_RETURN_IF_ERROR(w.Write(&n, sizeof(n)));
      if (n > 0) {
        ROCK_RETURN_IF_ERROR(w.Write(tx.items().data(), n * sizeof(ItemId)));
      }
    }
  }
  if (std::fseek(f, kLabelerCrcOffset, SEEK_SET) != 0) {
    return Status::IOError("seek failure finalizing '" + path + "'");
  }
  const uint32_t crc = w.crc.value();
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &crc, sizeof(crc)));
  if (std::fflush(f) != 0) {
    return Status::IOError("flush failure on '" + path + "'");
  }
  return Status::OK();
}

Result<TransactionLabeler> TransactionLabeler::Load(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::FILE* f = file.get();
  uint64_t magic = 0;
  uint32_t version = 0;
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &magic, sizeof(magic)));
  if (magic != kLabelerMagic) {
    return Status::Corruption("'" + path + "' is not a labeler file");
  }
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &version, sizeof(version)));
  if (version != kLabelerVersion) {
    return Status::Corruption("unsupported labeler version " +
                              std::to_string(version));
  }
  uint32_t expected_crc = 0;
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &expected_crc, sizeof(expected_crc)));
  LabelerPayloadReader r{f, Crc32Accumulator{}};
  double theta = 0.0;
  double exponent = 0.0;
  ROCK_RETURN_IF_ERROR(r.Read(&theta, sizeof(theta)));
  ROCK_RETURN_IF_ERROR(r.Read(&exponent, sizeof(exponent)));
  if (!(theta >= 0.0 && theta <= 1.0) || !(exponent >= 0.0)) {
    return Status::Corruption("implausible labeler parameters");
  }
  TransactionLabeler labeler(theta, exponent);
  uint64_t num_clusters = 0;
  ROCK_RETURN_IF_ERROR(r.Read(&num_clusters, sizeof(num_clusters)));
  if (num_clusters > (1u << 24)) {
    return Status::Corruption("implausible cluster count");
  }
  labeler.sets_.resize(num_clusters);
  labeler.normalizers_.resize(num_clusters);
  for (uint64_t c = 0; c < num_clusters; ++c) {
    uint64_t set_size = 0;
    ROCK_RETURN_IF_ERROR(r.Read(&set_size, sizeof(set_size)));
    if (set_size > (1u << 28)) {
      return Status::Corruption("implausible labeling-set size");
    }
    auto& set = labeler.sets_[c];
    set.reserve(set_size);
    for (uint64_t t = 0; t < set_size; ++t) {
      uint32_t n = 0;
      ROCK_RETURN_IF_ERROR(r.Read(&n, sizeof(n)));
      if (n > kMaxLabelerTransactionItems) {
        return Status::Corruption("implausible transaction length");
      }
      std::vector<ItemId> items(n);
      if (n > 0) {
        ROCK_RETURN_IF_ERROR(r.Read(items.data(), n * sizeof(ItemId)));
      }
      set.emplace_back(std::move(items));
    }
    labeler.normalizers_[c] =
        std::pow(static_cast<double>(set.size()) + 1.0, exponent);
  }
  // The payload checksum catches bit flips that still parse plausibly.
  if (r.crc.value() != expected_crc) {
    return Status::Corruption("labeler checksum mismatch in '" + path +
                              "' (bit rot or torn write)");
  }
  // A labeler file must end exactly where the last labeling set does:
  // trailing bytes mean truncated-then-appended data or a reader/writer
  // mismatch, both unrecoverable.
  if (std::fgetc(f) != EOF) {
    return Status::Corruption("trailing data after labeler payload in '" +
                              path + "'");
  }
  labeler.BuildIndex();
  return labeler;
}

Result<LabelingRunResult> LabelStore(const std::string& store_path,
                                     const TransactionLabeler& labeler,
                                     const LabelStoreOptions& options) {
  Timer timer;
  const size_t threads = ResolveThreads(options.num_threads);

  LabelingRunResult out;
  out.threads_used = threads;

  // The header open and the shard plan both touch the store file, so both
  // ride the transient-retry schedule (their failpoint site is
  // "store.open").
  uint64_t total = 0;
  ROCK_RETURN_IF_ERROR(RetryTransient(
      options.retry,
      [&]() -> Status {
        auto header = TransactionStoreReader::Open(store_path);
        ROCK_RETURN_IF_ERROR(header.status());
        total = header->count();
        return Status::OK();
      },
      &out.retry_stats, options.retry_sleeper));
  out.assignments.assign(total, kUnassigned);
  out.ground_truth.assign(total, kNoLabel);

  std::vector<StoreShardRange> shards;
  if (total > 0) {
    // More shards than workers (4×) lets the dynamic claim loop rebalance
    // when transaction sizes are skewed across the file. A caller that
    // persists per-shard progress pins the plan size instead, so a resumed
    // run replans the exact same boundaries at any thread count.
    uint64_t want = options.num_shards;
    if (options.resume != nullptr && options.resume->num_shards > 0) {
      want = options.resume->num_shards;
    }
    if (want == 0) {
      want = threads <= 1
                 ? 1
                 : std::min<uint64_t>(total,
                                      static_cast<uint64_t>(threads) * 4);
    }
    ROCK_RETURN_IF_ERROR(RetryTransient(
        options.retry,
        [&]() -> Status {
          auto planned = TransactionStoreReader::PlanShards(store_path, want);
          ROCK_RETURN_IF_ERROR(planned.status());
          shards = std::move(*planned);
          return Status::OK();
        },
        &out.retry_stats, options.retry_sleeper));
  }
  out.shards = shards.size();

  // Restore completed shards from the resume state: their rows, counters
  // and outlier counts are copied verbatim and the claim loop skips them,
  // so a resumed run only pays for the shards the interrupted run missed.
  std::vector<uint8_t> skip(shards.size(), 0);
  std::vector<TransactionLabeler::AssignStats> shard_stats(shards.size());
  std::vector<uint64_t> shard_outliers(shards.size(), 0);
  if (options.resume != nullptr) {
    const LabelResumeState& resume = *options.resume;
    if (resume.num_shards != static_cast<uint64_t>(shards.size()) ||
        resume.shard_done == nullptr ||
        resume.shard_done->size() != shards.size() ||
        resume.assignments == nullptr ||
        resume.assignments->size() != total ||
        resume.ground_truth == nullptr ||
        resume.ground_truth->size() != total ||
        resume.shard_stats == nullptr ||
        resume.shard_stats->size() != shards.size() ||
        resume.shard_outliers == nullptr ||
        resume.shard_outliers->size() != shards.size()) {
      return Status::InvalidArgument(
          "labeling resume state does not match the store's shard plan");
    }
    for (size_t s = 0; s < shards.size(); ++s) {
      if (!(*resume.shard_done)[s]) continue;
      skip[s] = 1;
      const StoreShardRange& range = shards[s];
      for (uint64_t row = range.first_row;
           row < range.first_row + range.num_rows; ++row) {
        out.assignments[row] = (*resume.assignments)[row];
        out.ground_truth[row] = (*resume.ground_truth)[row];
      }
      shard_stats[s] = (*resume.shard_stats)[s];
      shard_outliers[s] = (*resume.shard_outliers)[s];
      ++out.shards_skipped;
    }
  }

  // Workers claim shards from a shared counter and write each row's
  // assignment straight into its slot — rows are disjoint across shards,
  // so the merged result is bit-identical to a serial in-order scan. A
  // shard attempt that fails with a transient IOError is retried from its
  // start with its counters reset, which keeps retries invisible in the
  // output: rows are rewritten in place with identical values.
  std::vector<Status> shard_status(shards.size(), Status::OK());
  const size_t num_workers = shards.size() <= 1 ? 1 : threads;
  std::vector<RetryStats> worker_retry(num_workers);
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex completion_mutex;
  ParallelInvoke(num_workers, [&](size_t worker) {
    TransactionLabeler::Scratch scratch;
    while (!abort.load(std::memory_order_acquire)) {
      const size_t s = next.fetch_add(1);
      if (s >= shards.size()) break;
      if (skip[s]) continue;
      const StoreShardRange& range = shards[s];
      Status attempt = RetryTransient(
          options.retry,
          [&]() -> Status {
            shard_stats[s] = TransactionLabeler::AssignStats{};
            shard_outliers[s] = 0;
            auto reader = TransactionStoreReader::OpenRange(store_path, range);
            ROCK_RETURN_IF_ERROR(reader.status());
            uint64_t row = range.first_row;
            while (reader->Next()) {
              const ClusterIndex c = labeler.Assign(reader->transaction(),
                                                    &scratch, &shard_stats[s]);
              out.assignments[row] = c;
              out.ground_truth[row] = reader->label();
              if (c == kUnassigned) ++shard_outliers[s];
              ++row;
            }
            ROCK_RETURN_IF_ERROR(reader->status());
            if (row != range.first_row + range.num_rows) {
              return Status::Corruption(
                  "store shard ended early (file truncated or changed "
                  "underfoot)");
            }
            return Status::OK();
          },
          &worker_retry[worker], options.retry_sleeper);
      if (!attempt.ok()) {
        shard_status[s] = std::move(attempt);
        continue;
      }
      if (options.on_shard_complete) {
        // Serialized so checkpoint writers never interleave; the shard's
        // rows are final here, making the callback's reads race-free.
        LabelShardCompletion done;
        done.shard = s;
        done.range = range;
        done.assignments = out.assignments.data() + range.first_row;
        done.ground_truth = out.ground_truth.data() + range.first_row;
        done.stats = shard_stats[s];
        done.outliers = shard_outliers[s];
        std::lock_guard<std::mutex> lock(completion_mutex);
        Status cb = options.on_shard_complete(done);
        if (!cb.ok()) {
          shard_status[s] = std::move(cb);
          abort.store(true, std::memory_order_release);
        }
      }
    }
  });
  for (const RetryStats& w : worker_retry) out.retry_stats.Merge(w);

  // First failing shard (in store order) wins, deterministically.
  for (const Status& s : shard_status) {
    ROCK_RETURN_IF_ERROR(s);
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    out.stats.Merge(shard_stats[s]);
    out.num_outliers += static_cast<size_t>(shard_outliers[s]);
  }
  out.seconds = timer.ElapsedSeconds();

  if (options.metrics != nullptr) {
    diag::MetricsRegistry* m = options.metrics;
    m->RecordSeconds("stage.label_scan", out.seconds);
    m->AddCounter("label.threads", out.threads_used);
    m->AddCounter("label.shards", out.shards);
    m->AddCounter("label.shards_skipped", out.shards_skipped);
    m->AddCounter("retry.attempts", out.retry_stats.attempts);
    m->AddCounter("retry.retries", out.retry_stats.retries);
    m->AddCounter("retry.exhausted", out.retry_stats.exhausted);
    m->SetGauge("retry.backoff_ms", out.retry_stats.backoff_ms);
    m->AddCounter("label.clusters_scored", out.stats.clusters_scored);
    m->AddCounter("label.clusters_pruned", out.stats.clusters_pruned);
    m->AddCounter("label.points_skipped_length",
                  out.stats.points_skipped_length);
    m->AddCounter("label.similarities_computed",
                  out.stats.similarities_computed);
    const uint64_t candidates =
        out.stats.clusters_scored + out.stats.clusters_pruned;
    m->SetGauge("label.prune_hit_rate",
                candidates == 0
                    ? 0.0
                    : static_cast<double>(out.stats.clusters_pruned) /
                          static_cast<double>(candidates));
    m->SetGauge("label.transactions_per_sec",
                out.seconds > 0.0
                    ? static_cast<double>(total) / out.seconds
                    : 0.0);
  }
  return out;
}

Result<LabelingRunResult> LabelStore(const std::string& store_path,
                                     const TransactionLabeler& labeler) {
  return LabelStore(store_path, labeler, LabelStoreOptions{});
}

}  // namespace rock
