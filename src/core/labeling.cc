#include "core/labeling.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

namespace rock {

Result<TransactionLabeler> TransactionLabeler::Build(
    const TransactionDataset& sample, const Clustering& clustering,
    const RockOptions& rock_options, const LabelingOptions& options) {
  ROCK_RETURN_IF_ERROR(rock_options.Validate());
  if (!(options.fraction > 0.0 && options.fraction <= 1.0)) {
    return Status::InvalidArgument("labeling fraction must be in (0, 1]");
  }
  if (clustering.assignment.size() != sample.size()) {
    return Status::InvalidArgument(
        "clustering does not cover the sample dataset");
  }

  TransactionLabeler labeler(rock_options.theta,
                             rock_options.f(rock_options.theta));
  labeler.sets_.resize(clustering.num_clusters());
  labeler.normalizers_.resize(clustering.num_clusters());

  Rng rng(options.seed);
  for (size_t c = 0; c < clustering.num_clusters(); ++c) {
    const auto& members = clustering.clusters[c];
    size_t want = static_cast<size_t>(std::ceil(
        options.fraction * static_cast<double>(members.size())));
    want = std::max(want, options.min_labeling_points);
    want = std::min(want, members.size());
    std::vector<size_t> picked =
        rng.SampleWithoutReplacement(members.size(), want);
    auto& set = labeler.sets_[c];
    set.reserve(want);
    for (size_t idx : picked) {
      set.push_back(sample.transaction(members[idx]));
    }
    labeler.normalizers_[c] =
        std::pow(static_cast<double>(set.size()) + 1.0, labeler.f_exponent_);
  }
  return labeler;
}

ClusterIndex TransactionLabeler::Assign(const Transaction& tx) const {
  ClusterIndex best = kUnassigned;
  double best_score = 0.0;
  for (size_t c = 0; c < sets_.size(); ++c) {
    size_t neighbors = 0;
    for (const Transaction& q : sets_[c]) {
      if (JaccardSimilarity(tx, q) >= theta_) ++neighbors;
    }
    if (neighbors == 0) continue;
    const double score =
        static_cast<double>(neighbors) / normalizers_[c];
    if (score > best_score) {
      best_score = score;
      best = static_cast<ClusterIndex>(c);
    }
  }
  return best;
}

namespace {

constexpr uint64_t kLabelerMagic = 0x524f434b4c41424cULL;  // "ROCKLABL"
constexpr uint32_t kLabelerVersion = 1;

Status WriteRaw(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::IOError("short write to labeler file");
  }
  return Status::OK();
}

Status ReadRaw(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::Corruption("short read from labeler file");
  }
  return Status::OK();
}

}  // namespace

Status TransactionLabeler::Save(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot create '" + path + "'");
  }
  std::FILE* f = file.get();
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &kLabelerMagic, sizeof(kLabelerMagic)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &kLabelerVersion, sizeof(kLabelerVersion)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &theta_, sizeof(theta_)));
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &f_exponent_, sizeof(f_exponent_)));
  const uint64_t num_clusters = sets_.size();
  ROCK_RETURN_IF_ERROR(WriteRaw(f, &num_clusters, sizeof(num_clusters)));
  for (const auto& set : sets_) {
    const uint64_t set_size = set.size();
    ROCK_RETURN_IF_ERROR(WriteRaw(f, &set_size, sizeof(set_size)));
    for (const Transaction& tx : set) {
      const uint32_t n = static_cast<uint32_t>(tx.size());
      ROCK_RETURN_IF_ERROR(WriteRaw(f, &n, sizeof(n)));
      if (n > 0) {
        ROCK_RETURN_IF_ERROR(
            WriteRaw(f, tx.items().data(), n * sizeof(ItemId)));
      }
    }
  }
  if (std::fflush(f) != 0) {
    return Status::IOError("flush failure on '" + path + "'");
  }
  return Status::OK();
}

Result<TransactionLabeler> TransactionLabeler::Load(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::FILE* f = file.get();
  uint64_t magic = 0;
  uint32_t version = 0;
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &magic, sizeof(magic)));
  if (magic != kLabelerMagic) {
    return Status::Corruption("'" + path + "' is not a labeler file");
  }
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &version, sizeof(version)));
  if (version != kLabelerVersion) {
    return Status::Corruption("unsupported labeler version " +
                              std::to_string(version));
  }
  double theta = 0.0;
  double exponent = 0.0;
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &theta, sizeof(theta)));
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &exponent, sizeof(exponent)));
  if (!(theta >= 0.0 && theta <= 1.0) || !(exponent >= 0.0)) {
    return Status::Corruption("implausible labeler parameters");
  }
  TransactionLabeler labeler(theta, exponent);
  uint64_t num_clusters = 0;
  ROCK_RETURN_IF_ERROR(ReadRaw(f, &num_clusters, sizeof(num_clusters)));
  if (num_clusters > (1u << 24)) {
    return Status::Corruption("implausible cluster count");
  }
  labeler.sets_.resize(num_clusters);
  labeler.normalizers_.resize(num_clusters);
  for (uint64_t c = 0; c < num_clusters; ++c) {
    uint64_t set_size = 0;
    ROCK_RETURN_IF_ERROR(ReadRaw(f, &set_size, sizeof(set_size)));
    if (set_size > (1u << 28)) {
      return Status::Corruption("implausible labeling-set size");
    }
    auto& set = labeler.sets_[c];
    set.reserve(set_size);
    for (uint64_t t = 0; t < set_size; ++t) {
      uint32_t n = 0;
      ROCK_RETURN_IF_ERROR(ReadRaw(f, &n, sizeof(n)));
      if (n > (1u << 24)) {
        return Status::Corruption("implausible transaction length");
      }
      std::vector<ItemId> items(n);
      if (n > 0) {
        ROCK_RETURN_IF_ERROR(ReadRaw(f, items.data(), n * sizeof(ItemId)));
      }
      set.emplace_back(std::move(items));
    }
    labeler.normalizers_[c] =
        std::pow(static_cast<double>(set.size()) + 1.0, exponent);
  }
  return labeler;
}

Result<LabelingRunResult> LabelStore(const std::string& store_path,
                                     const TransactionLabeler& labeler) {
  auto reader = TransactionStoreReader::Open(store_path);
  ROCK_RETURN_IF_ERROR(reader.status());
  LabelingRunResult out;
  out.assignments.reserve(reader->count());
  out.ground_truth.reserve(reader->count());
  while (reader->Next()) {
    const ClusterIndex c = labeler.Assign(reader->transaction());
    out.assignments.push_back(c);
    out.ground_truth.push_back(reader->label());
    if (c == kUnassigned) ++out.num_outliers;
  }
  ROCK_RETURN_IF_ERROR(reader->status());
  return out;
}

}  // namespace rock
