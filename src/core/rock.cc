#include "core/rock.h"

#include "common/timer.h"
#include "core/merge_engine.h"
#include "diag/metrics.h"
#include "graph/neighbor_engine.h"
#include "graph/parallel.h"

namespace rock {

Result<RockResult> RockClusterer::Cluster(const PointSimilarity& sim) const {
  ROCK_RETURN_IF_ERROR(options_.Validate());
  diag::MetricsRegistry nbr_metrics;
  Timer nbr_timer;
  Result<NeighborGraph> graph = NeighborGraph{};
  const size_t graph_threads = options_.EffectiveGraphThreads();
  switch (options_.neighbor_engine) {
    case NeighborEngineKind::kScalar:
      graph = graph_threads == 1
                  ? ComputeNeighbors(sim, options_.theta)
                  : ComputeNeighborsParallel(
                        sim, options_.theta,
                        {graph_threads, options_.row_chunk});
      break;
    case NeighborEngineKind::kPacked:
    case NeighborEngineKind::kLsh:
    case NeighborEngineKind::kAuto: {
      PackedNeighborOptions nopts;
      nopts.num_threads = graph_threads;
      nopts.row_chunk = options_.row_chunk;
      if (options_.neighbor_engine == NeighborEngineKind::kLsh) {
        nopts.strategy = PackedStrategy::kLsh;
      } else if (options_.neighbor_engine == NeighborEngineKind::kAuto) {
        nopts.allow_lsh = true;
      }
      nopts.lsh = options_.lsh_bands == 0
                      ? TuneLshOptions(options_.theta, options_.lsh_seed)
                      : LshOptions{options_.lsh_bands, options_.lsh_rows,
                                   options_.lsh_seed};
      nopts.metrics = options_.diag.collect_metrics ? &nbr_metrics : nullptr;
      graph = ComputeNeighborsPacked(sim, options_.theta, nopts);
      break;
    }
  }
  ROCK_RETURN_IF_ERROR(graph.status());
  const double nbr_seconds = nbr_timer.ElapsedSeconds();
  auto result = ClusterGraph(*graph);
  ROCK_RETURN_IF_ERROR(result.status());
  result->stats.neighbor_seconds = nbr_seconds;
  result->stats.total_seconds += nbr_seconds;
  if (options_.diag.collect_metrics) {
    result->metrics.Merge(nbr_metrics.Snapshot());
    result->metrics.RecordSeconds("stage.neighbors", nbr_seconds);
    // stage.total must cover the whole run including this phase; replace
    // the engine's graph-only figure.
    auto& total = result->metrics.timers["stage.total"];
    total = diag::TimerStats{};
    total.Record(result->stats.total_seconds);
  }
  return result;
}

Result<RockResult> RockClusterer::ClusterGraph(
    const NeighborGraph& graph) const {
  ROCK_RETURN_IF_ERROR(options_.Validate());
  switch (options_.merge_engine) {
    case MergeEngineKind::kHashed:
      return internal::RunHashedMergeEngine(graph, options_);
    case MergeEngineKind::kFlat:
      return internal::RunFlatMergeEngine(graph, options_);
    case MergeEngineKind::kParallel:
      break;
  }
  return internal::RunParallelMergeEngine(graph, options_);
}

}  // namespace rock
