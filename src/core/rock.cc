#include "core/rock.h"

#include "common/timer.h"
#include "core/merge_engine.h"
#include "graph/parallel.h"

namespace rock {

Result<RockResult> RockClusterer::Cluster(const PointSimilarity& sim) const {
  ROCK_RETURN_IF_ERROR(options_.Validate());
  Timer nbr_timer;
  auto graph = options_.num_threads == 1
                   ? ComputeNeighbors(sim, options_.theta)
                   : ComputeNeighborsParallel(
                         sim, options_.theta,
                         {options_.num_threads, options_.row_chunk});
  ROCK_RETURN_IF_ERROR(graph.status());
  const double nbr_seconds = nbr_timer.ElapsedSeconds();
  auto result = ClusterGraph(*graph);
  ROCK_RETURN_IF_ERROR(result.status());
  result->stats.neighbor_seconds = nbr_seconds;
  result->stats.total_seconds += nbr_seconds;
  if (options_.diag.collect_metrics) {
    result->metrics.RecordSeconds("stage.neighbors", nbr_seconds);
    // stage.total must cover the whole run including this phase; replace
    // the engine's graph-only figure.
    auto& total = result->metrics.timers["stage.total"];
    total = diag::TimerStats{};
    total.Record(result->stats.total_seconds);
  }
  return result;
}

Result<RockResult> RockClusterer::ClusterGraph(
    const NeighborGraph& graph) const {
  ROCK_RETURN_IF_ERROR(options_.Validate());
  switch (options_.merge_engine) {
    case MergeEngineKind::kHashed:
      return internal::RunHashedMergeEngine(graph, options_);
    case MergeEngineKind::kFlat:
      break;
  }
  return internal::RunFlatMergeEngine(graph, options_);
}

}  // namespace rock
