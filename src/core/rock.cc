#include "core/rock.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/timer.h"
#include "core/criterion.h"
#include "graph/parallel.h"
#include "util/updatable_heap.h"

namespace rock {

namespace {

/// Internal cluster id. Initial clusters take ids 0 … n−1; every merge mints
/// the next id, so ids never exceed 2n−1.
using ClusterId = uint32_t;

constexpr double kNoCandidate = -std::numeric_limits<double>::infinity();

/// Live-cluster bookkeeping for the Fig. 3 merge loop.
struct ClusterState {
  std::vector<PointIndex> members;
  /// Cross-link counts to other live clusters (the paper's link[C_i, C_j]).
  std::unordered_map<ClusterId, uint64_t> links;
  /// The paper's local heap q[i]: candidate partners ordered by goodness.
  UpdatableHeap<ClusterId, double> local;
};

/// The merge engine: owns all live clusters and both heap layers.
class MergeEngine {
 public:
  MergeEngine(const NeighborGraph& graph, const RockOptions& options)
      : options_(options), goodness_(options), graph_(graph) {}

  RockResult Run() {
    Timer total_timer;
    RockResult result;
    result.stats.num_points = graph_.size();
    result.stats.average_degree = graph_.AverageDegree();
    result.stats.max_degree = graph_.MaxDegree();

    PruneIsolatedPoints();
    result.stats.num_pruned_points = pruned_.size();

    Timer link_timer;
    LinkMatrix links = options_.num_threads == 1
                           ? ComputeLinks(graph_)
                           : ComputeLinksParallel(
                                 graph_, {options_.num_threads, 16});
    result.stats.link_seconds = link_timer.ElapsedSeconds();

    Timer merge_timer;
    InitializeClusters(links);
    MergeLoop(&result);
    result.stats.merge_seconds = merge_timer.ElapsedSeconds();

    BuildClustering(&result);
    result.stats.total_seconds = total_timer.ElapsedSeconds();
    result.stats.criterion_value =
        CriterionFunction(result.clustering, links, goodness_);
    return result;
  }

 private:
  void PruneIsolatedPoints() {
    for (size_t p = 0; p < graph_.size(); ++p) {
      if (graph_.Degree(p) < options_.min_neighbors) {
        pruned_.push_back(static_cast<PointIndex>(p));
      }
    }
  }

  bool IsPruned(PointIndex p) const {
    return std::binary_search(pruned_.begin(), pruned_.end(), p);
  }

  void InitializeClusters(const LinkMatrix& links) {
    const size_t n = graph_.size();
    states_.resize(2 * n);  // ids 0 … 2n−1 suffice for n−1 merges
    for (PointIndex p = 0; p < n; ++p) {
      if (IsPruned(p)) continue;
      auto state = std::make_unique<ClusterState>();
      state->members.push_back(p);
      states_[p] = std::move(state);
      ++num_live_;
    }
    next_id_ = static_cast<ClusterId>(n);

    // Seed cross-links and local heaps from the point-level link counts.
    // Links to pruned points are ignored: pruned outliers never participate.
    for (PointIndex p = 0; p < n; ++p) {
      if (states_[p] == nullptr) continue;
      auto& state = *states_[p];
      for (const auto& [q, count] : links.Row(p)) {
        if (states_[q] == nullptr) continue;
        state.links.emplace(q, count);
        state.local.InsertOrUpdate(q, goodness_.Goodness(count, 1, 1));
      }
    }
    for (PointIndex p = 0; p < n; ++p) {
      if (states_[p] != nullptr) global_.InsertOrUpdate(p, LocalBest(p));
    }
  }

  double LocalBest(ClusterId c) const {
    const auto& local = states_[c]->local;
    return local.empty() ? kNoCandidate : local.Top().priority;
  }

  void MergeLoop(RockResult* result) {
    const size_t k = options_.num_clusters;
    const size_t weed_at = WeedThreshold();
    bool weeded = (weed_at == 0);

    while (num_live_ > k) {
      if (!weeded && num_live_ <= weed_at) {
        WeedSmallClusters(result);
        weeded = true;
        continue;
      }
      if (global_.empty()) break;
      const auto top = global_.Top();
      if (top.priority == kNoCandidate) break;  // all cross-links are zero
      const ClusterId u = top.key;
      const ClusterId v = states_[u]->local.Top().key;
      Merge(u, v, result);
    }
    // A weeding pause configured below k (or exactly at k) still applies
    // when the loop exits normally.
    if (!weeded && num_live_ <= weed_at) {
      WeedSmallClusters(result);
    }
  }

  size_t WeedThreshold() const {
    if (options_.outlier_stop_multiple <= 0.0) return 0;
    const double raw = options_.outlier_stop_multiple *
                       static_cast<double>(options_.num_clusters);
    return static_cast<size_t>(std::ceil(raw));
  }

  void Merge(ClusterId u, ClusterId v, RockResult* result) {
    ClusterState& su = *states_[u];
    ClusterState& sv = *states_[v];
    const ClusterId w = next_id_++;
    auto sw = std::make_unique<ClusterState>();

    sw->members.reserve(su.members.size() + sv.members.size());
    sw->members = su.members;
    sw->members.insert(sw->members.end(), sv.members.begin(),
                       sv.members.end());
    std::sort(sw->members.begin(), sw->members.end());
    const size_t nw = sw->members.size();

    result->merges.push_back(MergeRecord{
        u, v, w, goodness_.Goodness(su.links.at(v), su.members.size(),
                                    sv.members.size()),
        nw});
    ++result->stats.num_merges;

    global_.Erase(u);
    global_.Erase(v);

    // Fig. 3 steps 10–15: every x linked to u or v relinks to w.
    auto relink = [&](const std::unordered_map<ClusterId, uint64_t>& src) {
      for (const auto& [x, _] : src) {
        if (x == u || x == v) continue;
        if (sw->links.count(x) > 0) continue;  // already handled via u
        ClusterState& sx = *states_[x];
        uint64_t count = 0;
        if (auto it = sx.links.find(u); it != sx.links.end()) {
          count += it->second;
          sx.links.erase(it);
        }
        if (auto it = sx.links.find(v); it != sx.links.end()) {
          count += it->second;
          sx.links.erase(it);
        }
        sx.local.Erase(u);
        sx.local.Erase(v);
        const double g = goodness_.Goodness(count, sx.members.size(), nw);
        sx.links.emplace(w, count);
        sx.local.InsertOrUpdate(w, g);
        sw->links.emplace(x, count);
        sw->local.InsertOrUpdate(x, g);
        global_.InsertOrUpdate(x, LocalBest(x));
      }
    };
    relink(su.links);
    relink(sv.links);

    states_[u].reset();
    states_[v].reset();
    states_[w] = std::move(sw);
    --num_live_;  // two die, one is born
    global_.InsertOrUpdate(w, LocalBest(w));
  }

  void WeedSmallClusters(RockResult* result) {
    std::vector<ClusterId> victims;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (states_[c] != nullptr &&
          states_[c]->members.size() < options_.min_cluster_support) {
        victims.push_back(c);
      }
    }
    for (ClusterId c : victims) {
      ClusterState& sc = *states_[c];
      result->stats.num_weeded_points += sc.members.size();
      for (PointIndex p : sc.members) weeded_points_.push_back(p);
      for (const auto& [x, _] : sc.links) {
        if (states_[x] == nullptr) continue;
        ClusterState& sx = *states_[x];
        sx.links.erase(c);
        sx.local.Erase(c);
        global_.InsertOrUpdate(x, LocalBest(x));
      }
      global_.Erase(c);
      states_[c].reset();
      --num_live_;
      ++result->stats.num_weeded_clusters;
    }
  }

  void BuildClustering(RockResult* result) {
    std::vector<ClusterIndex> assignment(graph_.size(), kUnassigned);
    ClusterIndex next = 0;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (states_[c] == nullptr) continue;
      for (PointIndex p : states_[c]->members) {
        assignment[p] = next;
      }
      ++next;
    }
    result->clustering = Clustering::FromAssignment(std::move(assignment));
    result->clustering.SortBySizeDescending();
  }

  const RockOptions& options_;
  GoodnessMeasure goodness_;
  const NeighborGraph& graph_;

  std::vector<std::unique_ptr<ClusterState>> states_;
  UpdatableHeap<ClusterId, double> global_;
  std::vector<PointIndex> pruned_;         // sorted by construction
  std::vector<PointIndex> weeded_points_;
  size_t num_live_ = 0;
  ClusterId next_id_ = 0;
};

}  // namespace

Result<RockResult> RockClusterer::Cluster(const PointSimilarity& sim) const {
  ROCK_RETURN_IF_ERROR(options_.Validate());
  Timer nbr_timer;
  auto graph = options_.num_threads == 1
                   ? ComputeNeighbors(sim, options_.theta)
                   : ComputeNeighborsParallel(sim, options_.theta,
                                              {options_.num_threads, 16});
  ROCK_RETURN_IF_ERROR(graph.status());
  const double nbr_seconds = nbr_timer.ElapsedSeconds();
  auto result = ClusterGraph(*graph);
  ROCK_RETURN_IF_ERROR(result.status());
  result->stats.neighbor_seconds = nbr_seconds;
  result->stats.total_seconds += nbr_seconds;
  return result;
}

Result<RockResult> RockClusterer::ClusterGraph(
    const NeighborGraph& graph) const {
  ROCK_RETURN_IF_ERROR(options_.Validate());
  MergeEngine engine(graph, options_);
  return engine.Run();
}

}  // namespace rock
