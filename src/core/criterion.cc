#include "core/criterion.h"

namespace rock {

uint64_t IntraClusterLinks(const LinkMatrix& links,
                           const std::vector<PointIndex>& members) {
  uint64_t total = 0;
  for (size_t a = 0; a + 1 < members.size(); ++a) {
    const auto& row = links.Row(members[a]);
    for (size_t b = a + 1; b < members.size(); ++b) {
      auto it = row.find(members[b]);
      if (it != row.end()) total += it->second;
    }
  }
  return total;
}

double CriterionFunction(const Clustering& clustering, const LinkMatrix& links,
                         const GoodnessMeasure& goodness) {
  double total = 0.0;
  for (const auto& members : clustering.clusters) {
    if (members.empty()) continue;
    const double n = static_cast<double>(members.size());
    const double intra =
        static_cast<double>(IntraClusterLinks(links, members));
    total += n * intra / goodness.ExpectedIntraLinks(members.size());
  }
  return total;
}

}  // namespace rock
