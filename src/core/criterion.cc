#include "core/criterion.h"

#include <algorithm>

namespace rock {

uint64_t IntraClusterLinks(const LinkMatrix& links,
                           const std::vector<PointIndex>& members) {
  uint64_t total = 0;
  if (links.frozen()) {
    // Binary searches over the sorted CSR rows; keeps a FromCsr-built
    // matrix from materializing its hash rows just to sum a clustering.
    // Integer sums, so the value matches the hash path exactly.
    for (size_t a = 0; a + 1 < members.size(); ++a) {
      const LinkRowSpan row = links.FlatRow(members[a]);
      const PointIndex* lo = row.partners;
      const PointIndex* hi = row.partners + row.size;
      for (size_t b = a + 1; b < members.size(); ++b) {
        const PointIndex* it = std::lower_bound(lo, hi, members[b]);
        if (it != hi && *it == members[b]) {
          total += row.counts[static_cast<size_t>(it - row.partners)];
        }
      }
    }
    return total;
  }
  for (size_t a = 0; a + 1 < members.size(); ++a) {
    const auto& row = links.Row(members[a]);
    for (size_t b = a + 1; b < members.size(); ++b) {
      auto it = row.find(members[b]);
      if (it != row.end()) total += it->second;
    }
  }
  return total;
}

double CriterionFunction(const Clustering& clustering, const LinkMatrix& links,
                         const GoodnessMeasure& goodness) {
  double total = 0.0;
  for (const auto& members : clustering.clusters) {
    if (members.empty()) continue;
    const double n = static_cast<double>(members.size());
    const double intra =
        static_cast<double>(IntraClusterLinks(links, members));
    total += n * intra / goodness.ExpectedIntraLinks(members.size());
  }
  return total;
}

}  // namespace rock
