// librock — core/model_bundle.h
//
// The serve-side artifact of the build/serve split (docs/DESIGN.md §9):
// everything a label server needs to answer "which cluster is this
// transaction?" without re-clustering — the labeling sets L_i, θ, the
// normalization exponent f(θ), the item dictionary, and the fingerprint of
// the run that produced them. `rock build` writes one; `rock serve` /
// `rock query` load it once and answer queries via the §4.6 ScanCount
// labeler.
//
// File format (little-endian), same header discipline as the pipeline
// checkpoint and the stores:
//   [u64 magic "ROCKMODL"][u32 version][u64 payload_size][u32 crc32]
//   payload_size × u8 payload
// `crc32` covers the payload. The payload is:
//   fingerprint (the 11 CheckpointFingerprint fields, checkpoint order)
//   f64 theta, f64 f_exponent
//   u64 num_clusters; per cluster: u64 set_size;
//       per transaction: u32 n, n × u32 item ids
//   u64 dict_size; per entry: u32 len, len × u8 name bytes
//   — version 2 appends the build-time profile (the drift baseline) —
//   u64 profile_rows; f64 outlier_share; f64 mean_score;
//   u64 num_clusters; per cluster: f64 share, f64 mean_neighbors
// An empty dictionary is legal — stores persist only item ids, so bundles
// built straight from a store answer queries in id-mode (queries are
// numeric item ids, not names). Version-1 bundles (no profile section)
// still load; their profile reads as empty (rows = 0) and streaming
// sessions simply run without a drift baseline.
//
// Writes are atomic-by-rename ("<path>.tmp" then rename) and consult the
// "model.save" failpoint site with the same torn_write / crash shapes as
// "pipeline.checkpoint"; loads consult "model.load". Wrong magic/version,
// truncation, trailing bytes, checksum mismatches and implausible counts
// are all Corruption — a damaged bundle is refused, never served.

#ifndef ROCK_CORE_MODEL_BUNDLE_H_
#define ROCK_CORE_MODEL_BUNDLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/checkpoint.h"
#include "data/transaction.h"

namespace rock {

/// The model's build-time behavior baseline: how the §4.6 labeler assigned
/// the very sample it was built from. BuildModel computes it by running
/// AssignDetailed over every sample row; the drift detector (eval/drift.h)
/// compares the same statistics over newly appended rows against it.
struct ModelProfile {
  /// Sample rows profiled. 0 = no profile (version-1 bundle).
  uint64_t rows = 0;
  /// Fraction of profiled rows labeled kUnassigned.
  double outlier_share = 0.0;
  /// Mean winning score over assigned (non-outlier) rows.
  double mean_score = 0.0;
  /// Per-cluster fraction of profiled rows (sums to 1 - outlier_share).
  std::vector<double> cluster_share;
  /// Per-cluster mean winning neighbor count N_i(p) over the rows assigned
  /// to that cluster (0 for clusters that won no row).
  std::vector<double> mean_neighbors;

  bool empty() const { return rows == 0; }

  /// Profile-wide mean winning neighbor count, weighted by cluster share
  /// (the share mass excludes outliers). 0 when everything was an outlier.
  double OverallMeanNeighbors() const;
};

/// A persisted clustered model: the output of BuildModel, the input of the
/// serve layer.
struct ModelBundle {
  /// Identity of the build run (store count, θ, k, seeds, sampling setup).
  /// Lets a server refuse a bundle built against a different store than
  /// the one it is asked to cross-check against.
  CheckpointFingerprint fingerprint;

  /// Neighbor threshold θ and normalization exponent f(θ) the labeling
  /// sets were built with.
  double theta = 0.0;
  double f_exponent = 0.0;

  /// Labeling sets L_i, one per cluster (paper §4.6).
  std::vector<std::vector<Transaction>> labeling_sets;

  /// Item id → name, from the dataset dictionary when the model was built
  /// from an in-memory dataset. Empty when built from a bare store (stores
  /// persist ids only) — queries are then numeric ids.
  std::vector<std::string> dictionary;

  /// Build-time assignment baseline for drift detection (empty when loaded
  /// from a version-1 bundle).
  ModelProfile profile;
};

/// Atomically writes `bundle` to `path` (tmp + rename). Consults the
/// "model.save" failpoint site.
Status SaveModelBundle(const ModelBundle& bundle, const std::string& path);

/// Reads and validates a bundle. Missing file → IOError; wrong
/// magic/version, truncation, trailing bytes, checksum mismatch, or any
/// implausible payload field → Corruption. Consults "model.load".
Result<ModelBundle> LoadModelBundle(const std::string& path);

}  // namespace rock

#endif  // ROCK_CORE_MODEL_BUNDLE_H_
