// librock — core/model_bundle.h
//
// The serve-side artifact of the build/serve split (docs/DESIGN.md §9):
// everything a label server needs to answer "which cluster is this
// transaction?" without re-clustering — the labeling sets L_i, θ, the
// normalization exponent f(θ), the item dictionary, and the fingerprint of
// the run that produced them. `rock build` writes one; `rock serve` /
// `rock query` load it once and answer queries via the §4.6 ScanCount
// labeler.
//
// File format (little-endian), same header discipline as the pipeline
// checkpoint and the stores:
//   [u64 magic "ROCKMODL"][u32 version][u64 payload_size][u32 crc32]
//   payload_size × u8 payload
// `crc32` covers the payload. The payload is:
//   fingerprint (the 11 CheckpointFingerprint fields, checkpoint order)
//   f64 theta, f64 f_exponent
//   u64 num_clusters; per cluster: u64 set_size;
//       per transaction: u32 n, n × u32 item ids
//   u64 dict_size; per entry: u32 len, len × u8 name bytes
// An empty dictionary is legal — stores persist only item ids, so bundles
// built straight from a store answer queries in id-mode (queries are
// numeric item ids, not names).
//
// Writes are atomic-by-rename ("<path>.tmp" then rename) and consult the
// "model.save" failpoint site with the same torn_write / crash shapes as
// "pipeline.checkpoint"; loads consult "model.load". Wrong magic/version,
// truncation, trailing bytes, checksum mismatches and implausible counts
// are all Corruption — a damaged bundle is refused, never served.

#ifndef ROCK_CORE_MODEL_BUNDLE_H_
#define ROCK_CORE_MODEL_BUNDLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/checkpoint.h"
#include "data/transaction.h"

namespace rock {

/// A persisted clustered model: the output of BuildModel, the input of the
/// serve layer.
struct ModelBundle {
  /// Identity of the build run (store count, θ, k, seeds, sampling setup).
  /// Lets a server refuse a bundle built against a different store than
  /// the one it is asked to cross-check against.
  CheckpointFingerprint fingerprint;

  /// Neighbor threshold θ and normalization exponent f(θ) the labeling
  /// sets were built with.
  double theta = 0.0;
  double f_exponent = 0.0;

  /// Labeling sets L_i, one per cluster (paper §4.6).
  std::vector<std::vector<Transaction>> labeling_sets;

  /// Item id → name, from the dataset dictionary when the model was built
  /// from an in-memory dataset. Empty when built from a bare store (stores
  /// persist ids only) — queries are then numeric ids.
  std::vector<std::string> dictionary;
};

/// Atomically writes `bundle` to `path` (tmp + rename). Consults the
/// "model.save" failpoint site.
Status SaveModelBundle(const ModelBundle& bundle, const std::string& path);

/// Reads and validates a bundle. Missing file → IOError; wrong
/// magic/version, truncation, trailing bytes, checksum mismatch, or any
/// implausible payload field → Corruption. Consults "model.load".
Result<ModelBundle> LoadModelBundle(const std::string& path);

}  // namespace rock

#endif  // ROCK_CORE_MODEL_BUNDLE_H_
