// librock — core/dendrogram.h
//
// ROCK is agglomerative (paper §4.1), so a single run induces an entire
// merge tree, not just the final flat clustering. Dendrogram captures the
// RockResult merge history and lets callers cut it at any granularity
// *without re-running the clusterer* — the standard workflow for choosing
// k after the fact — and export the tree in Newick format for external
// visualization.
//
// Cuts replay the recorded merges only: outlier handling (pruning/weeding)
// is reflected by the affected points simply never appearing in any merge
// (pruned) or by their final-cut membership (weeded mid-run).

#ifndef ROCK_CORE_DENDROGRAM_H_
#define ROCK_CORE_DENDROGRAM_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/cluster.h"
#include "core/rock.h"

namespace rock {

/// An agglomerative merge tree over a ROCK run.
class Dendrogram {
 public:
  /// Builds from a completed run. `num_points` must equal the clustered
  /// point count (result.clustering.assignment.size()).
  static Result<Dendrogram> FromRockResult(const RockResult& result,
                                           size_t num_points);

  /// Number of points participating in the tree (assigned at the end or
  /// touched by any merge). Pruned isolated points are excluded.
  size_t num_participants() const { return num_participants_; }

  /// Number of merge steps recorded.
  size_t num_merges() const { return merges_.size(); }

  /// Flat clustering after replaying the first `m` merges (clamped to
  /// num_merges()). Non-participating points are kUnassigned.
  Clustering CutAfterMerges(size_t m) const;

  /// The coarsest cut with at least `k` clusters: replays merges while
  /// more than `k` clusters remain. With k below the run's final cluster
  /// count this returns the full-history cut.
  Clustering CutAtK(size_t k) const;

  /// Goodness of the m-th merge (the paper's g(C_i, C_j) at merge time).
  double MergeGoodness(size_t m) const { return merges_[m].goodness; }

  /// Newick rendering of the merge forest: leaves are "p<index>", internal
  /// nodes are labeled "g=<goodness>"; multiple roots are joined under an
  /// unlabeled virtual root. Ends with ';'.
  std::string ToNewick() const;

 private:
  Dendrogram() = default;

  size_t num_points_ = 0;
  size_t num_participants_ = 0;
  std::vector<MergeRecord> merges_;
  std::vector<bool> participates_;  // per point
};

}  // namespace rock

#endif  // ROCK_CORE_DENDROGRAM_H_
