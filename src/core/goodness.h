// librock — core/goodness.h
//
// The goodness measure of paper §4.2:
//
//     g(C_i, C_j) = link[C_i, C_j] / ((n_i+n_j)^{1+2f(θ)} − n_i^{1+2f(θ)} − n_j^{1+2f(θ)})
//
// The denominator is the *expected* number of cross-links between the two
// clusters; dividing by it stops large clusters from swallowing everything
// merely because they have more raw cross-links.

#ifndef ROCK_CORE_GOODNESS_H_
#define ROCK_CORE_GOODNESS_H_

#include <cstdint>

#include "core/options.h"

namespace rock {

/// Precomputed goodness evaluator for a fixed θ and f.
class GoodnessMeasure {
 public:
  /// Captures exponent 1 + 2f(θ). `options.f` must be set.
  explicit GoodnessMeasure(const RockOptions& options)
      : exponent_(1.0 + 2.0 * options.f(options.theta)) {}

  /// Direct construction from a precomputed f(θ) value.
  GoodnessMeasure(double theta, double f_of_theta)
      : exponent_(1.0 + 2.0 * f_of_theta) {
    (void)theta;
  }

  /// The exponent 1 + 2f(θ).
  double exponent() const { return exponent_; }

  /// Expected number of intra-cluster links of an n-point cluster:
  /// n^{1+2f(θ)}.
  double ExpectedIntraLinks(size_t n) const;

  /// Expected cross-links created by merging clusters of sizes ni and nj:
  /// (ni+nj)^{1+2f(θ)} − ni^{1+2f(θ)} − nj^{1+2f(θ)}.
  double ExpectedCrossLinks(size_t ni, size_t nj) const;

  /// g(C_i, C_j) for the observed cross-link count.
  double Goodness(uint64_t cross_links, size_t ni, size_t nj) const;

 private:
  double exponent_;
};

}  // namespace rock

#endif  // ROCK_CORE_GOODNESS_H_
