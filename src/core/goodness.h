// librock — core/goodness.h
//
// The goodness measure of paper §4.2:
//
//     g(C_i, C_j) = link[C_i, C_j] / ((n_i+n_j)^{1+2f(θ)} − n_i^{1+2f(θ)} − n_j^{1+2f(θ)})
//
// The denominator is the *expected* number of cross-links between the two
// clusters; dividing by it stops large clusters from swallowing everything
// merely because they have more raw cross-links.
//
// Cluster sizes are small integers bounded by n, and the merge loop asks
// for the same handful of powers millions of times, so size^{1+2f(θ)} is
// served from a lazily-grown memo table instead of a std::pow call per
// evaluation. Values are bit-identical to the direct std::pow path — each
// table slot is filled by the exact same std::pow(i, exponent) call the
// unmemoized code would have made (tests/rock_test.cc pins this).

#ifndef ROCK_CORE_GOODNESS_H_
#define ROCK_CORE_GOODNESS_H_

#include <cstdint>
#include <vector>

#include "core/options.h"

namespace rock {

/// Precomputed goodness evaluator for a fixed θ and f.
class GoodnessMeasure {
 public:
  /// Captures exponent 1 + 2f(θ). `options.f` must be set.
  explicit GoodnessMeasure(const RockOptions& options)
      : exponent_(1.0 + 2.0 * options.f(options.theta)) {}

  /// Direct construction from a precomputed f(θ) value.
  GoodnessMeasure(double theta, double f_of_theta)
      : exponent_(1.0 + 2.0 * f_of_theta) {
    (void)theta;
  }

  /// The exponent 1 + 2f(θ).
  double exponent() const { return exponent_; }

  /// Expected number of intra-cluster links of an n-point cluster:
  /// n^{1+2f(θ)}. Memoized; the first call for a new maximum grows the
  /// table through that size.
  double ExpectedIntraLinks(size_t n) const {
    if (n < table_.size()) return table_[n];
    return GrowAndGet(n);
  }

  /// Expected cross-links created by merging clusters of sizes ni and nj:
  /// (ni+nj)^{1+2f(θ)} − ni^{1+2f(θ)} − nj^{1+2f(θ)}.
  double ExpectedCrossLinks(size_t ni, size_t nj) const;

  /// g(C_i, C_j) for the observed cross-link count.
  double Goodness(uint64_t cross_links, size_t ni, size_t nj) const;

  /// Pre-fills the memo through size `max_size` so every later
  /// ExpectedIntraLinks(n ≤ max_size) is a pure table read. Callers that
  /// evaluate goodness from several threads (the sharded relink of
  /// core/merge_parallel.cc) must reserve their size ceiling up front —
  /// concurrent reads of a reserved table are race-free, concurrent lazy
  /// growth is not.
  void Reserve(size_t max_size) const {
    if (max_size >= table_.size()) GrowAndGet(max_size);
  }

 private:
  /// Extends the table through index n (each slot i = std::pow(i, e)) and
  /// returns table_[n].
  double GrowAndGet(size_t n) const;

  double exponent_;
  /// table_[i] == std::pow(i, exponent_); grown monotonically, never
  /// shrunk. Mutable: memoization is invisible to callers.
  mutable std::vector<double> table_;
};

}  // namespace rock

#endif  // ROCK_CORE_GOODNESS_H_
