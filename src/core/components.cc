#include "core/components.h"

#include <numeric>
#include <vector>

namespace rock {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), PointIndex{0});
  }
  PointIndex Find(PointIndex x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(PointIndex a, PointIndex b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<PointIndex> parent_;
};

}  // namespace

LinkComponentsResult LinkComponents(const NeighborGraph& graph,
                                    const LinkMatrix& links,
                                    size_t min_neighbors) {
  const size_t n = graph.size();
  LinkComponentsResult out;

  std::vector<bool> pruned(n, false);
  for (size_t p = 0; p < n; ++p) {
    if (graph.Degree(p) < min_neighbors) {
      pruned[p] = true;
      ++out.num_pruned_points;
    }
  }

  UnionFind uf(n);
  for (size_t p = 0; p < n; ++p) {
    if (pruned[p]) continue;
    for (const auto& [q, count] : links.Row(static_cast<PointIndex>(p))) {
      if (count > 0 && !pruned[q]) {
        uf.Union(static_cast<PointIndex>(p), q);
      }
    }
  }

  std::vector<ClusterIndex> assignment(n, kUnassigned);
  std::vector<ClusterIndex> root_to_cluster(n, kUnassigned);
  ClusterIndex next = 0;
  for (size_t p = 0; p < n; ++p) {
    if (pruned[p]) continue;
    const PointIndex root = uf.Find(static_cast<PointIndex>(p));
    if (root_to_cluster[root] == kUnassigned) {
      root_to_cluster[root] = next++;
    }
    assignment[p] = root_to_cluster[root];
  }
  out.clustering = Clustering::FromAssignment(std::move(assignment));
  out.clustering.SortBySizeDescending();
  return out;
}

Result<LinkComponentsResult> ComputeLinkComponents(const PointSimilarity& sim,
                                                   double theta,
                                                   size_t min_neighbors) {
  auto graph = ComputeNeighbors(sim, theta);
  ROCK_RETURN_IF_ERROR(graph.status());
  LinkMatrix links = ComputeLinks(*graph);
  return LinkComponents(*graph, links, min_neighbors);
}

}  // namespace rock
