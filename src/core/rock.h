// librock — core/rock.h
//
// The ROCK agglomerative clusterer (paper §4, Fig. 3). Given a normalized
// similarity and θ it:
//   1. builds the neighbor graph (§3.1) and prunes isolated outliers (§4.6),
//   2. computes pairwise links with the sparse Fig. 4 algorithm,
//   3. greedily merges the cluster pair with maximal goodness g(C_i, C_j)
//      (§4.2) using one local heap per cluster plus a global heap,
//   4. optionally pauses at a small multiple of k to weed low-support
//      outlier clusters (§4.6),
//   5. stops at k clusters or when no cross-links remain (whichever first).
//
// Worst-case complexity O(n² + n·m_m·m_a + n² log n) — §4.5.

#ifndef ROCK_CORE_ROCK_H_
#define ROCK_CORE_ROCK_H_

#include <cstdint>
#include <vector>

#include "core/cluster.h"
#include "core/goodness.h"
#include "core/options.h"
#include "diag/metrics.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "similarity/similarity.h"

namespace rock {

/// One merge step of the hierarchy (u, v → merged cluster of `new_size`).
struct MergeRecord {
  uint32_t left;      ///< internal id of the first merged cluster
  uint32_t right;     ///< internal id of the second merged cluster
  uint32_t merged;    ///< internal id assigned to the merged cluster
  double goodness;    ///< g(left, right) at merge time
  size_t new_size;    ///< point count of the merged cluster
};

/// Run statistics (drives Fig. 5 and the complexity-ablation benches).
struct RockStats {
  size_t num_points = 0;            ///< input size n
  size_t num_pruned_points = 0;     ///< isolated points dropped up front
  size_t num_weeded_clusters = 0;   ///< clusters removed at the weeding pause
  size_t num_weeded_points = 0;     ///< points inside weeded clusters
  size_t num_merges = 0;            ///< merge steps performed
  double average_degree = 0.0;      ///< m_a of the neighbor graph
  size_t max_degree = 0;            ///< m_m of the neighbor graph
  double neighbor_seconds = 0.0;    ///< time to build the neighbor graph
  double link_seconds = 0.0;        ///< time to compute links (Fig. 4)
  double merge_seconds = 0.0;       ///< time in the heap-driven merge loop
  double total_seconds = 0.0;       ///< end-to-end clustering time
  double criterion_value = 0.0;     ///< E_l of the final clustering (§3.3)
};

/// Result of a ROCK run: the flat clustering (outliers = kUnassigned),
/// the merge history, run statistics, and — unless disabled via
/// RockOptions::diag — the per-stage metrics report (timers, counters,
/// gauges; names cataloged in docs/OBSERVABILITY.md).
struct RockResult {
  Clustering clustering;
  std::vector<MergeRecord> merges;
  RockStats stats;
  diag::RunMetrics metrics;
};

/// The ROCK clustering algorithm.
class RockClusterer {
 public:
  /// Captures options; Cluster() validates them.
  explicit RockClusterer(RockOptions options) : options_(std::move(options)) {}

  /// Clusters all points of `sim` (paper Fig. 3 over the full point set).
  Result<RockResult> Cluster(const PointSimilarity& sim) const;

  /// Clusters a precomputed neighbor graph (θ is already baked into the
  /// graph; options_.theta only feeds f(θ) here). Entry point for callers
  /// that build graphs themselves (tests, ablations).
  Result<RockResult> ClusterGraph(const NeighborGraph& graph) const;

  const RockOptions& options() const { return options_; }

 private:
  RockOptions options_;
};

}  // namespace rock

#endif  // ROCK_CORE_ROCK_H_
